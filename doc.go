// Package s2fa reproduces "S2FA: An Accelerator Automation Framework for
// Heterogeneous Computing in Datacenters" (DAC 2018): a compilation
// framework that turns the Scala kernels of Spark applications into
// optimized FPGA accelerator designs and integrates them with the Blaze
// runtime.
//
// The public entry points live under internal/core (the framework
// facade), internal/exp (the paper's evaluation), and the two commands
// cmd/s2fa and cmd/s2fa-bench. The root package exists to host the
// repository-level benchmark harness (bench_test.go), which regenerates
// every table and figure of the paper's evaluation section.
package s2fa
