// Smith-Waterman: the paper's motivating example (Code 1/Code 2).
//
// Pairs of DNA sequences flow through a Blaze-wrapped RDD whose map
// transformation is the SmithWaterman Accelerator class. S2FA compiles
// the class to an FPGA design; the example aligns a batch on the modeled
// accelerator, verifies the alignments against the JVM execution, and
// reports the modeled end-to-end speedup.
//
// Run: go run ./examples/smithwaterman
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"s2fa/internal/apps"
	"s2fa/internal/blaze"
	"s2fa/internal/cir"
	"s2fa/internal/core"
	"s2fa/internal/jvmsim"
	"s2fa/internal/spark"
)

func main() {
	app := apps.Get("S-W")
	fw := core.New()
	fw.Tasks = app.Tasks

	fmt.Println("building SW_kernel accelerator (bytecode -> HLS C -> DSE)...")
	build, err := fw.BuildFromSource(app.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen design: %v\n", build.Best)
	fmt.Printf("DSE: %d evaluations, %.0f virtual minutes, %d partitions\n\n",
		build.Outcome.Evaluations, build.Outcome.TotalMinutes, len(build.Outcome.Partitions))

	mgr := blaze.NewManager(fw.Device)
	if err := fw.Deploy(build, mgr); err != nil {
		log.Fatal(err)
	}

	// A Spark job over sequence pairs (Code 1: val matching =
	// blaze_pairs.map(new SW)).
	const n = 256
	rng := rand.New(rand.NewSource(7))
	pairs := app.Gen(rng, n)
	ctx := spark.NewContext()
	rdd := spark.Parallelize(ctx, pairs, 8)

	vm := jvmsim.New(build.Class)
	aligned, stats, err := blaze.Wrap(rdd, mgr).MapAcc(vm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned %d pairs on the accelerator in modeled %v\n", stats.Tasks, stats.SimTime)

	// Show one alignment.
	a0 := valsToString(pairs[0].Tup[0].Arr)
	b0 := valsToString(pairs[0].Tup[1].Arr)
	o1 := strings.TrimLeft(valsToString(aligned[0].Tup[0].Arr), "\x00")
	o2 := strings.TrimLeft(valsToString(aligned[0].Tup[1].Arr), "\x00")
	fmt.Printf("\nexample pair:\n  seq A: %s...\n  seq B: %s...\n", a0[:48], b0[:48])
	fmt.Printf("local alignment (tail):\n  %s\n  %s\n", tail(o1, 64), tail(o2, 64))

	// JVM baseline for the same batch.
	vm2 := jvmsim.New(build.Class)
	jvmRes, jstats, err := blaze.Wrap(rdd, blaze.NewManager(fw.Device)).MapAcc(vm2)
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for i := range aligned {
		if valsToString(aligned[i].Tup[0].Arr) == valsToString(jvmRes[i].Tup[0].Arr) &&
			valsToString(aligned[i].Tup[1].Arr) == valsToString(jvmRes[i].Tup[1].Arr) {
			agree++
		}
	}
	fmt.Printf("\nverification: %d/%d alignments identical to the JVM execution\n", agree, n)
	fmt.Printf("modeled times: FPGA %v vs single-thread JVM %v (%.0fx)\n",
		stats.SimTime, jstats.SimTime, float64(jstats.SimTime)/float64(stats.SimTime))
}

func valsToString(vs []cir.Value) string {
	b := make([]byte, len(vs))
	for i, v := range vs {
		b[i] = byte(v.AsInt())
	}
	return string(b)
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
