// KMeans DSE: a close look at the design space exploration (paper §4).
//
// Runs the S2FA DSE (decision-tree partitions + performance/area seeds +
// Shannon-entropy early stopping) and the vanilla OpenTuner baseline on
// the KMeans kernel, printing the partitions, both best-so-far
// trajectories, and the final designs — a single-kernel slice of Fig. 3.
// KMeans is the paper's interesting exception: its space is small enough
// that the vanilla tuner eventually reaches the same design, but it burns
// the full four hours doing so.
//
// Run: go run ./examples/kmeansdse
package main

import (
	"fmt"
	"log"

	"s2fa/internal/apps"
	"s2fa/internal/dse"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/space"
)

func main() {
	app := apps.Get("KMeans")
	kernel, err := app.Kernel()
	if err != nil {
		log.Fatal(err)
	}
	dev := fpga.VU9P()
	sp := space.Identify(kernel)
	fmt.Printf("KMeans design space: %d parameters, %.3g points\n\n", len(sp.Params), sp.Cardinality())

	eval := dse.NewEvaluator(kernel, sp, dev, int64(app.Tasks), hls.Options{})

	fmt.Println("=== S2FA DSE (partitions + seeds + entropy stopping, 8 cores) ===")
	s2fa := dse.Run(kernel, sp, eval, dse.S2FAConfig(1))
	for i, p := range s2fa.Partitions {
		fmt.Printf("partition %d: %s\n", i, p.String())
	}
	printTrajectory(s2fa)

	fmt.Println("\n=== vanilla OpenTuner (random start, top-8 per iteration, 4h limit) ===")
	vanillaEval := dse.FlatInfeasible(dse.NewEvaluator(kernel, sp, dev, int64(app.Tasks), hls.Options{}))
	vanilla := dse.Run(kernel, sp, vanillaEval, dse.VanillaConfig(1))
	printTrajectory(vanilla)

	fmt.Println("\n=== comparison ===")
	fmt.Printf("S2FA:    best %.6gs after %.0f min (%d evaluations)\n",
		s2fa.Best.Objective, s2fa.TotalMinutes, s2fa.Evaluations)
	fmt.Printf("vanilla: best %.6gs after %.0f min (%d evaluations)\n",
		vanilla.Best.Objective, vanilla.TotalMinutes, vanilla.Evaluations)
	if rep, ok := dse.Report(s2fa.Best); ok {
		fmt.Printf("S2FA best design: %v\n", rep)
	}
	ratio := vanilla.Best.Objective / s2fa.Best.Objective
	fmt.Printf("final QoR ratio (vanilla/S2FA): %.2fx — the paper's KMeans exception: a small\n", ratio)
	fmt.Println("space lets the vanilla tuner catch up, but it still runs the full four hours.")
}

func printTrajectory(o *dse.Outcome) {
	fmt.Println("best-so-far trajectory (virtual minutes -> estimated kernel seconds):")
	for _, tp := range o.Trajectory {
		fmt.Printf("  %6.1f min  %.6g s\n", tp.Minutes, tp.Objective)
	}
	fmt.Printf("terminated at %.0f min after %d evaluations\n", o.TotalMinutes, o.Evaluations)
}
