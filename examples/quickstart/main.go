// Quickstart: the complete S2FA flow on a small custom kernel.
//
// A Spark developer writes an Accelerator class (Blaze programming model,
// paper Code 1/2) in the Scala-subset kernel language; S2FA compiles it
// to bytecode, decompiles it to HLS C, explores the design space, and
// deploys the accelerator to the Blaze runtime, where a Spark job invokes
// it transparently — with automatic JVM fallback when no accelerator is
// registered.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"s2fa/internal/blaze"
	"s2fa/internal/cir"
	"s2fa/internal/core"
	"s2fa/internal/jvmsim"
	"s2fa/internal/spark"
)

// The user-written kernel: per task, a dot product of two 64-element
// vectors scaled by a constant (a saxpy-flavored map).
const kernelSrc = `
class ScaledDot extends Accelerator[(Array[Float], Array[Float]), Float] {
  val id: String = "ScaledDot_kernel"
  val inSizes: Array[Int] = Array(64, 64)
  val alpha: Float = 1.5f
  def call(in: (Array[Float], Array[Float])): Float = {
    val a: Array[Float] = in._1
    val b: Array[Float] = in._2
    var acc: Float = 0.0f
    for (i <- 0 until 64) {
      acc = acc + a(i) * b(i)
    }
    alpha * acc
  }
}
`

func main() {
	// 1. Compile + explore + build the accelerator.
	fw := core.New()
	fw.Tasks = 2048
	build, err := fw.BuildFromSource(kernelSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- generated HLS C (bytecode-to-C compiler output) ---")
	fmt.Println(build.HLSSource())
	fmt.Printf("design space: %.3g points; DSE evaluated %d designs in %.0f virtual minutes\n",
		build.Space.Cardinality(), build.Outcome.Evaluations, build.Outcome.TotalMinutes)
	fmt.Printf("chosen design: %v\n\n", build.Best)

	// 2. Deploy to the Blaze runtime.
	mgr := blaze.NewManager(fw.Device)
	if err := fw.Deploy(build, mgr); err != nil {
		log.Fatal(err)
	}

	// 3. A Spark application offloads its map transformation.
	rng := rand.New(rand.NewSource(42))
	const n = 2048
	tasks := make([]jvmsim.Val, n)
	for t := range tasks {
		a := make([]cir.Value, 64)
		b := make([]cir.Value, 64)
		for i := range a {
			a[i] = cir.FloatVal(cir.Float, rng.Float64())
			b[i] = cir.FloatVal(cir.Float, rng.Float64())
		}
		tasks[t] = jvmsim.Tuple(jvmsim.Array(a), jvmsim.Array(b))
	}
	ctx := spark.NewContext()
	rdd := spark.Parallelize(ctx, tasks, 4)

	vm := jvmsim.New(build.Class)
	accel, stats, err := blaze.Wrap(rdd, mgr).MapAcc(vm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPGA path: usedFPGA=%v tasks=%d modeled time=%v\n", stats.UsedFPGA, stats.Tasks, stats.SimTime)

	// 4. The same job without a registered accelerator falls back to the
	// JVM — and must agree bit for bit.
	emptyMgr := blaze.NewManager(fw.Device)
	vm2 := jvmsim.New(build.Class)
	fallback, fstats, err := blaze.Wrap(rdd, emptyMgr).MapAcc(vm2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JVM fallback: %q, modeled time=%v\n", fstats.Fallback, fstats.SimTime)

	mismatches := 0
	for i := range accel {
		if accel[i].S.AsFloat() != fallback[i].S.AsFloat() {
			mismatches++
		}
	}
	fmt.Printf("result check: %d/%d tasks agree between FPGA and JVM paths\n", n-mismatches, n)
	fmt.Printf("modeled speedup: %.1fx\n", float64(fstats.SimTime)/float64(stats.SimTime))
}
