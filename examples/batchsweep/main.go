// Batch sweep: when is offloading worth it?
//
// Blaze invokes an accelerator per batch, paying fixed driver/DMA setup
// plus PCIe transfer. For tiny batches the single-threaded JVM wins; as
// the batch grows the FPGA's throughput dominates. This example sweeps
// the batch size for the AES accelerator and prints the modeled
// crossover — the system-level behavior that makes Blaze batch RDD
// partitions before offloading.
//
// Run: go run ./examples/batchsweep
package main

import (
	"fmt"
	"log"
	"math/rand"

	"s2fa/internal/apps"
	"s2fa/internal/blaze"
	"s2fa/internal/core"
	"s2fa/internal/jvmsim"
	"s2fa/internal/spark"
)

func main() {
	app := apps.Get("AES")
	fw := core.New()
	fw.Tasks = app.Tasks

	build, err := fw.BuildFromSource(app.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AES design: %v\n\n", build.Best)

	mgr := blaze.NewManager(fw.Device)
	if err := fw.Deploy(build, mgr); err != nil {
		log.Fatal(err)
	}
	cold := blaze.NewManager(fw.Device) // no accelerator: JVM path

	fmt.Printf("%10s %14s %14s %10s\n", "batch", "FPGA (model)", "JVM (model)", "speedup")
	rng := rand.New(rand.NewSource(11))
	crossover := -1
	for _, n := range []int{4, 16, 64, 256, 1024, 4096, 16384} {
		tasks := app.Gen(rng, n)
		rdd := spark.Parallelize(spark.NewContext(), tasks, 4)

		cls, _ := app.Class()
		_, fstats, err := blaze.Wrap(rdd, mgr).MapAcc(jvmsim.New(cls))
		if err != nil {
			log.Fatal(err)
		}
		_, jstats, err := blaze.Wrap(rdd, cold).MapAcc(jvmsim.New(cls))
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(jstats.SimTime) / float64(fstats.SimTime)
		if speedup >= 1 && crossover < 0 {
			crossover = n
		}
		fmt.Printf("%10d %14v %14v %9.2fx\n", n, fstats.SimTime, jstats.SimTime, speedup)
	}
	if crossover >= 0 {
		fmt.Printf("\noffloading pays off from roughly %d tasks per batch\n", crossover)
		fmt.Println("(below that, the fixed accelerator invocation overhead dominates)")
	} else {
		fmt.Println("\nno crossover in the swept range")
	}
}
