package s2fa

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus micro-benchmarks for the pipeline stages. The
// experiment benches regenerate the corresponding artifact end to end on
// every iteration (virtual synthesis clock — seconds of real time for
// four modeled hours of DSE).
//
//	go test -bench=. -benchmem

import (
	"math/rand"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/b2c"
	"s2fa/internal/blaze"
	"s2fa/internal/ccache"
	"s2fa/internal/cir"
	"s2fa/internal/compile"
	"s2fa/internal/dse"
	"s2fa/internal/exp"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/jvmsim"
	"s2fa/internal/kdsl"
	"s2fa/internal/merlin"
	"s2fa/internal/space"
)

// BenchmarkFig3DSETrajectories regenerates Fig. 3: S2FA vs vanilla
// OpenTuner DSE trajectories for all eight kernels.
func BenchmarkFig3DSETrajectories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(1)
		r, err := exp.Fig3(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) != 8 {
			b.Fatalf("got %d series", len(r.Series))
		}
	}
}

// BenchmarkFig3DSETrajectoriesPar8 is the same regeneration on the
// concurrent engine with an 8-goroutine evaluation pool (cmd/s2fa -par 8).
// The result is byte-identical to the sequential run; only wall-clock
// changes. On a multi-core machine this is the headline speedup of the
// parallel engine; on one core it measures its overhead.
func BenchmarkFig3DSETrajectoriesPar8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(1)
		s.Engine = dse.EngineParallel
		s.Parallelism = 8
		r, err := exp.Fig3(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) != 8 {
			b.Fatalf("got %d series", len(r.Series))
		}
	}
}

// BenchmarkFig4Speedups regenerates Fig. 4: manual and S2FA design
// speedups over the JVM for all eight kernels.
func BenchmarkFig4Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(1)
		r, err := exp.Fig4(s)
		if err != nil {
			b.Fatal(err)
		}
		if r.MeanSpeedup <= 1 {
			b.Fatalf("mean speedup %.2f", r.MeanSpeedup)
		}
	}
}

// BenchmarkTable1DesignSpaces regenerates the per-application design
// space summary (Table 1 instantiated).
func BenchmarkTable1DesignSpaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(1)
		rows, err := exp.Table1(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkTable2ResourceUtilization regenerates Table 2: resource
// utilization and frequency of the best DSE designs.
func BenchmarkTable2ResourceUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(1)
		rows, err := exp.Table2(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkStoppingCriteriaAblation regenerates the §5.2 stopping
// criteria study (entropy vs trivial).
func BenchmarkStoppingCriteriaAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(1)
		if _, err := exp.StoppingAblation(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pipeline micro-benchmarks ---

// BenchmarkFrontend measures kdsl parsing + type checking + bytecode
// generation across all eight kernels.
func BenchmarkFrontend(b *testing.B) {
	srcs := make([]string, 0, 8)
	for _, a := range apps.All() {
		srcs = append(srcs, a.Source)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			if _, err := kdsl.CompileSource(src); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBytecodeToC measures the decompiler (CFG, lifting,
// structuring, flattening) across all eight kernels.
func BenchmarkBytecodeToC(b *testing.B) {
	var cls []*apps.App
	for _, a := range apps.All() {
		if _, err := a.Class(); err != nil {
			b.Fatal(err)
		}
		cls = append(cls, a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range cls {
			c, _ := a.Class()
			if _, err := b2c.Compile(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFrontendScratch is BenchmarkFrontend with reused arena
// buffers (compile.Scratch): the allocation delta between the two is
// the frontend's per-kernel transient garbage.
func BenchmarkFrontendScratch(b *testing.B) {
	srcs := make([]string, 0, 8)
	for _, a := range apps.All() {
		srcs = append(srcs, a.Source)
	}
	sc := compile.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			if _, err := kdsl.CompileSourceScratch(src, sc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBytecodeToCScratch is BenchmarkBytecodeToC with reused
// verifier/abstract-interpreter buffers.
func BenchmarkBytecodeToCScratch(b *testing.B) {
	var cls []*apps.App
	for _, a := range apps.All() {
		if _, err := a.Class(); err != nil {
			b.Fatal(err)
		}
		cls = append(cls, a)
	}
	sc := compile.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range cls {
			c, _ := a.Class()
			if _, err := b2c.CompileScratch(c, nil, sc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompileCold measures the full source-to-kernel pipeline
// (frontend + verify + absint + b2c) per kernel set, no caching.
func BenchmarkCompileCold(b *testing.B) {
	srcs := make([]string, 0, 8)
	for _, a := range apps.All() {
		srcs = append(srcs, a.Source)
	}
	sc := compile.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			cls, err := kdsl.CompileSourceScratch(src, sc)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := b2c.CompileScratch(cls, nil, sc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompileCached measures the same pipeline served from the
// content-addressed compile cache (every iteration after the first is a
// source-memo hit: one SHA-256 of the source plus one integrity check of
// the cached kernel).
func BenchmarkCompileCached(b *testing.B) {
	srcs := make([]string, 0, 8)
	for _, a := range apps.All() {
		srcs = append(srcs, a.Source)
	}
	cache := ccache.New()
	sc := compile.NewScratch()
	for _, src := range srcs { // warm the cache
		if _, _, err := cache.CompileSource(src, nil, sc); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			if _, _, err := cache.CompileSource(src, nil, sc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHLSEstimate measures one analytic synthesis evaluation of the
// Smith-Waterman kernel.
func BenchmarkHLSEstimate(b *testing.B) {
	a := apps.Get("S-W")
	k, err := a.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	dev := fpga.VU9P()
	sp := space.Identify(k)
	ann, err := merlin.Annotate(k, sp.Directives(sp.PerformanceSeed()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hls.Estimate(ann, dev, int64(a.Tasks), hls.Options{})
	}
}

// BenchmarkMerlinMaterialize measures structural transformation (tile +
// unroll with tree reduction) of the LR kernel.
func BenchmarkMerlinMaterialize(b *testing.B) {
	a := apps.Get("LR")
	k, err := a.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	d := merlin.Directives{Loops: map[string]cir.LoopOpt{
		k.TaskLoopID: {Parallel: 3, Pipeline: cir.PipeOn},
	}}
	for _, l := range k.Loops() {
		if l.ID != k.TaskLoopID && l.TripCount() >= 4 {
			d.Loops[l.ID] = cir.LoopOpt{Parallel: 4}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merlin.Materialize(k, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJVMInterpreter measures the bytecode interpreter on AES
// blocks (tasks/op for the baseline cost model).
func BenchmarkJVMInterpreter(b *testing.B) {
	a := apps.Get("AES")
	cls, err := a.Class()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	tasks := a.Gen(rng, 16)
	vm := jvmsim.New(cls)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Call(tasks[i%len(tasks)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJVMBaseline measures the single-thread JVM baseline on every
// workload under both engines: the switch-dispatch interpreter and the
// closure-compiled template JIT. Outputs and Counts are bit-identical
// across engines (internal/apps TestJITDifferentialAllApps); this
// measures the wall-clock the suite stops spending on its largest
// serial cost center.
func BenchmarkJVMBaseline(b *testing.B) {
	for _, a := range apps.All() {
		a := a
		cls, err := a.Class()
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		tasks := a.Gen(rng, 8)
		b.Run(a.Name+"/interp", func(b *testing.B) {
			vm := jvmsim.New(cls)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.CallBatch(tasks); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(a.Name+"/jit", func(b *testing.B) {
			vm, err := jvmsim.NewJIT(cls)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.CallBatch(tasks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelEvaluator measures the HLS-C evaluator on KMeans tasks
// (functional FPGA emulation speed).
func BenchmarkKernelEvaluator(b *testing.B) {
	a := apps.Get("KMeans")
	cls, err := a.Class()
	if err != nil {
		b.Fatal(err)
	}
	k, err := a.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	tasks := a.Gen(rng, 64)
	layout := blaze.Layout{Class: cls, Kernel: k}
	bufs, err := layout.Serialize(tasks)
	if err != nil {
		b.Fatal(err)
	}
	for name, out := range layout.AllocOutputs(len(tasks)) {
		bufs[name] = out
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := cir.NewEvaluator(k)
		if err := ev.Execute(len(tasks), bufs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialization measures the Blaze data processing methods
// (JVM objects <-> flat kernel buffers) on S-W pairs.
func BenchmarkSerialization(b *testing.B) {
	a := apps.Get("S-W")
	cls, err := a.Class()
	if err != nil {
		b.Fatal(err)
	}
	k, err := a.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	tasks := a.Gen(rng, 128)
	layout := blaze.Layout{Class: cls, Kernel: k}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Serialize(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerializationReuse is BenchmarkSerialization through a
// reused Encoder (the runtime's steady-state offload path): the encode
// buffers are grown once and rewritten per batch.
func BenchmarkSerializationReuse(b *testing.B) {
	a := apps.Get("S-W")
	cls, err := a.Class()
	if err != nil {
		b.Fatal(err)
	}
	k, err := a.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	tasks := a.Gen(rng, 128)
	layout := blaze.Layout{Class: cls, Kernel: k}
	enc := layout.NewEncoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSEKMeans measures one full S2FA DSE run on the KMeans kernel
// (virtual 4-hour budget).
func BenchmarkDSEKMeans(b *testing.B) {
	a := apps.Get("KMeans")
	k, err := a.Kernel()
	if err != nil {
		b.Fatal(err)
	}
	dev := fpga.VU9P()
	sp := space.Identify(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval := dse.NewEvaluator(k, sp, dev, int64(a.Tasks), hls.Options{})
		out := dse.Run(k, sp, eval, dse.S2FAConfig(int64(i)+1))
		if !out.Best.Feasible {
			b.Fatal("no feasible design")
		}
	}
}

// BenchmarkComponentAblation regenerates the per-mechanism DSE ablation
// (seeds / partitions / entropy stopping) documented in EXPERIMENTS.md.
func BenchmarkComponentAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(1)
		r, err := exp.ComponentAblation(s, []string{"KMeans", "AES"})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 2 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}
