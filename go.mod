module s2fa

go 1.22
