// Command s2fa-bench regenerates the paper's evaluation (§5): the DSE
// trajectory comparison of Fig. 3, the resource/frequency Table 2, the
// speedup comparison of Fig. 4, the per-application design-space summary
// (Table 1), and the stopping-criteria ablation. All runs use a virtual
// synthesis clock, so the full evaluation completes in seconds.
//
// Usage:
//
//	s2fa-bench                  # everything
//	s2fa-bench -exp fig4        # one experiment
//	s2fa-bench -seed 3          # different (still deterministic) run
//	s2fa-bench -par 8           # concurrent DSE engine (same output, faster)
//	s2fa-bench -bench BENCH_pr4.json        # record the performance baseline
//	s2fa-bench -bench-check BENCH_pr4.json  # re-measure, fail on regression
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"s2fa/internal/dse"
	"s2fa/internal/exp"
	"s2fa/internal/obs"
)

func main() {
	var (
		which      = flag.String("exp", "all", "experiment: fig3 | fig4 | table1 | table2 | ablation | components | all")
		seed       = flag.Int64("seed", 1, "random seed (reproducible)")
		par        = flag.Int("par", 0, "run DSE evaluations on N goroutines (0 = sequential reference engine; results are byte-identical either way)")
		jit        = flag.Bool("jit", true, "execute the JVM baselines through the closure-compiled engine (-jit=false interprets; results are byte-identical either way)")
		benchOut   = flag.String("bench", "", "measure the performance baseline (Fig. 3 on both engines + stage micros) and write it to this JSON file")
		benchCheck = flag.String("bench-check", "", "re-measure the baseline and fail on regression against this committed JSON file")
		cores      = flag.Bool("cores", false, "with -bench/-bench-check: sweep the parallel DSE pool from 1 to GOMAXPROCS and record the per-core scaling curve in the JSON report")
		compileN   = flag.Int("compile", 0, "measure compile throughput: N passes over the whole kernel suite through frontend + b2c, cold vs served from the compile cache (kernels/sec)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (DSE pool goroutines carry s2fa_pool_worker/s2fa_kernel/s2fa_partition pprof labels)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		runtimeMet = flag.String("runtime-metrics", "", "sample Go runtime metrics (GC pause, heap, allocs) while the benchmarks run and write the gauge snapshot JSON to this file at exit")
	)
	flag.Parse()

	// Profiling hooks mirror cmd/s2fa: they observe the benchmark
	// process and never feed anything back into the measured runs.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if *runtimeMet != "" {
		reg := obs.NewRegistry()
		// Defers run LIFO: the snapshot writer is registered first so the
		// sampler's final sample (its stop runs earlier) is included.
		defer func() {
			f, err := os.Create(*runtimeMet)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := reg.WriteJSON(f); err != nil {
				fatal(err)
			}
		}()
		stop := obs.StartRuntimeSampler(reg, 0)
		defer stop()
	}

	if *compileN > 0 {
		if err := runCompileBench(*compileN); err != nil {
			fatal(err)
		}
		return
	}

	if *benchOut != "" || *benchCheck != "" {
		var err error
		if *benchOut != "" {
			err = writeBench(*benchOut, *seed, *cores)
		} else {
			err = checkBench(*benchCheck, *seed, *cores)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "s2fa-bench:", err)
			os.Exit(1)
		}
		return
	}

	s := exp.NewSuite(*seed)
	s.JIT = *jit
	if *par > 0 {
		s.Engine = dse.EngineParallel
		s.Parallelism = *par
	}
	run := func(name string, f func() (string, error)) {
		if *which != "all" && *which != name {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "s2fa-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("table1", func() (string, error) {
		rows, err := exp.Table1(s)
		if err != nil {
			return "", err
		}
		return exp.RenderTable1(rows), nil
	})
	run("fig3", func() (string, error) {
		r, err := exp.Fig3(s, nil)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("table2", func() (string, error) {
		rows, err := exp.Table2(s)
		if err != nil {
			return "", err
		}
		return exp.RenderTable2(rows), nil
	})
	run("fig4", func() (string, error) {
		r, err := exp.Fig4(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("ablation", func() (string, error) {
		r, err := exp.StoppingAblation(s, nil)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("components", func() (string, error) {
		r, err := exp.ComponentAblation(s, nil)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s2fa-bench:", err)
	os.Exit(1)
}
