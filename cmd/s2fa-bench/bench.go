package main

// Performance baseline mode: `-bench FILE` measures the Fig. 3
// regeneration on both DSE engines and both JVM-baseline engines
// (closure-compiled JIT vs interpreter) plus the pipeline-stage micros
// and writes them as JSON; `-bench-check FILE` re-measures and fails on
// regression against the committed baseline. Wall-clock comparisons are
// only meaningful on matching hardware, so every gate is conditional:
//
//   - speedup >= minSpeedup and the JIT >= minJITSpeedup gate are
//     enforced only when the current machine has at least 4 CPUs (the
//     PR 4 convention: timing gates are meaningless on starved runners);
//   - the >20% regression gates apply only when the committed baseline
//     was recorded on a machine with the same CPU count.
//
// Besides wall-clock, the mode cross-checks determinism: the Fig. 3 and
// Fig. 4 renders must be byte-identical across the sequential engine,
// the parallel engine, and with the JVM-baseline JIT on or off.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"s2fa/internal/apps"
	"s2fa/internal/b2c"
	"s2fa/internal/ccache"
	"s2fa/internal/compile"
	"s2fa/internal/dse"
	"s2fa/internal/exp"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/jvmsim"
	"s2fa/internal/kdsl"
	"s2fa/internal/merlin"
	"s2fa/internal/obs"
	"s2fa/internal/space"
)

const (
	benchParallelism = 8
	minSpeedup       = 2.0
	// minJITSpeedup gates the closure-compiled JVM engine against the
	// interpreter on the S-W batch (the heaviest baseline workload).
	minJITSpeedup   = 3.0
	regressionSlack = 1.20 // fail when current > committed * this
	// minCacheSpeedup gates the compile cache: a full-suite pass served
	// from the cache must beat the cold pipeline by this factor. The
	// ratio is taken on one machine, so (unlike the wall-clock gates) it
	// is enforced unconditionally.
	minCacheSpeedup = 5.0
	// allocRuns is the sample count for the allocation measurements.
	allocRuns = 10
)

type benchReport struct {
	GoVersion string `json:"go_version"`
	Cores     int    `json:"cores"`
	// MaxProcs records GOMAXPROCS at measurement time: a container quota
	// or explicit cap can leave it well below Cores, which changes what
	// the parallel-engine numbers mean when comparing runs.
	MaxProcs int `json:"gomaxprocs"`
	// Fig3SequentialMS / Fig3ParallelMS are the wall-clock of one full
	// Fig. 3 regeneration (8 apps, S2FA + vanilla DSE, JVM baselines) on
	// each DSE engine with the JVM-baseline JIT on; Speedup is their
	// ratio. Fig3SeqNoJITMS is the sequential run with the baselines
	// interpreted — the pre-JIT reference wall-clock.
	Fig3SequentialMS float64 `json:"fig3_sequential_ms"`
	Fig3SeqNoJITMS   float64 `json:"fig3_seq_nojit_ms"`
	Fig3ParallelMS   float64 `json:"fig3_par8_ms"`
	ParallelPool     int     `json:"parallel_pool"`
	Speedup          float64 `json:"speedup"`
	// JVMBaselineInterpMS / JVMBaselineJITMS are the wall-clock of the
	// suite's JVM-baseline calibration (all 8 apps) on each engine; the
	// share fields express them as a percentage of the corresponding
	// Fig. 3 regeneration — the serial cost center the JIT shrinks.
	JVMBaselineInterpMS float64 `json:"jvm_baseline_interp_ms"`
	JVMBaselineJITMS    float64 `json:"jvm_baseline_jit_ms"`
	JVMShareBeforePct   float64 `json:"jvm_share_before_pct"`
	JVMShareAfterPct    float64 `json:"jvm_share_after_pct"`
	// JITSpeedupSW is interpreter/JIT wall-clock on the S-W task batch.
	JITSpeedupSW float64 `json:"jit_speedup_sw"`
	// Scaling is the -cores sweep: one full Fig. 3 regeneration per pool
	// size from 1 to GOMAXPROCS, each verified byte-identical to the
	// sequential render. It is the in-repo data behind the parallel
	// engine's speedup gate — on a multi-core runner the curve shows
	// where the replay-ordered merge stops scaling. Empty unless the
	// sweep was requested.
	Scaling []scalePoint `json:"scaling,omitempty"`
	// StageMicros are per-stage single-threaded microbenchmarks (us/op),
	// mirroring the Benchmark* micros in bench_test.go.
	StageMicros map[string]float64 `json:"stage_micros"`
	// StagePercentiles carry the tail of the same measurement loops
	// (p50/p99 us/op from a log-bucket histogram), so BENCH_* baselines
	// track tail behavior, not just averages. Absent in baselines
	// recorded before the metrics registry existed; the regression gates
	// read only StageMicros, so old files stay valid.
	StagePercentiles map[string]stagePct `json:"stage_percentiles,omitempty"`
	// CompileColdUSOp / CompileCachedUSOp time one full source-to-kernel
	// pass over the whole workload suite: cold (frontend + verify +
	// absint + b2c per kernel) vs served from the content-addressed
	// compile cache (one source hash + one integrity checksum per
	// kernel). CacheSpeedup is their ratio, gated unconditionally at
	// minCacheSpeedup — a same-machine ratio, unlike the wall-clock
	// gates. Zero in baselines recorded before the cache existed.
	CompileColdUSOp   float64 `json:"compile_cold_us_op,omitempty"`
	CompileCachedUSOp float64 `json:"compile_cached_us_op,omitempty"`
	CacheSpeedup      float64 `json:"cache_speedup,omitempty"`
	// FrontendAllocsPerOp / B2CAllocsPerOp count heap allocations of one
	// cold suite pass of the corresponding stage (runtime.MemStats
	// deltas). Allocation counts are hardware-independent, so their >20%
	// regression gates apply regardless of core counts.
	FrontendAllocsPerOp float64 `json:"frontend_allocs_per_op,omitempty"`
	B2CAllocsPerOp      float64 `json:"b2c_allocs_per_op,omitempty"`
}

// stagePct is the tail of one stage's measurement loop, in us/op.
type stagePct struct {
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

// scalePoint is one pool size of the -cores scaling sweep.
type scalePoint struct {
	Pool int `json:"pool"`
	// MS is the Fig. 3 regeneration wall-clock at this pool size;
	// Speedup is the sequential engine's wall-clock divided by it.
	MS      float64 `json:"ms"`
	Speedup float64 `json:"speedup"`
}

// timeIt measures fn in us/op, iterating until ~200ms of samples.
func timeIt(fn func()) float64 {
	fn() // warm caches
	var n int
	start := time.Now()
	for time.Since(start) < 200*time.Millisecond {
		fn()
		n++
	}
	return float64(time.Since(start).Microseconds()) / float64(n)
}

// timeItDist is timeIt with every iteration also recorded into a
// log-bucket histogram, yielding the tail percentiles alongside the
// mean. The per-iteration clock reads add nanoseconds to a loop whose
// ops are microseconds, so the mean stays comparable with baselines
// recorded by plain timeIt.
func timeItDist(fn func()) (float64, stagePct) {
	fn() // warm caches
	h := obs.NewHistogram()
	var n int
	start := time.Now()
	for time.Since(start) < 200*time.Millisecond {
		t0 := time.Now()
		fn()
		h.Observe(float64(time.Since(t0).Nanoseconds()) / 1e3)
		n++
	}
	mean := float64(time.Since(start).Microseconds()) / float64(n)
	return mean, stagePct{P50: h.P50(), P99: h.P99()}
}

// allocsPerRun reports the mean heap allocations of one fn() call,
// measured over allocRuns calls from runtime.MemStats deltas. Unlike
// wall-clock, the count is hardware-independent.
func allocsPerRun(fn func()) float64 {
	fn() // warm caches and lazy inits
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < allocRuns; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / allocRuns
}

// fig3MS regenerates Fig. 3 (timed) and Fig. 4 (on the same warm suite,
// untimed) and returns the Fig. 3 wall-clock plus both renders
// concatenated — the determinism witness compared across engines.
func fig3MS(seed int64, engine dse.Engine, pool int, jit bool) (float64, string, error) {
	s := exp.NewSuite(seed)
	s.Engine = engine
	s.Parallelism = pool
	s.JIT = jit
	start := time.Now()
	r, err := exp.Fig3(s, nil)
	if err != nil {
		return 0, "", err
	}
	ms := float64(time.Since(start).Microseconds()) / 1000
	f4, err := exp.Fig4(s)
	if err != nil {
		return 0, "", err
	}
	return ms, r.Render() + "\n" + f4.Render(), nil
}

// jvmBaselineMS times the suite's per-app JVM-baseline calibration (the
// sample batch each AppResult executes) across all 8 workloads.
func jvmBaselineMS(jit bool) (float64, error) {
	start := time.Now()
	for _, a := range apps.All() {
		if _, err := exp.JVMSecondsForEngine(a, a.Tasks, jit, nil); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

// jitSpeedupSW measures interpreter vs closure-compiled wall-clock on
// the S-W task batch (the BenchmarkJVMBaseline/S-W pairing).
func jitSpeedupSW() (float64, error) {
	a := apps.Get("S-W")
	cls, err := a.Class()
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(5))
	tasks := a.Gen(rng, 8)
	vmI := jvmsim.New(cls)
	interp := timeIt(func() {
		if _, err := vmI.CallBatch(tasks); err != nil {
			panic(err)
		}
	})
	vmJ, err := jvmsim.NewJIT(cls)
	if err != nil {
		return 0, err
	}
	jit := timeIt(func() {
		if _, err := vmJ.CallBatch(tasks); err != nil {
			panic(err)
		}
	})
	if jit <= 0 {
		return 0, fmt.Errorf("jit batch measured at %.1fus", jit)
	}
	return interp / jit, nil
}

func measure(seed int64, sweepCores bool) (*benchReport, error) {
	rep := &benchReport{
		GoVersion:        runtime.Version(),
		Cores:            runtime.NumCPU(),
		MaxProcs:         runtime.GOMAXPROCS(0),
		ParallelPool:     benchParallelism,
		StageMicros:      map[string]float64{},
		StagePercentiles: map[string]stagePct{},
	}
	stage := func(name string, fn func()) {
		mean, pct := timeItDist(fn)
		rep.StageMicros[name] = mean
		rep.StagePercentiles[name] = pct
	}

	seqMS, seqOut, err := fig3MS(seed, dse.EngineSequential, 0, true)
	if err != nil {
		return nil, err
	}
	noJITMS, noJITOut, err := fig3MS(seed, dse.EngineSequential, 0, false)
	if err != nil {
		return nil, err
	}
	parMS, parOut, err := fig3MS(seed, dse.EngineParallel, benchParallelism, true)
	if err != nil {
		return nil, err
	}
	if seqOut != parOut {
		return nil, fmt.Errorf("parallel Fig. 3/4 output diverged from sequential — determinism bug, timings are meaningless")
	}
	if seqOut != noJITOut {
		return nil, fmt.Errorf("Fig. 3/4 output diverged between JVM engines — the JIT broke cost accounting, timings are meaningless")
	}
	rep.Fig3SequentialMS = seqMS
	rep.Fig3SeqNoJITMS = noJITMS
	rep.Fig3ParallelMS = parMS
	rep.Speedup = seqMS / parMS

	if sweepCores {
		for pool := 1; pool <= rep.MaxProcs; pool++ {
			ms, out, err := fig3MS(seed, dse.EngineParallel, pool, true)
			if err != nil {
				return nil, err
			}
			if out != seqOut {
				return nil, fmt.Errorf("pool-%d Fig. 3/4 output diverged from sequential — determinism bug, the scaling curve is meaningless", pool)
			}
			rep.Scaling = append(rep.Scaling, scalePoint{Pool: pool, MS: ms, Speedup: seqMS / ms})
		}
	}

	interpMS, err := jvmBaselineMS(false)
	if err != nil {
		return nil, err
	}
	jitMS, err := jvmBaselineMS(true)
	if err != nil {
		return nil, err
	}
	rep.JVMBaselineInterpMS = interpMS
	rep.JVMBaselineJITMS = jitMS
	if noJITMS > 0 {
		rep.JVMShareBeforePct = 100 * interpMS / noJITMS
	}
	if seqMS > 0 {
		rep.JVMShareAfterPct = 100 * jitMS / seqMS
	}
	if rep.JITSpeedupSW, err = jitSpeedupSW(); err != nil {
		return nil, err
	}

	srcs := make([]string, 0, 8)
	for _, a := range apps.All() {
		srcs = append(srcs, a.Source)
	}
	stage("frontend", func() {
		for _, src := range srcs {
			if _, err := kdsl.CompileSource(src); err != nil {
				panic(err)
			}
		}
	})
	stage("b2c", func() {
		for _, a := range apps.All() {
			c, _ := a.Class()
			if _, err := b2c.Compile(c); err != nil {
				panic(err)
			}
		}
	})

	sc := compile.NewScratch()
	coldPass := func() {
		for _, src := range srcs {
			cls, err := kdsl.CompileSourceScratch(src, sc)
			if err != nil {
				panic(err)
			}
			if _, err := b2c.CompileScratch(cls, nil, sc); err != nil {
				panic(err)
			}
		}
	}
	cache := ccache.New()
	cachedPass := func() {
		for _, src := range srcs {
			if _, _, err := cache.CompileSource(src, nil, sc); err != nil {
				panic(err)
			}
		}
	}
	rep.CompileColdUSOp = timeIt(coldPass)
	rep.CompileCachedUSOp = timeIt(cachedPass)
	if rep.CompileCachedUSOp > 0 {
		rep.CacheSpeedup = rep.CompileColdUSOp / rep.CompileCachedUSOp
	}
	rep.FrontendAllocsPerOp = allocsPerRun(func() {
		for _, src := range srcs {
			if _, err := kdsl.CompileSource(src); err != nil {
				panic(err)
			}
		}
	})
	rep.B2CAllocsPerOp = allocsPerRun(func() {
		for _, a := range apps.All() {
			c, _ := a.Class()
			if _, err := b2c.Compile(c); err != nil {
				panic(err)
			}
		}
	})

	a := apps.Get("S-W")
	k, err := a.Kernel()
	if err != nil {
		return nil, err
	}
	dev := fpga.VU9P()
	sp := space.Identify(k)
	ann, err := merlin.Annotate(k, sp.Directives(sp.PerformanceSeed()))
	if err != nil {
		return nil, err
	}
	stage("space_identify", func() { space.Identify(k) })
	stage("hls_estimate", func() { hls.Estimate(ann, dev, int64(a.Tasks), hls.Options{}) })
	stage("merlin_annotate", func() {
		if _, err := merlin.Annotate(k, sp.Directives(sp.PerformanceSeed())); err != nil {
			panic(err)
		}
	})
	return rep, nil
}

func writeBench(path string, seed int64, sweepCores bool) error {
	rep, err := measure(seed, sweepCores)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: fig3 %.0fms sequential (%.0fms interpreted), %.0fms par%d (%.2fx) on %d cores\n",
		path, rep.Fig3SequentialMS, rep.Fig3SeqNoJITMS, rep.Fig3ParallelMS, rep.ParallelPool, rep.Speedup, rep.Cores)
	fmt.Printf("JVM baseline: %.0fms interpreted (%.0f%% of fig3) -> %.0fms jit (%.0f%%), S-W speedup %.2fx\n",
		rep.JVMBaselineInterpMS, rep.JVMShareBeforePct, rep.JVMBaselineJITMS, rep.JVMShareAfterPct, rep.JITSpeedupSW)
	printScaling(rep.Scaling)
	return nil
}

// printScaling renders the -cores sweep one pool per line.
func printScaling(curve []scalePoint) {
	for _, p := range curve {
		fmt.Printf("scaling: pool %2d  %8.0fms  %.2fx\n", p.Pool, p.MS, p.Speedup)
	}
}

// runCompileBench is the `-compile N` mode: N timed passes over the
// whole workload suite through the frontend + b2c pipeline, cold vs
// served from the content-addressed compile cache, reported as
// kernels/sec alongside the cache's own counters.
func runCompileBench(n int) error {
	srcs := make([]string, 0, 8)
	for _, a := range apps.All() {
		srcs = append(srcs, a.Source)
	}
	kernels := float64(n * len(srcs))
	sc := compile.NewScratch()

	// Warm both paths once so lazy initialization is off the clock.
	for _, src := range srcs {
		cls, err := kdsl.CompileSourceScratch(src, sc)
		if err != nil {
			return err
		}
		if _, err := b2c.CompileScratch(cls, nil, sc); err != nil {
			return err
		}
	}

	start := time.Now()
	for i := 0; i < n; i++ {
		for _, src := range srcs {
			cls, err := kdsl.CompileSourceScratch(src, sc)
			if err != nil {
				return err
			}
			if _, err := b2c.CompileScratch(cls, nil, sc); err != nil {
				return err
			}
		}
	}
	coldSec := time.Since(start).Seconds()

	cache := ccache.New()
	for _, src := range srcs { // first pass populates the cache
		if _, _, err := cache.CompileSource(src, nil, sc); err != nil {
			return err
		}
	}
	start = time.Now()
	for i := 0; i < n; i++ {
		for _, src := range srcs {
			if _, _, err := cache.CompileSource(src, nil, sc); err != nil {
				return err
			}
		}
	}
	cachedSec := time.Since(start).Seconds()

	st := cache.Stats()
	fmt.Printf("compile throughput over %d kernels x %d passes:\n", len(srcs), n)
	fmt.Printf("  cold   : %8.0f kernels/sec (%.1fms per suite pass)\n", kernels/coldSec, 1000*coldSec/float64(n))
	fmt.Printf("  cached : %8.0f kernels/sec (%.1fms per suite pass, %.1fx)\n",
		kernels/cachedSec, 1000*cachedSec/float64(n), coldSec/cachedSec)
	fmt.Printf("  cache  : %d hits (%d source, %d semantic), %d misses, %d poisoned, %d bytes cached\n",
		st.Hits(), st.SourceHits, st.SemanticHits, st.Misses, st.Poisoned, st.Bytes)
	return nil
}

func checkBench(path string, seed int64, sweepCores bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed benchReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	cur, err := measure(seed, sweepCores)
	if err != nil {
		return err
	}
	printScaling(cur.Scaling)
	fmt.Printf("baseline  (%d cores, %s): fig3 %.0fms seq, %.0fms par%d, %.2fx; jit S-W %.2fx\n",
		committed.Cores, committed.GoVersion, committed.Fig3SequentialMS,
		committed.Fig3ParallelMS, committed.ParallelPool, committed.Speedup, committed.JITSpeedupSW)
	fmt.Printf("this run  (%d cores, %s): fig3 %.0fms seq, %.0fms par%d, %.2fx; jit S-W %.2fx\n",
		cur.Cores, cur.GoVersion, cur.Fig3SequentialMS,
		cur.Fig3ParallelMS, cur.ParallelPool, cur.Speedup, cur.JITSpeedupSW)

	var failures []string
	if cur.Cores >= 4 {
		if cur.Speedup < minSpeedup {
			failures = append(failures, fmt.Sprintf(
				"parallel engine speedup %.2fx < required %.1fx on %d cores",
				cur.Speedup, minSpeedup, cur.Cores))
		}
		if cur.JITSpeedupSW < minJITSpeedup {
			failures = append(failures, fmt.Sprintf(
				"JVM JIT speedup %.2fx < required %.1fx on S-W (%d cores)",
				cur.JITSpeedupSW, minJITSpeedup, cur.Cores))
		}
	} else {
		fmt.Printf("skipping the %.1fx parallel and %.1fx JIT speedup gates: only %d CPU(s) available\n",
			minSpeedup, minJITSpeedup, cur.Cores)
	}
	// Same-machine ratios and allocation counts are hardware-independent:
	// these gates apply unconditionally.
	fmt.Printf("compile: cold %.0fus/pass, cached %.0fus/pass (%.1fx); allocs/pass frontend %.0f, b2c %.0f\n",
		cur.CompileColdUSOp, cur.CompileCachedUSOp, cur.CacheSpeedup,
		cur.FrontendAllocsPerOp, cur.B2CAllocsPerOp)
	if cur.CacheSpeedup < minCacheSpeedup {
		failures = append(failures, fmt.Sprintf(
			"compile cache speedup %.2fx < required %.1fx (cold %.0fus vs cached %.0fus per suite pass)",
			cur.CacheSpeedup, minCacheSpeedup, cur.CompileColdUSOp, cur.CompileCachedUSOp))
	}
	allocGate := func(name string, committed, current float64) {
		if committed > 0 && current > committed*regressionSlack {
			failures = append(failures, fmt.Sprintf(
				"%s regressed: %.0f -> %.0f allocs/pass (>%.0f%%)",
				name, committed, current, (regressionSlack-1)*100))
		}
	}
	allocGate("frontend allocations", committed.FrontendAllocsPerOp, cur.FrontendAllocsPerOp)
	allocGate("b2c allocations", committed.B2CAllocsPerOp, cur.B2CAllocsPerOp)
	if committed.Cores == cur.Cores {
		gate := func(name string, committed, current float64) {
			if committed > 0 && current > committed*regressionSlack {
				failures = append(failures, fmt.Sprintf(
					"%s regressed: %.1f -> %.1f (>%.0f%%)",
					name, committed, current, (regressionSlack-1)*100))
			}
		}
		gate("fig3_sequential_ms", committed.Fig3SequentialMS, cur.Fig3SequentialMS)
		gate("fig3_par8_ms", committed.Fig3ParallelMS, cur.Fig3ParallelMS)
		gate("jvm_baseline_jit_ms", committed.JVMBaselineJITMS, cur.JVMBaselineJITMS)
		names := make([]string, 0, len(committed.StageMicros))
		for name := range committed.StageMicros {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			gate("stage "+name+" (us/op)", committed.StageMicros[name], cur.StageMicros[name])
		}
	} else {
		fmt.Printf("skipping the >%.0f%% regression gates: baseline was recorded on %d cores, this machine has %d\n",
			(regressionSlack-1)*100, committed.Cores, cur.Cores)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "s2fa-bench: FAIL:", f)
		}
		return fmt.Errorf("%d performance gate(s) failed", len(failures))
	}
	fmt.Println("all performance gates passed")
	return nil
}
