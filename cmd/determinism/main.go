// Command determinism lints the DSE/HLS/tuner hot paths for constructs
// that break run-to-run reproducibility (wall-clock reads, the global
// math/rand generator, map iteration order). It is the CI entry point
// for internal/analyzers/determinism; run it from the repository root:
//
//	go run ./cmd/determinism             # lint the default hot paths
//	go run ./cmd/determinism ./internal/foo ...
//
// Exit status 1 when any finding survives its allow-annotations.
package main

import (
	"fmt"
	"os"
	"strings"

	"s2fa/internal/analyzers/determinism"
)

// hotPaths are the packages whose outputs must be pure functions of
// (kernel, configuration, seed).
var hotPaths = []string{
	"internal/access",
	"internal/ccache",
	"internal/compile",
	"internal/depend",
	"internal/dse",
	"internal/hls",
	"internal/obs",
	"internal/tuner",
}

func main() {
	targets := hotPaths
	if args := os.Args[1:]; len(args) > 0 {
		targets = nil
		for _, a := range args {
			targets = append(targets, strings.TrimPrefix(a, "./"))
		}
	}
	findings, err := determinism.Check(".", targets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determinism:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "determinism: %d finding(s) in %s\n", len(findings), strings.Join(targets, ", "))
		os.Exit(1)
	}
	fmt.Printf("determinism: %s clean\n", strings.Join(targets, ", "))
}
