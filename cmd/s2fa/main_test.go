package main

import "testing"

// TestUnknownAppMessage pins the -app rejection text: every valid
// workload name, in Table 2 order, so a typo is a one-screen fix.
func TestUnknownAppMessage(t *testing.T) {
	const want = `unknown app "Foo" (valid workloads: PR, KMeans, KNN, LR, SVM, LLS, AES, S-W)`
	if got := unknownAppMessage("Foo"); got != want {
		t.Errorf("unknownAppMessage(\"Foo\"):\n got %s\nwant %s", got, want)
	}
}
