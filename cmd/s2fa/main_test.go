package main

import (
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/kdsl"
)

// TestUnknownAppMessage pins the -app rejection text: every valid
// workload name, in Table 2 order, so a typo is a one-screen fix.
func TestUnknownAppMessage(t *testing.T) {
	const want = `unknown app "Foo" (valid workloads: PR, KMeans, KNN, LR, SVM, LLS, AES, S-W, Conv, Hist, TopK, StrSearch)`
	if got := unknownAppMessage("Foo"); got != want {
		t.Errorf("unknownAppMessage(\"Foo\"):\n got %s\nwant %s", got, want)
	}
}

// TestAccessReportSW checks the -explain memory section on the
// Smith-Waterman workload: the access table classifies the cell loop's
// H traversal as burst with the 32-lane port cap attached, names the
// strided row hop on the outer loop, and the guidance explains the
// traceback gathers and the BRAM port ceiling.
func TestAccessReportSW(t *testing.T) {
	cls, err := kdsl.CompileSource(apps.Get("S-W").Source)
	if err != nil {
		t.Fatal(err)
	}
	out := accessReport(cls, "S-W.kdsl")
	for _, want := range []string{
		"memory access patterns",
		"L2 [port-cap 32 lanes]",
		"H          local  class=burst     stride=1",
		"class=strided   stride=129",
		"(site positions are S-W.kdsl:line:col)",
		"why is this kernel memory-bound?",
		"indirect subscripts still serialize",
		"loop L2: on-chip bank ports cap useful parallel lanes at 32",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("accessReport missing %q in:\n%s", want, out)
		}
	}
}

// TestDependReportSW checks the -explain dependence section on the
// Smith-Waterman workload: the verdict table names the H recurrence with
// a sourced witness pair, and the guidance explains why parallel lanes
// on the cell loops need the wavefront pipeline.
func TestDependReportSW(t *testing.T) {
	cls, err := kdsl.CompileSource(apps.Get("S-W").Source)
	if err != nil {
		t.Fatal(err)
	}
	out := dependReport(cls, "S-W.kdsl")
	for _, want := range []string{
		"loop dependence verdicts",
		"witness:",
		"(witness positions are S-W.kdsl:line:col)",
		"directive guidance",
		"parallel 16 on L2: lanes contend on H",
		"lanes serialize, no speedup unless wavefront",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dependReport missing %q in:\n%s", want, out)
		}
	}
}
