package main

import (
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/kdsl"
)

// TestUnknownAppMessage pins the -app rejection text: every valid
// workload name, in Table 2 order, so a typo is a one-screen fix.
func TestUnknownAppMessage(t *testing.T) {
	const want = `unknown app "Foo" (valid workloads: PR, KMeans, KNN, LR, SVM, LLS, AES, S-W)`
	if got := unknownAppMessage("Foo"); got != want {
		t.Errorf("unknownAppMessage(\"Foo\"):\n got %s\nwant %s", got, want)
	}
}

// TestDependReportSW checks the -explain dependence section on the
// Smith-Waterman workload: the verdict table names the H recurrence with
// a sourced witness pair, and the guidance explains why parallel lanes
// on the cell loops need the wavefront pipeline.
func TestDependReportSW(t *testing.T) {
	cls, err := kdsl.CompileSource(apps.Get("S-W").Source)
	if err != nil {
		t.Fatal(err)
	}
	out := dependReport(cls, "S-W.kdsl")
	for _, want := range []string{
		"loop dependence verdicts",
		"witness:",
		"(witness positions are S-W.kdsl:line:col)",
		"directive guidance",
		"parallel 16 on L2: lanes contend on H",
		"lanes serialize, no speedup unless wavefront",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dependReport missing %q in:\n%s", want, out)
		}
	}
}
