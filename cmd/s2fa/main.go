// Command s2fa runs the Spark-to-FPGA-Accelerator pipeline on one kernel:
// it compiles Scala-subset kernel source (or one of the built-in paper
// workloads) to bytecode, decompiles it to HLS C, explores the design
// space, and reports the chosen accelerator design.
//
// Usage:
//
//	s2fa -app S-W                       # built-in workload
//	s2fa -src kernel.scala              # your own kernel class
//	s2fa -app KMeans -dse vanilla       # OpenTuner baseline exploration
//	s2fa -app AES -dump-bytecode -dump-c
//	s2fa -app S-W -lint                 # static verifier findings only
//	s2fa -src kernel.scala -explain     # abstract-interpretation fact report
//	s2fa -app S-W -trace run.json -trace-format chrome   # Perfetto trace
//	s2fa -app KMeans -summary           # post-run observability report
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"s2fa/internal/absint"
	"s2fa/internal/access"
	"s2fa/internal/apps"
	"s2fa/internal/b2c"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/core"
	"s2fa/internal/depend"
	"s2fa/internal/dse"
	"s2fa/internal/exp"
	"s2fa/internal/kdsl"
	"s2fa/internal/lint"
	"s2fa/internal/obs"
)

func main() {
	var (
		srcPath     = flag.String("src", "", "path to a kernel class source file")
		appName     = flag.String("app", "", "built-in workload name (PR, KMeans, KNN, LR, SVM, LLS, AES, S-W)")
		dseMode     = flag.String("dse", "s2fa", "exploration mode: s2fa | vanilla | trivial")
		par         = flag.Int("par", 0, "run DSE evaluations on N goroutines (0 = sequential reference engine; results are byte-identical either way)")
		tasks       = flag.Int("tasks", 4096, "batch size the design is optimized for")
		seed        = flag.Int64("seed", 1, "random seed (reproducible runs)")
		jit         = flag.Bool("jit", true, "execute the JVM baseline through the closure-compiled engine (-jit=false interprets; results are byte-identical either way)")
		lintOnly    = flag.Bool("lint", false, "run the static verifier on the generated kernel, print findings, and exit (status 1 on errors)")
		explain     = flag.Bool("explain", false, "print the abstract interpreter's fact report (§3.3 violations with kdsl positions, purity, value ranges) and exit (status 1 on violations)")
		dumpBC      = flag.Bool("dump-bytecode", false, "print the compiled bytecode")
		dumpC       = flag.Bool("dump-c", false, "print the generated HLS C before DSE")
		dumpBest    = flag.Bool("dump-best", false, "print the chosen design's annotated HLS C")
		tracePath   = flag.String("trace", "", "write pipeline + DSE trace events to this file")
		traceFormat = flag.String("trace-format", "jsonl", "trace file format: jsonl | chrome (load the latter in chrome://tracing or Perfetto)")
		summary     = flag.Bool("summary", false, "print a post-run observability report (stage times, slowest HLS estimations, bandit arms, entropy sparkline)")

		metricsPath  = flag.String("metrics", "", "write a metrics-registry snapshot (per-stage latency histograms with p50/p90/p99, counters, gauges) to this file")
		metricsForm  = flag.String("metrics-format", "json", "metrics snapshot format: json (for s2fa-report) | prom (Prometheus text exposition)")
		recorderPath = flag.String("recorder", "", "attach the flight recorder and write its anomaly dumps (slow HLS estimations, budget-exhausted stops, blaze fallbacks) to this file")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file (DSE pool goroutines carry s2fa_pool_worker/s2fa_kernel/s2fa_partition pprof labels)")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		runtimeMet   = flag.Bool("runtime-metrics", false, "sample Go runtime metrics (GC pause, heap, allocs) into the metrics registry while the run executes")
	)
	flag.Parse()

	if (*srcPath == "") == (*appName == "") {
		fmt.Fprintln(os.Stderr, "specify exactly one of -src or -app")
		flag.Usage()
		os.Exit(2)
	}

	var src string
	switch {
	case *srcPath != "":
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		a := apps.Get(*appName)
		if a == nil {
			fmt.Fprintln(os.Stderr, "s2fa: "+unknownAppMessage(*appName))
			os.Exit(2)
		}
		src = a.Source
		if *tasks == 4096 {
			*tasks = a.Tasks
		}
	}

	// Observability: trace file and/or in-process summary collector. A nil
	// trace is free; a live one never changes the run (see internal/obs).
	var sinks []obs.Sink
	var collector *obs.Collector
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		switch *traceFormat {
		case "jsonl":
			sinks = append(sinks, obs.NewJSONL(f))
		case "chrome":
			sinks = append(sinks, obs.NewChrome(f))
		default:
			fatal(fmt.Errorf("unknown -trace-format %q (want jsonl or chrome)", *traceFormat))
		}
	}
	if *summary {
		collector = obs.NewCollector()
		sinks = append(sinks, collector)
	}
	var recorder *obs.Recorder
	if *recorderPath != "" {
		recorder = obs.NewRecorder(obs.RecorderConfig{})
		sinks = append(sinks, recorder)
	}
	var reg *obs.Registry
	if *metricsPath != "" || *runtimeMet {
		reg = obs.NewRegistry()
	}
	var tr *obs.Trace
	if len(sinks) > 0 || reg != nil {
		var opts []obs.Option
		if reg != nil {
			opts = append(opts, obs.WithRegistry(reg))
		}
		sink := obs.Sink(obs.Discard())
		if len(sinks) > 0 {
			sink = obs.Multi(sinks...)
		}
		tr = obs.New(sink, opts...)
	}

	// Profiling hooks. The profiles and samplers observe the run; they
	// never feed anything back into it.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	// Defers run LIFO: the snapshot writer is registered first so the
	// sampler's final sample (its stop runs earlier) is included.
	if reg != nil && *metricsPath != "" {
		defer func() {
			f, err := os.Create(*metricsPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			switch *metricsForm {
			case "json":
				err = reg.WriteJSON(f)
			case "prom":
				err = reg.WritePrometheus(f)
			default:
				err = fmt.Errorf("unknown -metrics-format %q (want json or prom)", *metricsForm)
			}
			if err != nil {
				fatal(err)
			}
		}()
	}
	if *runtimeMet {
		stop := obs.StartRuntimeSampler(reg, 0)
		defer stop()
	}
	if recorder != nil {
		defer func() {
			f, err := os.Create(*recorderPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := recorder.WriteJSON(f); err != nil {
				fatal(err)
			}
			if n := len(recorder.Dumps()); n > 0 {
				fmt.Printf("flight recorder: %d anomaly dump(s) written to %s\n", n, *recorderPath)
			}
		}()
	}

	fw := core.New()
	fw.Seed = *seed
	fw.Tasks = *tasks
	fw.Trace = tr
	var cfg dse.Config
	switch *dseMode {
	case "s2fa":
		cfg = dse.S2FAConfig(*seed)
	case "vanilla":
		cfg = dse.VanillaConfig(*seed)
	case "trivial":
		cfg = dse.TrivialStopConfig(*seed)
	default:
		fatal(fmt.Errorf("unknown -dse mode %q", *dseMode))
	}
	if *par > 0 {
		cfg.Engine = dse.EngineParallel
		cfg.Parallelism = *par
	}
	fw.DSE = &cfg

	// The file label prefixed to §3.3 diagnostics (file:line:col).
	fileLabel := *srcPath
	if fileLabel == "" {
		fileLabel = *appName + ".kdsl"
	}

	kspan := tr.Begin("kdsl", "compile", obs.Int("src_bytes", len(src)))
	cls, err := kdsl.CompileSource(src)
	kspan.End(obs.Bool("ok", err == nil))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compiled class %s (accelerator id %q, pattern %s)\n", cls.Name, cls.ID, cls.Pattern())
	if *dumpBC {
		fmt.Println(bytecode.DisassembleClass(cls))
	}

	if *explain {
		facts, err := absint.DiagnoseClass(cls)
		if err != nil {
			fatal(err)
		}
		fmt.Print(absint.Explain(facts, fileLabel))
		if len(facts.Violations()) > 0 {
			os.Exit(1)
		}
		fmt.Print(dependReport(cls, fileLabel))
		fmt.Print(accessReport(cls, fileLabel))
		return
	}
	if *lintOnly {
		// §3.3 legality first: a violating kernel never reaches the C
		// generator, so its diagnostics come from the bytecode analyzer
		// with kdsl positions attached.
		facts, err := absint.DiagnoseClass(cls)
		if err != nil {
			fatal(err)
		}
		if vs := facts.Violations(); len(vs) > 0 {
			fmt.Printf("lint: %s: %d §3.3 violation(s)\n", cls.Name, len(vs))
			for _, v := range vs {
				fmt.Println(v.Sourced(fileLabel))
			}
			os.Exit(1)
		}
	}

	kernel, err := b2c.CompileTraced(cls, tr)
	if err != nil {
		// Surface any sourced §3.3 diagnostics alongside the compile error.
		if facts, derr := absint.DiagnoseClass(cls); derr == nil {
			for _, v := range facts.Violations() {
				fmt.Fprintln(os.Stderr, "s2fa: "+v.Sourced(fileLabel))
			}
		}
		fatal(err)
	}
	if *dumpC {
		fmt.Println("--- generated HLS C (pre-DSE) ---")
		fmt.Println(cir.Print(kernel))
	}
	if *lintOnly {
		fs := lint.Lint(kernel)
		if len(fs) == 0 {
			fmt.Printf("lint: %s: no findings\n", kernel.Name)
			return
		}
		fmt.Printf("lint: %s: %d error(s), %d warning(s)\n", kernel.Name, len(fs.Errors()), len(fs.Warnings()))
		fmt.Println(fs.String())
		if fs.HasErrors() {
			os.Exit(1)
		}
		return
	}

	build, err := fw.BuildFromClass(cls, kernel)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("design space: %d parameters, %.3g points\n", len(build.Space.Params), build.Space.Cardinality())
	fmt.Printf("DSE (%s): %d evaluations over %.0f virtual minutes, %d partitions, stopped: %s\n",
		*dseMode, build.Outcome.Evaluations, build.Outcome.TotalMinutes,
		len(build.Outcome.Partitions), build.Outcome.StopReason)
	for i, p := range build.Outcome.Partitions {
		fmt.Printf("  partition %d: %s\n", i, p.String())
	}
	fmt.Printf("best design: %v\n", build.Best)
	fmt.Printf("estimated kernel time for %d tasks: %.6fs\n", *tasks, build.Best.Seconds())
	// For built-in workloads, report the Fig. 4 comparison point: the
	// modeled single-thread JVM executor time and the resulting speedup.
	if a := apps.Get(*appName); a != nil {
		engine := "interpreter"
		if *jit {
			engine = "jit"
		}
		jvmSec, err := exp.JVMSecondsForEngine(a, *tasks, *jit, tr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("JVM baseline (single-thread executor, %s): %.6fs\n", engine, jvmSec)
		if s := build.Best.Seconds(); s > 0 {
			fmt.Printf("speedup over JVM: %.2fx\n", jvmSec/s)
		}
	}
	if *dumpBest {
		fmt.Println("--- chosen design (annotated HLS C) ---")
		fmt.Println(build.BestHLSSource())
	}
	if err := tr.Close(); err != nil {
		fatal(fmt.Errorf("writing trace: %w", err))
	}
	if collector != nil {
		fmt.Println("--- run summary ---")
		fmt.Print(collector.Render())
	}
}

// dependReport renders the exact dependence analysis behind every
// legality verdict, II bound, and DSE collapse for the compiled kernel:
// the per-loop verdict table (witness access pairs carry kdsl positions)
// followed by "why would this factor be rejected?" guidance probing the
// most aggressive directives on each loop. Kernels the C generator
// rejects return nothing — the §3.3 report above already covers them.
func dependReport(cls *bytecode.Class, fileLabel string) string {
	kernel, err := b2c.Compile(cls)
	if err != nil {
		return ""
	}
	dep := depend.Analyze(kernel)
	var b strings.Builder
	b.WriteString("\n")
	b.WriteString(dep.Table())
	fmt.Fprintf(&b, "  (witness positions are %s:line:col)\n", fileLabel)
	var notes []string
	for _, id := range dep.Order {
		notes = append(notes, dep.ExplainFactor(id, cir.LoopOpt{Parallel: 16, Pipeline: cir.PipeOn})...)
	}
	if len(notes) > 0 {
		b.WriteString("directive guidance (probing parallel 16 + pipeline on every loop):\n")
		for _, n := range notes {
			fmt.Fprintf(&b, "  %s\n", n)
		}
	}
	return b.String()
}

// accessReport renders the static memory-access classification behind
// the DDR bandwidth model, the bank-port lane caps, and the
// access-driven DSE collapse: the per-loop access table (class, stride,
// footprint, reuse — site positions carry kdsl coordinates) followed by
// "why is this kernel memory-bound?" guidance naming gather buffers and
// port-capped loops. Kernels the C generator rejects return nothing —
// the §3.3 report above already covers them.
func accessReport(cls *bytecode.Class, fileLabel string) string {
	kernel, err := b2c.Compile(cls)
	if err != nil {
		return ""
	}
	acc := access.Analyze(kernel)
	var b strings.Builder
	b.WriteString("\n")
	b.WriteString(acc.Table())
	fmt.Fprintf(&b, "  (site positions are %s:line:col)\n", fileLabel)
	if notes := acc.Guidance(); len(notes) > 0 {
		b.WriteString("why is this kernel memory-bound?\n")
		for _, n := range notes {
			fmt.Fprintf(&b, "  %s\n", n)
		}
	}
	return b.String()
}

// unknownAppMessage is the -app rejection text: the bad name plus every
// accepted workload, so the fix is on screen.
func unknownAppMessage(name string) string {
	return fmt.Sprintf("unknown app %q (valid workloads: %s)",
		name, strings.Join(apps.Names(), ", "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s2fa:", err)
	os.Exit(1)
}
