// Command s2fa-report explains a recorded run offline: it reads the
// JSONL trace written by `s2fa -trace run.jsonl` (plus, optionally, the
// metrics snapshot from `-metrics run-metrics.json`) and renders a
// markdown or plain-text breakdown — stage waterfall with percentiles,
// slowest fresh HLS estimations with their bottleneck verdicts, prune
// attribution, worker utilization, and the blaze offload-vs-fallback
// story with per-request span trees.
//
// Usage:
//
//	s2fa-report -trace run.jsonl [-metrics run-metrics.json] [-format md|text] [-top 5] [-o report.md]
package main

import (
	"flag"
	"fmt"
	"os"

	"s2fa/internal/obs"
	"s2fa/internal/report"
)

func main() {
	tracePath := flag.String("trace", "", "JSONL trace to explain (required)")
	metricsPath := flag.String("metrics", "", "optional metrics snapshot JSON")
	format := flag.String("format", "md", "output format: md (markdown tables) or text (aligned columns)")
	topN := flag.Int("top", 5, "how many slow estimations to list")
	outPath := flag.String("o", "", "write the report here instead of stdout")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "s2fa-report: -trace is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("reading trace %s: %w", *tracePath, err))
	}

	var snap *obs.MetricsSnapshot
	if *metricsPath != "" {
		mf, err := os.Open(*metricsPath)
		if err != nil {
			fatal(err)
		}
		snap, err = obs.ReadMetricsJSON(mf)
		mf.Close()
		if err != nil {
			fatal(fmt.Errorf("reading metrics %s: %w", *metricsPath, err))
		}
	}

	switch *format {
	case "md", "text":
	default:
		fatal(fmt.Errorf("unknown -format %q (want md or text)", *format))
	}
	body := report.Render(events, snap, report.Options{
		TopN:     *topN,
		Markdown: *format == "md",
	})

	if *outPath == "" {
		fmt.Print(body)
		return
	}
	if err := os.WriteFile(*outPath, []byte(body), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s2fa-report:", err)
	os.Exit(1)
}
