package fpga

import (
	"strings"
	"testing"
	"time"
)

func TestVU9PCapacities(t *testing.T) {
	d := VU9P()
	if d.LUT < 1_000_000 || d.DSP != 6840 || d.BRAM18K != 4320 {
		t.Errorf("device capacities off: %+v", d)
	}
	if d.BaseClockMHz != 250 {
		t.Errorf("base clock = %v", d.BaseClockMHz)
	}
	if d.UsableFrac != 0.75 {
		t.Errorf("usable fraction = %v (paper footnote 5 says 75%%)", d.UsableFrac)
	}
}

func TestBudget(t *testing.T) {
	d := VU9P()
	if got := d.Budget(1000); got != 750 {
		t.Errorf("Budget(1000) = %d", got)
	}
}

func TestExecuteOverlapsTransferAndCompute(t *testing.T) {
	d := VU9P()
	d.InvokeOverhead = 0

	// Compute-bound design: transfers hide behind compute.
	compute := &Design{CyclesPerTask: 1000, FreqMHz: 250, BytesPerTask: 8}
	tCompute := d.Execute(compute, 1000)
	wantCompute := time.Duration(1000 * 1000 / (250e6) * float64(time.Second))
	if diff := tCompute - wantCompute; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("compute-bound time = %v, want ~%v", tCompute, wantCompute)
	}

	// Transfer-bound design: PCIe dominates.
	xfer := &Design{CyclesPerTask: 1, FreqMHz: 250, BytesPerTask: 1 << 20}
	tXfer := d.Execute(xfer, 100)
	wantXfer := time.Duration(float64(100<<20) / (d.PCIeGBs * 1e9) * float64(time.Second))
	if diff := tXfer - wantXfer; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("transfer-bound time = %v, want ~%v", tXfer, wantXfer)
	}
}

func TestExecuteIncludesInvokeOverhead(t *testing.T) {
	d := VU9P()
	des := &Design{CyclesPerTask: 1, FreqMHz: 250, BytesPerTask: 1}
	if got := d.Execute(des, 1); got < d.InvokeOverhead {
		t.Errorf("time %v below invocation overhead %v", got, d.InvokeOverhead)
	}
}

func TestExecuteScalesWithTasks(t *testing.T) {
	d := VU9P()
	des := &Design{CyclesPerTask: 100, FreqMHz: 200, BytesPerTask: 64}
	t1 := d.Execute(des, 1000)
	t2 := d.Execute(des, 2000)
	if t2 <= t1 {
		t.Errorf("doubling tasks did not increase time: %v -> %v", t1, t2)
	}
}

func TestExecuteZeroFreq(t *testing.T) {
	d := VU9P()
	if got := d.Execute(&Design{}, 10); got != 0 {
		t.Errorf("zero-frequency design time = %v", got)
	}
}

func TestDeviceString(t *testing.T) {
	if s := VU9P().String(); !strings.Contains(s, "vu9p") || !strings.Contains(s, "250") {
		t.Errorf("String = %q", s)
	}
}
