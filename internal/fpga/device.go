// Package fpga models the CPU-FPGA platform of the paper's evaluation: an
// Amazon EC2 f1.2xlarge instance with one Xilinx Virtex UltraScale+ VU9P
// card behind PCIe (paper §5.1). It supplies the resource budget the HLS
// estimator checks designs against and the data-movement model used to
// turn kernel cycle counts into end-to-end accelerator execution times.
package fpga

import (
	"fmt"
	"time"
)

// Device describes an FPGA card.
type Device struct {
	Name string
	// Resource capacities.
	LUT     int
	FF      int
	BRAM18K int
	DSP     int
	// BaseClockMHz is the target kernel clock of the platform shell
	// (250 MHz on the F1, paper §5.2).
	BaseClockMHz float64
	// UsableFrac caps how much of each resource a user kernel may occupy;
	// the rest is vendor-provided control logic (paper footnote 5: 75%).
	UsableFrac float64
	// PCIeGBs is the host-to-card DMA bandwidth in GB/s.
	PCIeGBs float64
	// DDRBytesPerCycle is the aggregate off-chip memory bandwidth visible
	// to the kernel, in bytes per kernel clock cycle.
	DDRBytesPerCycle int
	// InvokeOverhead is the fixed per-batch accelerator invocation cost
	// (driver, DMA setup, Blaze task dispatch).
	InvokeOverhead time.Duration
}

// VU9P returns the Virtex UltraScale+ VU9P as configured on the EC2 F1
// (three SLR dies; capacities are the public device totals).
func VU9P() *Device {
	return &Device{
		Name:             "xcvu9p (EC2 F1)",
		LUT:              1_182_240,
		FF:               2_364_480,
		BRAM18K:          4_320,
		DSP:              6_840,
		BaseClockMHz:     250,
		UsableFrac:       0.75,
		PCIeGBs:          10.0,
		DDRBytesPerCycle: 32, // one 512-bit DDR channel at ~50% streaming efficiency
		InvokeOverhead:   120 * time.Microsecond,
	}
}

// Budget returns the usable amount of a resource given the cap.
func (d *Device) Budget(total int) int {
	return int(float64(total) * d.UsableFrac)
}

// Design is a synthesized accelerator design: the outcome of DSE plus
// bitstream generation, ready to execute batches.
type Design struct {
	KernelName string
	// CyclesPerTask is the steady-state kernel cycles consumed per task
	// (total cycles / N for the evaluated batch size).
	CyclesPerTask float64
	// FixedCycles is the pipeline fill/drain and prologue cost per batch.
	FixedCycles float64
	FreqMHz     float64
	// BytesPerTask is the total host<->card traffic per task.
	BytesPerTask int
}

// Execute returns the end-to-end accelerator time for a batch of n tasks:
// PCIe transfer overlapped with compute (Blaze double-buffers transfers),
// plus fixed invocation overhead.
func (d *Device) Execute(des *Design, n int) time.Duration {
	if des.FreqMHz <= 0 {
		return 0
	}
	computeSec := (des.FixedCycles + des.CyclesPerTask*float64(n)) / (des.FreqMHz * 1e6)
	transferSec := float64(des.BytesPerTask) * float64(n) / (d.PCIeGBs * 1e9)
	sec := computeSec
	if transferSec > sec {
		sec = transferSec
	}
	return d.InvokeOverhead + time.Duration(sec*float64(time.Second))
}

func (d *Device) String() string {
	return fmt.Sprintf("%s: %d LUT, %d FF, %d BRAM18K, %d DSP @ %.0f MHz",
		d.Name, d.LUT, d.FF, d.BRAM18K, d.DSP, d.BaseClockMHz)
}
