// Package hls is an analytic stand-in for the Xilinx SDx high-level
// synthesis flow that S2FA uses to evaluate design points (paper §4,
// Impediment 1). Given an annotated HLS-C kernel it reports estimated
// cycles, resource utilization, achievable clock frequency, feasibility,
// and — crucially for the DSE experiments — the synthesis wall-clock time
// that one evaluation would cost, which the DSE charges against a virtual
// clock ("HLS takes several minutes to evaluate one design point so only
// tens of design points can be evaluated in one hour").
//
// The model is deliberately simple but captures the qualitative structure
// that drives the paper's results: recurrence-limited initiation
// intervals (fp accumulation, stencil-like array dependences as in
// Smith-Waterman), the >=13-cycle II floor of transcendental chains that
// caps S2FA's LR design (paper §5.2), memory-bandwidth-bound kernels
// (AES, PageRank), resource-driven infeasibility, routing-driven
// synthesis failure at extreme parallel factors, and frequency
// degradation under congestion.
package hls

// opLat is the combinational/pipelined latency in cycles of each operation
// class at the 250 MHz target clock. Values follow typical UltraScale+
// floating-point core latencies.
type opLat struct {
	IntAdd, IntMul, IntDiv      int
	FpAdd, FpMul, FpDiv, Transc int
	Select, Load, Store         int
}

var defaultLat = opLat{
	IntAdd: 1, IntMul: 3, IntDiv: 18,
	FpAdd: 7, FpMul: 4, FpDiv: 14, Transc: 26,
	Select: 1, Load: 2, Store: 1,
}

// transcMinII is the minimum initiation interval HLS achieves when a
// pipelined body contains a transcendental chain without manual stage
// splitting. The paper reports exactly this limit for LR: "the minimal
// initial interval is still 13"; the manual LR design splits the
// computation statement into multiple stages to reach a fully efficient
// pipeline.
const transcMinII = 13

// Per-op resource costs (LUT, FF, DSP). Rough UltraScale+ single-precision
// figures; integer ops assume 32-bit datapaths.
type opRes struct {
	lut, ff, dsp int
}

var resTable = map[string]opRes{
	"intAdd": {32, 32, 0},
	"intMul": {60, 80, 3},
	"intDiv": {900, 1100, 0},
	"fpAdd":  {220, 350, 2},
	"fpMul":  {120, 200, 3},
	"fpDiv":  {800, 1100, 0},
	"transc": {2600, 3400, 8},
	"select": {40, 32, 0},
	"mem":    {45, 30, 0}, // address gen + port mux per access site
}

// bram18kBytes is the capacity of one BRAM18K block in bytes.
const bram18kBytes = 2304

// ilpWidth is the average instruction-level parallelism HLS extracts from
// a straight-line body when scheduling (datapath width).
const ilpWidth = 4
