package hls

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheComputesOncePerKey(t *testing.T) {
	c := NewCache[int](8)
	var computes atomic.Int64
	const keys = 40
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("k%d", i)
				want := i * 3
				v, _ := c.GetOrCompute(key, func() int {
					computes.Add(1)
					return want
				})
				if v != want {
					t.Errorf("key %s: got %d want %d", key, v, want)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := computes.Load(); got != keys {
		t.Fatalf("computed %d times, want exactly %d (one per key)", got, keys)
	}
	st := c.Stats()
	if st.Misses != keys {
		t.Fatalf("misses = %d, want %d", st.Misses, keys)
	}
	if st.Hits+st.Contended != keys*(goroutines-1) {
		t.Fatalf("hits+contended = %d, want %d", st.Hits+st.Contended, keys*(goroutines-1))
	}
	if st.Entries != keys {
		t.Fatalf("entries = %d, want %d", st.Entries, keys)
	}
}

func TestCachePeek(t *testing.T) {
	c := NewCache[string](0) // default shard count
	if _, ok := c.Peek("missing"); ok {
		t.Fatal("Peek found a missing key")
	}
	c.GetOrCompute("a", func() string { return "va" })
	v, ok := c.Peek("a")
	if !ok || v != "va" {
		t.Fatalf("Peek(a) = %q, %v", v, ok)
	}
	// Peek never blocks on an in-flight entry.
	started := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrCompute("slow", func() string {
		close(started)
		<-release
		return "done"
	})
	<-started
	if _, ok := c.Peek("slow"); ok {
		t.Fatal("Peek returned an in-flight entry")
	}
	close(release)
}

func TestCacheSingleShard(t *testing.T) {
	// One stripe still dedups and serves concurrent readers.
	c := NewCache[int](1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v, _ := c.GetOrCompute(fmt.Sprint(i), func() int { return i })
				if v != i {
					t.Errorf("got %d want %d", v, i)
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 20 {
		t.Fatalf("Len = %d", c.Len())
	}
}
