package hls

import (
	"fmt"
	"math"

	"s2fa/internal/access"
	"s2fa/internal/cir"
	"s2fa/internal/depend"
	"s2fa/internal/fpga"
)

// Options tunes one estimation run.
type Options struct {
	// StageSplit models an expert-written datapath whose long operation
	// chains (e.g. the sigmoid of logistic regression) are manually split
	// into pipeline stages, lifting the transcendental II floor. Only the
	// manual reference designs use it (paper §5.2).
	StageSplit bool
}

// Report is the outcome of one HLS evaluation of a design point.
type Report struct {
	Feasible bool
	// Reason explains infeasibility (resource overflow, routing
	// congestion, non-constant flatten bounds).
	Reason string
	// Bottleneck is a structured tag naming what bound the estimate:
	// "ii-recurrence" (a carried dependence or scalar recurrence set the
	// initiation interval), "transcendental" (unsplit long datapath),
	// "memory-bound" (aggregate DDR bandwidth), "port-contention" (a
	// single narrow interface port), "compute" (datapath-limited), or —
	// for infeasible points — "resource-overflow", "routing-congestion",
	// "flatten-structure".
	Bottleneck string
	// BottleneckSite names the access site behind a memory-bound or
	// port-contention verdict: the binding interface buffer and — when
	// the access analysis pinned one — the kdsl position of its weakest
	// access. Empty for non-memory bottlenecks.
	BottleneckSite string

	Cycles int64 // total kernel cycles for the evaluated batch
	TaskII float64

	LUT, FF, DSP, BRAM18K              int
	UtilLUT, UtilFF, UtilDSP, UtilBRAM float64
	FreqMHz                            float64

	// BytesPerTask is the host<->card traffic per task.
	BytesPerTask int
	// SynthMinutes is the simulated wall-clock cost of this HLS run,
	// charged to the DSE virtual clock.
	SynthMinutes float64

	tasks int64
}

// Seconds returns the modeled kernel execution time for the evaluated
// batch (excluding transfer).
func (r Report) Seconds() float64 {
	if r.FreqMHz <= 0 {
		return math.Inf(1)
	}
	return float64(r.Cycles) / (r.FreqMHz * 1e6)
}

// MaxUtil returns the highest resource utilization fraction.
func (r Report) MaxUtil() float64 {
	return math.Max(math.Max(r.UtilLUT, r.UtilFF), math.Max(r.UtilDSP, r.UtilBRAM))
}

// Design converts the report into an executable accelerator design for
// the platform model.
func (r Report) Design(name string) *fpga.Design {
	if r.tasks <= 0 {
		return nil
	}
	return &fpga.Design{
		KernelName:    name,
		CyclesPerTask: float64(r.Cycles) / float64(r.tasks),
		FreqMHz:       r.FreqMHz,
		BytesPerTask:  r.BytesPerTask,
	}
}

func (r Report) String() string {
	if !r.Feasible {
		return fmt.Sprintf("infeasible: %s", r.Reason)
	}
	return fmt.Sprintf("cycles=%d II=%.0f freq=%.0fMHz LUT=%.0f%% FF=%.0f%% DSP=%.0f%% BRAM=%.0f%% synth=%.1fmin",
		r.Cycles, r.TaskII, r.FreqMHz, r.UtilLUT*100, r.UtilFF*100, r.UtilDSP*100, r.UtilBRAM*100, r.SynthMinutes)
}

// Estimate performs high-level synthesis estimation for the annotated
// kernel over a batch of n tasks on the given device.
func Estimate(k *cir.Kernel, dev *fpga.Device, n int64, opt Options) Report {
	info := cir.Analyze(k)
	m := &model{kernel: k, info: info, dep: depend.Analyze(k), acc: access.Analyze(k), dev: dev, n: n, opt: opt}
	return m.run()
}

type model struct {
	kernel *cir.Kernel
	info   *cir.KernelInfo
	dep    *depend.Analysis
	acc    *access.Analysis
	dev    *fpga.Device
	n      int64
	opt    Options

	infeasible     string
	maxRep         int
	hasCarriedPipe bool
	// iiTag names the floor that last raised a stage's initiation
	// interval ("ii-recurrence", "transcendental", "memory-bound",
	// "port-contention"); the outermost loop is scheduled last, so its
	// binding floor wins.
	iiTag string
	// portLimited records whether the task-loop memory II came from a
	// single interface port rather than the aggregate DDR channel.
	portLimited bool
}

// raise lifts *ii to v when v is the new binding floor and records which
// model term did it.
func (m *model) raise(ii *float64, v float64, tag string) {
	if v > *ii {
		*ii = v
		m.iiTag = tag
	}
}

func (m *model) run() Report {
	rep := Report{tasks: m.n}
	rep.BytesPerTask = m.bytesPerTaskOf()

	// Latency.
	var cycles float64 = seqLat(m.info.TopOps)
	for _, r := range m.info.Roots {
		lat, ii := m.loopLat(r)
		cycles += lat
		if r.Loop.ID == m.kernel.TaskLoopID {
			rep.TaskII = ii
		}
	}
	// Global off-chip bandwidth floor: no design streams faster than the
	// DDR channel, which is what leaves AES and PageRank memory-bound
	// (paper §5.2). Gather-only buffers add their per-element latency on
	// top — indirect streams never reach channel bandwidth.
	memFloor := float64(m.n) * float64(rep.BytesPerTask) / float64(m.dev.DDRBytesPerCycle)
	memFloor += float64(m.n) * m.gatherFloor()
	if cycles < memFloor {
		cycles = memFloor
		m.iiTag = "memory-bound"
	}
	// Without manual stage splitting, HLS schedules the transcendental
	// datapath (e.g. the LR sigmoid) as one long fused statement with a
	// minimum initiation interval of 13, and tasks serialize through it
	// (paper §5.2: "the minimal initial interval is still 13"; the manual
	// LR design splits the computation statement into multiple stages).
	if m.info.Roots[0].HasTranscendental && !m.opt.StageSplit {
		if floor := float64(m.n) * transcMinII; cycles < floor {
			cycles = floor
			m.iiTag = "transcendental"
		}
	}
	rep.Cycles = int64(cycles)

	// Resources.
	lut, ff, dsp, bram := m.resources()
	rep.LUT, rep.FF, rep.DSP, rep.BRAM18K = lut, ff, dsp, bram
	rep.UtilLUT = float64(lut) / float64(m.dev.LUT)
	rep.UtilFF = float64(ff) / float64(m.dev.FF)
	rep.UtilDSP = float64(dsp) / float64(m.dev.DSP)
	rep.UtilBRAM = float64(bram) / float64(m.dev.BRAM18K)

	// Synthesis wall-clock model: a few minutes for trivial designs up to
	// about an hour for congested ones (paper Impediment 1).
	rep.SynthMinutes = 1 + 3.5*rep.UtilLUT + 0.35*math.Log2(float64(m.maxRep)+1) +
		float64(m.info.All[0].SubtreeOps.Total())/15000.0
	if rep.SynthMinutes > 12 {
		rep.SynthMinutes = 12
	}

	// Feasibility.
	switch {
	case m.infeasible != "":
		rep.Feasible = false
		rep.Reason = m.infeasible
		rep.Bottleneck = "flatten-structure"
	case rep.MaxUtil() > m.dev.UsableFrac:
		rep.Feasible = false
		rep.Reason = fmt.Sprintf("resource overflow: %.0f%% > %.0f%% usable cap",
			rep.MaxUtil()*100, m.dev.UsableFrac*100)
		rep.Bottleneck = "resource-overflow"
	case m.maxRep > 64 && rep.UtilLUT > 0.55:
		// High duplication with dense logic fails routing (paper §4.3.2:
		// "parallelism with factor 256 ... infeasible for most designs
		// due to high routing complexity" — unless the compute pattern is
		// simple enough to keep congestion low).
		rep.Feasible = false
		rep.Reason = fmt.Sprintf("routing congestion: replication %d at %.0f%% LUT", m.maxRep, rep.UtilLUT*100)
		rep.Bottleneck = "routing-congestion"
	default:
		rep.Feasible = true
		rep.Bottleneck = m.iiTag
		if rep.Bottleneck == "" {
			rep.Bottleneck = "compute"
		}
	}
	if rep.Bottleneck == "memory-bound" || rep.Bottleneck == "port-contention" {
		rep.BottleneckSite = m.bottleneckSite(rep.Bottleneck)
	}
	if !rep.Feasible {
		// Overflowing designs abort during resource mapping, well before
		// a full place-and-route.
		rep.SynthMinutes *= 0.4
	}

	// Frequency model: the 250 MHz target degrades with congestion, and
	// carried-dependence pipelines with long combinational feedback (the
	// Smith-Waterman cell) close timing far lower (paper Table 2: 100 MHz).
	freq := m.dev.BaseClockMHz
	if u := rep.MaxUtil(); u > 0.55 {
		freq -= (u - 0.55) * 150
	}
	if m.hasCarriedPipe {
		if f := m.dev.BaseClockMHz * 0.4; freq > f {
			freq = f
		}
	}
	freq = math.Round(freq/10) * 10
	if freq < 60 {
		freq = 60
	}
	rep.FreqMHz = freq
	return rep
}

// carried returns the loop's effective carried arrays (after the
// reduce-output exemption, straight from the dependence verdicts), the
// minimum proven dependence distance across them, and whether the verdict
// is a conservative Sequential (dependence structure unprovable, so
// iterations must not overlap at all). A distance-d recurrence leaves d
// independent chains interleaving through the feedback path, so the II
// floor scales down by d; unproven distances default to 1, the sound
// minimum.
func (m *model) carried(li *cir.LoopInfo) (arrs []string, dist float64, seq bool) {
	id := li.Loop.ID
	arrs = m.dep.EffectiveRace(id)
	dist = 1
	v := m.dep.Verdict(id)
	if v == nil {
		return arrs, dist, false
	}
	if len(arrs) > 0 {
		var d int64
		for _, a := range arrs {
			dd, ok := v.ArrDist[a]
			if !ok || dd < 1 {
				d = 1
				break
			}
			if d == 0 || dd < d {
				d = dd
			}
		}
		if d >= 1 {
			dist = float64(d)
		}
	}
	return arrs, dist, v.Kind == depend.Sequential
}

// laneCap bounds a loop's useful parallel lanes by the element-port
// budget of the banked on-chip arrays it touches every iteration (see
// access.PortCap): the binder does not replicate datapaths the BRAM
// ports cannot feed, so factors above the cap produce the cap's
// schedule and area. Like inertLanes, this is a model-enforced
// invariant the DSE access collapse relies on: a design with
// parallel=u>cap on such a loop reports identically to its
// parallel=cap sibling.
func (m *model) laneCap(li *cir.LoopInfo) int {
	return m.acc.PortCap(li.Loop.ID)
}

// inertLanes reports whether the loop's parallel directive is a hardware
// no-op: an unpipelined loop whose iterations provably contend on carried
// arrays executes its lanes strictly in series, and the binder maps a
// serial chain onto a single datapath instance. The factor then changes
// neither the schedule nor the area, so a design with parallel=u on such
// a loop yields a report identical to its parallel=1 sibling — the
// invariant the DSE dependence collapse relies on.
func (m *model) inertLanes(li *cir.LoopInfo) bool {
	return li.Loop.Opt.Pipeline == cir.PipeOff && len(m.dep.EffectiveRace(li.Loop.ID)) > 0
}

// stage describes one scheduled region: its total latency and its
// occupancy — the number of cycles it is busy per outer-iteration start,
// which is what bounds the initiation interval of an enclosing dataflow
// pipeline.
type stage struct {
	lat float64
	occ float64
	ii  float64 // per-iteration initiation interval (reporting)
}

// loopLat schedules the subtree of li under its annotations, returning
// total latency and the per-iteration initiation interval.
func (m *model) loopLat(li *cir.LoopInfo) (float64, float64) {
	st := m.schedule(li)
	return st.lat, st.ii
}

func (m *model) schedule(li *cir.LoopInfo) stage {
	l := li.Loop
	trip := float64(li.Trip)
	if l.ID == m.kernel.TaskLoopID {
		trip = float64(m.n)
	}
	if trip <= 0 {
		// Unknown trip count (e.g. a traceback while-loop recovered as a
		// bounded loop): charge a nominal 16 iterations.
		trip = 16
	}
	u := float64(maxInt(1, l.Opt.Parallel))
	if u > trip {
		u = trip
	}
	if c := m.laneCap(li); c > 0 && u > float64(c) {
		u = float64(c)
	}

	switch {
	case l.Opt.Pipeline == cir.PipeFlatten:
		return m.flattenStage(li, trip, u)
	case l.Opt.Pipeline == cir.PipeOn && len(li.Children) == 0:
		// The scheduler never produces a pipeline slower than the
		// sequential schedule (it falls back when II offers no gain).
		return betterStage(m.pipeLeafStage(li, trip, u), m.seqStage(li, trip, u))
	case l.Opt.Pipeline == cir.PipeOn:
		return betterStage(m.dataflowStage(li, trip, u), m.seqStage(li, trip, u))
	default:
		return m.seqStage(li, trip, u)
	}
}

func betterStage(a, b stage) stage {
	if a.lat <= b.lat {
		return a
	}
	return b
}

// pipeLeafStage models a pipelined innermost loop.
func (m *model) pipeLeafStage(li *cir.LoopInfo, trip, u float64) stage {
	bodyDepth := depth(li.BodyOps)
	ii := 1.0
	effTrip := math.Ceil(trip / u)
	if len(li.ScalarRec) > 0 {
		// Recurrence-limited II; with unrolling Merlin applies tree
		// reduction so u elements enter per II.
		m.raise(&ii, seqLat(li.RecOps), "ii-recurrence")
	}
	if arrs, d, seq := m.carried(li); len(arrs) > 0 {
		// Stencil-style dependence (e.g. the Smith-Waterman cell): the
		// feedback path bounds II, and unrolled lanes execute as a
		// wavefront with register forwarding. A proven distance-d
		// recurrence relaxes the floor by d; an unprovable structure
		// serializes iterations outright.
		m.hasCarriedPipe = true
		if seq {
			m.raise(&ii, seqLat(li.BodyOps), "ii-recurrence")
		} else {
			m.raise(&ii, seqLat(li.BodyOps)/6/d, "ii-recurrence")
		}
	}
	if li.HasTranscendental && !m.opt.StageSplit {
		m.raise(&ii, transcMinII, "transcendental")
	}
	m.raiseMem(&ii, li, u)
	lat := bodyDepth + ii*(effTrip-1)
	return stage{lat: lat, occ: ii * effTrip, ii: ii}
}

// dataflowStage models coarse-grained pipelining of a loop with
// sub-loops: Merlin converts the body into a dataflow of stages;
// successive iterations overlap, limited by the busiest stage's
// occupancy.
func (m *model) dataflowStage(li *cir.LoopInfo, trip, u float64) stage {
	var fillSum, maxOcc float64
	for _, c := range li.Children {
		cs := m.schedule(c)
		fillSum += cs.lat
		if cs.occ > maxOcc {
			maxOcc = cs.occ
		}
	}
	bodyDepth := depth(li.BodyOps) + fillSum
	effTrip := math.Ceil(trip / u)
	ii := math.Max(1, maxOcc)
	if len(li.ScalarRec) > 0 {
		m.raise(&ii, seqLat(li.RecOps), "ii-recurrence")
	}
	if arrs, d, seq := m.carried(li); len(arrs) > 0 {
		// Iterations overlap through a carried array dependence only as
		// far as the proven distance allows (d+1 concurrent iterations);
		// unprovable structure forbids overlap entirely.
		m.hasCarriedPipe = true
		if seq {
			m.raise(&ii, bodyDepth, "ii-recurrence")
		} else {
			m.raise(&ii, bodyDepth/(d+1), "ii-recurrence")
		}
	}
	if li.HasTranscendental && !m.opt.StageSplit {
		m.raise(&ii, transcMinII, "transcendental")
	}
	m.raiseMem(&ii, li, u)
	lat := bodyDepth + ii*(effTrip-1)
	return stage{lat: lat, occ: ii * effTrip, ii: ii}
}

// seqStage models an unpipelined loop (with optional unrolling).
func (m *model) seqStage(li *cir.LoopInfo, trip, u float64) stage {
	var childSum float64
	for _, c := range li.Children {
		cs := m.schedule(c)
		childSum += cs.lat
	}
	iter := depth(li.BodyOps) + childSum + 2 // loop control overhead
	effTrip := math.Ceil(trip / u)
	if arrs, _, _ := m.carried(li); len(arrs) > 0 {
		effTrip = trip // lanes serialize
		if m.inertLanes(li) {
			// With the chain serial and no pipeline, the lanes time-share
			// one datapath instance; the factor is inert end to end.
			u = 1
		}
	}
	lat := iter*effTrip + 3
	if len(li.ScalarRec) > 0 && u > 1 {
		lat += math.Log2(u) * float64(defaultLat.FpAdd) // tree combine
	}
	if li.Loop.ID == m.kernel.TaskLoopID {
		// Unpipelined task loop pays a blocking burst per iteration at
		// the configured interface width (capped by the DDR channel).
		perCycle := m.interfaceBytesPerCycle()
		lat += float64(m.bytesPerTaskOf()) / perCycle * effTrip * u
	}
	return stage{lat: lat, occ: lat, ii: iter}
}

// flattenStage models pipeline flatten: the whole sub-nest is fully
// unrolled into one pipelined body. Independent per-iteration work (the
// usual case: a fresh reduction per outer iteration) adds depth, not II.
func (m *model) flattenStage(li *cir.LoopInfo, trip, u float64) stage {
	ops, chain, ok := m.flattenOps(li)
	if !ok {
		m.infeasible = fmt.Sprintf("flatten of loop %s requires constant sub-loop bounds", li.Loop.ID)
		return stage{lat: 1, occ: 1}
	}
	work := seqLat(ops)
	bodyDepth := math.Max(8, 4*math.Log2(work+2)) + chain
	ii := 1.0
	if len(li.ScalarRec) > 0 {
		m.raise(&ii, seqLat(li.RecOps), "ii-recurrence")
	}
	if li.HasTranscendental && !m.opt.StageSplit {
		m.raise(&ii, transcMinII, "transcendental")
	}
	effTrip := math.Ceil(trip / u)
	if arrs, d, seq := m.carried(li); len(arrs) > 0 {
		m.hasCarriedPipe = true
		if seq {
			m.raise(&ii, bodyDepth, "ii-recurrence")
		} else {
			m.raise(&ii, bodyDepth/(d+1), "ii-recurrence")
		}
	}
	m.raiseMem(&ii, li, u)
	lat := bodyDepth + ii*(effTrip-1)
	return stage{lat: lat, occ: ii * effTrip, ii: ii}
}

// flattenOps accumulates the fully unrolled operation count of li's
// subtree and the serialized dependence-chain depth contributed by carried
// sub-loops: stencil-carried sub-loops serialize (trip x chain) while
// reduction sub-loops collapse to balanced trees (log depth). ok=false
// when a sub-loop has an unknown trip count — including a general while
// anywhere in the subtree, which no unroller can flatten (the Merlin
// transformation would fail, so the design point is infeasible).
func (m *model) flattenOps(li *cir.LoopInfo) (cir.OpCount, float64, bool) {
	ops := li.BodyOps
	var chain float64
	if li.HasWhile {
		return ops, 0, false
	}
	for _, c := range li.Children {
		if c.Trip <= 0 {
			return ops, 0, false
		}
		sub, subChain, ok := m.flattenOps(c)
		if !ok {
			return ops, 0, false
		}
		sub.Scale(int(c.Trip))
		ops.Add(sub)
		switch {
		case len(c.CarriedArrays) > 0:
			chain += float64(c.Trip) * math.Max(1, seqLat(c.BodyOps)/4)
		case len(c.ScalarRec) > 0:
			chain += math.Log2(float64(c.Trip)+1) * seqLat(c.RecOps)
		}
		chain += subChain
	}
	return ops, chain, true
}

// interfaceBytesPerCycle returns the aggregate AXI interface throughput
// implied by the buffer bit-width directives, capped by the DDR channel.
func (m *model) interfaceBytesPerCycle() float64 {
	total := 0.0
	for _, p := range m.kernel.Params {
		if !p.IsArray {
			continue
		}
		bw := p.BitWidth
		if bw == 0 {
			bw = p.Elem.Bits()
		}
		total += float64(bw) / 8
	}
	if cap := float64(m.dev.DDRBytesPerCycle); total > cap || total == 0 {
		total = cap
	}
	return total
}

// raiseMem applies the initiation-interval floor imposed by off-chip
// interface bandwidth when li is the task loop (inner loops stream from
// on-chip buffers filled by Merlin-inserted bursts), tagging whether a
// single interface port or the aggregate DDR channel binds.
func (m *model) raiseMem(ii *float64, li *cir.LoopInfo, u float64) {
	if li.Loop.ID != m.kernel.TaskLoopID {
		return
	}
	perPort, aggregate := m.memCycles(u)
	if perPort > aggregate {
		if perPort > *ii {
			m.portLimited = true
		}
		m.raise(ii, perPort, "port-contention")
		return
	}
	m.raise(ii, aggregate, "memory-bound")
}

// gatherBeatCycles is the per-access DDR latency charge for buffers no
// burst engine can service: each indirect access opens its own beat
// instead of riding a staged transfer.
const gatherBeatCycles = 8

// stagedElems returns the element span a burst transfer must cover for
// one task of the buffer: the access analysis' footprint span when the
// buffer is burst-stageable, the full per-task length otherwise.
func (m *model) stagedElems(p *cir.Param) float64 {
	if pr := m.acc.Param(p.Name); pr != nil && pr.Stageable && pr.StageElems < int64(p.Length) {
		return float64(pr.StageElems)
	}
	return float64(p.Length)
}

// gatherOnly reports whether every access to the buffer is a gather or
// affine-opaque, leaving Merlin's burst inference nothing to stage.
func (m *model) gatherOnly(p *cir.Param) *access.ParamProfile {
	if pr := m.acc.Param(p.Name); pr != nil && !pr.Stageable {
		return pr
	}
	return nil
}

// gatherFloor is the per-task cycle cost of the gather-only buffers.
func (m *model) gatherFloor() float64 {
	var c float64
	for _, p := range m.kernel.Params {
		if !p.IsArray {
			continue
		}
		if p.IsOutput && m.kernel.Pattern == cir.PatternReduce {
			continue
		}
		if pr := m.gatherOnly(&p); pr != nil {
			c += float64(pr.Accesses) * gatherBeatCycles
		}
	}
	return c
}

// memCycles returns the per-task-iteration transfer cycles bound by the
// slowest single interface port and by the aggregate DDR channel.
// Burst-stageable buffers move their footprint span at port/channel
// bandwidth; gather-only buffers pay per-element latency, multiplied by
// the lanes issuing them.
func (m *model) memCycles(u float64) (perPort, aggregate float64) {
	var totalBytes, gatherCyc float64
	for _, p := range m.kernel.Params {
		if !p.IsArray {
			continue
		}
		if p.IsOutput && m.kernel.Pattern == cir.PatternReduce {
			continue
		}
		if pr := m.gatherOnly(&p); pr != nil {
			c := float64(pr.Accesses) * gatherBeatCycles * u
			gatherCyc += c
			if c > perPort {
				perPort = c
			}
			continue
		}
		eb := float64(p.Elem.Bits()) / 8
		bytes := m.stagedElems(&p) * eb * u
		totalBytes += bytes
		bw := p.BitWidth
		if bw == 0 {
			bw = p.Elem.Bits()
		}
		perCycle := float64(bw) / 8
		if c := bytes / perCycle; c > perPort {
			perPort = c
		}
	}
	aggregate = totalBytes/float64(m.dev.DDRBytesPerCycle) + gatherCyc
	return perPort, aggregate
}

// bottleneckSite names the interface buffer that binds a memory verdict
// and, when the access analysis pinned one, the kdsl position and class
// of its weakest access site.
func (m *model) bottleneckSite(tag string) string {
	var best string
	var bestCost float64
	var bestPr *access.ParamProfile
	for _, p := range m.kernel.Params {
		if !p.IsArray {
			continue
		}
		if p.IsOutput && m.kernel.Pattern == cir.PatternReduce {
			continue
		}
		pr := m.acc.Param(p.Name)
		var cost float64
		if pr != nil && !pr.Stageable {
			cost = float64(pr.Accesses) * gatherBeatCycles
		} else {
			bytes := m.stagedElems(&p) * float64(p.Elem.Bits()) / 8
			if tag == "port-contention" {
				bw := p.BitWidth
				if bw == 0 {
					bw = p.Elem.Bits()
				}
				cost = bytes / (float64(bw) / 8)
			} else {
				cost = bytes / float64(m.dev.DDRBytesPerCycle)
			}
		}
		if cost > bestCost {
			bestCost, best, bestPr = cost, p.Name, pr
		}
	}
	if best == "" {
		return ""
	}
	if bestPr != nil && bestPr.WorstSite != nil {
		s := bestPr.WorstSite
		if s.Pos.Valid() {
			return fmt.Sprintf("%s (%s @ kdsl %s)", best, s.Class(), s.Pos)
		}
		return fmt.Sprintf("%s (%s)", best, s.Class())
	}
	return best
}

// bytesPerTaskOf returns the streamed off-chip traffic per task: the
// staged footprint span of each streaming buffer. Reduce outputs are
// task-invariant accumulators transferred once per batch and do not
// stream; gather-only buffers still ship whole (the host cannot know
// which elements the card will touch).
func (m *model) bytesPerTaskOf() int {
	total := 0
	for _, p := range m.kernel.Params {
		if !p.IsArray {
			continue
		}
		if p.IsOutput && m.kernel.Pattern == cir.PatternReduce {
			continue
		}
		elems := float64(p.Length)
		if m.gatherOnly(&p) == nil {
			elems = m.stagedElems(&p)
		}
		total += int(elems) * p.Elem.Bits() / 8
	}
	return total
}

// resources walks the loop tree accumulating resource usage under the
// current annotations.
func (m *model) resources() (lut, ff, dsp, bram int) {
	// Base platform/control overhead.
	lut = m.dev.LUT / 50
	ff = m.dev.FF / 50

	addOps := func(ops cir.OpCount, rep int, pipelined bool) {
		fr := 1.0
		if pipelined {
			fr = 1.6 // pipeline registers
		}
		add := func(n int, key string) {
			r := resTable[key]
			lut += n * rep * r.lut
			ff += int(float64(n*rep*r.ff) * fr)
			dsp += n * rep * r.dsp
		}
		add(ops.IntAdd, "intAdd")
		add(ops.IntMul, "intMul")
		add(ops.IntDiv, "intDiv")
		add(ops.FpAdd, "fpAdd")
		add(ops.FpMul, "fpMul")
		add(ops.FpDiv, "fpDiv")
		add(ops.Transc, "transc")
		add(ops.Select, "select")
		add(ops.Loads+ops.Stores, "mem")
	}

	var walk func(li *cir.LoopInfo, rep int)
	walk = func(li *cir.LoopInfo, rep int) {
		u := maxInt(1, li.Loop.Opt.Parallel)
		if li.Trip > 0 && int64(u) > li.Trip {
			u = int(li.Trip)
		}
		if c := m.laneCap(li); c > 0 && u > c {
			u = c // port-starved lanes are never instantiated
		}
		if m.inertLanes(li) {
			u = 1 // serial lanes share one instance; no replication
		}
		rep *= u
		if rep > m.maxRep {
			m.maxRep = rep
		}
		pipelined := li.Loop.Opt.Pipeline != cir.PipeOff
		if li.Loop.Opt.Pipeline == cir.PipeFlatten {
			ops, _, ok := m.flattenOps(li)
			if ok {
				addOps(ops, rep, true)
			}
			if r := rep * int(li.Trip); li.Trip > 0 && r > m.maxRep {
				m.maxRep = r
			}
			return
		}
		addOps(li.BodyOps, rep, pipelined)
		lut += 300 // loop control FSM
		ff += 200
		for _, c := range li.Children {
			walk(c, rep)
		}
	}
	addOps(m.info.TopOps, 1, false)
	taskRep := 1
	for _, r := range m.info.Roots {
		walk(r, 1)
		if r.Loop.ID == m.kernel.TaskLoopID {
			taskRep = maxInt(1, r.Loop.Opt.Parallel)
		}
	}

	// BRAM: local arrays are replicated per task-level processing element
	// and banked for intra-PE parallelism. Banking spreads the same bits
	// over more, shallower BRAMs, so the block count is the larger of the
	// capacity need and the bank count.
	innerBanks := m.maxRep / maxInt(1, taskRep)
	if innerBanks > 64 {
		innerBanks = 64
	}
	if innerBanks < 1 {
		innerBanks = 1
	}
	//determinism:allow order-independent: integer block counts sum commutatively
	for _, bytes := range m.info.LocalArrays {
		blocks := (bytes + bram18kBytes - 1) / bram18kBytes
		if blocks < innerBanks {
			blocks = innerBanks
		}
		bram += blocks * taskRep
	}
	// Constant globals (lookup tables, model weights) are stored in BRAM
	// ROMs, replicated per PE and banked like local arrays.
	for _, g := range m.kernel.Globals {
		bytes := len(g.Data) * g.Elem.Bits() / 8
		blocks := (bytes + bram18kBytes - 1) / bram18kBytes
		if blocks < innerBanks {
			blocks = innerBanks
		}
		bram += blocks * taskRep
	}
	// Interface staging buffers: double-buffered bursts, wider interfaces
	// use more parallel BRAM lanes, and each task-level PE keeps private
	// copies. The task-loop tiling factor sets the burst depth (tasks
	// staged per burst), which is the main effect of the Table 1 tiling
	// factor on the generated designs.
	burstTasks := 64
	if tl := m.info.ByID[m.kernel.TaskLoopID]; tl != nil && tl.Loop.Opt.Tile > 1 {
		burstTasks = tl.Loop.Opt.Tile
		if burstTasks > 256 {
			burstTasks = 256
		}
	}
	for _, p := range m.kernel.Params {
		if !p.IsArray {
			continue
		}
		bw := p.BitWidth
		if bw == 0 {
			bw = p.Elem.Bits()
		}
		lanes := maxInt(1, bw/72)
		burstBytes := p.Length * p.Elem.Bits() / 8 * burstTasks
		blocks := (burstBytes + bram18kBytes - 1) / bram18kBytes
		if blocks < 1 {
			blocks = 1
		}
		bram += 2 * blocks * lanes * taskRep
		lut += 500 * lanes // AXI datapath
	}
	return lut, ff, dsp, bram
}

// seqLat is the summed latency of an operation mix executed as a chain.
func seqLat(o cir.OpCount) float64 {
	l := defaultLat
	return float64(o.IntAdd*l.IntAdd + o.IntMul*l.IntMul + o.IntDiv*l.IntDiv +
		o.FpAdd*l.FpAdd + o.FpMul*l.FpMul + o.FpDiv*l.FpDiv +
		o.Transc*l.Transc + o.Select*l.Select + o.Loads*l.Load + o.Stores*l.Store)
}

// depth estimates the scheduled depth of a body given average ILP.
func depth(o cir.OpCount) float64 {
	return math.Max(3, seqLat(o)/ilpWidth)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
