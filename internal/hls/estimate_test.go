package hls

import (
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
	"s2fa/internal/fpga"
	"s2fa/internal/merlin"
	"s2fa/internal/space"
)

func kernelOf(t *testing.T, name string) *cir.Kernel {
	t.Helper()
	k, err := apps.Get(name).Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func annotate(t *testing.T, k *cir.Kernel, loops map[string]cir.LoopOpt, bw map[string]int) *cir.Kernel {
	t.Helper()
	ann, err := merlin.Annotate(k, merlin.Directives{Loops: loops, BitWidths: bw})
	if err != nil {
		t.Fatal(err)
	}
	return ann
}

func TestPipelineImprovesThroughput(t *testing.T) {
	k := kernelOf(t, "KMeans")
	dev := fpga.VU9P()
	base := Estimate(k, dev, 1024, Options{})
	piped := Estimate(annotate(t, k, map[string]cir.LoopOpt{
		"L0": {Pipeline: cir.PipeOn},
		"L1": {Pipeline: cir.PipeOn},
		"L2": {Pipeline: cir.PipeOn},
	}, nil), dev, 1024, Options{})
	if !base.Feasible || !piped.Feasible {
		t.Fatalf("feasibility: base=%v piped=%v", base, piped)
	}
	if piped.Cycles >= base.Cycles {
		t.Errorf("pipelining did not help: %d -> %d cycles", base.Cycles, piped.Cycles)
	}
}

func TestTaskParallelScalesUntilMemoryBound(t *testing.T) {
	k := kernelOf(t, "KMeans")
	dev := fpga.VU9P()
	var prev int64
	for i, u := range []int{1, 2, 4, 8} {
		rep := Estimate(annotate(t, k, map[string]cir.LoopOpt{
			"L0": {Parallel: u, Pipeline: cir.PipeOn},
			"L2": {Pipeline: cir.PipeOn},
		}, nil), dev, 4096, Options{})
		if !rep.Feasible {
			t.Fatalf("u=%d infeasible: %s", u, rep.Reason)
		}
		if i > 0 && rep.Cycles > prev {
			t.Errorf("u=%d regressed: %d -> %d cycles", u, prev, rep.Cycles)
		}
		prev = rep.Cycles
	}
	// The DDR floor is a hard lower bound.
	bytes := 0
	for _, p := range k.Params {
		bytes += p.Length * p.Elem.Bits() / 8
	}
	floor := int64(4096) * int64(bytes) / int64(dev.DDRBytesPerCycle)
	if prev < floor {
		t.Errorf("cycles %d below the memory floor %d", prev, floor)
	}
}

func TestResourcesGrowWithParallelism(t *testing.T) {
	k := kernelOf(t, "KNN")
	dev := fpga.VU9P()
	small := Estimate(annotate(t, k, map[string]cir.LoopOpt{"L0": {Parallel: 2}}, nil), dev, 1024, Options{})
	big := Estimate(annotate(t, k, map[string]cir.LoopOpt{"L0": {Parallel: 16}}, nil), dev, 1024, Options{})
	if big.LUT <= small.LUT || big.DSP < small.DSP {
		t.Errorf("resources did not grow: LUT %d->%d DSP %d->%d", small.LUT, big.LUT, small.DSP, big.DSP)
	}
}

func TestExtremeParallelismInfeasible(t *testing.T) {
	// Paper §4.3.2: factor-256 coarse parallelism is infeasible for most
	// designs due to routing complexity / resources.
	k := kernelOf(t, "S-W")
	dev := fpga.VU9P()
	rep := Estimate(annotate(t, k, map[string]cir.LoopOpt{
		"L0": {Parallel: 256, Pipeline: cir.PipeOn},
		"L1": {Parallel: 64, Pipeline: cir.PipeOn},
		"L2": {Parallel: 64, Pipeline: cir.PipeOn},
	}, nil), dev, 1024, Options{})
	if rep.Feasible {
		t.Errorf("extreme S-W parallelism accepted: %v", rep)
	}
	if rep.Reason == "" {
		t.Error("infeasible report has no reason")
	}
}

func TestTranscendentalIIFloor(t *testing.T) {
	// LR without stage splitting is bounded at II>=13 per task (paper
	// §5.2); the manual stage-split design escapes the floor.
	k := kernelOf(t, "LR")
	dev := fpga.VU9P()
	loops := map[string]cir.LoopOpt{
		"L0": {Pipeline: cir.PipeOn, Parallel: 8},
		"L1": {Pipeline: cir.PipeOn, Parallel: 8},
		"L2": {Pipeline: cir.PipeOn, Parallel: 8},
	}
	bw := map[string]int{"in_1": 512, "in_2": 512, "out": 512}
	auto := Estimate(annotate(t, k, loops, bw), dev, 4096, Options{})
	split := Estimate(annotate(t, k, loops, bw), dev, 4096, Options{StageSplit: true})
	if !auto.Feasible || !split.Feasible {
		t.Fatalf("feasibility: auto=%v split=%v", auto, split)
	}
	if auto.Cycles < 13*4096 {
		t.Errorf("S2FA LR beat the II=13 floor: %d cycles for 4096 tasks", auto.Cycles)
	}
	if split.Cycles >= auto.Cycles {
		t.Errorf("stage splitting did not help: %d vs %d", split.Cycles, auto.Cycles)
	}
}

func TestCarriedPipelineDegradesFrequency(t *testing.T) {
	// Pipelining the Smith-Waterman cell loop (carried through H/D)
	// closes timing far below 250 MHz (paper Table 2: 100 MHz).
	k := kernelOf(t, "S-W")
	dev := fpga.VU9P()
	rep := Estimate(annotate(t, k, map[string]cir.LoopOpt{
		"L2": {Pipeline: cir.PipeOn, Parallel: 16},
	}, nil), dev, 1024, Options{})
	if !rep.Feasible {
		t.Fatalf("infeasible: %s", rep.Reason)
	}
	if rep.FreqMHz > 150 {
		t.Errorf("carried pipeline at %v MHz, expected heavy degradation", rep.FreqMHz)
	}
}

func TestBitWidthRelievesMemoryBoundKernels(t *testing.T) {
	k := kernelOf(t, "PR")
	dev := fpga.VU9P()
	loops := map[string]cir.LoopOpt{"L0": {Pipeline: cir.PipeOn, Parallel: 4}, "L1": {Pipeline: cir.PipeOn}}
	narrow := Estimate(annotate(t, k, loops, map[string]int{"in_1": 32, "in_2": 32}), dev, 4096, Options{})
	wide := Estimate(annotate(t, k, loops, map[string]int{"in_1": 512, "in_2": 512}), dev, 4096, Options{})
	if wide.Cycles > narrow.Cycles {
		t.Errorf("wider interface slower: %d vs %d", wide.Cycles, narrow.Cycles)
	}
}

func TestSynthMinutesBounded(t *testing.T) {
	k := kernelOf(t, "AES")
	dev := fpga.VU9P()
	sp := space.Identify(k)
	rep := Estimate(annotate(t, k, map[string]cir.LoopOpt{}, nil), dev, 1024, Options{})
	if rep.SynthMinutes < 1 || rep.SynthMinutes > 60 {
		t.Errorf("synth minutes out of band: %v", rep.SynthMinutes)
	}
	// An aggressive point costs more than the trivial one.
	big := Estimate(annotate(t, k, sp.Directives(sp.PerformanceSeed()).Loops,
		sp.Directives(sp.PerformanceSeed()).BitWidths), dev, 1024, Options{})
	if big.SynthMinutes <= rep.SynthMinutes {
		t.Errorf("aggressive design cheaper to synthesize: %v <= %v", big.SynthMinutes, rep.SynthMinutes)
	}
}

func TestReduceOutputsDoNotStream(t *testing.T) {
	lr := kernelOf(t, "LR")     // reduce pattern
	km := kernelOf(t, "KMeans") // map pattern
	dev := fpga.VU9P()
	lrRep := Estimate(lr, dev, 1024, Options{})
	inBytes := 0
	for _, p := range lr.Params {
		if !p.IsOutput {
			inBytes += p.Length * p.Elem.Bits() / 8
		}
	}
	if lrRep.BytesPerTask != inBytes {
		t.Errorf("LR streams %dB/task, inputs are %dB (reduce outputs must not stream)", lrRep.BytesPerTask, inBytes)
	}
	kmRep := Estimate(km, dev, 1024, Options{})
	all := 0
	for _, p := range km.Params {
		all += p.Length * p.Elem.Bits() / 8
	}
	if kmRep.BytesPerTask != all {
		t.Errorf("KMeans streams %dB/task, want %dB (map outputs stream)", kmRep.BytesPerTask, all)
	}
}

func TestFlattenRequiresConstantBounds(t *testing.T) {
	// Flattening a loop whose sub-loop has a runtime bound is rejected.
	k := &cir.Kernel{
		Name: "dyn", TaskLoopID: "L0",
		Params: []cir.Param{{Name: "in", Elem: cir.Int, IsArray: true, Length: 1}},
		Body: cir.Block{&cir.Loop{
			ID: "L0", Var: "t", Lo: &cir.IntLit{K: cir.Int, Val: 0},
			Hi: &cir.VarRef{K: cir.Int, Name: "N"}, Step: 1,
			Opt: cir.LoopOpt{Pipeline: cir.PipeFlatten},
			Body: cir.Block{&cir.Loop{
				ID: "L1", Var: "i", Lo: &cir.IntLit{K: cir.Int, Val: 0},
				Hi: &cir.Index{K: cir.Int, Arr: "in", Idx: &cir.VarRef{K: cir.Int, Name: "t"}}, Step: 1,
				Body: cir.Block{},
			}},
		}},
	}
	rep := Estimate(k, fpga.VU9P(), 64, Options{})
	if rep.Feasible || !strings.Contains(rep.Reason, "flatten") {
		t.Errorf("dynamic flatten accepted: %v", rep)
	}
}

func TestReportHelpers(t *testing.T) {
	k := kernelOf(t, "KMeans")
	rep := Estimate(k, fpga.VU9P(), 512, Options{})
	if rep.Seconds() <= 0 {
		t.Error("Seconds not positive")
	}
	if rep.MaxUtil() <= 0 || rep.MaxUtil() > 1 {
		t.Errorf("MaxUtil = %v", rep.MaxUtil())
	}
	d := rep.Design("km")
	if d == nil || d.CyclesPerTask <= 0 || d.KernelName != "km" {
		t.Errorf("design = %+v", d)
	}
	if s := rep.String(); !strings.Contains(s, "cycles=") {
		t.Errorf("String = %q", s)
	}
}
