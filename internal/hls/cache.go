package hls

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Cache is a sharded, mutex-striped memoization table for estimation
// results, keyed by design-point key. It exists because the DSE's
// concurrent engine evaluates design points from many goroutines at
// once: a plain map (the pre-concurrency evaluator cache) is
// single-goroutine only, and a single global mutex would serialize the
// very estimations the worker pool is supposed to overlap.
//
// Entries have future semantics: the first caller of GetOrCompute for a
// key computes the value outside the shard lock while concurrent
// callers for the same key block on the entry's ready channel (counted
// as contention) instead of duplicating the work. Values must therefore
// come from pure computations — every caller receives the single stored
// value, whoever computed it.
type Cache[V any] struct {
	shards []cacheShard[V]
	seed   maphash.Seed

	hits      atomic.Int64
	misses    atomic.Int64
	contended atomic.Int64
}

type cacheShard[V any] struct {
	mu sync.Mutex
	m  map[string]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	ready chan struct{} // closed once val is set
	val   V
}

// DefaultCacheShards balances stripe contention against footprint for
// pools of up to a few dozen evaluation goroutines.
const DefaultCacheShards = 64

// NewCache returns a cache striped over the given number of shards
// (values < 1 fall back to DefaultCacheShards).
func NewCache[V any](shardCount int) *Cache[V] {
	if shardCount < 1 {
		shardCount = DefaultCacheShards
	}
	c := &Cache[V]{
		shards: make([]cacheShard[V], shardCount),
		seed:   maphash.MakeSeed(),
	}
	for i := range c.shards {
		c.shards[i].m = map[string]*cacheEntry[V]{}
	}
	return c
}

func (c *Cache[V]) shard(key string) *cacheShard[V] {
	h := maphash.String(c.seed, key)
	return &c.shards[h%uint64(len(c.shards))]
}

// GetOrCompute returns the cached value for key, computing it with f on
// first use. The boolean reports whether the value was already present
// (or being computed by another goroutine) — i.e. whether this caller's
// f was NOT run. f executes outside the shard lock, so long computations
// only block callers of the same key, never the stripe.
func (c *Cache[V]) GetOrCompute(key string, f func() V) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		s.mu.Unlock()
		select {
		case <-e.ready:
			c.hits.Add(1)
		default:
			// Another goroutine is mid-compute: this is the cross-worker
			// contention the stats expose.
			c.contended.Add(1)
			<-e.ready
		}
		return e.val, true
	}
	e := &cacheEntry[V]{ready: make(chan struct{})}
	s.m[key] = e
	s.mu.Unlock()
	c.misses.Add(1)
	e.val = f()
	close(e.ready)
	return e.val, false
}

// Peek returns the value for key if it has finished computing, without
// blocking and without recording a hit.
func (c *Cache[V]) Peek(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-e.ready:
		return e.val, true
	default:
		return *new(V), false
	}
}

// Len returns the number of entries (including in-flight computations).
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// CacheStats is a snapshot of cache traffic.
type CacheStats struct {
	// Hits counts GetOrCompute calls served an existing (or in-flight)
	// entry.
	Hits int64
	// Misses counts first-time computations.
	Misses int64
	// Contended counts hits that had to block on an in-flight
	// computation by another goroutine.
	Contended int64
	// Entries is the current entry count.
	Entries int
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[V]) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Contended: c.contended.Load(),
		Entries:   c.Len(),
	}
}
