package hls

import (
	"testing"

	"s2fa/internal/cir"
	"s2fa/internal/fpga"
)

// distKernel builds a two-level nest whose inner loop carries a
// recurrence A[i] = A[i-stride] + B[i]: the proven dependence distance is
// the stride.
func distKernel(stride int64) *cir.Kernel {
	iv := func(n string) *cir.VarRef { return &cir.VarRef{K: cir.Int, Name: n} }
	lit := func(v int64) *cir.IntLit { return &cir.IntLit{K: cir.Int, Val: v} }
	inner := &cir.Loop{
		ID: "L1", Var: "i", Lo: lit(stride), Hi: lit(256), Step: 1,
		Body: cir.Block{&cir.Assign{
			LHS: &cir.Index{K: cir.Int, Arr: "A", Idx: iv("i")},
			RHS: &cir.Binary{K: cir.Int, Op: cir.Add,
				L: &cir.Index{K: cir.Int, Arr: "A",
					Idx: &cir.Binary{K: cir.Int, Op: cir.Sub, L: iv("i"), R: lit(stride)}},
				R: &cir.Index{K: cir.Int, Arr: "B", Idx: iv("i")}},
		}},
	}
	return &cir.Kernel{
		Name:       "DIST_kernel",
		TaskLoopID: "L0",
		Params: []cir.Param{
			{Name: "A", Elem: cir.Int, IsArray: true, Length: 256, IsOutput: true},
			{Name: "B", Elem: cir.Int, IsArray: true, Length: 256},
		},
		Body: cir.Block{&cir.Loop{
			ID: "L0", Var: "_task", Lo: lit(0), Hi: iv("N"), Step: 1,
			Body: cir.Block{inner},
		}},
	}
}

// TestBottleneckTags pins the structured bottleneck classification on
// representative shapes.
func TestBottleneckTags(t *testing.T) {
	dev := fpga.VU9P()

	t.Run("carried pipeline tags ii-recurrence", func(t *testing.T) {
		k := kernelOf(t, "S-W")
		rep := Estimate(annotate(t, k, map[string]cir.LoopOpt{
			"L1": {Pipeline: cir.PipeOn},
			"L2": {Pipeline: cir.PipeOn},
		}, nil), dev, 1024, Options{})
		if !rep.Feasible {
			t.Fatalf("infeasible: %s", rep.Reason)
		}
		if rep.Bottleneck != "ii-recurrence" {
			t.Errorf("S-W pipelined cell: bottleneck = %q, want ii-recurrence", rep.Bottleneck)
		}
	})

	t.Run("infeasible points carry structural tags", func(t *testing.T) {
		k := kernelOf(t, "S-W")
		rep := Estimate(annotate(t, k, map[string]cir.LoopOpt{
			"L0": {Parallel: 256, Pipeline: cir.PipeOn},
			"L1": {Parallel: 64, Pipeline: cir.PipeOn},
			"L2": {Parallel: 64, Pipeline: cir.PipeOn},
		}, nil), dev, 1024, Options{})
		if rep.Feasible {
			t.Fatalf("extreme parallelism accepted")
		}
		if rep.Bottleneck != "resource-overflow" && rep.Bottleneck != "routing-congestion" {
			t.Errorf("infeasible bottleneck = %q", rep.Bottleneck)
		}
	})

	t.Run("every feasible report is tagged", func(t *testing.T) {
		k := kernelOf(t, "AES")
		rep := Estimate(k, dev, 1024, Options{})
		if rep.Bottleneck == "" {
			t.Errorf("untagged report: %v", rep)
		}
	})
}

// TestProvenDistanceRelaxesII: a stride-2 recurrence leaves two
// independent chains interleaving through the feedback path, so the
// pipelined loop must run strictly faster than its stride-1 counterpart
// (same body, same trip window).
func TestProvenDistanceRelaxesII(t *testing.T) {
	dev := fpga.VU9P()
	opts := map[string]cir.LoopOpt{"L1": {Pipeline: cir.PipeOn}}
	d1 := Estimate(annotate(t, distKernel(1), opts, nil), dev, 64, Options{})
	d2 := Estimate(annotate(t, distKernel(2), opts, nil), dev, 64, Options{})
	if !d1.Feasible || !d2.Feasible {
		t.Fatalf("feasibility: d1=%v d2=%v", d1, d2)
	}
	if d2.Cycles >= d1.Cycles {
		t.Errorf("distance 2 did not relax the II floor: %d -> %d cycles", d1.Cycles, d2.Cycles)
	}
}
