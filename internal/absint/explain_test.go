package absint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/kdsl"
)

var updateGolden = flag.Bool("update", false, "rewrite the explain golden files")

// The golden kernels are hand-assembled: the kdsl front end typechecks
// intrinsic names and requires constant `new Array` lengths, so §3.3
// violations can only reach DiagnoseClass from bytecode built directly
// (the position layout mirrors what kdsl attaches: asm gives instruction
// i the position line 10+i, column 3).

func externalCallClass() *bytecode.Class {
	m := asm(bytecode.Prim(cir.Double), []bytecode.TypeDesc{bytecode.Prim(cir.Double)}, []bytecode.Instr{
		{Op: bytecode.OpLoad, A: 0},
		{Op: bytecode.OpIntrin, Sym: "sin", A: 1, Kind: cir.Double},
		{Op: bytecode.OpReturn},
	})
	return &bytecode.Class{Name: "SinMap", ID: "sinmap", Call: m, InSizes: []int{1}}
}

func dynamicAllocClass() *bytecode.Class {
	m := asm(bytecode.Prim(cir.Int), []bytecode.TypeDesc{bytecode.Prim(cir.Int)}, []bytecode.Instr{
		{Op: bytecode.OpLoad, A: 0},
		{Op: bytecode.OpNewArray, Kind: cir.Int},
		{Op: bytecode.OpStore, A: 1},
		ci(0),
		{Op: bytecode.OpReturn},
	}, bytecode.ArrayOf(cir.Int))
	return &bytecode.Class{Name: "AllocMap", ID: "allocmap", Call: m, InSizes: []int{1}}
}

func unsupportedTypeClass() *bytecode.Class {
	nested := bytecode.TupleOf(bytecode.TupleOf(bytecode.Prim(cir.Int), bytecode.Prim(cir.Int)), bytecode.Prim(cir.Int))
	m := asm(bytecode.Prim(cir.Int), []bytecode.TypeDesc{nested}, []bytecode.Instr{
		ci(0),
		{Op: bytecode.OpReturn},
	})
	return &bytecode.Class{Name: "NestMap", ID: "nestmap", Call: m, InSizes: []int{1, 1}}
}

func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name string
		cls  *bytecode.Class
		kind string
		loc  string
	}{
		{"external_call", externalCallClass(), "external-call", "kernel.kdsl:11:3"},
		{"dynamic_alloc", dynamicAllocClass(), "dynamic-alloc", "kernel.kdsl:11:3"},
		{"unsupported_type", unsupportedTypeClass(), "unsupported-type", "kernel.kdsl:10:3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			facts, err := DiagnoseClass(tc.cls)
			if err != nil {
				t.Fatal(err)
			}
			if len(facts.Violations()) == 0 {
				t.Fatal("DiagnoseClass found no violations")
			}
			got := Explain(facts, "kernel.kdsl")
			// The acceptance bar: each violation kind carries a kdsl
			// file:line:column in the rendered report.
			if !strings.Contains(got, tc.loc) {
				t.Errorf("report lacks source location %q:\n%s", tc.loc, got)
			}
			if !strings.Contains(got, "§3.3 "+tc.kind) {
				t.Errorf("report lacks violation kind %q:\n%s", tc.kind, got)
			}

			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("explain output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

func TestExplainCleanKernel(t *testing.T) {
	cls, err := kdsl.CompileSource(sumSource)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := DiagnoseClass(cls)
	if err != nil {
		t.Fatal(err)
	}
	got := Explain(facts, "dot.kdsl")
	for _, want := range []string{
		"no violations — the kernel is synthesizable",
		"call: pure",
		"value ranges:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("clean-kernel report lacks %q:\n%s", want, got)
		}
	}
}
