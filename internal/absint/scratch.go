package absint

import (
	"s2fa/internal/bytecode"
	"s2fa/internal/compile"
)

// absintScratch is the abstract interpreter's slot in a compile.Scratch:
// a freelist of state objects plus the operand-stack and local-version
// buffers simBlock reuses call after call. One is created per
// analyzeMethod even without a Scratch (the fixpoint alone re-simulates
// blocks hundreds of times); a Scratch carries it across methods and
// classes so steady-state analysis stops allocating states at all.
type absintScratch struct {
	free []*state
	stk  []absVal
	vers []int
}

// absintScratchOf returns (allocating on first use) the analyzer scratch
// stored in sc, or nil when sc is nil.
func absintScratchOf(sc *compile.Scratch) *absintScratch {
	if sc == nil {
		return nil
	}
	if as, ok := sc.Absint.(*absintScratch); ok {
		return as
	}
	as := &absintScratch{}
	sc.Absint = as
	return as
}

// AnalyzeClassScratch is AnalyzeClass with reusable analyzer buffers from
// sc. A nil sc behaves exactly like AnalyzeClass. The returned facts
// retain nothing from the scratch.
func AnalyzeClassScratch(c *bytecode.Class, sc *compile.Scratch) (*ClassFacts, error) {
	if err := bytecode.VerifyClassScratch(c, sc); err != nil {
		return nil, err
	}
	return analyzeClassS(c, absintScratchOf(sc))
}

// newState hands out a state with n locals, recycling released ones.
func (a *analyzer) newState(n int) *state {
	if l := len(a.as.free); l > 0 {
		st := a.as.free[l-1]
		a.as.free = a.as.free[:l-1]
		if cap(st.locals) >= n {
			st.locals = st.locals[:n]
			return st
		}
	}
	return &state{locals: make([]absVal, n)}
}

// cloneOf is state.clone via the freelist.
func (a *analyzer) cloneOf(s *state) *state {
	out := a.newState(len(s.locals))
	copy(out.locals, s.locals)
	return out
}

// release returns a state to the freelist. The caller promises it holds
// no other reference to st (in particular, st is not in a.in).
func (a *analyzer) release(st *state) {
	if st != nil {
		a.as.free = append(a.as.free, st)
	}
}
