// Package absint is an interprocedural abstract interpreter over the
// JVM-style bytecode of internal/bytecode — the pre-decompilation
// analysis layer of the S2FA front end. It runs a worklist fixpoint over
// the verified control-flow graph (joining abstract states at leaders,
// with widening at loop heads) and computes three product domains:
//
//   - interval/constant propagation for locals, operand-stack slots, and
//     array elements, with branch refinement at compare-and-branch
//     boundaries;
//   - a purity/side-effect summary per method (heap writes into
//     caller-visible arrays, argument escape through the return value);
//   - §3.3 legality violations (external library calls, non-constant
//     `new` sizes, unsupported composite types) resolved through the
//     bytecode source map back to kdsl line:column positions.
//
// Downstream, b2c consumes the proven value ranges and array extents to
// seed cir bit-width inference, space.RestrictFromRanges shrinks Table 1
// bit-width domains before DSE, lint drops bounds warnings the intervals
// disprove, and blaze gates offload on the purity summary.
package absint

import (
	"fmt"
	"sort"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// Abstract is the exported abstraction of one value: a scalar interval,
// an array summary, or a tuple of abstractions.
type Abstract struct {
	Iv      Interval
	IsArray bool
	Elems   Interval // element range when IsArray
	Len     Interval // length range when IsArray
	Fields  []Abstract
}

// IsTuple reports whether the abstraction describes a tuple.
func (a Abstract) IsTuple() bool { return len(a.Fields) > 0 }

// ArrayFacts summarizes one abstract array object (an allocation site,
// an input root, or a static field).
type ArrayFacts struct {
	// Origin identifies the object: "param#i", "field#i" (tuple field of
	// the first parameter; fields of later parameters are qualified as
	// "param#i.field#j"), "static:<name>", or "new@<pc>".
	Origin string
	Kind   cir.Kind
	Elems  Interval
	Len    Interval
	// Pos is the allocation site's source position (new sites only).
	Pos bytecode.Pos
	// Input marks caller-visible arrays (method arguments); Static marks
	// class constant fields. Writes into either are heap effects.
	Input  bool
	Static bool
}

// Effect is one side effect observed during analysis.
type Effect struct {
	PC     int
	Pos    bytecode.Pos
	Detail string
}

func (e Effect) String() string {
	if e.Pos.Valid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Detail)
	}
	return fmt.Sprintf("@%d: %s", e.PC, e.Detail)
}

// Purity is the side-effect summary of a method.
type Purity struct {
	// HeapWrites are stores into caller-visible memory (argument arrays
	// or class statics).
	HeapWrites []Effect
	// ArgEscapes are argument arrays that flow into the return value, so
	// the output aliases caller memory.
	ArgEscapes []Effect
}

// Pure reports whether the method has no observable side effects beyond
// its return value.
func (p Purity) Pure() bool { return len(p.HeapWrites) == 0 && len(p.ArgEscapes) == 0 }

// ViolationKind classifies a §3.3 legality violation.
type ViolationKind int

const (
	// ViolExternalCall is a call to a function outside the supported
	// math-intrinsic whitelist (paper §3.3: library calls).
	ViolExternalCall ViolationKind = iota
	// ViolDynamicAlloc is a `new Array` whose size is not provably a
	// compile-time constant (paper §3.3: dynamic memory allocation).
	ViolDynamicAlloc
	// ViolUnsupportedType is a composite type outside the template set
	// (nested tuples, unsupported arity).
	ViolUnsupportedType
)

func (k ViolationKind) String() string {
	switch k {
	case ViolExternalCall:
		return "external-call"
	case ViolDynamicAlloc:
		return "dynamic-alloc"
	case ViolUnsupportedType:
		return "unsupported-type"
	}
	return fmt.Sprintf("violation(%d)", int(k))
}

// Violation is one sourced §3.3 legality violation.
type Violation struct {
	Kind   ViolationKind
	Method string
	PC     int // -1 for method-level violations
	Pos    bytecode.Pos
	Detail string
}

func (v Violation) String() string {
	where := v.Pos.String()
	if !v.Pos.Valid() && v.PC >= 0 {
		where = fmt.Sprintf("%s@%d", v.Method, v.PC)
	}
	return fmt.Sprintf("%s: §3.3 %s: %s", where, v.Kind, v.Detail)
}

// Sourced renders the violation with its kdsl file label prepended to
// the line:column position (file:line:col, the compiler-diagnostic
// convention).
func (v Violation) Sourced(file string) string {
	return fmt.Sprintf("%s: §3.3 %s: %s", srcPos(file, v.Pos, v.Method, v.PC), v.Kind, v.Detail)
}

// MethodFacts is everything the analyzer proved about one method.
type MethodFacts struct {
	Method *bytecode.Method
	// Local is the per-slot join of every value the slot ever holds
	// (including the zero initialization and the arguments).
	Local []Interval
	// Stored maps an OpStore/OpAStore pc to the range of the value popped
	// there (pre element conversion for astore).
	Stored map[int]Interval
	// Loaded maps an OpALoad pc to the range of the loaded element.
	Loaded map[int]Interval
	// Arrays lists all abstract array objects the method touches.
	Arrays []ArrayFacts
	// Ret abstracts the return value.
	Ret        Abstract
	Purity     Purity
	Violations []Violation
	// Fixpoint records how much work the worklist solver did on this
	// method — the telemetry behind the absint spans of a pipeline trace.
	Fixpoint FixpointStats
}

// FixpointStats counts the abstract interpreter's fixpoint work for one
// method: worklist block visits, state joins at leaders, and widening
// applications (loop-head locals and array-element updates).
type FixpointStats struct {
	Iterations     int // blocks popped off the worklist
	Joins          int // state joins at block leaders
	Widenings      int // loop-head widening applications on locals
	ArrayWidenings int // array-element widenings (all passes)
}

// LocalRange returns the proven range of a local slot (Top when the slot
// index is unknown).
func (f *MethodFacts) LocalRange(slot int) Interval {
	if f == nil || slot < 0 || slot >= len(f.Local) {
		return Top()
	}
	return f.Local[slot]
}

// Array returns the facts for the object with the given origin, or nil.
func (f *MethodFacts) Array(origin string) *ArrayFacts {
	for i := range f.Arrays {
		if f.Arrays[i].Origin == origin {
			return &f.Arrays[i]
		}
	}
	return nil
}

// ClassFacts bundles the per-method facts of a kernel class.
type ClassFacts struct {
	Class  *bytecode.Class
	Call   *MethodFacts
	Reduce *MethodFacts // nil for pure map kernels
}

// Violations returns all §3.3 violations across the class's methods.
func (cf *ClassFacts) Violations() []Violation {
	var out []Violation
	out = append(out, cf.Call.Violations...)
	if cf.Reduce != nil {
		out = append(out, cf.Reduce.Violations...)
	}
	return out
}

// Pure reports whether every method of the class is side-effect free.
func (cf *ClassFacts) Pure() bool {
	if !cf.Call.Purity.Pure() {
		return false
	}
	return cf.Reduce == nil || cf.Reduce.Purity.Pure()
}

// OutputAbstract is the joined abstraction of every value the kernel can
// deliver through its output buffers: the call method's return joined,
// when a combiner is present, with the reduce method's return (reduce
// kernels accumulate combiner results in the output accumulators).
func (cf *ClassFacts) OutputAbstract() Abstract {
	out := cf.Call.Ret
	if cf.Reduce != nil {
		out = joinAbstract(out, cf.Reduce.Ret)
	}
	return out
}

// KindRange is the interval of representable values of a primitive kind:
// the exact wraparound range for integer kinds, Top for floats.
func KindRange(k cir.Kind) Interval { return kindRange(k) }

// Impurities returns the combined side-effect list across methods.
func (cf *ClassFacts) Impurities() []Effect {
	var out []Effect
	collect := func(f *MethodFacts) {
		out = append(out, f.Purity.HeapWrites...)
		out = append(out, f.Purity.ArgEscapes...)
	}
	collect(cf.Call)
	if cf.Reduce != nil {
		collect(cf.Reduce)
	}
	return out
}

// reduceSeedRounds bounds the outer fixpoint seeding reduce's parameters
// from its own return abstraction before forcing top.
const reduceSeedRounds = 6

// AnalyzeClass analyzes a verified kernel class: the call method under
// unconstrained inputs of the declared kinds (array lengths pinned to the
// class's per-task InSizes), then the reduce method with its parameters
// seeded interprocedurally from the call/reduce return abstractions,
// iterating to an outer fixpoint.
func AnalyzeClass(c *bytecode.Class) (*ClassFacts, error) {
	if err := bytecode.VerifyClass(c); err != nil {
		return nil, err
	}
	return analyzeClass(c)
}

// DiagnoseClass analyzes a class with only the structural half of the
// verifier as a precondition: well-formed-but-illegal kernels (external
// library calls, dynamic allocation) analyze fully, and every §3.3
// violation comes back as a sourced fact instead of the verifier's
// first-error stop. This is the entry point behind `s2fa -lint` and
// `s2fa -explain`.
func DiagnoseClass(c *bytecode.Class) (*ClassFacts, error) {
	if err := bytecode.VerifyClassStructural(c); err != nil {
		return nil, err
	}
	return analyzeClass(c)
}

func analyzeClass(c *bytecode.Class) (*ClassFacts, error) { return analyzeClassS(c, nil) }

func analyzeClassS(c *bytecode.Class, as *absintScratch) (*ClassFacts, error) {
	if as == nil {
		as = &absintScratch{}
	}
	cf := &ClassFacts{Class: c}

	callIn := make([]Abstract, len(c.Call.Params))
	for i, p := range c.Call.Params {
		callIn[i] = inputAbstract(p, c.InSizes)
	}
	var err error
	cf.Call, err = analyzeMethodS(c.Call, c, callIn, true, as)
	if err != nil {
		return nil, err
	}

	if c.Reduce != nil {
		seed := cf.Call.Ret
		for round := 0; ; round++ {
			if round >= reduceSeedRounds {
				seed = topLike(seed)
			}
			args := make([]Abstract, len(c.Reduce.Params))
			for i := range args {
				args[i] = seed
			}
			// Reduce combines framework-owned intermediate values, so its
			// argument writes are not caller-visible heap effects.
			cf.Reduce, err = analyzeMethodS(c.Reduce, c, args, false, as)
			if err != nil {
				return nil, err
			}
			next := joinAbstract(seed, cf.Reduce.Ret)
			if abstractEqual(next, seed) {
				break
			}
			seed = next
		}
	}
	return cf, nil
}

// AnalyzeMethod analyzes a single verified method with unconstrained
// inputs of the declared parameter types.
func AnalyzeMethod(m *bytecode.Method) (*MethodFacts, error) {
	if err := bytecode.Verify(m); err != nil {
		return nil, err
	}
	in := make([]Abstract, len(m.Params))
	for i, p := range m.Params {
		in[i] = inputAbstract(p, nil)
	}
	return analyzeMethod(m, nil, in, true)
}

// inputAbstract builds the unconstrained abstraction of a parameter:
// scalars range over their kind, arrays hold any value of the element
// kind with the per-task length when sizes are known.
func inputAbstract(t bytecode.TypeDesc, sizes []int) Abstract {
	size := func(i int) Interval {
		if i < len(sizes) {
			return pointIv(float64(sizes[i]))
		}
		return Interval{0, kindRange(cir.Int).Hi}
	}
	if t.IsTuple() {
		a := Abstract{Fields: make([]Abstract, len(t.Tuple))}
		for i, f := range t.Tuple {
			if f.Array {
				a.Fields[i] = Abstract{IsArray: true, Elems: kindRange(f.Kind), Len: size(i)}
			} else {
				a.Fields[i] = Abstract{Iv: kindRange(f.Kind)}
			}
		}
		return a
	}
	if t.Array {
		return Abstract{IsArray: true, Elems: kindRange(t.Kind), Len: size(0)}
	}
	return Abstract{Iv: kindRange(t.Kind)}
}

// topLike widens an abstraction to top while keeping its shape.
func topLike(a Abstract) Abstract {
	out := Abstract{Iv: Top(), IsArray: a.IsArray}
	if a.IsArray {
		out.Elems = Top()
		out.Len = a.Len.Join(Top())
	}
	for _, f := range a.Fields {
		out.Fields = append(out.Fields, topLike(f))
	}
	return out
}

func joinAbstract(a, b Abstract) Abstract {
	out := Abstract{
		Iv:      a.Iv.Join(b.Iv),
		IsArray: a.IsArray || b.IsArray,
		Elems:   a.Elems.Join(b.Elems),
		Len:     a.Len.Join(b.Len),
	}
	n := len(a.Fields)
	if len(b.Fields) > n {
		n = len(b.Fields)
	}
	for i := 0; i < n; i++ {
		var fa, fb Abstract
		if i < len(a.Fields) {
			fa = a.Fields[i]
		}
		if i < len(b.Fields) {
			fb = b.Fields[i]
		}
		out.Fields = append(out.Fields, joinAbstract(fa, fb))
	}
	return out
}

func abstractEqual(a, b Abstract) bool {
	if a.Iv != b.Iv || a.IsArray != b.IsArray || a.Elems != b.Elems ||
		a.Len != b.Len || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if !abstractEqual(a.Fields[i], b.Fields[i]) {
			return false
		}
	}
	return true
}

// typeViolations scans a method signature for composite types outside
// the S2FA template set (paper §3.3): tuples may not nest, and arities
// beyond 4 have no template.
func typeViolations(m *bytecode.Method) []Violation {
	var out []Violation
	pos := m.PosAt(0)
	check := func(what string, t bytecode.TypeDesc) {
		if !t.IsTuple() {
			return
		}
		if len(t.Tuple) > 4 {
			out = append(out, Violation{
				Kind: ViolUnsupportedType, Method: m.Name, PC: -1, Pos: pos,
				Detail: fmt.Sprintf("%s has tuple arity %d (templates cover Tuple2..Tuple4)", what, len(t.Tuple)),
			})
		}
		for i, f := range t.Tuple {
			if f.IsTuple() {
				out = append(out, Violation{
					Kind: ViolUnsupportedType, Method: m.Name, PC: -1, Pos: pos,
					Detail: fmt.Sprintf("%s field _%d is a nested tuple (unsupported composite type)", what, i+1),
				})
			}
		}
	}
	for i, p := range m.Params {
		check(fmt.Sprintf("parameter %d", i), p)
	}
	check("return type", m.Ret)
	return out
}

// sortedEffects orders effects by pc for deterministic output.
func sortedEffects(m map[int]Effect) []Effect {
	pcs := make([]int, 0, len(m))
	for pc := range m {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	out := make([]Effect, 0, len(pcs))
	for _, pc := range pcs {
		out = append(out, m[pc])
	}
	return out
}
