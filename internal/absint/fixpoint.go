package absint

import (
	"fmt"
	"math"
	"sort"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// absVal is the analyzer's abstraction of one runtime value (jvmsim.Val):
// a scalar interval with best-effort kind tracking, a set of abstract
// array objects the reference may point to, or a tuple of abstractions.
type absVal struct {
	iv  Interval
	k   cir.Kind
	kok bool // k is known exactly

	arrs  []int // sorted indices into analyzer.objs
	isArr bool

	tup   []absVal
	isTup bool

	// origin/over tie a loaded value back to its local slot for branch
	// refinement; both are block-local (the operand stack is empty at
	// leaders, so a condition never outlives its block).
	origin int
	over   int
	cond   *condFact
}

// condFact records the comparison that produced a Bool so branches can
// refine the operands' local slots on each outgoing edge.
type condFact struct {
	op          cir.BinOp
	neg         bool
	lOrig, lVer int
	rOrig, rVer int
	lIv, rIv    Interval
	intCmp      bool // integer comparison: strict bounds tighten by 1
}

func scalarVal(iv Interval, k cir.Kind) absVal {
	return absVal{iv: iv, k: k, kok: true, origin: -1}
}

// join merges two abstract values (clearing block-local provenance).
func (v absVal) join(o absVal) absVal {
	out := absVal{
		iv:     v.iv.Join(o.iv),
		k:      v.k,
		kok:    v.kok && o.kok && v.k == o.k,
		isArr:  v.isArr || o.isArr,
		isTup:  v.isTup || o.isTup,
		origin: -1,
	}
	out.arrs = unionSorted(v.arrs, o.arrs)
	n := len(v.tup)
	if len(o.tup) > n {
		n = len(o.tup)
	}
	for i := 0; i < n; i++ {
		var a, b absVal
		a.origin, b.origin = -1, -1
		if i < len(v.tup) {
			a = v.tup[i]
		}
		if i < len(o.tup) {
			b = o.tup[i]
		}
		out.tup = append(out.tup, a.join(b))
	}
	return out
}

func (v absVal) equal(o absVal) bool {
	if v.iv != o.iv || v.kok != o.kok || (v.kok && v.k != o.k) ||
		v.isArr != o.isArr || v.isTup != o.isTup ||
		len(v.arrs) != len(o.arrs) || len(v.tup) != len(o.tup) {
		return false
	}
	for i := range v.arrs {
		if v.arrs[i] != o.arrs[i] {
			return false
		}
	}
	for i := range v.tup {
		if !v.tup[i].equal(o.tup[i]) {
			return false
		}
	}
	return true
}

func unionSorted(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// state is the abstract machine state at a program point: the locals
// array (the operand stack is block-local and always empty at leaders).
type state struct {
	locals []absVal
}

// States are cloned, joined element-wise in place, and recycled through
// the analyzer's freelist (see scratch.go and fixpoint's edge loop).

// arrObj is one abstract array object during analysis.
type arrObj struct {
	facts   ArrayFacts
	seed    Interval // initial element range (before any store)
	updates int      // widening counter for element stores
}

// widenAfter is the number of state joins at a leader (or element
// updates on an array) before widening kicks in.
const widenAfter = 8

// analyzer runs the fixpoint for one method.
type analyzer struct {
	m    *bytecode.Method
	cls  *bytecode.Class
	args []Abstract
	// argWrites marks whether stores into argument arrays count as heap
	// effects (true for call, false for reduce, which owns its operands).
	argWrites bool

	leaders []int // sorted block start pcs
	// backTargets marks leaders entered by a retreating edge (loop
	// heads); widening applies only there — every cycle contains one, so
	// the fixpoint still terminates, and forward-edge leaders keep the
	// precision branch refinement gives them.
	backTargets map[int]bool
	in          map[int]*state
	joins       map[int]int
	objs        []arrObj
	statics     map[string]int
	news        map[int]int

	facts      *MethodFacts
	heapWrites map[int]Effect
	escapes    map[int]Effect
	viol       map[int]Violation
	objChanged bool

	// as holds the reusable state freelist and simBlock buffers; never
	// nil (analyzeMethod makes a private one when no Scratch is threaded
	// through).
	as *absintScratch
}

type edge struct {
	to int
	st *state
}

func analyzeMethod(m *bytecode.Method, cls *bytecode.Class, args []Abstract, argWrites bool) (*MethodFacts, error) {
	return analyzeMethodS(m, cls, args, argWrites, nil)
}

func analyzeMethodS(m *bytecode.Method, cls *bytecode.Class, args []Abstract, argWrites bool, as *absintScratch) (*MethodFacts, error) {
	if as == nil {
		as = &absintScratch{}
	}
	a := &analyzer{
		m: m, cls: cls, args: args, argWrites: argWrites, as: as,
		in:      make(map[int]*state),
		joins:   make(map[int]int),
		statics: make(map[string]int),
		news:    make(map[int]int),
		facts: &MethodFacts{
			Method: m,
			Local:  make([]Interval, len(m.LocalTypes)),
			Stored: make(map[int]Interval),
			Loaded: make(map[int]Interval),
			Ret:    Abstract{Iv: Bottom(), Elems: Bottom(), Len: Bottom()},
		},
		heapWrites: make(map[int]Effect),
		escapes:    make(map[int]Effect),
		viol:       make(map[int]Violation),
	}
	for i := range a.facts.Local {
		a.facts.Local[i] = Bottom()
	}
	a.buildCFG()

	init, err := a.initialState()
	if err != nil {
		return nil, err
	}
	a.in[0] = init
	if err := a.fixpoint(); err != nil {
		return nil, err
	}
	if err := a.narrowHeap(); err != nil {
		return nil, err
	}
	if err := a.record(); err != nil {
		return nil, err
	}

	a.facts.Violations = append(a.facts.Violations, typeViolations(m)...)
	pcs := make([]int, 0, len(a.viol))
	for pc := range a.viol {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		a.facts.Violations = append(a.facts.Violations, a.viol[pc])
	}
	a.facts.Purity.HeapWrites = sortedEffects(a.heapWrites)
	a.facts.Purity.ArgEscapes = sortedEffects(a.escapes)
	for _, o := range a.objs {
		a.facts.Arrays = append(a.facts.Arrays, o.facts)
	}
	// The recorded facts hold only intervals and copies, never states, so
	// the per-leader states can feed the next method's analysis.
	for _, st := range a.in {
		a.release(st)
	}
	return a.facts, nil
}

// buildCFG computes block leaders exactly as bytecode.Verify does.
func (a *analyzer) buildCFG() {
	leaders := map[int]bool{0: true}
	a.backTargets = make(map[int]bool)
	for i, in := range a.m.Code {
		switch in.Op {
		case bytecode.OpGoto, bytecode.OpBrFalse, bytecode.OpBrTrue:
			if in.Target >= 0 && in.Target < len(a.m.Code) {
				leaders[in.Target] = true
				if in.Target <= i {
					a.backTargets[in.Target] = true
				}
			}
			if i+1 < len(a.m.Code) {
				leaders[i+1] = true
			}
		}
	}
	for pc := range leaders {
		a.leaders = append(a.leaders, pc)
	}
	sort.Ints(a.leaders)
}

// blockEnd returns one past the last pc of the block starting at pc.
func (a *analyzer) blockEnd(start int) int {
	idx := sort.SearchInts(a.leaders, start+1)
	if idx < len(a.leaders) {
		return a.leaders[idx]
	}
	return len(a.m.Code)
}

// initialState seeds locals from the argument abstractions; non-argument
// slots start at the JVM zero value.
func (a *analyzer) initialState() (*state, error) {
	if len(a.args) != len(a.m.Params) {
		return nil, fmt.Errorf("absint: %s expects %d args, got %d", a.m.Name, len(a.m.Params), len(a.args))
	}
	st := &state{locals: make([]absVal, len(a.m.LocalTypes))}
	for i := range st.locals {
		// Zero initialization: jvmsim locals start as the zero Val, a
		// scalar 0 of kind Void.
		st.locals[i] = absVal{iv: pointIv(0), origin: -1}
	}
	for i, arg := range a.args {
		v, err := a.importAbstract(arg, a.m.Params[i], fmt.Sprintf("param#%d", i))
		if err != nil {
			return nil, err
		}
		st.locals[i] = v
	}
	return st, nil
}

// importAbstract materializes an argument abstraction, registering input
// array objects.
func (a *analyzer) importAbstract(ab Abstract, t bytecode.TypeDesc, origin string) (absVal, error) {
	switch {
	case ab.IsTuple() || t.IsTuple():
		n := len(t.Tuple)
		if n == 0 {
			n = len(ab.Fields)
		}
		out := absVal{isTup: true, origin: -1}
		for i := 0; i < n; i++ {
			ft := bytecode.Prim(cir.Int)
			if i < len(t.Tuple) {
				ft = t.Tuple[i]
			}
			fa := Abstract{Iv: Top(), Elems: Top(), Len: Top()}
			if i < len(ab.Fields) {
				fa = ab.Fields[i]
			}
			// Fields of the first parameter (the call method's task input)
			// keep the short "field#i" origin; fields of later parameters
			// (reduce operands) are qualified to stay unambiguous.
			forigin := fmt.Sprintf("field#%d", i)
			if origin != "param#0" {
				forigin = fmt.Sprintf("%s.field#%d", origin, i)
			}
			fv, err := a.importAbstract(fa, ft, forigin)
			if err != nil {
				return absVal{}, err
			}
			out.tup = append(out.tup, fv)
		}
		return out, nil
	case ab.IsArray || t.Array:
		idx := len(a.objs)
		a.objs = append(a.objs, arrObj{seed: ab.Elems, facts: ArrayFacts{
			Origin: origin,
			Kind:   t.Kind,
			Elems:  ab.Elems,
			Len:    ab.Len,
			Input:  true,
		}})
		return absVal{isArr: true, arrs: []int{idx}, origin: -1}, nil
	default:
		return absVal{iv: ab.Iv, k: t.Kind, kok: true, origin: -1}, nil
	}
}

// staticObj returns (registering on first use) the abstract object for a
// static field.
func (a *analyzer) staticObj(sym string, k cir.Kind) int {
	if idx, ok := a.statics[sym]; ok {
		return idx
	}
	f := ArrayFacts{Origin: "static:" + sym, Kind: k, Static: true, Elems: Bottom(), Len: Top()}
	if a.cls != nil {
		if sf := a.cls.Static(sym); sf != nil {
			f.Kind = sf.Type.Kind
			f.Len = pointIv(float64(len(sf.Data)))
			for _, v := range sf.Data {
				f.Elems = f.Elems.Join(Const(v))
			}
		}
	}
	if f.Elems.IsBottom() {
		f.Elems = kindRange(f.Kind)
	}
	idx := len(a.objs)
	a.objs = append(a.objs, arrObj{seed: f.Elems, facts: f})
	a.statics[sym] = idx
	return idx
}

// newObj returns (registering on first visit) the abstract object for an
// OpNewArray site. Fresh arrays are zero filled.
func (a *analyzer) newObj(pc int, k cir.Kind, length Interval) int {
	if idx, ok := a.news[pc]; ok {
		o := &a.objs[idx]
		grown := o.facts.Len.Join(length)
		if grown != o.facts.Len {
			o.facts.Len = grown
			a.objChanged = true
		}
		return idx
	}
	idx := len(a.objs)
	a.objs = append(a.objs, arrObj{seed: pointIv(0), facts: ArrayFacts{
		Origin: fmt.Sprintf("new@%d", pc),
		Kind:   k,
		Elems:  pointIv(0),
		Len:    length,
		Pos:    a.m.PosAt(pc),
	}})
	a.news[pc] = idx
	return idx
}

// fixpoint runs the worklist until states and array facts stabilize.
// Array-element facts are global (a store in one block is visible to
// loads everywhere), so when they change the whole reachable region is
// revisited.
func (a *analyzer) fixpoint() error {
	for round := 0; ; round++ {
		if round > 64 {
			return fmt.Errorf("absint: %s: global fixpoint did not converge", a.m.Name)
		}
		work := []int{0}
		queued := map[int]bool{0: true}
		for pc := range a.in {
			if !queued[pc] {
				work = append(work, pc)
				queued[pc] = true
			}
		}
		sort.Ints(work)
		a.objChanged = false
		for len(work) > 0 {
			pc := work[0]
			work = work[1:]
			queued[pc] = false
			a.facts.Fixpoint.Iterations++
			st := a.cloneOf(a.in[pc])
			edges, err := a.simBlock(pc, st, false)
			if err != nil {
				return err
			}
			for _, e := range edges {
				prev, ok := a.in[e.to]
				if !ok {
					a.in[e.to] = e.st
				} else {
					// Join in place into the edge's state (each edge owns
					// its state, and prev stays intact until the loop ends,
					// so widening still reads the pre-join bounds).
					a.joins[e.to]++
					a.facts.Fixpoint.Joins++
					widen := a.backTargets[e.to] && a.joins[e.to] > widenAfter
					if widen {
						a.facts.Fixpoint.Widenings++
					}
					changed := false
					for i := range e.st.locals {
						next := prev.locals[i].join(e.st.locals[i])
						if widen {
							next.iv = next.iv.Widen(prev.locals[i].iv, a.widenLimit(next))
						}
						if !changed && !next.equal(prev.locals[i]) {
							changed = true
						}
						e.st.locals[i] = next
					}
					if !changed {
						a.release(e.st)
						continue
					}
					a.in[e.to] = e.st
					a.release(prev)
				}
				if !queued[e.to] {
					queued[e.to] = true
					work = append(work, e.to)
				}
			}
		}
		if !a.objChanged {
			return nil
		}
	}
}

// widenLimit picks the widening target for a local: its exact kind range
// when known, otherwise unbounded.
func (a *analyzer) widenLimit(v absVal) Interval {
	if v.kok && !v.k.IsFloat() && v.k != cir.Void {
		return kindRange(v.k)
	}
	return Top()
}

// narrowHeap tightens the widening-inflated array-element facts. The
// stabilized local states remain sound for any heap below the widened
// one, so the heap equations can be re-solved from their seeds against
// the frozen locals (a descending "narrowing" iteration). If they fail
// to re-converge within a few passes (self-dependent recurrences like
// the S-W score matrix genuinely grow), the widened facts are restored —
// still sound, just coarser.
func (a *analyzer) narrowHeap() error {
	saved := make([]Interval, len(a.objs))
	for i := range a.objs {
		saved[i] = a.objs[i].facts.Elems
		a.objs[i].facts.Elems = a.objs[i].seed
		a.objs[i].updates = 0
	}
	pcs := make([]int, 0, len(a.in))
	for pc := range a.in {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for pass := 0; pass < widenAfter; pass++ {
		a.objChanged = false
		for _, pc := range pcs {
			edges, err := a.simBlock(pc, a.cloneOf(a.in[pc]), false)
			if err != nil {
				return err
			}
			for _, e := range edges {
				a.release(e.st)
			}
		}
		if !a.objChanged {
			return nil
		}
	}
	for i := range saved {
		a.objs[i].facts.Elems = a.objs[i].facts.Elems.Join(saved[i])
	}
	return nil
}

// record replays every reachable block once over the stabilized states,
// filling the per-pc fact tables, the purity summary, and violations.
func (a *analyzer) record() error {
	pcs := make([]int, 0, len(a.in))
	for pc := range a.in {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		edges, err := a.simBlock(pc, a.cloneOf(a.in[pc]), true)
		if err != nil {
			return err
		}
		for _, e := range edges {
			a.release(e.st)
		}
	}
	return nil
}

func (a *analyzer) recLocal(slot int, v absVal) {
	a.facts.Local[slot] = a.facts.Local[slot].Join(v.iv)
	for _, f := range v.tup {
		// Fold tuple scalar fields into the slot summary too, so the
		// range is meaningful for tuple-typed locals.
		if !f.isArr && !f.isTup {
			a.facts.Local[slot] = a.facts.Local[slot].Join(f.iv)
		}
	}
}

// elemsOf joins the element ranges of every object a reference may
// target.
func (a *analyzer) elemsOf(v absVal) Interval {
	out := Bottom()
	for _, idx := range v.arrs {
		out = out.Join(a.objs[idx].facts.Elems)
	}
	if len(v.arrs) == 0 {
		return Top()
	}
	return out
}

func (a *analyzer) lensOf(v absVal) Interval {
	out := Bottom()
	for _, idx := range v.arrs {
		out = out.Join(a.objs[idx].facts.Len)
	}
	if len(v.arrs) == 0 {
		return Interval{0, kindRange(cir.Int).Hi}
	}
	return out
}

// simBlock interprets one basic block from the given entry state,
// returning the successor edges. With record set it also accumulates the
// externally visible fact tables.
func (a *analyzer) simBlock(start int, st *state, record bool) ([]edge, error) {
	m := a.m
	end := a.blockEnd(start)
	stack := a.as.stk[:0]
	defer func() { a.as.stk = stack[:0] }()
	push := func(v absVal) { stack = append(stack, v) }
	pop := func(at int) (absVal, error) {
		if len(stack) == 0 {
			return absVal{}, fmt.Errorf("absint: %s@%d: stack underflow", m.Name, at)
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, nil
	}
	var vers []int
	if cap(a.as.vers) >= len(st.locals) {
		vers = a.as.vers[:len(st.locals)]
		for i := range vers {
			vers[i] = 0
		}
	} else {
		vers = make([]int, len(st.locals))
		a.as.vers = vers
	}

	if record {
		for i := range st.locals {
			a.recLocal(i, st.locals[i])
		}
	}

	for pc := start; pc < end; pc++ {
		in := m.Code[pc]
		switch in.Op {
		case bytecode.OpConst:
			push(scalarVal(Const(in.Val), in.Val.K))

		case bytecode.OpLoad:
			if in.A < 0 || in.A >= len(st.locals) {
				return nil, fmt.Errorf("absint: %s@%d: load from invalid slot %d", m.Name, pc, in.A)
			}
			v := st.locals[in.A]
			v.origin, v.over, v.cond = in.A, vers[in.A], nil
			push(v)

		case bytecode.OpStore:
			if in.A < 0 || in.A >= len(st.locals) {
				return nil, fmt.Errorf("absint: %s@%d: store to invalid slot %d", m.Name, pc, in.A)
			}
			v, err := pop(pc)
			if err != nil {
				return nil, err
			}
			v.origin, v.cond = -1, nil
			vers[in.A]++
			st.locals[in.A] = v
			if record {
				a.recLocal(in.A, v)
				a.facts.Stored[pc] = fetch(a.facts.Stored, pc).Join(v.iv)
			}

		case bytecode.OpALoad:
			idx, err := pop(pc)
			if err != nil {
				return nil, err
			}
			_ = idx
			arr, err := pop(pc)
			if err != nil {
				return nil, err
			}
			elems := a.elemsOf(arr)
			v := absVal{iv: elems, k: in.Kind, kok: sameElemKind(a, arr, in.Kind), origin: -1}
			if record {
				a.facts.Loaded[pc] = fetch(a.facts.Loaded, pc).Join(elems)
			}
			push(v)

		case bytecode.OpAStore:
			val, err := pop(pc)
			if err != nil {
				return nil, err
			}
			if _, err := pop(pc); err != nil { // index
				return nil, err
			}
			arr, err := pop(pc)
			if err != nil {
				return nil, err
			}
			for _, oi := range arr.arrs {
				o := &a.objs[oi]
				conv := castInterval(o.facts.Kind, val.iv)
				grown := o.facts.Elems.Join(conv)
				if grown != o.facts.Elems {
					o.updates++
					if o.updates > widenAfter {
						grown = grown.Widen(o.facts.Elems, kindRange(o.facts.Kind))
						a.facts.Fixpoint.ArrayWidenings++
					}
					o.facts.Elems = grown
					a.objChanged = true
				}
				if record && (o.facts.Static || (o.facts.Input && a.argWrites)) {
					a.heapWrites[pc] = Effect{
						PC: pc, Pos: m.PosAt(pc),
						Detail: fmt.Sprintf("store into caller-visible array %s", o.facts.Origin),
					}
				}
			}
			if record {
				a.facts.Stored[pc] = fetch(a.facts.Stored, pc).Join(val.iv)
			}

		case bytecode.OpArrayLen:
			arr, err := pop(pc)
			if err != nil {
				return nil, err
			}
			push(scalarVal(a.lensOf(arr), cir.Int))

		case bytecode.OpNewArray:
			n, err := pop(pc)
			if err != nil {
				return nil, err
			}
			oi := a.newObj(pc, in.Kind, n.iv)
			if record {
				if _, ok := n.iv.ConstInt(); !ok {
					a.viol[pc] = Violation{
						Kind: ViolDynamicAlloc, Method: m.Name, PC: pc, Pos: m.PosAt(pc),
						Detail: fmt.Sprintf("array size not a compile-time constant (range %s); dynamic allocation is unsupported on the FPGA", n.iv),
					}
				}
			}
			push(absVal{isArr: true, arrs: []int{oi}, origin: -1})

		case bytecode.OpGetField:
			tup, err := pop(pc)
			if err != nil {
				return nil, err
			}
			if in.A < 0 || in.A >= len(tup.tup) {
				if !tup.isTup {
					return nil, fmt.Errorf("absint: %s@%d: getfield on non-tuple", m.Name, pc)
				}
				return nil, fmt.Errorf("absint: %s@%d: field _%d out of range", m.Name, pc, in.A+1)
			}
			v := tup.tup[in.A]
			v.origin, v.cond = -1, nil
			push(v)

		case bytecode.OpNewTuple:
			fields := make([]absVal, in.A)
			for j := in.A - 1; j >= 0; j-- {
				v, err := pop(pc)
				if err != nil {
					return nil, err
				}
				fields[j] = v
			}
			push(absVal{isTup: true, tup: fields, origin: -1})

		case bytecode.OpGetStatic:
			oi := a.staticObj(in.Sym, in.Kind)
			push(absVal{isArr: true, arrs: []int{oi}, origin: -1})

		case bytecode.OpBin:
			r, err := pop(pc)
			if err != nil {
				return nil, err
			}
			l, err := pop(pc)
			if err != nil {
				return nil, err
			}
			push(a.binVal(in, l, r))

		case bytecode.OpUn:
			x, err := pop(pc)
			if err != nil {
				return nil, err
			}
			push(unVal(in, x))

		case bytecode.OpCast:
			x, err := pop(pc)
			if err != nil {
				return nil, err
			}
			push(scalarVal(castInterval(in.Kind, x.iv), in.Kind))

		case bytecode.OpIntrin:
			if in.A < 0 || in.A > len(stack) {
				return nil, fmt.Errorf("absint: %s@%d: intrinsic arity %d", m.Name, pc, in.A)
			}
			args := make([]Interval, in.A)
			for j := in.A - 1; j >= 0; j-- {
				v, err := pop(pc)
				if err != nil {
					return nil, err
				}
				args[j] = v.iv
			}
			if !cir.Intrinsics[in.Sym] {
				if record {
					a.viol[pc] = Violation{
						Kind: ViolExternalCall, Method: m.Name, PC: pc, Pos: m.PosAt(pc),
						Detail: fmt.Sprintf("call to %q is outside the supported math intrinsics (library calls are unsupported)", in.Sym),
					}
				}
				push(scalarVal(kindRange(in.Kind), in.Kind))
				break
			}
			push(scalarVal(intrinInterval(in.Sym, in.Kind, args), in.Kind))

		case bytecode.OpGoto:
			if in.Target < 0 || in.Target >= len(m.Code) {
				return nil, fmt.Errorf("absint: %s@%d: branch target %d out of range", m.Name, pc, in.Target)
			}
			return []edge{{to: in.Target, st: st}}, nil

		case bytecode.OpBrFalse, bytecode.OpBrTrue:
			c, err := pop(pc)
			if err != nil {
				return nil, err
			}
			if in.Target < 0 || in.Target >= len(m.Code) {
				return nil, fmt.Errorf("absint: %s@%d: branch target %d out of range", m.Name, pc, in.Target)
			}
			if pc+1 >= len(m.Code) {
				return nil, fmt.Errorf("absint: %s: code falls off the end", m.Name)
			}
			// takenTrue is the successor reached when the condition is
			// true: the target for brtrue, the fall-through for brfalse.
			trueTo, falseTo := in.Target, pc+1
			if in.Op == bytecode.OpBrFalse {
				trueTo, falseTo = pc+1, in.Target
			}
			var edges []edge
			if c.iv.Contains(1) || c.iv.Hi > 0 {
				ts := a.cloneOf(st)
				if refineEdge(ts, vers, c.cond, true) {
					edges = append(edges, edge{to: trueTo, st: ts})
				} else {
					a.release(ts)
				}
			}
			if c.iv.Contains(0) {
				fs := a.cloneOf(st)
				if refineEdge(fs, vers, c.cond, false) {
					edges = append(edges, edge{to: falseTo, st: fs})
				} else {
					a.release(fs)
				}
			}
			if len(edges) == 0 {
				// Degenerate condition abstraction: keep both edges to stay
				// sound.
				return []edge{{to: trueTo, st: st}, {to: falseTo, st: a.cloneOf(st)}}, nil
			}
			a.release(st)
			return edges, nil

		case bytecode.OpReturn:
			ret := m.Ret
			if ret.Kind != cir.Void || ret.Array || ret.IsTuple() {
				v, err := pop(pc)
				if err != nil {
					return nil, err
				}
				if record {
					a.recRet(pc, v)
				}
			}
			a.release(st)
			return nil, nil

		default:
			return nil, fmt.Errorf("absint: %s@%d: unknown opcode %d", m.Name, pc, in.Op)
		}
	}
	if end >= len(m.Code) {
		return nil, fmt.Errorf("absint: %s: code falls off the end", m.Name)
	}
	return []edge{{to: end, st: st}}, nil
}

func fetch(m map[int]Interval, pc int) Interval {
	if iv, ok := m[pc]; ok {
		return iv
	}
	return Bottom()
}

// sameElemKind reports whether every object the reference may target has
// element kind k.
func sameElemKind(a *analyzer, arr absVal, k cir.Kind) bool {
	if len(arr.arrs) == 0 {
		return false
	}
	for _, oi := range arr.arrs {
		if a.objs[oi].facts.Kind != k {
			return false
		}
	}
	return true
}

// binVal is the OpBin transfer: jvmsim routes LAnd/LOr through IsTrue
// and everything else through cir.EvalBinary at the instruction kind.
func (a *analyzer) binVal(in bytecode.Instr, l, r absVal) absVal {
	op := in.Bin
	if op.IsLogical() {
		return scalarVal(compareInterval(op, l.iv, r.iv), cir.Bool)
	}
	if op.IsCompare() {
		intCmp := l.kok && r.kok && !l.k.IsFloat() && !r.k.IsFloat()
		v := scalarVal(compareInterval(op, l.iv, r.iv), cir.Bool)
		v.cond = &condFact{
			op:    op,
			lOrig: l.origin, lVer: l.over,
			rOrig: r.origin, rVer: r.over,
			lIv: l.iv, rIv: r.iv,
			intCmp: intCmp,
		}
		return v
	}
	li, ri := l.iv, r.iv
	if !in.Kind.IsFloat() {
		// Operands pass through Value.AsInt (truncation toward zero).
		li = truncIv(li)
		ri = truncIv(ri)
	}
	return scalarVal(binInterval(op, in.Kind, li, ri), in.Kind)
}

func truncIv(iv Interval) Interval {
	if iv.IsBottom() {
		return iv
	}
	return Interval{math.Trunc(iv.Lo), math.Trunc(iv.Hi)}
}

// unVal is the OpUn transfer. jvmsim evaluates Neg and BitNot at the
// operand's own runtime kind, so when the kind is not known exactly the
// result is the join over every kind's wraparound.
func unVal(in bytecode.Instr, x absVal) absVal {
	switch in.Un {
	case cir.Not:
		v := scalarVal(compareInterval(cir.Eq, x.iv, Interval{0, 0}), cir.Bool)
		if x.cond != nil {
			c := *x.cond
			c.neg = !c.neg
			v.cond = &c
		}
		return v
	case cir.Neg:
		raw := Interval{-x.iv.Hi, -x.iv.Lo}
		if x.iv.IsBottom() {
			raw = Bottom()
		}
		return fitKnown(x, raw)
	case cir.BitNot:
		raw := Interval{-x.iv.Hi - 1, -x.iv.Lo - 1}
		if x.iv.IsBottom() {
			raw = Bottom()
		}
		return fitKnown(x, raw)
	}
	return scalarVal(kindRange(in.Kind), in.Kind)
}

// fitKnown wraps a raw unary result at the operand's kind when known,
// else over all possible kinds.
func fitKnown(x absVal, raw Interval) absVal {
	if x.kok {
		return scalarVal(fit(x.k, raw), x.k)
	}
	out := Bottom()
	for _, k := range []cir.Kind{cir.Bool, cir.Char, cir.Short, cir.Int, cir.Long, cir.Double} {
		out = out.Join(fit(k, raw))
	}
	v := scalarVal(out, cir.Void)
	v.kok = false
	return v
}

// refineEdge narrows the locals a comparison constrains on one branch
// edge. Returns false when the constraint proves the edge infeasible.
func refineEdge(st *state, vers []int, c *condFact, taken bool) bool {
	if c == nil {
		return true
	}
	if c.neg {
		taken = !taken
	}
	op := c.op
	if !taken {
		op = negateCmp(op)
	}
	d := 0.0
	if c.intCmp {
		d = 1
	}
	nl, nr, feasible := refineBounds(op, c.lIv, c.rIv, d)
	if !feasible {
		return false
	}
	if c.lOrig >= 0 && vers[c.lOrig] == c.lVer {
		st.locals[c.lOrig].iv = st.locals[c.lOrig].iv.Meet(nl)
	}
	if c.rOrig >= 0 && vers[c.rOrig] == c.rVer {
		st.locals[c.rOrig].iv = st.locals[c.rOrig].iv.Meet(nr)
	}
	return true
}

func negateCmp(op cir.BinOp) cir.BinOp {
	switch op {
	case cir.Lt:
		return cir.Ge
	case cir.Le:
		return cir.Gt
	case cir.Gt:
		return cir.Le
	case cir.Ge:
		return cir.Lt
	case cir.Eq:
		return cir.Ne
	case cir.Ne:
		return cir.Eq
	}
	return op
}

// refineBounds computes the constrained operand ranges under `l op r`.
// d is 1 for integer comparisons (strict bounds exclude the endpoint)
// and 0 for float comparisons.
func refineBounds(op cir.BinOp, l, r Interval, d float64) (Interval, Interval, bool) {
	inf := math.Inf(1)
	switch op {
	case cir.Lt:
		l = l.Meet(Interval{-inf, r.Hi - d})
		r = r.Meet(Interval{l.Lo + d, inf})
	case cir.Le:
		l = l.Meet(Interval{-inf, r.Hi})
		r = r.Meet(Interval{l.Lo, inf})
	case cir.Gt:
		l = l.Meet(Interval{r.Lo + d, inf})
		r = r.Meet(Interval{-inf, l.Hi - d})
	case cir.Ge:
		l = l.Meet(Interval{r.Lo, inf})
		r = r.Meet(Interval{-inf, l.Hi})
	case cir.Eq:
		m := l.Meet(r)
		l, r = m, m
	case cir.Ne:
		if d == 1 {
			if r.Lo == r.Hi {
				if l.Lo == r.Lo {
					l.Lo++
				}
				if l.Hi == r.Lo {
					l.Hi--
				}
			}
			if l.Lo == l.Hi {
				if r.Lo == l.Lo {
					r.Lo++
				}
				if r.Hi == l.Lo {
					r.Hi--
				}
			}
		}
	default:
		return l, r, true
	}
	return l, r, !l.IsBottom() && !r.IsBottom()
}

// recRet folds one return value into the method's return abstraction and
// flags escaping argument arrays.
func (a *analyzer) recRet(pc int, v absVal) {
	a.facts.Ret = joinAbstract(a.facts.Ret, a.export(v))
	a.checkEscape(pc, v)
}

func (a *analyzer) checkEscape(pc int, v absVal) {
	for _, oi := range v.arrs {
		o := a.objs[oi].facts
		if o.Input && a.argWrites {
			a.escapes[pc] = Effect{
				PC: pc, Pos: a.m.PosAt(pc),
				Detail: fmt.Sprintf("argument array %s escapes through the return value", o.Origin),
			}
		}
	}
	for _, f := range v.tup {
		a.checkEscape(pc, f)
	}
}

// export converts an internal abstract value to the public form.
func (a *analyzer) export(v absVal) Abstract {
	out := Abstract{Iv: v.iv, IsArray: v.isArr, Elems: Bottom(), Len: Bottom()}
	if v.isArr {
		out.Elems = a.elemsOf(v)
		out.Len = a.lensOf(v)
	}
	for _, f := range v.tup {
		out.Fields = append(out.Fields, a.export(f))
	}
	return out
}
