package absint

import (
	"fmt"
	"strings"

	"s2fa/internal/bytecode"
)

// Explain renders the analyzer's full fact report for one kernel class:
// §3.3 legality violations, the per-method purity summary, and the
// proven value ranges of every abstract array the kernel touches. file
// labels source positions (the kdsl file the class was compiled from);
// when empty, positions print as line:column only. This is what
// `s2fa -explain` shows, and what the golden tests pin down.
func Explain(cf *ClassFacts, file string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "abstract interpretation of %s:\n", cf.Class.Name)

	fmt.Fprintf(&b, "\n§3.3 legality:\n")
	if vs := cf.Violations(); len(vs) == 0 {
		fmt.Fprintf(&b, "  no violations — the kernel is synthesizable\n")
	} else {
		for _, v := range vs {
			fmt.Fprintf(&b, "  %s\n", v.Sourced(file))
		}
	}

	fmt.Fprintf(&b, "\npurity:\n")
	explainPurity(&b, file, "call", cf.Call)
	if cf.Reduce != nil {
		explainPurity(&b, file, "reduce", cf.Reduce)
	}

	fmt.Fprintf(&b, "\nvalue ranges:\n")
	explainArrays(&b, "call", cf.Call)
	if cf.Reduce != nil {
		explainArrays(&b, "reduce", cf.Reduce)
	}
	return b.String()
}

func explainPurity(b *strings.Builder, file, name string, mf *MethodFacts) {
	p := mf.Purity
	if p.Pure() {
		fmt.Fprintf(b, "  %s: pure (no observable effect beyond the return value)\n", name)
		return
	}
	fmt.Fprintf(b, "  %s: impure\n", name)
	for _, e := range p.HeapWrites {
		fmt.Fprintf(b, "    %s: heap write: %s\n", srcPos(file, e.Pos, name, e.PC), e.Detail)
	}
	for _, e := range p.ArgEscapes {
		fmt.Fprintf(b, "    %s: argument escape: %s\n", srcPos(file, e.Pos, name, e.PC), e.Detail)
	}
}

func explainArrays(b *strings.Builder, name string, mf *MethodFacts) {
	for _, a := range mf.Arrays {
		fmt.Fprintf(b, "  %s %s: %s elems in %s, length %s\n",
			name, a.Origin, a.Kind, a.Elems, a.Len)
	}
}

// srcPos renders a source position as file:line:col, falling back to the
// method@pc form when the instruction carries no position.
func srcPos(file string, p bytecode.Pos, method string, pc int) string {
	if !p.Valid() {
		if pc >= 0 {
			return fmt.Sprintf("%s@%d", method, pc)
		}
		return method
	}
	if file == "" {
		return p.String()
	}
	return file + ":" + p.String()
}
