package absint

import (
	"fmt"
	"math"

	"s2fa/internal/cir"
)

// Interval is a closed range [Lo, Hi] of scalar values, the numeric
// abstract domain of the analyzer. Bounds are float64: every integral
// kernel value below 2^53 is represented exactly, and anything larger is
// widened outward by at least one ULP so the bound stays an enclosure.
// Lo > Hi encodes bottom (unreachable / no value).
type Interval struct {
	Lo, Hi float64
}

// Top returns the unbounded interval.
func Top() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// Bottom returns the empty interval.
func Bottom() Interval { return Interval{math.Inf(1), math.Inf(-1)} }

// Const returns the singleton interval holding v.
func Const(v cir.Value) Interval {
	if v.K.IsFloat() {
		return pointIv(v.F)
	}
	return pointIv(float64(v.I))
}

func pointIv(x float64) Interval {
	if math.IsNaN(x) {
		return Top()
	}
	return outward(Interval{x, x})
}

// IsBottom reports whether the interval is empty.
func (iv Interval) IsBottom() bool { return iv.Lo > iv.Hi }

// IsTop reports whether the interval is unbounded on both sides.
func (iv Interval) IsTop() bool {
	return math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1)
}

// Contains reports whether concrete value x lies in the interval. NaN is
// only contained in Top (the analyzer returns Top whenever an operation
// can produce NaN).
func (iv Interval) Contains(x float64) bool {
	if math.IsNaN(x) {
		return iv.IsTop()
	}
	return iv.Lo <= x && x <= iv.Hi
}

// ContainsValue reports whether the concrete scalar v lies in the
// interval.
func (iv Interval) ContainsValue(v cir.Value) bool {
	if v.K.IsFloat() {
		return iv.Contains(v.F)
	}
	return iv.Contains(float64(v.I))
}

// Join returns the smallest interval containing both operands.
func (iv Interval) Join(o Interval) Interval {
	if iv.IsBottom() {
		return o
	}
	if o.IsBottom() {
		return iv
	}
	return Interval{math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi)}
}

// Meet returns the intersection of the operands.
func (iv Interval) Meet(o Interval) Interval {
	return Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
}

// Widen accelerates convergence: any bound that moved since prev jumps
// straight to the corresponding bound of limit (the slot's type range, or
// infinity). Guarantees fixpoint termination in a bounded number of
// visits per program point.
func (iv Interval) Widen(prev, limit Interval) Interval {
	out := iv
	if iv.Lo < prev.Lo {
		out.Lo = limit.Lo
	}
	if iv.Hi > prev.Hi {
		out.Hi = limit.Hi
	}
	return out
}

// ConstInt returns the exact integer the interval pins down, if any.
func (iv Interval) ConstInt() (int64, bool) {
	if iv.IsBottom() || iv.Lo != iv.Hi {
		return 0, false
	}
	x := iv.Lo
	if x != math.Trunc(x) || math.Abs(x) >= 1<<52 {
		return 0, false
	}
	return int64(x), true
}

// Bits returns the smallest power-of-two storage width (8..64) that
// provably holds every signed integer in the interval, and ok=false when
// the interval is unbounded.
func (iv Interval) Bits() (int, bool) {
	if iv.IsBottom() {
		return 8, true
	}
	if math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
		return 0, false
	}
	for _, w := range []int{8, 16, 32, 64} {
		lo := -math.Pow(2, float64(w-1))
		hi := math.Pow(2, float64(w-1)) - 1
		if iv.Lo >= lo && iv.Hi <= hi {
			return w, true
		}
	}
	return 0, false
}

func (iv Interval) String() string {
	if iv.IsBottom() {
		return "⊥"
	}
	if iv.IsTop() {
		return "⊤"
	}
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}

// kindRange returns the value range of a scalar kind: the signed
// wraparound range for integral kinds (matching cir.IntVal truncation),
// unbounded for floats.
func kindRange(k cir.Kind) Interval {
	switch k {
	case cir.Bool:
		return Interval{0, 1}
	case cir.Char:
		return Interval{math.MinInt8, math.MaxInt8}
	case cir.Short:
		return Interval{math.MinInt16, math.MaxInt16}
	case cir.Int:
		return Interval{math.MinInt32, math.MaxInt32}
	case cir.Long:
		// MaxInt64 is not exactly representable; the float64 rounding is
		// outward, which keeps the bound an enclosure.
		return Interval{math.MinInt64, math.MaxInt64}
	default:
		return Top()
	}
}

// outward nudges bounds away from zero range when they are too large for
// exact float64 representation, so rounding during transfer functions can
// never shrink an enclosure below a concrete value.
func outward(iv Interval) Interval {
	if iv.IsBottom() {
		return iv
	}
	if math.Abs(iv.Lo) >= 1<<52 {
		iv.Lo = math.Nextafter(iv.Lo, math.Inf(-1))
	}
	if math.Abs(iv.Hi) >= 1<<52 {
		iv.Hi = math.Nextafter(iv.Hi, math.Inf(1))
	}
	return iv
}

// ulps widens both bounds outward by n ULP steps, used after library math
// functions whose rounding is not guaranteed monotone.
func (iv Interval) ulps(n int) Interval {
	if iv.IsBottom() {
		return iv
	}
	for i := 0; i < n; i++ {
		iv.Lo = math.Nextafter(iv.Lo, math.Inf(-1))
		iv.Hi = math.Nextafter(iv.Hi, math.Inf(1))
	}
	return iv
}

// fit clamps an arithmetic result to kind k: when the enclosure already
// lies inside k's representable range the truncating semantics of
// cir.IntVal cannot fire and the bounds are exact; otherwise wraparound
// is possible and the whole kind range is the only sound answer.
func fit(k cir.Kind, iv Interval) Interval {
	if iv.IsBottom() {
		return iv
	}
	if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
		return Top()
	}
	if k.IsFloat() {
		if k == cir.Float {
			// cir.FloatVal rounds through float32; rounding is monotone, so
			// rounding the bounds preserves the enclosure.
			return Interval{float64(float32(iv.Lo)), float64(float32(iv.Hi))}
		}
		return iv
	}
	kr := kindRange(k)
	if iv.Lo >= kr.Lo && iv.Hi <= kr.Hi {
		return iv
	}
	return kr
}

// binInterval is the transfer function for cir.EvalBinary at kind k.
func binInterval(op cir.BinOp, k cir.Kind, l, r Interval) Interval {
	if l.IsBottom() || r.IsBottom() {
		return Bottom()
	}
	if op.IsCompare() || op == cir.LAnd || op == cir.LOr {
		return compareInterval(op, l, r)
	}
	switch op {
	case cir.Add:
		return fit(k, outward(Interval{l.Lo + r.Lo, l.Hi + r.Hi}))
	case cir.Sub:
		return fit(k, outward(Interval{l.Lo - r.Hi, l.Hi - r.Lo}))
	case cir.Mul:
		return fit(k, outward(corners(l, r, func(a, b float64) float64 { return a * b })))
	case cir.Div:
		if !k.IsFloat() {
			return divIntInterval(k, l, r)
		}
		if r.Contains(0) {
			return Top()
		}
		return fit(k, outward(corners(l, r, func(a, b float64) float64 { return a / b })))
	case cir.Rem:
		return remInterval(k, l, r)
	case cir.And:
		if l.Lo >= 0 && r.Lo >= 0 {
			return Interval{0, math.Min(l.Hi, r.Hi)}
		}
		return kindRange(k)
	case cir.Or, cir.Xor:
		if l.Lo >= 0 && r.Lo >= 0 {
			return Interval{0, nextPow2(math.Max(l.Hi, r.Hi)) - 1}
		}
		return kindRange(k)
	case cir.Shl, cir.Shr:
		if c, ok := r.ConstInt(); ok && l.Lo >= 0 && !math.IsInf(l.Hi, 1) {
			s := uint64(c) & 63
			if op == cir.Shr {
				return fit(k, Interval{math.Floor(l.Lo / math.Pow(2, float64(s))), math.Floor(l.Hi / math.Pow(2, float64(s)))})
			}
			return fit(k, outward(Interval{l.Lo * math.Pow(2, float64(s)), l.Hi * math.Pow(2, float64(s))}))
		}
		return kindRange(k)
	}
	return kindRange(k)
}

// compareInterval evaluates a comparison or logical operator over
// intervals, returning [0,0], [1,1], or [0,1].
func compareInterval(op cir.BinOp, l, r Interval) Interval {
	t := Interval{1, 1}
	f := Interval{0, 0}
	switch op {
	case cir.Lt:
		if l.Hi < r.Lo {
			return t
		}
		if l.Lo >= r.Hi {
			return f
		}
	case cir.Le:
		if l.Hi <= r.Lo {
			return t
		}
		if l.Lo > r.Hi {
			return f
		}
	case cir.Gt:
		if l.Lo > r.Hi {
			return t
		}
		if l.Hi <= r.Lo {
			return f
		}
	case cir.Ge:
		if l.Lo >= r.Hi {
			return t
		}
		if l.Hi < r.Lo {
			return f
		}
	case cir.Eq:
		if l.Lo == l.Hi && r.Lo == r.Hi && l.Lo == r.Lo {
			return t
		}
		if l.Hi < r.Lo || r.Hi < l.Lo {
			return f
		}
	case cir.Ne:
		if l.Hi < r.Lo || r.Hi < l.Lo {
			return t
		}
		if l.Lo == l.Hi && r.Lo == r.Hi && l.Lo == r.Lo {
			return f
		}
	case cir.LAnd:
		if l.Lo > 0 && r.Lo > 0 {
			return t
		}
		if l.Hi == 0 && l.Lo == 0 || r.Hi == 0 && r.Lo == 0 {
			return f
		}
	case cir.LOr:
		if l.Lo > 0 || r.Lo > 0 {
			return t
		}
		if l.Lo == 0 && l.Hi == 0 && r.Lo == 0 && r.Hi == 0 {
			return f
		}
	}
	return Interval{0, 1}
}

// divIntInterval handles C truncated integer division.
func divIntInterval(k cir.Kind, l, r Interval) Interval {
	// Division by a range containing zero traps at runtime; the non-trap
	// executions divide by the nonzero part.
	if r.Lo == 0 && r.Hi == 0 {
		return Bottom()
	}
	lo, hi := r.Lo, r.Hi
	if lo == 0 {
		lo = 1
	}
	if hi == 0 {
		hi = -1
	}
	if lo <= -1 && hi >= 1 {
		// Both signs possible: bound by |l| extremes.
		m := math.Max(math.Abs(l.Lo), math.Abs(l.Hi))
		return fit(k, outward(Interval{-m, m}))
	}
	res := corners(l, Interval{lo, hi}, func(a, b float64) float64 { return math.Trunc(a / b) })
	return fit(k, outward(res))
}

// remInterval bounds a remainder: for positive divisors the result of
// C's % with a non-negative dividend lies in [0, |d|-1]; general cases
// fall back to a symmetric bound.
func remInterval(k cir.Kind, l, r Interval) Interval {
	if k.IsFloat() {
		return Top()
	}
	if r.Lo == 0 && r.Hi == 0 {
		return Bottom()
	}
	m := math.Max(math.Abs(r.Lo), math.Abs(r.Hi)) - 1
	if math.IsInf(m, 1) {
		return kindRange(k)
	}
	if l.Lo >= 0 {
		hi := m
		if !math.IsInf(l.Hi, 1) && l.Hi < hi {
			hi = l.Hi
		}
		return Interval{0, hi}
	}
	return fit(k, Interval{-m, m})
}

// corners evaluates f at the four interval corner pairs and returns the
// enclosing range — valid for operations monotone in each argument.
func corners(l, r Interval, f func(a, b float64) float64) Interval {
	c := [4]float64{f(l.Lo, r.Lo), f(l.Lo, r.Hi), f(l.Hi, r.Lo), f(l.Hi, r.Hi)}
	lo, hi := c[0], c[0]
	for _, x := range c[1:] {
		if math.IsNaN(x) {
			return Top()
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return Top()
	}
	return Interval{lo, hi}
}

// unInterval is the transfer function for unary operators.
func unInterval(op cir.UnOp, k cir.Kind, x Interval) Interval {
	if x.IsBottom() {
		return Bottom()
	}
	switch op {
	case cir.Neg:
		return fit(k, Interval{-x.Hi, -x.Lo})
	case cir.Not:
		return compareInterval(cir.Eq, x, Interval{0, 0})
	case cir.BitNot:
		return fit(k, Interval{-x.Hi - 1, -x.Lo - 1})
	}
	return kindRange(k)
}

// castInterval models cir.Value.Convert: float conversions keep the
// range (with float32 rounding), integral conversions truncate toward
// zero and then wrap to the kind's width.
func castInterval(k cir.Kind, x Interval) Interval {
	if x.IsBottom() {
		return Bottom()
	}
	if k.IsFloat() {
		return fit(k, x)
	}
	return fit(k, Interval{math.Trunc(x.Lo), math.Trunc(x.Hi)})
}

// intrinInterval is the transfer function for math intrinsics.
func intrinInterval(name string, k cir.Kind, args []Interval) Interval {
	for _, a := range args {
		if a.IsBottom() {
			return Bottom()
		}
	}
	mono := func(f func(float64) float64) Interval {
		x := args[0]
		lo, hi := f(x.Lo), f(x.Hi)
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return Top()
		}
		return Interval{math.Min(lo, hi), math.Max(lo, hi)}.ulps(4)
	}
	switch name {
	case "exp":
		return fit(k, mono(math.Exp))
	case "log":
		if args[0].Lo <= 0 {
			return Top()
		}
		return fit(k, mono(math.Log))
	case "sqrt":
		if args[0].Lo < 0 {
			return Top()
		}
		return fit(k, mono(math.Sqrt))
	case "floor":
		return fit(k, mono(math.Floor))
	case "abs", "fabs":
		x := args[0]
		lo := 0.0
		if x.Lo > 0 {
			lo = x.Lo
		} else if x.Hi < 0 {
			lo = -x.Hi
		}
		return fit(k, outward(Interval{lo, math.Max(math.Abs(x.Lo), math.Abs(x.Hi))}))
	case "min":
		if len(args) != 2 {
			return Top()
		}
		return fit(k, Interval{math.Min(args[0].Lo, args[1].Lo), math.Min(args[0].Hi, args[1].Hi)})
	case "max":
		if len(args) != 2 {
			return Top()
		}
		return fit(k, Interval{math.Max(args[0].Lo, args[1].Lo), math.Max(args[0].Hi, args[1].Hi)})
	case "pow":
		if len(args) != 2 || args[0].Lo < 0 {
			return Top()
		}
		res := corners(args[0], args[1], math.Pow)
		if res.IsTop() {
			return Top()
		}
		return fit(k, res.ulps(8))
	}
	return Top()
}

// nextPow2 returns the smallest power of two strictly greater than x.
func nextPow2(x float64) float64 {
	p := 1.0
	for p <= x && !math.IsInf(p, 1) {
		p *= 2
	}
	return p
}
