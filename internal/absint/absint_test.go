package absint

import (
	"math"
	"strings"
	"testing"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/kdsl"
)

func TestIntervalLattice(t *testing.T) {
	a := Interval{1, 5}
	b := Interval{3, 9}
	if j := a.Join(b); j != (Interval{1, 9}) {
		t.Errorf("join = %v", j)
	}
	if m := a.Meet(b); m != (Interval{3, 5}) {
		t.Errorf("meet = %v", m)
	}
	if !Bottom().IsBottom() || Bottom().Join(a) != a {
		t.Error("bottom is not the join identity")
	}
	if !Top().Contains(1e300) || !Top().Contains(math.NaN()) {
		t.Error("top must contain everything including NaN")
	}
	if (Interval{0, 1}).Contains(math.NaN()) {
		t.Error("non-top interval contains NaN")
	}
	w := (Interval{0, 10}).Widen(Interval{0, 5}, kindRange(cir.Int))
	if w.Hi != kindRange(cir.Int).Hi || w.Lo != 0 {
		t.Errorf("widen = %v", w)
	}
	if c, ok := (Interval{7, 7}).ConstInt(); !ok || c != 7 {
		t.Errorf("ConstInt = %d, %v", c, ok)
	}
	if _, ok := (Interval{7, 8}).ConstInt(); ok {
		t.Error("non-singleton reported constant")
	}
	if bits, ok := (Interval{-100, 100}).Bits(); !ok || bits != 8 {
		t.Errorf("Bits([-100,100]) = %d, %v", bits, ok)
	}
	if bits, ok := (Interval{0, 70000}).Bits(); !ok || bits != 32 {
		t.Errorf("Bits([0,70000]) = %d, %v", bits, ok)
	}
}

func TestIntervalTransferMatchesEval(t *testing.T) {
	// Every concrete evaluation must land inside the abstract transfer's
	// result, across operator/kind/operand combinations.
	ops := []cir.BinOp{cir.Add, cir.Sub, cir.Mul, cir.Div, cir.Rem, cir.And, cir.Or, cir.Xor, cir.Shl, cir.Shr, cir.Lt, cir.Le, cir.Gt, cir.Ge, cir.Eq, cir.Ne}
	vals := []int64{-130, -128, -3, -1, 0, 1, 2, 7, 127, 128, 1000}
	kinds := []cir.Kind{cir.Char, cir.Short, cir.Int, cir.Long}
	for _, k := range kinds {
		for _, op := range ops {
			for _, x := range vals {
				for _, y := range vals {
					l := cir.IntVal(k, x)
					r := cir.IntVal(k, y)
					got, err := cir.EvalBinary(op, k, l, r)
					if err != nil {
						continue // div/rem by zero
					}
					iv := binInterval(op, k, Const(l), Const(r))
					if op.IsCompare() {
						iv = compareInterval(op, Const(l), Const(r))
					}
					if !iv.ContainsValue(got) {
						t.Fatalf("%s.%s(%d, %d) = %s escapes %v", op, k, x, y, got, iv)
					}
				}
			}
		}
	}
}

const sumSource = `
class Dot extends Accelerator[(Array[Int], Array[Int]), Int] {
  val id: String = "dot"
  val inSizes: Array[Int] = Array(8, 8)
  def call(in: (Array[Int], Array[Int])): Int = {
    val a: Array[Int] = in._1
    val b: Array[Int] = in._2
    var s: Int = 0
    for (i <- 0 until 8) {
      s = s + a(i) * b(i)
    }
    s
  }
}
`

func TestAnalyzeClassBasics(t *testing.T) {
	cls, err := kdsl.CompileSource(sumSource)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := AnalyzeClass(cls)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts.Call.Violations) != 0 {
		t.Errorf("unexpected violations: %v", facts.Call.Violations)
	}
	if !facts.Pure() {
		t.Errorf("pure kernel reported impure: %v", facts.Impurities())
	}
	// The loop counter slot must be bounded by the refined loop guard.
	var counter Interval
	found := false
	for i, name := range cls.Call.LocalNames {
		if name == "i" {
			counter = facts.Call.LocalRange(i)
			found = true
		}
	}
	if !found {
		t.Fatalf("no local named i in %v", cls.Call.LocalNames)
	}
	if counter.Lo < 0 || counter.Hi > 8 {
		t.Errorf("loop counter range %v, want within [0, 8]", counter)
	}
	// Input arrays: element range is the full Int kind, length pinned to
	// the per-task InSizes.
	a := facts.Call.Array("field#0")
	if a == nil {
		t.Fatal("no facts for input field#0")
	}
	if n, ok := a.Len.ConstInt(); !ok || n != 8 {
		t.Errorf("input length %v, want constant 8", a.Len)
	}
	if a.Elems != kindRange(cir.Int) {
		t.Errorf("input element range %v", a.Elems)
	}
}

const fillSource = `
class Fill extends Accelerator[Array[Int], Array[Char]] {
  val id: String = "fill"
  val inSizes: Array[Int] = Array(4)
  def call(in: Array[Int]): Array[Char] = {
    var out: Array[Char] = new Array[Char](16)
    for (i <- 0 until 16) {
      out(i) = (i + 1).toChar
    }
    out
  }
}
`

func TestArrayExtentAndElementRange(t *testing.T) {
	cls, err := kdsl.CompileSource(fillSource)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := AnalyzeClass(cls)
	if err != nil {
		t.Fatal(err)
	}
	var alloc *ArrayFacts
	for i := range facts.Call.Arrays {
		if strings.HasPrefix(facts.Call.Arrays[i].Origin, "new@") {
			alloc = &facts.Call.Arrays[i]
		}
	}
	if alloc == nil {
		t.Fatal("no allocation-site array facts")
	}
	if n, ok := alloc.Len.ConstInt(); !ok || n != 16 {
		t.Errorf("extent %v, want constant 16", alloc.Len)
	}
	// Elements: zero fill plus stores of i+1 for i in [0,15].
	if alloc.Elems.Lo < 0 || alloc.Elems.Hi > 16 {
		t.Errorf("element range %v, want within [0, 16]", alloc.Elems)
	}
	if !alloc.Pos.Valid() {
		t.Error("allocation site lost its source position")
	}
	// The fresh array is returned: no escape, no heap writes.
	if !facts.Pure() {
		t.Errorf("fill kernel reported impure: %v", facts.Impurities())
	}
}

// asm builds a method around code with positions attached.
func asm(ret bytecode.TypeDesc, params []bytecode.TypeDesc, code []bytecode.Instr, extras ...bytecode.TypeDesc) *bytecode.Method {
	locals := append(append([]bytecode.TypeDesc{}, params...), extras...)
	pos := make([]bytecode.Pos, len(code))
	for i := range pos {
		pos[i] = bytecode.Pos{Line: 10 + i, Col: 3}
	}
	return &bytecode.Method{
		Name: "m", Params: params, Ret: ret,
		LocalTypes: locals, LocalNames: make([]string, len(locals)),
		Code: code, Pos: pos,
	}
}

func ci(v int64) bytecode.Instr {
	return bytecode.Instr{Op: bytecode.OpConst, Kind: cir.Int, Val: cir.IntVal(cir.Int, v)}
}

func TestViolationExternalCall(t *testing.T) {
	// `sin` is outside the intrinsic whitelist; bytecode.Verify rejects
	// it, so drive the analyzer directly the way a front end that defers
	// legality checking would.
	m := asm(bytecode.Prim(cir.Double), nil, []bytecode.Instr{
		ci(1),
		{Op: bytecode.OpIntrin, Sym: "sin", A: 1, Kind: cir.Double},
		{Op: bytecode.OpReturn},
	})
	facts, err := analyzeMethod(m, nil, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts.Violations) != 1 {
		t.Fatalf("violations = %v, want 1", facts.Violations)
	}
	v := facts.Violations[0]
	if v.Kind != ViolExternalCall {
		t.Errorf("kind = %v", v.Kind)
	}
	if v.Pos != (bytecode.Pos{Line: 11, Col: 3}) {
		t.Errorf("pos = %v, want 11:3", v.Pos)
	}
	if !strings.Contains(v.String(), "11:3") || !strings.Contains(v.String(), "external-call") {
		t.Errorf("String() = %q", v.String())
	}
}

func TestViolationDynamicAlloc(t *testing.T) {
	m := asm(bytecode.Prim(cir.Int), []bytecode.TypeDesc{bytecode.Prim(cir.Int)}, []bytecode.Instr{
		{Op: bytecode.OpLoad, A: 0},
		{Op: bytecode.OpNewArray, Kind: cir.Int},
		{Op: bytecode.OpStore, A: 1},
		ci(0),
		{Op: bytecode.OpReturn},
	}, bytecode.ArrayOf(cir.Int))
	facts, err := analyzeMethod(m, nil, []Abstract{{Iv: kindRange(cir.Int)}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts.Violations) != 1 || facts.Violations[0].Kind != ViolDynamicAlloc {
		t.Fatalf("violations = %v, want one dynamic-alloc", facts.Violations)
	}
	if !facts.Violations[0].Pos.Valid() {
		t.Error("dynamic-alloc violation lost its source position")
	}
}

func TestViolationUnsupportedType(t *testing.T) {
	nested := bytecode.TupleOf(bytecode.TupleOf(bytecode.Prim(cir.Int), bytecode.Prim(cir.Int)), bytecode.Prim(cir.Int))
	m := asm(bytecode.Prim(cir.Int), []bytecode.TypeDesc{nested}, []bytecode.Instr{
		ci(0),
		{Op: bytecode.OpReturn},
	})
	facts, err := AnalyzeMethod(m)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range facts.Violations {
		if v.Kind == ViolUnsupportedType && strings.Contains(v.Detail, "nested tuple") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations = %v, want unsupported-type for nested tuple", facts.Violations)
	}
}

func TestPurityHeapWriteAndEscape(t *testing.T) {
	arr := bytecode.ArrayOf(cir.Int)
	m := asm(arr, []bytecode.TypeDesc{arr}, []bytecode.Instr{
		{Op: bytecode.OpLoad, A: 0},
		ci(0),
		ci(42),
		{Op: bytecode.OpAStore, Kind: cir.Int},
		{Op: bytecode.OpLoad, A: 0},
		{Op: bytecode.OpReturn},
	})
	facts, err := AnalyzeMethod(m)
	if err != nil {
		t.Fatal(err)
	}
	if facts.Purity.Pure() {
		t.Fatal("argument-mutating method reported pure")
	}
	if len(facts.Purity.HeapWrites) != 1 {
		t.Errorf("heap writes = %v", facts.Purity.HeapWrites)
	}
	if len(facts.Purity.ArgEscapes) != 1 {
		t.Errorf("escapes = %v", facts.Purity.ArgEscapes)
	}
	// The same shape analyzed as a reduce combiner (operand ownership)
	// is pure.
	rf, err := analyzeMethod(m, nil, []Abstract{{IsArray: true, Elems: kindRange(cir.Int), Len: Interval{0, 100}}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rf.Purity.Pure() {
		t.Errorf("combiner-mode analysis reported impure: %v %v", rf.Purity.HeapWrites, rf.Purity.ArgEscapes)
	}
}

func TestStoredAndLoadedFacts(t *testing.T) {
	cls, err := kdsl.CompileSource(fillSource)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := AnalyzeClass(cls)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts.Call.Stored) == 0 {
		t.Error("no per-pc store facts recorded")
	}
	for pc, iv := range facts.Call.Stored {
		if iv.IsBottom() {
			t.Errorf("bottom store fact at pc %d", pc)
		}
	}
}
