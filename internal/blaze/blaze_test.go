package blaze

import (
	"math/rand"
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/jvmsim"
	"s2fa/internal/spark"
)

func layoutFor(t *testing.T, name string) (Layout, *apps.App) {
	t.Helper()
	a := apps.Get(name)
	cls, err := a.Class()
	if err != nil {
		t.Fatal(err)
	}
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return Layout{Class: cls, Kernel: k}, a
}

// TestSerializeRoundTrip: serializing inputs and reading the segments
// back must reproduce the original task values for every workload shape.
func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, name := range []string{"S-W", "KMeans", "LR", "PR", "AES"} {
		name := name
		t.Run(name, func(t *testing.T) {
			layout, a := layoutFor(t, name)
			tasks := a.Gen(rng, 5)
			bufs, err := layout.Serialize(tasks)
			if err != nil {
				t.Fatal(err)
			}
			// Every input param buffer is n*Length long.
			for _, p := range layout.Kernel.Params {
				if p.IsOutput {
					continue
				}
				if got := len(bufs[p.Name]); got != 5*p.Length {
					t.Errorf("%s buffer length = %d, want %d", p.Name, got, 5*p.Length)
				}
			}
			// Segment content matches the original fields.
			for ti, task := range tasks {
				fields := []jvmsim.Val{task}
				if task.IsTup {
					fields = task.Tup
				}
				ins := 0
				for _, p := range layout.Kernel.Params {
					if p.IsOutput {
						continue
					}
					seg := bufs[p.Name][ti*p.Length : (ti+1)*p.Length]
					fv := fields[ins]
					ins++
					if fv.IsArr {
						for i := range seg {
							if seg[i].AsFloat() != fv.Arr[i].Convert(p.Elem).AsFloat() {
								t.Fatalf("task %d field %s elem %d mismatch", ti, p.Name, i)
							}
						}
					} else if seg[0].AsFloat() != fv.S.Convert(p.Elem).AsFloat() {
						t.Fatalf("task %d scalar field %s mismatch", ti, p.Name)
					}
				}
			}
		})
	}
}

func TestSerializeShapeErrors(t *testing.T) {
	layout, _ := layoutFor(t, "S-W")
	short := jvmsim.Tuple(
		jvmsim.Array(make([]cir.Value, 3)), // wrong length (layout wants 128)
		jvmsim.Array(make([]cir.Value, 128)),
	)
	if _, err := layout.Serialize([]jvmsim.Val{short}); err == nil ||
		!strings.Contains(err.Error(), "layout expects") {
		t.Errorf("short array accepted: %v", err)
	}
	scalarTask := jvmsim.Scalar(cir.IntVal(cir.Int, 1))
	if _, err := layout.Serialize([]jvmsim.Val{scalarTask}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestManagerRegistry(t *testing.T) {
	mgr := NewManager(fpga.VU9P())
	acc := &Accelerator{ID: "k1"}
	if err := mgr.Register(acc); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(acc); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := mgr.Register(&Accelerator{}); err == nil {
		t.Error("empty ID accepted")
	}
	if mgr.Lookup("k1") != acc || mgr.Lookup("nope") != nil {
		t.Error("lookup broken")
	}
}

// buildAccel assembles a deployable accelerator for an app using the
// default (area) design.
func buildAccel(t *testing.T, name string) (*Manager, *Accelerator, *apps.App) {
	t.Helper()
	layout, a := layoutFor(t, name)
	dev := fpga.VU9P()
	rep := hls.Estimate(layout.Kernel, dev, int64(64), hls.Options{})
	mgr := NewManager(dev)
	acc := &Accelerator{ID: layout.Class.ID, Layout: layout, Design: rep.Design(name)}
	if err := mgr.Register(acc); err != nil {
		t.Fatal(err)
	}
	return mgr, acc, a
}

func TestMapAccMatchesJVM(t *testing.T) {
	mgr, _, a := buildAccel(t, "KMeans")
	rng := rand.New(rand.NewSource(6))
	tasks := a.Gen(rng, 32)
	ctx := spark.NewContext()
	rdd := spark.Parallelize(ctx, tasks, 4)

	cls, _ := a.Class()
	accel, stats, err := Wrap(rdd, mgr).MapAcc(jvmsim.New(cls))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedFPGA || stats.Tasks != 32 || stats.SimTime <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	jvm, jstats, err := Wrap(rdd, NewManager(fpga.VU9P())).MapAcc(jvmsim.New(cls))
	if err != nil {
		t.Fatal(err)
	}
	if jstats.UsedFPGA || jstats.Fallback == "" {
		t.Errorf("fallback stats = %+v", jstats)
	}
	for i := range accel {
		if accel[i].S.AsInt() != jvm[i].S.AsInt() {
			t.Fatalf("task %d: fpga=%v jvm=%v", i, accel[i], jvm[i])
		}
	}
}

func TestReduceAccMatchesJVM(t *testing.T) {
	mgr, _, a := buildAccel(t, "LR")
	rng := rand.New(rand.NewSource(6))
	tasks := a.Gen(rng, 16)
	ctx := spark.NewContext()
	rdd := spark.Parallelize(ctx, tasks, 2)

	cls, _ := a.Class()
	got, stats, err := Wrap(rdd, mgr).ReduceAcc(jvmsim.New(cls))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedFPGA {
		t.Error("reduce did not use the accelerator")
	}
	want, _, err := Wrap(rdd, NewManager(fpga.VU9P())).ReduceAcc(jvmsim.New(cls))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsArr || len(got.Arr) != len(want.Arr) {
		t.Fatalf("shape: %v vs %v", got, want)
	}
	for i := range got.Arr {
		d := got.Arr[i].AsFloat() - want.Arr[i].AsFloat()
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("grad[%d]: %v vs %v", i, got.Arr[i], want.Arr[i])
		}
	}
}

func TestBytesPerTask(t *testing.T) {
	layout, _ := layoutFor(t, "S-W")
	// 2x128 char in + 2x256 char out = 768 bytes.
	if got := layout.BytesPerTask(); got != 768 {
		t.Errorf("BytesPerTask = %d, want 768", got)
	}
}

func TestDeserializeMissingBuffer(t *testing.T) {
	layout, _ := layoutFor(t, "KMeans")
	if _, err := layout.Deserialize(map[string][]cir.Value{}, 1); err == nil {
		t.Error("missing output buffer accepted")
	}
}

// TestAcceleratorFailureFallsBack injects a broken accelerator (its
// layout disagrees with the class) and checks the Blaze runtime falls
// back to the JVM transparently — the paper's decoupled-service behavior.
func TestAcceleratorFailureFallsBack(t *testing.T) {
	layoutKM, aKM := layoutFor(t, "KMeans")
	layoutSW, _ := layoutFor(t, "S-W")
	dev := fpga.VU9P()
	mgr := NewManager(dev)
	// Register the KMeans ID with the S-W kernel layout: serialization
	// will fail at offload time.
	broken := &Accelerator{
		ID:     layoutKM.Class.ID,
		Layout: Layout{Class: layoutKM.Class, Kernel: layoutSW.Kernel},
		Design: &fpga.Design{CyclesPerTask: 1, FreqMHz: 100, BytesPerTask: 1},
	}
	if err := mgr.Register(broken); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	tasks := aKM.Gen(rng, 8)
	rdd := spark.Parallelize(spark.NewContext(), tasks, 2)
	cls, _ := aKM.Class()
	out, stats, err := Wrap(rdd, mgr).MapAcc(jvmsim.New(cls))
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if stats.UsedFPGA {
		t.Error("broken accelerator reported as used")
	}
	if !strings.Contains(stats.Fallback, "accelerator error") {
		t.Errorf("fallback reason = %q", stats.Fallback)
	}
	if len(out) != 8 {
		t.Errorf("fallback produced %d results", len(out))
	}
}

// TestMultipleAcceleratorsCoexist registers two kernels and checks each
// Spark job is routed to its own design by accelerator ID.
func TestMultipleAcceleratorsCoexist(t *testing.T) {
	mgrKM, accKM, aKM := buildAccel(t, "KMeans")
	layoutPR, aPR := layoutFor(t, "PR")
	dev := fpga.VU9P()
	repPR := hls.Estimate(layoutPR.Kernel, dev, 64, hls.Options{})
	accPR := &Accelerator{ID: layoutPR.Class.ID, Layout: layoutPR, Design: repPR.Design("PR")}
	if err := mgrKM.Register(accPR); err != nil {
		t.Fatal(err)
	}
	if mgrKM.Lookup("KMeans_kernel") != accKM || mgrKM.Lookup("PR_kernel") != accPR {
		t.Fatal("registry routing broken")
	}
	rng := rand.New(rand.NewSource(9))
	clsKM, _ := aKM.Class()
	clsPR, _ := aPR.Class()
	rddKM := spark.Parallelize(spark.NewContext(), aKM.Gen(rng, 4), 1)
	rddPR := spark.Parallelize(spark.NewContext(), aPR.Gen(rng, 4), 1)
	_, sKM, err := Wrap(rddKM, mgrKM).MapAcc(jvmsim.New(clsKM))
	if err != nil || !sKM.UsedFPGA {
		t.Errorf("KMeans routing: %v %+v", err, sKM)
	}
	_, sPR, err := Wrap(rddPR, mgrKM).MapAcc(jvmsim.New(clsPR))
	if err != nil || !sPR.UsedFPGA {
		t.Errorf("PR routing: %v %+v", err, sPR)
	}
}

// TestReduceOverEmptyRDD checks the error path.
func TestReduceOverEmptyRDD(t *testing.T) {
	mgr, _, a := buildAccel(t, "LR")
	cls, _ := a.Class()
	rdd := spark.Parallelize(spark.NewContext(), []jvmsim.Val{}, 1)
	mgr2 := NewManager(fpga.VU9P())
	_ = mgr
	if _, _, err := Wrap(rdd, mgr2).ReduceAcc(jvmsim.New(cls)); err == nil {
		t.Error("reduce over empty RDD accepted")
	}
}
