package blaze

import (
	"math/rand"
	"strings"
	"testing"

	"s2fa/internal/cir"
	"s2fa/internal/fpga"
	"s2fa/internal/jvmsim"
	"s2fa/internal/kdsl"
	"s2fa/internal/spark"
)

// impureSrc scrubs its input array while computing: a heap write the
// offload path cannot reproduce (only output buffers flow back), so the
// runtime must keep it on the JVM.
const impureSrc = `
class Scrub extends Accelerator[Array[Int], Array[Int]] {
  val id: String = "scrub"
  val inSizes: Array[Int] = Array(8)
  def call(in: Array[Int]): Array[Int] = {
    val out: Array[Int] = new Array[Int](8)
    for (i <- 0 until 8) {
      out(i) = in(i) * 2
      in(i) = 0
    }
    out
  }
}
`

// TestImpureKernelFallsBackToJVM registers an accelerator for an impure
// kernel and checks the purity gate routes every task to the JVM with a
// sourced diagnostic, instead of silently dropping the side effect on
// the FPGA path.
func TestImpureKernelFallsBackToJVM(t *testing.T) {
	cls, err := kdsl.CompileSource(impureSrc)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(fpga.VU9P())
	// The layout is deliberately unusable: if the purity gate fails to
	// fire, offload crashes into the generic accelerator-error fallback
	// and the diagnostic assertion below catches it.
	acc := &Accelerator{ID: cls.ID, Layout: Layout{Class: cls}, Design: &fpga.Design{
		CyclesPerTask: 1, FreqMHz: 100, BytesPerTask: 1,
	}}
	if err := mgr.Register(acc); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	tasks := make([]jvmsim.Val, 4)
	for i := range tasks {
		arr := make([]cir.Value, 8)
		for j := range arr {
			arr[j] = cir.IntVal(cir.Int, int64(rng.Intn(100)))
		}
		tasks[i] = jvmsim.Array(arr)
	}
	rdd := spark.Parallelize(spark.NewContext(), tasks, 2)
	out, stats, err := Wrap(rdd, mgr).MapAcc(jvmsim.New(cls))
	if err != nil {
		t.Fatal(err)
	}
	if stats.UsedFPGA {
		t.Error("impure kernel was offloaded")
	}
	if !strings.Contains(stats.Fallback, "impure") {
		t.Errorf("fallback reason = %q, want purity diagnostic", stats.Fallback)
	}
	if !strings.Contains(stats.Fallback, "in[") && !strings.Contains(stats.Fallback, ":") {
		t.Errorf("diagnostic not sourced: %q", stats.Fallback)
	}
	if len(out) != 4 {
		t.Fatalf("JVM fallback produced %d results", len(out))
	}
	// Second job on the same class hits the cached verdict.
	_, stats2, err := Wrap(rdd, mgr).MapAcc(jvmsim.New(cls))
	if err != nil {
		t.Fatal(err)
	}
	if stats2.UsedFPGA || stats2.Fallback != stats.Fallback {
		t.Errorf("cached verdict mismatch: %+v", stats2)
	}
}
