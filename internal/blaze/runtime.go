package blaze

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"s2fa/internal/absint"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/fpga"
	"s2fa/internal/jvmsim"
	"s2fa/internal/obs"
	"s2fa/internal/spark"
)

// Accelerator is a synthesized FPGA design registered with the manager:
// the kernel (for functional emulation), its layout, and the performance
// design parameters from HLS + DSE.
type Accelerator struct {
	ID     string
	Layout Layout
	Design *fpga.Design

	// encPool reuses batch encoders (grow-once serialize buffers, see
	// Layout.NewEncoder) across offloads. Pooled because transformations
	// on one registered accelerator may run concurrently.
	encPool sync.Pool
}

func (acc *Accelerator) encoder() *Encoder {
	if e, ok := acc.encPool.Get().(*Encoder); ok {
		return e
	}
	return acc.Layout.NewEncoder()
}

func (acc *Accelerator) release(e *Encoder) { acc.encPool.Put(e) }

// Manager is the Blaze node accelerator manager: a registry from
// accelerator ID (the `val id` of the kernel class, Code 1) to deployed
// designs.
type Manager struct {
	mu     sync.RWMutex
	device *fpga.Device
	accs   map[string]*Accelerator
	purity map[*bytecode.Class]string

	// reqSeq numbers accelerated transformations. The id rides every
	// span and instant the request produces ("req" arg), so a trace
	// groups into per-request span trees — the attribution the
	// accelerator-as-a-service front door will key on.
	reqSeq atomic.Int64

	// Trace, when set, receives runtime telemetry: one "blaze" span per
	// accelerated transformation (offload vs fallback with the cause) and
	// serialization traffic events. Tracing never changes which path runs.
	Trace *obs.Trace
}

// nextReq issues the next request id (1-based; sequential workloads get
// deterministic ids).
func (m *Manager) nextReq() int64 { return m.reqSeq.Add(1) }

// NewManager creates a manager for one FPGA device.
func NewManager(dev *fpga.Device) *Manager {
	return &Manager{
		device: dev,
		accs:   map[string]*Accelerator{},
		purity: map[*bytecode.Class]string{},
	}
}

// purityGate returns "" when the kernel class is provably side-effect
// free, or a sourced diagnostic explaining why offloading is unsafe. The
// offload path materializes results only from the kernel's output
// buffers, so a method that also mutates caller-visible memory (an
// argument array, a class static) would silently diverge from the JVM
// semantics on the accelerator — such kernels must stay on the JVM. The
// verdict comes from the abstract interpreter's per-method side-effect
// summary and is cached per class.
func (m *Manager) purityGate(cls *bytecode.Class) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.purity[cls]; ok {
		return d
	}
	d := ""
	facts, err := absint.AnalyzeClass(cls)
	switch {
	case err != nil:
		d = "purity analysis failed: " + err.Error()
	case !facts.Pure():
		d = fmt.Sprintf("kernel is impure, offload would drop the side effect at %s",
			facts.Impurities()[0])
	}
	m.purity[cls] = d
	return d
}

// SeedPurity pre-seeds the purity-verdict cache for cls from facts the
// caller already computed (the compile cache carries them), so the first
// offload of the class skips re-running the abstract interpreter. The
// seeded verdict is exactly what purityGate would derive; an existing
// verdict is never overwritten.
func (m *Manager) SeedPurity(cls *bytecode.Class, facts *absint.ClassFacts) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.purity[cls]; ok {
		return
	}
	d := ""
	if !facts.Pure() {
		d = fmt.Sprintf("kernel is impure, offload would drop the side effect at %s",
			facts.Impurities()[0])
	}
	m.purity[cls] = d
}

// Device returns the managed FPGA.
func (m *Manager) Device() *fpga.Device { return m.device }

// Register deploys an accelerator (the paper's bit-stream broadcast step:
// after DSE and bit-stream generation, designs are distributed to worker
// nodes and registered).
func (m *Manager) Register(acc *Accelerator) error {
	if acc.ID == "" {
		return fmt.Errorf("blaze: accelerator has no ID")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.accs[acc.ID]; dup {
		return fmt.Errorf("blaze: accelerator %q already registered", acc.ID)
	}
	m.accs[acc.ID] = acc
	return nil
}

// Lookup returns the accelerator registered under id, or nil.
func (m *Manager) Lookup(id string) *Accelerator {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.accs[id]
}

// Stats reports how a wrapped transformation executed.
type Stats struct {
	UsedFPGA bool
	// Fallback explains why the JVM path ran instead.
	Fallback string
	// SimTime is the modeled execution time of the chosen path:
	// accelerator invocation (PCIe + kernel) or the single-threaded JVM
	// executor.
	SimTime time.Duration
	Tasks   int
}

// AccRDD wraps an RDD of JVM values for accelerated transformations
// (blaze.wrap in Code 1).
type AccRDD struct {
	base *spark.RDD[jvmsim.Val]
	mgr  *Manager
}

// Wrap marks an RDD for accelerator offloading.
func Wrap(r *spark.RDD[jvmsim.Val], mgr *Manager) *AccRDD {
	return &AccRDD{base: r, mgr: mgr}
}

// MapAcc applies the kernel class as an RDD map transformation. If an
// accelerator with the class's ID is registered, tasks are serialized,
// offloaded, and deserialized; otherwise (or on accelerator failure) the
// computation transparently falls back to the JVM, exactly as the Blaze
// runtime behaves.
func (a *AccRDD) MapAcc(vm *jvmsim.VM) ([]jvmsim.Val, Stats, error) {
	tasks := a.base.Collect()
	req := a.mgr.nextReq()
	span := a.mgr.Trace.Begin("blaze", "map",
		obs.I64("req", req), obs.Str("acc", vm.Class.ID), obs.Int("tasks", len(tasks)))
	out, stats, err := a.mapAcc(vm, tasks, req)
	a.closeSpan(span, stats, err)
	return out, stats, err
}

func (a *AccRDD) mapAcc(vm *jvmsim.VM, tasks []jvmsim.Val, req int64) ([]jvmsim.Val, Stats, error) {
	acc := a.mgr.Lookup(vm.Class.ID)
	if acc == nil {
		return a.fallbackMap(vm, tasks, "no accelerator registered for "+vm.Class.ID, req)
	}
	if why := a.mgr.purityGate(vm.Class); why != "" {
		return a.fallbackMap(vm, tasks, why, req)
	}
	results, stats, err := a.offload(acc, tasks, req)
	if err != nil {
		return a.fallbackMap(vm, tasks, "accelerator error: "+err.Error(), req)
	}
	return results, stats, nil
}

// ReduceAcc applies a map+reduce kernel class, returning the single
// accumulated value.
func (a *AccRDD) ReduceAcc(vm *jvmsim.VM) (jvmsim.Val, Stats, error) {
	tasks := a.base.Collect()
	req := a.mgr.nextReq()
	span := a.mgr.Trace.Begin("blaze", "reduce",
		obs.I64("req", req), obs.Str("acc", vm.Class.ID), obs.Int("tasks", len(tasks)))
	v, stats, err := a.reduceAcc(vm, tasks, req)
	a.closeSpan(span, stats, err)
	return v, stats, err
}

func (a *AccRDD) reduceAcc(vm *jvmsim.VM, tasks []jvmsim.Val, req int64) (jvmsim.Val, Stats, error) {
	acc := a.mgr.Lookup(vm.Class.ID)
	if acc == nil {
		return a.fallbackReduce(vm, tasks, "no accelerator registered for "+vm.Class.ID, req)
	}
	if why := a.mgr.purityGate(vm.Class); why != "" {
		return a.fallbackReduce(vm, tasks, why, req)
	}
	enc := acc.encoder()
	defer acc.release(enc)
	bufs, stats, err := a.execKernel(acc, enc, tasks, req)
	if err != nil {
		return a.fallbackReduce(vm, tasks, "accelerator error: "+err.Error(), req)
	}
	v, err := acc.Layout.DeserializeReduced(bufs)
	if err != nil {
		return a.fallbackReduce(vm, tasks, "deserialize error: "+err.Error(), req)
	}
	return v, stats, nil
}

// closeSpan ends a transformation span with how it actually executed:
// the chosen path (offload vs JVM fallback with its cause) and the
// modeled execution time.
func (a *AccRDD) closeSpan(span *obs.Span, st Stats, err error) {
	if span == nil {
		return
	}
	kvs := []obs.KV{
		obs.Bool("offloaded", st.UsedFPGA),
		obs.I64("sim_ns", st.SimTime.Nanoseconds()),
	}
	if st.Fallback != "" {
		kvs = append(kvs, obs.Str("fallback", st.Fallback))
	}
	if err != nil {
		kvs = append(kvs, obs.Str("error", err.Error()))
	}
	span.End(kvs...)
}

func (a *AccRDD) offload(acc *Accelerator, tasks []jvmsim.Val, req int64) ([]jvmsim.Val, Stats, error) {
	enc := acc.encoder()
	defer acc.release(enc)
	bufs, stats, err := a.execKernel(acc, enc, tasks, req)
	if err != nil {
		return nil, stats, err
	}
	results, err := acc.Layout.Deserialize(bufs, len(tasks))
	if err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// execKernel runs serialization (through the caller's pooled encoder,
// whose buffers back the returned map until the encoder is released),
// functional kernel emulation, and the platform timing model.
func (a *AccRDD) execKernel(acc *Accelerator, enc *Encoder, tasks []jvmsim.Val, req int64) (map[string][]cir.Value, Stats, error) {
	n := len(tasks)
	bufs, err := enc.Encode(tasks)
	if err != nil {
		return nil, Stats{}, err
	}
	for name, out := range acc.Layout.AllocOutputs(n) {
		bufs[name] = out
	}
	ev := cir.NewEvaluator(acc.Layout.Kernel)
	ev.MaxSteps = 2_000_000_000
	if err := ev.Execute(n, bufs); err != nil {
		return nil, Stats{}, fmt.Errorf("kernel execution: %w", err)
	}
	st := Stats{
		UsedFPGA: true,
		Tasks:    n,
		SimTime:  a.mgr.device.Execute(acc.Design, n),
	}
	if tr := a.mgr.Trace; tr != nil {
		bytes := acc.Layout.BytesPerTask() * n
		tr.Event("blaze", "offload",
			obs.I64("req", req),
			obs.Str("acc", acc.ID),
			obs.Int("tasks", n),
			obs.Int("bytes", bytes),
			obs.I64("sim_ns", st.SimTime.Nanoseconds()))
		tr.Count("blaze.offloads", 1)
		tr.Count("blaze.bytes_serialized", int64(bytes))
		tr.Observe("blaze_offload_bytes", float64(bytes))
		tr.Observe("blaze_sim_ms", float64(st.SimTime.Nanoseconds())/1e6, obs.L("path", "offload"))
	}
	return bufs, st, nil
}

func (a *AccRDD) fallbackMap(vm *jvmsim.VM, tasks []jvmsim.Val, why string, req int64) ([]jvmsim.Val, Stats, error) {
	// Opportunistically execute through the closure-compiled kernel: the
	// JIT preserves outputs, Counts, and errors bit-for-bit, so the
	// fallback's results and modeled SimTime are unchanged — only the
	// host-side wall clock spent simulating the JVM shrinks.
	jit := vm.TryJIT()
	if tr := a.mgr.Trace; tr != nil {
		tr.Event("blaze", "fallback",
			obs.I64("req", req),
			obs.Str("acc", vm.Class.ID), obs.Str("cause", why), obs.Bool("jit", jit))
		tr.Count("blaze.fallbacks", 1)
	}
	out, err := vm.CallBatch(tasks)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("blaze: JVM fallback failed: %w", err)
	}
	cm := jvmsim.DefaultCostModel()
	st := Stats{Fallback: why, Tasks: len(tasks), SimTime: cm.Duration(vm.Counts)}
	a.mgr.Trace.Observe("blaze_sim_ms",
		float64(st.SimTime.Nanoseconds())/1e6, obs.L("path", "fallback"))
	return out, st, nil
}

func (a *AccRDD) fallbackReduce(vm *jvmsim.VM, tasks []jvmsim.Val, why string, req int64) (jvmsim.Val, Stats, error) {
	if len(tasks) == 0 {
		return jvmsim.Val{}, Stats{}, fmt.Errorf("blaze: reduce over empty RDD")
	}
	mapped, stats, err := a.fallbackMap(vm, tasks, why, req)
	if err != nil {
		return jvmsim.Val{}, Stats{}, err
	}
	acc := mapped[0]
	for _, v := range mapped[1:] {
		acc, err = vm.Reduce(acc, v)
		if err != nil {
			return jvmsim.Val{}, Stats{}, fmt.Errorf("blaze: JVM reduce failed: %w", err)
		}
	}
	cm := jvmsim.DefaultCostModel()
	stats.SimTime = cm.Duration(vm.Counts)
	return acc, stats, nil
}
