// Package blaze reproduces the Blaze runtime system (paper §2): FPGA
// accelerators are registered as a service under string IDs; Spark
// applications wrap their RDDs and invoke accelerators transparently,
// falling back to the JVM when no accelerator (or a failing one) is
// available. It also contains the S2FA data processing method generator
// (paper §3.2 "data processing method generator"): the routines that
// reorganize JVM objects into the flat buffer layout of the generated
// kernel interface and back. The paper generates Scala methods that use
// Java reflection; here the same role is played by runtime inspection of
// jvmsim values against the kernel's layout.
package blaze

import (
	"fmt"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/jvmsim"
)

// Layout describes the flat buffer interface of a generated kernel, as
// produced by the bytecode-to-C compiler.
type Layout struct {
	Class  *bytecode.Class
	Kernel *cir.Kernel
}

// inputParams returns the kernel's input buffers in field order.
func (l *Layout) inputParams() []cir.Param {
	var in []cir.Param
	for _, p := range l.Kernel.Params {
		if !p.IsOutput {
			in = append(in, p)
		}
	}
	return in
}

// outputParams returns the kernel's output buffers in field order.
func (l *Layout) outputParams() []cir.Param {
	var out []cir.Param
	for _, p := range l.Kernel.Params {
		if p.IsOutput {
			out = append(out, p)
		}
	}
	return out
}

// Serialize reorganizes per-task JVM input objects into the kernel's flat
// input buffers (the generated Scala method of paper §3.2, Challenge 3).
// Each call allocates fresh buffers the caller owns; batch-loop callers
// (the runtime's offload path) use an Encoder to reuse storage instead.
func (l *Layout) Serialize(tasks []jvmsim.Val) (map[string][]cir.Value, error) {
	return l.NewEncoder().Encode(tasks)
}

// Encoder serializes task batches into kernel input buffers while
// reusing its backing storage across batches: each input buffer is
// grown once to the largest batch seen and resliced afterwards, so
// steady-state offloads allocate nothing but the small per-call map
// header. Not safe for concurrent use — the runtime pools encoders per
// accelerator.
type Encoder struct {
	l    *Layout
	bufs map[string][]cir.Value
}

// NewEncoder returns an encoder with empty backing storage.
func (l *Layout) NewEncoder() *Encoder {
	return &Encoder{l: l, bufs: make(map[string][]cir.Value)}
}

// Encode serializes per-task JVM input objects into the kernel's flat
// input buffers. The returned slices are owned by the encoder and valid
// only until its next Encode call (every element is rewritten per
// batch); callers that need caller-owned buffers use Layout.Serialize.
func (e *Encoder) Encode(tasks []jvmsim.Val) (map[string][]cir.Value, error) {
	ins := e.l.inputParams()
	bufs := make(map[string][]cir.Value, len(ins))
	for _, p := range ins {
		need := len(tasks) * p.Length
		buf := e.bufs[p.Name]
		if cap(buf) < need {
			buf = make([]cir.Value, need)
			e.bufs[p.Name] = buf
		}
		bufs[p.Name] = buf[:need]
	}
	for t, task := range tasks {
		fields := []jvmsim.Val{task}
		if task.IsTup {
			fields = task.Tup
		}
		if len(fields) != len(ins) {
			return nil, fmt.Errorf("blaze: task %d has %d fields, kernel expects %d", t, len(fields), len(ins))
		}
		for k, p := range ins {
			dst := bufs[p.Name][t*p.Length : (t+1)*p.Length]
			fv := fields[k]
			switch {
			case fv.IsArr:
				if len(fv.Arr) != p.Length {
					return nil, fmt.Errorf("blaze: task %d field %s has %d elements, layout expects %d (fixed data layout template)", t, p.Name, len(fv.Arr), p.Length)
				}
				for i, v := range fv.Arr {
					dst[i] = v.Convert(p.Elem)
				}
			case fv.IsTup:
				return nil, fmt.Errorf("blaze: nested tuple in task %d field %s", t, p.Name)
			default:
				if p.Length != 1 {
					return nil, fmt.Errorf("blaze: scalar value for array field %s", p.Name)
				}
				dst[0] = fv.S.Convert(p.Elem)
			}
		}
	}
	return bufs, nil
}

// AllocOutputs allocates zeroed output buffers for n tasks (zero is the
// additive identity required by the reduce template).
func (l *Layout) AllocOutputs(n int) map[string][]cir.Value {
	outs := map[string][]cir.Value{}
	for _, p := range l.outputParams() {
		ln := p.Length
		if l.Kernel.Pattern == cir.PatternReduce {
			// Accumulators are task-invariant but the evaluator sizes
			// buffers as n*Length; the kernel only touches [0, Length).
			buf := make([]cir.Value, n*ln)
			for i := range buf {
				buf[i].K = p.Elem
			}
			outs[p.Name] = buf
			continue
		}
		buf := make([]cir.Value, n*ln)
		for i := range buf {
			buf[i].K = p.Elem
		}
		outs[p.Name] = buf
	}
	return outs
}

// Deserialize reorganizes kernel output buffers back into per-task JVM
// values (map pattern) — the inverse generated data processing method.
func (l *Layout) Deserialize(bufs map[string][]cir.Value, n int) ([]jvmsim.Val, error) {
	outs := l.outputParams()
	ret := l.Class.Call.Ret
	results := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		fields := make([]jvmsim.Val, len(outs))
		for k, p := range outs {
			buf, ok := bufs[p.Name]
			if !ok {
				return nil, fmt.Errorf("blaze: missing output buffer %s", p.Name)
			}
			seg := buf[t*p.Length : (t+1)*p.Length]
			if fieldIsArray(ret, k) {
				arr := make([]cir.Value, p.Length)
				copy(arr, seg)
				fields[k] = jvmsim.Array(arr)
			} else {
				fields[k] = jvmsim.Scalar(seg[0])
			}
		}
		if ret.IsTuple() {
			results[t] = jvmsim.Tuple(fields...)
		} else {
			results[t] = fields[0]
		}
	}
	return results, nil
}

// DeserializeReduced extracts the single accumulated result of a reduce
// kernel.
func (l *Layout) DeserializeReduced(bufs map[string][]cir.Value) (jvmsim.Val, error) {
	outs := l.outputParams()
	ret := l.Class.Call.Ret
	fields := make([]jvmsim.Val, len(outs))
	for k, p := range outs {
		buf, ok := bufs[p.Name]
		if !ok {
			return jvmsim.Val{}, fmt.Errorf("blaze: missing output buffer %s", p.Name)
		}
		seg := buf[:p.Length]
		if fieldIsArray(ret, k) {
			arr := make([]cir.Value, p.Length)
			copy(arr, seg)
			fields[k] = jvmsim.Array(arr)
		} else {
			fields[k] = jvmsim.Scalar(seg[0])
		}
	}
	if ret.IsTuple() {
		return jvmsim.Tuple(fields...), nil
	}
	return fields[0], nil
}

func fieldIsArray(ret bytecode.TypeDesc, k int) bool {
	if ret.IsTuple() {
		return ret.Tuple[k].Array
	}
	return ret.Array
}

// BytesPerTask returns total host<->card traffic per task for the layout.
func (l *Layout) BytesPerTask() int {
	total := 0
	for _, p := range l.Kernel.Params {
		total += p.Length * p.Elem.Bits() / 8
	}
	return total
}
