// Package spark is a miniature Apache Spark: resilient distributed
// datasets with lazy transformations, partitioned parallel execution, and
// in-memory caching (paper §2). It exists so the Blaze runtime
// (internal/blaze) has a real host framework to integrate accelerators
// into, and so examples read like the paper's Code 1.
package spark

import (
	"runtime"
	"sync"
)

// Context configures a mini Spark application.
type Context struct {
	// Parallelism is the number of executor threads used for RDD
	// computation (defaults to GOMAXPROCS).
	Parallelism int
}

// NewContext returns a local execution context.
func NewContext() *Context {
	return &Context{Parallelism: runtime.GOMAXPROCS(0)}
}

// RDD is a resilient distributed dataset: an immutable, lazily computed,
// partitioned collection.
type RDD[T any] struct {
	ctx     *Context
	numPart int
	compute func(part int) []T

	mu      sync.Mutex
	cache   [][]T
	cached  bool
	doCache bool
}

// Parallelize distributes a slice across numPart partitions.
func Parallelize[T any](ctx *Context, data []T, numPart int) *RDD[T] {
	if numPart <= 0 {
		numPart = ctx.Parallelism
	}
	if numPart > len(data) && len(data) > 0 {
		numPart = len(data)
	}
	if numPart == 0 {
		numPart = 1
	}
	chunk := (len(data) + numPart - 1) / numPart
	return &RDD[T]{
		ctx:     ctx,
		numPart: numPart,
		compute: func(p int) []T {
			lo := p * chunk
			hi := lo + chunk
			if lo > len(data) {
				lo = len(data)
			}
			if hi > len(data) {
				hi = len(data)
			}
			return data[lo:hi]
		},
	}
}

// Context returns the RDD's context.
func (r *RDD[T]) Context() *Context { return r.ctx }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.numPart }

// Cache marks the RDD for in-memory caching after first materialization,
// the trait that makes Spark effective for iterative ML (paper §2).
func (r *RDD[T]) Cache() *RDD[T] {
	r.doCache = true
	return r
}

// Partition materializes one partition, honoring the cache.
func (r *RDD[T]) Partition(p int) []T {
	r.mu.Lock()
	if r.cached {
		out := r.cache[p]
		r.mu.Unlock()
		return out
	}
	r.mu.Unlock()
	return r.compute(p)
}

// materializeAll computes all partitions in parallel.
func (r *RDD[T]) materializeAll() [][]T {
	r.mu.Lock()
	if r.cached {
		out := r.cache
		r.mu.Unlock()
		return out
	}
	r.mu.Unlock()

	parts := make([][]T, r.numPart)
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.ctx.Parallelism)
	for p := 0; p < r.numPart; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parts[p] = r.compute(p)
		}(p)
	}
	wg.Wait()

	if r.doCache {
		r.mu.Lock()
		if !r.cached {
			r.cache = parts
			r.cached = true
		}
		r.mu.Unlock()
	}
	return parts
}

// Collect materializes the full dataset.
func (r *RDD[T]) Collect() []T {
	parts := r.materializeAll()
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the number of elements.
func (r *RDD[T]) Count() int {
	n := 0
	for _, p := range r.materializeAll() {
		n += len(p)
	}
	return n
}

// Map applies f lazily to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return &RDD[U]{
		ctx:     r.ctx,
		numPart: r.numPart,
		compute: func(p int) []U {
			in := r.Partition(p)
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out
		},
	}
}

// Filter keeps elements satisfying pred.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return &RDD[T]{
		ctx:     r.ctx,
		numPart: r.numPart,
		compute: func(p int) []T {
			var out []T
			for _, v := range r.Partition(p) {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out
		},
	}
}

// Reduce folds the dataset with an associative combiner. The dataset must
// be non-empty.
func Reduce[T any](r *RDD[T], f func(T, T) T) T {
	parts := r.materializeAll()
	var acc T
	seeded := false
	for _, p := range parts {
		for _, v := range p {
			if !seeded {
				acc = v
				seeded = true
				continue
			}
			acc = f(acc, v)
		}
	}
	return acc
}

// Zip pairs two equally partitioned RDDs element-wise.
func Zip[T, U any](a *RDD[T], b *RDD[U]) *RDD[Pair[T, U]] {
	return &RDD[Pair[T, U]]{
		ctx:     a.ctx,
		numPart: a.numPart,
		compute: func(p int) []Pair[T, U] {
			av, bv := a.Partition(p), b.Partition(p)
			n := len(av)
			if len(bv) < n {
				n = len(bv)
			}
			out := make([]Pair[T, U], n)
			for i := 0; i < n; i++ {
				out[i] = Pair[T, U]{First: av[i], Second: bv[i]}
			}
			return out
		},
	}
}

// Pair is a two-element tuple.
type Pair[T, U any] struct {
	First  T
	Second U
}
