package spark

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func nums(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	ctx := NewContext()
	f := func(data []int16) bool {
		ints := make([]int, len(data))
		for i, v := range data {
			ints[i] = int(v)
		}
		got := Parallelize(ctx, ints, 3).Collect()
		if len(got) != len(ints) {
			return false
		}
		for i := range got {
			if got[i] != ints[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapFilterReduce(t *testing.T) {
	ctx := NewContext()
	rdd := Parallelize(ctx, nums(100), 7)
	squares := Map(rdd, func(x int) int { return x * x })
	evens := Filter(squares, func(x int) bool { return x%2 == 0 })
	sum := Reduce(evens, func(a, b int) int { return a + b })
	want := 0
	for i := 0; i < 100; i++ {
		if (i*i)%2 == 0 {
			want += i * i
		}
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestCountAndPartitions(t *testing.T) {
	ctx := NewContext()
	rdd := Parallelize(ctx, nums(10), 4)
	if rdd.Count() != 10 {
		t.Errorf("count = %d", rdd.Count())
	}
	if rdd.NumPartitions() != 4 {
		t.Errorf("partitions = %d", rdd.NumPartitions())
	}
	// More partitions than elements collapses to the element count.
	small := Parallelize(ctx, nums(2), 8)
	if small.NumPartitions() != 2 {
		t.Errorf("small partitions = %d", small.NumPartitions())
	}
	empty := Parallelize(ctx, nums(0), 4)
	if empty.Count() != 0 {
		t.Error("empty count")
	}
}

func TestCacheComputesOnce(t *testing.T) {
	ctx := NewContext()
	var evals int64
	base := Parallelize(ctx, nums(50), 5)
	mapped := Map(base, func(x int) int {
		atomic.AddInt64(&evals, 1)
		return x + 1
	}).Cache()
	mapped.Collect()
	first := atomic.LoadInt64(&evals)
	mapped.Collect()
	mapped.Count()
	if got := atomic.LoadInt64(&evals); got != first {
		t.Errorf("cached RDD recomputed: %d -> %d evaluations", first, got)
	}
	if first != 50 {
		t.Errorf("first materialization evaluated %d elements", first)
	}
}

func TestUncachedRecomputes(t *testing.T) {
	ctx := NewContext()
	var evals int64
	mapped := Map(Parallelize(ctx, nums(10), 2), func(x int) int {
		atomic.AddInt64(&evals, 1)
		return x
	})
	mapped.Collect()
	mapped.Collect()
	if got := atomic.LoadInt64(&evals); got != 20 {
		t.Errorf("lazy RDD evaluated %d times, want 20", got)
	}
}

func TestZip(t *testing.T) {
	ctx := NewContext()
	a := Parallelize(ctx, nums(10), 3)
	b := Map(a, func(x int) int { return x * 10 })
	pairs := Zip(a, b).Collect()
	if len(pairs) != 10 {
		t.Fatalf("zip length = %d", len(pairs))
	}
	for _, p := range pairs {
		if p.Second != p.First*10 {
			t.Errorf("pair %+v mismatched", p)
		}
	}
}

func TestReduceSingleElement(t *testing.T) {
	ctx := NewContext()
	got := Reduce(Parallelize(ctx, []int{42}, 1), func(a, b int) int { return a + b })
	if got != 42 {
		t.Errorf("reduce single = %d", got)
	}
}

func TestChainedLaziness(t *testing.T) {
	ctx := NewContext()
	// Build a long lineage and make sure nothing executes until Collect.
	var evals int64
	r := Parallelize(ctx, nums(10), 2)
	for i := 0; i < 5; i++ {
		r = Map(r, func(x int) int {
			atomic.AddInt64(&evals, 1)
			return x + 1
		})
	}
	if atomic.LoadInt64(&evals) != 0 {
		t.Fatal("lineage executed before an action")
	}
	out := r.Collect()
	if out[0] != 5 {
		t.Errorf("first element = %d, want 5", out[0])
	}
}
