package depend

import "s2fa/internal/cir"

// Break-refinement: the bytecode structurer lowers short-circuit guard
// chains like
//
//	while (ti > 0 && tj > 0 && D[..] != 0 && p >= 0) { ... }
//
// into a while(1) body that materializes boolean flags:
//
//	$t1 = 0;
//	if ($t2) { if ((p >= 0)) { $t1 = 1; } }
//	if (!($t1)) { break; }
//	... // remainder: $t1 != 0, hence p >= 0 held and p is unmodified
//
// For the remainder of the body after such a break-check, every
// var-vs-literal comparison on the flag's set path still holds, provided
// the compared scalar was not assigned earlier in the body (the flag is
// re-derived every iteration, so the implication re-establishes itself).
// This is what proves the S-W traceback cursor p stays inside its
// [0, 255] output window and lets the task loop classify as DOALL.

type flagSet struct {
	conds    []cir.Expr
	poisoned bool
}

// breakRefinements maps the top-level index of each recognized
// break-check in a loop body to the scalar bounds that hold for the
// remainder of the body.
func breakRefinements(body cir.Block) map[int][]gbound {
	resets := map[string]bool{}
	sets := map[string]*flagSet{}
	out := map[int][]gbound{}
	assignedSoFar := map[string]bool{}

	// Total assignment counts validate that a flag is touched only by
	// its reset and its single set-site anywhere in the body.
	totalAssigns := map[string]int{}
	countAssigns(body, totalAssigns)

	for i, s := range body {
		if a, ok := s.(*cir.Assign); ok {
			if vr, isV := a.LHS.(*cir.VarRef); isV {
				if lit, isL := a.RHS.(*cir.IntLit); isL && lit.Val == 0 {
					resets[vr.Name] = true
					delete(sets, vr.Name)
				}
				assignedSoFar[vr.Name] = true
			}
			continue
		}
		ifStmt, isIf := s.(*cir.If)
		if !isIf {
			assignedIn(cir.Block{s}, assignedSoFar)
			continue
		}
		if flag, ok := breakCheckFlag(ifStmt); ok {
			if fs := sets[flag]; fs != nil && !fs.poisoned && resets[flag] && totalAssigns[flag] == 2 {
				var bs []gbound
				for _, c := range fs.conds {
					for _, gb := range condBounds(c) {
						if !assignedSoFar[gb.v] {
							bs = append(bs, gb)
						}
					}
				}
				if len(bs) > 0 {
					out[i] = bs
				}
			}
			assignedIn(cir.Block{s}, assignedSoFar)
			continue
		}
		// Look for single set-sites of reset flags inside this If.
		//determinism:allow order-independent: each iteration touches only its own sets[flag] entry
		for flag := range resets {
			conds, n := findFlagSets(ifStmt, flag)
			if n == 0 {
				continue
			}
			if n > 1 || sets[flag] != nil {
				sets[flag] = &flagSet{poisoned: true}
				continue
			}
			sets[flag] = &flagSet{conds: conds}
		}
		assignedIn(cir.Block{s}, assignedSoFar)
	}
	return out
}

// breakCheckFlag matches `if (!(flag)) break;` and `if (flag == 0) break;`.
func breakCheckFlag(s *cir.If) (string, bool) {
	if len(s.Then) != 1 || len(s.Else) != 0 {
		return "", false
	}
	if _, isBrk := s.Then[0].(*cir.Break); !isBrk {
		return "", false
	}
	switch c := s.Cond.(type) {
	case *cir.Unary:
		if c.Op == cir.Not {
			if vr, ok := c.X.(*cir.VarRef); ok {
				return vr.Name, true
			}
		}
	case *cir.Binary:
		if c.Op == cir.Eq {
			if vr, ok := c.L.(*cir.VarRef); ok {
				if lit, isL := c.R.(*cir.IntLit); isL && lit.Val == 0 {
					return vr.Name, true
				}
			}
			if vr, ok := c.R.(*cir.VarRef); ok {
				if lit, isL := c.L.(*cir.IntLit); isL && lit.Val == 0 {
					return vr.Name, true
				}
			}
		}
	}
	return "", false
}

// findFlagSets locates assignments of a nonzero literal to flag inside a
// statement, returning the guard conditions on the then-branch path to
// the (single) set-site. Else-branch descents drop their condition (the
// implication would be its negation) but keep collecting deeper ones.
// Any other assignment to the flag poisons the pattern (count bumps past
// one).
func findFlagSets(s cir.Stmt, flag string) (conds []cir.Expr, count int) {
	var walk func(st cir.Stmt, path []cir.Expr)
	walk = func(st cir.Stmt, path []cir.Expr) {
		switch st := st.(type) {
		case *cir.Assign:
			if vr, ok := st.LHS.(*cir.VarRef); ok && vr.Name == flag {
				if lit, isL := st.RHS.(*cir.IntLit); isL && lit.Val != 0 {
					count++
					conds = append([]cir.Expr(nil), path...)
				} else {
					count += 2
				}
			}
		case *cir.If:
			sub := append(append([]cir.Expr(nil), path...), st.Cond)
			for _, t := range st.Then {
				walk(t, sub)
			}
			for _, t := range st.Else {
				walk(t, path)
			}
		case *cir.Loop:
			for _, t := range st.Body {
				walk(t, nil) // conditions inside a nested loop do not persist
			}
		case *cir.While:
			for _, t := range st.Body {
				walk(t, nil)
			}
		}
	}
	walk(s, nil)
	return conds, count
}

func countAssigns(b cir.Block, out map[string]int) {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Assign:
			if vr, ok := s.LHS.(*cir.VarRef); ok {
				out[vr.Name]++
			}
		case *cir.If:
			countAssigns(s.Then, out)
			countAssigns(s.Else, out)
		case *cir.Loop:
			countAssigns(s.Body, out)
		case *cir.While:
			countAssigns(s.Body, out)
		}
	}
}
