package depend

import "s2fa/internal/cir"

// loopNode is one loop of the nest with the facts the pair tests need.
type loopNode struct {
	loop      *cir.Loop
	vrange    ival            // value range of the induction variable
	localArrs map[string]bool // arrays declared anywhere in the subtree
	assigned  map[string]bool // scalars (and loop vars) assigned in the subtree
	accs      []*access       // subtree array accesses in program order
}

// access is one recorded array read or write.
type access struct {
	arr    string
	write  bool
	idx    cir.Expr
	pos    cir.Pos
	chain  []*loopNode     // enclosing loops, outermost first
	bounds map[string]ival // guard-derived scalar bounds valid at this access
}

// gbound is one scalar constraint extracted from a guard condition.
type gbound struct {
	v      string
	lo, hi int64
	hasLo  bool
	hasHi  bool
}

// gframe is an active guard region (if-then or while body). killed marks
// scalars reassigned since the guard was evaluated, whose constraints no
// longer hold.
type gframe struct {
	bounds []gbound
	killed map[string]bool
}

// scalarFact summarizes every assignment to one scalar across the kernel.
type scalarFact struct {
	consts []int64 // literal values ever assigned (incl. implicit zero-init)
	inc    bool    // has v = v + positive-literal updates
	dec    bool    // has v = v - positive-literal updates
	other  bool    // has assignments the range analysis cannot model
}

type walker struct {
	stack    []*loopNode
	frames   []*gframe
	facts    map[string]*scalarFact
	nodes    map[string]*loopNode
	loopVars map[string]bool
}

func newWalker() *walker {
	return &walker{
		facts:    map[string]*scalarFact{},
		nodes:    map[string]*loopNode{},
		loopVars: map[string]bool{},
	}
}

// collectFacts is the first pass: flow-insensitive scalar value facts.
func (w *walker) collectFacts(b cir.Block) {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Decl:
			f := w.factFor(s.Name)
			if s.Init == nil {
				f.consts = append(f.consts, 0)
			} else if v, ok := constExpr(s.Init); ok {
				f.consts = append(f.consts, v)
			} else {
				f.other = true
			}
		case *cir.Assign:
			vr, ok := s.LHS.(*cir.VarRef)
			if !ok {
				continue
			}
			f := w.factFor(vr.Name)
			if v, isC := constExpr(s.RHS); isC {
				f.consts = append(f.consts, v)
				continue
			}
			if delta, isUpd := selfUpdate(vr.Name, s.RHS); isUpd {
				if delta > 0 {
					f.inc = true
				} else if delta < 0 {
					f.dec = true
				}
				continue
			}
			f.other = true
		case *cir.If:
			w.collectFacts(s.Then)
			w.collectFacts(s.Else)
		case *cir.Loop:
			w.loopVars[s.Var] = true
			w.collectFacts(s.Body)
		case *cir.While:
			w.collectFacts(s.Body)
		}
	}
}

func (w *walker) factFor(name string) *scalarFact {
	f := w.facts[name]
	if f == nil {
		f = &scalarFact{}
		w.facts[name] = f
	}
	return f
}

// selfUpdate matches v = v + c, v = c + v, v = v - c for a literal c and
// returns the signed delta.
func selfUpdate(name string, rhs cir.Expr) (int64, bool) {
	bin, ok := rhs.(*cir.Binary)
	if !ok {
		return 0, false
	}
	isSelf := func(e cir.Expr) bool {
		vr, isV := e.(*cir.VarRef)
		return isV && vr.Name == name
	}
	switch bin.Op {
	case cir.Add:
		if isSelf(bin.L) {
			if c, isC := constExpr(bin.R); isC {
				return c, true
			}
		}
		if isSelf(bin.R) {
			if c, isC := constExpr(bin.L); isC {
				return c, true
			}
		}
	case cir.Sub:
		if isSelf(bin.L) {
			if c, isC := constExpr(bin.R); isC {
				return -c, true
			}
		}
	}
	return 0, false
}

// globalRange bounds every value the scalar can ever hold, from the
// flow-insensitive facts. Loop induction variables are excluded (their
// values come from loop bounds, not assignments).
func (w *walker) globalRange(name string) ival {
	if w.loopVars[name] {
		return ival{}
	}
	f := w.facts[name]
	if f == nil || f.other || len(f.consts) == 0 {
		return ival{}
	}
	lo, hi := f.consts[0], f.consts[0]
	for _, c := range f.consts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	r := ival{lo: lo, hi: hi, hasLo: true, hasHi: true}
	if f.inc {
		r.hasHi = false
	}
	if f.dec {
		r.hasLo = false
	}
	return r
}

// boundsAt intersects the scalar's global range with the guard bounds
// that were valid at the access.
func (w *walker) boundsAt(a *access, name string) ival {
	r := w.globalRange(name)
	if g, ok := a.bounds[name]; ok {
		r = r.intersect(g)
	}
	return r
}

// Second pass: record accesses with their loop chains and guard bounds.

func (w *walker) walkBlock(b cir.Block) {
	for _, s := range b {
		w.walkStmt(s)
	}
}

func (w *walker) walkStmt(s cir.Stmt) {
	switch s := s.(type) {
	case *cir.Decl:
		w.walkExpr(s.Init)
		w.kill(s.Name)
	case *cir.ArrDecl:
		for _, n := range w.stack {
			n.localArrs[s.Name] = true
		}
	case *cir.Assign:
		w.walkExpr(s.RHS)
		switch lhs := s.LHS.(type) {
		case *cir.Index:
			w.walkExpr(lhs.Idx)
			w.record(lhs.Arr, lhs.Idx, lhs.Pos, true)
		case *cir.VarRef:
			w.kill(lhs.Name)
		}
	case *cir.If:
		w.walkExpr(s.Cond)
		w.pushFrame(s.Cond)
		w.walkBlock(s.Then)
		w.popFrame()
		// The else branch gets no constraints (we do not negate), but
		// its kills still propagate to outer frames.
		w.walkBlock(s.Else)
	case *cir.Loop:
		w.walkExpr(s.Lo)
		w.walkExpr(s.Hi)
		asg := map[string]bool{}
		assignedIn(s.Body, asg)
		asg[s.Var] = true
		w.killAll(asg)
		n := &loopNode{
			loop:      s,
			vrange:    loopRange(s),
			localArrs: map[string]bool{},
			assigned:  asg,
		}
		w.nodes[s.ID] = n
		w.stack = append(w.stack, n)
		w.walkBlock(s.Body)
		w.stack = w.stack[:len(w.stack)-1]
	case *cir.While:
		w.walkExpr(s.Cond)
		asg := map[string]bool{}
		assignedIn(s.Body, asg)
		// Assignments anywhere in the body invalidate outer-frame
		// constraints for every iteration after the first; the while's
		// own condition is re-established at the top of each iteration.
		w.killAll(asg)
		w.pushFrame(s.Cond)
		// Break-refinement: after `if (!(flag)) break;` checks of the
		// structurer's lowered short-circuit chains, the flag's guard
		// bounds hold for the remainder of each iteration.
		refs := breakRefinements(s.Body)
		pushed := 1
		for i, st := range s.Body {
			w.walkStmt(st)
			if bs := refs[i]; len(bs) > 0 {
				w.frames = append(w.frames, &gframe{bounds: bs, killed: map[string]bool{}})
				pushed++
			}
		}
		for ; pushed > 0; pushed-- {
			w.popFrame()
		}
	case *cir.Return:
		w.walkExpr(s.Val)
	}
}

func (w *walker) walkExpr(e cir.Expr) {
	switch e := e.(type) {
	case nil, *cir.IntLit, *cir.FloatLit, *cir.VarRef:
	case *cir.Index:
		w.walkExpr(e.Idx)
		w.record(e.Arr, e.Idx, e.Pos, false)
	case *cir.Unary:
		w.walkExpr(e.X)
	case *cir.Binary:
		w.walkExpr(e.L)
		w.walkExpr(e.R)
	case *cir.Cast:
		w.walkExpr(e.X)
	case *cir.Cond:
		w.walkExpr(e.C)
		w.walkExpr(e.T)
		w.walkExpr(e.F)
	case *cir.Call:
		for _, a := range e.Args {
			w.walkExpr(a)
		}
	}
}

func (w *walker) record(arr string, idx cir.Expr, pos cir.Pos, write bool) {
	if len(w.stack) == 0 {
		return
	}
	a := &access{
		arr:    arr,
		write:  write,
		idx:    idx,
		pos:    pos,
		chain:  append([]*loopNode(nil), w.stack...),
		bounds: w.activeBounds(),
	}
	for _, n := range w.stack {
		n.accs = append(n.accs, a)
	}
}

func (w *walker) activeBounds() map[string]ival {
	var out map[string]ival
	for _, fr := range w.frames {
		for _, gb := range fr.bounds {
			if fr.killed[gb.v] {
				continue
			}
			if out == nil {
				out = map[string]ival{}
			}
			cur, ok := out[gb.v]
			if !ok {
				cur = ival{}
			}
			out[gb.v] = cur.intersect(ival{lo: gb.lo, hi: gb.hi, hasLo: gb.hasLo, hasHi: gb.hasHi})
		}
	}
	return out
}

func (w *walker) pushFrame(cond cir.Expr) {
	w.frames = append(w.frames, &gframe{
		bounds: condBounds(cond),
		killed: map[string]bool{},
	})
}

func (w *walker) popFrame() { w.frames = w.frames[:len(w.frames)-1] }

func (w *walker) kill(name string) {
	for _, fr := range w.frames {
		fr.killed[name] = true
	}
}

func (w *walker) killAll(names map[string]bool) {
	for _, fr := range w.frames {
		//determinism:allow order-independent: commutative kill-set inserts
		for name := range names {
			fr.killed[name] = true
		}
	}
}

// assignedIn collects every scalar assigned or declared in a block,
// including nested loop induction variables.
func assignedIn(b cir.Block, out map[string]bool) {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Decl:
			out[s.Name] = true
		case *cir.Assign:
			if vr, ok := s.LHS.(*cir.VarRef); ok {
				out[vr.Name] = true
			}
		case *cir.If:
			assignedIn(s.Then, out)
			assignedIn(s.Else, out)
		case *cir.Loop:
			out[s.Var] = true
			assignedIn(s.Body, out)
		case *cir.While:
			assignedIn(s.Body, out)
		}
	}
}

// condBounds extracts scalar interval constraints from the conjuncts of a
// guard condition (var-vs-literal comparisons joined by logical or
// boolean AND).
func condBounds(cond cir.Expr) []gbound {
	var out []gbound
	var walk func(e cir.Expr)
	walk = func(e cir.Expr) {
		bin, ok := e.(*cir.Binary)
		if !ok {
			return
		}
		if bin.Op == cir.LAnd || (bin.Op == cir.And && bin.K == cir.Bool) {
			walk(bin.L)
			walk(bin.R)
			return
		}
		if b, ok := compareBound(bin); ok {
			out = append(out, b)
		}
	}
	walk(cond)
	return out
}

// compareBound turns a single comparison into a bound when one side is a
// scalar and the other a literal constant.
func compareBound(bin *cir.Binary) (gbound, bool) {
	vr, isVL := bin.L.(*cir.VarRef)
	cR, isCR := constExpr(bin.R)
	if isVL && isCR {
		switch bin.Op {
		case cir.Ge:
			return gbound{v: vr.Name, lo: cR, hasLo: true}, true
		case cir.Gt:
			return gbound{v: vr.Name, lo: cR + 1, hasLo: true}, true
		case cir.Le:
			return gbound{v: vr.Name, hi: cR, hasHi: true}, true
		case cir.Lt:
			return gbound{v: vr.Name, hi: cR - 1, hasHi: true}, true
		case cir.Eq:
			return gbound{v: vr.Name, lo: cR, hi: cR, hasLo: true, hasHi: true}, true
		}
		return gbound{}, false
	}
	vrR, isVR := bin.R.(*cir.VarRef)
	cL, isCL := constExpr(bin.L)
	if isVR && isCL {
		switch bin.Op {
		case cir.Ge: // c >= v
			return gbound{v: vrR.Name, hi: cL, hasHi: true}, true
		case cir.Gt: // c > v
			return gbound{v: vrR.Name, hi: cL - 1, hasHi: true}, true
		case cir.Le: // c <= v
			return gbound{v: vrR.Name, lo: cL, hasLo: true}, true
		case cir.Lt: // c < v
			return gbound{v: vrR.Name, lo: cL + 1, hasLo: true}, true
		case cir.Eq:
			return gbound{v: vrR.Name, lo: cL, hi: cL, hasLo: true, hasHi: true}, true
		}
	}
	return gbound{}, false
}
