package depend_test

import (
	"fmt"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
	"s2fa/internal/depend"
)

// TestAgreesWithCirOnApps pins the exact analysis to cir's conservative
// carried-array heuristic across every workload: on real kernels the two
// must flag the same arrays per loop (the exact analysis proves more
// pairs independent, but never an array cir would accept that it
// rejects, and on these kernels it also discharges no array cir flags —
// that equality is what keeps the lint race warnings byte-identical).
func TestAgreesWithCirOnApps(t *testing.T) {
	for _, name := range apps.Names() {
		app := apps.Get(name)
		if app == nil {
			t.Fatalf("%s: unknown app", name)
		}
		k, err := app.Kernel()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		info := cir.Analyze(k)
		a := depend.Analyze(k)
		for _, li := range info.All {
			v := a.Verdict(li.Loop.ID)
			if v == nil {
				t.Fatalf("%s %s: no verdict", name, li.Loop.ID)
			}
			got := fmt.Sprintf("%v", v.RaceCarried)
			want := fmt.Sprintf("%v", li.CarriedArrays)
			if got != want {
				t.Errorf("%s %s: depend carried %s, cir carried %s", name, li.Loop.ID, got, want)
			}
		}
	}
}
