package depend_test

import (
	"fmt"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
	"s2fa/internal/depend"
)

// TestAgreesWithCirOnApps pins the exact analysis against cir's
// conservative carried-array heuristic across every workload. On the
// Table 2 kernels the two flag the same arrays per loop — that equality
// is what keeps the lint race warnings byte-identical. The extended
// workloads expose a case where the analyses legitimately part company,
// pinned here as an exact expectation so any further drift still fails:
// TopK's insertion bubble writes best(j) under a compare chain, and the
// exact test proves the task loop's accesses disjoint where cir's
// syntactic heuristic gives up and flags "out". Both analyses are
// validated against execution traces separately (depend_property_test),
// so a divergence is a precision difference, never a soundness one.
var knownDivergence = map[string][2]string{
	// loop -> {depend carried, cir carried}
	"TopK/L0": {"[]", "[out]"},
}

func TestAgreesWithCirOnApps(t *testing.T) {
	for _, name := range apps.Names() {
		app := apps.Get(name)
		if app == nil {
			t.Fatalf("%s: unknown app", name)
		}
		k, err := app.Kernel()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		info := cir.Analyze(k)
		a := depend.Analyze(k)
		for _, li := range info.All {
			v := a.Verdict(li.Loop.ID)
			if v == nil {
				t.Fatalf("%s %s: no verdict", name, li.Loop.ID)
			}
			got := fmt.Sprintf("%v", v.RaceCarried)
			want := fmt.Sprintf("%v", li.CarriedArrays)
			if d, ok := knownDivergence[name+"/"+li.Loop.ID]; ok {
				if got != d[0] || want != d[1] {
					t.Errorf("%s %s: divergence drifted: depend %s (pinned %s), cir %s (pinned %s)",
						name, li.Loop.ID, got, d[0], want, d[1])
				}
				continue
			}
			if got != want {
				t.Errorf("%s %s: depend carried %s, cir carried %s", name, li.Loop.ID, got, want)
			}
		}
	}
}
