package depend

import "s2fa/internal/cir"

// ReductionForm recognizes the canonical additive reduction body: the
// loop contains exactly one assignment acc = acc + e (either operand
// order) where acc is not otherwise read or written in the body. It
// returns the accumulator name and the added expression. This is the
// shared legality predicate behind merlin's tree-reduction transform, the
// lint race detector, and the dependence verdicts (internal/lint
// delegates here).
func ReductionForm(l *cir.Loop) (acc string, addend cir.Expr, ok bool) {
	var candidate string
	var cExpr cir.Expr
	matches := 0
	for _, s := range l.Body {
		a, isAssign := s.(*cir.Assign)
		if !isAssign {
			continue
		}
		lhs, isVar := a.LHS.(*cir.VarRef)
		if !isVar {
			continue
		}
		bin, isBin := a.RHS.(*cir.Binary)
		if !isBin || bin.Op != cir.Add {
			continue
		}
		if vr, isV := bin.L.(*cir.VarRef); isV && vr.Name == lhs.Name {
			candidate, cExpr = lhs.Name, bin.R
			matches++
		} else if vr, isV := bin.R.(*cir.VarRef); isV && vr.Name == lhs.Name {
			candidate, cExpr = lhs.Name, bin.L
			matches++
		}
	}
	if matches != 1 {
		return "", nil, false
	}
	// The accumulator must appear exactly twice in the body: the LHS and
	// RHS of the recurrence statement, nowhere else.
	uses := 0
	for _, s := range l.Body {
		uses += StmtMentions(s, candidate)
	}
	if uses != 2 {
		return "", nil, false
	}
	return candidate, cExpr, true
}

// StmtMentions counts occurrences of the named scalar in a statement
// (reads and writes alike).
func StmtMentions(s cir.Stmt, name string) int {
	n := 0
	var we func(e cir.Expr)
	we = func(e cir.Expr) {
		switch e := e.(type) {
		case *cir.VarRef:
			if e.Name == name {
				n++
			}
		case *cir.Index:
			we(e.Idx)
		case *cir.Unary:
			we(e.X)
		case *cir.Binary:
			we(e.L)
			we(e.R)
		case *cir.Cast:
			we(e.X)
		case *cir.Cond:
			we(e.C)
			we(e.T)
			we(e.F)
		case *cir.Call:
			for _, a := range e.Args {
				we(a)
			}
		}
	}
	var ws func(s cir.Stmt)
	ws = func(s cir.Stmt) {
		switch s := s.(type) {
		case *cir.Decl:
			we(s.Init)
		case *cir.Assign:
			we(s.LHS)
			we(s.RHS)
		case *cir.If:
			we(s.Cond)
			for _, t := range s.Then {
				ws(t)
			}
			for _, t := range s.Else {
				ws(t)
			}
		case *cir.Loop:
			we(s.Lo)
			we(s.Hi)
			for _, t := range s.Body {
				ws(t)
			}
		case *cir.While:
			we(s.Cond)
			for _, t := range s.Body {
				ws(t)
			}
		case *cir.Return:
			we(s.Val)
		}
	}
	ws(s)
	return n
}
