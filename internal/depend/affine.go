package depend

import "s2fa/internal/cir"

// boundCap saturates interval arithmetic: any magnitude beyond it is
// treated as unbounded, which is always sound (a lost bound can only make
// the analysis more conservative, never less).
const boundCap = int64(1) << 40

// ival is an integer interval with optional infinities. The zero value is
// the unbounded interval (-inf, +inf).
type ival struct {
	lo, hi       int64
	hasLo, hasHi bool
}

func point(v int64) ival { return ival{lo: v, hi: v, hasLo: true, hasHi: true} }

func (a ival) add(b ival) ival {
	var out ival
	if a.hasLo && b.hasLo {
		out.lo, out.hasLo = satAdd(a.lo, b.lo)
	}
	if a.hasHi && b.hasHi {
		out.hi, out.hasHi = satAdd(a.hi, b.hi)
	}
	return out
}

// scale multiplies the interval by k (negating swaps the bounds).
func (a ival) scale(k int64) ival {
	if k == 0 {
		return point(0)
	}
	lo, hi, hasLo, hasHi := a.lo, a.hi, a.hasLo, a.hasHi
	if k < 0 {
		lo, hi, hasLo, hasHi = hi, lo, hasHi, hasLo
	}
	var out ival
	if hasLo {
		out.lo, out.hasLo = satMul(lo, k)
	}
	if hasHi {
		out.hi, out.hasHi = satMul(hi, k)
	}
	return out
}

// neg returns the interval of -x for x in a.
func (a ival) neg() ival { return a.scale(-1) }

func (a ival) contains(v int64) bool {
	if a.hasLo && v < a.lo {
		return false
	}
	if a.hasHi && v > a.hi {
		return false
	}
	return true
}

func (a ival) intersect(b ival) ival {
	out := a
	if b.hasLo && (!out.hasLo || b.lo > out.lo) {
		out.lo, out.hasLo = b.lo, true
	}
	if b.hasHi && (!out.hasHi || b.hi < out.hi) {
		out.hi, out.hasHi = b.hi, true
	}
	return out
}

// empty reports whether the interval contains no integers.
func (a ival) empty() bool { return a.hasLo && a.hasHi && a.lo > a.hi }

// disjoint reports whether two intervals provably share no integer.
func disjoint(a, b ival) bool {
	if a.empty() || b.empty() {
		return true
	}
	if a.hasHi && b.hasLo && a.hi < b.lo {
		return true
	}
	if b.hasHi && a.hasLo && b.hi < a.lo {
		return true
	}
	return false
}

func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) || s > boundCap || s < -boundCap {
		return 0, false
	}
	return s, true
}

func satMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || p > boundCap || p < -boundCap {
		return 0, false
	}
	return p, true
}

// ceilDiv and floorDiv implement exact integer division rounding for
// either operand sign (q > 0 below).
func ceilDiv(a, q int64) int64 {
	if a >= 0 {
		return (a + q - 1) / q
	}
	return -((-a) / q)
}

func floorDiv(a, q int64) int64 {
	if a >= 0 {
		return a / q
	}
	return -((-a + q - 1) / q)
}

// form is a multivariate affine decomposition of an index expression:
//
//	idx = sum(ind[v] * v) + sum(syms[s] * s) + cst
//
// where v ranges over in-scope induction variables and s over other
// scalars. ok=false means the expression is not affine (the dependence
// test then falls back to the conservative Sequential verdict).
type form struct {
	ind  map[string]int64
	syms map[string]int64
	cst  int64
	ok   bool
}

// decompose builds the affine form of e. isInd classifies variable names
// as induction variables of the enclosing nest.
func decompose(e cir.Expr, isInd func(string) bool) form {
	f := form{ind: map[string]int64{}, syms: map[string]int64{}, ok: true}
	f.walk(e, 1, isInd)
	return f
}

func (f *form) walk(e cir.Expr, k int64, isInd func(string) bool) {
	if !f.ok {
		return
	}
	switch e := e.(type) {
	case *cir.IntLit:
		v, ok := satMul(e.Val, k)
		if !ok {
			f.ok = false
			return
		}
		f.cst, ok = satAdd(f.cst, v)
		f.ok = f.ok && ok
	case *cir.VarRef:
		m := f.syms
		if isInd(e.Name) {
			m = f.ind
		}
		c, ok := satAdd(m[e.Name], k)
		if !ok {
			f.ok = false
			return
		}
		m[e.Name] = c
	case *cir.Binary:
		switch e.Op {
		case cir.Add:
			f.walk(e.L, k, isInd)
			f.walk(e.R, k, isInd)
		case cir.Sub:
			f.walk(e.L, k, isInd)
			f.walk(e.R, -k, isInd)
		case cir.Mul:
			if lit, isLit := e.R.(*cir.IntLit); isLit {
				kk, ok := satMul(k, lit.Val)
				if !ok {
					f.ok = false
					return
				}
				f.walk(e.L, kk, isInd)
			} else if lit, isLit := e.L.(*cir.IntLit); isLit {
				kk, ok := satMul(k, lit.Val)
				if !ok {
					f.ok = false
					return
				}
				f.walk(e.R, kk, isInd)
			} else {
				f.ok = false
			}
		case cir.Shl:
			if lit, isLit := e.R.(*cir.IntLit); isLit && lit.Val >= 0 && lit.Val < 40 {
				kk, ok := satMul(k, int64(1)<<uint(lit.Val))
				if !ok {
					f.ok = false
					return
				}
				f.walk(e.L, kk, isInd)
			} else {
				f.ok = false
			}
		default:
			f.ok = false
		}
	case *cir.Cast:
		// Index casts are width adjustments of already-integer values;
		// like the cir affine helper we assume no wraparound (verified
		// separately by the bounds pass).
		f.walk(e.X, k, isInd)
	default:
		f.ok = false
	}
}

// constExpr evaluates an expression built purely from integer literals
// (e.g. the `256 - 1` initializer of the S-W traceback cursor).
func constExpr(e cir.Expr) (int64, bool) {
	switch e := e.(type) {
	case *cir.IntLit:
		return e.Val, true
	case *cir.Unary:
		if e.Op == cir.Neg {
			v, ok := constExpr(e.X)
			return -v, ok
		}
	case *cir.Binary:
		l, okL := constExpr(e.L)
		r, okR := constExpr(e.R)
		if !okL || !okR {
			return 0, false
		}
		switch e.Op {
		case cir.Add:
			return l + r, true
		case cir.Sub:
			return l - r, true
		case cir.Mul:
			return l * r, true
		}
	case *cir.Cast:
		return constExpr(e.X)
	}
	return 0, false
}

// loopRange returns the value interval of a counted loop's induction
// variable ([Lo, Hi-1] for the bounds that are compile-time constants).
func loopRange(l *cir.Loop) ival {
	var out ival
	if lo, ok := l.Lo.(*cir.IntLit); ok {
		out.lo, out.hasLo = lo.Val, true
	}
	if hi, ok := l.Hi.(*cir.IntLit); ok {
		out.hi, out.hasHi = hi.Val-1, true
	}
	return out
}
