package depend

import (
	"fmt"
	"strings"

	"s2fa/internal/cir"
)

// Table renders the per-loop verdicts as a deterministic text table,
// published as a CI artifact next to the DSE trace.
func (a *Analysis) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s: loop dependence verdicts\n", a.Kernel.Name)
	for _, id := range a.Order {
		v := a.Verdicts[id]
		trip := "?"
		if v.Trip > 0 {
			trip = fmt.Sprintf("%d", v.Trip)
		}
		fmt.Fprintf(&b, "  %-4s var=%-8s trip=%-6s %s\n", id, v.Var, trip, v.Describe())
		if v.Pair != nil {
			fmt.Fprintf(&b, "       witness: %s\n", v.Pair)
		}
		if eff := a.EffectiveRace(id); len(eff) < len(v.RaceCarried) {
			exempt := diffStrings(v.RaceCarried, eff)
			fmt.Fprintf(&b, "       reduce-output exemption: %s (per-PE partials, tree-combined)\n",
				strings.Join(exempt, ", "))
		}
	}
	return b.String()
}

// ExplainFactor produces human diagnostics for the requested directives
// on one loop, naming the exact dependent access pair that blocks or
// bounds each factor. Returns nil when nothing is noteworthy.
func (a *Analysis) ExplainFactor(id string, opt cir.LoopOpt) []string {
	v := a.Verdicts[id]
	if v == nil {
		return nil
	}
	var out []string
	if opt.Parallel > 1 {
		if eff := a.EffectiveRace(id); len(eff) > 0 {
			msg := fmt.Sprintf("parallel %d on %s: lanes contend on %s",
				opt.Parallel, id, strings.Join(eff, ", "))
			if v.Pair != nil {
				msg += fmt.Sprintf(" — %s", v.Pair)
			}
			msg += "; lanes serialize, no speedup unless wavefront"
			out = append(out, msg)
		} else if len(v.ScalarSeq) > 0 {
			out = append(out, fmt.Sprintf(
				"parallel %d on %s: scalar recurrence on %s is not in reduction form; lanes serialize",
				opt.Parallel, id, strings.Join(v.ScalarSeq, ", ")))
		}
	}
	if opt.Pipeline == cir.PipeOn {
		switch v.Kind {
		case Sequential:
			msg := fmt.Sprintf("pipeline on %s: dependence structure unprovable (%s); scheduled serially", id, v.Witness)
			if v.Pair != nil {
				msg += fmt.Sprintf(" — %s", v.Pair)
			}
			out = append(out, msg)
		case Pipeline:
			if v.Pair != nil {
				out = append(out, fmt.Sprintf(
					"pipeline on %s: II is bounded by the recurrence %s", id, v.Pair))
			} else if len(v.ScalarSeq) > 0 {
				out = append(out, fmt.Sprintf(
					"pipeline on %s: II is bounded by the scalar recurrence on %s (distance 1)",
					id, strings.Join(v.ScalarSeq, ", ")))
			}
		}
	}
	return out
}

// diffStrings returns members of a not present in b (both sorted-small).
func diffStrings(a, b []string) []string {
	var out []string
	for _, x := range a {
		if !containsStr(b, x) {
			out = append(out, x)
		}
	}
	return out
}
