package depend

import "s2fa/internal/cir"

// This file is the exported face of the affine subscript machinery. The
// dependence pair tests use it internally; the access-pattern analysis
// (internal/access) reuses it for stride classification and footprint
// spans rather than growing a second, subtly different decomposition.

// AffineForm is a multivariate affine decomposition of an index
// expression:
//
//	idx = sum(Ind[v] * v) + sum(Syms[s] * s) + Const
//
// where v ranges over the caller's induction variables and s over other
// scalars. OK=false means the expression is not affine under the
// decomposition rules (saturating arithmetic included), and no field may
// be trusted.
type AffineForm struct {
	Ind   map[string]int64
	Syms  map[string]int64
	Const int64
	OK    bool
}

// DecomposeAffine builds the affine form of an index expression. isInd
// classifies variable names as induction variables of the enclosing
// nest; every other name lands in Syms.
func DecomposeAffine(e cir.Expr, isInd func(string) bool) AffineForm {
	f := decompose(e, isInd)
	return AffineForm{Ind: f.ind, Syms: f.syms, Const: f.cst, OK: f.ok}
}

// ConstExpr evaluates an expression built purely from integer literals
// (e.g. the `256 - 1` initializer of the S-W traceback cursor).
func ConstExpr(e cir.Expr) (int64, bool) { return constExpr(e) }

// LoopVarRange returns the compile-time value range of a counted loop's
// induction variable ([Lo, Hi-1]); ok reports whether both bounds are
// integer literals.
func LoopVarRange(l *cir.Loop) (lo, hi int64, ok bool) {
	r := loopRange(l)
	return r.lo, r.hi, r.hasLo && r.hasHi
}
