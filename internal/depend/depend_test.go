package depend

import (
	"strings"
	"testing"

	"s2fa/internal/cir"
)

func intLit(v int64) *cir.IntLit { return &cir.IntLit{K: cir.Int, Val: v} }
func vref(n string) *cir.VarRef  { return &cir.VarRef{K: cir.Int, Name: n} }
func idx(arr string, e cir.Expr) *cir.Index {
	return &cir.Index{K: cir.Int, Arr: arr, Idx: e}
}
func add(l, r cir.Expr) *cir.Binary { return &cir.Binary{K: cir.Int, Op: cir.Add, L: l, R: r} }
func sub(l, r cir.Expr) *cir.Binary { return &cir.Binary{K: cir.Int, Op: cir.Sub, L: l, R: r} }
func mul(l, r cir.Expr) *cir.Binary { return &cir.Binary{K: cir.Int, Op: cir.Mul, L: l, R: r} }

func loop(id, v string, lo, hi int64, body ...cir.Stmt) *cir.Loop {
	return &cir.Loop{ID: id, Var: v, Lo: intLit(lo), Hi: intLit(hi), Step: 1, Body: body}
}

func kern(body ...cir.Stmt) *cir.Kernel {
	return &cir.Kernel{Name: "T", Body: body}
}

func verdictOf(t *testing.T, k *cir.Kernel, id string) *Verdict {
	t.Helper()
	return verdictWith(t, k, id, Config{})
}

func verdictWith(t *testing.T, k *cir.Kernel, id string, cfg Config) *Verdict {
	t.Helper()
	a := AnalyzeWith(k, cfg)
	v := a.Verdict(id)
	if v == nil {
		t.Fatalf("no verdict for %s", id)
	}
	return v
}

// TestEdgeTable is the stopping-criteria-style matrix over the analysis
// edge cases: each row is one structural corner and its required verdict.
func TestEdgeTable(t *testing.T) {
	t.Run("independent copy is DOALL", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: idx("A", vref("i")), RHS: idx("B", vref("i"))},
		))
		v := verdictOf(t, k, "L0")
		if v.Kind != DOALL || len(v.RaceCarried) != 0 {
			t.Fatalf("want DOALL, got %s (carried %v)", v.Describe(), v.RaceCarried)
		}
	})

	t.Run("stride-2 recurrence has distance 2", func(t *testing.T) {
		k := kern(loop("L0", "i", 2, 128,
			&cir.Assign{LHS: idx("A", vref("i")), RHS: add(idx("A", sub(vref("i"), intLit(2))), intLit(1))},
		))
		v := verdictOf(t, k, "L0")
		if v.Kind != Pipeline || v.MinDist != 2 {
			t.Fatalf("want pipeline distance 2, got %s", v.Describe())
		}
		if len(v.RaceCarried) != 1 || v.RaceCarried[0] != "A" {
			t.Fatalf("carried = %v", v.RaceCarried)
		}
	})

	t.Run("loop-invariant location carries at distance 1", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: idx("A", intLit(5)), RHS: add(idx("A", intLit(5)), idx("B", vref("i")))},
		))
		v := verdictOf(t, k, "L0")
		if v.Kind != Pipeline || v.MinDist != 1 {
			t.Fatalf("want pipeline distance 1, got %s", v.Describe())
		}
	})

	t.Run("zero-trip loop is DOALL", func(t *testing.T) {
		k := kern(loop("L0", "i", 5, 5,
			&cir.Assign{LHS: idx("A", intLit(0)), RHS: add(idx("A", intLit(0)), intLit(1))},
		))
		v := verdictOf(t, k, "L0")
		if v.Kind != DOALL {
			t.Fatalf("zero-trip loop: want DOALL, got %s", v.Describe())
		}
	})

	t.Run("single-trip loop is DOALL", func(t *testing.T) {
		k := kern(loop("L0", "i", 3, 4,
			&cir.Assign{LHS: idx("A", intLit(0)), RHS: add(idx("A", intLit(0)), intLit(1))},
		))
		v := verdictOf(t, k, "L0")
		if v.Kind != DOALL {
			t.Fatalf("single-trip loop: want DOALL, got %s", v.Describe())
		}
	})

	t.Run("non-positive step is conservative Sequential", func(t *testing.T) {
		l := loop("L0", "i", 0, 128,
			&cir.Assign{LHS: idx("A", vref("i")), RHS: idx("A", add(vref("i"), intLit(1)))},
		)
		l.Step = -1
		k := kern(l)
		v := verdictOf(t, k, "L0")
		if v.Kind != Sequential {
			t.Fatalf("negative step: want Sequential, got %s", v.Describe())
		}
		if len(v.RaceCarried) != 1 || v.RaceCarried[0] != "A" {
			t.Fatalf("negative step carried = %v", v.RaceCarried)
		}
	})

	t.Run("non-affine subscript is Sequential", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: idx("A", mul(vref("i"), vref("i"))), RHS: idx("A", vref("i"))},
		))
		v := verdictOf(t, k, "L0")
		if v.Kind != Sequential || !strings.Contains(v.Witness, "non-affine") {
			t.Fatalf("want Sequential(non-affine), got %s", v.Describe())
		}
	})

	t.Run("unbounded scalar subscript is Sequential", func(t *testing.T) {
		k := kern(
			&cir.Decl{Name: "p", K: cir.Int, Init: vref("n")}, // unknown value
			loop("L0", "i", 0, 128,
				&cir.Assign{LHS: idx("A", vref("p")), RHS: add(idx("A", vref("q")), intLit(1))},
			),
		)
		v := verdictOf(t, k, "L0")
		if v.Kind != Sequential {
			t.Fatalf("unbounded scalar: want Sequential, got %s", v.Describe())
		}
	})

	t.Run("aliased params from blaze entry conflict", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: idx("A", vref("i")), RHS: idx("B", vref("i"))},
		))
		v := verdictWith(t, k, "L0", Config{MayAlias: [][]string{{"A", "B"}}})
		if v.Kind != Sequential || !strings.Contains(v.Witness, "alias") {
			t.Fatalf("aliased buffers: want Sequential(alias), got %s", v.Describe())
		}
		// Without the alias config the same kernel is DOALL.
		if v2 := verdictOf(t, k, "L0"); v2.Kind != DOALL {
			t.Fatalf("distinct buffers: want DOALL, got %s", v2.Describe())
		}
	})

	t.Run("iteration-local arrays are exempt", func(t *testing.T) {
		k := kern(loop("L0", "t", 0, 16,
			&cir.ArrDecl{Name: "H", Elem: cir.Int, Len: 64},
			loop("L1", "i", 1, 64,
				&cir.Assign{LHS: idx("H", vref("i")), RHS: idx("H", sub(vref("i"), intLit(1)))},
			),
		))
		a := Analyze(k)
		if v := a.Verdict("L0"); v.Kind != DOALL {
			t.Fatalf("task loop with local array: want DOALL, got %s", v.Describe())
		}
		if v := a.Verdict("L1"); v.Kind != Pipeline || v.MinDist != 1 {
			t.Fatalf("inner loop: want pipeline distance 1, got %s", a.Verdict("L1").Describe())
		}
	})
}

// TestOuterCancellation checks the multivariate side: a row-above read is
// independent at the column loop (distance exceeds the trip count) but
// carried at the row loop.
func TestOuterCancellation(t *testing.T) {
	cell := func(di, dj int64) cir.Expr {
		i, j := cir.Expr(vref("i")), cir.Expr(vref("j"))
		if di != 0 {
			i = sub(vref("i"), intLit(di))
		}
		if dj != 0 {
			j = sub(vref("j"), intLit(dj))
		}
		return add(mul(i, intLit(129)), j)
	}
	k := kern(loop("L1", "i", 1, 129,
		loop("L2", "j", 1, 129,
			&cir.Assign{LHS: idx("H", cell(0, 0)), RHS: idx("H", cell(1, 0))},
		),
	))
	a := Analyze(k)
	if v := a.Verdict("L2"); v.Kind != DOALL {
		t.Fatalf("column loop: row-above read should be independent, got %s", v.Describe())
	}
	if v := a.Verdict("L1"); v.Kind != Pipeline || v.MinDist != 1 {
		t.Fatalf("row loop: want pipeline distance 1, got %s", a.Verdict("L1").Describe())
	}

	// The left-neighbor read flips the result: carried at the column
	// loop with distance 1.
	k2 := kern(loop("L1", "i", 1, 129,
		loop("L2", "j", 1, 129,
			&cir.Assign{LHS: idx("H", cell(0, 0)), RHS: idx("H", cell(0, 1))},
		),
	))
	if v := Analyze(k2).Verdict("L2"); v.Kind != Pipeline || v.MinDist != 1 {
		t.Fatalf("left-neighbor read: want pipeline distance 1, got %s", v.Describe())
	}
}

// TestGuardWindowDisjointness replicates the S-W traceback shape: writes
// at out[t*W + p] with p proven in [0, W-1] by a constant initializer, a
// monotone decrement, and a while-guard conjunct. The task loop is DOALL
// exactly when the window width covers the scalar range.
func TestGuardWindowDisjointness(t *testing.T) {
	build := func(width int64) *cir.Kernel {
		return kern(loop("L0", "t", 0, 16,
			&cir.Decl{Name: "p", K: cir.Int, Init: sub(intLit(256), intLit(1))},
			&cir.While{
				Cond: &cir.Binary{K: cir.Bool, Op: cir.Ge, L: vref("p"), R: intLit(0)},
				Body: cir.Block{
					&cir.Assign{
						LHS: idx("out", add(mul(vref("t"), intLit(width)), vref("p"))),
						RHS: intLit(1),
					},
					&cir.Assign{LHS: vref("p"), RHS: sub(vref("p"), intLit(1))},
				},
			},
		))
	}
	if v := Analyze(build(256)).Verdict("L0"); v.Kind != DOALL {
		t.Fatalf("width 256 covers p in [0,255]: want DOALL, got %s", v.Describe())
	}
	if v := Analyze(build(200)).Verdict("L0"); v.Kind == DOALL {
		t.Fatalf("width 200 overlaps p in [0,255]: DOALL is unsound")
	}
}

// TestGuardKilledByReassignment: a guard constraint must not survive a
// write to the guarded scalar that happens before the access.
func TestGuardKilledByReassignment(t *testing.T) {
	k := kern(loop("L0", "t", 0, 16,
		&cir.Decl{Name: "p", K: cir.Int, Init: sub(intLit(256), intLit(1))},
		&cir.While{
			Cond: &cir.Binary{K: cir.Bool, Op: cir.Ge, L: vref("p"), R: intLit(0)},
			Body: cir.Block{
				// Decrement first: at the write p may be -1, outside the
				// window, so iterations of t can touch a neighbor's slot.
				&cir.Assign{LHS: vref("p"), RHS: sub(vref("p"), intLit(1))},
				&cir.Assign{
					LHS: idx("out", add(mul(vref("t"), intLit(256)), vref("p"))),
					RHS: intLit(1),
				},
			},
		},
	))
	if v := Analyze(k).Verdict("L0"); v.Kind == DOALL {
		t.Fatalf("guard constraint must die after p is reassigned; DOALL is unsound")
	}
}

// TestBreakRefinement covers the structurer's lowering of short-circuit
// while-guards: the real condition lives behind a boolean flag temp and
// an `if (!(flag)) break;`, so the window bound on the traceback cursor
// must be recovered from the flag's set path.
func TestBreakRefinement(t *testing.T) {
	// while (1) { $t1 = 0; if ($t2) { if (p >= 0) { $t1 = 1 } }
	//             if (!($t1)) break;  out[t*W + p] = 1;  p = p - 1 }
	build := func(width int64, mutate func(body cir.Block) cir.Block) *cir.Kernel {
		body := cir.Block{
			&cir.Assign{LHS: vref("$t1"), RHS: intLit(0)},
			&cir.If{
				Cond: vref("$t2"),
				Then: cir.Block{&cir.If{
					Cond: &cir.Binary{K: cir.Bool, Op: cir.Ge, L: vref("p"), R: intLit(0)},
					Then: cir.Block{&cir.Assign{LHS: vref("$t1"), RHS: intLit(1)}},
				}},
			},
			&cir.If{
				Cond: &cir.Unary{Op: cir.Not, X: vref("$t1")},
				Then: cir.Block{&cir.Break{}},
			},
			&cir.Assign{
				LHS: idx("out", add(mul(vref("t"), intLit(width)), vref("p"))),
				RHS: intLit(1),
			},
			&cir.Assign{LHS: vref("p"), RHS: sub(vref("p"), intLit(1))},
		}
		if mutate != nil {
			body = mutate(body)
		}
		return kern(loop("L0", "t", 0, 16,
			&cir.Decl{Name: "p", K: cir.Int, Init: intLit(255)},
			&cir.Decl{Name: "$t1", K: cir.Char},
			&cir.Decl{Name: "$t2", K: cir.Char, Init: intLit(1)},
			&cir.While{Cond: intLit(1), Body: body},
		))
	}

	t.Run("window covered through flag temp is DOALL", func(t *testing.T) {
		if v := Analyze(build(256, nil)).Verdict("L0"); v.Kind != DOALL {
			t.Fatalf("flag-guarded p in [0,255], width 256: want DOALL, got %s", v.Describe())
		}
	})
	t.Run("narrow window still overlaps", func(t *testing.T) {
		if v := Analyze(build(200, nil)).Verdict("L0"); v.Kind == DOALL {
			t.Fatalf("width 200 overlaps p in [0,255]: DOALL is unsound")
		}
	})
	t.Run("second set-site poisons the flag pattern", func(t *testing.T) {
		k := build(256, func(body cir.Block) cir.Block {
			// An unconditional `$t1 = 1` after the guarded one: flag no
			// longer implies p >= 0.
			extra := &cir.Assign{LHS: vref("$t1"), RHS: intLit(1)}
			return append(cir.Block{body[0], body[1], extra}, body[2:]...)
		})
		if v := Analyze(k).Verdict("L0"); v.Kind == DOALL {
			t.Fatalf("poisoned flag pattern must not prove the window")
		}
	})
	t.Run("guard var assigned before check drops the bound", func(t *testing.T) {
		k := build(256, func(body cir.Block) cir.Block {
			// p decremented between the flag set and the break-check: at
			// the write p may be -1.
			dec := &cir.Assign{LHS: vref("p"), RHS: sub(vref("p"), intLit(1))}
			return append(cir.Block{body[0], body[1], dec}, body[2:]...)
		})
		if v := Analyze(k).Verdict("L0"); v.Kind == DOALL {
			t.Fatalf("bound on reassigned guard var must be dropped")
		}
	})
}

func TestScalarClassification(t *testing.T) {
	t.Run("canonical reduction stays DOALL", func(t *testing.T) {
		k := kern(
			&cir.Decl{Name: "s", K: cir.Int},
			loop("L0", "i", 0, 128,
				&cir.Assign{LHS: vref("s"), RHS: add(vref("s"), idx("A", vref("i")))},
			),
		)
		v := verdictOf(t, k, "L0")
		if v.Kind != DOALL || len(v.Reductions) != 1 || v.Reductions[0] != "s" {
			t.Fatalf("want DOALL(reduction s), got %s", v.Describe())
		}
	})

	t.Run("non-reduction recurrence pipelines at distance 1", func(t *testing.T) {
		k := kern(
			&cir.Decl{Name: "s", K: cir.Int},
			loop("L0", "i", 0, 128,
				&cir.Assign{LHS: vref("s"), RHS: add(vref("s"), idx("A", vref("i")))},
				&cir.Assign{LHS: vref("s"), RHS: add(vref("s"), intLit(1))},
			),
		)
		v := verdictOf(t, k, "L0")
		if v.Kind != Pipeline || v.MinDist != 1 || len(v.ScalarSeq) == 0 {
			t.Fatalf("want pipeline(scalar chain), got %s", v.Describe())
		}
	})

	t.Run("conditional overwrite is a select chain", func(t *testing.T) {
		k := kern(
			&cir.Decl{Name: "m", K: cir.Int},
			loop("L0", "i", 0, 128,
				&cir.If{
					Cond: &cir.Binary{K: cir.Bool, Op: cir.Gt, L: idx("A", vref("i")), R: vref("m")},
					Then: cir.Block{&cir.Assign{LHS: vref("m"), RHS: idx("A", vref("i"))}},
				},
			),
		)
		v := verdictOf(t, k, "L0")
		if v.Kind != DOALL || len(v.SelectChains) != 1 || v.SelectChains[0] != "m" {
			t.Fatalf("want DOALL(select-chain m), got %s", v.Describe())
		}
	})
}

func TestReduceOutputExemption(t *testing.T) {
	k := &cir.Kernel{
		Name:       "R",
		Pattern:    cir.PatternReduce,
		TaskLoopID: "L0",
		Params:     []cir.Param{{Name: "out", Elem: cir.Int, IsArray: true, IsOutput: true}},
		Body: cir.Block{loop("L0", "t", 0, 16,
			loop("L1", "j", 0, 8,
				&cir.Assign{LHS: idx("out", vref("j")), RHS: add(idx("out", vref("j")), idx("g", vref("j")))},
			),
		)},
	}
	a := Analyze(k)
	v := a.Verdict("L0")
	if v.Kind != Pipeline || len(v.RaceCarried) != 1 || v.RaceCarried[0] != "out" {
		t.Fatalf("task loop: want pipeline carried[out], got %s", v.Describe())
	}
	if eff := a.EffectiveRace("L0"); len(eff) != 0 {
		t.Fatalf("reduce-output exemption failed: %v", eff)
	}
	if a.Serializing("L1") {
		t.Fatalf("inner combine loop writes out[j] reading out[j]: same iteration only; should NOT serialize")
	}
}

func TestTableRendering(t *testing.T) {
	k := kern(loop("L0", "i", 2, 128,
		&cir.Assign{
			LHS: &cir.Index{K: cir.Int, Arr: "A", Idx: vref("i"), Pos: cir.Pos{Line: 7, Col: 3}},
			RHS: add(&cir.Index{K: cir.Int, Arr: "A", Idx: sub(vref("i"), intLit(2)), Pos: cir.Pos{Line: 7, Col: 12}}, intLit(1)),
		},
	))
	tab := Analyze(k).Table()
	for _, want := range []string{"L0", "distance 2", "@7:3", "@7:12", "A[(i - 2)]"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}
