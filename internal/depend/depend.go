// Package depend implements exact loop-carried dependence and alias
// analysis over the HLS-C IR (internal/cir).
//
// Where cir's per-loop carried-array heuristic decomposes subscripts in a
// single induction variable and compares symbolic remainders textually,
// this package builds full multivariate affine forms over the enclosing
// loop nest, bounds the non-affine remainder with a scalar value-range
// analysis (constant initializers, monotone updates, and guard conjuncts
// from enclosing if/while conditions), and runs GCD/Banerjee-style
// interval tests per access pair. The result is a structured per-loop
// Verdict — DOALL, pipeline with a proven minimum dependence distance, or
// sequential with a witness — each carrying kdsl source positions so the
// toolchain can name the exact access pair that blocks a directive.
//
// The analysis is deliberately one-sided: it may conservatively report a
// dependence that does not exist, but it must never classify an observed
// loop-carried conflict as independent. That contract is enforced
// differentially by a jvmsim trace property test over all workloads
// (internal/apps).
package depend

import (
	"fmt"
	"sort"
	"strings"

	"s2fa/internal/cir"
)

// Kind classifies a loop's cross-iteration behavior.
type Kind uint8

// Loop dependence verdict kinds.
const (
	// DOALL: no loop-carried dependence; iterations are independent.
	DOALL Kind = iota
	// Pipeline: iterations overlap subject to a proven minimum
	// dependence distance (Verdict.MinDist).
	Pipeline
	// Sequential: the analysis could not bound the dependence structure
	// (non-affine subscript, unbounded scalar, may-aliased buffers);
	// iterations must be assumed fully serial.
	Sequential
)

func (k Kind) String() string {
	switch k {
	case DOALL:
		return "DOALL"
	case Pipeline:
		return "pipeline"
	case Sequential:
		return "sequential"
	}
	return "?"
}

// Config tunes the analysis. The zero value assumes distinctly named
// buffers never alias, which holds for kernels produced by the
// bytecode-to-C compiler (every parameter is a separate blaze buffer).
type Config struct {
	// MayAlias lists groups of array names that may refer to overlapping
	// storage (e.g. a blaze entry point invoked with the same buffer
	// bound to two parameters). Accesses to different members of a group
	// are treated as conflicting with unknown distance.
	MayAlias [][]string
}

// AccessRef identifies one array access, with its kdsl source position
// when the bytecode line-number table provided one.
type AccessRef struct {
	Arr   string
	Index string // rendered subscript expression
	Pos   cir.Pos
	Write bool
}

func (a AccessRef) String() string {
	s := a.Arr + "[" + a.Index + "]"
	if a.Pos.Valid() {
		s += " @" + a.Pos.String()
	}
	return s
}

// Pair is one dependent access pair witnessing a verdict.
type Pair struct {
	A, B   AccessRef // A is a write; B is the conflicting access
	Output bool      // write-write (output) dependence
	Dist   int64     // minimum dependence distance in loop iterations
	Proven bool      // false when the analysis fell back to "unknown"
	Why    string    // reason the pair could not be proven (Proven=false)
}

func (p *Pair) String() string {
	kind := "flow"
	if p.Output {
		kind = "output"
	}
	s := fmt.Sprintf("%s %s -> %s", kind, p.A, p.B)
	if p.Proven {
		s += fmt.Sprintf(", distance %d", p.Dist)
	} else {
		s += " (" + p.Why + ")"
	}
	return s
}

// Verdict is the structured dependence result for one loop.
type Verdict struct {
	LoopID string
	Var    string
	Trip   int64 // constant trip count, 0 if unknown

	Kind    Kind
	MinDist int64  // minimum carried distance (valid for Kind==Pipeline)
	Pair    *Pair  // witness access pair, nil for DOALL
	Witness string // human rationale for Sequential

	// RaceCarried lists arrays with a carried (or unprovable) dependence
	// involving at least one read — the set parallel lanes would race on.
	RaceCarried []string
	// OutputCarried lists arrays with carried write-write conflicts only.
	OutputCarried []string
	// ArrDist maps each carried array to its minimum proven dependence
	// distance (1 for unproven pairs, the sound minimum claim).
	ArrDist map[string]int64

	// ScalarRec mirrors cir's detected scalar recurrences; ScalarSeq is
	// the subset not covered by the canonical reduction form (the part
	// that truly serializes lanes); Reductions names tree-reducible
	// accumulators; SelectChains names conditional-overwrite scalars
	// (argmax/argmin style) that hardware resolves with select logic.
	ScalarRec    []string
	ScalarSeq    []string
	Reductions   []string
	SelectChains []string
}

// Describe renders the verdict headline.
func (v *Verdict) Describe() string {
	switch v.Kind {
	case DOALL:
		s := "DOALL"
		if len(v.Reductions) > 0 {
			s += " (reduction: " + strings.Join(v.Reductions, ", ") + ")"
		}
		if len(v.SelectChains) > 0 {
			s += " (select-chain: " + strings.Join(v.SelectChains, ", ") + ")"
		}
		return s
	case Pipeline:
		var carried []string
		carried = append(carried, v.RaceCarried...)
		for _, a := range v.OutputCarried {
			if !containsStr(carried, a) {
				carried = append(carried, a)
			}
		}
		sort.Strings(carried)
		s := fmt.Sprintf("pipeline min-II distance %d", v.MinDist)
		if len(carried) > 0 {
			s += " (carried: " + strings.Join(carried, ", ") + ")"
		}
		if len(v.ScalarSeq) > 0 {
			s += " (scalar chain: " + strings.Join(v.ScalarSeq, ", ") + ")"
		}
		return s
	case Sequential:
		return "sequential: " + v.Witness
	}
	return "?"
}

// Analysis holds per-loop verdicts for one kernel.
type Analysis struct {
	Kernel   *cir.Kernel
	Info     *cir.KernelInfo
	Verdicts map[string]*Verdict
	Order    []string // loop IDs in preorder

	cfg   Config
	w     *walker
	class map[string]string // array name -> alias class
}

// Analyze runs the dependence analysis with the default configuration.
func Analyze(k *cir.Kernel) *Analysis { return AnalyzeWith(k, Config{}) }

// AnalyzeWith runs the dependence analysis with an explicit configuration.
func AnalyzeWith(k *cir.Kernel, cfg Config) *Analysis {
	an := &Analysis{
		Kernel:   k,
		Info:     cir.Analyze(k),
		Verdicts: map[string]*Verdict{},
		cfg:      cfg,
		class:    map[string]string{},
	}
	for i, group := range cfg.MayAlias {
		for _, name := range group {
			an.class[name] = fmt.Sprintf("alias-group-%d", i)
		}
	}
	an.w = newWalker()
	an.w.collectFacts(k.Body)
	an.w.walkBlock(k.Body)
	for _, li := range an.Info.All {
		n := an.w.nodes[li.Loop.ID]
		if n == nil {
			continue
		}
		an.Order = append(an.Order, li.Loop.ID)
		an.Verdicts[li.Loop.ID] = an.verdictFor(n, li)
	}
	return an
}

// Verdict returns the verdict for a loop ID, or nil.
func (a *Analysis) Verdict(id string) *Verdict { return a.Verdicts[id] }

// EffectiveRace returns the arrays whose carried dependences survive the
// reduce-output exemption: output accumulators of reduce-pattern kernels
// at the task loop become per-PE partials combined by a final tree, so
// parallel lanes never race on them. This mirrors the HLS estimator's
// serialization rule exactly.
func (a *Analysis) EffectiveRace(id string) []string {
	v := a.Verdicts[id]
	if v == nil {
		return nil
	}
	carried := v.RaceCarried
	if id == a.Kernel.TaskLoopID && a.Kernel.Pattern == cir.PatternReduce {
		isOutput := map[string]bool{}
		for _, p := range a.Kernel.Params {
			if p.IsOutput {
				isOutput[p.Name] = true
			}
		}
		var kept []string
		for _, arr := range carried {
			if !isOutput[arr] {
				kept = append(kept, arr)
			}
		}
		carried = kept
	}
	return carried
}

// Serializing reports whether parallel lanes of the loop provably
// contend on shared arrays after the reduce-output exemption — the
// condition under which the HLS estimator serializes the lanes.
func (a *Analysis) Serializing(id string) bool { return len(a.EffectiveRace(id)) > 0 }

// classOf maps an array name to its alias class (its own name unless
// grouped by Config.MayAlias).
func (a *Analysis) classOf(arr string) string {
	if c, ok := a.class[arr]; ok {
		return c
	}
	return arr
}

type pairClass uint8

const (
	classIndependent pairClass = iota
	classCarried
	classUnproven
)

func (an *Analysis) verdictFor(n *loopNode, li *cir.LoopInfo) *Verdict {
	v := &Verdict{
		LoopID:  n.loop.ID,
		Var:     n.loop.Var,
		Trip:    li.Trip,
		ArrDist: map[string]int64{},
	}
	v.ScalarRec = append([]string(nil), li.ScalarRec...)
	if len(li.ScalarRec) > 0 {
		if acc, _, ok := ReductionForm(n.loop); ok && len(li.ScalarRec) == 1 && li.ScalarRec[0] == acc {
			v.Reductions = []string{acc}
		} else {
			v.ScalarSeq = append([]string(nil), li.ScalarRec...)
		}
	}
	v.SelectChains = selectChains(n.loop, li)

	if n.loop.Step <= 0 {
		v.Kind = Sequential
		v.Witness = "non-positive loop step"
		// Every pair is unprovable under a non-canonical step: flag all
		// shared arrays with both a write and another access.
		v.RaceCarried, v.OutputCarried = conservativeCarried(n)
		for _, arr := range v.RaceCarried {
			v.ArrDist[arr] = 1
		}
		for _, arr := range v.OutputCarried {
			if _, ok := v.ArrDist[arr]; !ok {
				v.ArrDist[arr] = 1
			}
		}
		return v
	}

	raceSet := map[string]bool{}
	outSet := map[string]bool{}
	var witness *Pair   // minimum-distance carried witness
	var unproven *Pair  // first unprovable pair
	minDist := int64(0) // over carried pairs (0 = none yet)

	accs := n.accs
	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			a, b := accs[i], accs[j]
			if !a.write && !b.write {
				continue
			}
			if i == j && !a.write {
				continue
			}
			if an.classOf(a.arr) != an.classOf(b.arr) {
				continue
			}
			if a.arr == b.arr && n.localArrs[a.arr] {
				// Declared inside the loop body: iteration-local storage.
				continue
			}
			cls, dist, why := an.testPair(n, a, b)
			if cls == classIndependent {
				continue
			}
			// Orient the pair write-first.
			wAcc, oAcc := a, b
			if !wAcc.write {
				wAcc, oAcc = b, a
			}
			p := &Pair{
				A:      accessRef(wAcc),
				B:      accessRef(oAcc),
				Output: a.write && b.write,
				Dist:   dist,
				Proven: cls == classCarried,
				Why:    why,
			}
			if p.Output {
				outSet[a.arr], outSet[b.arr] = true, true
			} else {
				raceSet[a.arr], raceSet[b.arr] = true, true
			}
			for _, arr := range []string{a.arr, b.arr} {
				if d, ok := v.ArrDist[arr]; !ok || dist < d {
					v.ArrDist[arr] = dist
				}
			}
			if cls == classUnproven {
				if unproven == nil {
					unproven = p
				}
				continue
			}
			if !p.Output && (witness == nil || dist < witness.Dist) {
				witness = p
			}
			if minDist == 0 || dist < minDist {
				minDist = dist
			}
		}
	}

	v.RaceCarried = sortedKeys(raceSet)
	//determinism:allow order-independent: per-key deletes, no cross-key effect
	for arr := range outSet {
		if raceSet[arr] {
			delete(outSet, arr)
		}
	}
	v.OutputCarried = sortedKeys(outSet)

	switch {
	case unproven != nil:
		v.Kind = Sequential
		v.Witness = unproven.Why
		v.Pair = unproven
	case witness != nil || minDist > 0 || len(v.ScalarSeq) > 0:
		v.Kind = Pipeline
		v.MinDist = minDist
		if len(v.ScalarSeq) > 0 && (v.MinDist == 0 || v.MinDist > 1) {
			// A non-reduction scalar recurrence is a distance-1 chain.
			v.MinDist = 1
		}
		v.Pair = witness
	default:
		v.Kind = DOALL
	}
	return v
}

// conservativeCarried lists, for a loop the analysis refuses to reason
// about, every non-local array with a write plus another access.
func conservativeCarried(n *loopNode) (race, output []string) {
	reads := map[string]bool{}
	writes := map[string]int{}
	for _, a := range n.accs {
		if a.write {
			writes[a.arr]++
		} else {
			reads[a.arr] = true
		}
	}
	raceSet := map[string]bool{}
	outSet := map[string]bool{}
	//determinism:allow order-independent: commutative set inserts on distinct keys
	for arr, wn := range writes {
		if n.localArrs[arr] {
			continue
		}
		if reads[arr] {
			raceSet[arr] = true
		} else if wn > 0 {
			outSet[arr] = true
		}
	}
	return sortedKeys(raceSet), sortedKeys(outSet)
}

func accessRef(a *access) AccessRef {
	return AccessRef{Arr: a.arr, Index: cir.ExprString(a.idx), Pos: a.pos, Write: a.write}
}

// testPair classifies the dependence between two accesses across
// iterations of loop n. Returns the class, the minimum distance (valid
// for classCarried), and a reason string for classUnproven.
func (an *Analysis) testPair(n *loopNode, a, b *access) (pairClass, int64, string) {
	if a.arr != b.arr {
		return classUnproven, 1, fmt.Sprintf("buffers %s and %s may alias", a.arr, b.arr)
	}
	if chainHasDupVars(a.chain) || chainHasDupVars(b.chain) {
		return classUnproven, 1, "shadowed induction variable in loop nest"
	}
	fa := decompose(a.idx, chainVarSet(a.chain))
	fb := decompose(b.idx, chainVarSet(b.chain))
	if !fa.ok || !fb.ok {
		return classUnproven, 1, fmt.Sprintf("non-affine subscript on %s", a.arr)
	}

	posL := chainIndex(a.chain, n)
	trip, tripKnown := tripOf(n.loop)

	// Accumulate every non-L term of (idx_a - idx_b) into the interval T.
	T := point(0)
	var cA, cB int64
	unboundedSym := ""
	for _, vn := range sortedUnion(fa.ind, fb.ind) {
		ca, cb := fa.ind[vn], fb.ind[vn]
		if vn == n.loop.Var {
			cA, cB = ca, cb
			continue
		}
		na := chainNodeFor(a.chain, vn)
		nb := chainNodeFor(b.chain, vn)
		nd := na
		if nd == nil {
			nd = nb
		}
		if pos := chainIndex(a.chain, nd); nd != nil && pos >= 0 && pos < posL {
			// Outer loop variable: fixed across the L-carried pair.
			if ca == cb {
				continue
			}
			T = T.add(nd.vrange.scale(ca - cb))
			continue
		}
		// Inner loop variable: independent instances on each side.
		if ca != 0 && na != nil {
			T = T.add(na.vrange.scale(ca))
		}
		if cb != 0 && nb != nil {
			T = T.add(nb.vrange.scale(-cb))
		}
	}
	for _, s := range sortedUnion(fa.syms, fb.syms) {
		ca, cb := fa.syms[s], fb.syms[s]
		if ca == cb && !n.assigned[s] {
			// Loop-invariant scalar with equal coefficients cancels.
			continue
		}
		ra := an.w.boundsAt(a, s)
		rb := an.w.boundsAt(b, s)
		if ca != 0 {
			if !ra.hasLo && !ra.hasHi {
				unboundedSym = s
			}
			T = T.add(ra.scale(ca))
		}
		if cb != 0 {
			if !rb.hasLo && !rb.hasHi {
				unboundedSym = s
			}
			T = T.add(rb.scale(-cb))
		}
	}
	cst, ok := satAdd(fa.cst, -fb.cst)
	if !ok {
		return classUnproven, 1, "subscript constant overflow"
	}
	T = T.add(point(cst))

	step := n.loop.Step
	if cA == cB {
		if cA == 0 {
			if tripKnown && trip <= 1 {
				return classIndependent, 0, ""
			}
			if T.contains(0) {
				if unboundedSym != "" && (!T.hasLo || !T.hasHi) {
					return classUnproven, 1, fmt.Sprintf("unbounded scalar %s in subscript", unboundedSym)
				}
				return classCarried, 1, ""
			}
			return classIndependent, 0, ""
		}
		u, uok := satMul(cA, step)
		if !uok {
			return classUnproven, 1, "subscript coefficient overflow"
		}
		neg := T.neg()
		maxK := int64(0)
		if tripKnown {
			maxK = trip - 1
		}
		best := int64(0)
		for _, w := range []int64{u, -u} {
			if k, found := minKIn(w, neg, maxK, tripKnown); found && (best == 0 || k < best) {
				best = k
			}
		}
		if best == 0 {
			return classIndependent, 0, ""
		}
		return classCarried, best, ""
	}

	// Mismatched coefficients of the loop variable: fall back to range
	// disjointness of the whole subscripts, then a GCD feasibility test.
	if tripKnown && trip <= 1 {
		return classIndependent, 0, ""
	}
	if disjoint(an.formRange(fa, a), an.formRange(fb, b)) {
		return classIndependent, 0, ""
	}
	if T.hasLo && T.hasHi && T.lo == T.hi {
		if lo, isLit := n.loop.Lo.(*cir.IntLit); isLit {
			k := -T.lo - (cA-cB)*lo.Val
			g := gcd(absI64(cA)*step, absI64(cB)*step)
			if g > 0 && k%g != 0 {
				return classIndependent, 0, ""
			}
		}
	}
	return classCarried, 1, ""
}

// minKIn finds the smallest k >= 1 (and <= maxK when maxKnown) such that
// w*k lies in the interval r; found=false when no such k exists.
func minKIn(w int64, r ival, maxK int64, maxKnown bool) (int64, bool) {
	if w == 0 {
		return 0, false
	}
	if w < 0 {
		w, r = -w, r.neg()
	}
	kLo := int64(1)
	if r.hasLo {
		if c := ceilDiv(r.lo, w); c > kLo {
			kLo = c
		}
	}
	kHi := int64(1) << 62
	if maxKnown && maxK < kHi {
		kHi = maxK
	}
	if r.hasHi {
		if c := floorDiv(r.hi, w); c < kHi {
			kHi = c
		}
	}
	if kLo > kHi {
		return 0, false
	}
	return kLo, true
}

// formRange bounds the whole subscript value of one access.
func (an *Analysis) formRange(f form, a *access) ival {
	r := point(f.cst)
	for _, vn := range sortedKeysI64(f.ind) {
		nd := chainNodeFor(a.chain, vn)
		if nd == nil {
			r = r.add(ival{}.scale(f.ind[vn]))
			continue
		}
		r = r.add(nd.vrange.scale(f.ind[vn]))
	}
	for _, s := range sortedKeysI64(f.syms) {
		r = r.add(an.w.boundsAt(a, s).scale(f.syms[s]))
	}
	return r
}

func tripOf(l *cir.Loop) (int64, bool) {
	lo, okLo := l.Lo.(*cir.IntLit)
	hi, okHi := l.Hi.(*cir.IntLit)
	if !okLo || !okHi || l.Step <= 0 {
		return 0, false
	}
	n := hi.Val - lo.Val
	if n <= 0 {
		return 0, true
	}
	return (n + l.Step - 1) / l.Step, true
}

// selectChains finds conditional-overwrite scalars (argmax/argmin style):
// declared outside the loop, written only under conditions, and not
// already classified as scalar recurrences.
func selectChains(l *cir.Loop, li *cir.LoopInfo) []string {
	declared := map[string]bool{}
	collectDeclared(l.Body, declared)
	isRec := map[string]bool{}
	for _, r := range li.ScalarRec {
		isRec[r] = true
	}
	cond := map[string]bool{}
	uncond := map[string]bool{}
	var walk func(b cir.Block, depth int)
	walk = func(b cir.Block, depth int) {
		for _, s := range b {
			switch s := s.(type) {
			case *cir.Assign:
				if vr, ok := s.LHS.(*cir.VarRef); ok && !declared[vr.Name] && !isRec[vr.Name] {
					if depth > 0 {
						cond[vr.Name] = true
					} else {
						uncond[vr.Name] = true
					}
				}
			case *cir.If:
				walk(s.Then, depth+1)
				walk(s.Else, depth+1)
			case *cir.Loop:
				walk(s.Body, depth)
			case *cir.While:
				walk(s.Body, depth)
			}
		}
	}
	walk(l.Body, 0)
	var out []string
	//determinism:allow collect-then-sort: the slice is sorted before returning
	for v := range cond {
		if !uncond[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func collectDeclared(b cir.Block, out map[string]bool) {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Decl:
			out[s.Name] = true
		case *cir.ArrDecl:
			out[s.Name] = true
		case *cir.If:
			collectDeclared(s.Then, out)
			collectDeclared(s.Else, out)
		case *cir.Loop:
			out[s.Var] = true
			collectDeclared(s.Body, out)
		case *cir.While:
			collectDeclared(s.Body, out)
		}
	}
}

// chain helpers

func chainVarSet(chain []*loopNode) func(string) bool {
	set := map[string]bool{}
	for _, n := range chain {
		set[n.loop.Var] = true
	}
	return func(name string) bool { return set[name] }
}

func chainHasDupVars(chain []*loopNode) bool {
	seen := map[string]bool{}
	for _, n := range chain {
		if seen[n.loop.Var] {
			return true
		}
		seen[n.loop.Var] = true
	}
	return false
}

func chainNodeFor(chain []*loopNode, varName string) *loopNode {
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].loop.Var == varName {
			return chain[i]
		}
	}
	return nil
}

func chainIndex(chain []*loopNode, n *loopNode) int {
	for i, c := range chain {
		if c == n {
			return i
		}
	}
	return -1
}

// small helpers

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	//determinism:allow collect-then-sort: keys are ordered before use
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysI64(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	//determinism:allow collect-then-sort: keys are ordered before use
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedUnion(a, b map[string]int64) []string {
	set := map[string]bool{}
	//determinism:allow order-independent: commutative set inserts, sorted by the caller
	for k := range a {
		set[k] = true
	}
	//determinism:allow order-independent: commutative set inserts, sorted by the caller
	for k := range b {
		set[k] = true
	}
	return sortedKeys(set)
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return absI64(a)
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
