package apps

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"s2fa/internal/dse"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/space"
)

// outcomeFingerprint serializes every Outcome field of the determinism
// contract into one string, so "byte-identical" is checked literally:
// two engines agree iff their fingerprints are equal byte for byte.
func outcomeFingerprint(o *dse.Outcome) string {
	s := fmt.Sprintf("kernel=%s evals=%d stop=%s total=%b first=%x@%x best=%s/%b prune=%d/%d collapse=%d/%d parts=%d\n",
		o.KernelName, o.Evaluations, o.StopReason,
		math.Float64bits(o.TotalMinutes),
		math.Float64bits(o.FirstFeasible), math.Float64bits(o.FirstFeasibleMinutes),
		o.Best.Point.Key(), math.Float64bits(o.Best.Objective),
		o.StaticallyPruned, o.PrunedDomainValues,
		o.RangeCollapsed, o.RangeRestrictedValues,
		len(o.Partitions))
	for _, p := range o.Trajectory {
		s += fmt.Sprintf("  %b %b\n", math.Float64bits(p.Minutes), math.Float64bits(p.Objective))
	}
	return s
}

// TestDSECrossEngineDeterminism is the cross-engine determinism property
// over the full workload suite: for every app and seed, the parallel
// engine must produce a byte-identical Outcome to the sequential
// reference at every pool size and GOMAXPROCS setting. This is the
// acceptance property of the concurrent DSE engine — the trajectory,
// incumbent sequence, entropy stops, and all counters may not move by
// one bit whatever the hardware parallelism.
func TestDSECrossEngineDeterminism(t *testing.T) {
	dev := fpga.VU9P()
	appNames := Names()
	seeds := []int64{1, 42, 7}
	pools := []int{1, 4, 16}
	if testing.Short() {
		appNames = []string{"S-W", "KMeans"}
		seeds = []int64{1}
		pools = []int{4}
	}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	for _, name := range appNames {
		a := Get(name)
		k, err := a.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range seeds {
			spSeq := space.Identify(k)
			cfg := dse.S2FAConfig(seed)
			cfg.Device = dev
			ref := outcomeFingerprint(dse.Run(k, spSeq,
				dse.NewEvaluator(k, spSeq, dev, int64(a.Tasks), hls.Options{}), cfg))
			for _, pool := range pools {
				t.Run(fmt.Sprintf("%s/seed%d/par%d", name, seed, pool), func(t *testing.T) {
					runtime.GOMAXPROCS(pool)
					sp := space.Identify(k)
					pcfg := cfg
					pcfg.Engine = dse.EngineParallel
					pcfg.Parallelism = pool
					got := outcomeFingerprint(dse.Run(k, sp,
						dse.NewPureEvaluator(k, sp, dev, int64(a.Tasks), hls.Options{}), pcfg))
					if got != ref {
						t.Errorf("parallel outcome diverged from sequential reference:\n--- sequential\n%s--- parallel\n%s", ref, got)
					}
				})
			}
		}
	}
}
