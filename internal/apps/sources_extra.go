package apps

import "fmt"

// Dimensions of the four extended workloads (beyond Table 2): a 2-D
// convolution stencil, a histogram, a top-k selection, and a naive
// string search. They exercise the access shapes the paper's eight
// kernels under-cover: shifted-window bursts, data-dependent scatters,
// select-chains over a register file, and short inner compare loops.
const (
	// ConvN x ConvN input image, ConvK x ConvK filter, valid padding.
	ConvN   = 12
	ConvK   = 3
	ConvOut = ConvN - ConvK + 1
	// HistN samples scattered into HistB (power-of-two) bins.
	HistN = 64
	HistB = 32
	// TKN values, the TKK largest kept in descending order.
	TKN = 64
	TKK = 4
	// SSN text characters scanned for an SSM-character pattern.
	SSN = 128
	SSM = 4
)

// Extended-workload model constants, shared between the DSL sources and
// the Go references exactly like KMeansCenters and friends.
var (
	ConvFilter = genFloats(ConvK*ConvK, 53, -1, 1)
	// SSPattern holds the search pattern's character codes (over the
	// ACGT alphabet, like the S-W inputs).
	SSPattern = func() []int {
		idx := genInts(SSM, 61, 0, 4)
		out := make([]int, SSM)
		for i, v := range idx {
			out[i] = int("ACGT"[v])
		}
		return out
	}()
)

// convSource is a 2-D valid-padding convolution: a perfect output nest
// around a perfect filter nest, all bursts with shifted windows.
func convSource() string {
	return fmt.Sprintf(`
class Conv extends Accelerator[Array[Double], Array[Double]] {
  val id: String = "Conv_kernel"
  val inSizes: Array[Int] = Array(%d)
  val filter: Array[Double] = Array(%s)
  def call(in: Array[Double]): Array[Double] = {
    var out: Array[Double] = new Array[Double](%d)
    for (r <- 0 until %d) {
      for (c <- 0 until %d) {
        var acc: Double = 0.0
        for (kr <- 0 until %d) {
          for (kc <- 0 until %d) {
            acc = acc + in((r + kr) * %d + (c + kc)) * filter(kr * %d + kc)
          }
        }
        out(r * %d + c) = acc
      }
    }
    out
  }
}
`, ConvN*ConvN, floatLits(ConvFilter), ConvOut*ConvOut,
		ConvOut, ConvOut, ConvK, ConvK, ConvN, ConvK, ConvOut)
}

// histSource scatters samples into power-of-two bins: the canonical
// data-dependent write with a loop-carried dependence through memory.
// The scatter stages through a local (BRAM-sized) array and the result
// is written out with a trailing burst — the shape a DDR-resident
// scatter must take to be offloadable at all.
func histSource() string {
	return fmt.Sprintf(`
class Hist extends Accelerator[Array[Int], Array[Int]] {
  val id: String = "Hist_kernel"
  val inSizes: Array[Int] = Array(%d)
  def call(in: Array[Int]): Array[Int] = {
    var tmp: Array[Int] = new Array[Int](%d)
    for (z <- 0 until %d) {
      tmp(z) = 0
    }
    for (i <- 0 until %d) {
      val b: Int = (in(i) & %d)
      tmp(b) = tmp(b) + 1
    }
    var bins: Array[Int] = new Array[Int](%d)
    for (w <- 0 until %d) {
      bins(w) = tmp(w)
    }
    bins
  }
}
`, HistN, HistB, HistB, HistN, HistB-1, HistB, HistB)
}

// topkSource keeps the TKK largest values in a register-file-sized
// array via an insertion bubble — a pure select-chain datapath.
func topkSource() string {
	return fmt.Sprintf(`
class TopK extends Accelerator[Array[Double], Array[Double]] {
  val id: String = "TopK_kernel"
  val inSizes: Array[Int] = Array(%d)
  def call(in: Array[Double]): Array[Double] = {
    var best: Array[Double] = new Array[Double](%d)
    for (j <- 0 until %d) {
      best(j) = -1.0e30
    }
    for (i <- 0 until %d) {
      var x: Double = in(i)
      for (j <- 0 until %d) {
        if (x > best(j)) {
          val tmp: Double = best(j)
          best(j) = x
          x = tmp
        }
      }
    }
    best
  }
}
`, TKN, TKK, TKK, TKN, TKK)
}

// strSearchSource counts pattern occurrences with a naive scan: a short
// inner compare loop under a long outer burst.
func strSearchSource() string {
	return fmt.Sprintf(`
class StrSearch extends Accelerator[Array[Char], Int] {
  val id: String = "StrSearch_kernel"
  val inSizes: Array[Int] = Array(%d)
  val pat: Array[Int] = Array(%s)
  def call(in: Array[Char]): Int = {
    var count: Int = 0
    for (i <- 0 until %d) {
      var ok: Int = 1
      for (j <- 0 until %d) {
        if (in(i + j) != pat(j)) {
          ok = 0
        }
      }
      count = count + ok
    }
    count
  }
}
`, SSN, intLits(SSPattern), SSN-SSM+1, SSM)
}
