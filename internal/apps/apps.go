// Package apps defines the paper's evaluation workloads (§5.1, Table 2):
// PageRank, K-Means, K-Nearest-Neighbor, Logistic Regression, SVM, Least
// Linear Square, AES, and Smith-Waterman — plus four extended workloads
// (Conv, Hist, TopK, StrSearch) covering access shapes the Table 2 set
// under-exercises. Each workload carries its kernel source in the
// Scala-subset DSL, a deterministic input generator, a plain-Go
// reference implementation (reference.go, reference_extra.go), and the
// expert "manual design" configuration Fig. 4 compares against.
package apps

import (
	"fmt"
	"math/rand"
	"sync"

	"s2fa/internal/b2c"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/jvmsim"
	"s2fa/internal/kdsl"
)

// ManualDesign is the expert-written HLS configuration: the directive
// heuristics a hardware engineer would apply by hand, expressed against
// the same transformation library. StageSplit marks datapaths whose long
// operation chains were manually pipelined into stages (the LR manual
// design of §5.2).
type ManualDesign struct {
	TaskParallel  int
	TaskPipeline  cir.PipelineMode
	MidPipeline   bool // pipeline intermediate (non-task, non-leaf) loops
	MidParallel   int  // unroll intermediate loops
	InnerPipeline bool // pipeline innermost loops
	InnerParallel int  // unroll innermost loops
	FlattenDepth1 bool // flatten depth-1 loops (fully unroll their bodies)
	BitWidth      int
	StageSplit    bool
}

// Directives materializes the manual design against a concrete kernel.
func (m ManualDesign) Directives(k *cir.Kernel) (loops map[string]cir.LoopOpt, bw map[string]int) {
	loops = map[string]cir.LoopOpt{}
	bw = map[string]int{}
	info := cir.Analyze(k)
	for _, li := range info.All {
		var opt cir.LoopOpt
		switch {
		case li.Loop.ID == k.TaskLoopID:
			opt.Parallel = m.TaskParallel
			opt.Pipeline = m.TaskPipeline
		case m.FlattenDepth1 && li.Depth == 1:
			opt.Pipeline = cir.PipeFlatten
		case len(li.Children) > 0 && m.MidPipeline:
			opt.Pipeline = cir.PipeOn
			if m.MidParallel > 1 {
				p := m.MidParallel
				if li.Trip > 0 && int64(p) > li.Trip {
					p = int(li.Trip)
				}
				opt.Parallel = p
			}
		case len(li.Children) == 0 && m.InnerPipeline:
			opt.Pipeline = cir.PipeOn
			if m.InnerParallel > 1 {
				p := m.InnerParallel
				if li.Trip > 0 && int64(p) > li.Trip {
					p = int(li.Trip)
				}
				opt.Parallel = p
			}
		}
		loops[li.Loop.ID] = opt
	}
	if m.BitWidth != 0 {
		for _, p := range k.Params {
			if p.IsArray {
				bw[p.Name] = m.BitWidth
			}
		}
	}
	return loops, bw
}

// App is one evaluation workload.
type App struct {
	Name   string // Table 2 kernel name (e.g. "S-W")
	ID     string // accelerator ID (`val id`)
	Type   string // Table 2 type column
	Source string
	// Tasks is the batch size used for the paper-shaped experiments.
	Tasks int
	// Gen produces n per-task JVM input values.
	Gen func(rng *rand.Rand, n int) []jvmsim.Val
	// Manual is the expert design for Fig. 4.
	Manual ManualDesign

	once   sync.Once
	class  *bytecode.Class
	kernel *cir.Kernel
	cErr   error
}

// Class compiles (once) the DSL source to bytecode.
func (a *App) Class() (*bytecode.Class, error) {
	a.compile()
	return a.class, a.cErr
}

// Kernel compiles (once) the bytecode to the HLS-C kernel.
func (a *App) Kernel() (*cir.Kernel, error) {
	a.compile()
	return a.kernel, a.cErr
}

func (a *App) compile() {
	a.once.Do(func() {
		cls, err := kdsl.CompileSource(a.Source)
		if err != nil {
			a.cErr = fmt.Errorf("app %s: %w", a.Name, err)
			return
		}
		a.class = cls
		k, err := b2c.Compile(cls)
		if err != nil {
			a.cErr = fmt.Errorf("app %s: %w", a.Name, err)
			return
		}
		a.kernel = k
	})
}

var registry []*App

// All returns the registered workloads: the Table 2 eight first, in
// table order, then the four extended workloads.
func All() []*App { return registry }

// Names returns the workload names in registry order (what -app accepts).
func Names() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Name
	}
	return out
}

// Get returns the named workload, or nil.
func Get(name string) *App {
	for _, a := range registry {
		if a.Name == name || a.ID == name {
			return a
		}
	}
	return nil
}

func init() {
	registry = []*App{
		{
			Name: "PR", ID: "PR_kernel", Type: "graph proc.",
			Source: prSource(), Tasks: 4096,
			Gen: genPR,
			Manual: ManualDesign{
				TaskParallel: 4, TaskPipeline: cir.PipeOn,
				InnerPipeline: true, InnerParallel: 8, BitWidth: 512,
			},
		},
		{
			Name: "KMeans", ID: "KMeans_kernel", Type: "classification",
			Source: kmeansSource(), Tasks: 4096,
			Gen: genKMeans,
			Manual: ManualDesign{
				TaskParallel: 16, TaskPipeline: cir.PipeOn,
				FlattenDepth1: true, BitWidth: 512,
			},
		},
		{
			Name: "KNN", ID: "KNN_kernel", Type: "classification",
			Source: knnSource(), Tasks: 2048,
			Gen: genKNN,
			Manual: ManualDesign{
				TaskParallel: 8, TaskPipeline: cir.PipeOn,
				MidPipeline: true, MidParallel: 8,
				InnerPipeline: true, InnerParallel: 4, BitWidth: 512,
			},
		},
		{
			Name: "LR", ID: "LR_kernel", Type: "regression",
			Source: lrSource(), Tasks: 4096,
			Gen: genReg(false),
			Manual: ManualDesign{
				TaskParallel: 16, TaskPipeline: cir.PipeOn,
				InnerPipeline: true, InnerParallel: 8, BitWidth: 512,
				StageSplit: true,
			},
		},
		{
			Name: "SVM", ID: "SVM_kernel", Type: "regression",
			Source: svmSource(), Tasks: 4096,
			Gen: genReg(true),
			Manual: ManualDesign{
				TaskParallel: 16, TaskPipeline: cir.PipeOn,
				InnerPipeline: true, InnerParallel: 8, BitWidth: 512,
			},
		},
		{
			Name: "LLS", ID: "LLS_kernel", Type: "regression",
			Source: llsSource(), Tasks: 4096,
			Gen: genReg(false),
			Manual: ManualDesign{
				TaskParallel: 16, TaskPipeline: cir.PipeOn,
				InnerPipeline: true, InnerParallel: 8, BitWidth: 512,
			},
		},
		{
			Name: "AES", ID: "AES_kernel", Type: "string proc.",
			Source: aesSource(), Tasks: 16384,
			Gen: genAES,
			Manual: ManualDesign{
				// The classic feedforward AES pipeline: the whole task
				// body (all ten rounds) unrolled into one pipelined
				// datapath accepting a block per cycle.
				TaskParallel: 2, TaskPipeline: cir.PipeFlatten, BitWidth: 512,
			},
		},
		{
			Name: "S-W", ID: "SW_kernel", Type: "string proc.",
			Source: swSource(), Tasks: 1024,
			Gen: genSW,
			Manual: ManualDesign{
				// Systolic-style wavefront: the cell row fully unrolled
				// under a pipelined row loop, replicated across tasks.
				TaskParallel: 4, TaskPipeline: cir.PipeOn,
				MidPipeline:   true,
				InnerPipeline: true, InnerParallel: 64, BitWidth: 512,
			},
		},
		{
			Name: "Conv", ID: "Conv_kernel", Type: "image proc.",
			Source: convSource(), Tasks: 1024,
			Gen: genConv,
			Manual: ManualDesign{
				// Line-buffer style: filter nest fully pipelined, window
				// reads unrolled across the filter width.
				TaskParallel: 4, TaskPipeline: cir.PipeOn,
				MidPipeline:   true,
				InnerPipeline: true, InnerParallel: ConvK, BitWidth: 512,
			},
		},
		{
			Name: "Hist", ID: "Hist_kernel", Type: "data analytics",
			Source: histSource(), Tasks: 8192,
			Gen: genHist,
			Manual: ManualDesign{
				// The bin scatter carries a dependence through memory, so
				// the expert pipelines without unrolling and leans on task
				// parallelism instead.
				TaskParallel: 8, TaskPipeline: cir.PipeOn,
				InnerPipeline: true, BitWidth: 512,
			},
		},
		{
			Name: "TopK", ID: "TopK_kernel", Type: "data analytics",
			Source: topkSource(), Tasks: 4096,
			Gen: genTopK,
			Manual: ManualDesign{
				// The register-file insertion bubble fully unrolls; the
				// scan loop pipelines over it.
				TaskParallel: 8, TaskPipeline: cir.PipeOn,
				MidPipeline:   true,
				InnerPipeline: true, InnerParallel: TKK, BitWidth: 512,
			},
		},
		{
			Name: "StrSearch", ID: "StrSearch_kernel", Type: "string proc.",
			Source: strSearchSource(), Tasks: 4096,
			Gen: genStrSearch,
			Manual: ManualDesign{
				// Pattern compares fully unrolled into one wide match
				// datapath under a pipelined text scan.
				TaskParallel: 8, TaskPipeline: cir.PipeOn,
				MidPipeline:   true,
				InnerPipeline: true, InnerParallel: SSM, BitWidth: 512,
			},
		},
	}
}

// Input generators. All draw from the caller's RNG for reproducibility.

func genSW(rng *rand.Rand, n int) []jvmsim.Val {
	const alphabet = "ACGT"
	out := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		a := make([]cir.Value, SWLen)
		b := make([]cir.Value, SWLen)
		for i := range a {
			a[i] = cir.IntVal(cir.Char, int64(alphabet[rng.Intn(4)]))
			b[i] = cir.IntVal(cir.Char, int64(alphabet[rng.Intn(4)]))
		}
		out[t] = jvmsim.Tuple(jvmsim.Array(a), jvmsim.Array(b))
	}
	return out
}

func genKMeans(rng *rand.Rand, n int) []jvmsim.Val {
	out := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		p := make([]cir.Value, KMeansD)
		for j := range p {
			p[j] = cir.FloatVal(cir.Double, rng.Float64()*10)
		}
		out[t] = jvmsim.Array(p)
	}
	return out
}

func genKNN(rng *rand.Rand, n int) []jvmsim.Val {
	out := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		p := make([]cir.Value, KNND)
		for j := range p {
			p[j] = cir.FloatVal(cir.Double, rng.Float64()*10)
		}
		out[t] = jvmsim.Array(p)
	}
	return out
}

func genReg(pm bool) func(rng *rand.Rand, n int) []jvmsim.Val {
	return func(rng *rand.Rand, n int) []jvmsim.Val {
		out := make([]jvmsim.Val, n)
		for t := 0; t < n; t++ {
			x := make([]cir.Value, RegD)
			for j := range x {
				x[j] = cir.FloatVal(cir.Double, rng.NormFloat64())
			}
			y := float64(rng.Intn(2))
			if pm {
				y = y*2 - 1 // ±1 labels for SVM
			}
			out[t] = jvmsim.Tuple(jvmsim.Array(x), jvmsim.Scalar(cir.FloatVal(cir.Double, y)))
		}
		return out
	}
}

func genPR(rng *rand.Rand, n int) []jvmsim.Val {
	out := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		r := make([]cir.Value, PRDeg)
		d := make([]cir.Value, PRDeg)
		active := 1 + rng.Intn(PRDeg)
		for e := 0; e < PRDeg; e++ {
			if e < active {
				r[e] = cir.FloatVal(cir.Double, rng.Float64())
				d[e] = cir.IntVal(cir.Int, int64(1+rng.Intn(8)))
			} else {
				r[e] = cir.FloatVal(cir.Double, 0)
				d[e] = cir.IntVal(cir.Int, 0)
			}
		}
		out[t] = jvmsim.Tuple(jvmsim.Array(r), jvmsim.Array(d))
	}
	return out
}

func genAES(rng *rand.Rand, n int) []jvmsim.Val {
	out := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		b := make([]cir.Value, AESBlock)
		for i := range b {
			b[i] = cir.IntVal(cir.Char, int64(int8(rng.Intn(256))))
		}
		out[t] = jvmsim.Array(b)
	}
	return out
}

func genConv(rng *rand.Rand, n int) []jvmsim.Val {
	out := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		img := make([]cir.Value, ConvN*ConvN)
		for i := range img {
			img[i] = cir.FloatVal(cir.Double, rng.Float64()*2-1)
		}
		out[t] = jvmsim.Array(img)
	}
	return out
}

func genHist(rng *rand.Rand, n int) []jvmsim.Val {
	out := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		xs := make([]cir.Value, HistN)
		for i := range xs {
			// Signed samples: the kernel's power-of-two mask must bin
			// negatives too.
			xs[i] = cir.IntVal(cir.Int, int64(rng.Intn(4096)-2048))
		}
		out[t] = jvmsim.Array(xs)
	}
	return out
}

func genTopK(rng *rand.Rand, n int) []jvmsim.Val {
	out := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		xs := make([]cir.Value, TKN)
		for i := range xs {
			xs[i] = cir.FloatVal(cir.Double, rng.Float64()*100)
		}
		out[t] = jvmsim.Array(xs)
	}
	return out
}

func genStrSearch(rng *rand.Rand, n int) []jvmsim.Val {
	const alphabet = "ACGT"
	out := make([]jvmsim.Val, n)
	for t := 0; t < n; t++ {
		text := make([]cir.Value, SSN)
		for i := range text {
			text[i] = cir.IntVal(cir.Char, int64(alphabet[rng.Intn(4)]))
		}
		// Plant the pattern a few times so counts are nonzero.
		for p := 1 + rng.Intn(3); p > 0; p-- {
			at := rng.Intn(SSN - SSM + 1)
			for j, ch := range SSPattern {
				text[at+j] = cir.IntVal(cir.Char, int64(ch))
			}
		}
		out[t] = jvmsim.Array(text)
	}
	return out
}
