package apps

import (
	"math/rand"
	"reflect"
	"testing"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/depend"
	"s2fa/internal/jvmsim"
)

// The dependence analysis is one-sided: it may report a dependence that
// never materializes, but it must never classify an observed
// loop-carried conflict as independent, and a proven minimum distance
// must lower-bound every realized one. This file enforces that contract
// differentially: the JVM simulator runs each workload with a trace hook
// that records every concrete array access together with the live
// induction-variable vector of its enclosing loop chain, then every
// conflicting pair (same element, at least one write) is attributed to
// the outermost enclosing loop whose iteration differs and checked
// against that loop's verdict.

// loopCtx is one entry of a static enclosing-loop chain. slot is the
// bytecode local holding the induction variable, -1 for the synthesized
// task loop (whose iteration number is the Call ordinal), and -2 when
// the variable has no named bytecode local (events under it cannot be
// attributed and are skipped).
type loopCtx struct {
	loop *cir.Loop
	slot int
}

func sameChain(a, b []loopCtx) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].loop != b[i].loop || a[i].slot != b[i].slot {
			return false
		}
	}
	return true
}

// chainsByPos maps the kdsl source position of every array access in the
// kernel to its enclosing loop chain (outermost first). The bytecode
// aload/astore that triggers a runtime event carries the same position
// the C generator stamped on the cir.Index node, so the map attributes
// dynamic accesses to static loop context. Positions claimed by two
// different chains are dropped — such an access cannot be attributed.
func chainsByPos(k *cir.Kernel, m *bytecode.Method) map[cir.Pos][]loopCtx {
	slotOf := map[string]int{}
	for i, n := range m.LocalNames {
		if n == "" {
			continue
		}
		if _, dup := slotOf[n]; !dup {
			slotOf[n] = i
		}
	}
	chains := map[cir.Pos][]loopCtx{}
	ambiguous := map[cir.Pos]bool{}
	var cur []loopCtx
	var walkExpr func(e cir.Expr)
	walkExpr = func(e cir.Expr) {
		switch x := e.(type) {
		case *cir.Index:
			if x.Pos.Valid() {
				c := append([]loopCtx(nil), cur...)
				if prev, ok := chains[x.Pos]; ok {
					if !sameChain(prev, c) {
						ambiguous[x.Pos] = true
					}
				} else {
					chains[x.Pos] = c
				}
			}
			walkExpr(x.Idx)
		case *cir.Unary:
			walkExpr(x.X)
		case *cir.Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *cir.Cast:
			walkExpr(x.X)
		case *cir.Cond:
			walkExpr(x.C)
			walkExpr(x.T)
			walkExpr(x.F)
		case *cir.Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmt func(s cir.Stmt)
	walkBlock := func(b cir.Block) {
		for _, s := range b {
			walkStmt(s)
		}
	}
	walkStmt = func(s cir.Stmt) {
		switch x := s.(type) {
		case *cir.Decl:
			if x.Init != nil {
				walkExpr(x.Init)
			}
		case *cir.Assign:
			walkExpr(x.LHS)
			walkExpr(x.RHS)
		case *cir.If:
			walkExpr(x.Cond)
			walkBlock(x.Then)
			walkBlock(x.Else)
		case *cir.Loop:
			walkExpr(x.Lo)
			walkExpr(x.Hi)
			slot := -1
			if x.ID != k.TaskLoopID {
				if s, ok := slotOf[x.Var]; ok {
					slot = s
				} else {
					slot = -2
				}
			}
			cur = append(cur, loopCtx{loop: x, slot: slot})
			walkBlock(x.Body)
			cur = cur[:len(cur)-1]
		case *cir.While:
			walkExpr(x.Cond)
			walkBlock(x.Body)
		case *cir.Return:
			if x.Val != nil {
				walkExpr(x.Val)
			}
		}
	}
	walkBlock(k.Body)
	for p := range ambiguous {
		delete(chains, p)
	}
	return chains
}

// arrElem identifies one concrete array element by the backing slice's
// data pointer and index.
type arrElem struct {
	arr uintptr
	idx int64
}

// arrAccess is one recorded dynamic access: whether it wrote, the static
// chain it was attributed to, and the induction values of that chain at
// access time (outermost first).
type arrAccess struct {
	write bool
	chain []loopCtx
	vals  []int64
}

// depRecorder is the jvmsim trace hook state for one seed's run.
type depRecorder struct {
	call   *bytecode.Method
	task   int64
	chains map[cir.Pos][]loopCtx
	events map[arrElem][]arrAccess
	// pin retains every observed backing slice so the garbage collector
	// can never recycle an address — element identity stays unique for
	// the whole run.
	pin map[uintptr][]cir.Value
}

func (r *depRecorder) hook(m *bytecode.Method, pc int, stack, locals []jvmsim.Val) {
	if m != r.call {
		return
	}
	var write bool
	var arrV jvmsim.Val
	var idx int64
	switch m.Code[pc].Op {
	case bytecode.OpALoad:
		arrV, idx = stack[len(stack)-2], stack[len(stack)-1].S.AsInt()
	case bytecode.OpAStore:
		write = true
		arrV, idx = stack[len(stack)-3], stack[len(stack)-2].S.AsInt()
	default:
		return
	}
	if !arrV.IsArr || len(arrV.Arr) == 0 || idx < 0 || idx >= int64(len(arrV.Arr)) {
		return
	}
	bp := m.PosAt(pc)
	chain, ok := r.chains[cir.Pos{Line: bp.Line, Col: bp.Col}]
	if !ok {
		return
	}
	vals := make([]int64, len(chain))
	for i, lc := range chain {
		switch {
		case lc.slot == -1:
			vals[i] = r.task
		case lc.slot < 0 || lc.slot >= len(locals):
			return // unmapped induction variable: cannot attribute
		default:
			vals[i] = locals[lc.slot].S.AsInt()
		}
	}
	ptr := reflect.ValueOf(arrV.Arr).Pointer()
	r.pin[ptr] = arrV.Arr
	key := arrElem{arr: ptr, idx: idx}
	r.events[key] = append(r.events[key], arrAccess{write: write, chain: chain, vals: vals})
}

// check validates every observed conflicting pair against the verdicts
// and returns how many carried conflicts it saw.
func (r *depRecorder) check(t *testing.T, name string, dep *depend.Analysis) int {
	t.Helper()
	conflicts, failures := 0, 0
	const maxFailures = 5
	for _, evs := range r.events {
		for i := 0; i < len(evs) && failures <= maxFailures; i++ {
			for j := i + 1; j < len(evs); j++ {
				a, b := evs[i], evs[j]
				if !a.write && !b.write {
					continue
				}
				// The carrier is the outermost shared loop whose
				// iteration differs; equal prefixes above it mean the two
				// accesses run in the same iteration of every outer loop.
				n := len(a.chain)
				if len(b.chain) < n {
					n = len(b.chain)
				}
				carrier := -1
				for d := 0; d < n; d++ {
					if a.chain[d].loop != b.chain[d].loop {
						break
					}
					if a.vals[d] != b.vals[d] {
						carrier = d
						break
					}
				}
				if carrier < 0 {
					continue // loop-independent
				}
				conflicts++
				l := a.chain[carrier].loop
				delta := a.vals[carrier] - b.vals[carrier]
				if delta < 0 {
					delta = -delta
				}
				v := dep.Verdict(l.ID)
				if v == nil {
					failures++
					t.Errorf("%s: carried conflict on loop %s but no verdict exists", name, l.ID)
					continue
				}
				if v.Kind == depend.DOALL || len(v.RaceCarried)+len(v.OutputCarried) == 0 {
					failures++
					t.Errorf("%s: observed array conflict carried by %s (|Δ%s| = %d) but the verdict claims no carried array dependence: %s",
						name, l.ID, l.Var, delta, v.Describe())
					continue
				}
				if v.Kind == depend.Pipeline {
					dmin := int64(0)
					for _, d := range v.ArrDist {
						if dmin == 0 || d < dmin {
							dmin = d
						}
					}
					if dmin == 0 {
						dmin = 1
					}
					step := l.Step
					if step <= 0 {
						step = 1
					}
					if delta < dmin*step {
						failures++
						t.Errorf("%s: conflict carried by %s realizes distance %d, below the proven minimum %d (step %d): %s",
							name, l.ID, delta, dmin, step, v.Describe())
					}
				}
			}
		}
	}
	return conflicts
}

// TestDependSoundnessAllWorkloads runs all eight Table 2 workloads on the
// JVM simulator across three input seeds with the dependence recorder
// attached: every concretely observed loop-carried array conflict must be
// predicted by the loop's verdict, and no realized dependence distance
// may undercut a proven minimum. Smith-Waterman must actually exhibit
// its cell recurrence, so the harness is known to have teeth.
func TestDependSoundnessAllWorkloads(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			cls, err := a.Class()
			if err != nil {
				t.Fatal(err)
			}
			k, err := a.Kernel()
			if err != nil {
				t.Fatal(err)
			}
			dep := depend.Analyze(k)
			chains := chainsByPos(k, cls.Call)
			if len(chains) == 0 {
				t.Fatal("no sourced array access maps to a loop chain; the harness would observe nothing")
			}
			conflicts := 0
			for _, seed := range []int64{1, 7, 42} {
				rec := &depRecorder{
					call:   cls.Call,
					chains: chains,
					events: map[arrElem][]arrAccess{},
					pin:    map[uintptr][]cir.Value{},
				}
				vm := jvmsim.New(cls)
				vm.Trace = rec.hook
				rng := rand.New(rand.NewSource(seed))
				for i, task := range a.Gen(rng, 3) {
					rec.task = int64(i)
					if _, err := vm.Call(task); err != nil {
						t.Fatalf("seed %d task %d: %v", seed, i, err)
					}
				}
				conflicts += rec.check(t, a.Name, dep)
			}
			if a.Name == "S-W" && conflicts == 0 {
				t.Error("S-W observed no carried conflicts; the recorder is not seeing the cell recurrence")
			}
			t.Logf("%s: %d observed carried conflicts validated against the verdicts", a.Name, conflicts)
		})
	}
}
