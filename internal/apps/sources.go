package apps

import (
	"fmt"
	"math/rand"
	"strings"
)

// Model-constant dimensions for the workloads. They follow the scale of
// the paper's kernels (S-W on 128-char pairs producing 256-char
// alignments, Code 2/Code 3).
const (
	// SWLen is the per-task sequence length; SWOut the alignment length.
	SWLen = 128
	SWOut = 256
	// KMeansK clusters over KMeansD-dimensional points.
	KMeansK = 16
	KMeansD = 8
	// KNNTrain training points of KNND dims, 3-nearest-neighbor vote.
	KNNTrain = 256
	KNND     = 4
	// RegD is the feature dimension of LR/SVM/LLS.
	RegD = 16
	// PRDeg is the (padded) neighbor count per PageRank vertex.
	PRDeg = 32
	// AESBlock is the AES-128 block size.
	AESBlock = 16
)

// Deterministic model constants shared between the DSL sources (as class
// constant fields) and the Go reference implementations.
var (
	KMeansCenters = genFloats(KMeansK*KMeansD, 11, 0, 10)
	KNNPoints     = genFloats(KNNTrain*KNND, 23, 0, 10)
	KNNLabels     = genInts(KNNTrain, 31, 0, 4)
	RegWeights    = genFloats(RegD, 47, -1, 1)
	// AESKey is the FIPS-197 example key.
	AESKey = []byte{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}
)

func genFloats(n int, seed int64, lo, hi float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

func genInts(n int, seed int64, lo, hi int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = lo + rng.Intn(hi-lo)
	}
	return out
}

func floatLits(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		s := fmt.Sprintf("%.17g", x)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		parts[i] = s
	}
	return strings.Join(parts, ", ")
}

func intLits(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ", ")
}

func byteLits(v []byte) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ", ")
}

// swSource is the Smith-Waterman kernel of the paper's motivating example
// (Code 2): affine-free local alignment with traceback into fixed 256-char
// outputs.
func swSource() string {
	return fmt.Sprintf(`
class SmithWaterman extends Accelerator[(Array[Char], Array[Char]), (Array[Char], Array[Char])] {
  val id: String = "SW_kernel"
  val inSizes: Array[Int] = Array(%d, %d)
  def call(in: (Array[Char], Array[Char])): (Array[Char], Array[Char]) = {
    val a: Array[Char] = in._1
    val b: Array[Char] = in._2
    var H: Array[Int] = new Array[Int](129 * 129)
    var D: Array[Int] = new Array[Int](129 * 129)
    var maxV: Int = 0
    var maxI: Int = 0
    var maxJ: Int = 0
    for (i <- 1 until 129) {
      for (j <- 1 until 129) {
        var sc: Int = -1
        if (a(i - 1) == b(j - 1)) {
          sc = 2
        }
        val dg: Int = H((i - 1) * 129 + (j - 1)) + sc
        val up: Int = H((i - 1) * 129 + j) - 1
        val lf: Int = H(i * 129 + (j - 1)) - 1
        var v: Int = 0
        var d: Int = 0
        if (dg > v) {
          v = dg
          d = 1
        }
        if (up > v) {
          v = up
          d = 2
        }
        if (lf > v) {
          v = lf
          d = 3
        }
        H(i * 129 + j) = v
        D(i * 129 + j) = d
        if (v > maxV) {
          maxV = v
          maxI = i
          maxJ = j
        }
      }
    }
    var out1: Array[Char] = new Array[Char](%d)
    var out2: Array[Char] = new Array[Char](%d)
    var ti: Int = maxI
    var tj: Int = maxJ
    var p: Int = %d - 1
    while (ti > 0 && tj > 0 && D(ti * 129 + tj) != 0 && p >= 0) {
      val d: Int = D(ti * 129 + tj)
      if (d == 1) {
        out1(p) = a(ti - 1)
        out2(p) = b(tj - 1)
        ti = ti - 1
        tj = tj - 1
      } else if (d == 2) {
        out1(p) = a(ti - 1)
        out2(p) = 45.toChar
        ti = ti - 1
      } else {
        out1(p) = 45.toChar
        out2(p) = b(tj - 1)
        tj = tj - 1
      }
      p = p - 1
    }
    (out1, out2)
  }
}
`, SWLen, SWLen, SWOut, SWOut, SWOut)
}

// kmeansSource assigns each point to its nearest of K fixed centers (one
// Lloyd iteration's assignment step, the hot Spark map of KMeans).
func kmeansSource() string {
	return fmt.Sprintf(`
class KMeans extends Accelerator[Array[Double], Int] {
  val id: String = "KMeans_kernel"
  val inSizes: Array[Int] = Array(%d)
  val centers: Array[Double] = Array(%s)
  def call(in: Array[Double]): Int = {
    var best: Int = 0
    var bestDist: Double = 1.0e30
    for (k <- 0 until %d) {
      var dist: Double = 0.0
      for (j <- 0 until %d) {
        val t: Double = in(j) - centers(k * %d + j)
        dist = dist + t * t
      }
      if (dist < bestDist) {
        bestDist = dist
        best = k
      }
    }
    best
  }
}
`, KMeansD, floatLits(KMeansCenters), KMeansK, KMeansD, KMeansD)
}

// knnSource classifies each query point by a 3-nearest-neighbor vote over
// a fixed training set.
func knnSource() string {
	return fmt.Sprintf(`
class KNN extends Accelerator[Array[Double], Int] {
  val id: String = "KNN_kernel"
  val inSizes: Array[Int] = Array(%d)
  val pts: Array[Double] = Array(%s)
  val labels: Array[Int] = Array(%s)
  def call(in: Array[Double]): Int = {
    var d1: Double = 1.0e30
    var d2: Double = 1.0e30
    var d3: Double = 1.0e30
    var l1: Int = 0
    var l2: Int = 0
    var l3: Int = 0
    for (t <- 0 until %d) {
      var dist: Double = 0.0
      for (j <- 0 until %d) {
        val df: Double = in(j) - pts(t * %d + j)
        dist = dist + df * df
      }
      if (dist < d1) {
        d3 = d2
        l3 = l2
        d2 = d1
        l2 = l1
        d1 = dist
        l1 = labels(t)
      } else if (dist < d2) {
        d3 = d2
        l3 = l2
        d2 = dist
        l2 = labels(t)
      } else if (dist < d3) {
        d3 = dist
        l3 = labels(t)
      }
    }
    var vote: Int = l1
    if (l2 == l3 && l2 != l1) {
      vote = l2
    }
    vote
  }
}
`, KNND, floatLits(KNNPoints), intLits(KNNLabels), KNNTrain, KNND, KNND)
}

// lrSource computes one logistic-regression gradient contribution per
// point and sums them with a reduce combiner. The sigmoid's exponential
// is the II=13 bottleneck the paper discusses for the S2FA LR design.
func lrSource() string {
	return regressionSource("LogisticRegression", "LR_kernel", `
    var dot: Double = 0.0
    for (j <- 0 until %[1]d) {
      dot = dot + w(j) * x(j)
    }
    val s: Double = 1.0 / (1.0 + Math.exp(-dot))
    val coef: Double = s - y
    var g: Array[Double] = new Array[Double](%[1]d)
    for (j <- 0 until %[1]d) {
      g(j) = coef * x(j)
    }
    g`)
}

// svmSource computes a hinge-loss (sub)gradient per point.
func svmSource() string {
	return regressionSource("SVM", "SVM_kernel", `
    var dot: Double = 0.0
    for (j <- 0 until %[1]d) {
      dot = dot + w(j) * x(j)
    }
    val margin: Double = y * dot
    var g: Array[Double] = new Array[Double](%[1]d)
    if (margin < 1.0) {
      for (j <- 0 until %[1]d) {
        g(j) = 0.01 * w(j) - y * x(j)
      }
    } else {
      for (j <- 0 until %[1]d) {
        g(j) = 0.01 * w(j)
      }
    }
    g`)
}

// llsSource computes a least-squares gradient per point.
func llsSource() string {
	return regressionSource("LeastLinearSquare", "LLS_kernel", `
    var dot: Double = 0.0
    for (j <- 0 until %[1]d) {
      dot = dot + w(j) * x(j)
    }
    val coef: Double = dot - y
    var g: Array[Double] = new Array[Double](%[1]d)
    for (j <- 0 until %[1]d) {
      g(j) = coef * x(j)
    }
    g`)
}

func regressionSource(class, id, body string) string {
	return fmt.Sprintf(`
class %s extends Accelerator[(Array[Double], Double), Array[Double]] {
  val id: String = "%s"
  val inSizes: Array[Int] = Array(%d, 1)
  val w: Array[Double] = Array(%s)
  def call(in: (Array[Double], Double)): Array[Double] = {
    val x: Array[Double] = in._1
    val y: Double = in._2
%s
  }
  def reduce(a: Array[Double], b: Array[Double]): Array[Double] = {
    for (j <- 0 until %d) {
      a(j) = a(j) + b(j)
    }
    a
  }
}
`, class, id, RegD, floatLits(RegWeights), fmt.Sprintf(body, RegD), RegD)
}

// prSource computes one PageRank update per vertex from padded neighbor
// rank/degree vectors — a tiny amount of compute per byte moved, which is
// why PR stays memory-bound on the FPGA (paper §5.2).
func prSource() string {
	return fmt.Sprintf(`
class PageRank extends Accelerator[(Array[Double], Array[Int]), Double] {
  val id: String = "PR_kernel"
  val inSizes: Array[Int] = Array(%d, %d)
  def call(in: (Array[Double], Array[Int])): Double = {
    val r: Array[Double] = in._1
    val deg: Array[Int] = in._2
    var s: Double = 0.0
    for (e <- 0 until %d) {
      if (deg(e) > 0) {
        s = s + r(e) / deg(e).toDouble
      }
    }
    0.15 + 0.85 * s
  }
}
`, PRDeg, PRDeg, PRDeg)
}

// aesSource is AES-128 ECB encryption of one block per task with
// precomputed round keys, S-box table lookups, and inline MixColumns —
// the classic byte-twiddling workload where the JVM falls furthest behind
// (paper: string-processing speedups of ~1225x).
func aesSource() string {
	return fmt.Sprintf(`
class AES extends Accelerator[Array[Char], Array[Char]] {
  val id: String = "AES_kernel"
  val inSizes: Array[Int] = Array(%d)
  val sbox: Array[Int] = Array(%s)
  val rkey: Array[Int] = Array(%s)
  val shift: Array[Int] = Array(0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11)
  def call(in: Array[Char]): Array[Char] = {
    var st: Array[Int] = new Array[Int](16)
    for (i <- 0 until 16) {
      st(i) = (in(i).toInt & 255) ^ rkey(i)
    }
    for (r <- 1 until 10) {
      var sb: Array[Int] = new Array[Int](16)
      for (i <- 0 until 16) {
        sb(i) = sbox(st(i))
      }
      var sh: Array[Int] = new Array[Int](16)
      for (i <- 0 until 16) {
        sh(i) = sb(shift(i))
      }
      for (c <- 0 until 4) {
        val a0: Int = sh(c * 4)
        val a1: Int = sh(c * 4 + 1)
        val a2: Int = sh(c * 4 + 2)
        val a3: Int = sh(c * 4 + 3)
        val b0: Int = ((a0 << 1) ^ (((a0 >> 7) & 1) * 27)) & 255
        val b1: Int = ((a1 << 1) ^ (((a1 >> 7) & 1) * 27)) & 255
        val b2: Int = ((a2 << 1) ^ (((a2 >> 7) & 1) * 27)) & 255
        val b3: Int = ((a3 << 1) ^ (((a3 >> 7) & 1) * 27)) & 255
        st(c * 4) = b0 ^ (b1 ^ a1) ^ a2 ^ a3
        st(c * 4 + 1) = a0 ^ b1 ^ (b2 ^ a2) ^ a3
        st(c * 4 + 2) = a0 ^ a1 ^ b2 ^ (b3 ^ a3)
        st(c * 4 + 3) = (b0 ^ a0) ^ a1 ^ a2 ^ b3
      }
      for (i <- 0 until 16) {
        st(i) = st(i) ^ rkey(r * 16 + i)
      }
    }
    var fs: Array[Int] = new Array[Int](16)
    for (i <- 0 until 16) {
      fs(i) = sbox(st(i))
    }
    var outb: Array[Char] = new Array[Char](16)
    for (i <- 0 until 16) {
      outb(i) = (fs(shift(i)) ^ rkey(160 + i)).toChar
    }
    outb
  }
}
`, AESBlock, intLits(aesSboxInts()), byteLits(ExpandAESKey(AESKey)))
}

func aesSboxInts() []int {
	out := make([]int, 256)
	for i, b := range aesSbox {
		out[i] = int(b)
	}
	return out
}
