package apps

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"s2fa/internal/access"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/jvmsim"
)

// The access classifier's contract is one-sided: it may demote any site
// to gather or unknown, but an affine claim — burst, strided, or
// invariant, with its coefficient — must hold on every dynamic
// execution:
//
//	addr = Coeff * value(L.Var) + r
//
// with the residual r fixed while every other enclosing induction
// variable is fixed. This file enforces exactly that statement
// differentially: the JVM simulator runs each workload with a trace hook
// recording every concrete array access with its induction vector, then
// for every claimed (site, loop) pair the events are grouped by backing
// array and the values of all *other* induction variables, and the
// residual idx - Coeff*vals[d] must be constant within each group. A
// single moving residual is a soundness bug in the classifier, not a
// modeling inaccuracy.
//
// Gather and unknown claims promise nothing and are unconstrained; the
// harness reuses chainsByPos and the attribution rules from the
// dependence property test.

// accEvent is one recorded dynamic access at a claimed site: the backing
// array pointer, the concrete subscript, and the induction values of the
// site's chain (outermost first).
type accEvent struct {
	ptr  uintptr
	idx  int64
	vals []int64
}

// accSite is the static side of the check: one classified access site
// whose kdsl position attributes runtime events, with the loop chain
// shared with the dependence harness.
type accSite struct {
	site  *access.Site
	chain []loopCtx
}

// accRecorder is the jvmsim trace hook state for one seed's run.
type accRecorder struct {
	call   *bytecode.Method
	task   int64
	sites  map[cir.Pos]*accSite
	events map[cir.Pos][]accEvent
	// pin retains every observed backing slice so the garbage collector
	// can never recycle an address — array identity stays unique for the
	// whole run.
	pin map[uintptr][]cir.Value
}

func (r *accRecorder) hook(m *bytecode.Method, pc int, stack, locals []jvmsim.Val) {
	if m != r.call {
		return
	}
	var arrV jvmsim.Val
	var idx int64
	switch m.Code[pc].Op {
	case bytecode.OpALoad:
		arrV, idx = stack[len(stack)-2], stack[len(stack)-1].S.AsInt()
	case bytecode.OpAStore:
		arrV, idx = stack[len(stack)-3], stack[len(stack)-2].S.AsInt()
	default:
		return
	}
	if !arrV.IsArr || len(arrV.Arr) == 0 || idx < 0 || idx >= int64(len(arrV.Arr)) {
		return
	}
	bp := m.PosAt(pc)
	pos := cir.Pos{Line: bp.Line, Col: bp.Col}
	st, ok := r.sites[pos]
	if !ok {
		return
	}
	vals := make([]int64, len(st.chain))
	for i, lc := range st.chain {
		switch {
		case lc.slot == -1:
			vals[i] = r.task
		case lc.slot < 0 || lc.slot >= len(locals):
			return // unmapped induction variable: cannot attribute
		default:
			vals[i] = locals[lc.slot].S.AsInt()
		}
	}
	ptr := reflect.ValueOf(arrV.Arr).Pointer()
	r.pin[ptr] = arrV.Arr
	r.events[pos] = append(r.events[pos], accEvent{ptr: ptr, idx: idx, vals: vals})
}

// claimedSites pairs every classified site with the loop chain the
// dependence harness attributes to its position. Positions whose chain is
// ambiguous (dropped by chainsByPos), claimed by several sites with
// different claims, or whose static chain disagrees with the attributed
// one are skipped — events there cannot be attributed to one claim.
func claimedSites(k *cir.Kernel, acc *access.Analysis, m *bytecode.Method) map[cir.Pos]*accSite {
	chains := chainsByPos(k, m)
	out := map[cir.Pos]*accSite{}
	drop := map[cir.Pos]bool{}
	for _, s := range acc.Sites {
		if !s.Pos.Valid() {
			continue
		}
		chain, ok := chains[s.Pos]
		if !ok || len(chain) != len(s.Chain) {
			continue
		}
		agree := true
		for i, lc := range chain {
			if lc.loop.ID != s.Chain[i] {
				agree = false
			}
		}
		if !agree {
			continue
		}
		if prev, ok := out[s.Pos]; ok {
			if !reflect.DeepEqual(prev.site.Claims, s.Claims) {
				drop[s.Pos] = true
			}
			continue
		}
		out[s.Pos] = &accSite{site: s, chain: chain}
	}
	for p := range drop {
		delete(out, p)
	}
	return out
}

// check validates every affine claim against the recorded events and
// returns how many (group, depth) residuals it pinned.
func (r *accRecorder) check(t *testing.T, name string) int {
	t.Helper()
	checked, failures := 0, 0
	const maxFailures = 5
	for pos, evs := range r.events {
		st := r.sites[pos]
		for d, lc := range st.chain {
			cl := st.site.Claims[lc.loop.ID]
			if !cl.Class.Affine() && cl.Class != access.Invariant {
				continue // gather/unknown: no promise to check
			}
			// Group by backing array and every induction value except
			// depth d; within a group the claim says idx - Coeff*vals[d]
			// is one fixed residual.
			type groupState struct {
				residual int64
				first    accEvent
			}
			groups := map[string]*groupState{}
			for _, ev := range evs {
				if failures > maxFailures {
					return checked
				}
				key := strconv.FormatUint(uint64(ev.ptr), 16)
				for i, v := range ev.vals {
					if i == d {
						continue
					}
					key += "," + strconv.FormatInt(v, 10)
				}
				res := ev.idx - cl.Coeff*ev.vals[d]
				g, ok := groups[key]
				if !ok {
					groups[key] = &groupState{residual: res, first: ev}
					checked++
					continue
				}
				if res != g.residual {
					failures++
					t.Errorf("%s: site %s@%s claims %s (coeff %d) wrt %s, but with the other induction variables fixed the residual moved %d -> %d (idx %d at %s=%d, first idx %d at %s=%d)",
						name, st.site.Array, pos, cl.Class, cl.Coeff, lc.loop.ID,
						g.residual, res, ev.idx, lc.loop.Var, ev.vals[d],
						g.first.idx, lc.loop.Var, g.first.vals[d])
				}
			}
		}
	}
	return checked
}

// TestAccessSoundnessAllWorkloads runs all eight Table 2 workloads on
// the JVM simulator across three input seeds with the access recorder
// attached: every affine claim the classifier makes must match the
// concrete address progression, element for element. Smith-Waterman must
// actually exercise claimed sites, so the harness is known to have
// teeth.
func TestAccessSoundnessAllWorkloads(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			cls, err := a.Class()
			if err != nil {
				t.Fatal(err)
			}
			k, err := a.Kernel()
			if err != nil {
				t.Fatal(err)
			}
			acc := access.Analyze(k)
			sites := claimedSites(k, acc, cls.Call)
			if len(sites) == 0 {
				t.Fatal("no classified site maps to a loop chain; the harness would observe nothing")
			}
			checked := 0
			for _, seed := range []int64{1, 7, 42} {
				rec := &accRecorder{
					call:   cls.Call,
					sites:  sites,
					events: map[cir.Pos][]accEvent{},
					pin:    map[uintptr][]cir.Value{},
				}
				vm := jvmsim.New(cls)
				vm.Trace = rec.hook
				rng := rand.New(rand.NewSource(seed))
				for i, task := range a.Gen(rng, 3) {
					rec.task = int64(i)
					if _, err := vm.Call(task); err != nil {
						t.Fatalf("seed %d task %d: %v", seed, i, err)
					}
				}
				checked += rec.check(t, a.Name)
			}
			if a.Name == "S-W" && checked == 0 {
				t.Error("S-W pinned no residuals; the recorder is not seeing the claimed sites")
			}
			t.Logf("%s: %d residual groups pinned against affine claims", a.Name, checked)
		})
	}
}
