package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"s2fa/internal/blaze"
	"s2fa/internal/cir"
	"s2fa/internal/jvmsim"
	"s2fa/internal/merlin"
	"s2fa/internal/space"
)

// runKernelOn executes the given kernel over tasks and returns output
// buffers.
func runKernelOn(t *testing.T, a *App, k *cir.Kernel, tasks []jvmsim.Val) map[string][]cir.Value {
	t.Helper()
	cls, err := a.Class()
	if err != nil {
		t.Fatal(err)
	}
	layout := blaze.Layout{Class: cls, Kernel: k}
	bufs, err := layout.Serialize(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range layout.AllocOutputs(len(tasks)) {
		bufs[name] = out
	}
	ev := cir.NewEvaluator(k)
	ev.MaxSteps = 2_000_000_000
	if err := ev.Execute(len(tasks), bufs); err != nil {
		t.Fatalf("execute: %v", err)
	}
	return bufs
}

// TestPropertyDifferentialRandomSeeds re-runs the JVM-vs-kernel
// differential over many random input batches (property-style, driven by
// testing/quick's seed generation).
func TestPropertyDifferentialRandomSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"KMeans", "PR", "AES"} {
		a := Get(name)
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		k, err := a.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			tasks := a.Gen(rng, 3)
			bufs := runKernelOn(t, a, k, tasks)
			layout := blaze.Layout{Class: cls, Kernel: k}
			results, err := layout.Deserialize(bufs, 3)
			if err != nil {
				return false
			}
			vm := jvmsim.New(cls)
			for i, task := range tasks {
				want, err := vm.Call(task)
				if err != nil {
					return false
				}
				if !valsEqual(want, results[i]) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func valsEqual(a, b jvmsim.Val) bool {
	switch {
	case a.IsTup:
		if !b.IsTup || len(a.Tup) != len(b.Tup) {
			return false
		}
		for i := range a.Tup {
			if !valsEqual(a.Tup[i], b.Tup[i]) {
				return false
			}
		}
		return true
	case a.IsArr:
		if !b.IsArr || len(a.Arr) != len(b.Arr) {
			return false
		}
		for i := range a.Arr {
			if !scalarClose(a.Arr[i], b.Arr[i]) {
				return false
			}
		}
		return true
	default:
		return scalarClose(a.S, b.S)
	}
}

func scalarClose(a, b cir.Value) bool {
	if a.K.IsFloat() {
		return math.Abs(a.AsFloat()-b.AsFloat()) <= 1e-9*(1+math.Abs(a.AsFloat()))
	}
	return a.AsInt() == b.AsInt()
}

// TestPropertyMaterializeRandomDirectives draws random (small) directive
// sets and checks that materialized transformations preserve semantics —
// the repository's strongest invariant.
func TestPropertyMaterializeRandomDirectives(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"KMeans", "LLS", "AES"} {
		a := Get(name)
		k, err := a.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			d := merlin.Directives{Loops: map[string]cir.LoopOpt{}, BitWidths: map[string]int{}}
			for _, li := range k.Loops() {
				var opt cir.LoopOpt
				// Small structural factors keep materialized ASTs sane.
				if rng.Intn(2) == 0 {
					opt.Parallel = 1 + rng.Intn(3)
				}
				if rng.Intn(3) == 0 && li.TripCount() > 3 {
					opt.Tile = 2 + rng.Intn(3)
				}
				switch rng.Intn(3) {
				case 0:
					opt.Pipeline = cir.PipeOn
				case 1:
					if li.TripCount() > 0 && li.TripCount() <= 16 {
						opt.Pipeline = cir.PipeFlatten
					}
				}
				d.Loops[li.ID] = opt
			}
			xk, err := merlin.Materialize(k, d)
			if err != nil {
				// Structural preconditions (e.g. flatten over a dynamic
				// bound) are legitimate rejections, not failures.
				return true
			}
			tasks := a.Gen(rng, 3)
			base := runKernelOn(t, a, k, tasks)
			xf := runKernelOn(t, a, xk, tasks)
			for _, p := range k.Params {
				if !p.IsOutput {
					continue
				}
				bb, xb := base[p.Name], xf[p.Name]
				for i := range bb {
					if p.Elem.IsFloat() {
						if math.Abs(bb[i].AsFloat()-xb[i].AsFloat()) > 1e-6*(1+math.Abs(bb[i].AsFloat())) {
							return false
						}
					} else if bb[i].AsInt() != xb[i].AsInt() {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestSpaceIdentificationStable asserts design-space identification is a
// pure function of the kernel.
func TestSpaceIdentificationStable(t *testing.T) {
	for _, a := range All() {
		k, err := a.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := space.Identify(k), space.Identify(k)
		if len(s1.Params) != len(s2.Params) || s1.Cardinality() != s2.Cardinality() {
			t.Errorf("%s: unstable identification", a.Name)
		}
	}
}

// TestManualDesignsFeasible asserts every Fig. 4 expert configuration
// synthesizes (they are meaningless comparisons otherwise).
func TestManualDesignsFeasible(t *testing.T) {
	for _, a := range All() {
		k, err := a.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		loops, bw := a.Manual.Directives(k)
		if _, err := merlin.Annotate(k, merlin.Directives{Loops: loops, BitWidths: bw}); err != nil {
			t.Errorf("%s manual directives invalid: %v", a.Name, err)
		}
	}
}
