package apps

// Go references for the four extended workloads, mirroring the DSL
// kernels statement for statement (including floating-point evaluation
// order), like reference.go does for the Table 2 eight.

// ConvRef mirrors the Conv kernel on one image.
func ConvRef(img []float64) []float64 {
	out := make([]float64, ConvOut*ConvOut)
	for r := 0; r < ConvOut; r++ {
		for c := 0; c < ConvOut; c++ {
			acc := 0.0
			for kr := 0; kr < ConvK; kr++ {
				for kc := 0; kc < ConvK; kc++ {
					acc = acc + img[(r+kr)*ConvN+(c+kc)]*ConvFilter[kr*ConvK+kc]
				}
			}
			out[r*ConvOut+c] = acc
		}
	}
	return out
}

// HistRef mirrors the Hist kernel on one sample batch.
func HistRef(xs []int32) []int32 {
	bins := make([]int32, HistB)
	for _, x := range xs {
		// Two's-complement & matches the JVM Int mask for negatives.
		bins[uint32(x)&(HistB-1)]++
	}
	return bins
}

// TopKRef mirrors the TopK kernel on one value batch.
func TopKRef(xs []float64) []float64 {
	best := make([]float64, TKK)
	for j := range best {
		best[j] = -1.0e30
	}
	for _, v := range xs {
		x := v
		for j := 0; j < TKK; j++ {
			if x > best[j] {
				best[j], x = x, best[j]
			}
		}
	}
	return best
}

// StrSearchRef mirrors the StrSearch kernel on one text.
func StrSearchRef(text []byte) int {
	count := 0
	for i := 0; i < SSN-SSM+1; i++ {
		ok := 1
		for j := 0; j < SSM; j++ {
			if int(text[i+j]) != SSPattern[j] {
				ok = 0
			}
		}
		count += ok
	}
	return count
}
