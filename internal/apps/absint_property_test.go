package apps

import (
	"math/rand"
	"testing"

	"s2fa/internal/absint"
	"s2fa/internal/bytecode"
	"s2fa/internal/jvmsim"
)

// soundnessChecker asserts, before every interpreted instruction, that
// the concrete frame lies inside the absint-inferred facts: every scalar
// local within its slot summary, every value about to be stored within
// the per-pc store fact, and every array element about to be loaded
// within the per-pc load fact.
type soundnessChecker struct {
	t      *testing.T
	name   string
	facts  *absint.MethodFacts
	failed int
}

const maxSoundnessErrors = 5

func (c *soundnessChecker) hook(m *bytecode.Method, pc int, stack []jvmsim.Val, locals []jvmsim.Val) {
	if m != c.facts.Method || c.failed > maxSoundnessErrors {
		return
	}
	for i, lv := range locals {
		if lv.IsArr || lv.IsTup {
			continue
		}
		if iv := c.facts.LocalRange(i); !iv.ContainsValue(lv.S) {
			c.failed++
			c.t.Errorf("%s %s@%d: local %d holds %s outside inferred %v", c.name, m.Name, pc, i, lv.S, iv)
		}
	}
	in := m.Code[pc]
	switch in.Op {
	case bytecode.OpStore, bytecode.OpAStore:
		v := stack[len(stack)-1]
		if v.IsArr || v.IsTup {
			return
		}
		iv, ok := c.facts.Stored[pc]
		if !ok {
			c.failed++
			c.t.Errorf("%s %s@%d: store executed but no fact recorded", c.name, m.Name, pc)
			return
		}
		if !iv.ContainsValue(v.S) {
			c.failed++
			c.t.Errorf("%s %s@%d: stores %s outside inferred %v", c.name, m.Name, pc, v.S, iv)
		}
	case bytecode.OpALoad:
		idx := stack[len(stack)-1].S.AsInt()
		arr := stack[len(stack)-2]
		if !arr.IsArr || idx < 0 || idx >= int64(len(arr.Arr)) {
			return
		}
		iv, ok := c.facts.Loaded[pc]
		if !ok {
			c.failed++
			c.t.Errorf("%s %s@%d: aload executed but no fact recorded", c.name, m.Name, pc)
			return
		}
		if !iv.ContainsValue(arr.Arr[idx]) {
			c.failed++
			c.t.Errorf("%s %s@%d: loads %s outside inferred %v", c.name, m.Name, pc, arr.Arr[idx], iv)
		}
	}
}

// TestAbsintSoundnessAllWorkloads runs the JVM simulator over generated
// inputs for all eight Table 2 workloads with the differential trace
// hook attached: no concrete value may escape its inferred interval.
func TestAbsintSoundnessAllWorkloads(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			cls, err := a.Class()
			if err != nil {
				t.Fatal(err)
			}
			facts, err := absint.AnalyzeClass(cls)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			n := 4
			tasks := a.Gen(rng, n)
			vm := jvmsim.New(cls)
			check := &soundnessChecker{t: t, name: a.Name, facts: facts.Call}
			vm.Trace = check.hook
			outs := make([]jvmsim.Val, 0, n)
			for i, task := range tasks {
				out, err := vm.Call(task)
				if err != nil {
					t.Fatalf("task %d: %v", i, err)
				}
				outs = append(outs, out)
			}
			if cls.Reduce != nil {
				rcheck := &soundnessChecker{t: t, name: a.Name, facts: facts.Reduce}
				vm.Trace = rcheck.hook
				acc := outs[0]
				for _, o := range outs[1:] {
					acc, err = vm.Reduce(acc, o)
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			// All eight shipped kernels are offloadable: no §3.3
			// violations and pure (fresh outputs, no static mutation).
			if vs := facts.Violations(); len(vs) != 0 {
				t.Errorf("unexpected §3.3 violations: %v", vs)
			}
			if !facts.Pure() {
				t.Errorf("kernel reported impure: %v", facts.Impurities())
			}
		})
	}
}
