package apps

// The full-pipeline soak: every kernel kdslgen emits is pushed through
// the complete toolchain — parse/compile, bytecode verification,
// abstract interpretation, b2c lowering, lint, JVM interpretation and
// JIT, the cir evaluator behind the blaze layout, merlin
// materialization, the lint/DSE legality shadow, a short cross-engine
// DSE run, and the blaze runtime — with cross-layer invariants checked
// at every seam. The generator promises validity by construction, so
// any rejection or differential mismatch is a toolchain bug, and the
// failing kernel is automatically shrunk to a minimal reproducer
// written under testdata/soak_failures/.
//
// Knobs (standard go test flags):
//
//	-soak.n     number of generated kernels (default 16; CI runs 200)
//	-soak.seed  generator seed (default 42)
//
// Same seed, same n ⇒ byte-identical kernel set and verdicts.

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"s2fa/internal/absint"
	"s2fa/internal/access"
	"s2fa/internal/b2c"
	"s2fa/internal/blaze"
	"s2fa/internal/bytecode"
	"s2fa/internal/ccache"
	"s2fa/internal/cir"
	"s2fa/internal/depend"
	"s2fa/internal/dse"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/jvmsim"
	"s2fa/internal/kdsl"
	"s2fa/internal/kdslgen"
	"s2fa/internal/lint"
	"s2fa/internal/merlin"
	"s2fa/internal/space"
	"s2fa/internal/spark"
)

var (
	soakN    = flag.Int("soak.n", 16, "generated kernels per soak run")
	soakSeed = flag.Int64("soak.seed", 42, "kdslgen seed for the soak run")
)

const soakTasks = 3

// soakCache is shared across the whole soak population: the cache is
// content-addressed, so distinct generated kernels coexist and shrinker
// re-runs of the same kernel become hits.
var soakCache = ccache.New()

// soakTaskSeed derives the per-kernel input seed from the run seed and
// the kernel identity (FNV-1a over the accelerator id), so task batches
// are deterministic per kernel and independent of iteration order.
func soakTaskSeed(seed int64, id string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return seed*9_000_011 + int64(h&0x7fffffffffff)
}

// soakVal packs a generated task into the jvmsim input shape (one field
// bare, several as a tuple), copying arrays so the reference evaluator
// and the VM never share backing stores.
func soakVal(task []kdslgen.FieldVal) jvmsim.Val {
	fs := make([]jvmsim.Val, len(task))
	for i, f := range task {
		if f.IsArr {
			fs[i] = jvmsim.Array(append([]cir.Value(nil), f.Arr...))
		} else {
			fs[i] = jvmsim.Scalar(f.S)
		}
	}
	if len(fs) == 1 {
		return fs[0]
	}
	return jvmsim.Tuple(fs...)
}

// soakSameScalar is bit-exact equality: generated kernels mirror JVM
// arithmetic operation for operation, so even float results may not
// drift by one ulp (NaNs of equal payload compare equal).
func soakSameScalar(a, b cir.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K.IsFloat() {
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
	return a.I == b.I
}

func soakSameVal(a, b jvmsim.Val) bool {
	switch {
	case a.IsTup:
		if !b.IsTup || len(a.Tup) != len(b.Tup) {
			return false
		}
		for i := range a.Tup {
			if !soakSameVal(a.Tup[i], b.Tup[i]) {
				return false
			}
		}
		return true
	case a.IsArr:
		if !b.IsArr || len(a.Arr) != len(b.Arr) {
			return false
		}
		for i := range a.Arr {
			if !soakSameScalar(a.Arr[i], b.Arr[i]) {
				return false
			}
		}
		return true
	default:
		return !b.IsArr && !b.IsTup && soakSameScalar(a.S, b.S)
	}
}

// soakCopyVal deep-copies a value: the reduce combiner accumulates into
// its first argument's array in place, so folds must run on copies to
// keep the per-task outputs intact for later comparisons.
func soakCopyVal(v jvmsim.Val) jvmsim.Val {
	switch {
	case v.IsTup:
		fs := make([]jvmsim.Val, len(v.Tup))
		for i := range v.Tup {
			fs[i] = soakCopyVal(v.Tup[i])
		}
		return jvmsim.Tuple(fs...)
	case v.IsArr:
		return jvmsim.Array(append([]cir.Value(nil), v.Arr...))
	default:
		return v
	}
}

func soakSameField(ref kdslgen.FieldVal, got jvmsim.Val) bool {
	if got.IsTup || ref.IsArr != got.IsArr {
		return false
	}
	if !ref.IsArr {
		return soakSameScalar(ref.S, got.S)
	}
	if len(ref.Arr) != len(got.Arr) {
		return false
	}
	for i := range ref.Arr {
		if !soakSameScalar(ref.Arr[i], got.Arr[i]) {
			return false
		}
	}
	return true
}

// runSoakPipeline drives one kernel through the full toolchain and
// returns ("", "") on success or (stage, detail) naming the first
// broken invariant. It is deliberately free of *testing.T so the
// shrinker can re-run it as its failure predicate: a candidate kernel
// reproduces the failure iff it fails at the same stage.
func runSoakPipeline(k *kdslgen.Kernel, seed int64) (string, string) {
	cls, err := kdsl.CompileSource(k.Source)
	if err != nil {
		return "compile", err.Error()
	}
	if err := bytecode.VerifyClass(cls); err != nil {
		return "verify", err.Error()
	}
	facts, err := absint.AnalyzeClass(cls)
	if err != nil {
		return "absint", err.Error()
	}
	if vs := facts.Violations(); len(vs) != 0 {
		return "absint", fmt.Sprintf("generated kernel has structure violations: %v", vs)
	}
	if !facts.Pure() {
		return "absint", fmt.Sprintf("generated kernel reported impure: %v", facts.Impurities())
	}
	kern, err := b2c.Compile(cls)
	if err != nil {
		return "b2c", err.Error()
	}
	if fs := lint.Lint(kern); fs.HasErrors() {
		return "lint", fmt.Sprintf("%v", fs.Errors())
	}

	// Cache shadow: a deterministic coin per kernel routes roughly half
	// the soak population through the shared content-addressed compile
	// cache — twice, so both the miss and the hit path are exercised.
	// The served bytecode, rendered C, and lint verdicts must be
	// bit-identical to the fresh compile above; the rest of the pipeline
	// then runs on the cache-served kernel, so every downstream
	// differential (JVM, cir evaluator, merlin, DSE, blaze) also vouches
	// for the cached artifact.
	if soakTaskSeed(seed, k.ID)&1 == 0 {
		for pass := 0; pass < 2; pass++ {
			ccls, e, err := soakCache.CompileSource(k.Source, nil, nil)
			if err != nil {
				return "ccache", err.Error()
			}
			if !reflect.DeepEqual(ccls, cls) {
				return "ccache", fmt.Sprintf("pass %d: cached bytecode differs from fresh compile", pass)
			}
			if cir.Print(e.Kernel) != cir.Print(kern) {
				return "ccache", fmt.Sprintf("pass %d: cached kernel renders different C", pass)
			}
			if !reflect.DeepEqual(e.Lint, lint.Lint(kern)) {
				return "ccache", fmt.Sprintf("pass %d: cached lint verdicts differ from fresh", pass)
			}
			kern = e.Kernel
		}
	}

	// Reference semantics vs JVM interpreter, bit-exact per task.
	rng := rand.New(rand.NewSource(soakTaskSeed(seed, k.ID)))
	raw := make([][]kdslgen.FieldVal, soakTasks)
	tasks := make([]jvmsim.Val, soakTasks)
	for i := range raw {
		raw[i] = k.NewTask(rng)
		tasks[i] = soakVal(raw[i])
	}
	vm := jvmsim.New(cls)
	outs := make([]jvmsim.Val, soakTasks)
	refs := make([]kdslgen.FieldVal, soakTasks)
	for i := range tasks {
		got, err := vm.Call(tasks[i])
		if err != nil {
			return "jvm", fmt.Sprintf("task %d: %v", i, err)
		}
		want, err := k.Eval(raw[i])
		if err != nil {
			return "reference", fmt.Sprintf("task %d: %v", i, err)
		}
		if !soakSameField(want, got) {
			return "ref-vs-jvm", fmt.Sprintf("task %d: reference %v, jvm %v", i, want, got)
		}
		outs[i], refs[i] = got, want
	}
	redJVM := soakCopyVal(outs[0])
	if k.HasReduce() {
		refAcc := refs[0]
		for i := 1; i < soakTasks; i++ {
			if redJVM, err = vm.Reduce(redJVM, outs[i]); err != nil {
				return "jvm-reduce", err.Error()
			}
			if refAcc, err = k.EvalReduce(refAcc, refs[i]); err != nil {
				return "reference-reduce", err.Error()
			}
		}
		if !soakSameField(refAcc, redJVM) {
			return "ref-vs-jvm-reduce", fmt.Sprintf("reference %v, jvm %v", refAcc, redJVM)
		}
	}

	// JIT engine vs interpreter, bit-exact including the reduce fold.
	vmJ, err := jvmsim.NewJIT(cls)
	if err != nil {
		return "jit", err.Error()
	}
	outJ, err := vmJ.CallBatch(tasks)
	if err != nil {
		return "jit", err.Error()
	}
	for i := range outs {
		if !soakSameVal(outs[i], outJ[i]) {
			return "jit-vs-interp", fmt.Sprintf("task %d: interp %v, jit %v", i, outs[i], outJ[i])
		}
	}
	if k.HasReduce() {
		redJIT := soakCopyVal(outJ[0])
		for i := 1; i < soakTasks; i++ {
			if redJIT, err = vmJ.Reduce(redJIT, outJ[i]); err != nil {
				return "jit-reduce", err.Error()
			}
		}
		if !soakSameVal(redJVM, redJIT) {
			return "jit-vs-interp-reduce", fmt.Sprintf("interp %v, jit %v", redJVM, redJIT)
		}
	}

	// The cir evaluator behind the blaze layout: serialize, execute,
	// deserialize, compare against the JVM outputs (the map/reduce fold
	// orders agree, so results are bit-exact here too).
	layout := blaze.Layout{Class: cls, Kernel: kern}
	bufs, err := layout.Serialize(tasks)
	if err != nil {
		return "serialize", err.Error()
	}
	for name, out := range layout.AllocOutputs(soakTasks) {
		bufs[name] = out
	}
	ev := cir.NewEvaluator(kern)
	ev.MaxSteps = 2_000_000_000
	if err := ev.Execute(soakTasks, bufs); err != nil {
		return "cir-exec", err.Error()
	}
	if k.HasReduce() {
		got, err := layout.DeserializeReduced(bufs)
		if err != nil {
			return "deserialize", err.Error()
		}
		if !soakSameVal(redJVM, got) {
			return "cir-vs-jvm", fmt.Sprintf("reduced: jvm %v, kernel %v", redJVM, got)
		}
	} else {
		res, err := layout.Deserialize(bufs, soakTasks)
		if err != nil {
			return "deserialize", err.Error()
		}
		for i := range res {
			if !soakSameVal(outs[i], res[i]) {
				return "cir-vs-jvm", fmt.Sprintf("task %d: jvm %v, kernel %v", i, outs[i], res[i])
			}
		}
	}

	// Merlin materialization must preserve semantics for any directive
	// set it accepts (structural rejections are legitimate). Transforms
	// may reassociate float arithmetic, so this seam alone tolerates
	// relative error instead of demanding bit equality.
	mrng := rand.New(rand.NewSource(soakTaskSeed(seed, k.ID) + 1))
	for trial := 0; trial < 2; trial++ {
		d := merlin.Directives{Loops: map[string]cir.LoopOpt{}, BitWidths: map[string]int{}}
		for _, li := range kern.Loops() {
			var opt cir.LoopOpt
			if mrng.Intn(2) == 0 {
				opt.Parallel = 1 + mrng.Intn(3)
			}
			if mrng.Intn(3) == 0 && li.TripCount() > 3 {
				opt.Tile = 2 + mrng.Intn(3)
			}
			if mrng.Intn(3) == 0 {
				opt.Pipeline = cir.PipeOn
			}
			d.Loops[li.ID] = opt
		}
		xk, err := merlin.Materialize(kern, d)
		if err != nil {
			continue
		}
		xbufs, err := layout.Serialize(tasks)
		if err != nil {
			return "serialize", err.Error()
		}
		for name, out := range layout.AllocOutputs(soakTasks) {
			xbufs[name] = out
		}
		xev := cir.NewEvaluator(xk)
		xev.MaxSteps = 2_000_000_000
		if err := xev.Execute(soakTasks, xbufs); err != nil {
			return "materialize-exec", fmt.Sprintf("directives %v: %v", d.Loops, err)
		}
		for _, p := range kern.Params {
			if !p.IsOutput {
				continue
			}
			bb, xb := bufs[p.Name], xbufs[p.Name]
			for i := range bb {
				if p.Elem.IsFloat() {
					if math.Abs(bb[i].AsFloat()-xb[i].AsFloat()) > 1e-6*(1+math.Abs(bb[i].AsFloat())) {
						return "materialize", fmt.Sprintf("directives %v changed %s[%d]: %v -> %v",
							d.Loops, p.Name, i, bb[i], xb[i])
					}
				} else if bb[i].AsInt() != xb[i].AsInt() {
					return "materialize", fmt.Sprintf("directives %v changed %s[%d]: %v -> %v",
						d.Loops, p.Name, i, bb[i], xb[i])
				}
			}
		}
	}

	// Lint-shadow: every design point the verifier rejects with an error
	// must also be rejected dynamically (Annotate fails or HLS reports
	// infeasible) — the no-false-positive contract the DSE pruner rests
	// on, here enforced over generated structure instead of the
	// hand-written workloads.
	dev := fpga.VU9P()
	sp := space.Identify(kern)
	chk := lint.NewChecker(kern)
	lrng := rand.New(rand.NewSource(soakTaskSeed(seed, k.ID) + 2))
	var pts []space.Point
	for i := 0; i < 8; i++ {
		pts = append(pts, sp.RandomPoint(lrng))
	}
	for i := range sp.Params {
		p := &sp.Params[i]
		if p.Kind != space.FactorPipeline {
			continue
		}
		pt := sp.RandomPoint(lrng)
		pt[p.Name] = space.PipeFlattenVal
		pts = append(pts, pt)
	}
	for _, pt := range pts {
		d := sp.Directives(pt)
		fs := chk.Directives(d.Loops, d.BitWidths)
		if !fs.HasErrors() {
			continue
		}
		ann, err := merlin.Annotate(kern, d)
		if err != nil {
			continue // rejected at annotation: the shadow holds
		}
		if rep := hls.Estimate(ann, dev, 256, hls.Options{}); rep.Feasible {
			return "lint-shadow", fmt.Sprintf("point %v lint-rejected but Annotate and HLS accept it:\n%v", pt, fs.Errors())
		}
	}

	// Short cross-engine DSE: the parallel engine's outcome must be
	// byte-identical to the sequential reference.
	cfg := dse.S2FAConfig(seed)
	cfg.Device = dev
	cfg.MaxEvaluations = 24
	spSeq := space.Identify(kern)
	ref := outcomeFingerprint(dse.Run(kern, spSeq,
		dse.NewEvaluator(kern, spSeq, dev, 256, hls.Options{}), cfg))
	spPar := space.Identify(kern)
	pcfg := cfg
	pcfg.Engine = dse.EngineParallel
	pcfg.Parallelism = 4
	par := outcomeFingerprint(dse.Run(kern, spPar,
		dse.NewPureEvaluator(kern, spPar, dev, 256, hls.Options{}), pcfg))
	if ref != par {
		return "dse-determinism", fmt.Sprintf("--- sequential\n%s--- parallel\n%s", ref, par)
	}

	// End to end through the blaze runtime: a pure generated kernel must
	// offload (no fallback) and return the JVM answer.
	rep := hls.Estimate(kern, dev, soakTasks, hls.Options{})
	mgr := blaze.NewManager(dev)
	acc := &blaze.Accelerator{ID: cls.ID, Layout: layout, Design: rep.Design(k.Name)}
	if err := mgr.Register(acc); err != nil {
		return "blaze", err.Error()
	}
	rdd := spark.Parallelize(spark.NewContext(), tasks, 2)
	if k.HasReduce() {
		got, stats, err := blaze.Wrap(rdd, mgr).ReduceAcc(jvmsim.New(cls))
		if err != nil {
			return "blaze", err.Error()
		}
		if !stats.UsedFPGA {
			return "blaze", "pure kernel fell back to the JVM: " + stats.Fallback
		}
		if !soakSameVal(redJVM, got) {
			return "blaze-vs-jvm", fmt.Sprintf("reduced: jvm %v, blaze %v", redJVM, got)
		}
	} else {
		got, stats, err := blaze.Wrap(rdd, mgr).MapAcc(jvmsim.New(cls))
		if err != nil {
			return "blaze", err.Error()
		}
		if !stats.UsedFPGA {
			return "blaze", "pure kernel fell back to the JVM: " + stats.Fallback
		}
		for i := range got {
			if !soakSameVal(outs[i], got[i]) {
				return "blaze-vs-jvm", fmt.Sprintf("task %d: jvm %v, blaze %v", i, outs[i], got[i])
			}
		}
	}
	return "", ""
}

// runSoakOracles replays the kernel on the traced JVM with the three
// analysis oracles attached (absint interval soundness, dependence
// verdicts, access-pattern claims) — the one-sided contracts that need
// a concrete execution to falsify.
func runSoakOracles(t *testing.T, k *kdslgen.Kernel, seed int64) {
	t.Helper()
	cls, err := kdsl.CompileSource(k.Source)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := b2c.Compile(cls)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := absint.AnalyzeClass(cls)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(soakTaskSeed(seed, k.ID)))
	tasks := make([]jvmsim.Val, soakTasks)
	for i := range tasks {
		tasks[i] = soakVal(k.NewTask(rng))
	}

	vm := jvmsim.New(cls)
	check := &soundnessChecker{t: t, name: k.Name, facts: facts.Call}
	vm.Trace = check.hook
	outs := make([]jvmsim.Val, 0, soakTasks)
	for i, task := range tasks {
		out, err := vm.Call(task)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		outs = append(outs, out)
	}
	if cls.Reduce != nil {
		rcheck := &soundnessChecker{t: t, name: k.Name, facts: facts.Reduce}
		vm.Trace = rcheck.hook
		acc := outs[0]
		for _, o := range outs[1:] {
			if acc, err = vm.Reduce(acc, o); err != nil {
				t.Fatal(err)
			}
		}
	}

	dep := depend.Analyze(kern)
	chains := chainsByPos(kern, cls.Call)
	if len(chains) > 0 {
		rec := &depRecorder{
			call:   cls.Call,
			chains: chains,
			events: map[arrElem][]arrAccess{},
			pin:    map[uintptr][]cir.Value{},
		}
		dvm := jvmsim.New(cls)
		dvm.Trace = rec.hook
		for i, task := range tasks {
			rec.task = int64(i)
			if _, err := dvm.Call(task); err != nil {
				t.Fatalf("task %d: %v", i, err)
			}
		}
		rec.check(t, k.Name, dep)
	}

	acc := access.Analyze(kern)
	if sites := claimedSites(kern, acc, cls.Call); len(sites) > 0 {
		rec := &accRecorder{
			call:   cls.Call,
			sites:  sites,
			events: map[cir.Pos][]accEvent{},
			pin:    map[uintptr][]cir.Value{},
		}
		avm := jvmsim.New(cls)
		avm.Trace = rec.hook
		for i, task := range tasks {
			rec.task = int64(i)
			if _, err := avm.Call(task); err != nil {
				t.Fatalf("task %d: %v", i, err)
			}
		}
		rec.check(t, k.Name)
	}
}

// writeSoakFailure persists a shrunk reproducer and returns its path.
func writeSoakFailure(t *testing.T, dir string, k *kdslgen.Kernel) string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("mkdir %s: %v", dir, err)
	}
	path := filepath.Join(dir, k.Name+".kdsl")
	if err := os.WriteFile(path, []byte(k.Source), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	return path
}

// TestSoakGeneratedKernels is the soak driver: -soak.n kernels from
// -soak.seed, each through the full pipeline plus the trace oracles. On
// a pipeline failure the kernel is shrunk against "fails at the same
// stage" and the minimal source lands in testdata/soak_failures/ (CI
// uploads that directory as an artifact).
func TestSoakGeneratedKernels(t *testing.T) {
	seed, n := *soakSeed, *soakN
	kernels := kdslgen.Generate(seed, n)
	for i, k := range kernels {
		i, k := i, k
		t.Run(fmt.Sprintf("K%03d_%s", i, strings.Join(k.Tags, "_")), func(t *testing.T) {
			stage, detail := runSoakPipeline(k, seed)
			if stage != "" {
				min := k.Shrink(func(c *kdslgen.Kernel) bool {
					s, _ := runSoakPipeline(c, seed)
					return s == stage
				})
				path := writeSoakFailure(t, filepath.Join("testdata", "soak_failures"), min)
				t.Fatalf("stage %s: %s\nminimal reproducer (%d statements) written to %s:\n%s",
					stage, detail, min.StmtCount(), path, min.Source)
			}
			runSoakOracles(t, k, seed)
		})
	}
}

// TestSoakNegatives drives the generator's tagged invalid kernels
// through the same front end and asserts each is rejected at its tagged
// stage; purity cases additionally exercise the blaze gate: they run
// fine on the JVM (matching their reference semantics) but must never
// offload even with an accelerator registered.
func TestSoakNegatives(t *testing.T) {
	for _, neg := range kdslgen.GenerateNegatives(*soakSeed, 11) {
		neg := neg
		t.Run(fmt.Sprintf("%s_%s", neg.Name, neg.Stage), func(t *testing.T) {
			cls, err := kdsl.CompileSource(neg.Source)
			switch neg.Stage {
			case kdslgen.RejectParse, kdslgen.RejectCheck:
				if err == nil {
					t.Fatalf("%s case compiled; want rejection (%s)", neg.Stage, neg.Why)
				}
				return
			}
			// Purity: compiles, runs on the JVM, never offloads.
			if err != nil {
				t.Fatalf("purity case must compile, got: %v", err)
			}
			facts, err := absint.AnalyzeClass(cls)
			if err != nil {
				t.Fatal(err)
			}
			if facts.Pure() {
				t.Fatalf("purity case reported pure (%s)", neg.Why)
			}
			mgr := blaze.NewManager(fpga.VU9P())
			acc := &blaze.Accelerator{ID: cls.ID, Layout: blaze.Layout{Class: cls},
				Design: &fpga.Design{CyclesPerTask: 1, FreqMHz: 100, BytesPerTask: 1}}
			if err := mgr.Register(acc); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(soakTaskSeed(*soakSeed, neg.Name)))
			raw := neg.Kernel.NewTask(rng)
			tasks := []jvmsim.Val{soakVal(raw)}
			// The reference evaluator aliases (and here mutates) its
			// input arrays, so it runs against its own copy.
			want, err := neg.Kernel.Eval(raw)
			if err != nil {
				t.Fatal(err)
			}
			out, stats, err := blaze.Wrap(spark.Parallelize(spark.NewContext(), tasks, 1), mgr).
				MapAcc(jvmsim.New(cls))
			if err != nil {
				t.Fatal(err)
			}
			if stats.UsedFPGA || !strings.Contains(stats.Fallback, "impure") {
				t.Fatalf("impure kernel offloaded or wrong diagnostic: %+v", stats)
			}
			if len(out) != 1 || !soakSameField(want, out[0]) {
				t.Fatalf("JVM fallback diverged from reference: %v vs %v", want, out)
			}
		})
	}
}

// TestSoakShrinkArtifact proves the failure path end to end without a
// real toolchain bug: an injected reference-evaluator defect (Sub
// computed as Add) makes a generated kernel fail ref-vs-jvm, the
// shrinker reduces it, and the reproducer file appears where CI looks.
func TestSoakShrinkArtifact(t *testing.T) {
	var victim *kdslgen.Kernel
	for _, k := range kdslgen.Generate(11, 24) {
		if s, _ := runSoakPipeline(k, 11); s != "" {
			t.Fatalf("kernel %s fails the clean pipeline", k.Name)
		}
		bad := k.WithEvalDefect()
		if s, _ := runSoakPipeline(bad, 11); s == "ref-vs-jvm" {
			victim = bad
			break
		}
	}
	if victim == nil {
		t.Fatal("no generated kernel is sensitive to the injected Sub-as-Add defect")
	}
	min := victim.Shrink(func(c *kdslgen.Kernel) bool {
		s, _ := runSoakPipeline(c, 11)
		return s == "ref-vs-jvm"
	})
	if min.StmtCount() > victim.StmtCount() {
		t.Errorf("shrinking grew the kernel: %d -> %d statements", victim.StmtCount(), min.StmtCount())
	}
	dir := t.TempDir()
	path := writeSoakFailure(t, dir, min)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != min.Source {
		t.Error("artifact does not round-trip the minimal source")
	}
	t.Logf("injected defect shrunk to %d statements at %s", min.StmtCount(), path)
}
