package apps

import "math"

// Reference implementations in plain Go, mirroring the DSL kernels
// statement for statement (including floating-point evaluation order) so
// differential tests can require exact agreement across
// JVM-sim -> generated-C -> transformed-C executions.

// aesSbox is the AES forward S-box.
var aesSbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// ExpandAESKey performs AES-128 key expansion, returning the 176
// round-key bytes (11 round keys of 16 bytes each).
func ExpandAESKey(key []byte) []byte {
	rcon := [10]byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}
	out := make([]byte, 176)
	copy(out, key)
	for i := 16; i < 176; i += 4 {
		var t [4]byte
		copy(t[:], out[i-4:i])
		if i%16 == 0 {
			// RotWord + SubWord + Rcon.
			t[0], t[1], t[2], t[3] = aesSbox[t[1]], aesSbox[t[2]], aesSbox[t[3]], aesSbox[t[0]]
			t[0] ^= rcon[i/16-1]
		}
		for j := 0; j < 4; j++ {
			out[i+j] = out[i-16+j] ^ t[j]
		}
	}
	return out
}

// SWRef mirrors the Smith-Waterman kernel on one pair.
func SWRef(a, b []byte) (out1, out2 []byte) {
	const m = 129
	H := make([]int32, m*m)
	D := make([]int32, m*m)
	var maxV, maxI, maxJ int32
	for i := int32(1); i < m; i++ {
		for j := int32(1); j < m; j++ {
			sc := int32(-1)
			if a[i-1] == b[j-1] {
				sc = 2
			}
			dg := H[(i-1)*m+(j-1)] + sc
			up := H[(i-1)*m+j] - 1
			lf := H[i*m+(j-1)] - 1
			v, d := int32(0), int32(0)
			if dg > v {
				v, d = dg, 1
			}
			if up > v {
				v, d = up, 2
			}
			if lf > v {
				v, d = lf, 3
			}
			H[i*m+j] = v
			D[i*m+j] = d
			if v > maxV {
				maxV, maxI, maxJ = v, i, j
			}
		}
	}
	out1 = make([]byte, SWOut)
	out2 = make([]byte, SWOut)
	ti, tj := maxI, maxJ
	p := int32(SWOut - 1)
	for ti > 0 && tj > 0 && D[ti*m+tj] != 0 && p >= 0 {
		switch D[ti*m+tj] {
		case 1:
			out1[p] = a[ti-1]
			out2[p] = b[tj-1]
			ti--
			tj--
		case 2:
			out1[p] = a[ti-1]
			out2[p] = '-'
			ti--
		default:
			out1[p] = '-'
			out2[p] = b[tj-1]
			tj--
		}
		p--
	}
	return out1, out2
}

// KMeansRef mirrors the KMeans assignment kernel.
func KMeansRef(point []float64) int {
	best := 0
	bestDist := 1.0e30
	for k := 0; k < KMeansK; k++ {
		dist := 0.0
		for j := 0; j < KMeansD; j++ {
			t := point[j] - KMeansCenters[k*KMeansD+j]
			dist = dist + t*t
		}
		if dist < bestDist {
			bestDist = dist
			best = k
		}
	}
	return best
}

// KNNRef mirrors the 3-NN vote kernel.
func KNNRef(q []float64) int {
	d1, d2, d3 := 1.0e30, 1.0e30, 1.0e30
	var l1, l2, l3 int
	for t := 0; t < KNNTrain; t++ {
		dist := 0.0
		for j := 0; j < KNND; j++ {
			df := q[j] - KNNPoints[t*KNND+j]
			dist = dist + df*df
		}
		switch {
		case dist < d1:
			d3, l3 = d2, l2
			d2, l2 = d1, l1
			d1, l1 = dist, KNNLabels[t]
		case dist < d2:
			d3, l3 = d2, l2
			d2, l2 = dist, KNNLabels[t]
		case dist < d3:
			d3, l3 = dist, KNNLabels[t]
		}
	}
	vote := l1
	if l2 == l3 && l2 != l1 {
		vote = l2
	}
	return vote
}

// LRRef mirrors the logistic-regression gradient kernel.
func LRRef(x []float64, y float64) []float64 {
	dot := 0.0
	for j := 0; j < RegD; j++ {
		dot = dot + RegWeights[j]*x[j]
	}
	s := 1.0 / (1.0 + math.Exp(-dot))
	coef := s - y
	g := make([]float64, RegD)
	for j := 0; j < RegD; j++ {
		g[j] = coef * x[j]
	}
	return g
}

// SVMRef mirrors the hinge-gradient kernel.
func SVMRef(x []float64, y float64) []float64 {
	dot := 0.0
	for j := 0; j < RegD; j++ {
		dot = dot + RegWeights[j]*x[j]
	}
	margin := y * dot
	g := make([]float64, RegD)
	if margin < 1.0 {
		for j := 0; j < RegD; j++ {
			g[j] = 0.01*RegWeights[j] - y*x[j]
		}
	} else {
		for j := 0; j < RegD; j++ {
			g[j] = 0.01 * RegWeights[j]
		}
	}
	return g
}

// LLSRef mirrors the least-squares gradient kernel.
func LLSRef(x []float64, y float64) []float64 {
	dot := 0.0
	for j := 0; j < RegD; j++ {
		dot = dot + RegWeights[j]*x[j]
	}
	coef := dot - y
	g := make([]float64, RegD)
	for j := 0; j < RegD; j++ {
		g[j] = coef * x[j]
	}
	return g
}

// PRRef mirrors the PageRank update kernel.
func PRRef(ranks []float64, degs []int32) float64 {
	s := 0.0
	for e := 0; e < PRDeg; e++ {
		if degs[e] > 0 {
			s = s + ranks[e]/float64(degs[e])
		}
	}
	return 0.15 + 0.85*s
}

// AESRef mirrors the table-based AES-128 ECB block encryption (validated
// against crypto/aes in the test suite).
func AESRef(block []byte) []byte {
	rk := ExpandAESKey(AESKey)
	shift := [16]int{0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11}
	var st [16]int
	for i := 0; i < 16; i++ {
		st[i] = int(block[i]) ^ int(rk[i])
	}
	for r := 1; r < 10; r++ {
		var sb, sh [16]int
		for i := 0; i < 16; i++ {
			sb[i] = int(aesSbox[st[i]])
		}
		for i := 0; i < 16; i++ {
			sh[i] = sb[shift[i]]
		}
		for c := 0; c < 4; c++ {
			a0, a1, a2, a3 := sh[c*4], sh[c*4+1], sh[c*4+2], sh[c*4+3]
			b0 := ((a0 << 1) ^ (((a0 >> 7) & 1) * 27)) & 255
			b1 := ((a1 << 1) ^ (((a1 >> 7) & 1) * 27)) & 255
			b2 := ((a2 << 1) ^ (((a2 >> 7) & 1) * 27)) & 255
			b3 := ((a3 << 1) ^ (((a3 >> 7) & 1) * 27)) & 255
			st[c*4] = b0 ^ (b1 ^ a1) ^ a2 ^ a3
			st[c*4+1] = a0 ^ b1 ^ (b2 ^ a2) ^ a3
			st[c*4+2] = a0 ^ a1 ^ b2 ^ (b3 ^ a3)
			st[c*4+3] = (b0 ^ a0) ^ a1 ^ a2 ^ b3
		}
		for i := 0; i < 16; i++ {
			st[i] ^= int(rk[r*16+i])
		}
	}
	var fs [16]int
	for i := 0; i < 16; i++ {
		fs[i] = int(aesSbox[st[i]])
	}
	out := make([]byte, 16)
	for i := 0; i < 16; i++ {
		out[i] = byte(fs[shift[i]] ^ int(rk[160+i]))
	}
	return out
}
