package apps

import (
	"crypto/aes"
	"math"
	"math/rand"
	"testing"

	"s2fa/internal/blaze"
	"s2fa/internal/cir"
	"s2fa/internal/jvmsim"
)

// TestAllAppsCompile checks every workload flows through the full
// front-end: DSL -> bytecode -> HLS-C kernel.
func TestAllAppsCompile(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			cls, err := a.Class()
			if err != nil {
				t.Fatalf("class: %v", err)
			}
			if cls.ID != a.ID {
				t.Errorf("class ID = %q, want %q", cls.ID, a.ID)
			}
			k, err := a.Kernel()
			if err != nil {
				t.Fatalf("kernel: %v", err)
			}
			if k.TaskLoopID != "L0" {
				t.Errorf("task loop = %q", k.TaskLoopID)
			}
			if len(k.Params) < 2 {
				t.Errorf("kernel has %d params", len(k.Params))
			}
			if len(cir.Print(k)) == 0 {
				t.Error("empty kernel source")
			}
		})
	}
}

// runBoth executes n generated tasks through the JVM simulator and the
// generated kernel (via the Blaze layout), returning both result sets.
func runBoth(t *testing.T, a *App, n int) (jvm []jvmsim.Val, kernelBufs map[string][]cir.Value) {
	t.Helper()
	cls, err := a.Class()
	if err != nil {
		t.Fatalf("class: %v", err)
	}
	k, err := a.Kernel()
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	tasks := a.Gen(rng, n)

	vm := jvmsim.New(cls)
	jvm = make([]jvmsim.Val, n)
	for i, task := range tasks {
		v, err := vm.Call(task)
		if err != nil {
			t.Fatalf("jvm task %d: %v", i, err)
		}
		jvm[i] = v
	}

	layout := blaze.Layout{Class: cls, Kernel: k}
	bufs, err := layout.Serialize(tasks)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	for name, out := range layout.AllocOutputs(n) {
		bufs[name] = out
	}
	ev := cir.NewEvaluator(k)
	ev.MaxSteps = 2_000_000_000
	if err := ev.Execute(n, bufs); err != nil {
		t.Fatalf("kernel eval: %v\n%s", err, cir.Print(k))
	}
	return jvm, bufs
}

// expectValsEqual compares a JVM value against a kernel buffer segment.
func expectValsEqual(t *testing.T, app string, task int, jvmV jvmsim.Val, seg []cir.Value) {
	t.Helper()
	if jvmV.IsArr {
		if len(jvmV.Arr) != len(seg) {
			t.Fatalf("%s task %d: length %d vs %d", app, task, len(jvmV.Arr), len(seg))
		}
		for i := range seg {
			requireClose(t, app, task, i, jvmV.Arr[i], seg[i])
		}
		return
	}
	if len(seg) != 1 {
		t.Fatalf("%s task %d: scalar vs buffer len %d", app, task, len(seg))
	}
	requireClose(t, app, task, 0, jvmV.S, seg[0])
}

func requireClose(t *testing.T, app string, task, i int, a, b cir.Value) {
	t.Helper()
	if a.K.IsFloat() {
		if math.Abs(a.AsFloat()-b.AsFloat()) > 1e-9*(1+math.Abs(a.AsFloat())) {
			t.Fatalf("%s task %d elem %d: jvm=%v kernel=%v", app, task, i, a, b)
		}
		return
	}
	if a.AsInt() != b.AsInt() {
		t.Fatalf("%s task %d elem %d: jvm=%v kernel=%v", app, task, i, a, b)
	}
}

// TestDifferentialJVMvsKernel is the backbone equivalence check of the
// whole reproduction: for every workload, the bytecode executed on the
// JVM simulator and the generated HLS-C kernel executed on the IR
// evaluator must agree.
func TestDifferentialJVMvsKernel(t *testing.T) {
	const n = 6
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			cls, _ := a.Class()
			k, _ := a.Kernel()
			jvm, bufs := runBoth(t, a, n)
			layout := blaze.Layout{Class: cls, Kernel: k}

			if k.Pattern == cir.PatternReduce {
				// Fold JVM results with the class's reduce method.
				vm := jvmsim.New(cls)
				acc := jvm[0]
				for _, v := range jvm[1:] {
					var err error
					acc, err = vm.Reduce(acc, v)
					if err != nil {
						t.Fatalf("jvm reduce: %v", err)
					}
				}
				got, err := layout.DeserializeReduced(bufs)
				if err != nil {
					t.Fatalf("deserialize reduced: %v", err)
				}
				if !acc.IsArr || !got.IsArr {
					t.Fatalf("reduce results not arrays: %v %v", acc, got)
				}
				for i := range acc.Arr {
					if math.Abs(acc.Arr[i].AsFloat()-got.Arr[i].AsFloat()) > 1e-9 {
						t.Fatalf("reduce elem %d: jvm=%v kernel=%v", i, acc.Arr[i], got.Arr[i])
					}
				}
				return
			}

			results, err := layout.Deserialize(bufs, n)
			if err != nil {
				t.Fatalf("deserialize: %v", err)
			}
			for task := 0; task < n; task++ {
				jv, kv := jvm[task], results[task]
				if jv.IsTup {
					if !kv.IsTup || len(jv.Tup) != len(kv.Tup) {
						t.Fatalf("task %d: tuple shape mismatch", task)
					}
					for f := range jv.Tup {
						seg := kv.Tup[f].Arr
						if !kv.Tup[f].IsArr {
							seg = []cir.Value{kv.Tup[f].S}
						}
						expectValsEqual(t, a.Name, task, jv.Tup[f], seg)
					}
					continue
				}
				seg := kv.Arr
				if !kv.IsArr {
					seg = []cir.Value{kv.S}
				}
				expectValsEqual(t, a.Name, task, jv, seg)
			}
		})
	}
}

// TestJVMAgainstGoReferences checks the JVM path against the independent
// Go reference implementations.
func TestJVMAgainstGoReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 4

	t.Run("S-W", func(t *testing.T) {
		a := Get("S-W")
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		vm := jvmsim.New(cls)
		for _, task := range a.Gen(rng, n) {
			res, err := vm.Call(task)
			if err != nil {
				t.Fatal(err)
			}
			aBytes := valsToBytes(task.Tup[0].Arr)
			bBytes := valsToBytes(task.Tup[1].Arr)
			w1, w2 := SWRef(aBytes, bBytes)
			g1 := valsToBytes(res.Tup[0].Arr)
			g2 := valsToBytes(res.Tup[1].Arr)
			if string(g1) != string(w1) || string(g2) != string(w2) {
				t.Fatalf("alignment mismatch:\n%q\n%q\nvs\n%q\n%q", g1, g2, w1, w2)
			}
		}
	})

	t.Run("KMeans", func(t *testing.T) {
		a := Get("KMeans")
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		vm := jvmsim.New(cls)
		for _, task := range a.Gen(rng, 16) {
			res, err := vm.Call(task)
			if err != nil {
				t.Fatal(err)
			}
			want := KMeansRef(valsToFloats(task.Arr))
			if int(res.S.AsInt()) != want {
				t.Fatalf("assignment %d != %d", res.S.AsInt(), want)
			}
		}
	})

	t.Run("KNN", func(t *testing.T) {
		a := Get("KNN")
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		vm := jvmsim.New(cls)
		for _, task := range a.Gen(rng, 16) {
			res, err := vm.Call(task)
			if err != nil {
				t.Fatal(err)
			}
			want := KNNRef(valsToFloats(task.Arr))
			if int(res.S.AsInt()) != want {
				t.Fatalf("vote %d != %d", res.S.AsInt(), want)
			}
		}
	})

	regChecks := map[string]func([]float64, float64) []float64{
		"LR": LRRef, "SVM": SVMRef, "LLS": LLSRef,
	}
	for name, ref := range regChecks {
		name, ref := name, ref
		t.Run(name, func(t *testing.T) {
			a := Get(name)
			cls, err := a.Class()
			if err != nil {
				t.Fatal(err)
			}
			vm := jvmsim.New(cls)
			for _, task := range a.Gen(rng, 8) {
				res, err := vm.Call(task)
				if err != nil {
					t.Fatal(err)
				}
				x := valsToFloats(task.Tup[0].Arr)
				y := task.Tup[1].S.AsFloat()
				want := ref(x, y)
				got := valsToFloats(res.Arr)
				for j := range want {
					if math.Abs(want[j]-got[j]) > 1e-12 {
						t.Fatalf("grad[%d]: %g != %g", j, got[j], want[j])
					}
				}
			}
		})
	}

	t.Run("PR", func(t *testing.T) {
		a := Get("PR")
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		vm := jvmsim.New(cls)
		for _, task := range a.Gen(rng, 8) {
			res, err := vm.Call(task)
			if err != nil {
				t.Fatal(err)
			}
			ranks := valsToFloats(task.Tup[0].Arr)
			degs := make([]int32, PRDeg)
			for i, v := range task.Tup[1].Arr {
				degs[i] = int32(v.AsInt())
			}
			want := PRRef(ranks, degs)
			if math.Abs(res.S.AsFloat()-want) > 1e-12 {
				t.Fatalf("rank %g != %g", res.S.AsFloat(), want)
			}
		}
	})

	t.Run("AES", func(t *testing.T) {
		a := Get("AES")
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		vm := jvmsim.New(cls)
		for _, task := range a.Gen(rng, 8) {
			res, err := vm.Call(task)
			if err != nil {
				t.Fatal(err)
			}
			block := valsToBytes(task.Arr)
			want := AESRef(block)
			got := valsToBytes(res.Arr)
			if string(got) != string(want) {
				t.Fatalf("aes mismatch: % x vs % x", got, want)
			}
		}
	})

	t.Run("Conv", func(t *testing.T) {
		a := Get("Conv")
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		vm := jvmsim.New(cls)
		for _, task := range a.Gen(rng, 8) {
			res, err := vm.Call(task)
			if err != nil {
				t.Fatal(err)
			}
			want := ConvRef(valsToFloats(task.Arr))
			got := valsToFloats(res.Arr)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("conv[%d]: %g != %g", i, got[i], want[i])
				}
			}
		}
	})

	t.Run("Hist", func(t *testing.T) {
		a := Get("Hist")
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		vm := jvmsim.New(cls)
		for _, task := range a.Gen(rng, 8) {
			res, err := vm.Call(task)
			if err != nil {
				t.Fatal(err)
			}
			xs := make([]int32, len(task.Arr))
			for i, v := range task.Arr {
				xs[i] = int32(v.AsInt())
			}
			want := HistRef(xs)
			total := int32(0)
			for i, w := range want {
				if int32(res.Arr[i].AsInt()) != w {
					t.Fatalf("bin %d: %d != %d", i, res.Arr[i].AsInt(), w)
				}
				total += w
			}
			if total != HistN {
				t.Fatalf("bins sum to %d, want %d", total, HistN)
			}
		}
	})

	t.Run("TopK", func(t *testing.T) {
		a := Get("TopK")
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		vm := jvmsim.New(cls)
		for _, task := range a.Gen(rng, 8) {
			res, err := vm.Call(task)
			if err != nil {
				t.Fatal(err)
			}
			want := TopKRef(valsToFloats(task.Arr))
			got := valsToFloats(res.Arr)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("best[%d]: %g != %g", i, got[i], want[i])
				}
				if i > 0 && got[i] > got[i-1] {
					t.Fatalf("top-k not descending at %d: %g > %g", i, got[i], got[i-1])
				}
			}
		}
	})

	t.Run("StrSearch", func(t *testing.T) {
		a := Get("StrSearch")
		cls, err := a.Class()
		if err != nil {
			t.Fatal(err)
		}
		vm := jvmsim.New(cls)
		for _, task := range a.Gen(rng, 8) {
			res, err := vm.Call(task)
			if err != nil {
				t.Fatal(err)
			}
			want := StrSearchRef(valsToBytes(task.Arr))
			if int(res.S.AsInt()) != want {
				t.Fatalf("count %d != %d", res.S.AsInt(), want)
			}
			if want < 1 {
				t.Fatalf("generator planted no matches")
			}
		}
	})
}

// TestAESRefAgainstStdlib pins the table-based AES implementation to
// crypto/aes.
func TestAESRefAgainstStdlib(t *testing.T) {
	c, err := aes.NewCipher(AESKey)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 64; i++ {
		block := make([]byte, 16)
		rng.Read(block)
		want := make([]byte, 16)
		c.Encrypt(want, block)
		got := AESRef(block)
		if string(got) != string(want) {
			t.Fatalf("block %d: % x != % x", i, got, want)
		}
	}
}

func valsToBytes(vs []cir.Value) []byte {
	out := make([]byte, len(vs))
	for i, v := range vs {
		out[i] = byte(v.AsInt())
	}
	return out
}

func valsToFloats(vs []cir.Value) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v.AsFloat()
	}
	return out
}
