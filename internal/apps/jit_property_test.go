package apps

import (
	"math/rand"
	"reflect"
	"testing"

	"s2fa/internal/jvmsim"
)

// runEngines pushes the same task batch through a fresh interpreter VM
// and a fresh JIT VM of the app's class and returns both (outputs,
// reduced value, counts, error). Reduction folds the map outputs when
// the class has a reduce method, exercising the second compiled method.
func runEngines(tb testing.TB, a *App, tasks []jvmsim.Val) (outI, outJ []jvmsim.Val, redI, redJ jvmsim.Val, cI, cJ jvmsim.Counts, errI, errJ error) {
	tb.Helper()
	cls, err := a.Class()
	if err != nil {
		tb.Fatalf("%s: class: %v", a.Name, err)
	}
	vmI := jvmsim.New(cls)
	vmJ, err := jvmsim.NewJIT(cls)
	if err != nil {
		tb.Fatalf("%s: NewJIT: %v", a.Name, err)
	}
	if !vmJ.JITEnabled() {
		tb.Fatalf("%s: JIT not enabled", a.Name)
	}
	outI, errI = vmI.CallBatch(tasks)
	outJ, errJ = vmJ.CallBatch(tasks)
	if cls.Reduce != nil && errI == nil && errJ == nil && len(tasks) > 1 {
		redI = outI[0]
		for _, v := range outI[1:] {
			if redI, errI = vmI.Reduce(redI, v); errI != nil {
				break
			}
		}
		redJ = outJ[0]
		for _, v := range outJ[1:] {
			if redJ, errJ = vmJ.Reduce(redJ, v); errJ != nil {
				break
			}
		}
	}
	return outI, outJ, redI, redJ, vmI.Counts, vmJ.Counts, errI, errJ
}

// diffEngines asserts the two engine runs are byte-identical: same
// outputs, same reduced value, same Counts, same errors (text included).
func diffEngines(tb testing.TB, a *App, tasks []jvmsim.Val) {
	tb.Helper()
	outI, outJ, redI, redJ, cI, cJ, errI, errJ := runEngines(tb, a, tasks)
	if (errI == nil) != (errJ == nil) {
		tb.Fatalf("%s: error divergence: interp=%v jit=%v", a.Name, errI, errJ)
	}
	if errI != nil {
		if errI.Error() != errJ.Error() {
			tb.Fatalf("%s: error text divergence:\n  interp: %v\n  jit:    %v", a.Name, errI, errJ)
		}
	} else {
		if !reflect.DeepEqual(outI, outJ) {
			tb.Fatalf("%s: output divergence over %d tasks", a.Name, len(tasks))
		}
		if !reflect.DeepEqual(redI, redJ) {
			tb.Fatalf("%s: reduce divergence: interp=%v jit=%v", a.Name, redI, redJ)
		}
	}
	if cI != cJ {
		tb.Fatalf("%s: counts divergence:\n  interp: %+v\n  jit:    %+v", a.Name, cI, cJ)
	}
}

// TestJITDifferentialAllApps is the acceptance property: for every
// workload and seeds {1, 42, 7}, interpreter and JIT produce
// byte-identical outputs, reduced values, and Counts. Counts feed the
// cost model feeding JVMSeconds, so this is what keeps the Fig. 3/4
// numbers identical whichever engine the suite runs.
func TestJITDifferentialAllApps(t *testing.T) {
	const nTasks = 24
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, seed := range []int64{1, 42, 7} {
				tasks := a.Gen(rand.New(rand.NewSource(seed)), nTasks)
				diffEngines(t, a, tasks)
			}
		})
	}
}

// FuzzJITvsInterp feeds fuzzer-chosen seeds and batch shapes into a
// fuzzer-chosen app kernel and requires bit-for-bit agreement between
// the engines — the CI fuzz job runs this for 30s per push.
func FuzzJITvsInterp(f *testing.F) {
	for _, seed := range []int64{1, 42, 7} {
		for i := range All() {
			f.Add(seed, uint8(i), uint8(8))
		}
	}
	apps := All()
	f.Fuzz(func(t *testing.T, seed int64, appIdx, n uint8) {
		a := apps[int(appIdx)%len(apps)]
		tasks := a.Gen(rand.New(rand.NewSource(seed)), int(n%16)+1)
		diffEngines(t, a, tasks)
	})
}
