package report_test

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/blaze"
	"s2fa/internal/ccache"
	"s2fa/internal/core"
	"s2fa/internal/fpga"
	"s2fa/internal/jvmsim"
	"s2fa/internal/obs"
	"s2fa/internal/report"
	"s2fa/internal/spark"
)

var update = flag.Bool("update", false, "rewrite the golden report in testdata/")

// traceSW runs the full S-W pipeline at seed 42 under an injected
// deterministic clock (1µs per reading), so every NS timestamp — and
// therefore every rendered duration and percentile — is a pure function
// of the code path, not of the machine. The blaze MapAcc batch at the
// end puts the offload story in the trace too.
func traceSW(t *testing.T) ([]obs.Event, *obs.MetricsSnapshot) {
	t.Helper()
	var ns int64
	clock := func() int64 { ns += 1000; return ns }
	reg := obs.NewRegistry()
	var jsonl bytes.Buffer
	tr := obs.New(obs.NewJSONL(&jsonl), obs.WithClock(clock), obs.WithRegistry(reg))

	a := apps.Get("S-W")
	fw := core.New()
	fw.Seed = 42
	fw.Tasks = a.Tasks
	fw.Trace = tr
	b, err := fw.BuildFromSource(a.Source)
	if err != nil {
		t.Fatal(err)
	}
	mgr := blaze.NewManager(fpga.VU9P())
	mgr.Trace = tr
	if err := fw.Deploy(b, mgr); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rdd := spark.Parallelize(spark.NewContext(), a.Gen(rng, 4), 1)
	if _, _, err := blaze.Wrap(rdd, mgr).MapAcc(jvmsim.New(b.Class)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the snapshot through its JSON form, exactly as the
	// s2fa -metrics → s2fa-report pipeline does, so the golden test also
	// covers the integer-to-float64 decode path.
	var mj bytes.Buffer
	if err := reg.WriteJSON(&mj); err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ReadMetricsJSON(&mj)
	if err != nil {
		t.Fatal(err)
	}
	return events, snap
}

// TestReportGolden locks the full markdown explanation of the S-W
// seed-42 run: under the injected clock the report is byte-stable, so
// any drift in event wiring, aggregation, ordering, or formatting shows
// up as a golden diff. Refresh intentionally with:
//
//	go test ./internal/report -run TestReportGolden -update
func TestReportGolden(t *testing.T) {
	events, snap := traceSW(t)
	got := report.Render(events, snap, report.Options{Markdown: true})

	golden := filepath.Join("testdata", "sw_seed42.md")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to record the golden report)", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from golden %s (re-record with -update if intentional)\n%s",
			golden, firstDiff(string(want), got))
	}
}

// TestReportRendersBothFormats sanity-checks the text renderer against
// the same trace: same sections, no markdown pipes in the aligned form.
func TestReportRendersBothFormats(t *testing.T) {
	events, snap := traceSW(t)
	txt := report.Render(events, snap, report.Options{Markdown: false})
	for _, section := range []string{
		"Overview", "Stage waterfall", "Slowest fresh HLS estimations",
		"Prune attribution", "Worker utilization", "Blaze offload vs fallback",
	} {
		if !strings.Contains(txt, section) {
			t.Errorf("text report missing section %q", section)
		}
	}
}

// TestReportCompileCache attaches a compile cache to the framework,
// compiles the same source twice (miss then hit), and checks the report
// grows a "Compile cache" section with the counters — and that the same
// section appears when the counters arrive only via the metrics
// snapshot (a headless run that kept the registry but not the trace).
func TestReportCompileCache(t *testing.T) {
	var ns int64
	clock := func() int64 { ns += 1000; return ns }
	reg := obs.NewRegistry()
	var jsonl bytes.Buffer
	tr := obs.New(obs.NewJSONL(&jsonl), obs.WithClock(clock), obs.WithRegistry(reg))

	a := apps.Get("S-W")
	fw := core.New()
	fw.Trace = tr
	fw.Cache = ccache.New()
	for i := 0; i < 2; i++ {
		if _, _, err := fw.Compile(a.Source); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := report.Render(events, nil, report.Options{Markdown: true})
	for _, want := range []string{"## Compile cache", "ccache.hits", "Hit rate: 50.0% over 2 compilations."} {
		if !strings.Contains(got, want) {
			t.Errorf("report with cached compiles missing %q", want)
		}
	}

	// Fallback path: counters only in the snapshot, no trace events.
	var mj bytes.Buffer
	if err := reg.WriteJSON(&mj); err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ReadMetricsJSON(&mj)
	if err != nil {
		t.Fatal(err)
	}
	headless := report.Render(nil, snap, report.Options{Markdown: true})
	if !strings.Contains(headless, "## Compile cache") {
		t.Error("metrics-only report missing the compile cache section")
	}
}

// TestReportDeterministic renders the same run twice and demands byte
// equality — the report must not depend on map iteration order.
func TestReportDeterministic(t *testing.T) {
	events, snap := traceSW(t)
	a := report.Render(events, snap, report.Options{Markdown: true})
	b := report.Render(events, snap, report.Options{Markdown: true})
	if a != b {
		t.Error("report is not deterministic across renders of the same run")
	}
}

// firstDiff points at the first divergent line so a golden failure is
// readable without an external diff tool.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first diff at line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	return "contents differ only in length"
}
