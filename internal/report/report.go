// Package report turns a recorded run — a JSONL trace plus an optional
// metrics snapshot — into an offline explanation: where the tool spent
// time (stage waterfall with percentiles), which fresh HLS estimations
// were slowest and why (bottleneck verdicts with their offending access
// sites), how much of the design space each static analysis pruned,
// how busy the parallel engine's workers were, and how blaze requests
// split between accelerator offload and JVM fallback.
//
// The renderer is a pure function of its inputs: with a deterministic
// trace (injected clock) the report body is byte-reproducible, which is
// what the golden test in internal/core pins.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode/utf8"

	"s2fa/internal/obs"
)

// Options configures rendering.
type Options struct {
	// TopN bounds the slowest-estimations table (default 5).
	TopN int
	// Markdown selects GitHub-style pipe tables; false renders aligned
	// plain-text columns for terminals.
	Markdown bool
}

func (o Options) withDefaults() Options {
	if o.TopN <= 0 {
		o.TopN = 5
	}
	return o
}

// Render produces the explanation for one run. metrics may be nil (the
// runtime-gauge section is skipped); events must be the full trace in
// emission order.
func Render(events []obs.Event, metrics *obs.MetricsSnapshot, opt Options) string {
	opt = opt.withDefaults()
	a := analyze(events)
	var b strings.Builder

	b.WriteString("# S2FA run report\n")
	a.renderOverview(&b)
	a.renderWaterfall(&b, opt)
	a.renderSlowEstimations(&b, opt)
	a.renderPrunes(&b, opt)
	renderCompileCache(&b, a, metrics, opt)
	a.renderWorkers(&b, opt)
	a.renderBlaze(&b, opt)
	renderRuntime(&b, metrics, opt)
	return b.String()
}

// span is one reconstructed begin/end pair.
type span struct {
	begin obs.Event
	end   obs.Event
	durNS int64
	seq   int // order of the begin in the stream
}

type stageAgg struct {
	name  string
	hist  *obs.Histogram // durations in µs
	total int64          // ns
	first int            // seq of first appearance, for waterfall order
}

type blazeReq struct {
	req      int64
	span     span
	children []obs.Event // offload/fallback instants carrying the same req
}

type analysis struct {
	firstNS, lastNS int64
	kernel          string
	stopReason      string
	bestObjective   float64
	incumbents      int

	stages   map[string]*stageAgg
	hls      []span // fresh estimations only
	counters map[string]int64
	gauges   map[string]float64
	misnests int

	trackBusyNS map[int]int64 // tid>0: summed top-level span time
	blaze       []blazeReq
}

func analyze(events []obs.Event) *analysis {
	a := &analysis{
		stages:      map[string]*stageAgg{},
		counters:    map[string]int64{},
		gauges:      map[string]float64{},
		trackBusyNS: map[int]int64{},
	}
	begins := map[int64]obs.Event{}
	seqOf := map[int64]int{}
	blazeByReq := map[int64]*blazeReq{}
	var blazeOrder []int64

	for i, e := range events {
		if a.firstNS == 0 || e.NS < a.firstNS {
			a.firstNS = e.NS
		}
		if e.NS > a.lastNS {
			a.lastNS = e.NS
		}
		switch e.Ph {
		case obs.PhaseBegin:
			begins[e.ID] = e
			seqOf[e.ID] = i
			if e.Cat == "dse" && e.Name == "run" {
				if k, ok := e.Args["kernel"].(string); ok {
					a.kernel = k
				}
			}
		case obs.PhaseEnd:
			b, ok := begins[e.ID]
			if !ok {
				continue
			}
			delete(begins, e.ID)
			sp := span{begin: b, end: e, durNS: e.NS - b.NS, seq: seqOf[e.ID]}
			stage := b.Name
			if b.Cat != "" {
				stage = b.Cat + "/" + b.Name
			}
			ag := a.stages[stage]
			if ag == nil {
				ag = &stageAgg{name: stage, hist: obs.NewHistogram(), first: sp.seq}
				a.stages[stage] = ag
			}
			ag.hist.Observe(float64(sp.durNS) / 1e3)
			ag.total += sp.durNS
			if b.TID > 0 && b.Parent == 0 {
				a.trackBusyNS[b.TID] += sp.durNS
			}
			switch {
			case b.Cat == "hls" && b.Name == "estimate":
				if c, _ := b.Args["cache"].(string); c == "fresh" {
					a.hls = append(a.hls, sp)
				}
			case b.Cat == "dse" && b.Name == "run":
				if s, ok := e.Args["stop"].(string); ok {
					a.stopReason = s
				}
			case b.Cat == "blaze":
				req := asInt(b.Args["req"])
				br := blazeByReq[req]
				if br == nil {
					br = &blazeReq{req: req}
					blazeByReq[req] = br
					blazeOrder = append(blazeOrder, req)
				}
				br.span = sp
			}
		case obs.PhaseInstant:
			if e.Cat == "obs" && e.Name == "span-misnest" {
				a.misnests++
			}
			if e.Cat == "blaze" && (e.Name == "offload" || e.Name == "fallback") {
				req := asInt(e.Args["req"])
				br := blazeByReq[req]
				if br == nil {
					br = &blazeReq{req: req}
					blazeByReq[req] = br
					blazeOrder = append(blazeOrder, req)
				}
				br.children = append(br.children, e)
			}
		case obs.PhaseCounter:
			// Count samples carry the running total; the last one wins.
			// Gauges overwrite the same way.
			v := e.Args["value"]
			switch v.(type) {
			case int64, int:
				a.counters[e.Name] = asInt(v)
			case float64:
				// JSON round-trips integers as float64; integral values
				// that look like running counters stay counters.
				f := v.(float64)
				if f == math.Trunc(f) {
					a.counters[e.Name] = int64(f)
				}
				a.gauges[e.Name] = f
			}
		}
		if e.Cat == "dse" && e.Name == "incumbent" && e.Ph == obs.PhaseInstant {
			a.incumbents++
			a.bestObjective = asFloat(e.Args["objective"])
		}
	}
	for _, req := range blazeOrder {
		a.blaze = append(a.blaze, *blazeByReq[req])
	}
	sort.Slice(a.blaze, func(i, j int) bool { return a.blaze[i].req < a.blaze[j].req })
	return a
}

func (a *analysis) renderOverview(b *strings.Builder) {
	b.WriteString("\n## Overview\n\n")
	if a.kernel != "" {
		fmt.Fprintf(b, "- kernel: **%s**\n", a.kernel)
	}
	fmt.Fprintf(b, "- trace wall time: %s\n", fmtDurNS(a.lastNS-a.firstNS))
	if a.stopReason != "" {
		fmt.Fprintf(b, "- DSE stop reason: `%s`\n", a.stopReason)
	}
	if a.incumbents > 0 {
		fmt.Fprintf(b, "- incumbent updates: %d (best objective %.6g s)\n",
			a.incumbents, a.bestObjective)
	}
	if n := a.counters["dse.evals"]; n > 0 {
		fmt.Fprintf(b, "- evaluations: %d (%d fresh HLS estimations, %d cache hits)\n",
			n, a.counters["hls.estimations"], a.counters["hls.cache_hits"])
	}
	if a.misnests > 0 {
		fmt.Fprintf(b, "- WARNING: %d span-misnest diagnostics (instrumentation bug in the traced build)\n", a.misnests)
	}
}

func (a *analysis) renderWaterfall(b *strings.Builder, opt Options) {
	if len(a.stages) == 0 {
		return
	}
	b.WriteString("\n## Stage waterfall\n\n")
	b.WriteString("Real time per stage; nested stages overlap their parents. Ordered by first appearance.\n\n")
	ord := make([]*stageAgg, 0, len(a.stages))
	for _, ag := range a.stages { //determinism:allow sorted by first-appearance seq below
		ord = append(ord, ag)
	}
	sort.Slice(ord, func(i, j int) bool { return ord[i].first < ord[j].first })
	rows := [][]string{{"stage", "count", "total", "mean", "p50", "p90", "p99"}}
	for _, ag := range ord {
		rows = append(rows, []string{
			ag.name,
			fmt.Sprintf("%d", ag.hist.Count()),
			fmtDurNS(ag.total),
			fmtDurUS(ag.hist.Mean()),
			fmtDurUS(ag.hist.P50()),
			fmtDurUS(ag.hist.P90()),
			fmtDurUS(ag.hist.P99()),
		})
	}
	writeTable(b, rows, opt)
}

func (a *analysis) renderSlowEstimations(b *strings.Builder, opt Options) {
	if len(a.hls) == 0 {
		return
	}
	b.WriteString("\n## Slowest fresh HLS estimations\n\n")
	ranked := append([]span(nil), a.hls...)
	// Rank by real duration; break ties by synthesis minutes so the
	// ordering is meaningful (and stable → deterministic) under an
	// injected test clock where every span costs one tick.
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].durNS != ranked[j].durNS {
			return ranked[i].durNS > ranked[j].durNS
		}
		return asFloat(ranked[i].end.Args["synth_min"]) > asFloat(ranked[j].end.Args["synth_min"])
	})
	if len(ranked) > opt.TopN {
		ranked = ranked[:opt.TopN]
	}
	rows := [][]string{{"point", "real", "synth", "feasible", "bottleneck", "site"}}
	for _, sp := range ranked {
		point, _ := sp.begin.Args["point"].(string)
		feas, _ := sp.end.Args["feasible"].(bool)
		bn, _ := sp.end.Args["bottleneck"].(string)
		site, _ := sp.end.Args["bottleneck_site"].(string)
		if m, _ := sp.end.Args["merlin"].(string); m == "rejected" {
			bn = "merlin-rejected"
		}
		rows = append(rows, []string{
			point,
			fmtDurNS(sp.durNS),
			fmt.Sprintf("%.1fmin", asFloat(sp.end.Args["synth_min"])),
			fmt.Sprintf("%v", feas),
			bn,
			site,
		})
	}
	writeTable(b, rows, opt)
}

func (a *analysis) renderPrunes(b *strings.Builder, opt Options) {
	type row struct{ label, counter, what string }
	prunes := []row{
		{"static lint", "dse.pruned", "proposals rejected by the 5-pass verifier before HLS"},
		{"range collapse", "dse.collapsed", "width-equivalent points folded onto a sibling's report"},
		{"dependence", "dse.depend_pruned", "parallel variants of serializing loops collapsed"},
		{"access/port cap", "dse.access_pruned", "port-starved parallel factors collapsed"},
	}
	var any bool
	for _, p := range prunes {
		if a.counters[p.counter] > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	b.WriteString("\n## Prune attribution\n\n")
	b.WriteString("Evaluations each static analysis saved the search.\n\n")
	rows := [][]string{{"analysis", "saved", "meaning"}}
	for _, p := range prunes {
		rows = append(rows, []string{p.label, fmt.Sprintf("%d", a.counters[p.counter]), p.what})
	}
	rows = append(rows, []string{"HLS cache", fmt.Sprintf("%d", a.counters["hls.cache_hits"]), "re-evaluations served from the report cache"})
	writeTable(b, rows, opt)
}

// renderCompileCache surfaces the content-addressed compile cache:
// hit/miss/poisoning counts and cached-entry bytes. Counter events from
// the trace win; the ccache.* series of a metrics snapshot (headless
// runs that only kept the registry) are the fallback, so the section
// appears either way. Absent entirely when no cache was attached —
// hit runs are also visible indirectly in the waterfall, where the
// kdsl/b2c stage counts drop below the kernel count.
func renderCompileCache(b *strings.Builder, a *analysis, m *obs.MetricsSnapshot, opt Options) {
	get := func(name string) int64 {
		if v := a.counters[name]; v != 0 {
			return v
		}
		if m != nil {
			return m.Counters[name]
		}
		return 0
	}
	hits := get("ccache.hits")
	misses := get("ccache.misses")
	poisoned := get("ccache.poisoned")
	bytes := get("ccache.bytes")
	if hits == 0 && misses == 0 && poisoned == 0 {
		return
	}
	b.WriteString("\n## Compile cache\n\n")
	b.WriteString("Content-addressed cache over the kdsl -> bytecode -> b2c pipeline; a hit skips b2c, lint, and the DSE guard analyses.\n\n")
	rows := [][]string{
		{"series", "value", "meaning"},
		{"ccache.hits", fmt.Sprintf("%d", hits), "compilations served from the cache"},
		{"ccache.misses", fmt.Sprintf("%d", misses), "full pipeline runs that populated an entry"},
		{"ccache.poisoned", fmt.Sprintf("%d", poisoned), "checksum mismatches (entry evicted, fresh recompile)"},
		{"ccache.bytes", fmt.Sprintf("%d", bytes), "rendered-kernel bytes held by stored entries"},
	}
	writeTable(b, rows, opt)
	if total := hits + misses; total > 0 {
		fmt.Fprintf(b, "\nHit rate: %.1f%% over %d compilations.\n", 100*float64(hits)/float64(total), total)
	}
}

func (a *analysis) renderWorkers(b *strings.Builder, opt Options) {
	// Prefer the parallel pool's own counters; fall back to per-track
	// span time for sequential runs (virtual workers on tracks > 0).
	var rows [][]string
	if a.counters["dse.par.dispatched"] > 0 {
		rows = append(rows, []string{"pool worker", "busy", "utilization"})
		for i := 0; ; i++ {
			busy, ok := a.counters[fmt.Sprintf("dse.par.worker%d.busy_us", i)]
			if !ok {
				break
			}
			util := a.gauges[fmt.Sprintf("dse.par.worker%d.utilization", i)]
			rows = append(rows, []string{
				fmt.Sprintf("%d", i), fmtDurUS(float64(busy)), fmt.Sprintf("%.0f%%", util*100),
			})
		}
		if len(rows) == 1 {
			rows = nil
		}
	}
	if rows == nil && len(a.trackBusyNS) > 0 {
		var tids []int
		for tid := range a.trackBusyNS { //determinism:allow sorted below
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		rows = append(rows, []string{"virtual worker (track)", "span time"})
		for _, tid := range tids {
			rows = append(rows, []string{fmt.Sprintf("%d", tid-1), fmtDurNS(a.trackBusyNS[tid])})
		}
	}
	if rows == nil {
		return
	}
	b.WriteString("\n## Worker utilization\n\n")
	writeTable(b, rows, opt)
	if w := a.counters["dse.par.speculative_waste"]; w > 0 {
		fmt.Fprintf(b, "\nSpeculation computed %d estimations the replay never consumed.\n", w)
	}
}

func (a *analysis) renderBlaze(b *strings.Builder, opt Options) {
	off, fb := a.counters["blaze.offloads"], a.counters["blaze.fallbacks"]
	if off+fb == 0 && len(a.blaze) == 0 {
		return
	}
	b.WriteString("\n## Blaze offload vs fallback\n\n")
	total := off + fb
	if total > 0 {
		fmt.Fprintf(b, "- requests resolved on the accelerator: %d/%d (%.0f%%)\n",
			off, total, 100*float64(off)/float64(total))
		if bytes := a.counters["blaze.bytes_serialized"]; bytes > 0 {
			fmt.Fprintf(b, "- bytes serialized to the device: %d\n", bytes)
		}
	}
	if len(a.blaze) == 0 {
		return
	}
	b.WriteString("\nPer-request span trees:\n\n")
	for _, br := range a.blaze {
		acc, _ := br.span.begin.Args["acc"].(string)
		verb := br.span.begin.Name
		tasks := asInt(br.span.begin.Args["tasks"])
		outcome := "fallback"
		if off, _ := br.span.end.Args["offloaded"].(bool); off {
			outcome = "offloaded"
		}
		fmt.Fprintf(b, "- req %d: `%s` acc=%s tasks=%d → %s (%s real, sim %s)\n",
			br.req, verb, acc, tasks, outcome,
			fmtDurNS(br.span.durNS), fmtDurNS(asInt(br.span.end.Args["sim_ns"])))
		if cause, _ := br.span.end.Args["fallback"].(string); cause != "" {
			fmt.Fprintf(b, "  - cause: %s\n", cause)
		}
		for _, c := range br.children {
			switch c.Name {
			case "offload":
				fmt.Fprintf(b, "  - offload: %d tasks, %d bytes\n",
					asInt(c.Args["tasks"]), asInt(c.Args["bytes"]))
			case "fallback":
				cause, _ := c.Args["cause"].(string)
				jit, _ := c.Args["jit"].(bool)
				fmt.Fprintf(b, "  - fallback (jit=%v): %s\n", jit, cause)
			}
		}
	}
}

func renderRuntime(b *strings.Builder, m *obs.MetricsSnapshot, opt Options) {
	if m == nil || len(m.Gauges) == 0 {
		return
	}
	var keys []string
	for k := range m.Gauges { //determinism:allow sorted below
		if strings.HasPrefix(k, "go.") {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	b.WriteString("\n## Go runtime (final sample)\n\n")
	rows := [][]string{{"gauge", "value"}}
	for _, k := range keys {
		rows = append(rows, []string{k, fmt.Sprintf("%g", m.Gauges[k])})
	}
	writeTable(b, rows, opt)
}

// writeTable renders rows (header first) as a markdown pipe table or
// aligned plain-text columns.
func writeTable(b *strings.Builder, rows [][]string, opt Options) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-utf8.RuneCountInString(s)) }
	if opt.Markdown {
		for ri, r := range rows {
			b.WriteString("|")
			for i, c := range r {
				b.WriteString(" " + pad(c, widths[i]) + " |")
			}
			b.WriteString("\n")
			if ri == 0 {
				b.WriteString("|")
				for _, w := range widths {
					b.WriteString(strings.Repeat("-", w+2) + "|")
				}
				b.WriteString("\n")
			}
		}
		return
	}
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total-2) + "\n")
		}
	}
}

// fmtDurNS formats a nanosecond duration at µs/ms/s scale.
func fmtDurNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
}

// fmtDurUS formats a microsecond quantity at µs/ms/s scale.
func fmtDurUS(us float64) string { return fmtDurNS(int64(us * 1e3)) }

func asFloat(v any) float64 {
	switch v := v.(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case int:
		return float64(v)
	}
	return math.NaN()
}

func asInt(v any) int64 {
	switch v := v.(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	case int:
		return int64(v)
	}
	return 0
}
