// Package compile holds allocation infrastructure shared by the compile
// pipeline's hot paths (kdsl parsing, bytecode verification, abstract
// interpretation, and the bytecode-to-C compiler): a string interner, a
// chunked slab allocator, and the Scratch that threads per-stage reusable
// buffers through one pipeline invocation after another.
//
// The package is a leaf — it imports nothing from this module — so every
// stage can depend on it without cycles. Each stage keeps its own typed
// scratch struct in one of Scratch's opaque slots; compile only carries
// them between calls.
//
// Scratch is the compiler-side analogue of jvmsim's frame arena: the
// first compilation pays for its buffers, every later one on the same
// Scratch reuses them. A Scratch is NOT safe for concurrent use; callers
// that compile from several goroutines use one Scratch per goroutine (or
// none — every entry point accepts nil and allocates freshly).
package compile

// Scratch carries reusable per-stage buffers across compilations. The
// zero value is not useful; use NewScratch. All entry points that accept
// a *Scratch also accept nil, which means "allocate freshly" and is
// exactly the pre-Scratch behavior.
type Scratch struct {
	// Strings interns identifier and type spellings so repeated
	// compilations of similar kernels share one copy of each name.
	Strings *Interner

	// Per-stage scratch state. Each slot is owned by the named package,
	// which stores its private scratch struct here on first use. The
	// slots are deliberately opaque (any): compile must stay a leaf
	// package, so it cannot know the concrete types.
	Kdsl   any // owned by internal/kdsl
	Verify any // owned by internal/bytecode
	Absint any // owned by internal/absint
	B2C    any // owned by internal/b2c
}

// NewScratch returns an empty Scratch ready for reuse across
// compilations.
func NewScratch() *Scratch {
	return &Scratch{Strings: NewInterner()}
}

// Intern interns s via the Scratch's interner, tolerating a nil receiver
// (returns s unchanged).
func (s *Scratch) Intern(b []byte) string {
	if s == nil || s.Strings == nil {
		return string(b)
	}
	return s.Strings.Intern(b)
}
