package compile

// Slab is a chunked arena for values of one type: New hands out pointers
// into exponentially growing chunks, so allocating n nodes costs O(log n)
// heap allocations instead of n. Reset recycles every chunk for the next
// compilation — the caller promises that no pointer from before the Reset
// is still live (the kdsl AST, for example, dies when its bytecode class
// is built).
//
// A Slab never moves values once handed out, so pointers stay valid until
// Reset. Not safe for concurrent use.
type Slab[T any] struct {
	chunks [][]T
	// cur indexes the chunk currently being filled; n is the number of
	// values used in it. Chunks before cur are full.
	cur, n int
}

const (
	slabMinChunk = 64
	slabMaxChunk = 8192
)

// New returns a pointer to a zeroed T from the slab.
func (s *Slab[T]) New() *T {
	if s.cur >= len(s.chunks) {
		size := slabMinChunk << s.cur
		if size > slabMaxChunk {
			size = slabMaxChunk
		}
		s.chunks = append(s.chunks, make([]T, size))
	}
	c := s.chunks[s.cur]
	if s.n == len(c) {
		s.cur++
		s.n = 0
		return s.New()
	}
	p := &c[s.n]
	s.n++
	return p
}

// Reset makes every chunk available again, zeroing the recycled values so
// the next New hands out clean memory. Pointers obtained before Reset
// must no longer be used.
func (s *Slab[T]) Reset() {
	var zero T
	for i := 0; i <= s.cur && i < len(s.chunks); i++ {
		c := s.chunks[i]
		if i == s.cur {
			c = c[:s.n]
		}
		for j := range c {
			c[j] = zero
		}
	}
	s.cur, s.n = 0, 0
}
