package compile

// Interner deduplicates string spellings. Kernel sources repeat the same
// identifiers (loop variables, buffer names, type names) thousands of
// times across compilations; interning makes every occurrence share one
// heap copy and turns the per-token allocation into a map probe.
//
// Not safe for concurrent use (it lives inside a Scratch, which is
// per-goroutine by contract).
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 256)}
}

// Intern returns the canonical string for b, allocating it only on first
// sight. The map lookup with a []byte key compiles to a no-alloc probe.
func (in *Interner) Intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	in.m[s] = s
	return s
}

// InternString is Intern for an already-materialized string (e.g. a
// substring of the source text): the canonical copy keeps the whole
// source alive no longer than the token did.
func (in *Interner) InternString(s string) string {
	if c, ok := in.m[s]; ok {
		return c
	}
	in.m[s] = s
	return s
}

// Len reports how many distinct strings are interned.
func (in *Interner) Len() int { return len(in.m) }
