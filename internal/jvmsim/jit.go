package jvmsim

// The template JIT: Compile translates verified, structurally well-formed
// bytecode once into direct-threaded chains of Go closures — one closure
// per instruction, with fused "superinstructions" for the hot quickened
// sequences (load+load+ALU, array-load+bounds-check, field-get+push) —
// executing on a reusable frame arena so per-task allocation drops to
// zero. The compiled form preserves the JVM cost model exactly: identical
// Counts tallies (including on error paths), identical MaxSteps
// semantics (one step per fused component), and identical outputs and
// error messages. The differential property and fuzz tests in
// internal/apps prove interpreter and JIT bit-identical over all eight
// workloads, which is what keeps the Fig. 3/4 numbers byte-identical
// whichever engine the suite runs.

import (
	"fmt"
	"sync"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// retPC is the next-pc sentinel meaning "method returned" (or failed —
// frame.err distinguishes).
const retPC = -1

// opFunc executes one compiled instruction (or one fused
// superinstruction) against a frame and returns the next instruction
// index, or retPC.
type opFunc func(fr *frame) int

// frame is the reusable per-method execution arena: a preallocated
// operand stack (sized to the method's verified maximum depth), the
// locals array, the step budget, and the counts accumulated by this
// invocation. One frame exists per compiled method per VM — the
// instruction set has no method calls, so invocations never nest.
type frame struct {
	stack  []Val
	locals []Val
	sp     int
	steps  int64
	budget int64
	counts Counts
	ret    Val
	err    error
	name   string
	// intrinScratch avoids the per-intrinsic argument allocation the
	// interpreter pays (EvalIntrinsic does not retain the slice).
	intrinScratch [4]cir.Value
}

func (fr *frame) overBudget() int {
	fr.err = fmt.Errorf("jvmsim: %s exceeded step budget", fr.name)
	return retPC
}

func (fr *frame) fail(err error) int {
	fr.err = err
	return retPC
}

// compiledMethod is one method translated to closure chains.
type compiledMethod struct {
	m        *bytecode.Method
	ops      []opFunc
	maxStack int
	fused    int
	retVoid  bool
	nLocals  int
	// consts is the interned operand pool: fused Load/Const operands
	// resolve to uniform locals slots, constants living in read-only
	// slots past nLocals (see lcSlot).
	consts []cir.Value
}

// Program is a class compiled to closure chains: the unit the JIT caches
// per class. Programs are immutable after Compile and safe for
// concurrent use by many VMs — all per-invocation state lives in each
// VM's frames.
type Program struct {
	Class  *bytecode.Class
	call   *compiledMethod
	reduce *compiledMethod
}

// JITStats describes a compiled program for telemetry (the per-app
// compile counters the suite emits through internal/obs).
type JITStats struct {
	Methods int // methods compiled
	Ops     int // bytecode instructions translated
	Fused   int // superinstructions emitted (each replaces 2-3 instructions)
}

// Stats reports the program's compile-time telemetry.
func (p *Program) Stats() JITStats {
	st := JITStats{}
	for _, cm := range []*compiledMethod{p.call, p.reduce} {
		if cm == nil {
			continue
		}
		st.Methods++
		st.Ops += len(cm.m.Code)
		st.Fused += cm.fused
	}
	return st
}

// Compile translates the class's methods into closure chains. The
// bytecode must pass structural verification (branch targets, slot
// usage, stack discipline) — the same precondition the bytecode-to-C
// compiler relies on; §3.3 legality is irrelevant to execution and not
// required.
func Compile(c *bytecode.Class) (*Program, error) {
	if err := bytecode.VerifyClassStructural(c); err != nil {
		return nil, fmt.Errorf("jvmsim: jit: %w", err)
	}
	p := &Program{Class: c}
	var err error
	if p.call, err = compileMethod(c, c.Call); err != nil {
		return nil, err
	}
	if c.Reduce != nil {
		if p.reduce, err = compileMethod(c, c.Reduce); err != nil {
			return nil, err
		}
	}
	return p, nil
}

type cacheEntry struct {
	p   *Program
	err error
}

var progCache sync.Map // *bytecode.Class -> cacheEntry

// CompileCached returns the memoized compiled program for the class,
// compiling on first use. This is the compile-once/run-many
// amortization the experiment suite relies on: all tasks of all
// baseline batches of one app share a single compile.
func CompileCached(c *bytecode.Class) (*Program, error) {
	if e, ok := progCache.Load(c); ok {
		ce := e.(cacheEntry)
		return ce.p, ce.err
	}
	p, err := Compile(c)
	e, _ := progCache.LoadOrStore(c, cacheEntry{p: p, err: err})
	ce := e.(cacheEntry)
	return ce.p, ce.err
}

// NewJIT returns a VM for the class that executes through the (cached)
// closure-compiled program.
func NewJIT(c *bytecode.Class) (*VM, error) {
	vm := New(c)
	if err := vm.EnableJIT(); err != nil {
		return nil, err
	}
	return vm, nil
}

// EnableJIT switches the VM to compiled execution (compiling the class
// on first use, memoized). Outputs, Counts, and errors are byte-identical
// to the interpreter; only wall-clock changes.
func (vm *VM) EnableJIT() error {
	p, err := CompileCached(vm.Class)
	if err != nil {
		return err
	}
	vm.prog = p
	return nil
}

// DisableJIT returns the VM to interpreter execution.
func (vm *VM) DisableJIT() { vm.prog = nil }

// TryJIT enables compiled execution when possible — the class compiles
// and no per-instruction Trace hook is installed — and reports whether
// subsequent invocations will run compiled. Used by paths (the Blaze
// JVM fallback) that want the fast engine opportunistically without
// caring why it is unavailable.
func (vm *VM) TryJIT() bool {
	if vm.Trace != nil {
		return false
	}
	if vm.prog != nil {
		return true
	}
	return vm.EnableJIT() == nil
}

// JITEnabled reports whether invocations will execute compiled.
func (vm *VM) JITEnabled() bool { return vm.prog != nil && vm.Trace == nil }

// JITStats returns the compiled program's telemetry, when one is
// enabled.
func (vm *VM) JITStats() (JITStats, bool) {
	if vm.prog == nil {
		return JITStats{}, false
	}
	return vm.prog.Stats(), true
}

// compiled resolves the compiled form and reusable frame for m, or nil
// when m is not one of the program's methods (foreign hand-invoked
// methods fall back to the interpreter).
func (vm *VM) compiled(m *bytecode.Method) (*compiledMethod, *frame) {
	switch {
	case m == vm.Class.Call && vm.prog.call != nil:
		if vm.frCall == nil {
			vm.frCall = newFrame(vm.prog.call)
		}
		return vm.prog.call, vm.frCall
	case m == vm.Class.Reduce && vm.prog.reduce != nil:
		if vm.frReduce == nil {
			vm.frReduce = newFrame(vm.prog.reduce)
		}
		return vm.prog.reduce, vm.frReduce
	}
	return nil, nil
}

func newFrame(cm *compiledMethod) *frame {
	fr := &frame{
		stack:  make([]Val, cm.maxStack),
		locals: make([]Val, cm.nLocals+len(cm.consts)),
		name:   cm.m.Name,
	}
	// The const pool rides above the addressable locals; verified
	// bytecode cannot store past nLocals, so it is written once here.
	for k, c := range cm.consts {
		fr.locals[cm.nLocals+k] = Scalar(c)
	}
	return fr
}

// invokeCompiled runs one invocation on the frame arena. The reset
// mirrors the interpreter's fresh zeroed locals; counts accumulate
// frame-locally and flush into vm.Counts at return, so the observable
// tallies match the interpreter's incremental ones exactly — including
// the partial tallies of error returns.
func (vm *VM) invokeCompiled(cm *compiledMethod, fr *frame, args []Val) (Val, error) {
	if len(args) != len(cm.m.Params) {
		return Val{}, fmt.Errorf("jvmsim: %s expects %d args, got %d", cm.m.Name, len(cm.m.Params), len(args))
	}
	n := copy(fr.locals[:cm.nLocals], args)
	for i := n; i < cm.nLocals; i++ {
		fr.locals[i] = Val{}
	}
	fr.sp = 0
	fr.steps = 0
	fr.budget = vm.budget()
	fr.counts = Counts{}
	fr.ret = Val{}
	fr.err = nil
	ops := cm.ops
	for pc := 0; pc != retPC; {
		pc = ops[pc](fr)
	}
	vm.Counts.Add(fr.counts)
	if fr.err != nil {
		return Val{}, fr.err
	}
	return fr.ret, nil
}

func compileMethod(c *bytecode.Class, m *bytecode.Method) (*compiledMethod, error) {
	leaders := bytecode.Leaders(m)
	retVoid := m.Ret.Kind == cir.Void && !m.Ret.Array && !m.Ret.IsTuple()
	maxStack, err := maxStackDepth(m, leaders, retVoid)
	if err != nil {
		return nil, err
	}
	cm := &compiledMethod{
		m:        m,
		ops:      make([]opFunc, len(m.Code)),
		maxStack: maxStack,
		retVoid:  retVoid,
		nLocals:  len(m.LocalTypes),
	}
	chargeOnly, arrSlot, castFold, valFold := elideArrayPushes(m, leaders, retVoid)
	claimed := make([]bool, len(m.Code))
	for i := range claimed {
		claimed[i] = chargeOnly[i] || arrSlot[i] >= 0
	}
	for i := 0; i < len(m.Code); {
		switch {
		case chargeOnly[i]:
			cm.ops[i] = cm.chargeLoad(i)
			i++
		case arrSlot[i] >= 0:
			i += cm.emitArrFromLocal(i, arrSlot[i], castFold[i], valFold[i])
		default:
			if n := cm.fuseAt(i, leaders, claimed); n > 0 {
				i += n
				continue
			}
			cm.ops[i] = compileOne(c, m.Name, m.Code[i], i, retVoid)
			i++
		}
	}
	return cm, nil
}

// maxStackDepth sizes the preallocated operand stack. Structural
// verification guarantees the operand stack is empty at every block
// boundary, so a single linear pass with a leader reset is exact.
func maxStackDepth(m *bytecode.Method, leaders []bool, retVoid bool) (int, error) {
	depth, maxDepth := 0, 0
	for i, in := range m.Code {
		if leaders[i] {
			depth = 0
		}
		depth += bytecode.StackEffect(in, retVoid)
		if depth < 0 {
			return 0, fmt.Errorf("jvmsim: jit: %s@%d: stack underflow", m.Name, i)
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	return maxDepth, nil
}

// isLC reports whether the instruction is a fusable operand fetch: a
// local load or an immediate constant. Both charge one step and one
// LoadStore count when fused, exactly like the standalone OpLoad/OpConst
// they replace.
func isLC(in bytecode.Instr) bool {
	return in.Op == bytecode.OpLoad || in.Op == bytecode.OpConst
}

// lcSlot resolves a Load/Const operand to a frame locals slot: loads use
// their own slot, constants are interned into a read-only pool appended
// after the method's declared locals (verified bytecode cannot address a
// slot past LocalTypes, so the pool survives every invocation — see
// newFrame). A uniform slot read keeps the fused operand fetch
// branch-free; an isConst test in a shared closure body is unpredictable
// across closure instances and shows up in profiles.
func (cm *compiledMethod) lcSlot(in bytecode.Instr) int {
	if in.Op == bytecode.OpLoad {
		return in.A
	}
	cm.consts = append(cm.consts, in.Val)
	return cm.nLocals + len(cm.consts) - 1
}

// stackPopsPushes returns the operand-stack pops and pushes of one
// instruction (ok=false for opcodes the JIT does not model; callers
// stop analyzing there — the compiled closure traps at runtime anyway).
func stackPopsPushes(in bytecode.Instr, retVoid bool) (pops, pushes int, ok bool) {
	switch in.Op {
	case bytecode.OpConst, bytecode.OpLoad, bytecode.OpGetStatic:
		return 0, 1, true
	case bytecode.OpStore:
		return 1, 0, true
	case bytecode.OpALoad:
		return 2, 1, true
	case bytecode.OpAStore:
		return 3, 0, true
	case bytecode.OpArrayLen, bytecode.OpNewArray, bytecode.OpGetField, bytecode.OpCast:
		return 1, 1, true
	case bytecode.OpUn:
		switch in.Un {
		case cir.Neg, cir.Not, cir.BitNot:
			return 1, 1, true
		}
		// The interpreter pops the operand and pushes nothing for an
		// unknown unary operator.
		return 1, 0, true
	case bytecode.OpNewTuple, bytecode.OpIntrin:
		return in.A, 1, true
	case bytecode.OpGoto:
		return 0, 0, true
	case bytecode.OpBrFalse, bytecode.OpBrTrue:
		return 1, 0, true
	case bytecode.OpReturn:
		if retVoid {
			return 0, 0, true
		}
		return 1, 0, true
	}
	return 0, 0, false
}

// elideArrayPushes finds Load instructions whose pushed value rides the
// operand stack untouched until a later ALoad/AStore in the same basic
// block consumes it as the array operand, with the loaded slot not
// stored to in between. Pushing an array-holding Val costs an 80-byte
// copy plus a write barrier for its slice header — the single hottest
// cost in array kernels — and it is pure traffic: the consumer can read
// the array straight from the (unmodified) local slot. Claimed loads
// keep their position, step, and LoadStore charge but skip the push
// (chargeOnly); claimed consumers pop one operand less and take the
// array from arrSlot's local. castFold marks claimed array loads whose
// trailing Cast folds into the same closure.
//
// The depth simulation tracks the claimed cell at window bottom. Earlier
// claims shift the runtime stack layout relative to this raw simulation,
// but consistently — an elided push and its adjusted consumer cancel —
// so windows stop at already-claimed instructions, where the raw
// bookkeeping would diverge from the runtime stack.
func elideArrayPushes(m *bytecode.Method, leaders []bool, retVoid bool) (chargeOnly []bool, arrSlot []int, castFold, valFold []bool) {
	code := m.Code
	chargeOnly = make([]bool, len(code))
	castFold = make([]bool, len(code))
	valFold = make([]bool, len(code))
	arrSlot = make([]int, len(code))
	for i := range arrSlot {
		arrSlot[i] = -1
	}
	for i, in := range code {
		if in.Op != bytecode.OpLoad || chargeOnly[i] {
			continue
		}
		slot := in.A
		d := 1 // window depth, the loaded cell at bottom
	scan:
		for j := i + 1; j < len(code) && j < i+64; j++ {
			if leaders[j] || chargeOnly[j] || arrSlot[j] >= 0 {
				break
			}
			nj := code[j]
			switch nj.Op {
			case bytecode.OpGoto, bytecode.OpBrFalse, bytecode.OpBrTrue, bytecode.OpReturn:
				break scan
			case bytecode.OpStore:
				if nj.A == slot {
					break scan
				}
			}
			pops, pushes, ok := stackPopsPushes(nj, retVoid)
			if !ok {
				break scan
			}
			if pops >= d {
				// nj consumes the loaded cell. Claim it only when the cell
				// is exactly the array operand of an array access; a short
				// [load arr; load/const idx; aload] stays with the
				// single-dispatch fuseALoad rule instead.
				switch {
				case nj.Op == bytecode.OpALoad && d == 2 && j > i+2:
					chargeOnly[i] = true
					arrSlot[j] = slot
					if j+1 < len(code) && !leaders[j+1] && code[j+1].Op == bytecode.OpCast {
						castFold[j] = true
					}
				case nj.Op == bytecode.OpAStore && d == 3:
					chargeOnly[i] = true
					arrSlot[j] = slot
					// When the stored value is itself a Load/Const push
					// immediately before the astore, elide that push too:
					// the closure reads the value from its slot (valFold).
					if !leaders[j-1] && !chargeOnly[j-1] && arrSlot[j-1] < 0 && isLC(code[j-1]) {
						chargeOnly[j-1] = true
						valFold[j] = true
					}
				}
				break scan
			}
			d += pushes - pops
		}
	}
	return chargeOnly, arrSlot, castFold, valFold
}

// chargeLoad is the compiled form of an elided array push: the Load's
// accounting at its original position, without the push (see
// elideArrayPushes).
func (cm *compiledMethod) chargeLoad(i int) opFunc {
	next := i + 1
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		return next
	}
}

// emitArrFromLocal compiles the consumer of an elided array push: an
// ALoad (optionally with its trailing Cast folded in) or AStore that
// reads the array from the local slot instead of the stack. Returns the
// number of instructions covered.
func (cm *compiledMethod) emitArrFromLocal(i, slot int, fold, vfold bool) int {
	name := cm.m.Name
	in := cm.m.Code[i]
	byteArr := isByteArrayKind(in.Kind)
	if in.Op == bytecode.OpAStore {
		next := i + 1
		if vfold {
			// The stored value's push was elided too (valFold): read it
			// from its slot; only the index crosses the stack.
			vs := cm.lcSlot(cm.m.Code[i-1])
			cm.ops[i] = func(fr *frame) int {
				if fr.steps++; fr.steps > fr.budget {
					return fr.overBudget()
				}
				if byteArr {
					fr.counts.ByteArrayOps++
				} else {
					fr.counts.ArrayOps++
				}
				val := fr.locals[vs].S
				idx := fr.stack[fr.sp-1].S.AsInt()
				fr.sp--
				arr := &fr.locals[slot]
				if !arr.IsArr {
					return fr.fail(fmt.Errorf("jvmsim: %s@%d: astore on non-array", name, i))
				}
				if idx < 0 || idx >= int64(len(arr.Arr)) {
					return fr.fail(fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", name, i, idx, len(arr.Arr)))
				}
				arr.Arr[idx] = val.Convert(arr.Arr[idx].K)
				return next
			}
			cm.fused++
			return 1
		}
		cm.ops[i] = func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			if byteArr {
				fr.counts.ByteArrayOps++
			} else {
				fr.counts.ArrayOps++
			}
			val := fr.stack[fr.sp-1].S
			idx := fr.stack[fr.sp-2].S.AsInt()
			fr.sp -= 2
			arr := &fr.locals[slot]
			if !arr.IsArr {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: astore on non-array", name, i))
			}
			if idx < 0 || idx >= int64(len(arr.Arr)) {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", name, i, idx, len(arr.Arr)))
			}
			arr.Arr[idx] = val.Convert(arr.Arr[idx].K)
			return next
		}
		cm.fused++
		return 1
	}
	if fold {
		castKind := cm.m.Code[i+1].Kind
		next := i + 2
		cm.ops[i] = func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			if byteArr {
				fr.counts.ByteArrayOps++
			} else {
				fr.counts.ArrayOps++
			}
			idx := fr.stack[fr.sp-1].S.AsInt()
			arr := &fr.locals[slot]
			if !arr.IsArr {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: aload on non-array", name, i))
			}
			if idx < 0 || idx >= int64(len(arr.Arr)) {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", name, i, idx, len(arr.Arr)))
			}
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.ALU++
			setScalar(&fr.stack[fr.sp-1], arr.Arr[idx].Convert(castKind))
			return next
		}
		cm.ops[i+1] = trapOp
		cm.fused++
		return 2
	}
	next := i + 1
	cm.ops[i] = func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		if byteArr {
			fr.counts.ByteArrayOps++
		} else {
			fr.counts.ArrayOps++
		}
		idx := fr.stack[fr.sp-1].S.AsInt()
		arr := &fr.locals[slot]
		if !arr.IsArr {
			return fr.fail(fmt.Errorf("jvmsim: %s@%d: aload on non-array", name, i))
		}
		if idx < 0 || idx >= int64(len(arr.Arr)) {
			return fr.fail(fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", name, i, idx, len(arr.Arr)))
		}
		setScalar(&fr.stack[fr.sp-1], arr.Arr[idx])
		return next
	}
	cm.fused++
	return 1
}

// fuseAt tries each superinstruction rule at pc i and returns the number
// of bytecode instructions the emitted closure covers (0 = no rule
// applies). Rules are matched longest-first, heads are Load/Const
// operand fetches or an ALU op consuming the stack, and fusion never
// crosses a basic-block boundary: a swallowed instruction must not be a
// branch target, or the jump would skip the fused head and land
// mid-superinstruction. Every fused closure charges one step and one
// count per swallowed component, with a budget check between
// components, so Counts and MaxSteps semantics stay byte-identical to
// the interpreter.
func (cm *compiledMethod) fuseAt(i int, leaders, claimed []bool) int {
	code := cm.m.Code
	free := func(j int) bool { return j < len(code) && !leaders[j] && !claimed[j] }
	is := func(j int, op bytecode.Op) bool { return free(j) && code[j].Op == op }
	isBranch := func(j int) bool {
		return free(j) && (code[j].Op == bytecode.OpBrFalse || code[j].Op == bytecode.OpBrTrue)
	}
	if !isLC(code[i]) {
		// ALU-headed tails: the binary op's operands are already on the
		// stack, its consumer folds in.
		switch {
		case code[i].Op == bytecode.OpBin && isBranch(i+1):
			cm.ops[i] = cm.fuseStackBinBranch(i)
			return cm.cover(i, 2)
		case code[i].Op == bytecode.OpBin && is(i+1, bytecode.OpStore):
			cm.ops[i] = cm.fuseStackBinStore(i)
			return cm.cover(i, 2)
		}
		return 0
	}
	if free(i+1) && isLC(code[i+1]) {
		switch {
		// load/const a; load/const b; bin [; brX | store] — the hot
		// quickened ALU sequences, loop conditions and accumulator
		// updates included.
		case is(i+2, bytecode.OpBin) && isBranch(i+3):
			cm.ops[i] = cm.fuseBinBranch(i, cm.lcSlot(code[i]), cm.lcSlot(code[i+1]))
			return cm.cover(i, 4)
		case is(i+2, bytecode.OpBin) && is(i+3, bytecode.OpStore):
			cm.ops[i] = cm.fuseBinStore(i, cm.lcSlot(code[i]), cm.lcSlot(code[i+1]))
			return cm.cover(i, 4)
		case is(i+2, bytecode.OpBin):
			cm.ops[i] = cm.fuseBin(i, cm.lcSlot(code[i]), cm.lcSlot(code[i+1]))
			return cm.cover(i, 3)
		// load arr; load/const idx; aload [; cast] — array load + bounds
		// check, converting in place when a cast trails.
		case is(i+2, bytecode.OpALoad) && code[i].Op == bytecode.OpLoad:
			fold := is(i+3, bytecode.OpCast)
			cm.ops[i] = cm.fuseALoad(i, cm.lcSlot(code[i+1]), fold)
			if fold {
				return cm.cover(i, 4)
			}
			return cm.cover(i, 3)
		// load/const a; load/const b; intrin — two-argument Math call.
		case is(i+2, bytecode.OpIntrin) && code[i+2].A == 2:
			cm.ops[i] = cm.fuseIntrin2(i, cm.lcSlot(code[i]), cm.lcSlot(code[i+1]))
			return cm.cover(i, 3)
		}
	}
	switch {
	// load/const tup; getfield — boxed field get plus push.
	case is(i+1, bytecode.OpGetField):
		cm.ops[i] = cm.fuseGetField(i, cm.lcSlot(code[i]))
		return cm.cover(i, 2)
	// <stack>; load/const b; bin [; store] — right operand resolved at
	// compile time, optionally storing the result straight to a local.
	case is(i+1, bytecode.OpBin) && is(i+2, bytecode.OpStore):
		cm.ops[i] = cm.fuseRBinStore(i, cm.lcSlot(code[i]))
		return cm.cover(i, 3)
	case is(i+1, bytecode.OpBin):
		cm.ops[i] = cm.fuseStackBin(i, cm.lcSlot(code[i]))
		return cm.cover(i, 2)
	// load/const a; intrin — one-argument Math call.
	case is(i+1, bytecode.OpIntrin) && code[i+1].A == 1:
		cm.ops[i] = cm.fuseIntrin1(i, cm.lcSlot(code[i]))
		return cm.cover(i, 2)
	// load/const a; store b — local-to-local move.
	case is(i+1, bytecode.OpStore):
		cm.ops[i] = cm.fuseMove(i, cm.lcSlot(code[i]))
		return cm.cover(i, 2)
	}
	return 0
}

// cover marks the tail slots of a fused superinstruction. They are
// unreachable by construction (not leaders, and fall-through enters
// through the fused head); the trap preserves a defined failure if that
// invariant is ever broken.
func (cm *compiledMethod) cover(i, n int) int {
	cm.fused++
	for j := i + 1; j < i+n; j++ {
		cm.ops[j] = trapOp
	}
	return n
}

func trapOp(fr *frame) int {
	return fr.fail(fmt.Errorf("jvmsim: jit: %s: jump into fused superinstruction", fr.name))
}

// setScalar overwrites *dst with the scalar v. When dst holds no slice
// (the overwhelmingly common case on a reused frame, whose slots are
// rewritten with scalars all loop long) only the 24-byte payload moves:
// no Val-sized copy and no write barrier for the two nil slice headers.
func setScalar(dst *Val, v cir.Value) {
	if dst.Arr == nil && dst.Tup == nil {
		dst.S = v
		dst.IsArr = false
		dst.IsTup = false
		return
	}
	*dst = Val{S: v}
}

// copyVal moves *src into *dst, skipping the Val-sized copy and its
// write barrier when both slots are slice-free.
func copyVal(dst, src *Val) {
	if dst.Arr == nil && dst.Tup == nil && src.Arr == nil && src.Tup == nil {
		dst.S = src.S
		dst.IsArr = src.IsArr
		dst.IsTup = src.IsTup
		return
	}
	*dst = *src
}

// binFn is a compile-time-specialized binary operator: the op/kind
// dispatch of binOp and cir.EvalBinary resolved once at compile time.
// Every specialization reproduces the corresponding EvalBinary arm
// verbatim; fallible (Div/Rem) and exotic operators delegate to the
// shared evaluator so error text and semantics stay byte-identical.
type binFn func(l, r cir.Value) (cir.Value, error)

func binFnFor(in bytecode.Instr) binFn {
	op, k := in.Bin, in.Kind
	switch op {
	case cir.LAnd:
		return func(l, r cir.Value) (cir.Value, error) { return cir.BoolVal(l.IsTrue() && r.IsTrue()), nil }
	case cir.LOr:
		return func(l, r cir.Value) (cir.Value, error) { return cir.BoolVal(l.IsTrue() || r.IsTrue()), nil }
	case cir.Lt:
		return func(l, r cir.Value) (cir.Value, error) {
			if l.K.IsFloat() || r.K.IsFloat() {
				return cir.BoolVal(l.AsFloat() < r.AsFloat()), nil
			}
			return cir.BoolVal(l.I < r.I), nil
		}
	case cir.Le:
		return func(l, r cir.Value) (cir.Value, error) {
			if l.K.IsFloat() || r.K.IsFloat() {
				return cir.BoolVal(l.AsFloat() <= r.AsFloat()), nil
			}
			return cir.BoolVal(l.I <= r.I), nil
		}
	case cir.Gt:
		return func(l, r cir.Value) (cir.Value, error) {
			if l.K.IsFloat() || r.K.IsFloat() {
				return cir.BoolVal(l.AsFloat() > r.AsFloat()), nil
			}
			return cir.BoolVal(l.I > r.I), nil
		}
	case cir.Ge:
		return func(l, r cir.Value) (cir.Value, error) {
			if l.K.IsFloat() || r.K.IsFloat() {
				return cir.BoolVal(l.AsFloat() >= r.AsFloat()), nil
			}
			return cir.BoolVal(l.I >= r.I), nil
		}
	case cir.Eq:
		return func(l, r cir.Value) (cir.Value, error) {
			if l.K.IsFloat() || r.K.IsFloat() {
				return cir.BoolVal(l.AsFloat() == r.AsFloat()), nil
			}
			return cir.BoolVal(l.I == r.I), nil
		}
	case cir.Ne:
		return func(l, r cir.Value) (cir.Value, error) {
			if l.K.IsFloat() || r.K.IsFloat() {
				return cir.BoolVal(l.AsFloat() != r.AsFloat()), nil
			}
			return cir.BoolVal(l.I != r.I), nil
		}
	}
	if k.IsFloat() {
		switch op {
		case cir.Add:
			return func(l, r cir.Value) (cir.Value, error) { return cir.FloatVal(k, l.AsFloat()+r.AsFloat()), nil }
		case cir.Sub:
			return func(l, r cir.Value) (cir.Value, error) { return cir.FloatVal(k, l.AsFloat()-r.AsFloat()), nil }
		case cir.Mul:
			return func(l, r cir.Value) (cir.Value, error) { return cir.FloatVal(k, l.AsFloat()*r.AsFloat()), nil }
		case cir.Div:
			return func(l, r cir.Value) (cir.Value, error) { return cir.FloatVal(k, l.AsFloat()/r.AsFloat()), nil }
		}
	} else {
		switch op {
		case cir.Add:
			return func(l, r cir.Value) (cir.Value, error) { return cir.IntVal(k, l.AsInt()+r.AsInt()), nil }
		case cir.Sub:
			return func(l, r cir.Value) (cir.Value, error) { return cir.IntVal(k, l.AsInt()-r.AsInt()), nil }
		case cir.Mul:
			return func(l, r cir.Value) (cir.Value, error) { return cir.IntVal(k, l.AsInt()*r.AsInt()), nil }
		case cir.And:
			return func(l, r cir.Value) (cir.Value, error) { return cir.IntVal(k, l.AsInt()&r.AsInt()), nil }
		case cir.Or:
			return func(l, r cir.Value) (cir.Value, error) { return cir.IntVal(k, l.AsInt()|r.AsInt()), nil }
		case cir.Xor:
			return func(l, r cir.Value) (cir.Value, error) { return cir.IntVal(k, l.AsInt()^r.AsInt()), nil }
		}
	}
	bi := in
	return func(l, r cir.Value) (cir.Value, error) { return binOp(bi, l, r) }
}

// evalBin runs the Bin component at pc through its specialized operator,
// charging the ALU bucket on success. On failure the frame error is set
// and ok is false.
func (fr *frame) evalBin(name string, pc int, bf binFn, fp bool, l, r cir.Value) (cir.Value, bool) {
	v, err := bf(l, r)
	if err != nil {
		fr.fail(fmt.Errorf("jvmsim: %s@%d: %w", name, pc, err))
		return cir.Value{}, false
	}
	if fp {
		fr.counts.FpALU++
	} else {
		fr.counts.ALU++
	}
	return v, true
}

func (cm *compiledMethod) fuseBin(i, s1, s2 int) opFunc {
	name := cm.m.Name
	bf := binFnFor(cm.m.Code[i+2])
	fp := cm.m.Code[i+2].Kind.IsFloat()
	pcBin := i + 2
	next := i + 3
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		l := fr.locals[s1].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		r := fr.locals[s2].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		v, ok := fr.evalBin(name, pcBin, bf, fp, l, r)
		if !ok {
			return retPC
		}
		setScalar(&fr.stack[fr.sp], v)
		fr.sp++
		return next
	}
}

// fuseBinBranch folds a Load/Const pair, a comparison, and the
// conditional branch consuming it into one closure: the hot loop-header
// shape. The compare result never touches the operand stack.
func (cm *compiledMethod) fuseBinBranch(i, s1, s2 int) opFunc {
	name := cm.m.Name
	bf := binFnFor(cm.m.Code[i+2])
	fp := cm.m.Code[i+2].Kind.IsFloat()
	br := cm.m.Code[i+3]
	wantTrue := br.Op == bytecode.OpBrTrue
	target := br.Target
	pcBin := i + 2
	next := i + 4
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		l := fr.locals[s1].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		r := fr.locals[s2].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		v, ok := fr.evalBin(name, pcBin, bf, fp, l, r)
		if !ok {
			return retPC
		}
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.Branches++
		if v.IsTrue() == wantTrue {
			return target
		}
		return next
	}
}

// fuseBinStore folds a Load/Const pair, an ALU op, and the store of its
// result: the accumulator-update shape (`acc = a op b`).
func (cm *compiledMethod) fuseBinStore(i, s1, s2 int) opFunc {
	name := cm.m.Name
	bf := binFnFor(cm.m.Code[i+2])
	fp := cm.m.Code[i+2].Kind.IsFloat()
	dst := cm.m.Code[i+3].A
	pcBin := i + 2
	next := i + 4
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		l := fr.locals[s1].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		r := fr.locals[s2].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		v, ok := fr.evalBin(name, pcBin, bf, fp, l, r)
		if !ok {
			return retPC
		}
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		setScalar(&fr.locals[dst], v)
		return next
	}
}

// fuseStackBin folds a Load/Const right operand into the binary op
// consuming it; the left operand comes off the stack.
func (cm *compiledMethod) fuseStackBin(i, s2 int) opFunc {
	name := cm.m.Name
	bf := binFnFor(cm.m.Code[i+1])
	fp := cm.m.Code[i+1].Kind.IsFloat()
	pcBin := i + 1
	next := i + 2
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		r := fr.locals[s2].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		l := fr.stack[fr.sp-1].S
		v, ok := fr.evalBin(name, pcBin, bf, fp, l, r)
		if !ok {
			return retPC
		}
		setScalar(&fr.stack[fr.sp-1], v)
		return next
	}
}

// fuseRBinStore folds a Load/Const right operand, the binary op
// consuming it (left operand from the stack), and the store of the
// result: the `acc = <expr> op b` tail shape.
func (cm *compiledMethod) fuseRBinStore(i, s2 int) opFunc {
	name := cm.m.Name
	bf := binFnFor(cm.m.Code[i+1])
	fp := cm.m.Code[i+1].Kind.IsFloat()
	dst := cm.m.Code[i+2].A
	pcBin := i + 1
	next := i + 3
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		r := fr.locals[s2].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		l := fr.stack[fr.sp-1].S
		v, ok := fr.evalBin(name, pcBin, bf, fp, l, r)
		if !ok {
			return retPC
		}
		fr.sp--
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		setScalar(&fr.locals[dst], v)
		return next
	}
}

// fuseStackBinBranch folds a comparison whose operands are on the stack
// into the conditional branch consuming it.
func (cm *compiledMethod) fuseStackBinBranch(i int) opFunc {
	name := cm.m.Name
	bf := binFnFor(cm.m.Code[i])
	fp := cm.m.Code[i].Kind.IsFloat()
	br := cm.m.Code[i+1]
	wantTrue := br.Op == bytecode.OpBrTrue
	target := br.Target
	next := i + 2
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		r := fr.stack[fr.sp-1].S
		l := fr.stack[fr.sp-2].S
		fr.sp -= 2
		v, ok := fr.evalBin(name, i, bf, fp, l, r)
		if !ok {
			return retPC
		}
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.Branches++
		if v.IsTrue() == wantTrue {
			return target
		}
		return next
	}
}

// fuseStackBinStore folds a binary op whose operands are on the stack
// into the store of its result.
func (cm *compiledMethod) fuseStackBinStore(i int) opFunc {
	name := cm.m.Name
	bf := binFnFor(cm.m.Code[i])
	fp := cm.m.Code[i].Kind.IsFloat()
	dst := cm.m.Code[i+1].A
	next := i + 2
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		r := fr.stack[fr.sp-1].S
		l := fr.stack[fr.sp-2].S
		fr.sp -= 2
		v, ok := fr.evalBin(name, i, bf, fp, l, r)
		if !ok {
			return retPC
		}
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		setScalar(&fr.locals[dst], v)
		return next
	}
}

// fuseALoad folds [load arr; load/const idx; aload] — and the trailing
// cast when one follows — into one closure reading the array straight
// from its local slot.
func (cm *compiledMethod) fuseALoad(i, sIdx int, fold bool) opFunc {
	name := cm.m.Name
	sArr := cm.m.Code[i].A
	byteArr := isByteArrayKind(cm.m.Code[i+2].Kind)
	pcA := i + 2
	if fold {
		castKind := cm.m.Code[i+3].Kind
		next := i + 4
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.LoadStore++
			arr := &fr.locals[sArr]
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.LoadStore++
			idx := fr.locals[sIdx].S.AsInt()
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			if byteArr {
				fr.counts.ByteArrayOps++
			} else {
				fr.counts.ArrayOps++
			}
			if !arr.IsArr {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: aload on non-array", name, pcA))
			}
			if idx < 0 || idx >= int64(len(arr.Arr)) {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", name, pcA, idx, len(arr.Arr)))
			}
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.ALU++
			setScalar(&fr.stack[fr.sp], arr.Arr[idx].Convert(castKind))
			fr.sp++
			return next
		}
	}
	next := i + 3
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		arr := &fr.locals[sArr]
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		idx := fr.locals[sIdx].S.AsInt()
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		if byteArr {
			fr.counts.ByteArrayOps++
		} else {
			fr.counts.ArrayOps++
		}
		if !arr.IsArr {
			return fr.fail(fmt.Errorf("jvmsim: %s@%d: aload on non-array", name, pcA))
		}
		if idx < 0 || idx >= int64(len(arr.Arr)) {
			return fr.fail(fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", name, pcA, idx, len(arr.Arr)))
		}
		setScalar(&fr.stack[fr.sp], arr.Arr[idx])
		fr.sp++
		return next
	}
}

func (cm *compiledMethod) fuseIntrin2(i, s1, s2 int) opFunc {
	name := cm.m.Name
	sym, kind := cm.m.Code[i+2].Sym, cm.m.Code[i+2].Kind
	pcI := i + 2
	next := i + 3
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		fr.intrinScratch[0] = fr.locals[s1].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		fr.intrinScratch[1] = fr.locals[s2].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.Intrins++
		v, err := cir.EvalIntrinsic(sym, kind, fr.intrinScratch[:2])
		if err != nil {
			return fr.fail(fmt.Errorf("jvmsim: %s@%d: %w", name, pcI, err))
		}
		setScalar(&fr.stack[fr.sp], v)
		fr.sp++
		return next
	}
}

func (cm *compiledMethod) fuseIntrin1(i, s1 int) opFunc {
	name := cm.m.Name
	sym, kind := cm.m.Code[i+1].Sym, cm.m.Code[i+1].Kind
	pcI := i + 1
	next := i + 2
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		fr.intrinScratch[0] = fr.locals[s1].S
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.Intrins++
		v, err := cir.EvalIntrinsic(sym, kind, fr.intrinScratch[:1])
		if err != nil {
			return fr.fail(fmt.Errorf("jvmsim: %s@%d: %w", name, pcI, err))
		}
		setScalar(&fr.stack[fr.sp], v)
		fr.sp++
		return next
	}
}

func (cm *compiledMethod) fuseGetField(i, s1 int) opFunc {
	name := cm.m.Name
	fi := cm.m.Code[i+1].A
	pcG := i + 1
	next := i + 2
	errBad := fmt.Errorf("jvmsim: %s@%d: bad getfield _%d", name, pcG, fi+1)
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		tup := &fr.locals[s1]
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.FieldOps++
		if !tup.IsTup || fi >= len(tup.Tup) {
			return fr.fail(errBad)
		}
		copyVal(&fr.stack[fr.sp], &tup.Tup[fi])
		fr.sp++
		return next
	}
}

// fuseMove folds a Load/Const straight into the store consuming it — a
// local-to-local (or pooled-immediate-to-local) move with no stack
// traffic.
func (cm *compiledMethod) fuseMove(i, s1 int) opFunc {
	dst := cm.m.Code[i+1].A
	next := i + 2
	return func(fr *frame) int {
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		if fr.steps++; fr.steps > fr.budget {
			return fr.overBudget()
		}
		fr.counts.LoadStore++
		copyVal(&fr.locals[dst], &fr.locals[s1])
		return next
	}
}

// compileOne translates a single instruction into its closure. Each
// closure mirrors the interpreter's switch arm exactly: the same count
// bucket, charged at the same point relative to the error checks, with
// the same error text.
func compileOne(c *bytecode.Class, name string, in bytecode.Instr, i int, retVoid bool) opFunc {
	next := i + 1
	switch in.Op {
	case bytecode.OpConst:
		v := in.Val
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.LoadStore++
			setScalar(&fr.stack[fr.sp], v)
			fr.sp++
			return next
		}
	case bytecode.OpLoad:
		slot := in.A
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.LoadStore++
			copyVal(&fr.stack[fr.sp], &fr.locals[slot])
			fr.sp++
			return next
		}
	case bytecode.OpStore:
		slot := in.A
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.LoadStore++
			fr.sp--
			copyVal(&fr.locals[slot], &fr.stack[fr.sp])
			return next
		}
	case bytecode.OpALoad:
		byteArr := isByteArrayKind(in.Kind)
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			if byteArr {
				fr.counts.ByteArrayOps++
			} else {
				fr.counts.ArrayOps++
			}
			idx := fr.stack[fr.sp-1].S.AsInt()
			arr := fr.stack[fr.sp-2]
			fr.sp -= 2
			if !arr.IsArr {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: aload on non-array", name, i))
			}
			if idx < 0 || idx >= int64(len(arr.Arr)) {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", name, i, idx, len(arr.Arr)))
			}
			setScalar(&fr.stack[fr.sp], arr.Arr[idx])
			fr.sp++
			return next
		}
	case bytecode.OpAStore:
		byteArr := isByteArrayKind(in.Kind)
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			if byteArr {
				fr.counts.ByteArrayOps++
			} else {
				fr.counts.ArrayOps++
			}
			val := fr.stack[fr.sp-1]
			idx := fr.stack[fr.sp-2].S.AsInt()
			arr := fr.stack[fr.sp-3]
			fr.sp -= 3
			if !arr.IsArr {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: astore on non-array", name, i))
			}
			if idx < 0 || idx >= int64(len(arr.Arr)) {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", name, i, idx, len(arr.Arr)))
			}
			arr.Arr[idx] = val.S.Convert(arr.Arr[idx].K)
			return next
		}
	case bytecode.OpArrayLen:
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.ALU++
			arr := fr.stack[fr.sp-1]
			setScalar(&fr.stack[fr.sp-1], cir.IntVal(cir.Int, int64(len(arr.Arr))))
			return next
		}
	case bytecode.OpNewArray:
		kind := in.Kind
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.Allocs++
			n := fr.stack[fr.sp-1].S.AsInt()
			arr := make([]cir.Value, n)
			for j := range arr {
				arr[j].K = kind
			}
			fr.stack[fr.sp-1] = Array(arr)
			return next
		}
	case bytecode.OpGetField:
		fi := in.A
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.FieldOps++
			tup := fr.stack[fr.sp-1]
			if !tup.IsTup || fi >= len(tup.Tup) {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: bad getfield _%d", name, i, fi+1))
			}
			copyVal(&fr.stack[fr.sp-1], &tup.Tup[fi])
			return next
		}
	case bytecode.OpNewTuple:
		n := in.A
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.Allocs++
			fields := make([]Val, n)
			copy(fields, fr.stack[fr.sp-n:fr.sp])
			fr.sp -= n
			fr.stack[fr.sp] = Tuple(fields...)
			fr.sp++
			return next
		}
	case bytecode.OpGetStatic:
		sf := c.Static(in.Sym)
		if sf == nil {
			errUnknown := fmt.Errorf("jvmsim: %s@%d: unknown static %q", name, i, in.Sym)
			return func(fr *frame) int {
				if fr.steps++; fr.steps > fr.budget {
					return fr.overBudget()
				}
				fr.counts.LoadStore++
				return fr.fail(errUnknown)
			}
		}
		v := Array(sf.Data)
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.LoadStore++
			fr.stack[fr.sp] = v
			fr.sp++
			return next
		}
	case bytecode.OpBin:
		bi := in
		fp := in.Kind.IsFloat()
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			r := fr.stack[fr.sp-1].S
			l := fr.stack[fr.sp-2].S
			fr.sp--
			v, err := binOp(bi, l, r)
			if err != nil {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: %w", name, i, err))
			}
			if fp {
				fr.counts.FpALU++
			} else {
				fr.counts.ALU++
			}
			setScalar(&fr.stack[fr.sp-1], v)
			return next
		}
	case bytecode.OpUn:
		switch in.Un {
		case cir.Neg:
			return func(fr *frame) int {
				if fr.steps++; fr.steps > fr.budget {
					return fr.overBudget()
				}
				x := fr.stack[fr.sp-1].S
				if x.K.IsFloat() {
					setScalar(&fr.stack[fr.sp-1], cir.FloatVal(x.K, -x.F))
					fr.counts.FpALU++
				} else {
					setScalar(&fr.stack[fr.sp-1], cir.IntVal(x.K, -x.I))
					fr.counts.ALU++
				}
				return next
			}
		case cir.Not:
			return func(fr *frame) int {
				if fr.steps++; fr.steps > fr.budget {
					return fr.overBudget()
				}
				x := fr.stack[fr.sp-1].S
				setScalar(&fr.stack[fr.sp-1], cir.BoolVal(!x.IsTrue()))
				fr.counts.ALU++
				return next
			}
		case cir.BitNot:
			return func(fr *frame) int {
				if fr.steps++; fr.steps > fr.budget {
					return fr.overBudget()
				}
				x := fr.stack[fr.sp-1].S
				setScalar(&fr.stack[fr.sp-1], cir.IntVal(x.K, ^x.I))
				fr.counts.ALU++
				return next
			}
		default:
			// The interpreter pops the operand and pushes nothing for an
			// unknown unary operator; mirror that exactly.
			return func(fr *frame) int {
				if fr.steps++; fr.steps > fr.budget {
					return fr.overBudget()
				}
				fr.sp--
				return next
			}
		}
	case bytecode.OpCast:
		kind := in.Kind
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.ALU++
			setScalar(&fr.stack[fr.sp-1], fr.stack[fr.sp-1].S.Convert(kind))
			return next
		}
	case bytecode.OpIntrin:
		sym, kind, n := in.Sym, in.Kind, in.A
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.Intrins++
			var args []cir.Value
			if n <= len(fr.intrinScratch) {
				args = fr.intrinScratch[:n]
			} else {
				args = make([]cir.Value, n)
			}
			for j := 0; j < n; j++ {
				args[j] = fr.stack[fr.sp-n+j].S
			}
			fr.sp -= n
			v, err := cir.EvalIntrinsic(sym, kind, args)
			if err != nil {
				return fr.fail(fmt.Errorf("jvmsim: %s@%d: %w", name, i, err))
			}
			setScalar(&fr.stack[fr.sp], v)
			fr.sp++
			return next
		}
	case bytecode.OpGoto:
		target := in.Target
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.Branches++
			return target
		}
	case bytecode.OpBrFalse:
		target := in.Target
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.Branches++
			fr.sp--
			if !fr.stack[fr.sp].S.IsTrue() {
				return target
			}
			return next
		}
	case bytecode.OpBrTrue:
		target := in.Target
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.counts.Branches++
			fr.sp--
			if fr.stack[fr.sp].S.IsTrue() {
				return target
			}
			return next
		}
	case bytecode.OpReturn:
		if retVoid {
			return func(fr *frame) int {
				if fr.steps++; fr.steps > fr.budget {
					return fr.overBudget()
				}
				fr.ret = Val{}
				return retPC
			}
		}
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			fr.sp--
			fr.ret = fr.stack[fr.sp]
			return retPC
		}
	default:
		errUnknown := fmt.Errorf("jvmsim: %s@%d: unknown opcode", name, i)
		return func(fr *frame) int {
			if fr.steps++; fr.steps > fr.budget {
				return fr.overBudget()
			}
			return fr.fail(errUnknown)
		}
	}
}
