// Package jvmsim executes kernel bytecode the way the paper's baseline
// does: a single-threaded Spark executor on a JVM (paper §5.2 uses one
// executor thread as the comparison point, since offloading to the FPGA
// occupies only one thread). It provides both ground-truth results for
// differential testing of the whole S2FA pipeline and the modeled
// execution times that Fig. 4 normalizes speedups against.
package jvmsim

import (
	"fmt"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// Val is a JVM runtime value: a primitive scalar, an array reference, or
// a tuple object.
type Val struct {
	S     cir.Value
	Arr   []cir.Value
	Tup   []Val
	IsArr bool
	IsTup bool
}

// Scalar wraps a primitive.
func Scalar(v cir.Value) Val { return Val{S: v} }

// Array wraps an array reference.
func Array(a []cir.Value) Val { return Val{Arr: a, IsArr: true} }

// Tuple wraps a tuple object.
func Tuple(fields ...Val) Val { return Val{Tup: fields, IsTup: true} }

func (v Val) String() string {
	switch {
	case v.IsArr:
		return fmt.Sprintf("array[%d]", len(v.Arr))
	case v.IsTup:
		return fmt.Sprintf("tuple%d", len(v.Tup))
	default:
		return v.S.String()
	}
}

// Counts tallies dynamic execution events for the cost model.
type Counts struct {
	ALU          int64 // arithmetic/logic/compare/cast on primitives
	FpALU        int64 // floating-point arithmetic
	ArrayOps     int64 // numeric array loads/stores (bounds-checked, JIT-friendly)
	ByteArrayOps int64 // char/byte array and string-like accesses (charAt-style)
	FieldOps     int64 // tuple field reads (boxed object access)
	Allocs       int64 // array/tuple allocations (GC pressure)
	Branches     int64
	Intrins      int64 // java.lang.Math calls
	LoadStore    int64 // local variable traffic
	Invokes      int64 // method invocations (per-element closure dispatch)
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.ALU += o.ALU
	c.FpALU += o.FpALU
	c.ArrayOps += o.ArrayOps
	c.ByteArrayOps += o.ByteArrayOps
	c.FieldOps += o.FieldOps
	c.Allocs += o.Allocs
	c.Branches += o.Branches
	c.Intrins += o.Intrins
	c.LoadStore += o.LoadStore
	c.Invokes += o.Invokes
}

// VM executes methods of one class.
type VM struct {
	Class  *bytecode.Class
	Counts Counts
	// MaxSteps bounds one invocation. Zero means DefaultMaxSteps; the
	// effective budget is resolved in exactly one place (budget), shared
	// by the interpreter and the compiled (JIT) execution path so both
	// charge the step budget identically.
	MaxSteps int64
	// Trace, when non-nil, is invoked before each instruction executes
	// with the live frame (method, pc, operand stack, locals). Used by
	// the absint differential soundness harness; the hook must not
	// mutate the slices. A VM with a Trace hook always interprets — the
	// compiled path has no per-instruction observation point.
	Trace func(m *bytecode.Method, pc int, stack []Val, locals []Val)

	// prog, when non-nil, is the closure-compiled form of Class; Call,
	// Reduce, and Invoke execute through it (unless Trace is set).
	// frCall/frReduce are the reusable frame arenas — one per method,
	// valid because the instruction set has no method calls, so
	// invocations never nest.
	prog     *Program
	frCall   *frame
	frReduce *frame
}

// DefaultMaxSteps is the per-invocation step budget applied when
// VM.MaxSteps is zero. One "step" is one executed bytecode instruction;
// fused superinstructions in the compiled path charge one step per
// fused component, so interpreter and JIT exhaust the budget at the
// same instruction.
const DefaultMaxSteps = 500_000_000

// budget resolves the effective per-invocation step budget. This is the
// single place the DefaultMaxSteps fallback is applied; both execution
// engines read the budget through it.
func (vm *VM) budget() int64 {
	if vm.MaxSteps > 0 {
		return vm.MaxSteps
	}
	return DefaultMaxSteps
}

// New returns a VM for the class.
func New(c *bytecode.Class) *VM {
	return &VM{Class: c}
}

// Call invokes the class's call method.
func (vm *VM) Call(in Val) (Val, error) {
	vm.Counts.Invokes++
	return vm.Invoke(vm.Class.Call, []Val{in})
}

// CallBatch invokes the class's call method on every task in order,
// returning the per-task outputs. Semantically identical to calling
// Call in a loop; on a JIT-enabled VM the reusable frame arena makes
// this the compile-once/run-many fast path (zero per-task allocation
// beyond what the kernel itself allocates).
func (vm *VM) CallBatch(in []Val) ([]Val, error) {
	out := make([]Val, len(in))
	for i, t := range in {
		v, err := vm.Call(t)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Reduce invokes the class's reduce method.
func (vm *VM) Reduce(a, b Val) (Val, error) {
	if vm.Class.Reduce == nil {
		return Val{}, fmt.Errorf("jvmsim: class %s has no reduce method", vm.Class.Name)
	}
	vm.Counts.Invokes++
	return vm.Invoke(vm.Class.Reduce, []Val{a, b})
}

// Invoke executes a method with the given arguments, through the
// compiled program when one is enabled (and no Trace hook demands
// per-instruction interpretation), otherwise through the interpreter.
// Both paths produce byte-identical outputs, Counts, and errors.
func (vm *VM) Invoke(m *bytecode.Method, args []Val) (Val, error) {
	if vm.prog != nil && vm.Trace == nil {
		if cm, fr := vm.compiled(m); cm != nil {
			return vm.invokeCompiled(cm, fr, args)
		}
	}
	return vm.interpret(m, args)
}

// interpret executes a method on the reference switch-dispatch
// interpreter.
func (vm *VM) interpret(m *bytecode.Method, args []Val) (Val, error) {
	if len(args) != len(m.Params) {
		return Val{}, fmt.Errorf("jvmsim: %s expects %d args, got %d", m.Name, len(m.Params), len(args))
	}
	locals := make([]Val, len(m.LocalTypes))
	copy(locals, args)
	var stack []Val
	push := func(v Val) { stack = append(stack, v) }
	pop := func() Val {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	pc := 0
	var steps int64
	maxSteps := vm.budget()
	for {
		steps++
		if steps > maxSteps {
			return Val{}, fmt.Errorf("jvmsim: %s exceeded step budget", m.Name)
		}
		if pc < 0 || pc >= len(m.Code) {
			return Val{}, fmt.Errorf("jvmsim: %s: pc %d out of range", m.Name, pc)
		}
		in := m.Code[pc]
		if vm.Trace != nil {
			vm.Trace(m, pc, stack, locals)
		}
		switch in.Op {
		case bytecode.OpConst:
			vm.Counts.LoadStore++
			push(Scalar(in.Val))
		case bytecode.OpLoad:
			vm.Counts.LoadStore++
			push(locals[in.A])
		case bytecode.OpStore:
			vm.Counts.LoadStore++
			locals[in.A] = pop()
		case bytecode.OpALoad:
			vm.countArrayOp(in.Kind)
			idx := pop().S.AsInt()
			arr := pop()
			if !arr.IsArr {
				return Val{}, fmt.Errorf("jvmsim: %s@%d: aload on non-array", m.Name, pc)
			}
			if idx < 0 || idx >= int64(len(arr.Arr)) {
				return Val{}, fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", m.Name, pc, idx, len(arr.Arr))
			}
			push(Scalar(arr.Arr[idx]))
		case bytecode.OpAStore:
			vm.countArrayOp(in.Kind)
			val := pop()
			idx := pop().S.AsInt()
			arr := pop()
			if !arr.IsArr {
				return Val{}, fmt.Errorf("jvmsim: %s@%d: astore on non-array", m.Name, pc)
			}
			if idx < 0 || idx >= int64(len(arr.Arr)) {
				return Val{}, fmt.Errorf("jvmsim: %s@%d: ArrayIndexOutOfBounds: %d (length %d)", m.Name, pc, idx, len(arr.Arr))
			}
			arr.Arr[idx] = val.S.Convert(arr.Arr[idx].K)
		case bytecode.OpArrayLen:
			vm.Counts.ALU++
			arr := pop()
			push(Scalar(cir.IntVal(cir.Int, int64(len(arr.Arr)))))
		case bytecode.OpNewArray:
			vm.Counts.Allocs++
			n := pop().S.AsInt()
			arr := make([]cir.Value, n)
			for i := range arr {
				arr[i].K = in.Kind
			}
			push(Array(arr))
		case bytecode.OpGetField:
			vm.Counts.FieldOps++
			tup := pop()
			if !tup.IsTup || in.A >= len(tup.Tup) {
				return Val{}, fmt.Errorf("jvmsim: %s@%d: bad getfield _%d", m.Name, pc, in.A+1)
			}
			push(tup.Tup[in.A])
		case bytecode.OpNewTuple:
			vm.Counts.Allocs++
			fields := make([]Val, in.A)
			for i := in.A - 1; i >= 0; i-- {
				fields[i] = pop()
			}
			push(Tuple(fields...))
		case bytecode.OpGetStatic:
			vm.Counts.LoadStore++
			sf := vm.Class.Static(in.Sym)
			if sf == nil {
				return Val{}, fmt.Errorf("jvmsim: %s@%d: unknown static %q", m.Name, pc, in.Sym)
			}
			push(Array(sf.Data))
		case bytecode.OpBin:
			r := pop().S
			l := pop().S
			v, err := binOp(in, l, r)
			if err != nil {
				return Val{}, fmt.Errorf("jvmsim: %s@%d: %w", m.Name, pc, err)
			}
			if in.Kind.IsFloat() {
				vm.Counts.FpALU++
			} else {
				vm.Counts.ALU++
			}
			push(Scalar(v))
		case bytecode.OpUn:
			x := pop().S
			switch in.Un {
			case cir.Neg:
				if x.K.IsFloat() {
					push(Scalar(cir.FloatVal(x.K, -x.F)))
					vm.Counts.FpALU++
				} else {
					push(Scalar(cir.IntVal(x.K, -x.I)))
					vm.Counts.ALU++
				}
			case cir.Not:
				push(Scalar(cir.BoolVal(!x.IsTrue())))
				vm.Counts.ALU++
			case cir.BitNot:
				push(Scalar(cir.IntVal(x.K, ^x.I)))
				vm.Counts.ALU++
			}
		case bytecode.OpCast:
			vm.Counts.ALU++
			push(Scalar(pop().S.Convert(in.Kind)))
		case bytecode.OpIntrin:
			vm.Counts.Intrins++
			v, err := intrin(in, &stack)
			if err != nil {
				return Val{}, fmt.Errorf("jvmsim: %s@%d: %w", m.Name, pc, err)
			}
			push(Scalar(v))
		case bytecode.OpGoto:
			vm.Counts.Branches++
			pc = in.Target
			continue
		case bytecode.OpBrFalse:
			vm.Counts.Branches++
			if !pop().S.IsTrue() {
				pc = in.Target
				continue
			}
		case bytecode.OpBrTrue:
			vm.Counts.Branches++
			if pop().S.IsTrue() {
				pc = in.Target
				continue
			}
		case bytecode.OpReturn:
			if m.Ret.Kind == cir.Void && !m.Ret.Array && !m.Ret.IsTuple() {
				return Val{}, nil
			}
			return pop(), nil
		default:
			return Val{}, fmt.Errorf("jvmsim: %s@%d: unknown opcode", m.Name, pc)
		}
		pc++
	}
}

// countArrayOp buckets an array access by element class: narrow
// character-like elements model the String/char path of the paper's Scala
// kernels (charAt, boxing) and cost more than JIT-vectorizable numeric
// arrays.
func (vm *VM) countArrayOp(k cir.Kind) {
	if isByteArrayKind(k) {
		vm.Counts.ByteArrayOps++
	} else {
		vm.Counts.ArrayOps++
	}
}

// isByteArrayKind is the bucketing predicate shared by the interpreter
// and the JIT (which resolves it at compile time per instruction).
func isByteArrayKind(k cir.Kind) bool {
	switch k {
	case cir.Char, cir.Bool, cir.Short:
		return true
	}
	return false
}

func binOp(in bytecode.Instr, l, r cir.Value) (cir.Value, error) {
	switch in.Bin {
	case cir.LAnd:
		return cir.BoolVal(l.IsTrue() && r.IsTrue()), nil
	case cir.LOr:
		return cir.BoolVal(l.IsTrue() || r.IsTrue()), nil
	}
	return cir.EvalBinary(in.Bin, in.Kind, l, r)
}

func intrin(in bytecode.Instr, stack *[]Val) (cir.Value, error) {
	args := make([]cir.Value, in.A)
	for i := in.A - 1; i >= 0; i-- {
		s := *stack
		args[i] = s[len(s)-1].S
		*stack = s[:len(s)-1]
	}
	return cir.EvalIntrinsic(in.Sym, in.Kind, args)
}
