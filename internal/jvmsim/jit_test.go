package jvmsim

import (
	"reflect"
	"testing"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// diffCall runs the same input through a fresh interpreter VM and a
// fresh JIT VM of cls (both with maxSteps, zero meaning the default)
// and asserts byte-identical outputs, errors, and Counts.
func diffCall(t *testing.T, cls *bytecode.Class, maxSteps int64, in Val) {
	t.Helper()
	vmI := New(cls)
	vmI.MaxSteps = maxSteps
	vmJ, err := NewJIT(cls)
	if err != nil {
		t.Fatalf("NewJIT: %v", err)
	}
	vmJ.MaxSteps = maxSteps
	if !vmJ.JITEnabled() {
		t.Fatal("JIT not enabled")
	}
	outI, errI := vmI.Call(in)
	outJ, errJ := vmJ.Call(in)
	if (errI == nil) != (errJ == nil) {
		t.Fatalf("error divergence: interp=%v jit=%v", errI, errJ)
	}
	if errI != nil && errI.Error() != errJ.Error() {
		t.Fatalf("error text divergence:\n  interp: %v\n  jit:    %v", errI, errJ)
	}
	if errI == nil && !reflect.DeepEqual(outI, outJ) {
		t.Fatalf("output divergence: interp=%v jit=%v", outI, outJ)
	}
	if vmI.Counts != vmJ.Counts {
		t.Fatalf("counts divergence:\n  interp: %+v\n  jit:    %+v", vmI.Counts, vmJ.Counts)
	}
}

func intVal(v int64) Val { return Scalar(cir.IntVal(cir.Int, v)) }

// fusionKernels exercise each superinstruction rule from source-level
// kernels whose bytecode contains the fused pattern.
var fusionKernels = []struct {
	name     string
	src      string
	in       func() Val
	minFused int
}{
	{
		// `a + b` with both operands local: load a; load b; bin.
		name: "load-load-bin",
		src: `
class F1 extends Accelerator[(Int, Int), Int] {
  val id: String = "f1"
  def call(in: (Int, Int)): Int = {
    val a: Int = in._1
    val b: Int = in._2
    a * b + (a - b)
  }
}`,
		in:       func() Val { return Tuple(intVal(6), intVal(7)) },
		minFused: 1,
	},
	{
		// `arr(i)` with array and index local: load arr; load i; aload.
		name: "load-load-aload",
		src: `
class F2 extends Accelerator[Int, Int] {
  val id: String = "f2"
  def call(in: Int): Int = {
    val arr: Array[Int] = new Array[Int](4)
    var i: Int = 0
    while (i < 4) {
      arr(i) = i * in
      i = i + 1
    }
    var acc: Int = 0
    i = 0
    while (i < 4) {
      acc = acc + arr(i)
      i = i + 1
    }
    acc
  }
}`,
		in:       func() Val { return intVal(3) },
		minFused: 1,
	},
	{
		// `in._1` with the tuple local: load in; getfield.
		name: "load-getfield",
		src: `
class F3 extends Accelerator[(Int, Int), Int] {
  val id: String = "f3"
  def call(in: (Int, Int)): Int = {
    in._1 - in._2
  }
}`,
		in:       func() Val { return Tuple(intVal(10), intVal(4)) },
		minFused: 1,
	},
}

// TestFusionRules compiles one kernel per superinstruction family,
// checks the rule actually fired, and proves the fused execution is
// byte-identical to the interpreter.
func TestFusionRules(t *testing.T) {
	for _, tc := range fusionKernels {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			vm := compile(t, tc.src)
			p, err := Compile(vm.Class)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			st := p.Stats()
			if st.Fused < tc.minFused {
				t.Errorf("fused = %d, want >= %d (ops=%d)", st.Fused, tc.minFused, st.Ops)
			}
			diffCall(t, vm.Class, 0, tc.in())
		})
	}
}

// straightLineClass hand-assembles `call(in: Int): Int = in + in`, whose
// body is exactly one load-load-bin superinstruction plus a return —
// four bytecode steps total.
func straightLineClass(t *testing.T, extra ...bytecode.Instr) *bytecode.Class {
	t.Helper()
	code := []bytecode.Instr{
		{Op: bytecode.OpLoad, A: 0},
		{Op: bytecode.OpLoad, A: 0},
		{Op: bytecode.OpBin, Bin: cir.Add, Kind: cir.Int},
		{Op: bytecode.OpReturn},
	}
	code = append(code, extra...)
	m := &bytecode.Method{
		Name:       "call",
		Params:     []bytecode.TypeDesc{bytecode.Prim(cir.Int)},
		Ret:        bytecode.Prim(cir.Int),
		LocalTypes: []bytecode.TypeDesc{bytecode.Prim(cir.Int)},
		LocalNames: []string{"in"},
		Code:       code,
	}
	return &bytecode.Class{Name: "SL", ID: "sl", Call: m, InSizes: []int{1}}
}

// TestMaxStepsBoundary walks the budget through every prefix of a fused
// superinstruction and asserts interpreter and JIT exhaust the budget at
// the same component with the same partial Counts — the per-component
// charging contract that keeps MaxSteps semantics identical.
func TestMaxStepsBoundary(t *testing.T) {
	cls := straightLineClass(t)
	for budget := int64(1); budget <= 5; budget++ {
		diffCall(t, cls, budget, intVal(21))
	}
	// The method needs exactly 4 steps: budget 3 must fail, 4 succeed.
	vm, err := NewJIT(cls)
	if err != nil {
		t.Fatal(err)
	}
	vm.MaxSteps = 3
	if _, err := vm.Call(intVal(21)); err == nil {
		t.Error("budget 3 should exhaust")
	}
	vm.MaxSteps = 4
	out, err := vm.Call(intVal(21))
	if err != nil {
		t.Fatalf("budget 4 should suffice: %v", err)
	}
	if out.S.I != 42 {
		t.Errorf("out = %d, want 42", out.S.I)
	}
}

// TestDefaultMaxSteps checks the zero-value budget resolves to
// DefaultMaxSteps on both engines (satellite: the default is applied in
// exactly one place, not per-invocation ad hoc).
func TestDefaultMaxSteps(t *testing.T) {
	vm := New(straightLineClass(t))
	if got := vm.budget(); got != DefaultMaxSteps {
		t.Errorf("budget() = %d, want DefaultMaxSteps", got)
	}
	vm.MaxSteps = 7
	if got := vm.budget(); got != 7 {
		t.Errorf("budget() = %d, want 7", got)
	}
	diffCall(t, straightLineClass(t), 0, intVal(1))
}

// TestFusionBarrierAtLeader hand-builds code where the Bin of a
// load-load-bin triple is a branch target. Structurally verified code
// can never look like this (the operand stack is non-empty mid
// expression, so interiors are never leaders) — the JIT must reject it
// rather than fuse across the boundary or miscompile.
func TestFusionBarrierAtLeader(t *testing.T) {
	cmPlain, err := compileMethod(straightLineClass(t), straightLineClass(t).Call)
	if err != nil {
		t.Fatal(err)
	}
	if cmPlain.fused != 1 {
		t.Errorf("plain: fused = %d, want 1", cmPlain.fused)
	}
	// A trailing (unreachable) goto that targets the Bin makes
	// instruction 2 a leader.
	blocked := straightLineClass(t, bytecode.Instr{Op: bytecode.OpGoto, Target: 2})
	if _, err := compileMethod(blocked, blocked.Call); err == nil {
		t.Error("leader mid-expression should fail depth analysis")
	}
	if _, err := Compile(blocked); err == nil {
		t.Error("Compile should reject a class the structural verifier rejects")
	}
}

// TestFrameReuse proves repeated invocations on one JIT VM neither leak
// state across tasks nor allocate per task.
func TestFrameReuse(t *testing.T) {
	cls := straightLineClass(t)
	vm, err := NewJIT(cls)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		out, err := vm.Call(intVal(i))
		if err != nil {
			t.Fatal(err)
		}
		if out.S.I != 2*i {
			t.Fatalf("call(%d) = %d, want %d", i, out.S.I, 2*i)
		}
	}
	in := intVal(5)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := vm.Call(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Call allocates %.1f per task on the frame arena, want 0", allocs)
	}
}

// TestErrorPathEquivalence drives both engines into each runtime error
// and asserts identical error text and identical partial Counts.
func TestErrorPathEquivalence(t *testing.T) {
	t.Run("array-out-of-bounds", func(t *testing.T) {
		vm := compile(t, `
class E1 extends Accelerator[Int, Int] {
  val id: String = "e1"
  def call(in: Int): Int = {
    val arr: Array[Int] = new Array[Int](3)
    arr(in)
  }
}`)
		diffCall(t, vm.Class, 0, intVal(10))
		diffCall(t, vm.Class, 0, intVal(-1))
		diffCall(t, vm.Class, 0, intVal(2))
	})
	t.Run("div-by-zero", func(t *testing.T) {
		vm := compile(t, `
class E2 extends Accelerator[(Int, Int), Int] {
  val id: String = "e2"
  def call(in: (Int, Int)): Int = {
    val a: Int = in._1
    val b: Int = in._2
    a / b
  }
}`)
		diffCall(t, vm.Class, 0, Tuple(intVal(7), intVal(0)))
		diffCall(t, vm.Class, 0, Tuple(intVal(7), intVal(2)))
	})
	t.Run("arity", func(t *testing.T) {
		cls := straightLineClass(t)
		vmJ, err := NewJIT(cls)
		if err != nil {
			t.Fatal(err)
		}
		_, errJ := vmJ.Invoke(cls.Call, nil)
		_, errI := New(cls).Invoke(cls.Call, nil)
		if errJ == nil || errI == nil || errJ.Error() != errI.Error() {
			t.Errorf("arity errors differ: interp=%v jit=%v", errI, errJ)
		}
	})
}

// TestTraceForcesInterpreter: a VM with a per-instruction Trace hook
// must interpret (the compiled path has no observation point) and the
// hook must fire.
func TestTraceForcesInterpreter(t *testing.T) {
	cls := straightLineClass(t)
	vm, err := NewJIT(cls)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	vm.Trace = func(m *bytecode.Method, pc int, stack, locals []Val) { fired++ }
	if vm.JITEnabled() {
		t.Error("JITEnabled with Trace hook")
	}
	if vm.TryJIT() {
		t.Error("TryJIT with Trace hook")
	}
	out, err := vm.Call(intVal(4))
	if err != nil {
		t.Fatal(err)
	}
	if out.S.I != 8 || fired != 4 {
		t.Errorf("out=%d fired=%d, want 8 and 4", out.S.I, fired)
	}
}

// TestCallBatch checks the batched loop matches call-by-call execution.
func TestCallBatch(t *testing.T) {
	cls := straightLineClass(t)
	vm, err := NewJIT(cls)
	if err != nil {
		t.Fatal(err)
	}
	in := []Val{intVal(1), intVal(2), intVal(3)}
	out, err := vm.CallBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v.S.I != 2*int64(i+1) {
			t.Errorf("out[%d] = %d", i, v.S.I)
		}
	}
	if vm.Counts.Invokes != 3 {
		t.Errorf("Invokes = %d, want 3", vm.Counts.Invokes)
	}
}

// TestCompileCachedSharing: two VMs of one class share one Program.
func TestCompileCachedSharing(t *testing.T) {
	cls := straightLineClass(t)
	a, err := CompileCached(cls)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileCached(cls)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("CompileCached returned distinct programs for one class")
	}
}
