package jvmsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"s2fa/internal/cir"
	"s2fa/internal/kdsl"
)

// compile builds a class from source, failing the test on error.
func compile(t *testing.T, src string) *VM {
	t.Helper()
	cls, err := kdsl.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return New(cls)
}

const arithSrc = `
class A extends Accelerator[(Int, Int), Int] {
  val id: String = "a"
  def call(in: (Int, Int)): Int = {
    val a: Int = in._1
    val b: Int = in._2
    (a + b) * (a - b) + a / (b + 1) + (a % (b + 1)) + (a << 2) + (b >> 1) + (a & b) + (a | b) + (a ^ b)
  }
}
`

func arithRef(a, b int32) int32 {
	return (a+b)*(a-b) + a/(b+1) + a%(b+1) + a<<2 + b>>1 + a&b + a | b + a ^ b
}

// TestArithmeticAgainstGo compares the interpreter's Int semantics with
// Go's int32 arithmetic (both are two's-complement 32-bit).
func TestArithmeticAgainstGo(t *testing.T) {
	vm := compile(t, arithSrc)
	f := func(a, b int16) bool { // int16 inputs avoid 32-bit overflow UB concerns
		if b+1 == 0 {
			return true
		}
		got, err := vm.Call(Tuple(
			Scalar(cir.IntVal(cir.Int, int64(a))),
			Scalar(cir.IntVal(cir.Int, int64(b))),
		))
		if err != nil {
			return false
		}
		// Go evaluates a&b+a|b differently due to precedence; mirror the
		// kernel's explicit parentheses instead.
		a32, b32 := int32(a), int32(b)
		want := (a32+b32)*(a32-b32) + a32/(b32+1) + (a32 % (b32 + 1)) + (a32 << 2) + (b32 >> 1) + (a32 & b32) + (a32 | b32) + (a32 ^ b32)
		return got.S.I == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShortCircuitSemantics(t *testing.T) {
	// Division by zero on the right of && must not execute when the left
	// is false.
	vm := compile(t, `
class S extends Accelerator[Int, Int] {
  val id: String = "s"
  def call(in: Int): Int = {
    var out: Int = 0
    if (in != 0 && 10 / in > 1) {
      out = 1
    }
    out
  }
}`)
	res, err := vm.Call(Scalar(cir.IntVal(cir.Int, 0)))
	if err != nil {
		t.Fatalf("short-circuit failed: %v", err)
	}
	if res.S.I != 0 {
		t.Errorf("result = %d", res.S.I)
	}
	res, err = vm.Call(Scalar(cir.IntVal(cir.Int, 2)))
	if err != nil || res.S.I != 1 {
		t.Errorf("10/2>1 path: %v %v", res, err)
	}
}

func TestForToInclusive(t *testing.T) {
	vm := compile(t, `
class F extends Accelerator[Int, Int] {
  val id: String = "f"
  def call(in: Int): Int = {
    var s: Int = 0
    for (i <- 1 to 10) {
      s = s + i
    }
    s
  }
}`)
	res, err := vm.Call(Scalar(cir.IntVal(cir.Int, 0)))
	if err != nil || res.S.I != 55 {
		t.Errorf("sum 1..10 = %v (%v)", res, err)
	}
}

func TestNameShadowing(t *testing.T) {
	// Two loops reusing the same induction variable name must not
	// interfere (slot-name uniquification in the compiler).
	vm := compile(t, `
class Sh extends Accelerator[Int, Int] {
  val id: String = "sh"
  def call(in: Int): Int = {
    var s: Int = 0
    for (i <- 0 until 3) {
      s = s + i
    }
    for (i <- 0 until 4) {
      s = s + i * 10
    }
    var i: Int = 100
    s + i
  }
}`)
	res, err := vm.Call(Scalar(cir.IntVal(cir.Int, 0)))
	want := int64(0+1+2) + int64(0+10+20+30) + 100
	if err != nil || res.S.I != want {
		t.Errorf("result = %v (%v), want %d", res, err, want)
	}
}

func TestArrayIndexOutOfBounds(t *testing.T) {
	vm := compile(t, `
class O extends Accelerator[Int, Int] {
  val id: String = "o"
  def call(in: Int): Int = {
    var a: Array[Int] = new Array[Int](4)
    a(in)
  }
}`)
	_, err := vm.Call(Scalar(cir.IntVal(cir.Int, 9)))
	if err == nil || !strings.Contains(err.Error(), "ArrayIndexOutOfBounds") {
		t.Errorf("err = %v", err)
	}
	_, err = vm.Call(Scalar(cir.IntVal(cir.Int, -1)))
	if err == nil {
		t.Error("negative index accepted")
	}
}

func TestCountsAccumulate(t *testing.T) {
	vm := compile(t, minimalLoop)
	before := vm.Counts
	if _, err := vm.Call(Scalar(cir.IntVal(cir.Int, 8))); err != nil {
		t.Fatal(err)
	}
	after := vm.Counts
	if after.ALU <= before.ALU || after.Branches <= before.Branches {
		t.Errorf("counts did not grow: %+v", after)
	}
	if after.Allocs != 1 {
		t.Errorf("allocs = %d, want 1 (one new array)", after.Allocs)
	}
}

const minimalLoop = `
class L extends Accelerator[Int, Int] {
  val id: String = "l"
  def call(in: Int): Int = {
    var a: Array[Int] = new Array[Int](16)
    for (i <- 0 until 16) {
      a(i) = i * in
    }
    a(15)
  }
}
`

func TestCostModelMonotone(t *testing.T) {
	cm := DefaultCostModel()
	small := Counts{ALU: 10, ArrayOps: 5}
	big := Counts{ALU: 100, ArrayOps: 50}
	if cm.Nanoseconds(big) <= cm.Nanoseconds(small) {
		t.Error("cost model not monotone in counts")
	}
	// Byte-array accesses (String-path) must cost more than numeric ones.
	byteHeavy := Counts{ByteArrayOps: 100}
	numHeavy := Counts{ArrayOps: 100}
	if cm.Nanoseconds(byteHeavy) <= cm.Nanoseconds(numHeavy) {
		t.Error("byte-array accesses should cost more than numeric array accesses")
	}
}

func TestCountsAddAll(t *testing.T) {
	a := Counts{ALU: 1, FpALU: 2, ArrayOps: 3, ByteArrayOps: 4, FieldOps: 5,
		Allocs: 6, Branches: 7, Intrins: 8, LoadStore: 9, Invokes: 10}
	var b Counts
	b.Add(a)
	b.Add(a)
	if b.ALU != 2 || b.Invokes != 20 || b.ByteArrayOps != 8 {
		t.Errorf("Add broken: %+v", b)
	}
}

func TestFloatSemantics(t *testing.T) {
	vm := compile(t, `
class FP extends Accelerator[Double, Double] {
  val id: String = "fp"
  def call(in: Double): Double = {
    Math.sqrt(in * in) + Math.exp(0.0) + Math.max(in, -in)
  }
}`)
	res, err := vm.Call(Scalar(cir.FloatVal(cir.Double, -3.0)))
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 + 1.0 + 3.0
	if math.Abs(res.S.F-want) > 1e-12 {
		t.Errorf("result = %v, want %v", res.S.F, want)
	}
}

func TestReduceRequiresMethod(t *testing.T) {
	vm := compile(t, minimalLoop)
	if _, err := vm.Reduce(Scalar(cir.IntVal(cir.Int, 1)), Scalar(cir.IntVal(cir.Int, 2))); err == nil {
		t.Error("Reduce without a reduce method accepted")
	}
}

func TestInvokeArityChecked(t *testing.T) {
	vm := compile(t, minimalLoop)
	if _, err := vm.Invoke(vm.Class.Call, nil); err == nil {
		t.Error("missing arguments accepted")
	}
}
