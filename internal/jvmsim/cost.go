package jvmsim

import "time"

// CostModel converts dynamic execution counts into modeled wall-clock
// time for a single-threaded Spark executor on a JVM. The per-event costs
// reflect the mix the paper's baseline pays: JIT-compiled arithmetic is
// cheap, while bounds-checked array traffic, boxed Tuple2 field access,
// allocation/GC pressure, and per-element closure dispatch through the
// RDD iterator dominate — which is why string-processing kernels (byte
// and table-lookup heavy) fall so much further behind the FPGA than
// floating-point ML kernels (paper §5.2: 1225.2x vs 49.9x).
type CostModel struct {
	ALUNs         float64 // JIT-ed integer op
	FpALUNs       float64 // JIT-ed floating op (SIMD-friendly)
	ArrayOpNs     float64 // numeric array access (bounds check mostly hoisted)
	ByteArrayOpNs float64 // char/byte access through String-like paths
	FieldOpNs     float64 // boxed tuple field read (unbox + pointer chase)
	AllocNs       float64 // allocation plus amortized GC
	BranchNs      float64
	IntrinNs      float64 // java.lang.Math native call
	LoadStoreNs   float64
	InvokeNs      float64 // per-element closure dispatch via RDD iterator
}

// DefaultCostModel returns the calibrated single-thread executor profile.
func DefaultCostModel() CostModel {
	return CostModel{
		ALUNs:         0.5,
		FpALUNs:       0.4,
		ArrayOpNs:     1.0,
		ByteArrayOpNs: 4.5,
		FieldOpNs:     4.0,
		AllocNs:       25.0,
		BranchNs:      0.6,
		IntrinNs:      15.0,
		LoadStoreNs:   0.25,
		InvokeNs:      70.0,
	}
}

// Nanoseconds returns the modeled execution time of the counted events.
func (c CostModel) Nanoseconds(n Counts) float64 {
	return float64(n.ALU)*c.ALUNs +
		float64(n.FpALU)*c.FpALUNs +
		float64(n.ArrayOps)*c.ArrayOpNs +
		float64(n.ByteArrayOps)*c.ByteArrayOpNs +
		float64(n.FieldOps)*c.FieldOpNs +
		float64(n.Allocs)*c.AllocNs +
		float64(n.Branches)*c.BranchNs +
		float64(n.Intrins)*c.IntrinNs +
		float64(n.LoadStore)*c.LoadStoreNs +
		float64(n.Invokes)*c.InvokeNs
}

// Duration converts counted events into a time.Duration.
func (c CostModel) Duration(n Counts) time.Duration {
	return time.Duration(c.Nanoseconds(n))
}
