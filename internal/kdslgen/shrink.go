package kdslgen

import "s2fa/internal/cir"

// Shrink delta-debugs the kernel against fails: it enumerates structural
// edits (drop a statement, unwrap a branch, halve a trip count, prune a
// subexpression), keeps the first edit that both reduces the kernel's
// weight and still fails, and repeats to a fixpoint. The result is a
// locally minimal kernel that still fails.
//
// fails must return true only for the failure being chased: shrunk
// candidates can be broken in unrelated ways (a dropped declaration
// leaves a dangling use, so the candidate no longer compiles), and the
// predicate must answer false for those, not error out.
func (k *Kernel) Shrink(fails func(*Kernel) bool) *Kernel {
	cur := k.p
	curW := weight(cur)
	for {
		improved := false
		total := enumEdits(cur, -1)
		for e := 0; e < total; e++ {
			cand := cur.clone()
			enumEdits(cand, e)
			w := weight(cand)
			if w >= curW {
				continue
			}
			ck := newKernel(cand)
			ck.opt = k.opt
			if fails(ck) {
				cur, curW = cand, w
				improved = true
				break
			}
		}
		if !improved {
			out := newKernel(cur)
			out.opt = k.opt
			return out
		}
	}
}

// weight is the size metric shrinking minimizes: every statement and
// expression node counts 1, and counted loops additionally weigh their
// trip count so halving a trip is progress.
func weight(p *prog) int {
	w := 0
	var block func([]stmt)
	var ex func(expr)
	ex = func(e expr) {
		if e == nil {
			return
		}
		w++
		switch e := e.(type) {
		case *loadE:
			ex(e.Idx)
		case *binE:
			ex(e.L)
			ex(e.R)
		case *unE:
			ex(e.X)
		case *castE:
			ex(e.X)
		case *mathE:
			for _, a := range e.Args {
				ex(a)
			}
		}
	}
	block = func(b []stmt) {
		for _, s := range b {
			w++
			switch s := s.(type) {
			case *declS:
				ex(s.Init)
			case *assignS:
				ex(s.E)
			case *storeS:
				ex(s.Idx)
				ex(s.E)
			case *forS:
				w += s.Hi - s.Lo
				block(s.Body)
			case *whileS:
				ex(s.Extra)
				block(s.Body)
			case *ifS:
				ex(s.Cond)
				block(s.Then)
				block(s.Else)
			}
		}
	}
	block(p.Body)
	return w
}

// editState drives one walk over the tree: with target -1 it only counts
// edit sites; otherwise it applies edit number target in place.
type editState struct {
	target  int
	counter int
	applied bool
}

func (st *editState) hit() bool {
	idx := st.counter
	st.counter++
	if idx == st.target {
		st.applied = true
		return true
	}
	return false
}

// enumEdits counts the edit sites of p (target == -1) or applies edit
// number target, mutating p. The walk order is deterministic, and
// counting and applying walk identically, so edit indices are stable.
func enumEdits(p *prog, target int) int {
	st := &editState{target: target}
	editBlock(st, &p.Body, p.ResultVar)
	return st.counter
}

func editBlock(st *editState, b *[]stmt, resultVar string) {
	for i := 0; i < len(*b); i++ {
		if st.applied {
			return
		}
		s := (*b)[i]
		if !declares(s, resultVar) && st.hit() {
			*b = append((*b)[:i:i], (*b)[i+1:]...)
			return
		}
		editStmt(st, s, b, i, resultVar)
	}
}

// declares reports whether removing s would undefine the result
// variable — the one statement removal that can never shrink a valid
// failing kernel into another valid kernel.
func declares(s stmt, name string) bool {
	switch s := s.(type) {
	case *declS:
		return s.Name == name
	case *declArrS:
		return s.Name == name
	case *bindS:
		return s.Name == name
	case *assignS:
		// Keep the final write to the result var so scalar kernels stay
		// meaningful while their loops shrink away.
		return s.Name == name
	}
	return false
}

func editStmt(st *editState, s stmt, parent *[]stmt, i int, resultVar string) {
	switch s := s.(type) {
	case *declS:
		editExpr(st, &s.Init)
	case *assignS:
		editExpr(st, &s.E)
	case *storeS:
		editExpr(st, &s.Idx)
		if !st.applied {
			editExpr(st, &s.E)
		}
	case *forS:
		if s.Hi-s.Lo > 1 && st.hit() {
			s.Hi = s.Lo + (s.Hi-s.Lo)/2
			return
		}
		editBlock(st, &s.Body, resultVar)
	case *whileS:
		if s.Extra != nil && st.hit() {
			s.Extra = nil
			return
		}
		editBlock(st, &s.Body, resultVar)
	case *ifS:
		// Unwrap to either arm.
		if st.hit() {
			(*parent)[i] = &blockStmtShim{Body: s.Then}
			flatten(parent)
			return
		}
		if len(s.Else) > 0 && st.hit() {
			(*parent)[i] = &blockStmtShim{Body: s.Else}
			flatten(parent)
			return
		}
		editExpr(st, &s.Cond)
		if !st.applied {
			editBlock(st, &s.Then, resultVar)
		}
		if !st.applied {
			editBlock(st, &s.Else, resultVar)
		}
	}
}

// blockStmtShim splices a block into its parent; it only ever exists
// transiently inside enumEdits (flatten removes it before returning).
type blockStmtShim struct{ Body []stmt }

func (*blockStmtShim) isStmt() {}

func flatten(b *[]stmt) {
	out := make([]stmt, 0, len(*b))
	for _, s := range *b {
		if sh, ok := s.(*blockStmtShim); ok {
			out = append(out, sh.Body...)
			continue
		}
		out = append(out, s)
	}
	*b = out
}

func editExpr(st *editState, ep *expr) {
	if st.applied || *ep == nil {
		return
	}
	e := *ep
	// Replace the whole expression with a same-kind zero, unless it is
	// already a bare literal.
	switch e.(type) {
	case *intE, *floatE:
	default:
		if st.hit() {
			*ep = zeroOf(e.kind())
			return
		}
	}
	switch e := e.(type) {
	case *loadE:
		editExpr(st, &e.Idx)
	case *binE:
		if e.L.kind() == e.kind() && st.hit() {
			*ep = e.L
			return
		}
		if e.R.kind() == e.kind() && st.hit() {
			*ep = e.R
			return
		}
		editExpr(st, &e.L)
		if !st.applied {
			editExpr(st, &e.R)
		}
	case *unE:
		if e.X.kind() == e.kind() && st.hit() {
			*ep = e.X
			return
		}
		editExpr(st, &e.X)
	case *castE:
		if e.X.kind() == e.To && st.hit() {
			*ep = e.X
			return
		}
		editExpr(st, &e.X)
	case *mathE:
		for i := range e.Args {
			if e.Args[i].kind() == e.kind() && st.hit() {
				*ep = e.Args[i]
				return
			}
		}
		for i := range e.Args {
			if st.applied {
				return
			}
			editExpr(st, &e.Args[i])
		}
	}
}

// zeroOf builds a renderable zero of the given kind: plain literals for
// Int/Long/Double, a cast literal for kinds with no literal form.
func zeroOf(k cir.Kind) expr {
	switch k {
	case cir.Int:
		return iconst(0)
	case cir.Long:
		return &intE{K: cir.Long, V: 0}
	case cir.Double:
		return fconst(0)
	case cir.Bool:
		// No Bool zero literal in the mini-IR; use a trivially false
		// comparison.
		return bin(cir.Ne, iconst(0), iconst(0))
	default: // Char, Short, Float
		return &castE{To: k, X: iconst(0)}
	}
}
