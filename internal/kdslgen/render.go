package kdslgen

import (
	"fmt"
	"strings"

	"s2fa/internal/cir"
)

// render prints the prog as kdsl source in the same style as the
// hand-written workloads in internal/apps. Subexpressions are fully
// parenthesized so rendering is independent of operator precedence.
func (p *prog) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s extends Accelerator[%s, %s] {\n",
		p.ClassName, inTypeStr(p.In), tsStr(p.Out))
	fmt.Fprintf(&b, "  val id: String = %q\n", p.ID)
	if needsInSizes(p.In) {
		sizes := make([]string, len(p.In))
		for i, f := range p.In {
			n := 1
			if f.Arr {
				n = f.Len
			}
			sizes[i] = fmt.Sprint(n)
		}
		fmt.Fprintf(&b, "  val inSizes: Array[Int] = Array(%s)\n", strings.Join(sizes, ", "))
	}
	for _, c := range p.Consts {
		fmt.Fprintf(&b, "  val %s: %s = %s\n", c.Name, tsStr(typeSpec{K: c.K, Arr: c.Arr}), constInit(c))
	}
	fmt.Fprintf(&b, "  def call(in: %s): %s = {\n", inTypeStr(p.In), tsStr(p.Out))
	renderBlock(&b, p.Body, 2)
	fmt.Fprintf(&b, "    %s\n  }\n", p.ResultVar)
	if p.Reduce != "" {
		t := tsStr(p.Out)
		fmt.Fprintf(&b, "  def reduce(a: %s, b: %s): %s = {\n", t, t, t)
		fmt.Fprintf(&b, "    for (i <- 0 until %d) {\n      a(i) = (a(i) + b(i))\n    }\n    a\n  }\n", p.Out.Len)
	}
	b.WriteString("}\n")
	return b.String()
}

func needsInSizes(in []typeSpec) bool {
	for _, f := range in {
		if f.Arr {
			return true
		}
	}
	return false
}

func inTypeStr(in []typeSpec) string {
	if len(in) == 1 {
		return tsStr(in[0])
	}
	parts := make([]string, len(in))
	for i, f := range in {
		parts[i] = tsStr(f)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func tsStr(t typeSpec) string {
	if t.Arr {
		return "Array[" + kindStr(t.K) + "]"
	}
	return kindStr(t.K)
}

func kindStr(k cir.Kind) string {
	switch k {
	case cir.Bool:
		return "Boolean"
	case cir.Char:
		return "Char"
	case cir.Short:
		return "Short"
	case cir.Int:
		return "Int"
	case cir.Long:
		return "Long"
	case cir.Float:
		return "Float"
	case cir.Double:
		return "Double"
	}
	return "?"
}

func constInit(c constDef) string {
	var lits []string
	if c.K.IsFloat() {
		for _, v := range c.Fls {
			lits = append(lits, floatLit(v))
		}
	} else {
		for _, v := range c.Ints {
			s := fmt.Sprint(v)
			if c.K == cir.Long {
				s += "L"
			}
			lits = append(lits, s)
		}
	}
	if !c.Arr {
		return lits[0]
	}
	return "Array(" + strings.Join(lits, ", ") + ")"
}

func floatLit(v float64) string {
	s := fmt.Sprintf("%.17g", v)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func renderBlock(b *strings.Builder, stmts []stmt, depth int) {
	for _, s := range stmts {
		renderStmt(b, s, depth)
	}
}

func ind(depth int) string { return strings.Repeat("  ", depth) }

func renderStmt(b *strings.Builder, s stmt, depth int) {
	pre := ind(depth)
	switch s := s.(type) {
	case *declS:
		kw := "val"
		if s.Mut {
			kw = "var"
		}
		fmt.Fprintf(b, "%s%s %s: %s = %s\n", pre, kw, s.Name, kindStr(s.K), renderExpr(s.Init))
	case *declArrS:
		fmt.Fprintf(b, "%svar %s: Array[%s] = new Array[%s](%d)\n", pre, s.Name, kindStr(s.K), kindStr(s.K), s.Len)
	case *bindS:
		src := "in"
		if s.Field >= 0 {
			src = fmt.Sprintf("in._%d", s.Field+1)
		}
		fmt.Fprintf(b, "%sval %s: %s = %s\n", pre, s.Name, tsStr(s.T), src)
	case *assignS:
		fmt.Fprintf(b, "%s%s = %s\n", pre, s.Name, renderExpr(s.E))
	case *storeS:
		fmt.Fprintf(b, "%s%s(%s) = %s\n", pre, s.Arr, renderExpr(s.Idx), renderExpr(s.E))
	case *forS:
		fmt.Fprintf(b, "%sfor (%s <- %d until %d) {\n", pre, s.Var, s.Lo, s.Hi)
		renderBlock(b, s.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", pre)
	case *whileS:
		cond := fmt.Sprintf("%s > 0", s.Var)
		if s.Extra != nil {
			cond = fmt.Sprintf("(%s > 0) && %s", s.Var, renderExpr(s.Extra))
		}
		fmt.Fprintf(b, "%swhile (%s) {\n", pre, cond)
		renderBlock(b, s.Body, depth+1)
		fmt.Fprintf(b, "%s%s = %s - 1\n", ind(depth+1), s.Var, s.Var)
		fmt.Fprintf(b, "%s}\n", pre)
	case *ifS:
		fmt.Fprintf(b, "%sif (%s) {\n", pre, renderExpr(s.Cond))
		renderBlock(b, s.Then, depth+1)
		if len(s.Else) > 0 {
			fmt.Fprintf(b, "%s} else {\n", pre)
			renderBlock(b, s.Else, depth+1)
		}
		fmt.Fprintf(b, "%s}\n", pre)
	}
}

var opSym = map[cir.BinOp]string{
	cir.Add: "+", cir.Sub: "-", cir.Mul: "*", cir.Div: "/", cir.Rem: "%",
	cir.And: "&", cir.Or: "|", cir.Xor: "^", cir.Shl: "<<", cir.Shr: ">>",
	cir.Lt: "<", cir.Le: "<=", cir.Gt: ">", cir.Ge: ">=", cir.Eq: "==", cir.Ne: "!=",
	cir.LAnd: "&&", cir.LOr: "||",
}

var castSel = map[cir.Kind]string{
	cir.Char: "toChar", cir.Short: "toShort", cir.Int: "toInt",
	cir.Long: "toLong", cir.Float: "toFloat", cir.Double: "toDouble",
}

func renderExpr(e expr) string {
	switch e := e.(type) {
	case *intE:
		s := fmt.Sprint(e.V)
		if e.K == cir.Long {
			s += "L"
		}
		if e.V < 0 {
			s = "(" + s + ")"
		}
		return s
	case *floatE:
		s := floatLit(e.V)
		if e.V < 0 {
			s = "(" + s + ")"
		}
		return s
	case *varE:
		return e.Name
	case *loadE:
		return fmt.Sprintf("%s(%s)", e.Arr, renderExpr(e.Idx))
	case *binE:
		return fmt.Sprintf("(%s %s %s)", renderExpr(e.L), opSym[e.Op], renderExpr(e.R))
	case *unE:
		switch e.Op {
		case cir.Neg:
			return fmt.Sprintf("(-%s)", renderExpr(e.X))
		case cir.Not:
			return fmt.Sprintf("(!%s)", renderExpr(e.X))
		case cir.BitNot:
			return fmt.Sprintf("(~%s)", renderExpr(e.X))
		}
	case *castE:
		return fmt.Sprintf("%s.%s", renderOperand(e.X), castSel[e.To])
	case *mathE:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = renderExpr(a)
		}
		return fmt.Sprintf("Math.%s(%s)", e.Name, strings.Join(args, ", "))
	}
	return "?"
}

// renderOperand wraps literal cast receivers in parens only when needed:
// `5.toChar` parses, but a negative literal needs `(-5).toChar`.
func renderOperand(e expr) string {
	s := renderExpr(e)
	if !strings.HasPrefix(s, "(") {
		switch e.(type) {
		case *varE, *intE, *loadE:
			return s
		default:
			// Float literals are parenthesized too: `1.5.toFloat` would
			// make the lexer chase a second decimal point.
			return "(" + s + ")"
		}
	}
	return s
}
