package kdslgen

import (
	"fmt"

	"s2fa/internal/cir"
)

// evalOpt tunes the reference evaluator. defectSubAsAdd deliberately
// corrupts subtraction into addition — an injected reference defect used
// to demonstrate that the shrinker reduces a failing kernel to a minimal
// reproducer (see Kernel.WithEvalDefect).
type evalOpt struct {
	defectSubAsAdd bool
}

// env holds the mutable state of one reference execution. Input arrays
// are aliased, not copied, so kernels that write into their inputs (the
// purity negatives) behave exactly like the JVM.
type env struct {
	scalars map[string]cir.Value
	arrays  map[string][]cir.Value
	opt     evalOpt
	steps   int
}

// maxEvalSteps bounds one reference execution; generated kernels are
// small, so hitting it always indicates a generator bug.
const maxEvalSteps = 4_000_000

// eval executes the kernel's call method on one task. The returned
// FieldVal is the kernel result (a fresh array for array outputs —
// declArrS allocates per call — or a scalar).
func (p *prog) eval(task []FieldVal, opt evalOpt) (FieldVal, error) {
	if len(task) != len(p.In) {
		return FieldVal{}, fmt.Errorf("kdslgen: task has %d fields, kernel wants %d", len(task), len(p.In))
	}
	ev := &env{scalars: map[string]cir.Value{}, arrays: map[string][]cir.Value{}, opt: opt}
	for _, c := range p.Consts {
		if c.Arr {
			arr := make([]cir.Value, 0, max(len(c.Ints), len(c.Fls)))
			if c.K.IsFloat() {
				for _, v := range c.Fls {
					arr = append(arr, cir.FloatVal(c.K, v))
				}
			} else {
				for _, v := range c.Ints {
					arr = append(arr, cir.IntVal(c.K, v))
				}
			}
			ev.arrays[c.Name] = arr
		} else if c.K.IsFloat() {
			ev.scalars[c.Name] = cir.FloatVal(c.K, c.Fls[0])
		} else {
			ev.scalars[c.Name] = cir.IntVal(c.K, c.Ints[0])
		}
	}
	// Input fields are reachable only through bindS statements, which
	// look them up here by index.
	if err := ev.block(p.Body, task); err != nil {
		return FieldVal{}, err
	}
	if p.Out.Arr {
		arr, ok := ev.arrays[p.ResultVar]
		if !ok {
			return FieldVal{}, fmt.Errorf("kdslgen: result array %q undefined", p.ResultVar)
		}
		return FieldVal{Arr: arr, IsArr: true}, nil
	}
	v, ok := ev.scalars[p.ResultVar]
	if !ok {
		return FieldVal{}, fmt.Errorf("kdslgen: result variable %q undefined", p.ResultVar)
	}
	return FieldVal{S: v}, nil
}

// evalReduce folds two output vectors with the reduce combiner
// (elementwise sum), allocating a fresh result so neither argument is
// mutated — unlike the JVM combiner, which accumulates into its first
// parameter in place.
func (p *prog) evalReduce(a, b FieldVal) (FieldVal, error) {
	if p.Reduce == "" {
		return FieldVal{}, fmt.Errorf("kdslgen: kernel %s has no reduce", p.ID)
	}
	k := p.Out.K
	if !a.IsArr || !b.IsArr || len(a.Arr) != len(b.Arr) {
		return FieldVal{}, fmt.Errorf("kdslgen: reduce wants two arrays of length %d", p.Out.Len)
	}
	out := make([]cir.Value, len(a.Arr))
	for i := range out {
		v, err := cir.EvalBinary(cir.Add, k, a.Arr[i].Convert(k), b.Arr[i].Convert(k))
		if err != nil {
			return FieldVal{}, err
		}
		out[i] = v
	}
	return FieldVal{Arr: out, IsArr: true}, nil
}

func (ev *env) block(stmts []stmt, task []FieldVal) error {
	for _, s := range stmts {
		if err := ev.stmt(s, task); err != nil {
			return err
		}
	}
	return nil
}

func (ev *env) tick() error {
	ev.steps++
	if ev.steps > maxEvalSteps {
		return fmt.Errorf("kdslgen: reference step budget exceeded")
	}
	return nil
}

func (ev *env) stmt(s stmt, task []FieldVal) error {
	if err := ev.tick(); err != nil {
		return err
	}
	switch s := s.(type) {
	case *declS:
		v, err := ev.expr(s.Init)
		if err != nil {
			return err
		}
		ev.scalars[s.Name] = v.Convert(s.K)
	case *declArrS:
		arr := make([]cir.Value, s.Len)
		for i := range arr {
			arr[i].K = s.K
		}
		ev.arrays[s.Name] = arr
	case *bindS:
		f := 0
		if s.Field >= 0 {
			f = s.Field
		}
		if s.T.Arr {
			ev.arrays[s.Name] = task[f].Arr
		} else {
			ev.scalars[s.Name] = task[f].S.Convert(s.T.K)
		}
	case *assignS:
		v, err := ev.expr(s.E)
		if err != nil {
			return err
		}
		ev.scalars[s.Name] = v.Convert(s.K)
	case *storeS:
		arr, ok := ev.arrays[s.Arr]
		if !ok {
			return fmt.Errorf("kdslgen: store to unknown array %q", s.Arr)
		}
		iv, err := ev.expr(s.Idx)
		if err != nil {
			return err
		}
		i := iv.AsInt()
		if i < 0 || i >= int64(len(arr)) {
			return fmt.Errorf("kdslgen: index %d out of bounds for %q (len %d)", i, s.Arr, len(arr))
		}
		v, err := ev.expr(s.E)
		if err != nil {
			return err
		}
		arr[i] = v.Convert(s.K)
	case *forS:
		for i := s.Lo; i < s.Hi; i++ {
			ev.scalars[s.Var] = cir.IntVal(cir.Int, int64(i))
			if err := ev.block(s.Body, task); err != nil {
				return err
			}
		}
	case *whileS:
		for {
			if err := ev.tick(); err != nil {
				return err
			}
			c := ev.scalars[s.Var].AsInt() > 0
			if c && s.Extra != nil {
				x, err := ev.expr(s.Extra)
				if err != nil {
					return err
				}
				c = x.IsTrue()
			}
			if !c {
				return nil
			}
			if err := ev.block(s.Body, task); err != nil {
				return err
			}
			w := ev.scalars[s.Var]
			ev.scalars[s.Var] = cir.IntVal(cir.Int, w.AsInt()-1)
		}
	case *ifS:
		c, err := ev.expr(s.Cond)
		if err != nil {
			return err
		}
		if c.IsTrue() {
			return ev.block(s.Then, task)
		}
		return ev.block(s.Else, task)
	default:
		return fmt.Errorf("kdslgen: unknown statement %T", s)
	}
	return nil
}

func (ev *env) expr(e expr) (cir.Value, error) {
	if err := ev.tick(); err != nil {
		return cir.Value{}, err
	}
	switch e := e.(type) {
	case *intE:
		return cir.IntVal(e.K, e.V), nil
	case *floatE:
		return cir.FloatVal(e.K, e.V), nil
	case *varE:
		v, ok := ev.scalars[e.Name]
		if !ok {
			return cir.Value{}, fmt.Errorf("kdslgen: read of undefined %q", e.Name)
		}
		return v, nil
	case *loadE:
		arr, ok := ev.arrays[e.Arr]
		if !ok {
			return cir.Value{}, fmt.Errorf("kdslgen: load from unknown array %q", e.Arr)
		}
		iv, err := ev.expr(e.Idx)
		if err != nil {
			return cir.Value{}, err
		}
		i := iv.AsInt()
		if i < 0 || i >= int64(len(arr)) {
			return cir.Value{}, fmt.Errorf("kdslgen: index %d out of bounds for %q (len %d)", i, e.Arr, len(arr))
		}
		return arr[i], nil
	case *binE:
		return ev.binary(e)
	case *unE:
		x, err := ev.expr(e.X)
		if err != nil {
			return cir.Value{}, err
		}
		// The checker widens Char/Short operands to Int before unary
		// arithmetic; Bool (for !) passes through untouched.
		if x.K != e.K && e.Op != cir.Not {
			x = x.Convert(e.K)
		}
		switch e.Op {
		case cir.Neg:
			if x.K.IsFloat() {
				return cir.FloatVal(x.K, -x.F), nil
			}
			return cir.IntVal(x.K, -x.I), nil
		case cir.Not:
			return cir.BoolVal(!x.IsTrue()), nil
		case cir.BitNot:
			return cir.IntVal(x.K, ^x.I), nil
		}
		return cir.Value{}, fmt.Errorf("kdslgen: unknown unary op")
	case *castE:
		x, err := ev.expr(e.X)
		if err != nil {
			return cir.Value{}, err
		}
		return x.Convert(e.To), nil
	case *mathE:
		args := make([]cir.Value, len(e.Args))
		for i, a := range e.Args {
			v, err := ev.expr(a)
			if err != nil {
				return cir.Value{}, err
			}
			args[i] = v.Convert(e.Prom)
		}
		return cir.EvalIntrinsic(e.Name, e.K, args)
	}
	return cir.Value{}, fmt.Errorf("kdslgen: unknown expression %T", e)
}

// binary mirrors the checker's operand handling exactly: both sides are
// implicitly cast to the promoted kind (the shift amount to Int), then
// the shared cir scalar semantics apply.
func (ev *env) binary(e *binE) (cir.Value, error) {
	if e.Op.IsLogical() {
		l, err := ev.expr(e.L)
		if err != nil {
			return cir.Value{}, err
		}
		if e.Op == cir.LAnd && !l.IsTrue() {
			return cir.BoolVal(false), nil
		}
		if e.Op == cir.LOr && l.IsTrue() {
			return cir.BoolVal(true), nil
		}
		r, err := ev.expr(e.R)
		if err != nil {
			return cir.Value{}, err
		}
		return cir.BoolVal(r.IsTrue()), nil
	}
	l, err := ev.expr(e.L)
	if err != nil {
		return cir.Value{}, err
	}
	r, err := ev.expr(e.R)
	if err != nil {
		return cir.Value{}, err
	}
	op := e.Op
	if op == cir.Sub && ev.opt.defectSubAsAdd {
		op = cir.Add
	}
	if op == cir.Shl || op == cir.Shr {
		return cir.EvalBinary(op, e.Prom, l.Convert(e.Prom), r.Convert(cir.Int))
	}
	return cir.EvalBinary(op, e.Prom, l.Convert(e.Prom), r.Convert(e.Prom))
}
