package kdslgen

import (
	"fmt"
	"math/rand"

	"s2fa/internal/cir"
)

// negTemplate builds one negative case; parse/check templates are fixed
// sources (the defect is the point, not diversity), purity templates
// build a full prog so the case carries reference semantics.
type negTemplate struct {
	stage Reject
	why   string
	build func(rng *rand.Rand, name, id string) *Negative
}

func srcNeg(stage Reject, why, src string) negTemplate {
	return negTemplate{stage: stage, why: why, build: func(_ *rand.Rand, name, id string) *Negative {
		return &Negative{Name: name, Source: fmt.Sprintf(src, name, id), Stage: stage, Why: why}
	}}
}

var negTemplates = []negTemplate{
	srcNeg(RejectParse, "unbalanced parenthesis in expression",
		`class %s extends Accelerator[Int, Int] {
  val id: String = %q
  def call(in: Int): Int = {
    (in +
  }
}
`),
	srcNeg(RejectParse, "illegal character in method body",
		`class %s extends Accelerator[Int, Int] {
  val id: String = %q
  def call(in: Int): Int = {
    in $ 2
  }
}
`),
	srcNeg(RejectParse, "misspelled extends keyword",
		`class %s extend Accelerator[Int, Int] {
  val id: String = %q
  def call(in: Int): Int = {
    in
  }
}
`),
	srcNeg(RejectCheck, "narrowing initializer without explicit cast",
		`class %s extends Accelerator[Int, Int] {
  val id: String = %q
  def call(in: Int): Int = {
    val x: Int = 1.5
    x
  }
}
`),
	srcNeg(RejectCheck, "shift on floating-point operand",
		`class %s extends Accelerator[Int, Int] {
  val id: String = %q
  def call(in: Int): Int = {
    val x: Double = (in.toDouble << 1)
    x.toInt
  }
}
`),
	srcNeg(RejectCheck, "array input without inSizes",
		`class %s extends Accelerator[Array[Int], Int] {
  val id: String = %q
  def call(in: Array[Int]): Int = {
    in(0)
  }
}
`),
	srcNeg(RejectCheck, "assignment to immutable val",
		`class %s extends Accelerator[Int, Int] {
  val id: String = %q
  def call(in: Int): Int = {
    val x: Int = 1
    x = 2
    x
  }
}
`),
	srcNeg(RejectCheck, "non-Boolean while condition",
		`class %s extends Accelerator[Int, Int] {
  val id: String = %q
  def call(in: Int): Int = {
    var w: Int = 3
    while (w) {
      w = w - 1
    }
    w
  }
}
`),
	srcNeg(RejectCheck, "result not assignable to declared return type",
		`class %s extends Accelerator[Int, Int] {
  val id: String = %q
  def call(in: Int): Int = {
    in.toDouble
  }
}
`),
	srcNeg(RejectCheck, "helper method beyond call/reduce",
		`class %s extends Accelerator[Int, Int] {
  val id: String = %q
  def call(in: Int): Int = {
    in
  }
  def helper(a: Int): Int = {
    a
  }
}
`),
	{stage: RejectPurity, why: "kernel writes into its input array",
		build: func(rng *rand.Rand, name, id string) *Negative { return purityNeg(rng, name, id) }},
}

// purityNeg builds a kernel that compiles cleanly but mutates its input
// array — §3.3-conforming in structure, impure in effect. absint must
// flag it and the blaze runtime must refuse to offload it; the JVM path
// (and the reference evaluator, whose binds alias) still executes it.
func purityNeg(rng *rand.Rand, name, id string) *Negative {
	n := 8 + 4*rng.Intn(3)
	b := &builder{rng: rng}
	b.p = &prog{
		ClassName: name,
		ID:        id,
		In:        []typeSpec{{K: cir.Int, Arr: true, Len: n}},
		Tags:      []string{"purity-negative"},
	}
	b.bindInputs()
	a := b.arrays[0]
	iv := b.fresh("i")
	// In-place update: a genuine write to caller-owned memory.
	b.emit(&forS{Var: iv, Lo: 0, Hi: n, Body: []stmt{
		&storeS{Arr: a.name, K: a.k, Idx: ref(iv, cir.Int),
			E: bin(cir.Add, &loadE{Arr: a.name, K: a.k, Idx: ref(iv, cir.Int)}, iconst(int64(1+rng.Intn(5))))},
	}})
	acc := b.declAcc(cir.Int)
	jv := b.fresh("i")
	b.emit(&forS{Var: jv, Lo: 0, Hi: n, Body: []stmt{
		&assignS{Name: acc, K: cir.Int, E: bin(cir.Add, ref(acc, cir.Int),
			&loadE{Arr: a.name, K: a.k, Idx: ref(jv, cir.Int)})},
	}})
	b.p.Out = typeSpec{K: cir.Int}
	b.p.ResultVar = acc
	k := newKernel(b.p)
	return &Negative{Name: name, Source: k.Source, Stage: RejectPurity,
		Why: "kernel writes into its input array", Kernel: k}
}

// GenerateNegatives returns n tagged invalid kernels, cycling through
// the defect templates. Deterministic in (seed, n) the same way
// Generate is.
func GenerateNegatives(seed int64, n int) []*Negative {
	out := make([]*Negative, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed*2_000_003 + int64(i)))
		t := negTemplates[i%len(negTemplates)]
		name := fmt.Sprintf("Neg%d", i)
		id := fmt.Sprintf("neg_s%d_%d", seed, i)
		out[i] = t.build(rng, name, id)
	}
	return out
}
