// Package kdslgen is a deterministic, seeded generator of kdsl kernel
// programs paired with an executable reference semantics.
//
// The repo validates every analysis layer against the eight hand-written
// paper workloads; that is a demo, not scenario diversity. kdslgen turns
// the validation suites into property tests over an unbounded kernel
// population: Generate(seed, n) emits n valid §3.3-conforming kernels —
// perfect and imperfect loop nests, while-loops, reductions and
// select-chains, burst/strided/reverse/gather access shapes, mixed
// bitwidths — and every kernel carries its own reference evaluator,
// built on the same cir scalar semantics (cir.EvalBinary/EvalIntrinsic)
// that the JVM simulator and the HLS-C evaluator share, but interpreting
// the generator's own mini-IR directly. The parser, checker, bytecode
// compiler, verifier, decompiler, and every downstream analysis are
// therefore all under differential test; only the scalar arithmetic is
// shared, by design, so width semantics cannot drift.
//
// GenerateNegatives emits tagged invalid kernels — parse errors,
// §3.3 structure violations, and purity violations — with the pipeline
// stage that must reject each one.
//
// Kernel.Shrink delta-debugs a failing kernel to a minimal reproducer:
// it repeatedly applies structural edits (drop a statement, unwrap a
// branch, halve a trip count, prune a subexpression) and keeps every
// edit that still fails the caller's predicate.
//
// Everything is a pure function of the seed: same seed, byte-identical
// kernel set.
package kdslgen

import (
	"fmt"
	"math/rand"

	"s2fa/internal/cir"
)

// FieldVal is one input field or kernel result: a primitive scalar or an
// array of primitives (the only shapes §3.3 admits for generated
// kernels; the hand-written workloads cover tuple outputs).
type FieldVal struct {
	S     cir.Value
	Arr   []cir.Value
	IsArr bool
}

// Kernel is one generated kernel: rendered kdsl source plus executable
// reference semantics over the same program.
type Kernel struct {
	Name   string // class name
	ID     string // accelerator id (`val id`)
	Source string
	// Tags describe the shapes the kernel exercises (family name plus
	// markers like "gather", "while", "reduce").
	Tags []string

	p   *prog
	opt evalOpt
}

// Generate returns n valid kernels. Deterministic: the same (seed, n)
// yields a byte-identical kernel set, and kernel i is independent of n
// (generating 10 then 200 kernels agrees on the first 10).
func Generate(seed int64, n int) []*Kernel {
	out := make([]*Kernel, n)
	for i := 0; i < n; i++ {
		out[i] = generateOne(seed, i)
	}
	return out
}

func generateOne(seed int64, idx int) *Kernel {
	// Each kernel draws from its own stream so kernel identity depends
	// only on (seed, idx), never on how many kernels came before it.
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(idx)))
	p := buildProg(rng, seed, idx)
	return newKernel(p)
}

func newKernel(p *prog) *Kernel {
	return &Kernel{
		Name:   p.ClassName,
		ID:     p.ID,
		Source: p.render(),
		Tags:   append([]string(nil), p.Tags...),
		p:      p,
	}
}

// HasReduce reports whether the kernel defines a reduce combiner.
func (k *Kernel) HasReduce() bool { return k.p.Reduce != "" }

// OutIsArray reports whether the kernel result is an array.
func (k *Kernel) OutIsArray() bool { return k.p.Out.Arr }

// NewTask draws one task's input fields from rng. Values are generated
// at the exact declared kinds, so serialization through any layer is
// conversion-free.
func (k *Kernel) NewTask(rng *rand.Rand) []FieldVal {
	task := make([]FieldVal, len(k.p.In))
	for i, f := range k.p.In {
		if !f.Arr {
			task[i] = FieldVal{S: randValue(rng, f.K)}
			continue
		}
		arr := make([]cir.Value, f.Len)
		for j := range arr {
			arr[j] = randValue(rng, f.K)
		}
		task[i] = FieldVal{Arr: arr, IsArr: true}
	}
	return task
}

func randValue(rng *rand.Rand, k cir.Kind) cir.Value {
	switch k {
	case cir.Char:
		return cir.IntVal(cir.Char, int64(rng.Intn(256)-128))
	case cir.Short:
		return cir.IntVal(cir.Short, int64(rng.Intn(1<<12)-(1<<11)))
	case cir.Int:
		return cir.IntVal(cir.Int, int64(rng.Intn(201)-100))
	case cir.Long:
		return cir.IntVal(cir.Long, int64(rng.Intn(4001)-2000))
	case cir.Float:
		return cir.FloatVal(cir.Float, rng.Float64()*16-8)
	default:
		return cir.FloatVal(cir.Double, rng.Float64()*16-8)
	}
}

// Eval runs the reference semantics on one task.
func (k *Kernel) Eval(task []FieldVal) (FieldVal, error) {
	return k.p.eval(task, k.opt)
}

// EvalReduce folds two output vectors elementwise with the reduce
// combiner, without mutating either argument.
func (k *Kernel) EvalReduce(a, b FieldVal) (FieldVal, error) {
	return k.p.evalReduce(a, b)
}

// WithEvalDefect returns a copy of the kernel whose reference evaluator
// deliberately computes subtraction as addition. Differential tests
// against it fail exactly when the kernel's output depends on a
// subtraction — a controlled, injected defect for demonstrating that
// shrinking converges on a minimal reproducer.
func (k *Kernel) WithEvalDefect() *Kernel {
	c := *k
	c.opt.defectSubAsAdd = true
	return &c
}

// StmtCount returns the number of statements in the call body,
// recursively — the size metric shrinking minimizes.
func (k *Kernel) StmtCount() int { return countBlock(k.p.Body) }

func countBlock(b []stmt) int {
	n := 0
	for _, s := range b {
		n++
		switch s := s.(type) {
		case *forS:
			n += countBlock(s.Body)
		case *whileS:
			n += countBlock(s.Body)
		case *ifS:
			n += countBlock(s.Then) + countBlock(s.Else)
		}
	}
	return n
}

// Reject tags the pipeline stage that must reject a negative case.
type Reject int

const (
	// RejectParse cases must fail kdsl.Parse.
	RejectParse Reject = iota
	// RejectCheck cases parse but must fail kdsl.Compile (the §3.3
	// structure checker).
	RejectCheck
	// RejectPurity cases compile — the frontend admits them — but
	// violate kernel purity: absint must report the class impure and
	// the blaze runtime must refuse to offload them.
	RejectPurity
)

func (r Reject) String() string {
	switch r {
	case RejectParse:
		return "parse"
	case RejectCheck:
		return "check"
	case RejectPurity:
		return "purity"
	}
	return fmt.Sprintf("reject(%d)", int(r))
}

// Negative is a tagged invalid kernel: source plus the stage that must
// reject it and a short reason.
type Negative struct {
	Name   string
	Source string
	Stage  Reject
	Why    string
	// Kernel carries reference semantics for RejectPurity cases (which
	// execute fine on the JVM); nil for parse/check cases.
	Kernel *Kernel
}
