package kdslgen

import (
	"math/rand"
	"testing"

	"s2fa/internal/jvmsim"
	"s2fa/internal/kdsl"
)

// mismatchesJVM is the shrink predicate of the injected-defect demo: it
// compiles the kernel, runs fixed tasks through the JVM, and reports
// whether the kernel's (possibly defective) reference evaluator
// disagrees. Kernels broken by shrinking — they no longer compile or no
// longer evaluate — answer false, as the Shrink contract requires.
func mismatchesJVM(k *Kernel) bool {
	cls, err := kdsl.CompileSource(k.Source)
	if err != nil {
		return false
	}
	vm := jvmsim.New(cls)
	rng := rand.New(rand.NewSource(4242))
	for task := 0; task < 2; task++ {
		in := k.NewTask(rng)
		want, err := k.Eval(in)
		if err != nil {
			return false
		}
		got, err := vm.Call(toVal(in))
		if err != nil {
			return false
		}
		if !sameResult(want, got) {
			return true
		}
	}
	return false
}

// TestShrinkInjectedDefect demonstrates the acceptance-criteria
// scenario: corrupt the reference semantics (subtraction evaluates as
// addition), observe the differential suite fail, and shrink the failing
// kernel to a minimal reproducer that still fails for the same reason.
func TestShrinkInjectedDefect(t *testing.T) {
	var victim *Kernel
	for _, k := range Generate(11, 24) {
		if !mismatchesJVM(k) && mismatchesJVM(k.WithEvalDefect()) {
			victim = k.WithEvalDefect()
			break
		}
	}
	if victim == nil {
		t.Fatalf("no kernel in the population exposes the injected sub-as-add defect")
	}
	before := weight(victim.p)
	min := victim.Shrink(mismatchesJVM)
	after := weight(min.p)
	if after >= before {
		t.Fatalf("shrinking made no progress: weight %d -> %d\n%s", before, after, min.Source)
	}
	if !mismatchesJVM(min) {
		t.Fatalf("shrunk kernel no longer fails the predicate:\n%s", min.Source)
	}
	if _, err := kdsl.CompileSource(min.Source); err != nil {
		t.Fatalf("shrunk kernel does not compile: %v\n%s", err, min.Source)
	}
	// The minimal reproducer of a subtraction defect should be tiny: a
	// handful of statements, not the original loop nest.
	if c := min.StmtCount(); c > 6 {
		t.Logf("shrunk kernel still has %d statements:\n%s", c, min.Source)
	}
	t.Logf("shrunk weight %d -> %d, %d statements:\n%s", before, after, min.StmtCount(), min.Source)
}

// TestShrinkIsDeterministic: shrinking the same kernel with the same
// predicate twice yields byte-identical output.
func TestShrinkIsDeterministic(t *testing.T) {
	var victim *Kernel
	for _, k := range Generate(11, 24) {
		if !mismatchesJVM(k) && mismatchesJVM(k.WithEvalDefect()) {
			victim = k.WithEvalDefect()
			break
		}
	}
	if victim == nil {
		t.Skip("no defect-exposing kernel")
	}
	a := victim.Shrink(mismatchesJVM)
	b := victim.Shrink(mismatchesJVM)
	if a.Source != b.Source {
		t.Fatalf("shrink is nondeterministic:\n--- a ---\n%s\n--- b ---\n%s", a.Source, b.Source)
	}
}
