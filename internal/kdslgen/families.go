package kdslgen

import (
	"fmt"
	"math/rand"

	"s2fa/internal/cir"
)

// builder assembles one prog. It tracks the readable scope so the random
// expression generator only references defined names, and it owns a
// fresh-name counter so every local in the program is unique (which also
// keeps the decompiled kernel free of duplicate-local lint findings).
type builder struct {
	rng *rand.Rand
	p   *prog
	n   int

	scalars []scVar
	arrays  []arrVar
}

type scVar struct {
	name string
	k    cir.Kind
}

type arrVar struct {
	name   string
	k      cir.Kind
	length int
}

// loopInfo is a live induction variable: Var iterates [0, Trip).
type loopInfo struct {
	v    string
	trip int
}

func (b *builder) fresh(prefix string) string {
	b.n++
	return fmt.Sprintf("%s%d", prefix, b.n)
}

func (b *builder) defScalar(name string, k cir.Kind) {
	b.scalars = append(b.scalars, scVar{name, k})
}

func (b *builder) defArray(name string, k cir.Kind, length int) {
	b.arrays = append(b.arrays, arrVar{name, k, length})
}

// numKinds is the mixed-bitwidth pool generated kernels draw from.
var numKinds = []cir.Kind{cir.Char, cir.Short, cir.Int, cir.Long, cir.Float, cir.Double}

func (b *builder) numKind() cir.Kind { return numKinds[b.rng.Intn(len(numKinds))] }

func (b *builder) accKind(elem cir.Kind) cir.Kind {
	if elem.IsFloat() {
		return cir.Double
	}
	if b.rng.Intn(3) == 0 {
		return cir.Long
	}
	return promote(elem, cir.Int)
}

func widensKind(a, to cir.Kind) bool {
	rank := func(k cir.Kind) int {
		switch k {
		case cir.Char, cir.Short:
			return 1
		case cir.Int:
			return 2
		case cir.Long:
			return 3
		case cir.Float:
			return 4
		case cir.Double:
			return 5
		}
		return 0
	}
	ra, rb := rank(a), rank(to)
	return ra > 0 && rb > 0 && ra < rb
}

// coerce makes e usable where kind `to` is expected, inserting an
// explicit cast when implicit widening does not apply (exactly the
// narrowing positions where kdsl demands `.toX`).
func coerce(e expr, to cir.Kind) expr {
	if e.kind() == to || widensKind(e.kind(), to) {
		return e
	}
	return &castE{To: to, X: e}
}

// asIntish coerces e to an integer kind usable in index arithmetic,
// shifts, and masks.
func asIntish(e expr) expr {
	switch e.kind() {
	case cir.Char, cir.Short, cir.Int, cir.Long:
		return e
	}
	return &castE{To: cir.Int, X: e}
}

// bindInputs declares one local per input field and registers them in
// scope. Arrays alias the caller's data.
func (b *builder) bindInputs() {
	tuple := len(b.p.In) > 1
	for i, f := range b.p.In {
		field := -1
		if tuple {
			field = i
		}
		var name string
		if f.Arr {
			name = b.fresh("a")
			b.defArray(name, f.K, f.Len)
		} else {
			name = b.fresh("s")
			b.defScalar(name, f.K)
		}
		b.p.Body = append(b.p.Body, &bindS{Name: name, T: f, Field: field})
	}
}

// addConstArray registers a class constant array of n elements.
func (b *builder) addConstArray(k cir.Kind, n int) string {
	name := b.fresh("c")
	c := constDef{Name: name, K: k, Arr: true}
	if k.IsFloat() {
		for i := 0; i < n; i++ {
			c.Fls = append(c.Fls, float64(b.rng.Intn(800))/100-4)
		}
	} else {
		for i := 0; i < n; i++ {
			c.Ints = append(c.Ints, int64(b.rng.Intn(17)-8))
		}
	}
	b.p.Consts = append(b.p.Consts, c)
	b.defArray(name, k, n)
	return name
}

// safeIndex builds an in-bounds index expression for an array of the
// given length under the live loops: burst (i + c), strided (s*i + c),
// reverse ((len-1) - i), a gather mask ((e) & (len-1)) when len is a
// power of two, or a constant. The chosen shape is reported in tag.
func (b *builder) safeIndex(length int, loops []loopInfo) (expr, string) {
	type cand struct {
		e   expr
		tag string
	}
	var cands []cand
	pow2 := length&(length-1) == 0 && length > 0
	for _, l := range loops {
		iv := ref(l.v, cir.Int)
		if l.trip <= length {
			off := 0
			if length > l.trip {
				off = b.rng.Intn(length - l.trip + 1)
			}
			e := expr(iv)
			if off > 0 {
				e = bin(cir.Add, iv, iconst(int64(off)))
			}
			cands = append(cands, cand{e, "burst"})
			cands = append(cands, cand{bin(cir.Sub, iconst(int64(length-1)), iv), "reverse"})
		}
		for _, s := range []int{2, 3, 4} {
			span := s * (l.trip - 1)
			if span < length {
				c := b.rng.Intn(length - span)
				e := expr(bin(cir.Mul, iconst(int64(s)), iv))
				if c > 0 {
					e = bin(cir.Add, e, iconst(int64(c)))
				}
				cands = append(cands, cand{e, "strided"})
			}
		}
	}
	if pow2 {
		// Mask an arbitrary integer expression into range: the classic
		// data-dependent gather subscript.
		var base expr
		switch {
		case len(b.scalars) > 0 && b.rng.Intn(2) == 0:
			sv := b.scalars[b.rng.Intn(len(b.scalars))]
			base = asIntish(ref(sv.name, sv.k))
		case len(loops) > 0:
			l := loops[b.rng.Intn(len(loops))]
			base = bin(cir.Mul, ref(l.v, cir.Int), iconst(int64(1+b.rng.Intn(7))))
		default:
			base = iconst(int64(b.rng.Intn(1 << 16)))
		}
		cands = append(cands, cand{bin(cir.And, base, iconst(int64(length-1))), "gather"})
	}
	cands = append(cands, cand{iconst(int64(b.rng.Intn(length))), "invariant"})
	c := cands[b.rng.Intn(len(cands))]
	return c.e, c.tag
}

// randExpr produces an arbitrary numeric expression from the current
// scope. Divisors and shift amounts are constants by construction, so
// evaluation can never trap.
func (b *builder) randExpr(loops []loopInfo, depth int) expr {
	if depth <= 0 {
		return b.leafExpr(loops)
	}
	switch b.rng.Intn(8) {
	case 0: // division by a safe constant
		l := b.randExpr(loops, depth-1)
		if l.kind().IsFloat() {
			return bin(cir.Div, l, fconst(float64(b.rng.Intn(7)+2)/2))
		}
		return bin(cir.Div, l, iconst(int64(b.rng.Intn(7)+1)))
	case 1: // remainder by a safe constant
		l := b.randExpr(loops, depth-1)
		if l.kind().IsFloat() {
			return bin(cir.Rem, l, fconst(float64(b.rng.Intn(5)+1)))
		}
		return bin(cir.Rem, l, iconst(int64(b.rng.Intn(7)+2)))
	case 2: // bit ops on integer operands
		l := asIntish(b.randExpr(loops, depth-1))
		r := asIntish(b.leafExpr(loops))
		ops := []cir.BinOp{cir.And, cir.Or, cir.Xor}
		return bin(ops[b.rng.Intn(len(ops))], l, r)
	case 3: // shift by a small constant
		l := asIntish(b.randExpr(loops, depth-1))
		op := cir.Shl
		if b.rng.Intn(2) == 0 {
			op = cir.Shr
		}
		return bin(op, l, iconst(int64(b.rng.Intn(8))))
	case 4: // math intrinsic
		x := b.randExpr(loops, depth-1)
		switch b.rng.Intn(5) {
		case 0:
			return math1("abs", x)
		case 1:
			return math1("sqrt", x)
		case 2:
			return math1("floor", x)
		case 3:
			return math2("min", x, b.leafExpr(loops))
		default:
			return math2("max", x, b.leafExpr(loops))
		}
	case 5: // unary
		x := b.randExpr(loops, depth-1)
		if !x.kind().IsFloat() && b.rng.Intn(2) == 0 {
			return un(cir.BitNot, x)
		}
		return un(cir.Neg, x)
	case 6: // explicit cast (mixes bitwidths)
		return &castE{To: b.numKind(), X: b.randExpr(loops, depth-1)}
	default: // plain arithmetic
		ops := []cir.BinOp{cir.Add, cir.Sub, cir.Mul}
		return bin(ops[b.rng.Intn(len(ops))], b.randExpr(loops, depth-1), b.randExpr(loops, depth-1))
	}
}

func (b *builder) leafExpr(loops []loopInfo) expr {
	for tries := 0; tries < 4; tries++ {
		switch b.rng.Intn(4) {
		case 0:
			if k := b.numKind(); k.IsFloat() {
				return fconst(float64(b.rng.Intn(1600))/100 - 8)
			}
			return iconst(int64(b.rng.Intn(33) - 16))
		case 1:
			if len(b.scalars) > 0 {
				sv := b.scalars[b.rng.Intn(len(b.scalars))]
				return ref(sv.name, sv.k)
			}
		case 2:
			if len(loops) > 0 {
				l := loops[b.rng.Intn(len(loops))]
				return ref(l.v, cir.Int)
			}
		case 3:
			if len(b.arrays) > 0 {
				av := b.arrays[b.rng.Intn(len(b.arrays))]
				idx, _ := b.safeIndex(av.length, loops)
				return &loadE{Arr: av.name, K: av.k, Idx: idx}
			}
		}
	}
	return iconst(int64(b.rng.Intn(9) + 1))
}

// randCond builds a Boolean expression.
func (b *builder) randCond(loops []loopInfo) expr {
	ops := []cir.BinOp{cir.Lt, cir.Le, cir.Gt, cir.Ge, cir.Eq, cir.Ne}
	l := b.randExpr(loops, 1)
	r := b.leafExpr(loops)
	if l.kind().IsFloat() || r.kind().IsFloat() {
		// Equality on floats is legal but vacuous noise; prefer order.
		ops = ops[:4]
	}
	return bin(ops[b.rng.Intn(len(ops))], l, r)
}

// tag appends a shape tag once.
func (b *builder) tag(t string) {
	for _, have := range b.p.Tags {
		if have == t {
			return
		}
	}
	b.p.Tags = append(b.p.Tags, t)
}

// buildProg assembles kernel idx of the seed's population. Families
// rotate round-robin so any prefix of the population covers every shape.
func buildProg(rng *rand.Rand, seed int64, idx int) *prog {
	b := &builder{rng: rng}
	b.p = &prog{
		ClassName: fmt.Sprintf("Gen%d", idx),
		ID:        fmt.Sprintf("gen_s%d_%d", seed, idx),
	}
	families := []struct {
		name  string
		build func()
	}{
		{"map-burst", b.famMapBurst},
		{"stencil", b.famStencil},
		{"strided", b.famStrided},
		{"gather", b.famGather},
		{"select-chain", b.famSelect},
		{"while", b.famWhile},
		{"reduce", b.famReduce},
		{"mixed-width", b.famMixed},
	}
	f := families[idx%len(families)]
	b.p.Tags = []string{f.name}
	f.build()
	return b.p
}

// pow2Len draws a power-of-two length in [8, 64].
func (b *builder) pow2Len() int { return 8 << b.rng.Intn(4) }

// emit appends statements to the call body.
func (b *builder) emit(ss ...stmt) { b.p.Body = append(b.p.Body, ss...) }

// declAcc declares a mutable accumulator seeded with a constant.
func (b *builder) declAcc(k cir.Kind) string {
	name := b.fresh("v")
	var init expr
	if k.IsFloat() {
		init = coerce(fconst(float64(b.rng.Intn(9))-4), k)
	} else {
		init = coerce(iconst(int64(b.rng.Intn(9)-4)), k)
	}
	b.emit(&declS{Name: name, K: k, Mut: true, Init: init})
	b.defScalar(name, k)
	return name
}

// famMapBurst: perfect nest, unit-stride element-wise map into an output
// array, mixed element kinds.
func (b *builder) famMapBurst() {
	n := 8 + 4*b.rng.Intn(7)
	k1 := b.numKind()
	b.p.In = []typeSpec{{K: k1, Arr: true, Len: n}}
	two := b.rng.Intn(2) == 0
	if two {
		b.p.In = append(b.p.In, typeSpec{K: b.numKind(), Arr: true, Len: n})
	}
	b.bindInputs()
	ko := b.numKind()
	out := b.fresh("o")
	b.emit(&declArrS{Name: out, K: ko, Len: n})
	iv := b.fresh("i")
	loops := []loopInfo{{iv, n}}
	a1 := b.arrays[0]
	body := []stmt{}
	x := b.fresh("t")
	lhs := expr(&loadE{Arr: a1.name, K: a1.k, Idx: ref(iv, cir.Int)})
	if two {
		a2 := b.arrays[1]
		ops := []cir.BinOp{cir.Add, cir.Sub, cir.Mul}
		lhs = bin(ops[b.rng.Intn(3)], lhs, &loadE{Arr: a2.name, K: a2.k, Idx: ref(iv, cir.Int)})
	}
	body = append(body, &declS{Name: x, K: lhs.kind(), Init: lhs})
	rhs := bin(cir.Add, ref(x, lhs.kind()), b.randExpr(loops, 1))
	body = append(body, &storeS{Arr: out, K: ko, Idx: ref(iv, cir.Int), E: coerce(rhs, ko)})
	b.emit(&forS{Var: iv, Lo: 0, Hi: n, Body: body})
	b.tag("burst")
	b.p.Out = typeSpec{K: ko, Arr: true, Len: n}
	b.p.ResultVar = out
	b.defArray(out, ko, n)
}

// famStencil: imperfect two-deep nest, shifted-window burst reads
// against a constant tap array.
func (b *builder) famStencil() {
	taps := 3 + b.rng.Intn(3)
	n := 16 + 4*b.rng.Intn(5)
	elem := []cir.Kind{cir.Int, cir.Float, cir.Double, cir.Short}[b.rng.Intn(4)]
	b.p.In = []typeSpec{{K: elem, Arr: true, Len: n}}
	b.bindInputs()
	a := b.arrays[0]
	tk := cir.Double
	if !elem.IsFloat() {
		tk = cir.Int
	}
	tarr := b.addConstArray(tk, taps)
	outN := n - taps + 1
	acc := promote(tk, elem)
	out := b.fresh("o")
	b.emit(&declArrS{Name: out, K: acc, Len: outN})
	iv, tv, sv := b.fresh("i"), b.fresh("t"), b.fresh("v")
	inner := []stmt{
		&assignS{Name: sv, K: acc, E: coerce(bin(cir.Add, ref(sv, acc),
			bin(cir.Mul,
				&loadE{Arr: a.name, K: a.k, Idx: bin(cir.Add, ref(iv, cir.Int), ref(tv, cir.Int))},
				&loadE{Arr: tarr, K: tk, Idx: ref(tv, cir.Int)})), acc)},
	}
	var zero expr = iconst(0)
	if acc.IsFloat() {
		zero = fconst(0)
	}
	b.emit(&forS{Var: iv, Lo: 0, Hi: outN, Body: []stmt{
		&declS{Name: sv, K: acc, Mut: true, Init: coerce(zero, acc)},
		&forS{Var: tv, Lo: 0, Hi: taps, Body: inner},
		&storeS{Arr: out, K: acc, Idx: ref(iv, cir.Int), E: ref(sv, acc)},
	}})
	b.tag("imperfect")
	b.tag("burst")
	b.p.Out = typeSpec{K: acc, Arr: true, Len: outN}
	b.p.ResultVar = out
	b.defArray(out, acc, outN)
}

// famStrided: forward-strided plus reverse walks folded into a scalar.
func (b *builder) famStrided() {
	s := 2 + b.rng.Intn(3)
	trip := 4 + b.rng.Intn(5)
	n := s*(trip-1) + 1 + b.rng.Intn(4)
	elem := b.numKind()
	b.p.In = []typeSpec{{K: elem, Arr: true, Len: n}}
	b.bindInputs()
	a := b.arrays[0]
	acc := b.accKind(elem)
	accV := b.declAcc(acc)
	iv := b.fresh("i")
	b.emit(&forS{Var: iv, Lo: 0, Hi: trip, Body: []stmt{
		&assignS{Name: accV, K: acc, E: coerce(bin(cir.Add, ref(accV, acc),
			&loadE{Arr: a.name, K: a.k, Idx: bin(cir.Mul, iconst(int64(s)), ref(iv, cir.Int))}), acc)},
	}})
	jv := b.fresh("i")
	rtrip := 2 + b.rng.Intn(n-1)
	if rtrip > n {
		rtrip = n
	}
	b.emit(&forS{Var: jv, Lo: 0, Hi: rtrip, Body: []stmt{
		&assignS{Name: accV, K: acc, E: coerce(bin(cir.Sub, ref(accV, acc),
			&loadE{Arr: a.name, K: a.k, Idx: bin(cir.Sub, iconst(int64(n-1)), ref(jv, cir.Int))}), acc)},
	}})
	b.tag("strided")
	b.tag("reverse")
	res := b.fresh("r")
	b.emit(&declS{Name: res, K: acc, Mut: true, Init: coerce(b.randExpr(nil, 1), acc)})
	b.emit(assignSOrFold(b, res, accV, acc))
	b.p.Out = typeSpec{K: acc}
	b.p.ResultVar = res
}

// assignSOrFold folds the accumulator into the result variable with a
// random arithmetic op (the result var keeps its declared kind).
func assignSOrFold(b *builder, res, accV string, k cir.Kind) stmt {
	ops := []cir.BinOp{cir.Add, cir.Sub, cir.Mul}
	e := bin(ops[b.rng.Intn(3)], ref(res, k), ref(accV, k))
	return &assignS{Name: res, K: k, E: coerce(e, k)}
}

// famGather: data-dependent subscripts — a masked gather read plus a
// histogram-style local scatter with a genuine carried dependence.
func (b *builder) famGather() {
	l := b.pow2Len()
	m := 8 + b.rng.Intn(9)
	elem := b.numKind()
	b.p.In = []typeSpec{
		{K: elem, Arr: true, Len: l},
		{K: cir.Int, Arr: true, Len: m},
	}
	b.bindInputs()
	data, idx := b.arrays[0], b.arrays[1]
	h := 8 << b.rng.Intn(2)
	hist := b.fresh("o")
	b.emit(&declArrS{Name: hist, K: cir.Int, Len: h})
	iv := b.fresh("i")
	hv := b.fresh("t")
	acc := b.accKind(elem)
	accV := b.declAcc(acc)
	loadIdx := &loadE{Arr: idx.name, K: cir.Int, Idx: ref(iv, cir.Int)}
	body := []stmt{
		&declS{Name: hv, K: cir.Int, Init: bin(cir.And, loadIdx, iconst(int64(h-1)))},
		&storeS{Arr: hist, K: cir.Int, Idx: ref(hv, cir.Int),
			E: bin(cir.Add, &loadE{Arr: hist, K: cir.Int, Idx: ref(hv, cir.Int)}, iconst(1))},
		&assignS{Name: accV, K: acc, E: coerce(bin(cir.Add, ref(accV, acc),
			&loadE{Arr: data.name, K: data.k,
				Idx: bin(cir.And, cloneExpr(loadIdx), iconst(int64(l-1)))}), acc)},
	}
	b.emit(&forS{Var: iv, Lo: 0, Hi: m, Body: body})
	b.tag("gather")
	if b.rng.Intn(2) == 0 {
		b.p.Out = typeSpec{K: cir.Int, Arr: true, Len: h}
		b.p.ResultVar = hist
		b.defArray(hist, cir.Int, h)
	} else {
		res := b.fresh("r")
		b.emit(&declS{Name: res, K: acc,
			Init: coerce(bin(cir.Add, ref(accV, acc),
				&loadE{Arr: hist, K: cir.Int, Idx: iconst(int64(b.rng.Intn(h)))}), acc)})
		b.p.Out = typeSpec{K: acc}
		b.p.ResultVar = res
	}
}

// famSelect: KNN-style running best/second select-chain.
func (b *builder) famSelect() {
	n := 8 + 4*b.rng.Intn(7)
	elem := []cir.Kind{cir.Int, cir.Long, cir.Float, cir.Double}[b.rng.Intn(4)]
	b.p.In = []typeSpec{{K: elem, Arr: true, Len: n}}
	b.bindInputs()
	a := b.arrays[0]
	k := promote(elem, cir.Int)
	b1, b2, p1 := b.fresh("v"), b.fresh("v"), b.fresh("v")
	var lo expr = iconst(-1 << 30)
	if k.IsFloat() {
		lo = fconst(-1e30)
	}
	b.emit(
		&declS{Name: b1, K: k, Mut: true, Init: coerce(lo, k)},
		&declS{Name: b2, K: k, Mut: true, Init: coerce(cloneExpr(lo), k)},
		&declS{Name: p1, K: cir.Int, Mut: true, Init: iconst(0)},
	)
	b.defScalar(b1, k)
	b.defScalar(b2, k)
	iv := b.fresh("i")
	x := b.fresh("t")
	loops := []loopInfo{{iv, n}}
	xe := coerce(bin(cir.Add, &loadE{Arr: a.name, K: a.k, Idx: ref(iv, cir.Int)}, b.randExpr(loops, 1)), k)
	b.emit(&forS{Var: iv, Lo: 0, Hi: n, Body: []stmt{
		&declS{Name: x, K: k, Init: xe},
		&ifS{
			Cond: bin(cir.Gt, ref(x, k), ref(b1, k)),
			Then: []stmt{
				&assignS{Name: b2, K: k, E: ref(b1, k)},
				&assignS{Name: b1, K: k, E: ref(x, k)},
				&assignS{Name: p1, K: cir.Int, E: ref(iv, cir.Int)},
			},
			Else: []stmt{&ifS{
				Cond: bin(cir.Gt, ref(x, k), ref(b2, k)),
				Then: []stmt{&assignS{Name: b2, K: k, E: ref(x, k)}},
			}},
		},
	}})
	b.tag("select-chain")
	res := b.fresh("r")
	if b.rng.Intn(2) == 0 {
		b.emit(&declS{Name: res, K: cir.Int, Init: ref(p1, cir.Int)})
		b.p.Out = typeSpec{K: cir.Int}
	} else {
		b.emit(&declS{Name: res, K: k, Init: coerce(bin(cir.Sub, ref(b1, k), ref(b2, k)), k)})
		b.p.Out = typeSpec{K: k}
	}
	b.p.ResultVar = res
}

// famWhile: a structurally bounded while-loop with a data-dependent
// early-exit conjunct walking an array from the back.
func (b *builder) famWhile() {
	cap := 8 + b.rng.Intn(17)
	n := cap + b.rng.Intn(4)
	elem := b.numKind()
	b.p.In = []typeSpec{{K: elem, Arr: true, Len: n}}
	b.bindInputs()
	a := b.arrays[0]
	acc := b.accKind(elem)
	accV := b.declAcc(acc)
	w := b.fresh("w")
	b.emit(&declS{Name: w, K: cir.Int, Mut: true, Init: iconst(int64(cap))})
	var limit expr = iconst(int64(1 << (10 + b.rng.Intn(10))))
	if acc.IsFloat() {
		limit = fconst(float64(int64(1) << (8 + b.rng.Intn(12))))
	}
	var extra expr
	if b.rng.Intn(3) > 0 {
		extra = bin(cir.Lt, ref(accV, acc), limit)
	}
	body := []stmt{
		&assignS{Name: accV, K: acc, E: coerce(bin(cir.Add, ref(accV, acc),
			math1("abs", &loadE{Arr: a.name, K: a.k,
				Idx: bin(cir.Sub, ref(w, cir.Int), iconst(1))})), acc)},
	}
	b.emit(&whileS{Var: w, Extra: extra, Body: body})
	b.tag("while")
	b.p.Out = typeSpec{K: acc}
	b.p.ResultVar = accV
}

// famReduce: a per-task partial vector folded by an elementwise-sum
// combiner. b2c only inlines combiners that accumulate into their first
// parameter and return it (the LR gradient template), and the offload
// fold seeds the accumulator with zeros, so the combiner also needs a
// zero additive identity — elementwise integer sum into a small array
// is exactly the reduce shape the full pipeline can carry end to end.
func (b *builder) famReduce() {
	n := 8 + 4*b.rng.Intn(7)
	elem := b.numKind()
	b.p.In = []typeSpec{{K: elem, Arr: true, Len: n}}
	withScalar := b.rng.Intn(2) == 0
	if withScalar {
		b.p.In = append(b.p.In, typeSpec{K: cir.Double})
	}
	b.bindInputs()
	a := b.arrays[0]
	outK := []cir.Kind{cir.Int, cir.Long}[b.rng.Intn(2)]
	rl := 2 << b.rng.Intn(2) // 2 or 4 accumulator slots (power of two)
	part := b.fresh("p")
	b.emit(&declArrS{Name: part, K: outK, Len: rl})
	iv := b.fresh("i")
	loops := []loopInfo{{iv, n}}
	term := expr(&loadE{Arr: a.name, K: a.k, Idx: ref(iv, cir.Int)})
	if withScalar {
		sv := b.scalars[0]
		for _, s := range b.scalars {
			if !s.k.IsFloat() {
				continue
			}
			sv = s
		}
		term = bin(cir.Mul, term, ref(sv.name, sv.k))
	}
	slot := bin(cir.And, ref(iv, cir.Int), iconst(int64(rl-1)))
	step := stmt(&storeS{Arr: part, K: outK, Idx: slot,
		E: coerce(bin(cir.Add,
			&loadE{Arr: part, K: outK, Idx: cloneExpr(slot)}, term), outK)})
	guard := b.rng.Intn(2) == 0
	if guard {
		step = &ifS{Cond: b.randCond(loops), Then: []stmt{step}}
	}
	b.emit(&forS{Var: iv, Lo: 0, Hi: n, Body: []stmt{step}})
	b.p.Reduce = "vecsum"
	b.tag("reduce")
	b.p.Out = typeSpec{K: outK, Arr: true, Len: rl}
	b.p.ResultVar = part
}

// famMixed: AES-style narrow-width byte twiddling — Char input, masked
// Int staging, shifts and xors, Char output.
func (b *builder) famMixed() {
	n := 16 + 8*b.rng.Intn(3)
	b.p.In = []typeSpec{{K: cir.Char, Arr: true, Len: n}}
	b.bindInputs()
	a := b.arrays[0]
	key := b.addConstArray(cir.Int, n)
	st := b.fresh("o")
	b.emit(&declArrS{Name: st, K: cir.Int, Len: n})
	iv := b.fresh("i")
	masked := bin(cir.And, &castE{To: cir.Int, X: &loadE{Arr: a.name, K: cir.Char, Idx: ref(iv, cir.Int)}}, iconst(255))
	b.emit(&forS{Var: iv, Lo: 0, Hi: n, Body: []stmt{
		&storeS{Arr: st, K: cir.Int, Idx: ref(iv, cir.Int),
			E: bin(cir.Xor, masked, &loadE{Arr: key, K: cir.Int, Idx: ref(iv, cir.Int)})},
	}})
	b.defArray(st, cir.Int, n)
	out := b.fresh("o")
	b.emit(&declArrS{Name: out, K: cir.Char, Len: n})
	jv := b.fresh("i")
	sh := int64(1 + b.rng.Intn(3))
	cur := &loadE{Arr: st, K: cir.Int, Idx: ref(jv, cir.Int)}
	rot := bin(cir.Xor, bin(cir.Shl, cur, iconst(sh)), bin(cir.Shr, cloneExpr(cur), iconst(7-sh)))
	b.emit(&forS{Var: jv, Lo: 0, Hi: n, Body: []stmt{
		&storeS{Arr: out, K: cir.Char, Idx: ref(jv, cir.Int),
			E: &castE{To: cir.Char, X: bin(cir.And, rot, iconst(255))}},
	}})
	b.tag("mixed-width")
	b.tag("burst")
	b.p.Out = typeSpec{K: cir.Char, Arr: true, Len: n}
	b.p.ResultVar = out
	b.defArray(out, cir.Char, n)
}
