package kdslgen

import "s2fa/internal/cir"

// typeSpec describes one kdsl value type: a primitive scalar or a
// statically sized array of primitives. Len is meaningful for arrays
// (input arrays size inSizes; local arrays size their allocation).
type typeSpec struct {
	K   cir.Kind
	Arr bool
	Len int
}

// constDef is a class constant field (`val name: T = ...` / Array(...)).
// Exactly one of Ints/Fls is populated, matching K's class.
type constDef struct {
	Name string
	K    cir.Kind
	Arr  bool
	Ints []int64
	Fls  []float64
}

// prog is the generator's mini-IR for one kernel class. It is the single
// source of truth: render() prints it as §3.3-conforming kdsl source and
// eval() executes it directly on cir scalar semantics, so the rendered
// source and the reference semantics can never drift apart.
type prog struct {
	ClassName string
	ID        string
	In        []typeSpec // 1..3 input fields; >1 renders as a tuple
	Out       typeSpec
	Consts    []constDef
	Body      []stmt
	// ResultVar names the local holding the kernel result: a scalar
	// variable when Out is scalar, a local array when Out is an array.
	// It is always the final statement of the rendered call body.
	ResultVar string
	// Reduce, when non-empty ("vecsum"), emits an elementwise-sum
	// combiner over the (array) output type, accumulating into its
	// first parameter — the in-place template b2c inlines.
	Reduce string
	Tags   []string
}

// Statements. All stmt implementations are pointers so the shrinker can
// edit a cloned tree in place.
type stmt interface{ isStmt() }

// declS declares a scalar local: `val|var Name: K = Init`.
type declS struct {
	Name string
	K    cir.Kind
	Mut  bool
	Init expr
}

// declArrS declares a local array: `var Name: Array[K] = new Array[K](Len)`.
type declArrS struct {
	Name string
	K    cir.Kind
	Len  int
}

// bindS binds an input field to a local: `val Name: T = in._N` (or `in`
// when the input is not a tuple). Array binds alias the caller's array,
// matching JVM reference semantics.
type bindS struct {
	Name  string
	T     typeSpec
	Field int // index into prog.In
}

// assignS assigns a scalar local: `Name = E`.
type assignS struct {
	Name string
	K    cir.Kind
	E    expr
}

// storeS stores into an array element: `Arr(Idx) = E`.
type storeS struct {
	Arr string
	K   cir.Kind // element kind
	Idx expr
	E   expr
}

// forS is a counted loop `for (Var <- Lo until Hi)` with constant bounds.
type forS struct {
	Var    string
	Lo, Hi int
	Body   []stmt
}

// whileS renders as
//
//	while ((Var > 0) && Extra) { Body...; Var = Var - 1 }
//
// Var is a mutable Int local declared earlier; the unconditional
// decrement (emitted by the renderer and mirrored by the evaluator)
// bounds the loop structurally, so generated while-loops always
// terminate regardless of data.
type whileS struct {
	Var   string
	Extra expr // optional extra Bool conjunct; nil for plain countdown
	Body  []stmt
}

// ifS is `if (Cond) { Then } [else { Else }]`.
type ifS struct {
	Cond expr
	Then []stmt
	Else []stmt
}

func (*declS) isStmt()    {}
func (*declArrS) isStmt() {}
func (*bindS) isStmt()    {}
func (*assignS) isStmt()  {}
func (*storeS) isStmt()   {}
func (*forS) isStmt()     {}
func (*whileS) isStmt()   {}
func (*ifS) isStmt()      {}

// Expressions. Every expression carries its result kind, computed at
// build time with exactly the kdsl checker's promotion rules (promote,
// widens, implicit casts), so the evaluator and the compiled pipeline
// agree on every intermediate width.
type expr interface{ kind() cir.Kind }

// intE is an integer literal. K is Int or Long (Long renders a `L`
// suffix); narrower kinds are produced with castE, as in the source
// language.
type intE struct {
	K cir.Kind
	V int64
}

// floatE is a floating literal; K is Double (Float values are produced
// with castE, rendered `.toFloat`).
type floatE struct {
	K cir.Kind
	V float64
}

// varE reads a scalar local, loop variable, or scalar constant field.
type varE struct {
	Name string
	K    cir.Kind
}

// loadE reads Arr(Idx); K is the element kind.
type loadE struct {
	Arr string
	K   cir.Kind
	Idx expr
}

// binE applies Op. Prom is the checker's promoted operand kind
// (promote(l,r)); K is the result kind (Prom for arithmetic, Bool for
// comparisons and logical ops).
type binE struct {
	Op      cir.BinOp
	K, Prom cir.Kind
	L, R    expr
}

// unE applies a unary op; K is the (already Int-promoted, for
// Char/Short operands) result kind.
type unE struct {
	Op cir.UnOp
	K  cir.Kind
	X  expr
}

// castE is an explicit `.toK` conversion.
type castE struct {
	To cir.Kind
	X  expr
}

// mathE is a java.lang.Math call. K is the checker's result kind; Prom
// the kind arguments are implicitly cast to.
type mathE struct {
	Name    string
	K, Prom cir.Kind
	Args    []expr
}

func (e *intE) kind() cir.Kind   { return e.K }
func (e *floatE) kind() cir.Kind { return e.K }
func (e *varE) kind() cir.Kind   { return e.K }
func (e *loadE) kind() cir.Kind  { return e.K }
func (e *binE) kind() cir.Kind   { return e.K }
func (e *unE) kind() cir.Kind    { return e.K }
func (e *castE) kind() cir.Kind  { return e.To }
func (e *mathE) kind() cir.Kind  { return e.K }

// promote mirrors kdsl's JVM binary numeric promotion (minimum Int).
func promote(a, b cir.Kind) cir.Kind {
	rank := func(k cir.Kind) int {
		switch k {
		case cir.Char, cir.Short:
			return 1
		case cir.Int:
			return 2
		case cir.Long:
			return 3
		case cir.Float:
			return 4
		case cir.Double:
			return 5
		}
		return 0
	}
	order := []cir.Kind{cir.Int, cir.Long, cir.Float, cir.Double}
	r := rank(a)
	if rank(b) > r {
		r = rank(b)
	}
	if r < 2 {
		r = 2
	}
	return order[r-2]
}

// Constructors that compute kinds the way the checker does.

func bin(op cir.BinOp, l, r expr) *binE {
	p := promote(l.kind(), r.kind())
	k := p
	if op.IsCompare() || op.IsLogical() {
		k = cir.Bool
	}
	return &binE{Op: op, K: k, Prom: p, L: l, R: r}
}

func un(op cir.UnOp, x expr) *unE {
	k := x.kind()
	if (op == cir.Neg || op == cir.BitNot) && (k == cir.Char || k == cir.Short) {
		k = cir.Int
	}
	return &unE{Op: op, K: k, X: x}
}

func math1(name string, a expr) *mathE {
	switch name {
	case "abs":
		k := a.kind()
		if k == cir.Char || k == cir.Short {
			k = cir.Int
		}
		return &mathE{Name: name, K: k, Prom: k, Args: []expr{a}}
	default: // exp, log, sqrt, floor
		return &mathE{Name: name, K: cir.Double, Prom: cir.Double, Args: []expr{a}}
	}
}

func math2(name string, a, b expr) *mathE {
	switch name {
	case "pow":
		return &mathE{Name: name, K: cir.Double, Prom: cir.Double, Args: []expr{a, b}}
	default: // min, max
		k := promote(a.kind(), b.kind())
		return &mathE{Name: name, K: k, Prom: k, Args: []expr{a, b}}
	}
}

func iconst(v int64) *intE              { return &intE{K: cir.Int, V: v} }
func fconst(v float64) *floatE          { return &floatE{K: cir.Double, V: v} }
func ref(name string, k cir.Kind) *varE { return &varE{Name: name, K: k} }

// clone deep-copies the prog so the shrinker can edit candidates freely.
func (p *prog) clone() *prog {
	q := *p
	q.In = append([]typeSpec(nil), p.In...)
	q.Consts = make([]constDef, len(p.Consts))
	for i, c := range p.Consts {
		q.Consts[i] = c
		q.Consts[i].Ints = append([]int64(nil), c.Ints...)
		q.Consts[i].Fls = append([]float64(nil), c.Fls...)
	}
	q.Tags = append([]string(nil), p.Tags...)
	q.Body = cloneBlock(p.Body)
	return &q
}

func cloneBlock(b []stmt) []stmt {
	out := make([]stmt, len(b))
	for i, s := range b {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s stmt) stmt {
	switch s := s.(type) {
	case *declS:
		c := *s
		c.Init = cloneExpr(s.Init)
		return &c
	case *declArrS:
		c := *s
		return &c
	case *bindS:
		c := *s
		return &c
	case *assignS:
		c := *s
		c.E = cloneExpr(s.E)
		return &c
	case *storeS:
		c := *s
		c.Idx = cloneExpr(s.Idx)
		c.E = cloneExpr(s.E)
		return &c
	case *forS:
		c := *s
		c.Body = cloneBlock(s.Body)
		return &c
	case *whileS:
		c := *s
		if s.Extra != nil {
			c.Extra = cloneExpr(s.Extra)
		}
		c.Body = cloneBlock(s.Body)
		return &c
	case *ifS:
		c := *s
		c.Cond = cloneExpr(s.Cond)
		c.Then = cloneBlock(s.Then)
		c.Else = cloneBlock(s.Else)
		return &c
	}
	return s
}

func cloneExpr(e expr) expr {
	switch e := e.(type) {
	case *intE:
		c := *e
		return &c
	case *floatE:
		c := *e
		return &c
	case *varE:
		c := *e
		return &c
	case *loadE:
		c := *e
		c.Idx = cloneExpr(e.Idx)
		return &c
	case *binE:
		c := *e
		c.L = cloneExpr(e.L)
		c.R = cloneExpr(e.R)
		return &c
	case *unE:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	case *castE:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	case *mathE:
		c := *e
		c.Args = make([]expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = cloneExpr(a)
		}
		return &c
	}
	return e
}
