package kdslgen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"s2fa/internal/absint"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/jvmsim"
	"s2fa/internal/kdsl"
)

// toVal packs a task into the jvmsim input shape: one field is passed
// bare, several as a tuple.
func toVal(task []FieldVal) jvmsim.Val {
	fs := make([]jvmsim.Val, len(task))
	for i, f := range task {
		if f.IsArr {
			fs[i] = jvmsim.Array(append([]cir.Value(nil), f.Arr...))
		} else {
			fs[i] = jvmsim.Scalar(f.S)
		}
	}
	if len(fs) == 1 {
		return fs[0]
	}
	return jvmsim.Tuple(fs...)
}

// sameValue compares two cir values bit-exactly (NaNs of equal payload
// compare equal; +0 and -0 do not).
func sameValue(a, b cir.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K.IsFloat() {
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
	return a.I == b.I
}

func sameResult(ref FieldVal, got jvmsim.Val) bool {
	if ref.IsArr != got.IsArr || got.IsTup {
		return false
	}
	if !ref.IsArr {
		return sameValue(ref.S, got.S)
	}
	if len(ref.Arr) != len(got.Arr) {
		return false
	}
	for i := range ref.Arr {
		if !sameValue(ref.Arr[i], got.Arr[i]) {
			return false
		}
	}
	return true
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 40)
	b := Generate(42, 40)
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatalf("kernel %d differs between identical Generate calls", i)
		}
	}
	// Kernel i must not depend on n.
	pre := Generate(42, 10)
	for i := range pre {
		if pre[i].Source != a[i].Source {
			t.Fatalf("kernel %d differs between n=10 and n=40", i)
		}
	}
	// A different seed must actually change the population.
	c := Generate(43, 40)
	diff := 0
	for i := range a {
		if a[i].Source != c[i].Source {
			diff++
		}
	}
	if diff == 0 {
		t.Fatalf("seed 43 produced the same 40 kernels as seed 42")
	}
	// All families appear in any prefix of >= 8 kernels.
	fams := map[string]bool{}
	for _, k := range a[:8] {
		fams[k.Tags[0]] = true
	}
	if len(fams) != 8 {
		t.Fatalf("first 8 kernels cover %d families, want 8: %v", len(fams), fams)
	}
}

func TestGeneratedKernelsCompileAndVerify(t *testing.T) {
	for _, k := range Generate(7, 64) {
		cls, err := kdsl.CompileSource(k.Source)
		if err != nil {
			t.Fatalf("%s (%v) does not compile: %v\n%s", k.Name, k.Tags, err, k.Source)
		}
		if err := bytecode.VerifyClass(cls); err != nil {
			t.Fatalf("%s: bytecode fails verification: %v\n%s", k.Name, err, k.Source)
		}
		facts, err := absint.AnalyzeClass(cls)
		if err != nil {
			t.Fatalf("%s: absint: %v", k.Name, err)
		}
		if !facts.Pure() {
			t.Fatalf("%s: generated kernel reported impure\n%s", k.Name, k.Source)
		}
		if v := facts.Violations(); len(v) > 0 {
			t.Fatalf("%s: generated kernel has §3.3 violations %v\n%s", k.Name, v, k.Source)
		}
	}
}

func TestReferenceAgreesWithJVM(t *testing.T) {
	kernels := Generate(3, 48)
	rng := rand.New(rand.NewSource(99))
	for _, k := range kernels {
		cls, err := kdsl.CompileSource(k.Source)
		if err != nil {
			t.Fatalf("%s: %v\n%s", k.Name, err, k.Source)
		}
		vm := jvmsim.New(cls)
		var outs []FieldVal
		for task := 0; task < 3; task++ {
			in := k.NewTask(rng)
			want, err := k.Eval(in)
			if err != nil {
				t.Fatalf("%s: reference eval: %v\n%s", k.Name, err, k.Source)
			}
			got, err := vm.Call(toVal(in))
			if err != nil {
				t.Fatalf("%s: jvm: %v\n%s", k.Name, err, k.Source)
			}
			if !sameResult(want, got) {
				t.Fatalf("%s: jvm result %+v != reference %+v\n%s", k.Name, got, want, k.Source)
			}
			outs = append(outs, want)
		}
		if k.HasReduce() {
			want, err := k.EvalReduce(outs[0], outs[1])
			if err != nil {
				t.Fatalf("%s: reference reduce: %v", k.Name, err)
			}
			// toVal copies arrays, so the combiner's in-place
			// accumulation cannot corrupt the reference outputs.
			got, err := vm.Reduce(toVal(outs[0:1]), toVal(outs[1:2]))
			if err != nil {
				t.Fatalf("%s: jvm reduce: %v", k.Name, err)
			}
			if !sameResult(want, got) {
				t.Fatalf("%s: jvm reduce %+v != reference %+v", k.Name, got, want)
			}
		}
	}
}

func TestNegatives(t *testing.T) {
	negs := GenerateNegatives(5, 2*len(negTemplates))
	stages := map[Reject]int{}
	for _, n := range negs {
		stages[n.Stage]++
		switch n.Stage {
		case RejectParse:
			if _, err := kdsl.Parse(n.Source); err == nil {
				t.Fatalf("%s (%s) parsed but must not:\n%s", n.Name, n.Why, n.Source)
			}
		case RejectCheck:
			cls, err := kdsl.Parse(n.Source)
			if err != nil {
				t.Fatalf("%s (%s) must parse, got %v:\n%s", n.Name, n.Why, err, n.Source)
			}
			if _, err := kdsl.Compile(cls); err == nil {
				t.Fatalf("%s (%s) compiled but must not:\n%s", n.Name, n.Why, n.Source)
			}
		case RejectPurity:
			cls, err := kdsl.CompileSource(n.Source)
			if err != nil {
				t.Fatalf("%s (%s) must compile, got %v:\n%s", n.Name, n.Why, err, n.Source)
			}
			facts, err := absint.AnalyzeClass(cls)
			if err != nil {
				t.Fatalf("%s: absint: %v", n.Name, err)
			}
			if facts.Pure() {
				t.Fatalf("%s (%s) reported pure but mutates its input:\n%s", n.Name, n.Why, n.Source)
			}
			// The JVM executes it fine, and the reference semantics
			// (aliasing binds) agree, mutated inputs and all.
			rng := rand.New(rand.NewSource(17))
			in := n.Kernel.NewTask(rng)
			inCopy := make([]FieldVal, len(in))
			for i, f := range in {
				inCopy[i] = FieldVal{S: f.S, Arr: append([]cir.Value(nil), f.Arr...), IsArr: f.IsArr}
			}
			want, err := n.Kernel.Eval(in)
			if err != nil {
				t.Fatalf("%s: reference eval: %v", n.Name, err)
			}
			got, err := jvmsim.New(cls).Call(toVal(inCopy))
			if err != nil {
				t.Fatalf("%s: jvm: %v", n.Name, err)
			}
			if !sameResult(want, got) {
				t.Fatalf("%s: jvm %+v != reference %+v\n%s", n.Name, got, want, n.Source)
			}
		}
	}
	if stages[RejectParse] == 0 || stages[RejectCheck] == 0 || stages[RejectPurity] == 0 {
		t.Fatalf("negative population misses a stage: %v", stages)
	}
}

func TestNegativesDeterministic(t *testing.T) {
	a := GenerateNegatives(5, 11)
	b := GenerateNegatives(5, 11)
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatalf("negative %d differs between identical calls", i)
		}
	}
}

func TestRenderedSourceStyle(t *testing.T) {
	for _, k := range Generate(1, 16) {
		if !strings.Contains(k.Source, "extends Accelerator[") {
			t.Fatalf("%s: missing Accelerator header:\n%s", k.Name, k.Source)
		}
		if !strings.Contains(k.Source, `val id: String = "`+k.ID+`"`) {
			t.Fatalf("%s: id %q not rendered:\n%s", k.Name, k.ID, k.Source)
		}
	}
}
