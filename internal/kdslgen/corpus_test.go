package kdslgen

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateCorpus = flag.Bool("update", false, "rewrite the shared kdsl fuzz corpus from generator output")

// corpusDir is the shared seed corpus consumed by kdsl's FuzzKdslParse:
// generator output lives next to hand-written boundary cases so the
// fuzzer mutates from both sides of the accept frontier.
const corpusDir = "../kdsl/testdata/corpus"

const (
	corpusSeed = 1
	corpusGen  = 8 // one kernel per family
	corpusNeg  = 3 // the parse-stage negative templates
)

// TestCorpusFilesMatchGenerator pins the committed generator-derived
// corpus files byte-for-byte to Generate(1, 8) and the first three
// negatives: the corpus is re-seeded from the generator, never edited by
// hand. Run with -update after changing the generator.
func TestCorpusFilesMatchGenerator(t *testing.T) {
	want := map[string]string{}
	for i, k := range Generate(corpusSeed, corpusGen) {
		want[filepath.Join(corpusDir, "gen_"+k.Tags[0]+".kdsl")] = k.Source
		_ = i
	}
	for _, n := range GenerateNegatives(corpusSeed, corpusNeg) {
		want[filepath.Join(corpusDir, strings.ToLower(n.Name)+"_"+n.Stage.String()+".kdsl")] = n.Source
	}
	if *updateCorpus {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for path, src := range want {
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for path, src := range want {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run `go test ./internal/kdslgen/ -run TestCorpusFiles -update`)", err)
		}
		if string(data) != src {
			t.Errorf("%s drifted from generator output (run with -update to refresh)", path)
		}
	}
}
