package access

import "s2fa/internal/cir"

// taintScalars computes the flow-insensitive set of scalars that
// transitively depend on loaded data. A subscript mentioning any of
// them (or containing a load itself) is a gather: no static address
// progression can be claimed.
//
// Taint sources and propagation, iterated to a fixpoint:
//   - data: a scalar assigned from an expression containing an array
//     load or an already-tainted scalar;
//   - control: a scalar assigned anywhere under an If or While whose
//     condition contains a load or a tainted scalar (its value encodes
//     the loaded bit);
//   - induction: a counted loop whose bounds contain a load or tainted
//     scalar taints its own variable (the iteration range is data-
//     dependent, e.g. CSR row pointers).
//
// Over-tainting only demotes claims, so imprecision here is safe.
func taintScalars(k *cir.Kernel) map[string]bool {
	t := map[string]bool{}
	for {
		changed := false
		mark := func(name string) {
			if !t[name] {
				t[name] = true
				changed = true
			}
		}
		var walk func(b cir.Block, ctl bool)
		walk = func(b cir.Block, ctl bool) {
			for _, s := range b {
				switch s := s.(type) {
				case *cir.Decl:
					if ctl || (s.Init != nil && dataDependent(s.Init, t)) {
						mark(s.Name)
					}
				case *cir.Assign:
					if v, ok := s.LHS.(*cir.VarRef); ok {
						if ctl || dataDependent(s.RHS, t) {
							mark(v.Name)
						}
					}
				case *cir.If:
					inner := ctl || dataDependent(s.Cond, t)
					walk(s.Then, inner)
					walk(s.Else, inner)
				case *cir.While:
					inner := ctl || dataDependent(s.Cond, t)
					walk(s.Body, inner)
				case *cir.Loop:
					if dataDependent(s.Lo, t) || dataDependent(s.Hi, t) {
						mark(s.Var)
					}
					// The loop variable's progression is affine whether
					// or not the loop executes under tainted control, so
					// ctl does not taint it; body assigns inherit ctl.
					walk(s.Body, ctl)
				}
			}
		}
		walk(k.Body, false)
		if !changed {
			return t
		}
	}
}

// dataDependent reports whether the expression contains an array load
// or references a tainted scalar.
func dataDependent(e cir.Expr, tainted map[string]bool) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *cir.Index:
		return true
	case *cir.VarRef:
		return tainted[e.Name]
	case *cir.Unary:
		return dataDependent(e.X, tainted)
	case *cir.Binary:
		return dataDependent(e.L, tainted) || dataDependent(e.R, tainted)
	case *cir.Cast:
		return dataDependent(e.X, tainted)
	case *cir.Cond:
		return dataDependent(e.C, tainted) || dataDependent(e.T, tainted) ||
			dataDependent(e.F, tainted)
	case *cir.Call:
		for _, a := range e.Args {
			if dataDependent(a, tainted) {
				return true
			}
		}
	}
	return false
}
