// Package access implements the static memory-access-pattern analysis
// over the HLS-C IR. Every array access site is classified, per
// enclosing counted loop, as burst (unit stride), strided (constant
// stride != 1), gather/scatter (the subscript depends on loaded data),
// or unknown; per-loop footprints and reuse verdicts follow from the
// affine extents.
//
// The contract is one-sided, mirroring internal/depend: the analysis
// may always demote an access to a weaker class (unknown is never
// wrong), but an affine claim — burst, strided, or invariant, with its
// coefficient — must hold on every dynamic execution. The claim for a
// site S with respect to an enclosing loop L is:
//
//	addr(S) = Coeff * value(L.Var) + r
//
// where r stays fixed while every other enclosing induction variable
// stays fixed. The jvmsim trace property in internal/apps enforces
// exactly this over all workloads.
//
// Consumers: the HLS estimator's DDR model (burst staging vs
// per-element gather cost, BRAM port caps on lane replication), DSE
// access-based pruning, the lint gather advisory, and `s2fa -explain`.
package access

import (
	"sort"

	"s2fa/internal/cir"
	"s2fa/internal/depend"
)

// Class orders access patterns from weakest knowledge to strongest.
// Lower is weaker: aggregations take the minimum.
type Class uint8

// Access classes.
const (
	// Unknown: the subscript is not an affine function of the enclosing
	// induction variables (or mixes in a mutated scalar). No claim.
	Unknown Class = iota
	// Gather: the subscript transitively depends on loaded data
	// (indirect addressing). No static address progression exists and
	// off-chip burst inference is impossible.
	Gather
	// Strided: constant nonzero address delta per iteration, != 1.
	Strided
	// Burst: address delta per iteration is exactly +1 — the access
	// streams contiguously and an AXI burst engine can service it.
	Burst
	// Invariant: the address does not move with this loop at all; the
	// element is hoistable into a register.
	Invariant
)

func (c Class) String() string {
	switch c {
	case Gather:
		return "gather"
	case Strided:
		return "strided"
	case Burst:
		return "burst"
	case Invariant:
		return "invariant"
	}
	return "unknown"
}

// Affine reports whether the class carries a provable per-iteration
// address progression (and therefore a coefficient the trace property
// must find consistent).
func (c Class) Affine() bool { return c >= Strided }

// ArrayKind distinguishes the three storage classes an Index can name.
type ArrayKind uint8

// Array storage classes.
const (
	ArrParam  ArrayKind = iota // kernel interface buffer (off-chip)
	ArrLocal                   // on-chip static array
	ArrGlobal                  // read-only constant table
)

func (k ArrayKind) String() string {
	switch k {
	case ArrLocal:
		return "local"
	case ArrGlobal:
		return "global"
	}
	return "param"
}

// Claim is the per-(site, loop) verdict. Coeff is the subscript delta
// per unit change of the loop variable; Stride is the delta per loop
// iteration (Coeff * Step). Both are meaningful only when Class.Affine()
// or Class == Invariant (then both are zero).
type Claim struct {
	Class  Class
	Coeff  int64
	Stride int64
}

// Site is one static array access (an *cir.Index occurrence).
type Site struct {
	Array string
	Kind  ArrayKind
	Write bool
	Pos   cir.Pos
	Idx   cir.Expr
	// Chain lists the enclosing counted loops, outermost first. While
	// loops do not appear (they take no directives and have no induction
	// variable); WhileDepth counts them instead.
	Chain      []string
	InnerLoop  string // innermost enclosing counted loop ID, "" if none
	WhileDepth int
	// DataDep marks the subscript as transitively dependent on loaded
	// data (the gather condition).
	DataDep bool
	// AffineOK reports that the subscript decomposed to an affine form
	// of the induction variables with no data dependence.
	AffineOK bool
	// Claims maps each enclosing loop ID to the per-loop claim.
	Claims map[string]Claim

	form    depend.AffineForm
	chainLs []*cir.Loop
	perTask int64 // statically estimated executions per task
}

// Class is the site's headline classification: its claim with respect
// to the innermost enclosing counted loop.
func (s *Site) Class() Class {
	if s.DataDep {
		return Gather
	}
	if !s.AffineOK {
		return Unknown
	}
	if s.InnerLoop == "" {
		return Invariant
	}
	return s.Claims[s.InnerLoop].Class
}

// LoopArray summarizes every access to one array inside one loop's
// subtree.
type LoopArray struct {
	Array string
	Kind  ArrayKind
	// Worst is the weakest claim class among the subtree's sites with
	// respect to this loop.
	Worst Class
	// MaxStride is the largest |stride| among the affine claims.
	MaxStride int64
	// Footprint is the element span the loop's full execution can touch,
	// clamped to the array extent. Valid only when FootprintKnown; an
	// unknown footprint means the whole array must be assumed live.
	Footprint      int64
	FootprintKnown bool
	// Reuse is the verdict for on-chip buffering: "stream" (all burst —
	// each element used in one iteration, a FIFO suffices), "reused"
	// (all invariant — registers suffice), or "mixed".
	Reuse string
	// Sites are the subtree's accesses to this array, program order.
	Sites []*Site
}

// ParamProfile drives the HLS DDR model for one interface buffer.
type ParamProfile struct {
	Name string
	// Stageable: at least one subscript is a provable affine function of
	// the loop nest, so Merlin's burst inference can hoist a staging
	// buffer and stream the transfer. When false (every access is a
	// gather or affine-opaque), the buffer pays per-element DDR latency.
	Stageable bool
	// StageElems is the per-task element span a staging transfer must
	// cover (<= the param's per-task Length; equal when the span cannot
	// be bounded more tightly).
	StageElems int64
	// Accesses statically estimates the dynamic subscripted accesses per
	// task (trip products; unknown trips count 16, matching the
	// scheduler's nominal).
	Accesses int64
	// Worst is the weakest site classification on this param, and
	// WorstSite the first site carrying it (diagnostics).
	Worst     Class
	WorstSite *Site
}

// Analysis is the kernel-wide result.
type Analysis struct {
	Kernel *cir.Kernel
	// Sites lists every array access in program order.
	Sites []*Site
	// Loops maps loop ID -> per-array summaries, sorted by array name.
	Loops map[string][]*LoopArray
	// LoopOrder lists counted-loop IDs in preorder.
	LoopOrder []string
	// Params holds DDR profiles for the array params, in param order.
	Params []ParamProfile

	caps map[string]int
}

// portBudget is the element-port budget of a fully banked on-chip
// array: the estimator's resource model cyclic-partitions local arrays
// into at most 64 banks (internal/hls innerBanks), and BRAM18K is
// true-dual-ported.
const portBudget = 64 * 2

// PortCap bounds the parallel lanes one loop can keep busy against
// banked on-chip arrays: a loop issuing a direct per-iteration accesses
// to one local array can feed at most portBudget/a lanes before the
// banks' ports serialize the replicas. 0 means unbounded. The task
// loop is never capped (each PE replicates private arrays).
func (a *Analysis) PortCap(id string) int { return a.caps[id] }

// Param returns the profile for the named array param, or nil.
func (a *Analysis) Param(name string) *ParamProfile {
	for i := range a.Params {
		if a.Params[i].Name == name {
			return &a.Params[i]
		}
	}
	return nil
}

// Analyze runs the access-pattern analysis. The kernel is read, never
// mutated; the result is deterministic for a given kernel.
func Analyze(k *cir.Kernel) *Analysis {
	w := newWalker(k)
	w.block(k.Body)

	a := &Analysis{
		Kernel: k,
		Sites:  w.sites,
		Loops:  map[string][]*LoopArray{},
		caps:   map[string]int{},
	}
	info := cir.Analyze(k)
	for _, li := range info.All {
		a.LoopOrder = append(a.LoopOrder, li.Loop.ID)
		a.Loops[li.Loop.ID] = a.loopSummaries(li.Loop.ID, w)
		if li.Loop.ID != k.TaskLoopID {
			if cap := a.portCap(li.Loop.ID); cap > 0 {
				a.caps[li.Loop.ID] = cap
			}
		}
	}
	for i := range k.Params {
		if k.Params[i].IsArray {
			a.Params = append(a.Params, a.paramProfile(&k.Params[i], w))
		}
	}
	return a
}

// loopSummaries aggregates the subtree sites of one loop by array.
func (a *Analysis) loopSummaries(id string, w *walker) []*LoopArray {
	byArr := map[string]*LoopArray{}
	var names []string
	for _, s := range a.Sites {
		if !chainHas(s.Chain, id) {
			continue
		}
		la := byArr[s.Array]
		if la == nil {
			la = &LoopArray{Array: s.Array, Kind: s.Kind, Worst: Invariant, FootprintKnown: true}
			byArr[s.Array] = la
			names = append(names, s.Array)
		}
		la.Sites = append(la.Sites, s)
		cl := s.Claims[id]
		if cl.Class < la.Worst {
			la.Worst = cl.Class
		}
		if st := absI64(cl.Stride); cl.Class.Affine() && st > la.MaxStride {
			la.MaxStride = st
		}
	}
	sort.Strings(names)
	out := make([]*LoopArray, 0, len(names))
	for _, n := range names {
		la := byArr[n]
		la.Footprint, la.FootprintKnown = a.footprint(la.Sites, w.arrLen[n])
		la.Reuse = reuseOf(la.Sites, id)
		out = append(out, la)
	}
	return out
}

// footprint is the interval hull of the sites' subscripts with every
// enclosing induction variable ranging over its full extent — an
// overestimate of what the loop touches, which is the safe direction
// for staging decisions. ok=false when any site resists bounding.
func (a *Analysis) footprint(sites []*Site, arrLen int64) (int64, bool) {
	var lo, hi int64
	first := true
	for _, s := range sites {
		slo, shi, ok := s.extent(nil)
		if !ok {
			return 0, false
		}
		if first || slo < lo {
			lo = slo
		}
		if first || shi > hi {
			hi = shi
		}
		first = false
	}
	if first {
		return 0, false
	}
	if arrLen > 0 {
		if lo < 0 {
			lo = 0
		}
		if hi > arrLen-1 {
			hi = arrLen - 1
		}
	}
	if hi < lo {
		return 0, true
	}
	return hi - lo + 1, true
}

// extent bounds the subscript over the full ranges of the site's chain
// variables, skipping any variable in drop (its term must then be
// handled by the caller). Non-varying scalars are rejected here — they
// shift the absolute interval by an unknown constant.
func (s *Site) extent(drop map[string]bool) (lo, hi int64, ok bool) {
	if s.DataDep || !s.AffineOK {
		return 0, 0, false
	}
	//determinism:allow order-independent: existence check over coefficients
	for _, c := range s.form.Syms {
		if c != 0 {
			return 0, 0, false
		}
	}
	lo, hi = s.form.Const, s.form.Const
	for _, l := range s.chainLs {
		c := s.form.Ind[l.Var]
		if c == 0 || (drop != nil && drop[l.Var]) {
			continue
		}
		vlo, vhi, okR := depend.LoopVarRange(l)
		if !okR {
			return 0, 0, false
		}
		a, b := c*vlo, c*vhi
		if a > b {
			a, b = b, a
		}
		lo += a
		hi += b
	}
	return lo, hi, true
}

// reuseOf derives the buffering verdict for one array under one loop.
func reuseOf(sites []*Site, id string) string {
	allBurst, allInv := true, true
	for _, s := range sites {
		switch s.Claims[id].Class {
		case Burst:
			allInv = false
		case Invariant:
			allBurst = false
		default:
			allBurst, allInv = false, false
		}
	}
	switch {
	case allBurst:
		return "stream"
	case allInv:
		return "reused"
	}
	return "mixed"
}

// portCap computes the lane bound for one loop from its direct on-chip
// accesses. Params are excluded (interface staging buffers ride their
// own AXI lanes) and invariant sites are excluded (hoistable to
// registers, no per-lane port).
func (a *Analysis) portCap(id string) int {
	pressure := map[string]int{}
	for _, s := range a.Sites {
		if s.InnerLoop != id || s.Kind == ArrParam {
			continue
		}
		if s.Claims[id].Class == Invariant {
			continue
		}
		pressure[s.Array]++
	}
	cap := 0
	//determinism:allow order-independent: commutative min over per-array pressure
	for _, n := range pressure {
		c := portBudget / n
		if c < 1 {
			c = 1
		}
		if cap == 0 || c < cap {
			cap = c
		}
	}
	return cap
}

// paramProfile derives the DDR model inputs for one interface buffer.
func (a *Analysis) paramProfile(p *cir.Param, w *walker) ParamProfile {
	pr := ParamProfile{Name: p.Name, Worst: Invariant, StageElems: int64(p.Length)}
	var sites []*Site
	for _, s := range a.Sites {
		if s.Array != p.Name {
			continue
		}
		sites = append(sites, s)
		if s.AffineOK {
			pr.Stageable = true
		}
		pr.Accesses += s.perTask
		if c := s.Class(); c < pr.Worst || pr.WorstSite == nil {
			pr.Worst = c
			pr.WorstSite = s
		}
	}
	if len(sites) == 0 {
		// Untouched buffer: the interface still transfers it whole.
		pr.Stageable = true
		pr.Worst = Invariant
		return pr
	}
	if span, ok := a.taskSpan(sites, int64(p.Length), w.taskID); ok && span < pr.StageElems {
		pr.StageElems = span
	}
	return pr
}

// taskSpan bounds the per-task element span of a param: the subscript
// hull with the task variable's term dropped (fixed within one task).
// Sites must agree on the dropped coefficients for their relative
// intervals to be comparable; otherwise fall back to the full length.
func (a *Analysis) taskSpan(sites []*Site, length int64, taskID string) (int64, bool) {
	var lo, hi int64
	var taskCoeff int64
	first := true
	for _, s := range sites {
		var drop map[string]bool
		var tc int64
		for _, l := range s.chainLs {
			if l.ID == taskID {
				drop = map[string]bool{l.Var: true}
				tc = s.form.Ind[l.Var]
			}
		}
		slo, shi, ok := s.extent(drop)
		if !ok {
			return 0, false
		}
		if first {
			taskCoeff = tc
		} else if tc != taskCoeff {
			return 0, false
		}
		if first || slo < lo {
			lo = slo
		}
		if first || shi > hi {
			hi = shi
		}
		first = false
	}
	if first {
		return 0, false
	}
	span := hi - lo + 1
	if span < 1 {
		span = 1
	}
	if length > 0 && span > length {
		span = length
	}
	return span, true
}

func chainHas(chain []string, id string) bool {
	for _, c := range chain {
		if c == id {
			return true
		}
	}
	return false
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
