package access_test

import (
	"testing"

	"s2fa/internal/access"
	"s2fa/internal/apps"
	"s2fa/internal/b2c"
	"s2fa/internal/kdsl"
)

// FuzzClassifier throws arbitrary kdsl source at the full frontend and
// checks the access classifier's internal contract on whatever kernels
// survive compilation:
//
//   - Analyze never panics and is deterministic (two runs render the
//     same table).
//   - Claim algebra holds: a gather site claims Gather everywhere, a
//     non-affine site claims nothing stronger than Unknown, Burst means
//     stride exactly 1, Invariant means a zero coefficient, and every
//     affine claim's stride is Coeff * Step of its loop.
//
// The trace property in internal/apps checks the claims against dynamic
// executions; this target checks they are at least self-consistent on
// adversarial input. The corpus seeds all eight paper workloads plus
// kernels exercising the corners: data-dependent subscripts, reverse
// walks, mutated subscript scalars, and while-loop bodies.
func FuzzClassifier(f *testing.F) {
	for _, a := range apps.All() {
		f.Add(a.Source)
	}
	f.Add(`class Gather {
  val id: String = "g"
  val inSizes: Array[Int] = Array(64)
  def call(in: Array[Int]): Int = {
    var t: Int = 0
    for (i <- 0 until 64) {
      t = t + in(in(i) % 64)
    }
    t
  }
}`)
	f.Add(`class Reverse {
  val id: String = "r"
  val inSizes: Array[Int] = Array(64)
  def call(in: Array[Int]): Int = {
    var t: Int = 0
    for (i <- 0 until 64) {
      t = t + in(63 - i)
    }
    t
  }
}`)
	f.Add(`class Mut {
  val id: String = "m"
  val inSizes: Array[Int] = Array(64)
  def call(in: Array[Int]): Int = {
    var s: Int = 0
    var t: Int = 0
    for (i <- 0 until 32) {
      s = s + 2
      t = t + in(s)
    }
    t
  }
}`)
	f.Add(`class Wh {
  val id: String = "w"
  val inSizes: Array[Int] = Array(64)
  def call(in: Array[Int]): Int = {
    var p: Int = 0
    var t: Int = 0
    while (p < 64 && in(p) != 0) {
      t = t + in(p)
      p = p + 1
    }
    t
  }
}`)

	f.Fuzz(func(t *testing.T, src string) {
		cls, err := kdsl.CompileSource(src)
		if err != nil {
			return
		}
		k, err := b2c.Compile(cls)
		if err != nil {
			return
		}
		a := access.Analyze(k)
		if got, again := a.Table(), access.Analyze(k).Table(); got != again {
			t.Fatalf("Analyze is nondeterministic:\n%s\nvs\n%s", got, again)
		}
		steps := map[string]int64{}
		for _, li := range k.Loops() {
			steps[li.ID] = li.Step
		}
		for _, s := range a.Sites {
			for id, cl := range s.Claims {
				if s.DataDep && cl.Class != access.Gather {
					t.Fatalf("gather site %s claims %s wrt %s", s.Array, cl.Class, id)
				}
				if !s.AffineOK && cl.Class.Affine() {
					t.Fatalf("non-affine site %s claims %s wrt %s", s.Array, cl.Class, id)
				}
				if cl.Class == access.Burst && cl.Stride != 1 {
					t.Fatalf("burst claim with stride %d on %s wrt %s", cl.Stride, s.Array, id)
				}
				if cl.Class == access.Invariant && (cl.Coeff != 0 || cl.Stride != 0) {
					t.Fatalf("invariant claim with coeff %d on %s wrt %s", cl.Coeff, s.Array, id)
				}
				if cl.Class.Affine() && cl.Stride != cl.Coeff*steps[id] {
					t.Fatalf("claim stride %d != coeff %d * step %d on %s wrt %s",
						cl.Stride, cl.Coeff, steps[id], s.Array, id)
				}
			}
		}
	})
}
