package access

import (
	"testing"

	"s2fa/internal/cir"
)

func intLit(v int64) *cir.IntLit { return &cir.IntLit{K: cir.Int, Val: v} }
func vref(n string) *cir.VarRef  { return &cir.VarRef{K: cir.Int, Name: n} }
func idx(arr string, e cir.Expr) *cir.Index {
	return &cir.Index{K: cir.Int, Arr: arr, Idx: e}
}
func add(l, r cir.Expr) *cir.Binary { return &cir.Binary{K: cir.Int, Op: cir.Add, L: l, R: r} }
func sub(l, r cir.Expr) *cir.Binary { return &cir.Binary{K: cir.Int, Op: cir.Sub, L: l, R: r} }
func mul(l, r cir.Expr) *cir.Binary { return &cir.Binary{K: cir.Int, Op: cir.Mul, L: l, R: r} }

func loop(id, v string, lo, hi int64, body ...cir.Stmt) *cir.Loop {
	return &cir.Loop{ID: id, Var: v, Lo: intLit(lo), Hi: intLit(hi), Step: 1, Body: body}
}

func kern(body ...cir.Stmt) *cir.Kernel {
	return &cir.Kernel{Name: "T", Body: body}
}

// siteFor returns the unique site on the named array, failing if the
// kernel touches it zero or several times.
func siteFor(t *testing.T, a *Analysis, arr string) *Site {
	t.Helper()
	var found *Site
	for _, s := range a.Sites {
		if s.Array != arr {
			continue
		}
		if found != nil {
			t.Fatalf("multiple sites on %s", arr)
		}
		found = s
	}
	if found == nil {
		t.Fatalf("no site on %s", arr)
	}
	return found
}

func wantClaim(t *testing.T, s *Site, loopID string, class Class, stride int64) {
	t.Helper()
	cl, ok := s.Claims[loopID]
	if !ok {
		t.Fatalf("site %s has no claim for loop %s", s.Array, loopID)
	}
	if cl.Class != class || cl.Stride != stride {
		t.Fatalf("site %s wrt %s: got %s stride=%d, want %s stride=%d",
			s.Array, loopID, cl.Class, cl.Stride, class, stride)
	}
}

// TestEdgeTable is the classifier edge-case matrix: each row is one
// subscript shape and its required per-loop claim. Claims are the
// one-sided contract surface — a wrong row here is a soundness bug, not
// a quality bug — so the table leans on corners the real workloads
// don't exercise.
func TestEdgeTable(t *testing.T) {
	t.Run("unit stride is burst", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: idx("A", vref("i")), RHS: intLit(1)},
		))
		s := siteFor(t, Analyze(k), "A")
		wantClaim(t, s, "L0", Burst, 1)
		if !s.Write || s.Class() != Burst {
			t.Fatalf("headline class = %s write=%v, want burst write", s.Class(), s.Write)
		}
	})

	t.Run("negative stride is strided, not burst", func(t *testing.T) {
		// A(100 - i): the address walks backwards one element per
		// iteration. Reverse streams are still strided claims (coeff -1),
		// never burst — the AXI engine only bursts ascending runs.
		k := kern(loop("L0", "i", 0, 100,
			&cir.Assign{LHS: idx("A", sub(intLit(100), vref("i"))), RHS: intLit(1)},
		))
		s := siteFor(t, Analyze(k), "A")
		wantClaim(t, s, "L0", Strided, -1)
		if cl := s.Claims["L0"]; cl.Coeff != -1 {
			t.Fatalf("coeff = %d, want -1", cl.Coeff)
		}
	})

	t.Run("loop-invariant subscript is invariant", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 64, loop("L1", "j", 0, 64,
			&cir.Assign{LHS: idx("A", vref("i")), RHS: idx("B", intLit(7))},
		)))
		a := Analyze(k)
		wantClaim(t, siteFor(t, a, "A"), "L1", Invariant, 0)
		wantClaim(t, siteFor(t, a, "B"), "L0", Invariant, 0)
		wantClaim(t, siteFor(t, a, "B"), "L1", Invariant, 0)
	})

	t.Run("row-major 2-D walk: burst inner, strided outer", func(t *testing.T) {
		// A(i*64 + j): the canonical row-major traversal. The inner loop
		// streams a row (burst); the outer loop hops a full row width.
		k := kern(loop("L0", "i", 0, 64, loop("L1", "j", 0, 64,
			&cir.Assign{LHS: idx("A", add(mul(vref("i"), intLit(64)), vref("j"))), RHS: intLit(1)},
		)))
		s := siteFor(t, Analyze(k), "A")
		wantClaim(t, s, "L1", Burst, 1)
		wantClaim(t, s, "L0", Strided, 64)
		if s.Class() != Burst {
			t.Fatalf("headline class = %s, want burst (innermost loop wins)", s.Class())
		}
	})

	t.Run("column-major 2-D walk: strided inner, burst outer", func(t *testing.T) {
		// A(j*64 + i): same hull, transposed traversal. The inner loop now
		// jumps a row width per iteration — the layout mistake the access
		// table exists to surface.
		k := kern(loop("L0", "i", 0, 64, loop("L1", "j", 0, 64,
			&cir.Assign{LHS: idx("A", add(mul(vref("j"), intLit(64)), vref("i"))), RHS: intLit(1)},
		)))
		s := siteFor(t, Analyze(k), "A")
		wantClaim(t, s, "L1", Strided, 64)
		wantClaim(t, s, "L0", Burst, 1)
		if s.Class() != Strided {
			t.Fatalf("headline class = %s, want strided", s.Class())
		}
	})

	t.Run("two-induction subscript with non-unit coefficients", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 32, loop("L1", "j", 0, 32,
			&cir.Assign{LHS: idx("A", add(mul(vref("i"), intLit(3)), mul(vref("j"), intLit(5)))), RHS: intLit(1)},
		)))
		s := siteFor(t, Analyze(k), "A")
		wantClaim(t, s, "L0", Strided, 3)
		wantClaim(t, s, "L1", Strided, 5)
	})

	t.Run("loaded subscript is gather for every loop", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: idx("A", idx("B", vref("i"))), RHS: intLit(1)},
		))
		a := Analyze(k)
		s := siteFor(t, a, "A")
		if !s.DataDep || s.Class() != Gather {
			t.Fatalf("A(B(i)): DataDep=%v class=%s, want gather", s.DataDep, s.Class())
		}
		wantClaim(t, s, "L0", Gather, 0)
		// The subscript expression B(i) is itself a well-behaved burst read.
		wantClaim(t, siteFor(t, a, "B"), "L0", Burst, 1)
	})

	t.Run("taint flows through scalar copies", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: vref("t"), RHS: idx("B", vref("i"))},
			&cir.Assign{LHS: vref("u"), RHS: add(vref("t"), intLit(1))},
			&cir.Assign{LHS: idx("A", vref("u")), RHS: intLit(1)},
		))
		if s := siteFor(t, Analyze(k), "A"); s.Class() != Gather {
			t.Fatalf("A(u) with u = B(i)+1: class = %s, want gather", s.Class())
		}
	})

	t.Run("taint flows through control dependence", func(t *testing.T) {
		// t is only ever assigned constants, but which constant depends on
		// loaded data — the subscript is still data-dependent.
		k := kern(loop("L0", "i", 0, 128,
			&cir.If{Cond: idx("B", vref("i")), Then: cir.Block{
				&cir.Assign{LHS: vref("t"), RHS: intLit(1)},
			}},
			&cir.Assign{LHS: idx("A", vref("t")), RHS: intLit(1)},
		))
		if s := siteFor(t, Analyze(k), "A"); s.Class() != Gather {
			t.Fatalf("control-tainted subscript: class = %s, want gather", s.Class())
		}
	})

	t.Run("mutated scalar in subscript demotes to unknown", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: vref("s"), RHS: add(vref("s"), intLit(1))},
			&cir.Assign{LHS: idx("A", add(vref("i"), vref("s"))), RHS: intLit(1)},
		))
		if s := siteFor(t, Analyze(k), "A"); s.Class() != Unknown {
			t.Fatalf("A(i+s) with mutated s: class = %s, want unknown", s.Class())
		}
	})

	t.Run("run-wide constant scalar folds into the residual", func(t *testing.T) {
		// off is declared once at top level and never reassigned: it shifts
		// every address by the same amount, so the progression claim holds.
		k := kern(
			&cir.Decl{Name: "off", K: cir.Int, Init: intLit(40)},
			loop("L0", "i", 0, 64,
				&cir.Assign{LHS: idx("A", add(vref("i"), vref("off"))), RHS: intLit(1)},
			))
		wantClaim(t, siteFor(t, Analyze(k), "A"), "L0", Burst, 1)
	})

	t.Run("mutated loop variable voids its own claim", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: idx("A", vref("i")), RHS: intLit(1)},
			&cir.Assign{LHS: vref("i"), RHS: add(vref("i"), intLit(1))},
		))
		if s := siteFor(t, Analyze(k), "A"); s.Class() != Unknown {
			t.Fatalf("A(i) with i mutated in body: class = %s, want unknown", s.Class())
		}
	})

	t.Run("non-affine subscript is unknown", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 128,
			&cir.Assign{LHS: idx("A", mul(vref("i"), vref("i"))), RHS: intLit(1)},
		))
		s := siteFor(t, Analyze(k), "A")
		if s.DataDep || s.AffineOK || s.Class() != Unknown {
			t.Fatalf("A(i*i): DataDep=%v AffineOK=%v class=%s, want plain unknown",
				s.DataDep, s.AffineOK, s.Class())
		}
	})
}

// TestFootprints pins the interval-hull footprint: full extents, partial
// windows, and clamping against the declared array length.
func TestFootprints(t *testing.T) {
	find := func(t *testing.T, a *Analysis, loopID, arr string) *LoopArray {
		t.Helper()
		for _, la := range a.Loops[loopID] {
			if la.Array == arr {
				return la
			}
		}
		t.Fatalf("loop %s has no summary for %s", loopID, arr)
		return nil
	}

	t.Run("full row-major hull", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 64, loop("L1", "j", 0, 64,
			&cir.Assign{LHS: idx("A", add(mul(vref("i"), intLit(64)), vref("j"))), RHS: intLit(1)},
		)))
		a := Analyze(k)
		la := find(t, a, "L0", "A")
		if !la.FootprintKnown || la.Footprint != 64*64 {
			t.Fatalf("outer footprint = %d (known=%v), want 4096", la.Footprint, la.FootprintKnown)
		}
		// One inner-loop execution still ranges i over its declared extent:
		// the hull is per-loop-subtree, deliberately an overestimate.
		if inner := find(t, a, "L1", "A"); inner.Reuse != "stream" {
			t.Fatalf("inner reuse = %q, want stream", inner.Reuse)
		}
	})

	t.Run("declared length clamps the hull", func(t *testing.T) {
		k := kern(
			&cir.ArrDecl{Name: "A", Elem: cir.Int, Len: 100},
			loop("L0", "i", 0, 256,
				&cir.Assign{LHS: idx("A", vref("i")), RHS: intLit(1)},
			))
		la := find(t, Analyze(k), "L0", "A")
		if !la.FootprintKnown || la.Footprint != 100 {
			t.Fatalf("clamped footprint = %d (known=%v), want 100", la.Footprint, la.FootprintKnown)
		}
		if la.Kind != ArrLocal {
			t.Fatalf("kind = %s, want local", la.Kind)
		}
	})

	t.Run("gather access spoils the footprint", func(t *testing.T) {
		k := kern(loop("L0", "i", 0, 64,
			&cir.Assign{LHS: idx("A", vref("i")), RHS: intLit(1)},
			&cir.Assign{LHS: idx("A", idx("B", vref("i"))), RHS: intLit(2)},
		))
		la := find(t, Analyze(k), "L0", "A")
		if la.FootprintKnown {
			t.Fatalf("footprint known (%d elems) despite a gather site", la.Footprint)
		}
		if la.Worst != Gather || la.Reuse != "mixed" {
			t.Fatalf("worst=%s reuse=%q, want gather/mixed", la.Worst, la.Reuse)
		}
	})
}

// TestPortCap pins the bank-port lane bound: budget 128 element-ports,
// divided by the direct per-iteration pressure on the hottest local
// array; params and invariant sites are exempt, as is the task loop.
func TestPortCap(t *testing.T) {
	body := func(n int) []cir.Stmt {
		var out []cir.Stmt
		acc := cir.Expr(intLit(0))
		for s := 0; s < n; s++ {
			acc = add(acc, idx("H", add(vref("j"), intLit(int64(s)))))
		}
		out = append(out, &cir.Assign{LHS: idx("H", vref("j")), RHS: acc})
		return out
	}

	k := &cir.Kernel{
		Name:       "T",
		TaskLoopID: "T0",
		Body: cir.Block{
			&cir.ArrDecl{Name: "H", Elem: cir.Int, Len: 4096},
			loop("T0", "t", 0, 16, loop("L1", "j", 0, 64, body(3)...)),
		},
	}
	a := Analyze(k)
	// 3 reads + 1 write = 4 direct sites on H: 128/4 = 32 lanes.
	if c := a.PortCap("L1"); c != 32 {
		t.Fatalf("PortCap(L1) = %d, want 32", c)
	}
	// The task loop replicates private arrays per PE and is never capped.
	if c := a.PortCap("T0"); c != 0 {
		t.Fatalf("PortCap(T0) = %d, want 0 (uncapped)", c)
	}

	// Interface buffers ride AXI, not BRAM ports: a param-only loop is
	// uncapped no matter the pressure.
	kp := &cir.Kernel{
		Name:   "T",
		Params: []cir.Param{{Name: "P", Elem: cir.Int, IsArray: true, Length: 4096}},
		Body: cir.Block{
			loop("L0", "i", 0, 64,
				&cir.Assign{LHS: idx("P", vref("i")), RHS: add(idx("P", vref("i")), idx("P", add(vref("i"), intLit(1))))},
			),
		},
	}
	if c := Analyze(kp).PortCap("L0"); c != 0 {
		t.Fatalf("param-only PortCap = %d, want 0", c)
	}
}

// TestParamProfile pins the DDR model inputs: staging spans drop the
// task-loop term, gather-only buffers are unstageable, and access counts
// follow trip products.
func TestParamProfile(t *testing.T) {
	t.Run("task term drops out of the staging span", func(t *testing.T) {
		// P(t*64 + j): each task streams its private 64-element window.
		k := &cir.Kernel{
			Name:       "T",
			TaskLoopID: "T0",
			Params:     []cir.Param{{Name: "P", Elem: cir.Int, IsArray: true, Length: 64 * 16}},
			Body: cir.Block{
				loop("T0", "t", 0, 16, loop("L1", "j", 0, 64,
					&cir.Assign{LHS: vref("x"), RHS: idx("P", add(mul(vref("t"), intLit(64)), vref("j")))},
				)),
			},
		}
		p := Analyze(k).Param("P")
		if p == nil || !p.Stageable || p.StageElems != 64 {
			t.Fatalf("profile = %+v, want stageable span 64", p)
		}
		if p.Accesses != 64 {
			t.Fatalf("accesses/task = %d, want 64", p.Accesses)
		}
	})

	t.Run("gather-only buffer is unstageable", func(t *testing.T) {
		k := &cir.Kernel{
			Name:       "T",
			TaskLoopID: "T0",
			Params:     []cir.Param{{Name: "P", Elem: cir.Int, IsArray: true, Length: 1024}},
			Body: cir.Block{
				loop("T0", "t", 0, 16, loop("L1", "j", 0, 64,
					&cir.Assign{LHS: vref("x"), RHS: idx("P", idx("B", vref("j")))},
				)),
			},
		}
		p := Analyze(k).Param("P")
		if p == nil || p.Stageable || p.Worst != Gather {
			t.Fatalf("profile = %+v, want unstageable gather", p)
		}
		if p.WorstSite == nil || p.WorstSite.Array != "P" {
			t.Fatalf("WorstSite = %+v, want the P gather site", p.WorstSite)
		}
	})

	t.Run("untouched buffer stays stageable whole", func(t *testing.T) {
		k := &cir.Kernel{
			Name:   "T",
			Params: []cir.Param{{Name: "P", Elem: cir.Int, IsArray: true, Length: 256}},
			Body:   cir.Block{loop("L0", "i", 0, 4, &cir.Assign{LHS: vref("x"), RHS: intLit(0)})},
		}
		p := Analyze(k).Param("P")
		if p == nil || !p.Stageable || p.StageElems != 256 || p.Worst != Invariant {
			t.Fatalf("profile = %+v, want whole-buffer invariant staging", p)
		}
	})

	t.Run("while bodies charge the nominal trip", func(t *testing.T) {
		k := &cir.Kernel{
			Name:       "T",
			TaskLoopID: "T0",
			Params:     []cir.Param{{Name: "P", Elem: cir.Int, IsArray: true, Length: 1024}},
			Body: cir.Block{
				loop("T0", "t", 0, 16,
					&cir.While{Cond: vref("go"), Body: cir.Block{
						&cir.Assign{LHS: vref("x"), RHS: idx("P", idx("B", vref("x")))},
					}},
				),
			},
		}
		p := Analyze(k).Param("P")
		if p == nil || p.Accesses != 16 {
			t.Fatalf("accesses/task = %+v, want the nominal 16 per while level", p)
		}
	})
}
