package access

import (
	"s2fa/internal/cir"
	"s2fa/internal/depend"
)

// walker visits the kernel once, recording every *cir.Index occurrence
// as a Site with its per-loop claims. A prepass collects array shapes,
// the set of mutated scalars, per-loop assigned sets, and the
// data-dependence taint.
type walker struct {
	k      *cir.Kernel
	taskID string

	arrKind map[string]ArrayKind
	arrLen  map[string]int64
	// varying marks scalars whose value can change after their one-time
	// top-level initialization: any Assign target, any Decl nested in
	// control flow, and every loop variable. A scalar NOT in varying is
	// a run-wide constant and may appear in affine subscripts.
	varying map[string]bool
	// assignedIn maps loop ID -> names (re)defined in its subtree.
	assignedIn map[string]map[string]bool
	// tainted marks scalars that transitively depend on loaded data.
	tainted map[string]bool

	sites []*Site
	chain []*cir.Loop
	nWhil int
}

func newWalker(k *cir.Kernel) *walker {
	w := &walker{
		k:          k,
		taskID:     k.TaskLoopID,
		arrKind:    map[string]ArrayKind{},
		arrLen:     map[string]int64{},
		varying:    map[string]bool{},
		assignedIn: map[string]map[string]bool{},
	}
	for i := range k.Params {
		if k.Params[i].IsArray {
			w.arrKind[k.Params[i].Name] = ArrParam
			w.arrLen[k.Params[i].Name] = int64(k.Params[i].Length)
		}
	}
	for i := range k.Globals {
		w.arrKind[k.Globals[i].Name] = ArrGlobal
		w.arrLen[k.Globals[i].Name] = int64(len(k.Globals[i].Data))
	}
	w.prepass(k.Body, nil, false)
	w.tainted = taintScalars(k)
	return w
}

// prepass walks once before site recording: array declarations, the
// varying set, and per-loop assigned sets. encl carries the IDs of the
// enclosing counted loops; inCtl is true under any loop, while, or if.
func (w *walker) prepass(b cir.Block, encl []string, inCtl bool) {
	markAssigned := func(name string) {
		for _, id := range encl {
			m := w.assignedIn[id]
			if m == nil {
				m = map[string]bool{}
				w.assignedIn[id] = m
			}
			m[name] = true
		}
	}
	for _, s := range b {
		switch s := s.(type) {
		case *cir.ArrDecl:
			w.arrKind[s.Name] = ArrLocal
			w.arrLen[s.Name] = int64(s.Len)
		case *cir.Decl:
			if inCtl {
				w.varying[s.Name] = true
				markAssigned(s.Name)
			}
		case *cir.Assign:
			if v, ok := s.LHS.(*cir.VarRef); ok {
				w.varying[v.Name] = true
				markAssigned(v.Name)
			}
		case *cir.If:
			w.prepass(s.Then, encl, true)
			w.prepass(s.Else, encl, true)
		case *cir.While:
			w.prepass(s.Body, encl, true)
		case *cir.Loop:
			w.varying[s.Var] = true
			markAssigned(s.Var)
			w.prepass(s.Body, append(encl, s.ID), true)
		}
	}
}

// block records sites in statement order.
func (w *walker) block(b cir.Block) {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Decl:
			if s.Init != nil {
				w.expr(s.Init)
			}
		case *cir.Assign:
			w.expr(s.RHS)
			if ix, ok := s.LHS.(*cir.Index); ok {
				w.expr(ix.Idx)
				w.site(ix, true)
			}
		case *cir.If:
			w.expr(s.Cond)
			w.block(s.Then)
			w.block(s.Else)
		case *cir.While:
			w.expr(s.Cond)
			w.nWhil++
			w.block(s.Body)
			w.nWhil--
		case *cir.Loop:
			w.expr(s.Lo)
			w.expr(s.Hi)
			w.chain = append(w.chain, s)
			w.block(s.Body)
			w.chain = w.chain[:len(w.chain)-1]
		case *cir.Return:
			if s.Val != nil {
				w.expr(s.Val)
			}
		}
	}
}

func (w *walker) expr(e cir.Expr) {
	switch e := e.(type) {
	case *cir.Index:
		w.expr(e.Idx)
		w.site(e, false)
	case *cir.Unary:
		w.expr(e.X)
	case *cir.Binary:
		w.expr(e.L)
		w.expr(e.R)
	case *cir.Cast:
		w.expr(e.X)
	case *cir.Cond:
		w.expr(e.C)
		w.expr(e.T)
		w.expr(e.F)
	case *cir.Call:
		for _, a := range e.Args {
			w.expr(a)
		}
	}
}

func (w *walker) isInd(name string) bool {
	for _, l := range w.chain {
		if l.Var == name {
			return true
		}
	}
	return false
}

// site records one access with claims for every enclosing loop.
func (w *walker) site(ix *cir.Index, write bool) {
	s := &Site{
		Array:      ix.Arr,
		Kind:       w.arrKind[ix.Arr],
		Write:      write,
		Pos:        ix.Pos,
		Idx:        ix.Idx,
		WhileDepth: w.nWhil,
		Claims:     map[string]Claim{},
	}
	s.chainLs = append(s.chainLs, w.chain...)
	for _, l := range w.chain {
		s.Chain = append(s.Chain, l.ID)
	}
	if n := len(w.chain); n > 0 {
		s.InnerLoop = w.chain[n-1].ID
	}
	s.DataDep = dataDependent(ix.Idx, w.tainted)
	if !s.DataDep {
		s.form = depend.DecomposeAffine(ix.Idx, w.isInd)
		s.AffineOK = s.form.OK
	}
	for _, l := range w.chain {
		s.Claims[l.ID] = w.claim(l, s)
	}
	s.perTask = w.perTaskCount()
	w.sites = append(w.sites, s)
}

// claim derives the per-loop verdict for the current site. Demotion is
// always legal; an affine class must satisfy the one-sided contract.
func (w *walker) claim(l *cir.Loop, s *Site) Claim {
	if s.DataDep {
		return Claim{Class: Gather}
	}
	if !s.AffineOK {
		return Claim{Class: Unknown}
	}
	// A mutable scalar in the subscript breaks the fixed-residual
	// guarantee: its value is not pinned by the other induction
	// variables. Run-wide constants fold into the residual and are fine.
	//determinism:allow order-independent: existence check over coefficients
	for name, c := range s.form.Syms {
		if c != 0 && w.varying[name] {
			return Claim{Class: Unknown}
		}
	}
	// If the body mutates the loop's own variable the iteration-to-
	// iteration progression is no longer Step, so stride means nothing.
	if w.assignedIn[l.ID][l.Var] {
		return Claim{Class: Unknown}
	}
	coeff := s.form.Ind[l.Var]
	stride := coeff * l.Step
	switch {
	case stride == 0:
		return Claim{Class: Invariant}
	case stride == 1:
		return Claim{Class: Burst, Coeff: coeff, Stride: stride}
	}
	return Claim{Class: Strided, Coeff: coeff, Stride: stride}
}

// perTaskCount statically estimates how often the current program
// point executes per task: the trip product of the enclosing counted
// loops below the task loop, times a nominal 16 per enclosing while
// (matching the scheduler's unknown-trip charge).
func (w *walker) perTaskCount() int64 {
	const nominal = 16
	const capAt = int64(1) << 40
	n := int64(1)
	for _, l := range w.chain {
		if l.ID == w.taskID {
			continue
		}
		t := l.TripCount()
		if t <= 0 {
			t = nominal
		}
		if n > capAt/t {
			return capAt
		}
		n *= t
	}
	for i := 0; i < w.nWhil; i++ {
		if n > capAt/nominal {
			return capAt
		}
		n *= nominal
	}
	return n
}
