package access

import (
	"fmt"
	"sort"
	"strings"
)

// Table renders the per-loop access classification as a deterministic
// text table (published as a CI artifact and appended by `s2fa
// -explain`): one row per (loop, array) with class, stride, footprint,
// and reuse verdict.
func (a *Analysis) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s: memory access patterns\n", a.Kernel.Name)
	for _, id := range a.LoopOrder {
		rows := a.Loops[id]
		if len(rows) == 0 {
			continue
		}
		tag := ""
		if id == a.Kernel.TaskLoopID {
			tag = " (task)"
		}
		if c := a.PortCap(id); c > 0 {
			tag += fmt.Sprintf(" [port-cap %d lanes]", c)
		}
		fmt.Fprintf(&b, "  %s%s\n", id, tag)
		for _, la := range rows {
			stride := "-"
			if la.MaxStride > 0 {
				stride = fmt.Sprintf("%d", la.MaxStride)
			}
			fp := "whole array"
			if la.FootprintKnown {
				fp = fmt.Sprintf("%d elems", la.Footprint)
			}
			fmt.Fprintf(&b, "    %-10s %-6s class=%-9s stride=%-5s footprint=%-12s reuse=%s\n",
				la.Array, la.Kind, la.Worst, stride, fp, la.Reuse)
		}
	}
	return b.String()
}

// Guidance answers "why is this kernel memory-bound?" in terms of the
// classified access sites: gather-only interface buffers (per-element
// DDR latency, no burst engine), and BRAM port caps that bound useful
// lane replication.
func (a *Analysis) Guidance() []string {
	var out []string
	for i := range a.Params {
		p := &a.Params[i]
		if p.WorstSite == nil {
			continue
		}
		at := ""
		if p.WorstSite.Pos.Valid() {
			at = fmt.Sprintf(" (kdsl %s)", p.WorstSite.Pos)
		}
		if !p.Stageable {
			out = append(out, fmt.Sprintf(
				"buffer %s: every subscript is data-dependent%s — no burst engine possible; "+
					"each of ~%d accesses/task pays full DDR latency. Restructure the layout "+
					"(e.g. pre-sorted/CSR staging) to recover streaming.",
				p.Name, at, p.Accesses))
		} else if p.Worst <= Gather {
			out = append(out, fmt.Sprintf(
				"buffer %s: mixes burst-stageable and gather accesses%s — the staged copy "+
					"streams, but indirect subscripts still serialize on it.",
				p.Name, at))
		}
	}
	var capped []string
	//determinism:allow collect-then-sort: IDs are ordered before rendering
	for id := range a.caps {
		capped = append(capped, id)
	}
	sort.Strings(capped)
	for _, id := range capped {
		out = append(out, fmt.Sprintf(
			"loop %s: on-chip bank ports cap useful parallel lanes at %d — "+
				"higher factors replicate compute the BRAM ports cannot feed.",
			id, a.caps[id]))
	}
	return out
}
