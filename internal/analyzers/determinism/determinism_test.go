package determinism

import (
	"os"
	"path/filepath"
	"testing"
)

// write lays out a synthetic one-package module under a temp root and
// returns the root.
func write(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func rules(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func TestFlagsTimeNow(t *testing.T) {
	root := write(t, map[string]string{"p/a.go": `package p

import "time"

func f() int64 { return time.Now().UnixNano() }
`})
	fs, err := Check(root, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "time-now" {
		t.Fatalf("want one time-now finding, got %v", fs)
	}
}

func TestTimeNowAllowAnnotation(t *testing.T) {
	root := write(t, map[string]string{"p/a.go": `package p

import "time"

func f() int64 {
	//determinism:allow telemetry-only timestamp, never feeds back into results
	return time.Now().UnixNano()
}

func g() int64 {
	return time.Now().UnixNano() //determinism:allow same-line form
}
`})
	fs, err := Check(root, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("annotated time.Now must be suppressed, got %v", fs)
	}
}

func TestFlagsGlobalRandButNotSeededCtors(t *testing.T) {
	root := write(t, map[string]string{"p/a.go": `package p

import "math/rand"

func bad() int { return rand.Intn(7) + int(rand.Int63()) }

func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
`})
	fs, err := Check(root, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("want the two global-rand findings only, got %v", fs)
	}
	for _, f := range fs {
		if f.Rule != "global-rand" {
			t.Errorf("unexpected rule %s", f.Rule)
		}
	}
}

func TestRandImportAlias(t *testing.T) {
	root := write(t, map[string]string{"p/a.go": `package p

import mrand "math/rand"

func f() int { return mrand.Intn(3) }
`})
	fs, err := Check(root, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "global-rand" {
		t.Fatalf("aliased math/rand must still be resolved, got %v", fs)
	}
}

func TestFlagsMapRangeLocalForms(t *testing.T) {
	root := write(t, map[string]string{"p/a.go": `package p

func f(param map[string]int) int {
	n := 0
	for range param { // param: map-typed parameter
		n++
	}
	made := make(map[int]bool)
	for range made { // made: make(map...)
		n++
	}
	lit := map[string]bool{"x": true}
	for range lit { // lit: map literal
		n++
	}
	var decl map[int]int
	for range decl { // decl: var with explicit map type
		n++
	}
	s := []int{1, 2}
	for range s { // slice: must NOT be flagged
		n++
	}
	return n
}
`})
	fs, err := Check(root, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fs); got != 4 {
		t.Fatalf("want 4 map-range findings (param, make, literal, var), got %d: %v", got, fs)
	}
	for _, f := range fs {
		if f.Rule != "map-range" {
			t.Errorf("unexpected rule %s", f.Rule)
		}
	}
}

func TestMapRangeThroughNamedTypesAndFields(t *testing.T) {
	// The ranged expression resolves across packages: q declares the
	// named map type and a struct carrying it; p ranges over the field.
	root := write(t, map[string]string{
		"q/types.go": `package q

type Point map[string]int

type Result struct {
	Point     Point
	Objective float64
}
`,
		"p/a.go": `package p

import "example/q"

func f(r q.Result) int {
	n := 0
	for range r.Point { // field of cross-package named map type
		n++
	}
	return n
}
`,
	})
	fs, err := Check(root, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "map-range" {
		t.Fatalf("field of named map type must be flagged, got %v", fs)
	}
}

func TestMapRangeFieldNameCollisionStaysSilent(t *testing.T) {
	// Two structs share a field name but only one is a map: the
	// one-sided contract demands silence rather than a false positive.
	root := write(t, map[string]string{"p/a.go": `package p

type A struct{ Data map[string]int }

type B struct{ Data []int }

func f(a A) int {
	n := 0
	for range a.Data {
		n++
	}
	return n
}
`})
	fs, err := Check(root, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("ambiguous field name must not be flagged, got %v", fs)
	}
}

func TestMapRangeFromFunctionResult(t *testing.T) {
	root := write(t, map[string]string{"p/a.go": `package p

func build() map[string]int { return map[string]int{} }

func f() int {
	n := 0
	m := build()
	for range m { // local assigned from a map-returning function
		n++
	}
	for range build() { // ranging the call directly
		n++
	}
	return n
}
`})
	fs, err := Check(root, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("want 2 map-range findings, got %v", fs)
	}
}

func TestMapRangeAllowAnnotation(t *testing.T) {
	root := write(t, map[string]string{"p/a.go": `package p

func f(m map[string]int) int {
	n := 0
	//determinism:allow order-independent: the body only counts entries
	for range m {
		n++
	}
	return n
}
`})
	fs, err := Check(root, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("annotated map range must be suppressed, got %v", fs)
	}
}

// TestHotPathsClean is the live gate: the real DSE/HLS/tuner packages
// must have no unannotated findings, exactly what CI enforces via
// cmd/determinism.
func TestHotPathsClean(t *testing.T) {
	fs, err := Check("../../..", []string{"internal/dse", "internal/hls", "internal/tuner"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("hot-path violation: %s", f)
	}
}
