// Package determinism is a stdlib-only source linter guarding the
// reproducibility contract of the search and estimation hot paths: every
// DSE outcome, HLS report, and tuner decision must be a pure function of
// (kernel, configuration, seed). Three construct classes break that
// contract silently, so they are banned in the hot-path packages:
//
//   - time.Now — wall-clock reads leak scheduling noise into results;
//   - global math/rand — the package-level generator is shared, unseeded
//     state (rand.New(rand.NewSource(seed)) is the sanctioned form);
//   - ranging over a map — Go randomizes iteration order per run, so any
//     order-sensitive loop body diverges between otherwise equal runs.
//
// A site that is provably harmless (order-independent map updates,
// telemetry that never feeds back into results) is suppressed with a
// line comment containing "determinism:allow <reason>" on the flagged
// line or the line above it — the reason is part of the code review
// surface, exactly like a staticcheck //lint:ignore.
//
// The analysis is deliberately one-sided, like the dependence analysis
// it rides alongside: it only reports a map-range when the ranged
// expression's map-ness is provable from declared types (local
// declarations, struct fields, named types, single-result functions,
// across every package in the module), so it may miss an obfuscated
// site but never cries wolf on a slice.
package determinism

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one determinism violation.
type Finding struct {
	Pos    token.Position
	Rule   string // "time-now" | "global-rand" | "map-range"
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Detail)
}

// tables holds the module-wide declared-type index the map inference
// resolves through. Name collisions are handled conservatively: a name
// counts as a map only when every declaration of that name is one.
type tables struct {
	named   map[string][]ast.Expr // type name -> underlying type
	fields  map[string][]ast.Expr // struct field name -> field type
	results map[string][]ast.Expr // function/method name -> sole result type
}

// Check parses every Go package under root to build the type tables,
// then lints the target directories (given relative to root). Test files
// contribute types but are not themselves linted — the ban protects
// shipped hot paths.
func Check(root string, targets []string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs := map[string][]*ast.File{} // dir -> parsed non-test files
	tb := &tables{
		named:   map[string][]ast.Expr{},
		fields:  map[string][]ast.Expr{},
		results: map[string][]ast.Expr{},
	}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parsing %s: %w", path, perr)
		}
		dir := filepath.Dir(path)
		pkgs[dir] = append(pkgs[dir], f)
		tb.index(f)
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []Finding
	for _, target := range targets {
		dir := filepath.Join(root, target)
		files := pkgs[dir]
		if len(files) == 0 {
			return nil, fmt.Errorf("target %s: no Go files parsed", target)
		}
		for _, f := range files {
			out = append(out, lintFile(fset, f, tb)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// index records the file's type declarations into the tables.
func (t *tables) index(f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				t.named[ts.Name.Name] = append(t.named[ts.Name.Name], ts.Type)
				if st, ok := ts.Type.(*ast.StructType); ok {
					for _, fld := range st.Fields.List {
						for _, n := range fld.Names {
							t.fields[n.Name] = append(t.fields[n.Name], fld.Type)
						}
					}
				}
			}
		case *ast.FuncDecl:
			if d.Type.Results == nil || len(d.Type.Results.List) != 1 || len(d.Type.Results.List[0].Names) > 1 {
				continue
			}
			t.results[d.Name.Name] = append(t.results[d.Name.Name], d.Type.Results.List[0].Type)
		}
	}
}

const maxResolveDepth = 8

// isMapType reports whether the type expression provably denotes a map.
func (t *tables) isMapType(e ast.Expr, depth int) bool {
	if depth > maxResolveDepth {
		return false
	}
	switch x := e.(type) {
	case *ast.MapType:
		return true
	case *ast.ParenExpr:
		return t.isMapType(x.X, depth+1)
	case *ast.Ident:
		return t.allNamedAreMaps(x.Name, depth)
	case *ast.SelectorExpr:
		// pkg.Type: resolve by the bare type name across the module.
		return t.allNamedAreMaps(x.Sel.Name, depth)
	}
	return false
}

func (t *tables) allNamedAreMaps(name string, depth int) bool {
	defs := t.named[name]
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if !t.isMapType(d, depth+1) {
			return false
		}
	}
	return true
}

// allOf reports whether every entry under name in table resolves to a
// map type (and at least one exists).
func (t *tables) allOf(table map[string][]ast.Expr, name string) bool {
	defs := table[name]
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if !t.isMapType(d, 0) {
			return false
		}
	}
	return true
}

// lintFile checks one file of a target package.
func lintFile(fset *token.FileSet, f *ast.File, tb *tables) []Finding {
	timeName, randName := importNames(f)
	allowed := allowLines(fset, f)
	var out []Finding
	report := func(n ast.Node, rule, detail string) {
		pos := fset.Position(n.Pos())
		if allowed[pos.Line] || allowed[pos.Line-1] {
			return
		}
		out = append(out, Finding{Pos: pos, Rule: rule, Detail: detail})
	}

	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				switch {
				case timeName != "" && pkg.Name == timeName && sel.Sel.Name == "Now":
					report(x, "time-now", "wall-clock read in a hot path; thread the virtual clock or trace timestamps through telemetry instead")
				case randName != "" && pkg.Name == randName && !seededRandCtor(sel.Sel.Name):
					report(x, "global-rand", fmt.Sprintf("rand.%s uses the shared global generator; derive from rand.New(rand.NewSource(seed))", sel.Sel.Name))
				}
			case *ast.RangeStmt:
				if rangedIsMap(x.X, fd, tb) {
					report(x, "map-range", "iteration order over a map varies per run; iterate a sorted key slice or annotate why order cannot matter")
				}
			}
			return true
		})
	}
	return out
}

// seededRandCtor lists the math/rand selectors that construct seeded
// generators rather than touching the global one.
func seededRandCtor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf":
		return true
	}
	return false
}

// importNames resolves the local names binding the time and math/rand
// packages in this file ("" when not imported).
func importNames(f *ast.File) (timeName, randName string) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		}
		switch path {
		case "time":
			if local == "" {
				local = "time"
			}
			timeName = local
		case "math/rand", "math/rand/v2":
			if local == "" {
				local = "rand"
			}
			randName = local
		}
	}
	return
}

// allowLines collects the line numbers carrying a determinism:allow
// annotation.
func allowLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "determinism:allow") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// rangedIsMap reports whether the ranged expression provably has map
// type, resolving local declarations inside fd and falling back to the
// module tables for fields, named types, and function results.
func rangedIsMap(e ast.Expr, fd *ast.FuncDecl, tb *tables) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return rangedIsMap(x.X, fd, tb)
	case *ast.CompositeLit:
		return x.Type != nil && tb.isMapType(x.Type, 0)
	case *ast.Ident:
		return localIsMap(x.Name, fd, tb)
	case *ast.SelectorExpr:
		// Obj.Field: flag only when every field of that name in the
		// module is map-typed. A package-qualified variable also lands
		// here and resolves through the same (empty) field table — the
		// one-sided default is silence.
		return tb.allOf(tb.fields, x.Sel.Name)
	case *ast.CallExpr:
		switch fn := x.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "make" && len(x.Args) > 0 {
				return tb.isMapType(x.Args[0], 0)
			}
			return tb.allOf(tb.results, fn.Name)
		case *ast.SelectorExpr:
			return tb.allOf(tb.results, fn.Sel.Name)
		}
	}
	return false
}

// localIsMap scans fd for evidence that the named local (or parameter,
// or receiver) is map-typed.
func localIsMap(name string, fd *ast.FuncDecl, tb *tables) bool {
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params, fd.Type.Results} {
		if fl == nil {
			continue
		}
		for _, fld := range fl.List {
			for _, n := range fld.Names {
				if n.Name == name && tb.isMapType(fld.Type, 0) {
					return true
				}
			}
		}
	}
	isMap := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != name || i >= len(x.Rhs) {
					continue
				}
				if mapValued(x.Rhs[i], tb) {
					isMap = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, n := range vs.Names {
					if n.Name != name {
						continue
					}
					if vs.Type != nil && tb.isMapType(vs.Type, 0) {
						isMap = true
					}
					if i < len(vs.Values) && mapValued(vs.Values[i], tb) {
						isMap = true
					}
				}
			}
		}
		return true
	})
	return isMap
}

// mapValued reports whether the expression provably evaluates to a map.
func mapValued(e ast.Expr, tb *tables) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return x.Type != nil && tb.isMapType(x.Type, 0)
	case *ast.CallExpr:
		switch fn := x.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "make" && len(x.Args) > 0 {
				return tb.isMapType(x.Args[0], 0)
			}
			return tb.allOf(tb.results, fn.Name)
		case *ast.SelectorExpr:
			return tb.allOf(tb.results, fn.Sel.Name)
		}
	}
	return false
}
