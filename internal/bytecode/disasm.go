package bytecode

import (
	"fmt"
	"strings"
)

// Disassemble renders a method as a javap-style listing, useful in tests
// and the CLI's -dump-bytecode mode.
func Disassemble(m *Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, "method %s(", m.Name)
	for i, p := range m.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	fmt.Fprintf(&b, "): %s\n", m.Ret)
	for i, t := range m.LocalTypes {
		name := fmt.Sprintf("slot%d", i)
		if i < len(m.LocalNames) && m.LocalNames[i] != "" {
			name = m.LocalNames[i]
		}
		fmt.Fprintf(&b, "  local %2d  %-12s %s\n", i, name, t)
	}
	for i, in := range m.Code {
		if p := m.PosAt(i); p.Valid() {
			// Source-mapped listing: javap's LineNumberTable folded inline,
			// extended with columns so §3.3 diagnostics can point at the
			// offending kdsl expression.
			fmt.Fprintf(&b, "  %4d: %-24s // %s\n", i, in.String(), p)
		} else {
			fmt.Fprintf(&b, "  %4d: %s\n", i, in)
		}
	}
	return b.String()
}

// DisassembleClass renders the whole class.
func DisassembleClass(c *Class) string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s (accelerator id %q, pattern %s)\n", c.Name, c.ID, c.Pattern())
	for _, s := range c.Statics {
		fmt.Fprintf(&b, "static %s: %s [%d elems]\n", s.Name, s.Type, len(s.Data))
	}
	b.WriteString(Disassemble(c.Call))
	if c.Reduce != nil {
		b.WriteString(Disassemble(c.Reduce))
	}
	return b.String()
}
