// External test package so the test can compile the real workloads
// (apps -> kdsl -> bytecode would cycle otherwise).
package bytecode_test

import (
	"fmt"
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/bytecode"
)

// TestDisassembleAllApps drives the disassembler over every built-in
// workload's compiled class: the listing must be complete (a line per
// instruction, every local named), deterministic, and free of raw
// "op(N)" markers — i.e. every opcode the DSL compiler can emit has a
// mnemonic, so -dump-bytecode output is always readable.
func TestDisassembleAllApps(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			cls, err := a.Class()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			out := bytecode.DisassembleClass(cls)
			if out != bytecode.DisassembleClass(cls) {
				t.Fatal("disassembly is not deterministic")
			}
			if !strings.HasPrefix(out, fmt.Sprintf("class %s ", cls.Name)) {
				t.Errorf("missing class header:\n%s", firstLines(out, 3))
			}
			if strings.Contains(out, "op(") {
				t.Errorf("listing contains raw opcode markers:\n%s", grepLines(out, "op("))
			}

			methods := []*bytecode.Method{cls.Call}
			if cls.Reduce != nil {
				methods = append(methods, cls.Reduce)
			}
			for _, m := range methods {
				if !strings.Contains(out, "method "+m.Name+"(") {
					t.Errorf("method %s missing from class listing", m.Name)
				}
				// One listing line per instruction, at the right index.
				for i := range m.Code {
					marker := fmt.Sprintf("%4d: ", i)
					if !strings.Contains(out, marker) {
						t.Errorf("method %s: instruction %d missing from listing", m.Name, i)
						break
					}
				}
				if got := strings.Count(bytecode.Disassemble(m), "\n"); got != 1+len(m.LocalTypes)+len(m.Code) {
					t.Errorf("method %s: %d listing lines, want header + %d locals + %d instructions",
						m.Name, got, len(m.LocalTypes), len(m.Code))
				}
				// Source positions render inline (javap's LineNumberTable
				// folded into the listing, with columns), and the kdsl
				// compiler must have attached at least one real position
				// per method so the check is not vacuous.
				listing := bytecode.Disassemble(m)
				posed := 0
				for i := range m.Code {
					p := m.PosAt(i)
					if !p.Valid() {
						continue
					}
					posed++
					if !strings.Contains(listing, "// "+p.String()) {
						t.Errorf("method %s: instruction %d position %s missing from listing", m.Name, i, p)
						break
					}
				}
				if posed == 0 {
					t.Errorf("method %s carries no source positions", m.Name)
				}
				// Locals render with their source names where known.
				for i, name := range m.LocalNames {
					if name == "" || i >= len(m.LocalTypes) {
						continue
					}
					if !strings.Contains(out, " "+name+" ") {
						t.Errorf("method %s: named local %q missing from listing", m.Name, name)
					}
				}
			}
			for _, s := range cls.Statics {
				if !strings.Contains(out, "static "+s.Name+":") {
					t.Errorf("static %s missing from listing", s.Name)
				}
			}
		})
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
