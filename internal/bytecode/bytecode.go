// Package bytecode defines the JVM-style typed stack bytecode that S2FA
// consumes. In the paper, the input to the bytecode-to-C compiler is Java
// bytecode produced by scalac from the user's Spark kernel; here the
// internal/kdsl front-end compiles a Scala-subset kernel language to this
// instruction set, which preserves the properties that matter for the
// decompilation problem: an operand stack, numbered locals, object-typed
// tuples accessed through field getters, arrays with bounds semantics,
// constant-size `new` allocations, and reducible branch-based control
// flow.
package bytecode

import (
	"fmt"

	"s2fa/internal/cir"
)

// TypeDesc describes a value type in method descriptors and field
// signatures: a primitive, an array of a primitive, or a tuple of
// primitives/arrays (the composite types S2FA supports, paper §3.3).
type TypeDesc struct {
	Kind  cir.Kind
	Array bool
	// Tuple lists field types when this is a TupleN; nil otherwise.
	// Tuples do not nest (template restriction).
	Tuple []TypeDesc
}

// IsTuple reports whether the descriptor is a tuple type.
func (t TypeDesc) IsTuple() bool { return len(t.Tuple) > 0 }

// Prim builds a primitive descriptor.
func Prim(k cir.Kind) TypeDesc { return TypeDesc{Kind: k} }

// ArrayOf builds an array-of-primitive descriptor.
func ArrayOf(k cir.Kind) TypeDesc { return TypeDesc{Kind: k, Array: true} }

// TupleOf builds a tuple descriptor.
func TupleOf(fields ...TypeDesc) TypeDesc { return TypeDesc{Tuple: fields} }

func (t TypeDesc) String() string {
	if t.IsTuple() {
		s := "("
		for i, f := range t.Tuple {
			if i > 0 {
				s += ", "
			}
			s += f.String()
		}
		return s + ")"
	}
	if t.Array {
		return fmt.Sprintf("Array[%s]", t.Kind)
	}
	return t.Kind.String()
}

// Equal reports structural descriptor equality.
func (t TypeDesc) Equal(o TypeDesc) bool {
	if t.Kind != o.Kind || t.Array != o.Array || len(t.Tuple) != len(o.Tuple) {
		return false
	}
	for i := range t.Tuple {
		if !t.Tuple[i].Equal(o.Tuple[i]) {
			return false
		}
	}
	return true
}

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Comparable to the JVM subset APARAPI handles, with fused
// compare-and-branch forms as in real class files.
const (
	// OpConst pushes Instr.Val (kind Instr.Kind).
	OpConst Op = iota
	// OpLoad pushes local slot Instr.A.
	OpLoad
	// OpStore pops into local slot Instr.A.
	OpStore
	// OpALoad pops index, array ref; pushes element (kind Instr.Kind).
	OpALoad
	// OpAStore pops value, index, array ref; stores element.
	OpAStore
	// OpArrayLen pops array ref, pushes its length.
	OpArrayLen
	// OpNewArray pops length; pushes new array of Instr.Kind. The
	// verifier enforces that the length is a compile-time constant
	// (paper §3.3: no dynamic allocation on the FPGA).
	OpNewArray
	// OpGetField pops tuple ref; pushes field Instr.A (the Tuple2._1/._2
	// accessors of the motivating example).
	OpGetField
	// OpNewTuple pops Instr.A values; pushes a tuple (the Tuple2
	// constructor call of Code 2 line 10).
	OpNewTuple
	// OpGetStatic pushes the class constant field named Instr.Sym.
	OpGetStatic
	// OpBin pops two operands, applies Instr.Bin (kind Instr.Kind),
	// pushes result. Comparison operators push Bool.
	OpBin
	// OpUn pops one operand, applies Instr.Un, pushes result.
	OpUn
	// OpCast pops a value, converts to Instr.Kind, pushes.
	OpCast
	// OpIntrin pops Instr.A args, applies math intrinsic Instr.Sym,
	// pushes result of kind Instr.Kind.
	OpIntrin
	// OpGoto jumps to instruction index Instr.Target.
	OpGoto
	// OpBrFalse pops a Bool; jumps to Instr.Target when zero.
	OpBrFalse
	// OpBrTrue pops a Bool; jumps to Instr.Target when non-zero.
	OpBrTrue
	// OpReturn pops the return value (if the method is non-void) and
	// exits.
	OpReturn
)

func (o Op) String() string {
	names := [...]string{
		"const", "load", "store", "aload", "astore", "arraylen", "newarray",
		"getfield", "newtuple", "getstatic", "bin", "un", "cast", "intrin",
		"goto", "brfalse", "brtrue", "return",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one bytecode instruction.
type Instr struct {
	Op     Op
	Kind   cir.Kind // operand kind for typed ops
	A      int      // slot / field index / arg count
	Target int      // branch target (instruction index)
	Val    cir.Value
	Bin    cir.BinOp
	Un     cir.UnOp
	Sym    string // intrinsic or static field name
}

func (in Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("const.%s %s", in.Kind, in.Val)
	case OpLoad, OpStore:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case OpALoad, OpAStore, OpNewArray, OpCast:
		return fmt.Sprintf("%s.%s", in.Op, in.Kind)
	case OpGetField:
		return fmt.Sprintf("getfield _%d", in.A+1)
	case OpNewTuple:
		return fmt.Sprintf("newtuple %d", in.A)
	case OpGetStatic:
		return fmt.Sprintf("getstatic %s", in.Sym)
	case OpBin:
		return fmt.Sprintf("bin.%s %s", in.Kind, in.Bin)
	case OpUn:
		return fmt.Sprintf("un.%s %s", in.Kind, in.Un)
	case OpIntrin:
		return fmt.Sprintf("intrin %s/%d", in.Sym, in.A)
	case OpGoto, OpBrFalse, OpBrTrue:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	default:
		return in.Op.String()
	}
}

// Pos is a source position in the kernel source the method was compiled
// from, mirroring the JVM LineNumberTable (extended with columns). The
// zero Pos means "no source information" — hand-assembled methods and
// synthesized instructions carry it.
type Pos struct {
	Line int
	Col  int
}

// Valid reports whether the position carries real source information.
func (p Pos) Valid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.Valid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Method is one compiled method body.
type Method struct {
	Name   string
	Params []TypeDesc
	Ret    TypeDesc
	// LocalTypes gives the declared type of every local slot (params
	// occupy the first slots), mirroring the LocalVariableTable.
	LocalTypes []TypeDesc
	// LocalNames preserves source names for decompilation; compiler
	// temporaries get synthesized names.
	LocalNames []string
	Code       []Instr
	// Pos maps each instruction back to the kernel source statement or
	// expression it was emitted for (parallel to Code; empty for
	// hand-assembled methods). This is the source map every diagnostic
	// layer (absint, lint, the -explain CLI) resolves offsets through.
	Pos []Pos
}

// PosAt returns the source position of instruction i, or the zero Pos
// when the method carries no source map (or i is out of range).
func (m *Method) PosAt(i int) Pos {
	if i < 0 || i >= len(m.Pos) {
		return Pos{}
	}
	return m.Pos[i]
}

// StaticField is a class-level constant (e.g. an AES S-box), compiled
// from `final val` fields of the kernel class.
type StaticField struct {
	Name string
	Type TypeDesc
	// Data holds the constant elements (length 1 for scalars).
	Data []cir.Value
}

// Class is the compiled kernel class: the unit Blaze registers under an
// accelerator ID.
type Class struct {
	Name string
	// ID is the accelerator identifier (`val id: String` in the Blaze
	// programming model, Code 1 line 6).
	ID      string
	Statics []StaticField
	// Call is the RDD transformation lambda.
	Call *Method
	// Reduce, when present, is the combiner method making this a
	// map+reduce kernel; nil for pure map.
	Reduce *Method
	// InSizes gives per-task element counts for array-typed inputs (the
	// data layout configuration of the S2FA class template); scalar
	// fields use 1.
	InSizes []int
}

// Pattern returns the RDD parallel pattern of the kernel.
func (c *Class) Pattern() cir.Pattern {
	if c.Reduce != nil {
		return cir.PatternReduce
	}
	return cir.PatternMap
}

// Static returns the named static field, or nil.
func (c *Class) Static(name string) *StaticField {
	for i := range c.Statics {
		if c.Statics[i].Name == name {
			return &c.Statics[i]
		}
	}
	return nil
}
