package bytecode

import (
	"strings"
	"testing"

	"s2fa/internal/cir"
)

// method builds a minimal verifiable method around the given code.
func method(code []Instr, locals ...TypeDesc) *Method {
	return &Method{
		Name:       "m",
		Params:     nil,
		Ret:        Prim(cir.Int),
		LocalTypes: locals,
		LocalNames: make([]string, len(locals)),
		Code:       code,
	}
}

func c(v int64) Instr {
	return Instr{Op: OpConst, Kind: cir.Int, Val: cir.IntVal(cir.Int, v)}
}

func TestVerifyAcceptsStraightLine(t *testing.T) {
	m := method([]Instr{
		c(1), c(2),
		{Op: OpBin, Bin: cir.Add, Kind: cir.Int},
		{Op: OpReturn},
	})
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejects(t *testing.T) {
	cases := map[string]struct {
		m    *Method
		want string
	}{
		"stack underflow": {
			method([]Instr{{Op: OpBin, Bin: cir.Add, Kind: cir.Int}, c(0), {Op: OpReturn}}),
			"underflow",
		},
		"branch target out of range": {
			method([]Instr{c(1), {Op: OpBrTrue, Target: 99}, c(0), {Op: OpReturn}}),
			"out of range",
		},
		"falls off the end": {
			method([]Instr{c(1), {Op: OpStore, A: 0, Kind: cir.Int}}, Prim(cir.Int)),
			"falls off",
		},
		"non-empty stack at branch": {
			method([]Instr{c(1), c(1), {Op: OpBrTrue, Target: 0}, c(0), {Op: OpReturn}}),
			"non-empty stack",
		},
		"non-empty stack at leader": {
			// The add at 4 is a branch target reached with two operands
			// left over from the fall-through path: the statement-boundary
			// invariant b2c's expression lifting relies on is broken.
			method([]Instr{
				c(1),
				{Op: OpBrTrue, Target: 4},
				c(5),
				c(6),
				{Op: OpBin, Bin: cir.Add, Kind: cir.Int},
				{Op: OpReturn},
			}),
			"at block boundary",
		},
		"goto with non-empty stack": {
			method([]Instr{c(1), {Op: OpStore, A: 0, Kind: cir.Int}, c(2), {Op: OpGoto, Target: 0}}, Prim(cir.Int)),
			"goto with non-empty stack",
		},
		"negative branch target": {
			method([]Instr{c(1), {Op: OpBrTrue, Target: -1}, c(0), {Op: OpReturn}}),
			"out of range",
		},
		"dynamic newarray": {
			method([]Instr{
				c(4),
				{Op: OpStore, A: 0, Kind: cir.Int},
				{Op: OpLoad, A: 0, Kind: cir.Int},
				{Op: OpNewArray, Kind: cir.Int},
				{Op: OpStore, A: 1, Kind: cir.Int},
				c(0),
				{Op: OpReturn},
			}, Prim(cir.Int), ArrayOf(cir.Int)),
			"compile-time constant",
		},
		"invalid slot": {
			method([]Instr{{Op: OpLoad, A: 3, Kind: cir.Int}, {Op: OpReturn}}),
			"invalid slot",
		},
		"aload on non-array": {
			method([]Instr{c(1), c(0), {Op: OpALoad, Kind: cir.Int}, {Op: OpReturn}}),
			"non-array",
		},
		"getfield on non-tuple": {
			method([]Instr{c(1), {Op: OpGetField, A: 0}, {Op: OpReturn}}),
			"non-tuple",
		},
		"unknown intrinsic": {
			method([]Instr{c(1), {Op: OpIntrin, Sym: "sin", A: 1, Kind: cir.Double}, {Op: OpReturn}}),
			"library calls",
		},
		"return with extra stack": {
			method([]Instr{c(1), c(2), {Op: OpReturn}}),
			"return with non-empty stack",
		},
		"empty code": {
			method(nil),
			"empty",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := Verify(tc.m)
			if err == nil {
				t.Fatal("verifier accepted invalid code")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestVerifyStructuralDefersLegality(t *testing.T) {
	// The two §3.3 legality rules (constant newarray sizes, the intrinsic
	// whitelist) are deferred by VerifyStructural so the abstract
	// interpreter can analyze the kernel and report sourced violations.
	dyn := method([]Instr{
		c(4),
		{Op: OpStore, A: 0, Kind: cir.Int},
		{Op: OpLoad, A: 0, Kind: cir.Int},
		{Op: OpNewArray, Kind: cir.Int},
		{Op: OpStore, A: 1, Kind: cir.Int},
		c(0),
		{Op: OpReturn},
	}, Prim(cir.Int), ArrayOf(cir.Int))
	if err := VerifyStructural(dyn); err != nil {
		t.Errorf("structural pass rejected dynamic newarray: %v", err)
	}
	if err := Verify(dyn); err == nil {
		t.Error("full verify accepted dynamic newarray")
	}

	intr := method([]Instr{c(1), {Op: OpIntrin, Sym: "sin", A: 1, Kind: cir.Double}, {Op: OpReturn}})
	if err := VerifyStructural(intr); err != nil {
		t.Errorf("structural pass rejected unknown intrinsic: %v", err)
	}
	if err := Verify(intr); err == nil {
		t.Error("full verify accepted unknown intrinsic")
	}

	// Structural breakage is still rejected by both.
	bad := method([]Instr{{Op: OpBin, Bin: cir.Add, Kind: cir.Int}, c(0), {Op: OpReturn}})
	if err := VerifyStructural(bad); err == nil {
		t.Error("structural pass accepted stack underflow")
	}

	cls := &Class{Name: "X", ID: "x", Call: dyn, InSizes: []int{1}}
	cls.Call.Params = []TypeDesc{Prim(cir.Int)}
	if err := VerifyClassStructural(cls); err != nil {
		t.Errorf("VerifyClassStructural rejected class: %v", err)
	}
	if err := VerifyClass(cls); err == nil {
		t.Error("VerifyClass accepted dynamic newarray class")
	}
}

func TestVerifyTupleOps(t *testing.T) {
	m := &Method{
		Name:       "m",
		Params:     []TypeDesc{TupleOf(Prim(cir.Int), Prim(cir.Int))},
		Ret:        Prim(cir.Int),
		LocalTypes: []TypeDesc{TupleOf(Prim(cir.Int), Prim(cir.Int))},
		LocalNames: []string{"in"},
		Code: []Instr{
			{Op: OpLoad, A: 0},
			{Op: OpGetField, A: 1, Kind: cir.Int},
			{Op: OpReturn},
		},
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	// Field index out of range.
	m.Code[1].A = 5
	if err := Verify(m); err == nil {
		t.Error("field _6 on a pair accepted")
	}
}

func TestVerifyClassChecks(t *testing.T) {
	cls := &Class{Name: "X", ID: "x"}
	if err := VerifyClass(cls); err == nil {
		t.Error("class without call accepted")
	}
	cls.Call = method([]Instr{c(0), {Op: OpReturn}})
	cls.Call.Params = []TypeDesc{Prim(cir.Int)}
	cls.Call.LocalTypes = []TypeDesc{Prim(cir.Int)}
	cls.Call.LocalNames = []string{"in"}
	cls.InSizes = []int{1, 1} // wrong arity for scalar input
	if err := VerifyClass(cls); err == nil {
		t.Error("wrong InSizes arity accepted")
	}
	cls.InSizes = []int{1}
	if err := VerifyClass(cls); err != nil {
		t.Errorf("valid class rejected: %v", err)
	}
}

func TestTypeDescEqualAndString(t *testing.T) {
	a := TupleOf(ArrayOf(cir.Char), Prim(cir.Double))
	b := TupleOf(ArrayOf(cir.Char), Prim(cir.Double))
	if !a.Equal(b) {
		t.Error("equal descriptors differ")
	}
	if a.Equal(TupleOf(ArrayOf(cir.Char), Prim(cir.Float))) {
		t.Error("different descriptors equal")
	}
	if s := a.String(); s != "(Array[char], double)" {
		t.Errorf("String = %q", s)
	}
}

func TestPatternFromMethods(t *testing.T) {
	cls := &Class{Name: "X", ID: "x"}
	if cls.Pattern() != cir.PatternMap {
		t.Error("default pattern should be map")
	}
	cls.Reduce = &Method{}
	if cls.Pattern() != cir.PatternReduce {
		t.Error("reduce method should flip the pattern")
	}
}

func TestDisassembleOutput(t *testing.T) {
	m := method([]Instr{
		c(7),
		{Op: OpStore, A: 0, Kind: cir.Int},
		{Op: OpLoad, A: 0, Kind: cir.Int},
		{Op: OpReturn},
	}, Prim(cir.Int))
	m.LocalNames = []string{"x"}
	out := Disassemble(m)
	for _, want := range []string{"method m", "const.int 7", "store 0", "load 0", "return", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
