package bytecode

// Leaders returns a parallel flag slice marking the basic-block leaders
// of a method: instruction 0, every branch target, and every
// fall-through successor of a branch. Out-of-range targets are ignored —
// callers that care (the verifier) reject them separately.
//
// The verifier uses leaders to enforce the statement-boundary invariant
// (empty operand stack at every block boundary); the jvmsim template JIT
// uses the same set as fusion barriers, so a superinstruction never
// swallows an instruction some branch can land on.
func Leaders(m *Method) []bool {
	leaders := make([]bool, len(m.Code))
	if len(leaders) > 0 {
		leaders[0] = true
	}
	for i, in := range m.Code {
		switch in.Op {
		case OpGoto, OpBrFalse, OpBrTrue:
			if in.Target >= 0 && in.Target < len(m.Code) {
				leaders[in.Target] = true
			}
			if i+1 < len(m.Code) {
				leaders[i+1] = true
			}
		}
	}
	return leaders
}

// StackEffect returns the net operand-stack depth change of executing
// one instruction (pushes minus pops). retVoid tells whether the
// enclosing method returns void, which decides whether OpReturn pops a
// value. Shared by the verifier-style depth analysis in the jvmsim JIT.
func StackEffect(in Instr, retVoid bool) int {
	switch in.Op {
	case OpConst, OpLoad, OpGetStatic:
		return 1
	case OpStore, OpALoad, OpBin, OpBrFalse, OpBrTrue:
		return -1
	case OpAStore:
		return -3
	case OpArrayLen, OpNewArray, OpGetField, OpUn, OpCast, OpGoto:
		return 0
	case OpNewTuple:
		return 1 - in.A
	case OpIntrin:
		return 1 - in.A
	case OpReturn:
		if retVoid {
			return 0
		}
		return -1
	}
	return 0
}
