package bytecode

import "s2fa/internal/compile"

// verifyScratch is the verifier's slot in a compile.Scratch: the operand
// stack and leader bitmap grow once and are reused across every method
// verified with the same Scratch.
type verifyScratch struct {
	stack   []TypeDesc
	leaders []bool
}

// verifyScratchOf returns (allocating on first use) the verifier scratch
// stored in sc, or nil when sc is nil.
func verifyScratchOf(sc *compile.Scratch) *verifyScratch {
	if sc == nil {
		return nil
	}
	if vs, ok := sc.Verify.(*verifyScratch); ok {
		return vs
	}
	vs := &verifyScratch{}
	sc.Verify = vs
	return vs
}

// VerifyClassScratch is VerifyClass with reusable verifier buffers from
// sc. A nil sc behaves exactly like VerifyClass.
func VerifyClassScratch(c *Class, sc *compile.Scratch) error {
	return verifyClassS(c, true, verifyScratchOf(sc))
}

// leadersInto is Leaders with a reusable buffer (resized and cleared, or
// grown when too small).
func leadersInto(m *Method, buf []bool) []bool {
	if cap(buf) >= len(m.Code) {
		buf = buf[:len(m.Code)]
		for i := range buf {
			buf[i] = false
		}
	} else {
		buf = make([]bool, len(m.Code))
	}
	if len(buf) > 0 {
		buf[0] = true
	}
	for i, in := range m.Code {
		switch in.Op {
		case OpGoto, OpBrFalse, OpBrTrue:
			if in.Target >= 0 && in.Target < len(m.Code) {
				buf[in.Target] = true
			}
			if i+1 < len(m.Code) {
				buf[i+1] = true
			}
		}
	}
	return buf
}
