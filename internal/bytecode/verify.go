package bytecode

import (
	"fmt"

	"s2fa/internal/cir"
)

// Verify checks a method's bytecode for well-formedness:
//
//   - branch targets in range,
//   - local slot indices valid and type-consistent,
//   - operand stack discipline (no underflow, type-correct operands),
//   - the statement-boundary invariant: the operand stack is empty at
//     every branch, branch target, and fall-through into a leader.
//
// The last property is what javac-style statement-oriented code
// generation produces and what the bytecode-to-C compiler's
// expression-lifting pass (internal/b2c) relies on.
//
// Verify also enforces the §3.3 legality rules that are decidable
// per-instruction (constant newarray sizes, the intrinsic whitelist).
// VerifyStructural checks everything except those two, so diagnostic
// passes can analyze an illegal-but-well-formed kernel and report the
// violations with source positions instead of stopping at the first.
func Verify(m *Method) error { return verify(m, true) }

// VerifyStructural verifies branch targets, slot usage, and stack
// discipline only, deferring §3.3 legality to the abstract interpreter's
// sourced diagnostics.
func VerifyStructural(m *Method) error { return verify(m, false) }

func verify(m *Method, legality bool) error { return verifyS(m, legality, nil) }

func verifyS(m *Method, legality bool, vs *verifyScratch) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("bytecode: %s: empty code", m.Name)
	}
	for i, in := range m.Code {
		switch in.Op {
		case OpGoto, OpBrFalse, OpBrTrue:
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("bytecode: %s@%d: branch target %d out of range", m.Name, i, in.Target)
			}
		}
	}
	var leaders []bool
	var stack []TypeDesc
	if vs != nil {
		leaders = leadersInto(m, vs.leaders)
		vs.leaders = leaders
		stack = vs.stack[:0]
	} else {
		leaders = Leaders(m)
	}
	push := func(t TypeDesc) { stack = append(stack, t) }
	pop := func(at int) (TypeDesc, error) {
		if len(stack) == 0 {
			return TypeDesc{}, fmt.Errorf("bytecode: %s@%d: stack underflow", m.Name, at)
		}
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return t, nil
	}

	constLen := -1 // tracks a preceding constant for NewArray
	for i, in := range m.Code {
		if leaders[i] && len(stack) != 0 {
			return fmt.Errorf("bytecode: %s@%d: non-empty stack (%d) at block boundary", m.Name, i, len(stack))
		}
		switch in.Op {
		case OpConst:
			push(Prim(in.Kind))
			constLen = int(in.Val.I)
			continue
		case OpLoad:
			if in.A < 0 || in.A >= len(m.LocalTypes) {
				return fmt.Errorf("bytecode: %s@%d: load from invalid slot %d", m.Name, i, in.A)
			}
			push(m.LocalTypes[in.A])
		case OpStore:
			if in.A < 0 || in.A >= len(m.LocalTypes) {
				return fmt.Errorf("bytecode: %s@%d: store to invalid slot %d", m.Name, i, in.A)
			}
			t, err := pop(i)
			if err != nil {
				return err
			}
			want := m.LocalTypes[in.A]
			if t.Array != want.Array || t.IsTuple() != want.IsTuple() {
				return fmt.Errorf("bytecode: %s@%d: store of %s into slot of type %s", m.Name, i, t, want)
			}
		case OpALoad:
			if _, err := pop(i); err != nil { // index
				return err
			}
			arr, err := pop(i)
			if err != nil {
				return err
			}
			if !arr.Array {
				return fmt.Errorf("bytecode: %s@%d: aload from non-array %s", m.Name, i, arr)
			}
			push(Prim(in.Kind))
		case OpAStore:
			if _, err := pop(i); err != nil { // value
				return err
			}
			if _, err := pop(i); err != nil { // index
				return err
			}
			arr, err := pop(i)
			if err != nil {
				return err
			}
			if !arr.Array {
				return fmt.Errorf("bytecode: %s@%d: astore to non-array %s", m.Name, i, arr)
			}
		case OpArrayLen:
			arr, err := pop(i)
			if err != nil {
				return err
			}
			if !arr.Array {
				return fmt.Errorf("bytecode: %s@%d: arraylen of non-array %s", m.Name, i, arr)
			}
			push(Prim(cir.Int))
		case OpNewArray:
			if _, err := pop(i); err != nil {
				return err
			}
			if legality && constLen < 0 {
				return fmt.Errorf("bytecode: %s@%d: newarray length is not a compile-time constant (dynamic allocation is unsupported on the FPGA)", m.Name, i)
			}
			push(ArrayOf(in.Kind))
		case OpGetField:
			tup, err := pop(i)
			if err != nil {
				return err
			}
			if !tup.IsTuple() {
				return fmt.Errorf("bytecode: %s@%d: getfield on non-tuple %s", m.Name, i, tup)
			}
			if in.A < 0 || in.A >= len(tup.Tuple) {
				return fmt.Errorf("bytecode: %s@%d: field _%d out of range for %s", m.Name, i, in.A+1, tup)
			}
			push(tup.Tuple[in.A])
		case OpNewTuple:
			if in.A < 2 || in.A > 4 {
				return fmt.Errorf("bytecode: %s@%d: tuple arity %d unsupported", m.Name, i, in.A)
			}
			fields := make([]TypeDesc, in.A)
			for j := in.A - 1; j >= 0; j-- {
				t, err := pop(i)
				if err != nil {
					return err
				}
				fields[j] = t
			}
			push(TupleOf(fields...))
		case OpGetStatic:
			if in.Sym == "" {
				return fmt.Errorf("bytecode: %s@%d: getstatic without symbol", m.Name, i)
			}
			push(ArrayOf(in.Kind))
		case OpBin:
			if _, err := pop(i); err != nil {
				return err
			}
			if _, err := pop(i); err != nil {
				return err
			}
			if in.Bin.IsCompare() {
				push(Prim(cir.Bool))
			} else {
				push(Prim(in.Kind))
			}
		case OpUn:
			if _, err := pop(i); err != nil {
				return err
			}
			if in.Un == cir.Not {
				push(Prim(cir.Bool))
			} else {
				push(Prim(in.Kind))
			}
		case OpCast:
			if _, err := pop(i); err != nil {
				return err
			}
			push(Prim(in.Kind))
		case OpIntrin:
			if legality && !cir.Intrinsics[in.Sym] {
				return fmt.Errorf("bytecode: %s@%d: unknown intrinsic %q (library calls are unsupported, paper §3.3)", m.Name, i, in.Sym)
			}
			for j := 0; j < in.A; j++ {
				if _, err := pop(i); err != nil {
					return err
				}
			}
			push(Prim(in.Kind))
		case OpGoto:
			if len(stack) != 0 {
				return fmt.Errorf("bytecode: %s@%d: goto with non-empty stack", m.Name, i)
			}
		case OpBrFalse, OpBrTrue:
			if _, err := pop(i); err != nil {
				return err
			}
			if len(stack) != 0 {
				return fmt.Errorf("bytecode: %s@%d: branch with non-empty stack", m.Name, i)
			}
		case OpReturn:
			if m.Ret.Kind != cir.Void || m.Ret.Array || m.Ret.IsTuple() {
				if _, err := pop(i); err != nil {
					return err
				}
			}
			if len(stack) != 0 {
				return fmt.Errorf("bytecode: %s@%d: return with non-empty stack", m.Name, i)
			}
		default:
			return fmt.Errorf("bytecode: %s@%d: unknown opcode %d", m.Name, i, in.Op)
		}
		constLen = -1
	}
	last := m.Code[n-1]
	if last.Op != OpReturn && last.Op != OpGoto {
		return fmt.Errorf("bytecode: %s: code falls off the end", m.Name)
	}
	if vs != nil {
		vs.stack = stack[:0]
	}
	return nil
}

// VerifyClass verifies all methods of a class and its template metadata.
func VerifyClass(c *Class) error { return verifyClass(c, true) }

// VerifyClassStructural is VerifyClass with the per-method §3.3 legality
// rules deferred (see VerifyStructural).
func VerifyClassStructural(c *Class) error { return verifyClass(c, false) }

func verifyClass(c *Class, legality bool) error { return verifyClassS(c, legality, nil) }

func verifyClassS(c *Class, legality bool, vs *verifyScratch) error {
	if c.Call == nil {
		return fmt.Errorf("bytecode: class %s has no call method", c.Name)
	}
	if err := verifyS(c.Call, legality, vs); err != nil {
		return err
	}
	if c.Reduce != nil {
		if err := verifyS(c.Reduce, legality, vs); err != nil {
			return err
		}
	}
	arity := 1
	if c.Call.Params[0].IsTuple() {
		arity = len(c.Call.Params[0].Tuple)
	}
	if len(c.InSizes) != arity {
		return fmt.Errorf("bytecode: class %s: InSizes has %d entries for %d input fields", c.Name, len(c.InSizes), arity)
	}
	return nil
}
