package bytecode_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// FuzzVerify feeds arbitrary byte strings through a compact binary
// method encoding into the bytecode verifier. The repo has no binary
// class-file codec (methods are built in memory by the kdsl frontend),
// so the codec below exists purely to give the fuzzer a dense, mutation-
// friendly surface over Method space. The contract under fuzzing:
//
//   - Verify reports malformed methods as errors, never panics.
//   - Accepted methods disassemble without panicking.
//   - Acceptance is stable under re-encoding: encode(decode(b)) decodes
//     to a method the verifier still accepts.
//
// The corpus is seeded with the encoded call/reduce methods of all
// eight paper workloads, so mutation starts from real verifier-clean
// bytecode rather than random noise.

// fuzzSyms is the closed symbol table the codec draws intrinsic and
// static-field names from.
var fuzzSyms = []string{"sqrt", "abs", "exp", "log", "pow", "min", "max", "sbox", "weights", "centers"}

// encodeType packs a TypeDesc into two bytes (tuples collapse to their
// first field's kind — lossy, which is fine for seeding).
func encodeType(t bytecode.TypeDesc, w *bytes.Buffer) {
	k := t.Kind
	if t.IsTuple() {
		k = t.Tuple[0].Kind
	}
	var flags byte
	if t.Array {
		flags = 1
	}
	w.WriteByte(byte(k))
	w.WriteByte(flags)
}

func decodeType(b []byte) (bytecode.TypeDesc, []byte, bool) {
	if len(b) < 2 {
		return bytecode.TypeDesc{}, nil, false
	}
	// Canonicalize: kinds beyond Double wrap, flag bit 0 is Array.
	t := bytecode.TypeDesc{Kind: cir.Kind(b[0] % 8), Array: b[1]&1 == 1}
	return t, b[2:], true
}

const instrBytes = 10

// encodeMethod flattens m into the fuzz wire format:
//
//	[nparams u8] [param types...] [ret type] [nextras u8] [extra local types...] [instrs...]
//
// with each instruction a fixed 10-byte record:
//
//	[op] [kind] [a] [target] [bin] [un] [symIdx] [valKind] [val i16 BE]
func encodeMethod(m *bytecode.Method) []byte {
	var w bytes.Buffer
	w.WriteByte(byte(len(m.Params)))
	for _, p := range m.Params {
		encodeType(p, &w)
	}
	encodeType(m.Ret, &w)
	extras := len(m.LocalTypes) - len(m.Params)
	if extras < 0 {
		extras = 0
	}
	w.WriteByte(byte(extras))
	for _, lt := range m.LocalTypes[len(m.LocalTypes)-extras:] {
		encodeType(lt, &w)
	}
	for _, in := range m.Code {
		symIdx := byte(0)
		for i, s := range fuzzSyms {
			if s == in.Sym {
				symIdx = byte(i)
				break
			}
		}
		val := int16(in.Val.I)
		if in.Val.K == cir.Float || in.Val.K == cir.Double {
			val = int16(in.Val.F)
		}
		rec := [instrBytes]byte{
			byte(in.Op), byte(in.Kind), byte(in.A), byte(in.Target),
			byte(in.Bin), byte(in.Un), symIdx, byte(in.Val.K),
		}
		binary.BigEndian.PutUint16(rec[8:], uint16(val))
		w.Write(rec[:])
	}
	return w.Bytes()
}

// decodeMethod is the canonicalizing inverse: any byte string decodes to
// some Method (or fails cleanly), and encodeMethod(decodeMethod(b))
// decodes back to the same Method.
func decodeMethod(b []byte) (*bytecode.Method, bool) {
	if len(b) < 1 {
		return nil, false
	}
	nparams := int(b[0] % 8)
	b = b[1:]
	m := &bytecode.Method{Name: "fuzz"}
	for i := 0; i < nparams; i++ {
		t, rest, ok := decodeType(b)
		if !ok {
			return nil, false
		}
		m.Params = append(m.Params, t)
		b = rest
	}
	ret, rest, ok := decodeType(b)
	if !ok {
		return nil, false
	}
	m.Ret = ret
	b = rest
	if len(b) < 1 {
		return nil, false
	}
	nextras := int(b[0] % 8)
	b = b[1:]
	m.LocalTypes = append(m.LocalTypes, m.Params...)
	for i := 0; i < nextras; i++ {
		t, rest, ok := decodeType(b)
		if !ok {
			return nil, false
		}
		m.LocalTypes = append(m.LocalTypes, t)
		b = rest
	}
	m.LocalNames = make([]string, len(m.LocalTypes))
	for len(b) >= instrBytes {
		rec := b[:instrBytes]
		b = b[instrBytes:]
		in := bytecode.Instr{
			Op:     bytecode.Op(rec[0] % 18),
			Kind:   cir.Kind(rec[1] % 8),
			A:      int(rec[2] % 32),
			Target: int(rec[3]),
			Bin:    cir.BinOp(rec[4] % 17),
			Un:     cir.UnOp(rec[5] % 3),
			Sym:    fuzzSyms[int(rec[6])%len(fuzzSyms)],
		}
		valKind := cir.Kind(rec[7] % 8)
		val := int16(binary.BigEndian.Uint16(rec[8:]))
		if valKind == cir.Float || valKind == cir.Double {
			in.Val = cir.FloatVal(valKind, float64(val))
		} else {
			in.Val = cir.IntVal(valKind, int64(val))
		}
		m.Code = append(m.Code, in)
	}
	return m, true
}

func FuzzVerify(f *testing.F) {
	for _, a := range apps.All() {
		cls, err := a.Class()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(encodeMethod(cls.Call))
		if cls.Reduce != nil {
			f.Add(encodeMethod(cls.Reduce))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 4, 0}) // no-param Int method, no code
	f.Fuzz(func(t *testing.T, data []byte) {
		m, ok := decodeMethod(data)
		if !ok {
			return
		}
		// Structural verification must classify, never crash.
		if err := bytecode.VerifyStructural(m); err != nil {
			return
		}
		// Accepted methods must survive the rest of the toolchain surface:
		// the legality pass and the disassembler may reject but not panic.
		_ = bytecode.Verify(m)
		_ = bytecode.Disassemble(m)
		// Acceptance is stable under the codec round-trip.
		m2, ok := decodeMethod(encodeMethod(m))
		if !ok {
			t.Fatalf("re-encoded accepted method failed to decode")
		}
		if err := bytecode.VerifyStructural(m2); err != nil {
			t.Fatalf("accepted method no longer verifies after encode/decode round-trip: %v\nbefore:\n%s\nafter:\n%s",
				err, bytecode.Disassemble(m), bytecode.Disassemble(m2))
		}
		if d1, d2 := bytecode.Disassemble(m), bytecode.Disassemble(m2); d1 != d2 {
			t.Fatalf("round-trip changed the method:\nbefore:\n%s\nafter:\n%s", d1, d2)
		}
	})
}
