package hadoop

import (
	"math/rand"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/blaze"
	"s2fa/internal/cir"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/jvmsim"
)

// kmeansJob counts points per assigned cluster: map = KMeans assignment
// kernel, key = cluster id, reduce = count.
func kmeansJob(t *testing.T, mgr *blaze.Manager) (*Job, *apps.App) {
	t.Helper()
	a := apps.Get("KMeans")
	cls, err := a.Class()
	if err != nil {
		t.Fatal(err)
	}
	return &Job{
		Name:    "cluster-histogram",
		Mapper:  jvmsim.New(cls),
		Manager: mgr,
		Key:     func(v jvmsim.Val) int64 { return v.S.AsInt() },
		Reduce: func(key int64, vs []jvmsim.Val) jvmsim.Val {
			return jvmsim.Scalar(cir.IntVal(cir.Int, int64(len(vs))))
		},
		Splits: 4,
	}, a
}

func deployKMeans(t *testing.T) *blaze.Manager {
	t.Helper()
	a := apps.Get("KMeans")
	cls, _ := a.Class()
	k, _ := a.Kernel()
	dev := fpga.VU9P()
	rep := hls.Estimate(k, dev, 64, hls.Options{})
	mgr := blaze.NewManager(dev)
	if err := mgr.Register(&blaze.Accelerator{
		ID:     cls.ID,
		Layout: blaze.Layout{Class: cls, Kernel: k},
		Design: rep.Design("KMeans"),
	}); err != nil {
		t.Fatal(err)
	}
	return mgr
}

func TestMapReduceOnAccelerator(t *testing.T) {
	mgr := deployKMeans(t)
	job, a := kmeansJob(t, mgr)
	rng := rand.New(rand.NewSource(12))
	input := a.Gen(rng, 256)

	res, err := job.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SplitStats) != 4 {
		t.Fatalf("splits = %d", len(res.SplitStats))
	}
	for i, st := range res.SplitStats {
		if !st.UsedFPGA {
			t.Errorf("split %d fell back: %q", i, st.Fallback)
		}
	}
	// Histogram totals must equal the input count and match the
	// reference assignment.
	total := int64(0)
	want := map[int64]int64{}
	for _, task := range input {
		want[int64(apps.KMeansRef(floats(task.Arr)))]++
	}
	for _, k := range res.Keys {
		total += res.Output[k].S.AsInt()
		if res.Output[k].S.AsInt() != want[k] {
			t.Errorf("cluster %d count = %d, want %d", k, res.Output[k].S.AsInt(), want[k])
		}
	}
	if total != 256 {
		t.Errorf("histogram total = %d", total)
	}
}

func TestMapReduceFallsBackWithoutAccelerator(t *testing.T) {
	job, a := kmeansJob(t, blaze.NewManager(fpga.VU9P()))
	rng := rand.New(rand.NewSource(12))
	input := a.Gen(rng, 64)
	res, err := job.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.SplitStats {
		if st.UsedFPGA {
			t.Error("no accelerator registered but FPGA reported used")
		}
	}
	// Same answer either way.
	accMgr := deployKMeans(t)
	job2, _ := kmeansJob(t, accMgr)
	res2, err := job2.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != len(res2.Keys) {
		t.Fatalf("key sets differ: %v vs %v", res.Keys, res2.Keys)
	}
	for _, k := range res.Keys {
		if res.Output[k].S.AsInt() != res2.Output[k].S.AsInt() {
			t.Errorf("key %d: jvm=%d fpga=%d", k, res.Output[k].S.AsInt(), res2.Output[k].S.AsInt())
		}
	}
}

func TestJobValidation(t *testing.T) {
	if _, err := (&Job{Name: "x"}).Run(nil); err == nil {
		t.Error("incomplete job accepted")
	}
	mgr := deployKMeans(t)
	job, _ := kmeansJob(t, mgr)
	res, err := job.Run(nil)
	if err != nil || len(res.Output) != 0 {
		t.Errorf("empty input: %v %v", res, err)
	}
}

func floats(vs []cir.Value) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v.AsFloat()
	}
	return out
}
