// Package hadoop demonstrates the paper's §2 claim that S2FA-generated
// kernels are not tied to Spark: "the S2FA framework is able to compile
// any Java/Scala method that satisfies the constraints ... so we can
// easily integrate S2FA with other JVM-based runtime systems such as
// Hadoop". This is a miniature Hadoop-style MapReduce driver whose map
// phase offloads to Blaze accelerators (with transparent JVM fallback)
// and whose shuffle/reduce phase runs on the host.
package hadoop

import (
	"fmt"
	"sort"
	"sync"

	"s2fa/internal/blaze"
	"s2fa/internal/jvmsim"
	"s2fa/internal/spark"
)

// KeyFunc assigns a shuffle key to one mapper output record.
type KeyFunc func(v jvmsim.Val) int64

// ReduceFunc folds the values of one key.
type ReduceFunc func(key int64, values []jvmsim.Val) jvmsim.Val

// Job is a two-phase MapReduce job: the map phase applies an S2FA kernel
// class to every input record (offloaded per input split), then records
// are shuffled by key and reduced host-side.
type Job struct {
	Name string
	// Mapper is the kernel class (its `call` is the map function).
	Mapper *jvmsim.VM
	// Manager provides accelerators; nil forces the JVM path.
	Manager *blaze.Manager
	Key     KeyFunc
	Reduce  ReduceFunc
	// Splits is the number of input splits processed concurrently
	// (Hadoop's map tasks). Defaults to 4.
	Splits int
}

// Result is the reduced output plus execution accounting.
type Result struct {
	// Output maps key to reduced value, with Keys in sorted order.
	Output map[int64]jvmsim.Val
	Keys   []int64
	// SplitStats records how each split executed (FPGA vs fallback).
	SplitStats []blaze.Stats
}

// Run executes the job over the input records.
func (j *Job) Run(input []jvmsim.Val) (*Result, error) {
	if j.Mapper == nil || j.Key == nil || j.Reduce == nil {
		return nil, fmt.Errorf("hadoop: job %q needs Mapper, Key, and Reduce", j.Name)
	}
	splits := j.Splits
	if splits <= 0 {
		splits = 4
	}
	if splits > len(input) && len(input) > 0 {
		splits = len(input)
	}
	if len(input) == 0 {
		return &Result{Output: map[int64]jvmsim.Val{}}, nil
	}
	mgr := j.Manager
	if mgr == nil {
		mgr = blaze.NewManager(nil)
	}

	// Map phase: one Blaze offload per split (Hadoop map task).
	chunk := (len(input) + splits - 1) / splits
	type splitOut struct {
		idx     int
		records []jvmsim.Val
		stats   blaze.Stats
		err     error
	}
	outs := make([]splitOut, splits)
	var wg sync.WaitGroup
	for sIdx := 0; sIdx < splits; sIdx++ {
		lo := sIdx * chunk
		hi := lo + chunk
		if hi > len(input) {
			hi = len(input)
		}
		wg.Add(1)
		go func(sIdx int, part []jvmsim.Val) {
			defer wg.Done()
			ctx := spark.NewContext()
			rdd := spark.Parallelize(ctx, part, 1)
			// Each split needs its own VM (interpreter state is not
			// shared across goroutines).
			vm := jvmsim.New(j.Mapper.Class)
			recs, stats, err := blaze.Wrap(rdd, mgr).MapAcc(vm)
			outs[sIdx] = splitOut{idx: sIdx, records: recs, stats: stats, err: err}
		}(sIdx, input[lo:hi])
	}
	wg.Wait()

	res := &Result{Output: map[int64]jvmsim.Val{}}
	groups := map[int64][]jvmsim.Val{}
	for _, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("hadoop: split %d: %w", o.idx, o.err)
		}
		res.SplitStats = append(res.SplitStats, o.stats)
		// Shuffle: group by key.
		for _, r := range o.records {
			k := j.Key(r)
			groups[k] = append(groups[k], r)
		}
	}

	// Reduce phase.
	for k, vs := range groups {
		res.Output[k] = j.Reduce(k, vs)
		res.Keys = append(res.Keys, k)
	}
	sort.Slice(res.Keys, func(a, b int) bool { return res.Keys[a] < res.Keys[b] })
	return res, nil
}
