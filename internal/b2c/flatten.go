package b2c

import (
	"fmt"
	"math"

	"s2fa/internal/absint"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// flattener performs the composite-type flattening and template insertion
// of paper §3.2: tuple parameters become flat per-field kernel buffers,
// returned tuples become writes through output buffers (so the Tuple2
// constructor disappears), and the whole body is wrapped in the task loop
// with per-task buffer offsets (Code 3's `&in_1[i*128]`).
type flattener struct {
	cls    *bytecode.Class
	kernel *cir.Kernel
	// inputs/outputs track buffer layout: name -> per-task element count.
	inLens  map[string]int
	outLens map[string]int
	// scalarIns are input buffers holding one scalar per task, accessed
	// as bare VarRefs in the decompiled body.
	scalarIns map[string]bool
	// scalarRes names scalar per-task results in reduce mode.
	scalarRes map[string]bool
	// outNames in field order.
	outNames []string
	// facts, when non-nil, is the abstract interpretation of the class:
	// interface buffers are annotated with proven value ranges and output
	// extents resolve from return-value facts.
	facts *absint.ClassFacts
}

// setValueRange annotates a parameter with a proven finite value range.
// Output buffers additionally admit zero: the runtime zero-fills them at
// allocation, so elements the kernel leaves unwritten (and reduce
// accumulators before their first fold) hold zero.
func setValueRange(p *cir.Param, iv absint.Interval) {
	if p.IsOutput {
		lo, hi := iv.Lo, iv.Hi
		if iv.IsBottom() {
			lo, hi = 0, 0
		}
		iv = absint.Interval{Lo: math.Min(lo, 0), Hi: math.Max(hi, 0)}
	}
	if iv.IsBottom() || math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) ||
		math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
		return
	}
	p.ValLo, p.ValHi, p.ValKnown = iv.Lo, iv.Hi, true
}

// buildParams derives the input buffer interface from the call method's
// parameter descriptor and the class's data-layout template.
func (f *flattener) buildParams(lf *lifter) error {
	f.inLens = map[string]int{}
	f.outLens = map[string]int{}
	f.scalarIns = map[string]bool{}
	f.scalarRes = map[string]bool{}

	pname := lf.localName(0)
	pdesc := f.cls.Call.Params[0]
	fields := []bytecode.TypeDesc{pdesc}
	names := []string{pname}
	if pdesc.IsTuple() {
		fields = pdesc.Tuple
		names = names[:0]
		for i := range fields {
			names = append(names, paramFieldName(pname, i))
		}
	}
	for i, ft := range fields {
		ln := 1
		if ft.Array {
			ln = f.cls.InSizes[i]
		} else {
			f.scalarIns[names[i]] = true
		}
		f.inLens[names[i]] = ln
		p := cir.Param{
			Name:    names[i],
			Elem:    ft.Kind,
			IsArray: true,
			Length:  ln,
		}
		if f.facts != nil {
			origin := "param#0"
			if pdesc.IsTuple() {
				origin = fmt.Sprintf("field#%d", i)
			}
			if ft.Array {
				if af := f.facts.Call.Array(origin); af != nil {
					setValueRange(&p, af.Elems)
				}
			} else {
				setValueRange(&p, absint.KindRange(ft.Kind))
			}
		}
		f.kernel.Params = append(f.kernel.Params, p)
	}
	return nil
}

// rewriteCallBody replaces the final Return with output-buffer writes.
// In map mode results go directly to out buffers; in reduce mode they go
// to per-task temporaries that the inlined combiner folds into the out
// accumulators.
func (f *flattener) rewriteCallBody(body cir.Block) (cir.Block, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("b2c: empty call body")
	}
	ret, ok := body[len(body)-1].(*cir.Return)
	if !ok {
		return nil, fmt.Errorf("b2c: call body does not end in a return")
	}
	body = body[:len(body)-1]

	var fields []cir.Expr
	if tup, isTuple := ret.Val.(*cir.Call); isTuple && tup.Name == markTuple {
		fields = tup.Args
	} else {
		fields = []cir.Expr{ret.Val}
	}

	retDesc := f.cls.Call.Ret
	fdescs := []bytecode.TypeDesc{retDesc}
	if retDesc.IsTuple() {
		fdescs = retDesc.Tuple
	}
	if len(fields) != len(fdescs) {
		return nil, fmt.Errorf("b2c: return arity %d does not match output type arity %d", len(fields), len(fdescs))
	}

	// Per-field output abstractions: element ranges seed the interface
	// annotations, and proven extents back up the syntactic length search.
	var outAbs []absint.Abstract
	if f.facts != nil {
		ab := f.facts.OutputAbstract()
		outAbs = []absint.Abstract{ab}
		if ab.IsTuple() {
			outAbs = ab.Fields
		}
		if len(outAbs) != len(fdescs) {
			outAbs = nil
		}
	}

	reduceMode := f.cls.Reduce != nil
	for k, fe := range fields {
		outName := "out"
		if len(fields) > 1 {
			outName = fmt.Sprintf("out_%d", k+1)
		}
		f.outNames = append(f.outNames, outName)
		target := outName
		if reduceMode {
			target = fmt.Sprintf("_res_%d", k+1)
		}
		switch fd := fdescs[k]; {
		case fd.Array:
			vr, isVar := fe.(*cir.VarRef)
			if !isVar {
				return nil, fmt.Errorf("b2c: array output _%d must be a local array variable", k+1)
			}
			srcLen, known := arrayLenIn(body, vr.Name, f.inLens)
			if !known && outAbs != nil {
				// Fall back to the abstract interpreter's proven extent
				// of the returned array when the dataflow is too indirect
				// for the syntactic search.
				if c, ok := outAbs[k].Len.ConstInt(); ok && c > 0 {
					srcLen, known = int(c), true
				}
			}
			if !known {
				return nil, fmt.Errorf("b2c: cannot determine length of output array %q", vr.Name)
			}
			f.outLens[outName] = srcLen
			if isLocalArray(body, vr.Name) {
				// The paper's transformation: the local output array is
				// replaced by the kernel's output argument.
				if reduceMode {
					body = renameArray(body, vr.Name, target)
				} else {
					body = removeArrDecl(body, vr.Name)
					body = renameArray(body, vr.Name, target)
				}
			} else {
				// Pass-through of an input buffer: copy element-wise.
				cp := copyLoop(target, vr.Name, fd.Kind, srcLen, fmt.Sprintf("_cp%d", k))
				if reduceMode {
					body = append(body, &cir.ArrDecl{Name: target, Elem: fd.Kind, Len: srcLen})
				}
				body = append(body, cp)
			}
			p := cir.Param{
				Name: outName, Elem: fd.Kind, IsArray: true, Length: srcLen, IsOutput: true,
			}
			if outAbs != nil {
				setValueRange(&p, outAbs[k].Elems)
			}
			f.kernel.Params = append(f.kernel.Params, p)
		default:
			f.outLens[outName] = 1
			if reduceMode {
				f.scalarRes[target] = true
				body = append(body,
					&cir.Decl{Name: target, K: fd.Kind, Init: fe})
			} else {
				body = append(body, &cir.Assign{
					LHS: &cir.Index{K: fd.Kind, Arr: outName, Idx: &cir.IntLit{K: cir.Int, Val: 0}},
					RHS: fe,
				})
			}
			p := cir.Param{
				Name: outName, Elem: fd.Kind, IsArray: true, Length: 1, IsOutput: true,
			}
			if outAbs != nil {
				setValueRange(&p, outAbs[k].Iv)
			}
			f.kernel.Params = append(f.kernel.Params, p)
		}
	}
	return body, nil
}

// inlineReduce decompiles the combiner and splices it after the task
// computation, with its first parameter mapped to the output accumulators
// and its second to the per-task result temporaries.
func (f *flattener) inlineReduce(cls *bytecode.Class) (cir.Block, error) {
	// No fact-driven constant folding here: reduce facts model Spark's
	// fold (accumulator seeded from call results), while the generated
	// kernel folds against a zero-initialized accumulator, so a store the
	// analysis proves constant may still see zero on the first fold.
	body, lf, err := decompile(cls, cls.Reduce, nil)
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("b2c: empty reduce body")
	}
	ret, ok := body[len(body)-1].(*cir.Return)
	if !ok {
		return nil, fmt.Errorf("b2c: reduce body does not end in a return")
	}
	body = body[:len(body)-1]

	aName, bName := lf.localName(0), lf.localName(1)
	retDesc := cls.Reduce.Ret
	fdescs := []bytecode.TypeDesc{retDesc}
	if retDesc.IsTuple() {
		fdescs = retDesc.Tuple
	}

	// The combiner must accumulate in place: it returns its first
	// parameter (template constraint; additive identity is zero).
	var retFields []cir.Expr
	if tup, isTuple := ret.Val.(*cir.Call); isTuple && tup.Name == markTuple {
		retFields = tup.Args
	} else {
		retFields = []cir.Expr{ret.Val}
	}
	for k, rf := range retFields {
		want := aName
		if retDesc.IsTuple() {
			want = paramFieldName(aName, k)
		}
		vr, isVar := rf.(*cir.VarRef)
		if !isVar || vr.Name != want {
			return nil, fmt.Errorf("b2c: reduce must return its first parameter (in-place accumulation template); field %d returns %s", k+1, cir.ExprString(rf))
		}
	}

	// Alpha-rename combiner locals away from call-body names.
	body = cir.RenameLocals(body, "_red")

	for k, fd := range fdescs {
		aField, bField := aName, bName
		if retDesc.IsTuple() {
			aField = paramFieldName(aName, k)
			bField = paramFieldName(bName, k)
		}
		outName := f.outNames[k]
		resName := fmt.Sprintf("_res_%d", k+1)
		if fd.Array {
			body = renameArray(body, aField, outName)
			body = renameArray(body, bField, resName)
		} else {
			body = cir.SubstVarBlock(body, bField, &cir.VarRef{K: fd.Kind, Name: resName})
			// Scalar accumulator lives at out[0]; reads and writes both
			// map to the buffer element.
			body = substScalarAccum(body, aField, outName, fd.Kind)
		}
	}
	return body, nil
}

// substScalarAccum maps reads and writes of a scalar combiner parameter
// to element 0 of the output buffer.
func substScalarAccum(b cir.Block, name, outName string, k cir.Kind) cir.Block {
	elem := func() cir.Expr {
		return &cir.Index{K: k, Arr: outName, Idx: &cir.IntLit{K: cir.Int, Val: 0}}
	}
	b = cir.SubstVarBlock(b, name, elem())
	// SubstVar does not rewrite assignment targets that are VarRefs (it
	// clones them); patch those explicitly.
	var walk func(b cir.Block)
	walk = func(b cir.Block) {
		for _, s := range b {
			switch s := s.(type) {
			case *cir.Assign:
				if vr, ok := s.LHS.(*cir.VarRef); ok && vr.Name == name {
					s.LHS = elem()
				}
			case *cir.If:
				walk(s.Then)
				walk(s.Else)
			case *cir.Loop:
				walk(s.Body)
			case *cir.While:
				walk(s.Body)
			}
		}
	}
	walk(b)
	return b
}

// indexByTask rewrites buffer accesses with per-task offsets: element e of
// input buffer p becomes p[task*len + e]; map-mode outputs likewise;
// reduce-mode outputs are task-invariant accumulators.
func (f *flattener) indexByTask(b cir.Block) cir.Block {
	taskRef := func() cir.Expr { return &cir.VarRef{K: cir.Int, Name: taskVar} }
	offsets := map[string]int{}
	for name, ln := range f.inLens {
		offsets[name] = ln
	}
	if f.cls.Reduce == nil {
		for name, ln := range f.outLens {
			offsets[name] = ln
		}
	}
	var rewriteExpr func(e cir.Expr) cir.Expr
	rewriteExpr = func(e cir.Expr) cir.Expr {
		switch e := e.(type) {
		case nil:
			return nil
		case *cir.IntLit, *cir.FloatLit:
			return e
		case *cir.VarRef:
			// Scalar input fields read the task's element.
			if f.scalarIns[e.Name] {
				return &cir.Index{K: e.K, Arr: e.Name, Idx: taskRef()}
			}
			return e
		case *cir.Index:
			idx := rewriteExpr(e.Idx)
			if ln, ok := offsets[e.Arr]; ok {
				idx = addTaskOffset(idx, ln, taskRef)
			}
			return &cir.Index{K: e.K, Arr: e.Arr, Idx: idx, Pos: e.Pos}
		case *cir.Unary:
			return &cir.Unary{Op: e.Op, X: rewriteExpr(e.X)}
		case *cir.Binary:
			return &cir.Binary{K: e.K, Op: e.Op, L: rewriteExpr(e.L), R: rewriteExpr(e.R)}
		case *cir.Cast:
			return &cir.Cast{To: e.To, X: rewriteExpr(e.X)}
		case *cir.Cond:
			return &cir.Cond{C: rewriteExpr(e.C), T: rewriteExpr(e.T), F: rewriteExpr(e.F)}
		case *cir.Call:
			args := make([]cir.Expr, len(e.Args))
			for i, a := range e.Args {
				args[i] = rewriteExpr(a)
			}
			return &cir.Call{K: e.K, Name: e.Name, Args: args}
		}
		return e
	}
	var rewrite func(b cir.Block) cir.Block
	rewrite = func(b cir.Block) cir.Block {
		out := make(cir.Block, 0, len(b))
		for _, s := range b {
			switch s := s.(type) {
			case *cir.Decl:
				out = append(out, &cir.Decl{Name: s.Name, K: s.K, Init: rewriteExpr(s.Init)})
			case *cir.ArrDecl:
				out = append(out, s)
			case *cir.Assign:
				out = append(out, &cir.Assign{LHS: rewriteExpr(s.LHS), RHS: rewriteExpr(s.RHS)})
			case *cir.If:
				out = append(out, &cir.If{Cond: rewriteExpr(s.Cond), Then: rewrite(s.Then), Else: rewrite(s.Else)})
			case *cir.Loop:
				out = append(out, &cir.Loop{
					ID: s.ID, Var: s.Var,
					Lo: rewriteExpr(s.Lo), Hi: rewriteExpr(s.Hi), Step: s.Step,
					Body: rewrite(s.Body), Opt: s.Opt, Reduction: s.Reduction,
				})
			case *cir.While:
				out = append(out, &cir.While{Cond: rewriteExpr(s.Cond), Body: rewrite(s.Body)})
			default:
				out = append(out, s)
			}
		}
		return out
	}
	return rewrite(b)
}

// addTaskOffset builds task*len + idx with trivial folds.
func addTaskOffset(idx cir.Expr, ln int, taskRef func() cir.Expr) cir.Expr {
	var off cir.Expr
	if ln == 1 {
		off = taskRef()
	} else {
		off = &cir.Binary{K: cir.Int, Op: cir.Mul, L: taskRef(), R: &cir.IntLit{K: cir.Int, Val: int64(ln)}}
	}
	if lit, ok := idx.(*cir.IntLit); ok && lit.Val == 0 {
		return off
	}
	return &cir.Binary{K: cir.Int, Op: cir.Add, L: off, R: idx}
}

// Helpers over blocks.

func isLocalArray(b cir.Block, name string) bool {
	found := false
	var walk func(b cir.Block)
	walk = func(b cir.Block) {
		for _, s := range b {
			switch s := s.(type) {
			case *cir.ArrDecl:
				if s.Name == name {
					found = true
				}
			case *cir.If:
				walk(s.Then)
				walk(s.Else)
			case *cir.Loop:
				walk(s.Body)
			case *cir.While:
				walk(s.Body)
			}
		}
	}
	walk(b)
	return found
}

// arrayLenIn finds the element count of an array: a local declaration or
// an input buffer.
func arrayLenIn(b cir.Block, name string, inLens map[string]int) (int, bool) {
	if n, ok := inLens[name]; ok {
		return n, true
	}
	n, found := 0, false
	var walk func(b cir.Block)
	walk = func(b cir.Block) {
		for _, s := range b {
			switch s := s.(type) {
			case *cir.ArrDecl:
				if s.Name == name {
					n, found = s.Len, true
				}
			case *cir.If:
				walk(s.Then)
				walk(s.Else)
			case *cir.Loop:
				walk(s.Body)
			case *cir.While:
				walk(s.Body)
			}
		}
	}
	walk(b)
	return n, found
}

func removeArrDecl(b cir.Block, name string) cir.Block {
	out := make(cir.Block, 0, len(b))
	for _, s := range b {
		switch s := s.(type) {
		case *cir.ArrDecl:
			if s.Name == name {
				continue
			}
		case *cir.If:
			s.Then = removeArrDecl(s.Then, name)
			s.Else = removeArrDecl(s.Else, name)
		case *cir.Loop:
			s.Body = removeArrDecl(s.Body, name)
		case *cir.While:
			s.Body = removeArrDecl(s.Body, name)
		}
		out = append(out, s)
	}
	return out
}

// renameArray renames a buffer in declarations and accesses.
func renameArray(b cir.Block, from, to string) cir.Block {
	var rewriteExpr func(e cir.Expr) cir.Expr
	rewriteExpr = func(e cir.Expr) cir.Expr {
		switch e := e.(type) {
		case nil:
			return nil
		case *cir.Index:
			arr := e.Arr
			if arr == from {
				arr = to
			}
			return &cir.Index{K: e.K, Arr: arr, Idx: rewriteExpr(e.Idx), Pos: e.Pos}
		case *cir.Unary:
			return &cir.Unary{Op: e.Op, X: rewriteExpr(e.X)}
		case *cir.Binary:
			return &cir.Binary{K: e.K, Op: e.Op, L: rewriteExpr(e.L), R: rewriteExpr(e.R)}
		case *cir.Cast:
			return &cir.Cast{To: e.To, X: rewriteExpr(e.X)}
		case *cir.Cond:
			return &cir.Cond{C: rewriteExpr(e.C), T: rewriteExpr(e.T), F: rewriteExpr(e.F)}
		case *cir.Call:
			args := make([]cir.Expr, len(e.Args))
			for i, a := range e.Args {
				args[i] = rewriteExpr(a)
			}
			return &cir.Call{K: e.K, Name: e.Name, Args: args}
		default:
			return e
		}
	}
	var rewrite func(b cir.Block) cir.Block
	rewrite = func(b cir.Block) cir.Block {
		out := make(cir.Block, 0, len(b))
		for _, s := range b {
			switch s := s.(type) {
			case *cir.Decl:
				out = append(out, &cir.Decl{Name: s.Name, K: s.K, Init: rewriteExpr(s.Init)})
			case *cir.ArrDecl:
				name := s.Name
				if name == from {
					name = to
				}
				out = append(out, &cir.ArrDecl{Name: name, Elem: s.Elem, Len: s.Len})
			case *cir.Assign:
				out = append(out, &cir.Assign{LHS: rewriteExpr(s.LHS), RHS: rewriteExpr(s.RHS)})
			case *cir.If:
				out = append(out, &cir.If{Cond: rewriteExpr(s.Cond), Then: rewrite(s.Then), Else: rewrite(s.Else)})
			case *cir.Loop:
				out = append(out, &cir.Loop{
					ID: s.ID, Var: s.Var, Lo: rewriteExpr(s.Lo), Hi: rewriteExpr(s.Hi),
					Step: s.Step, Body: rewrite(s.Body), Opt: s.Opt, Reduction: s.Reduction,
				})
			case *cir.While:
				out = append(out, &cir.While{Cond: rewriteExpr(s.Cond), Body: rewrite(s.Body)})
			default:
				out = append(out, s)
			}
		}
		return out
	}
	return rewrite(b)
}

// copyLoop builds `for (v = 0; v < n; v++) dst[v] = src[v];`.
func copyLoop(dst, src string, k cir.Kind, n int, v string) *cir.Loop {
	return &cir.Loop{
		Var:  v,
		Lo:   &cir.IntLit{K: cir.Int, Val: 0},
		Hi:   &cir.IntLit{K: cir.Int, Val: int64(n)},
		Step: 1,
		Body: cir.Block{&cir.Assign{
			LHS: &cir.Index{K: k, Arr: dst, Idx: &cir.VarRef{K: cir.Int, Name: v}},
			RHS: &cir.Index{K: k, Arr: src, Idx: &cir.VarRef{K: cir.Int, Name: v}},
		}},
	}
}
