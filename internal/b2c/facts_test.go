package b2c

import (
	"strings"
	"testing"

	"s2fa/internal/cir"
)

// rangeSrc computes small values into an Int output buffer, so the
// abstract interpreter can prove a range far narrower than the element
// kind and ValueBits can shrink the storage width.
const rangeSrc = `
class Scale extends Accelerator[Array[Int], Array[Int]] {
  val id: String = "scale"
  val inSizes: Array[Int] = Array(8)
  def call(in: Array[Int]): Array[Int] = {
    val out: Array[Int] = new Array[Int](8)
    for (i <- 0 until 8) {
      out(i) = i * 3
    }
    out
  }
}
`

func TestParamValueRangesSeeded(t *testing.T) {
	cls := compileSrc(t, rangeSrc)
	k, err := Compile(cls)
	if err != nil {
		t.Fatalf("b2c compile: %v", err)
	}
	in := k.Param("in")
	if in == nil {
		t.Fatal("no in param")
	}
	if !in.ValKnown || in.ValLo != -2147483648 || in.ValHi != 2147483647 {
		t.Errorf("in range = [%v,%v] known=%v, want full Int range", in.ValLo, in.ValHi, in.ValKnown)
	}
	if bits := in.ValueBits(); bits != 32 {
		t.Errorf("in ValueBits = %d, want 32", bits)
	}
	out := k.Param("out")
	if out == nil {
		t.Fatal("no out param")
	}
	// Loop writes i*3 for i in [0,7]; allocation zero-fill keeps 0 inside.
	if !out.ValKnown || out.ValLo != 0 || out.ValHi != 21 {
		t.Errorf("out range = [%v,%v] known=%v, want [0,21]", out.ValLo, out.ValHi, out.ValKnown)
	}
	if bits := out.ValueBits(); bits != 8 {
		t.Errorf("out ValueBits = %d, want 8 (proven [0,21] in an Int buffer)", bits)
	}
}

// lengthSrc reads the extent of an input array, which only the abstract
// interpreter can resolve (the syntactic table covers locals and statics),
// and derives a loop bound from it through a division the lifter cannot
// fold syntactically.
const lengthSrc = `
class Half extends Accelerator[Array[Int], Array[Int]] {
  val id: String = "half"
  val inSizes: Array[Int] = Array(8)
  def call(in: Array[Int]): Array[Int] = {
    val half: Int = in.length / 2
    val out: Array[Int] = new Array[Int](8)
    for (i <- 0 until 8) {
      out(i) = in(i) + half
    }
    out
  }
}
`

func TestFactArrayLenAndStoredConstFold(t *testing.T) {
	cls := compileSrc(t, lengthSrc)
	k, err := Compile(cls)
	if err != nil {
		t.Fatalf("b2c compile: %v", err)
	}
	// The store of `half` must have collapsed to the proven constant, so
	// the generated C carries a literal, not a division chain.
	src := cir.Print(k)
	if !strings.Contains(src, "half = 4;") {
		t.Errorf("generated C does not fold half to its proven constant:\n%s", src)
	}
	if strings.Contains(src, "/ 2") {
		t.Errorf("generated C still divides at runtime:\n%s", src)
	}
}

func TestValueBitsWidths(t *testing.T) {
	cases := []struct {
		p    cir.Param
		want int
	}{
		{cir.Param{Elem: cir.Int}, 32},
		{cir.Param{Elem: cir.Int, ValKnown: true, ValLo: 0, ValHi: 21}, 8},
		{cir.Param{Elem: cir.Int, ValKnown: true, ValLo: -129, ValHi: 0}, 16},
		{cir.Param{Elem: cir.Int, ValKnown: true, ValLo: 0, ValHi: 70000}, 32},
		{cir.Param{Elem: cir.Long, ValKnown: true, ValLo: 0, ValHi: 1e12}, 64},
		{cir.Param{Elem: cir.Double, ValKnown: true, ValLo: 0, ValHi: 1}, 64},
		{cir.Param{Elem: cir.Char, ValKnown: true, ValLo: 0, ValHi: 3}, 8},
	}
	for i, c := range cases {
		if got := c.p.ValueBits(); got != c.want {
			t.Errorf("case %d: ValueBits = %d, want %d", i, got, c.want)
		}
	}
}
