package b2c

import (
	"fmt"
	"strings"

	"s2fa/internal/absint"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/compile"
	"s2fa/internal/lint"
	"s2fa/internal/obs"
)

// Compile translates a kernel class to a complete HLS-C kernel: the
// decompiled call method (with composite types flattened), wrapped in the
// RDD-pattern task-loop template, with the optional reduce combiner
// inlined. The result is functionally equivalent to the JVM semantics of
// the class — a property the test suite checks by differential execution.
func Compile(cls *bytecode.Class) (*cir.Kernel, error) {
	return CompileTraced(cls, nil)
}

// CompileTraced is Compile with pipeline tracing: the bytecode verifier,
// the abstract interpreter (with per-method fixpoint iteration/widening
// counts), and the lint gate each get a span under the b2c compile span.
// A nil trace is free.
func CompileTraced(cls *bytecode.Class, tr *obs.Trace) (*cir.Kernel, error) {
	return CompileScratch(cls, tr, nil)
}

// CompileScratch is CompileTraced with reusable verifier and analyzer
// buffers drawn from sc. A nil sc behaves exactly like CompileTraced.
func CompileScratch(cls *bytecode.Class, tr *obs.Trace, sc *compile.Scratch) (*cir.Kernel, error) {
	outer := tr.Begin("b2c", "compile", obs.Str("class", cls.Name))
	defer outer.End()

	vs := tr.Begin("bytecode", "verify")
	err := bytecode.VerifyClassScratch(cls, sc)
	vs.End(obs.Bool("ok", err == nil))
	if err != nil {
		return nil, err
	}
	// Abstract interpretation supplies value-range and extent facts the
	// syntactic pipeline below cannot see: per-store constants fold into
	// literals (constant trip counts), output array extents resolve when
	// the dataflow is too indirect for arrayLenIn, and every interface
	// buffer is annotated with the proven range of values it carries
	// (seeding cir bit-width inference and the design-space restriction).
	// The class just verified, so analysis cannot fail; a nil facts value
	// simply disables the extra precision.
	as := tr.Begin("absint", "analyze")
	facts, err := absint.AnalyzeClassScratch(cls, sc)
	if err != nil {
		facts = nil
	}
	as.End(obs.Bool("ok", facts != nil))
	if tr.Enabled() && facts != nil {
		emitFixpoint(tr, "call", facts.Call)
		emitFixpoint(tr, "reduce", facts.Reduce)
	}
	return compileVerified(cls, facts, tr)
}

// CompileVerified compiles a class that is already verified and analyzed,
// skipping the verifier and abstract-interpretation stages: the compile
// cache's miss path, which computes the absint facts while fingerprinting
// and must not pay for them twice.
func CompileVerified(cls *bytecode.Class, facts *absint.ClassFacts, tr *obs.Trace) (*cir.Kernel, error) {
	outer := tr.Begin("b2c", "compile", obs.Str("class", cls.Name))
	defer outer.End()
	return compileVerified(cls, facts, tr)
}

func compileVerified(cls *bytecode.Class, facts *absint.ClassFacts, tr *obs.Trace) (*cir.Kernel, error) {
	callFacts := methodFacts(facts, cls.Call)
	callBody, callLift, err := decompile(cls, cls.Call, callFacts)
	if err != nil {
		return nil, err
	}

	k := &cir.Kernel{
		Name:       sanitizeName(cls.ID),
		Pattern:    cls.Pattern(),
		TaskLoopID: "L0",
	}
	for _, s := range cls.Statics {
		if s.Type.Array {
			k.Globals = append(k.Globals, cir.Global{Name: s.Name, Elem: s.Type.Kind, Data: s.Data})
		}
	}

	f := &flattener{cls: cls, kernel: k, facts: facts}
	if err := f.buildParams(callLift); err != nil {
		return nil, err
	}
	taskBody, err := f.rewriteCallBody(callBody)
	if err != nil {
		return nil, err
	}

	if cls.Reduce != nil {
		redStmts, err := f.inlineReduce(cls)
		if err != nil {
			return nil, err
		}
		taskBody = append(taskBody, redStmts...)
	}

	taskBody = f.indexByTask(taskBody)
	task := &cir.Loop{
		ID:   "L0",
		Var:  taskVar,
		Lo:   &cir.IntLit{K: cir.Int, Val: 0},
		Hi:   &cir.VarRef{K: cir.Int, Name: "N"},
		Step: 1,
		Body: taskBody,
	}
	k.Body = cir.Block{task}
	assignLoopIDs(k)

	// Static verification gate: a lint error on a freshly generated kernel
	// (undeclared variable, provable out-of-bounds subscript, broken
	// structural invariant) is a compiler bug, not a user error — fail the
	// compilation instead of shipping C that the differential tests would
	// only catch dynamically. Warnings (zero-default reads etc.) pass.
	ls := tr.Begin("lint", "gate")
	errs := lint.Lint(k).Errors()
	ls.End(obs.Int("errors", len(errs)))
	if len(errs) > 0 {
		return nil, fmt.Errorf("b2c: generated kernel %s fails static verification:\n%s", k.Name, errs)
	}
	return k, nil
}

// emitFixpoint reports one method's abstract-interpretation work.
func emitFixpoint(tr *obs.Trace, which string, mf *absint.MethodFacts) {
	if mf == nil {
		return
	}
	fp := mf.Fixpoint
	tr.Event("absint", "fixpoint",
		obs.Str("method", which),
		obs.Int("iterations", fp.Iterations),
		obs.Int("joins", fp.Joins),
		obs.Int("widenings", fp.Widenings),
		obs.Int("array_widenings", fp.ArrayWidenings))
}

// taskVar is the compiler-inserted task-loop induction variable (the `i`
// of Code 3).
const taskVar = "_task"

// methodFacts selects the per-method fact set for m, nil-safe.
func methodFacts(cf *absint.ClassFacts, m *bytecode.Method) *absint.MethodFacts {
	if cf == nil {
		return nil
	}
	if cf.Reduce != nil && cf.Reduce.Method == m {
		return cf.Reduce
	}
	if cf.Call != nil && cf.Call.Method == m {
		return cf.Call
	}
	return nil
}

// decompile runs the CFG/lift/structure pipeline for one method and
// returns its structured body (with counted loops recovered and scalar
// locals declared). When facts is non-nil, stores whose abstract value is
// a proven constant lift as integer literals, so downstream trip-count
// and bounds analyses see constants the syntax alone would hide.
func decompile(cls *bytecode.Class, m *bytecode.Method, facts *absint.MethodFacts) (cir.Block, *lifter, error) {
	g, err := buildCFG(m)
	if err != nil {
		return nil, nil, err
	}
	lf := newLifter(cls, m, g)
	lf.facts = facts
	if err := lf.liftAll(); err != nil {
		return nil, nil, err
	}
	body, err := structureMethod(g, lf.blocks)
	if err != nil {
		return nil, nil, err
	}
	body = recoverCountedLoops(body)

	// Declare scalar locals ahead of first use (JVM locals are
	// method-scoped). Loop induction variables recovered above are
	// declared by their loops.
	loopVars := map[string]bool{}
	collectLoopVars(body, loopVars)
	var decls cir.Block
	for _, slot := range lf.declared {
		name := lf.localName(slot)
		if loopVars[name] && refsOutsideLoopVar(body, name) == 0 {
			continue
		}
		decls = append(decls, &cir.Decl{Name: name, K: m.LocalTypes[slot].Kind})
	}
	return append(decls, body...), lf, nil
}

func collectLoopVars(b cir.Block, out map[string]bool) {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Loop:
			out[s.Var] = true
			collectLoopVars(s.Body, out)
		case *cir.If:
			collectLoopVars(s.Then, out)
			collectLoopVars(s.Else, out)
		case *cir.While:
			collectLoopVars(s.Body, out)
		}
	}
}

// refsOutsideLoopVar counts references to name that are not covered by a
// loop declaring it as its induction variable.
func refsOutsideLoopVar(b cir.Block, name string) int {
	n := 0
	var walkExpr func(e cir.Expr)
	walkExpr = func(e cir.Expr) {
		switch e := e.(type) {
		case *cir.VarRef:
			if e.Name == name {
				n++
			}
		case *cir.Index:
			walkExpr(e.Idx)
		case *cir.Unary:
			walkExpr(e.X)
		case *cir.Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *cir.Cast:
			walkExpr(e.X)
		case *cir.Cond:
			walkExpr(e.C)
			walkExpr(e.T)
			walkExpr(e.F)
		case *cir.Call:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(b cir.Block)
	walk = func(b cir.Block) {
		for _, s := range b {
			switch s := s.(type) {
			case *cir.Decl:
				walkExpr(s.Init)
			case *cir.Assign:
				walkExpr(s.LHS)
				walkExpr(s.RHS)
			case *cir.If:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *cir.Loop:
				if s.Var == name {
					continue // fully scoped by this loop
				}
				walkExpr(s.Lo)
				walkExpr(s.Hi)
				walk(s.Body)
			case *cir.While:
				walkExpr(s.Cond)
				walk(s.Body)
			case *cir.Return:
				walkExpr(s.Val)
			}
		}
	}
	walk(b)
	return n
}

// recoverCountedLoops rewrites the canonical decompiled pattern
//
//	i = lo; while (i < hi) { body...; i = i + step }
//
// into a canonical counted Loop so the design-space machinery sees trip
// counts. Applied recursively.
func recoverCountedLoops(b cir.Block) cir.Block {
	var out cir.Block
	for i := 0; i < len(b); i++ {
		s := b[i]
		switch s := s.(type) {
		case *cir.If:
			out = append(out, &cir.If{
				Cond: s.Cond,
				Then: recoverCountedLoops(s.Then),
				Else: recoverCountedLoops(s.Else),
			})
			continue
		case *cir.While:
			s.Body = recoverCountedLoops(s.Body)
			// Try to pair with a preceding induction initializer.
			if len(out) > 0 {
				if loop, ok := matchCountedLoop(out[len(out)-1], s); ok {
					out[len(out)-1] = loop
					continue
				}
			}
			out = append(out, s)
			continue
		case *cir.Loop:
			s.Body = recoverCountedLoops(s.Body)
		}
		out = append(out, s)
	}
	return out
}

// matchCountedLoop recognizes init+while as a counted loop.
func matchCountedLoop(init cir.Stmt, w *cir.While) (*cir.Loop, bool) {
	asn, ok := init.(*cir.Assign)
	if !ok {
		return nil, false
	}
	iv, ok := asn.LHS.(*cir.VarRef)
	if !ok {
		return nil, false
	}
	cond, ok := w.Cond.(*cir.Binary)
	if !ok || (cond.Op != cir.Lt && cond.Op != cir.Le) {
		return nil, false
	}
	cl, ok := cond.L.(*cir.VarRef)
	if !ok || cl.Name != iv.Name {
		return nil, false
	}
	if len(w.Body) == 0 {
		return nil, false
	}
	last, ok := w.Body[len(w.Body)-1].(*cir.Assign)
	if !ok {
		return nil, false
	}
	lv, ok := last.LHS.(*cir.VarRef)
	if !ok || lv.Name != iv.Name {
		return nil, false
	}
	inc, ok := last.RHS.(*cir.Binary)
	if !ok || inc.Op != cir.Add {
		return nil, false
	}
	incL, okL := inc.L.(*cir.VarRef)
	step, okR := inc.R.(*cir.IntLit)
	if !okL || !okR || incL.Name != iv.Name || step.Val <= 0 {
		return nil, false
	}
	body := w.Body[:len(w.Body)-1]
	// The induction variable must not be written elsewhere in the body.
	if writesVar(body, iv.Name) {
		return nil, false
	}
	// No breaks/continues may bind to this loop.
	if containsBreak(body) {
		return nil, false
	}
	hi := cond.R
	if cond.Op == cir.Le {
		hi = &cir.Binary{K: cir.Int, Op: cir.Add, L: hi, R: &cir.IntLit{K: cir.Int, Val: 1}}
		hi = foldConst(hi)
	}
	return &cir.Loop{
		Var:  iv.Name,
		Lo:   asn.RHS,
		Hi:   hi,
		Step: step.Val,
		Body: body,
	}, true
}

func writesVar(b cir.Block, name string) bool {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Assign:
			if vr, ok := s.LHS.(*cir.VarRef); ok && vr.Name == name {
				return true
			}
		case *cir.If:
			if writesVar(s.Then, name) || writesVar(s.Else, name) {
				return true
			}
		case *cir.Loop:
			if s.Var == name || writesVar(s.Body, name) {
				return true
			}
		case *cir.While:
			if writesVar(s.Body, name) {
				return true
			}
		}
	}
	return false
}

// foldConst folds integer-literal arithmetic (used for `to` bounds).
func foldConst(e cir.Expr) cir.Expr {
	bin, ok := e.(*cir.Binary)
	if !ok {
		return e
	}
	l, okL := bin.L.(*cir.IntLit)
	r, okR := bin.R.(*cir.IntLit)
	if !okL || !okR {
		return e
	}
	v, err := cir.EvalBinary(bin.Op, bin.K, cir.IntVal(l.K, l.Val), cir.IntVal(r.K, r.Val))
	if err != nil || v.K.IsFloat() {
		return e
	}
	return &cir.IntLit{K: bin.K, Val: v.I}
}

// assignLoopIDs numbers loops in preorder: L0 (task loop), L1, L2, ...
func assignLoopIDs(k *cir.Kernel) {
	n := 0
	var walk func(b cir.Block)
	walk = func(b cir.Block) {
		for _, s := range b {
			switch s := s.(type) {
			case *cir.Loop:
				s.ID = fmt.Sprintf("L%d", n)
				n++
				walk(s.Body)
			case *cir.If:
				walk(s.Then)
				walk(s.Else)
			case *cir.While:
				walk(s.Body)
			}
		}
	}
	walk(k.Body)
}

func sanitizeName(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "kernel"
	}
	return b.String()
}
