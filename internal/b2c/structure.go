package b2c

import (
	"fmt"

	"s2fa/internal/cir"
)

// structurer reconstructs structured control flow (loops, conditionals)
// from the lifted CFG. Bytecode produced from structured source is always
// reducible, so dominator-based natural-loop detection plus
// immediate-postdominator join analysis suffices — the same strategy
// APARAPI-class decompilers use.
type structurer struct {
	g      *cfg
	blocks []*lifted
	// emitting guards against revisiting an open loop header.
	openLoops map[int]bool
}

// structureMethod produces the structured body of the lifted method.
func structureMethod(g *cfg, blocks []*lifted) (cir.Block, error) {
	st := &structurer{g: g, blocks: blocks, openLoops: map[int]bool{}}
	return st.region(0, -1)
}

// region emits statements starting at block `cur` and stopping when
// control reaches block `stop` (exclusive; -1 means method end).
func (st *structurer) region(cur, stop int) (cir.Block, error) {
	var out cir.Block
	for cur != stop && cur != -1 {
		if body, isHeader := st.g.loopHeaders[cur]; isHeader && !st.openLoops[cur] {
			loopStmt, next, err := st.emitLoop(cur, body)
			if err != nil {
				return nil, err
			}
			out = append(out, loopStmt)
			cur = next
			continue
		}
		b := st.blocks[cur]
		out = append(out, b.stmts...)
		switch b.term.kind {
		case termRet:
			out = append(out, &cir.Return{Val: b.term.ret})
			return out, nil
		case termGoto:
			cur = b.term.target
		case termCond:
			join := st.g.ipdom[cur]
			thenB, err := st.region(b.term.onTrue, join)
			if err != nil {
				return nil, err
			}
			elseB, err := st.region(b.term.onFalse, join)
			if err != nil {
				return nil, err
			}
			out = append(out, &cir.If{Cond: b.term.cond, Then: thenB, Else: elseB})
			cur = join
		default:
			return nil, fmt.Errorf("b2c: block %d has no terminator", cur)
		}
	}
	return out, nil
}

// emitLoop structures the natural loop with the given header. The general
// form is While(true){...} with Break on exit edges; the canonical
// condition-top pattern is simplified afterwards.
func (st *structurer) emitLoop(header int, body map[int]bool) (cir.Stmt, int, error) {
	st.openLoops[header] = true
	defer delete(st.openLoops, header)

	exit := -1
	findExit := func(target int) error {
		if exit == -1 {
			exit = target
			return nil
		}
		if exit != target {
			return fmt.Errorf("b2c: loop at block %d has multiple exit targets (%d and %d): unsupported control flow", header, exit, target)
		}
		return nil
	}
	for id := range body {
		for _, s := range st.g.blocks[id].succs {
			if !body[s] {
				if err := findExit(s); err != nil {
					return nil, -1, err
				}
			}
		}
	}

	stmts, err := st.loopRegion(header, header, body, exit)
	if err != nil {
		return nil, -1, err
	}
	loop := &cir.While{Cond: &cir.IntLit{K: cir.Bool, Val: 1}, Body: stmts}
	return simplifyWhile(loop), exit, nil
}

// loopRegion is like region but runs inside an open loop: an edge back to
// the loop header ends the path (implicit continue at body end), and an
// edge to the exit block emits Break.
func (st *structurer) loopRegion(cur, header int, body map[int]bool, exit int) (cir.Block, error) {
	var out cir.Block
	first := true
	for {
		if cur == exit {
			out = append(out, &cir.Break{})
			return out, nil
		}
		if cur == header && !first {
			return out, nil // back edge: end of iteration
		}
		if !body[cur] {
			return nil, fmt.Errorf("b2c: loop at %d escapes to block %d without a recognized exit", header, cur)
		}
		if innerBody, isHeader := st.g.loopHeaders[cur]; isHeader && cur != header && !st.openLoops[cur] {
			loopStmt, next, err := st.emitLoop(cur, innerBody)
			if err != nil {
				return nil, err
			}
			out = append(out, loopStmt)
			cur = next
			first = false
			continue
		}
		b := st.blocks[cur]
		out = append(out, b.stmts...)
		switch b.term.kind {
		case termRet:
			out = append(out, &cir.Return{Val: b.term.ret})
			return out, nil
		case termGoto:
			cur = b.term.target
			first = false
		case termCond:
			t, f := b.term.onTrue, b.term.onFalse
			// Exit tests: one side leaves the loop.
			if f == exit || !body[f] {
				thenRest, err := st.loopRegion(t, header, body, exit)
				if err != nil {
					return nil, err
				}
				out = append(out, &cir.If{Cond: notExpr(b.term.cond), Then: cir.Block{&cir.Break{}}})
				out = append(out, thenRest...)
				return out, nil
			}
			if t == exit || !body[t] {
				elseRest, err := st.loopRegion(f, header, body, exit)
				if err != nil {
					return nil, err
				}
				out = append(out, &cir.If{Cond: b.term.cond, Then: cir.Block{&cir.Break{}}})
				out = append(out, elseRest...)
				return out, nil
			}
			// Interior conditional: join at the immediate postdominator.
			// When the join stays inside the loop, split there (following
			// both branches to the back edge would duplicate the tails —
			// and cost exponential work on if-chains).
			if join := st.g.ipdom[cur]; join != -1 && body[join] && join != header {
				thenB, err := st.regionWithin(t, join, body)
				if err != nil {
					return nil, err
				}
				elseB, err := st.regionWithin(f, join, body)
				if err != nil {
					return nil, err
				}
				out = append(out, &cir.If{Cond: b.term.cond, Then: thenB, Else: elseB})
				cur = join
				first = false
				continue
			}
			thenB, err := st.loopRegion(t, header, body, exit)
			if err != nil {
				return nil, err
			}
			elseB, err := st.loopRegion(f, header, body, exit)
			if err != nil {
				return nil, err
			}
			out = append(out, &cir.If{Cond: b.term.cond, Then: thenB, Else: elseB})
			return out, nil
		default:
			return nil, fmt.Errorf("b2c: block %d has no terminator", cur)
		}
	}
}

// regionWithin emits a straight-line sub-region of an open loop between
// cur and the join block (both inside the loop, no exits crossed).
func (st *structurer) regionWithin(cur, join int, body map[int]bool) (cir.Block, error) {
	var out cir.Block
	for cur != join {
		if !body[cur] {
			return nil, fmt.Errorf("b2c: conditional arm escapes the loop")
		}
		if innerBody, isHeader := st.g.loopHeaders[cur]; isHeader && !st.openLoops[cur] {
			loopStmt, next, err := st.emitLoop(cur, innerBody)
			if err != nil {
				return nil, err
			}
			out = append(out, loopStmt)
			cur = next
			continue
		}
		b := st.blocks[cur]
		out = append(out, b.stmts...)
		switch b.term.kind {
		case termGoto:
			cur = b.term.target
		case termCond:
			j2 := st.g.ipdom[cur]
			thenB, err := st.regionWithin(b.term.onTrue, j2, body)
			if err != nil {
				return nil, err
			}
			elseB, err := st.regionWithin(b.term.onFalse, j2, body)
			if err != nil {
				return nil, err
			}
			out = append(out, &cir.If{Cond: b.term.cond, Then: thenB, Else: elseB})
			cur = j2
		default:
			return nil, fmt.Errorf("b2c: unexpected terminator inside conditional arm")
		}
	}
	return out, nil
}

// notExpr negates a condition, folding double negation and inverting
// comparisons.
func notExpr(e cir.Expr) cir.Expr {
	switch e := e.(type) {
	case *cir.Unary:
		if e.Op == cir.Not {
			return e.X
		}
	case *cir.Binary:
		var inv cir.BinOp
		switch e.Op {
		case cir.Lt:
			inv = cir.Ge
		case cir.Le:
			inv = cir.Gt
		case cir.Gt:
			inv = cir.Le
		case cir.Ge:
			inv = cir.Lt
		case cir.Eq:
			inv = cir.Ne
		case cir.Ne:
			inv = cir.Eq
		default:
			return &cir.Unary{Op: cir.Not, X: e}
		}
		return &cir.Binary{K: cir.Bool, Op: inv, L: e.L, R: e.R}
	}
	return &cir.Unary{Op: cir.Not, X: e}
}

// simplifyWhile rewrites While(true){ if(!c) break; rest... } into the
// canonical While(c){ rest... } when the loop has exactly that shape and
// no other breaks.
func simplifyWhile(w *cir.While) cir.Stmt {
	if len(w.Body) == 0 {
		return w
	}
	first, ok := w.Body[0].(*cir.If)
	if !ok || len(first.Else) != 0 || len(first.Then) != 1 {
		return w
	}
	if _, isBreak := first.Then[0].(*cir.Break); !isBreak {
		return w
	}
	rest := w.Body[1:]
	if containsBreak(rest) {
		return w
	}
	return &cir.While{Cond: notExpr(first.Cond), Body: rest}
}

func containsBreak(b cir.Block) bool {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Break:
			return true
		case *cir.If:
			if containsBreak(s.Then) || containsBreak(s.Else) {
				return true
			}
		// Breaks inside nested loops bind to those loops.
		case *cir.While, *cir.Loop:
		}
	}
	return false
}
