// Package b2c is the S2FA bytecode-to-C compiler (paper §3.2): it lifts
// JVM-style stack bytecode into the HLS-C IR. The pipeline mirrors the
// heavily modified APARAPI code generator the paper describes:
//
//  1. CFG construction over the bytecode,
//  2. per-block abstract stack interpretation that rebuilds expression
//     trees and statements,
//  3. dominator-based control-flow structuring back to loops and
//     conditionals,
//  4. counted-loop recovery (canonical `for` form with trip counts),
//  5. composite-type flattening: Tuple2 fields become flat kernel buffer
//     arguments, local `new` arrays become static C arrays, and returned
//     tuples become writes through output buffers (Code 2 -> Code 3),
//  6. RDD-pattern template insertion: the outer task loop for `map`, and
//     inlined combiner application for `reduce`.
package b2c

import (
	"fmt"
	"math/bits"

	"s2fa/internal/bytecode"
)

// bblock is one CFG basic block over a bytecode range [start, end).
type bblock struct {
	id         int
	start, end int
	// succs in CFG order; for conditional terminators succs[0] is the
	// branch-taken target and succs[1] the fall-through.
	succs []int
	preds []int
}

// cfg is the control-flow graph of one method.
type cfg struct {
	m      *bytecode.Method
	blocks []*bblock
	// blockAt maps an instruction index (leader) to its block id.
	blockAt map[int]int
	// idom[b] is the immediate dominator block id (-1 for entry).
	idom []int
	// domSets[b] is the full dominator set of block b.
	domSets []bitset
	// ipdom[b] is the immediate postdominator (-1 for virtual exit).
	ipdom []int
	// loopHeaders maps header block id to the set of blocks in its
	// natural loop.
	loopHeaders map[int]map[int]bool
}

// buildCFG partitions the method into basic blocks and computes
// dominators, postdominators, and natural loops.
func buildCFG(m *bytecode.Method) (*cfg, error) {
	n := len(m.Code)
	leaders := map[int]bool{0: true}
	for i, in := range m.Code {
		switch in.Op {
		case bytecode.OpGoto, bytecode.OpBrFalse, bytecode.OpBrTrue:
			leaders[in.Target] = true
			if i+1 < n {
				leaders[i+1] = true
			}
		case bytecode.OpReturn:
			if i+1 < n {
				leaders[i+1] = true
			}
		}
	}
	g := &cfg{m: m, blockAt: map[int]int{}}
	for i := 0; i < n; i++ {
		if leaders[i] {
			b := &bblock{id: len(g.blocks), start: i}
			g.blockAt[i] = b.id
			g.blocks = append(g.blocks, b)
		}
		g.blocks[len(g.blocks)-1].end = i + 1
	}
	for _, b := range g.blocks {
		last := m.Code[b.end-1]
		switch last.Op {
		case bytecode.OpGoto:
			b.succs = []int{g.blockAt[last.Target]}
		case bytecode.OpBrFalse, bytecode.OpBrTrue:
			if b.end >= n {
				return nil, fmt.Errorf("b2c: %s: conditional branch at method end", m.Name)
			}
			b.succs = []int{g.blockAt[last.Target], g.blockAt[b.end]}
		case bytecode.OpReturn:
			// no successors
		default:
			if b.end < n {
				b.succs = []int{g.blockAt[b.end]}
			} else {
				return nil, fmt.Errorf("b2c: %s: code falls off the end", m.Name)
			}
		}
		for _, s := range b.succs {
			g.blocks[s].preds = append(g.blocks[s].preds, b.id)
		}
	}
	g.computeDominators()
	g.computePostdominators()
	if err := g.findLoops(); err != nil {
		return nil, err
	}
	return g, nil
}

// computeDominators uses the iterative dataflow algorithm over bitsets —
// the CFGs here are small, so the whole lattice fits in a handful of
// words and each meet is a few AND instructions.
func (g *cfg) computeDominators() {
	n := len(g.blocks)
	dom, inter := newBitsetRows(n)
	for i := 1; i < n; i++ {
		dom[i].fill(n)
	}
	dom[0].set(0)
	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			b := g.blocks[i]
			inter.fill(n)
			for _, p := range b.preds {
				inter.intersect(dom[p])
			}
			if len(b.preds) == 0 {
				inter.clear()
			}
			inter.set(i)
			if !inter.equal(dom[i]) {
				dom[i].copyFrom(inter)
				changed = true
			}
		}
	}
	g.idom = immediateOf(dom)
	g.domSets = dom
}

// computePostdominators mirrors computeDominators on the reversed graph
// with a virtual exit joining all return blocks.
func (g *cfg) computePostdominators() {
	n := len(g.blocks)
	pdom, inter := newBitsetRows(n)
	exits := make([]bool, n)
	for _, b := range g.blocks {
		if len(b.succs) == 0 {
			exits[b.id] = true
		}
	}
	for i := 0; i < n; i++ {
		if exits[i] {
			pdom[i].set(i)
		} else {
			pdom[i].fill(n)
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if exits[i] {
				continue
			}
			b := g.blocks[i]
			inter.fill(n)
			for _, s := range b.succs {
				inter.intersect(pdom[s])
			}
			if len(b.succs) == 0 {
				inter.clear()
			}
			inter.set(i)
			if !inter.equal(pdom[i]) {
				pdom[i].copyFrom(inter)
				changed = true
			}
		}
	}
	g.ipdom = immediateOf(pdom)
}

// immediateOf extracts the immediate (post)dominator from full sets: the
// member (other than the block itself) with the largest set. Dominators
// of a block form a chain, so set sizes along it are strictly increasing
// and the choice is unique.
func immediateOf(sets []bitset) []int {
	n := len(sets)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = -1
		bestSize := -1
		for d := 0; d < n; d++ {
			if d == i || !sets[i].has(d) {
				continue
			}
			if c := sets[d].count(); c > bestSize {
				bestSize = c
				out[i] = d
			}
		}
	}
	return out
}

// findLoops identifies natural loops from back edges (t -> h with h
// dominating t). Irreducible flow is rejected, as a real decompiler
// would.
func (g *cfg) findLoops() error {
	g.loopHeaders = map[int]map[int]bool{}
	for _, b := range g.blocks {
		for _, s := range b.succs {
			if g.dominates(s, b.id) {
				// back edge b -> s
				body := g.loopHeaders[s]
				if body == nil {
					body = map[int]bool{s: true}
					g.loopHeaders[s] = body
				}
				// Collect the natural loop: all blocks reaching b
				// without passing through s.
				var stack []int
				if !body[b.id] {
					body[b.id] = true
					stack = append(stack, b.id)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range g.blocks[x].preds {
						if !body[p] {
							body[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	// Reducibility check: every loop's entry edges must all target the
	// header.
	for h, body := range g.loopHeaders {
		for bID := range body {
			if bID == h {
				continue
			}
			for _, p := range g.blocks[bID].preds {
				if !body[p] {
					return fmt.Errorf("b2c: %s: irreducible control flow entering loop at block %d", g.m.Name, bID)
				}
			}
		}
	}
	return nil
}

func (g *cfg) dominates(a, b int) bool {
	return g.domSets[b].has(a)
}

// bitset is a little-endian bit vector over block ids.
type bitset []uint64

// newBitsetRows carves n zeroed row bitsets plus one scratch row out of a
// single allocation.
func newBitsetRows(n int) ([]bitset, bitset) {
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	buf := make([]uint64, (n+1)*words)
	rows := make([]bitset, n)
	for i := range rows {
		rows[i] = buf[i*words : (i+1)*words]
	}
	return rows, buf[n*words:]
}

func (s bitset) set(i int)      { s[i>>6] |= 1 << (i & 63) }
func (s bitset) has(i int) bool { return s[i>>6]&(1<<(i&63)) != 0 }

// fill sets bits [0, n).
func (s bitset) fill(n int) {
	for i := range s {
		s[i] = ^uint64(0)
	}
	if rem := n & 63; rem != 0 {
		s[len(s)-1] = (1 << rem) - 1
	}
}

func (s bitset) clear() {
	for i := range s {
		s[i] = 0
	}
}

func (s bitset) intersect(o bitset) {
	for i := range s {
		s[i] &= o[i]
	}
}

func (s bitset) copyFrom(o bitset) { copy(s, o) }

func (s bitset) equal(o bitset) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s bitset) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}
