package b2c

import (
	"fmt"

	"s2fa/internal/absint"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// Marker call names used for values that only exist transiently on the
// abstract stack during lifting. They never survive into the final
// kernel.
const (
	markNewArray = "__newarray"
	markTuple    = "__tuple"
)

// terminator describes how a lifted block ends.
type termKind uint8

const (
	termFall termKind = iota
	termGoto
	termCond
	termRet
)

type terminator struct {
	kind termKind
	// cond is the branch condition; onTrue/onFalse are block ids.
	cond            cir.Expr
	onTrue, onFalse int
	target          int // goto / fall target
	ret             cir.Expr
}

// lifted is one block lifted to IR statements.
type lifted struct {
	stmts cir.Block
	term  terminator
}

// lifter performs abstract stack interpretation over one method.
type lifter struct {
	cls *bytecode.Class
	m   *bytecode.Method
	g   *cfg
	// arrayLens maps array handle name to its element count, used to
	// constant-fold .length (fixed data layouts).
	arrayLens map[string]int
	// arrDecls maps local slot to the ArrDecl it produced, for output
	// aliasing.
	localArrays map[string]*cir.ArrDecl
	// declared records scalar local slots in first-write order.
	declared []int
	declSeen map[int]bool
	// tupleParams maps a local name to its tuple descriptor (method
	// parameters of tuple type).
	tupleParams map[string]bytecode.TypeDesc
	// aliases maps array-typed locals to the buffer they are bound to
	// (e.g. `val a = in._1` makes a an alias of in_1).
	aliases map[string]string
	blocks  []*lifted
	// facts, when non-nil, carries the abstract interpreter's per-store
	// value ranges for this method; proven-constant integer stores lift
	// as literals.
	facts *absint.MethodFacts
}

func newLifter(cls *bytecode.Class, m *bytecode.Method, g *cfg) *lifter {
	lf := &lifter{
		cls:         cls,
		m:           m,
		g:           g,
		arrayLens:   map[string]int{},
		localArrays: map[string]*cir.ArrDecl{},
		declSeen:    map[int]bool{},
		tupleParams: map[string]bytecode.TypeDesc{},
	}
	for i, p := range m.Params {
		if p.IsTuple() {
			lf.tupleParams[lf.localName(i)] = p
		}
	}
	for _, s := range cls.Statics {
		if s.Type.Array {
			lf.arrayLens[s.Name] = len(s.Data)
		}
	}
	return lf
}

// posAt converts the bytecode line-number-table entry for pc into a cir
// source position (zero Pos when the table has no entry).
func (lf *lifter) posAt(pc int) cir.Pos {
	p := lf.m.PosAt(pc)
	if !p.Valid() {
		return cir.Pos{}
	}
	return cir.Pos{Line: p.Line, Col: p.Col}
}

// localName returns the source-level name of a local slot.
func (lf *lifter) localName(slot int) string {
	if slot < len(lf.m.LocalNames) && lf.m.LocalNames[slot] != "" {
		return lf.m.LocalNames[slot]
	}
	return fmt.Sprintf("loc%d", slot)
}

// paramFieldName names a flattened tuple field buffer: in._2 -> in_2.
func paramFieldName(param string, field int) string {
	return fmt.Sprintf("%s_%d", param, field+1)
}

// liftAll lifts every block.
func (lf *lifter) liftAll() error {
	lf.blocks = make([]*lifted, len(lf.g.blocks))
	for _, b := range lf.g.blocks {
		l, err := lf.liftBlock(b)
		if err != nil {
			return err
		}
		lf.blocks[b.id] = l
	}
	return nil
}

// liftBlock rebuilds expressions and statements for one basic block.
func (lf *lifter) liftBlock(b *bblock) (*lifted, error) {
	out := &lifted{term: terminator{kind: termFall}}
	if len(b.succs) == 1 {
		out.term = terminator{kind: termGoto, target: b.succs[0]}
	}
	var stack []cir.Expr
	push := func(e cir.Expr) { stack = append(stack, e) }
	pop := func() (cir.Expr, error) {
		if len(stack) == 0 {
			return nil, fmt.Errorf("b2c: %s: stack underflow during lifting", lf.m.Name)
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e, nil
	}

	for pc := b.start; pc < b.end; pc++ {
		in := lf.m.Code[pc]
		switch in.Op {
		case bytecode.OpConst:
			if in.Kind.IsFloat() {
				push(&cir.FloatLit{K: in.Kind, Val: in.Val.F})
			} else {
				push(&cir.IntLit{K: in.Kind, Val: in.Val.I})
			}
		case bytecode.OpLoad:
			t := lf.m.LocalTypes[in.A]
			name := lf.localName(in.A)
			switch {
			case t.IsTuple():
				push(&cir.VarRef{K: cir.Void, Name: name})
			case t.Array:
				push(&cir.VarRef{K: t.Kind, Name: name})
			default:
				push(&cir.VarRef{K: t.Kind, Name: name})
			}
		case bytecode.OpStore:
			v, err := pop()
			if err != nil {
				return nil, err
			}
			if err := lf.store(out, pc, in.A, v); err != nil {
				return nil, err
			}
		case bytecode.OpALoad:
			idx, err := pop()
			if err != nil {
				return nil, err
			}
			arr, err := pop()
			if err != nil {
				return nil, err
			}
			name, err := lf.arrayName(arr)
			if err != nil {
				return nil, err
			}
			push(&cir.Index{K: in.Kind, Arr: name, Idx: idx, Pos: lf.posAt(pc)})
		case bytecode.OpAStore:
			val, err := pop()
			if err != nil {
				return nil, err
			}
			idx, err := pop()
			if err != nil {
				return nil, err
			}
			arr, err := pop()
			if err != nil {
				return nil, err
			}
			name, err := lf.arrayName(arr)
			if err != nil {
				return nil, err
			}
			elemK := in.Kind
			out.stmts = append(out.stmts, &cir.Assign{
				LHS: &cir.Index{K: elemK, Arr: name, Idx: idx, Pos: lf.posAt(pc)},
				RHS: val,
			})
		case bytecode.OpArrayLen:
			arr, err := pop()
			if err != nil {
				return nil, err
			}
			name, err := lf.arrayName(arr)
			if err != nil {
				return nil, err
			}
			n, ok := lf.arrayLens[name]
			if !ok {
				n, ok = lf.factArrayLen(name)
			}
			if !ok {
				return nil, fmt.Errorf("b2c: %s: length of array %q unknown at compile time", lf.m.Name, name)
			}
			push(&cir.IntLit{K: cir.Int, Val: int64(n)})
		case bytecode.OpNewArray:
			ln, err := pop()
			if err != nil {
				return nil, err
			}
			lit, ok := ln.(*cir.IntLit)
			if !ok {
				return nil, fmt.Errorf("b2c: %s: new array with non-constant size (paper §3.3)", lf.m.Name)
			}
			push(&cir.Call{K: in.Kind, Name: markNewArray, Args: []cir.Expr{lit}})
		case bytecode.OpGetField:
			tup, err := pop()
			if err != nil {
				return nil, err
			}
			vr, ok := tup.(*cir.VarRef)
			if !ok {
				return nil, fmt.Errorf("b2c: %s: getfield on non-parameter tuple expression", lf.m.Name)
			}
			desc, isTupleParam := lf.tupleParams[vr.Name]
			if !isTupleParam {
				return nil, fmt.Errorf("b2c: %s: getfield on %q, which is not a tuple parameter", lf.m.Name, vr.Name)
			}
			ft := desc.Tuple[in.A]
			name := paramFieldName(vr.Name, in.A)
			push(&cir.VarRef{K: ft.Kind, Name: name})
		case bytecode.OpNewTuple:
			fields := make([]cir.Expr, in.A)
			for i := in.A - 1; i >= 0; i-- {
				f, err := pop()
				if err != nil {
					return nil, err
				}
				fields[i] = f
			}
			push(&cir.Call{K: cir.Void, Name: markTuple, Args: fields})
		case bytecode.OpGetStatic:
			push(&cir.VarRef{K: in.Kind, Name: in.Sym})
		case bytecode.OpBin:
			r, err := pop()
			if err != nil {
				return nil, err
			}
			l, err := pop()
			if err != nil {
				return nil, err
			}
			k := in.Kind
			if in.Bin.IsCompare() {
				push(&cir.Binary{K: cir.Bool, Op: in.Bin, L: l, R: r})
			} else if in.Bin.IsLogical() {
				// Eager logical forms become bitwise on bools.
				op := cir.And
				if in.Bin == cir.LOr {
					op = cir.Or
				}
				push(&cir.Binary{K: cir.Bool, Op: op, L: l, R: r})
			} else {
				push(&cir.Binary{K: k, Op: in.Bin, L: l, R: r})
			}
		case bytecode.OpUn:
			x, err := pop()
			if err != nil {
				return nil, err
			}
			push(&cir.Unary{Op: in.Un, X: x})
		case bytecode.OpCast:
			x, err := pop()
			if err != nil {
				return nil, err
			}
			push(&cir.Cast{To: in.Kind, X: x})
		case bytecode.OpIntrin:
			args := make([]cir.Expr, in.A)
			for i := in.A - 1; i >= 0; i-- {
				a, err := pop()
				if err != nil {
					return nil, err
				}
				args[i] = a
			}
			push(&cir.Call{K: in.Kind, Name: in.Sym, Args: args})
		case bytecode.OpGoto:
			out.term = terminator{kind: termGoto, target: lf.g.blockAt[in.Target]}
		case bytecode.OpBrFalse, bytecode.OpBrTrue:
			c, err := pop()
			if err != nil {
				return nil, err
			}
			taken := lf.g.blockAt[in.Target]
			fall := lf.g.blockAt[pc+1]
			t := terminator{kind: termCond, cond: c}
			if in.Op == bytecode.OpBrFalse {
				t.onFalse, t.onTrue = taken, fall
			} else {
				t.onTrue, t.onFalse = taken, fall
			}
			out.term = t
		case bytecode.OpReturn:
			t := terminator{kind: termRet}
			if lf.m.Ret.Kind != cir.Void || lf.m.Ret.Array || lf.m.Ret.IsTuple() {
				v, err := pop()
				if err != nil {
					return nil, err
				}
				t.ret = v
			}
			out.term = t
		default:
			return nil, fmt.Errorf("b2c: %s: unsupported opcode %s", lf.m.Name, in.Op)
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("b2c: %s: %d values left on stack at block boundary", lf.m.Name, len(stack))
	}
	return out, nil
}

// store handles OpStore: scalar assignment, array allocation binding, or
// array aliasing.
func (lf *lifter) store(out *lifted, pc, slot int, v cir.Expr) error {
	t := lf.m.LocalTypes[slot]
	name := lf.localName(slot)
	v = lf.foldStoredConst(pc, t, v)
	if t.IsTuple() {
		return fmt.Errorf("b2c: %s: tuple-typed local %q is unsupported", lf.m.Name, name)
	}
	if t.Array {
		switch v := v.(type) {
		case *cir.Call:
			if v.Name == markNewArray {
				ln := int(v.Args[0].(*cir.IntLit).Val)
				if prev, seen := lf.localArrays[name]; seen {
					if prev.Len != ln || prev.Elem != v.K {
						return fmt.Errorf("b2c: %s: array local %q reallocated with a different shape", lf.m.Name, name)
					}
					return nil
				}
				d := &cir.ArrDecl{Name: name, Elem: v.K, Len: ln}
				lf.localArrays[name] = d
				lf.arrayLens[name] = ln
				out.stmts = append(out.stmts, d)
				return nil
			}
		case *cir.VarRef:
			// Array aliasing: `val a = in._1`. Record the alias by
			// making future loads of this slot resolve to the source.
			src := v.Name
			if prev, seen := lf.aliasOf(name); seen && prev != src {
				return fmt.Errorf("b2c: %s: array local %q rebound from %q to %q (conditional array rebinding is unsupported)", lf.m.Name, name, prev, src)
			}
			lf.setAlias(name, src)
			if n, ok := lf.arrayLens[src]; ok {
				lf.arrayLens[name] = n
			}
			return nil
		}
		return fmt.Errorf("b2c: %s: unsupported array binding for %q", lf.m.Name, name)
	}
	if !lf.declSeen[slot] && slot >= len(lf.m.Params) {
		lf.declSeen[slot] = true
		lf.declared = append(lf.declared, slot)
	}
	out.stmts = append(out.stmts, &cir.Assign{
		LHS: &cir.VarRef{K: t.Kind, Name: name},
		RHS: v,
	})
	return nil
}

// factArrayLen resolves the length of a parameter-rooted array buffer
// from the abstract interpreter's extent facts. The syntactic table only
// knows local allocations and statics; input arrays (whose extents come
// from the class's data-layout template) are proven by analysis instead,
// so `a.length` on a kernel argument constant-folds like any other.
func (lf *lifter) factArrayLen(name string) (int, bool) {
	if lf.facts == nil {
		return 0, false
	}
	for i, p := range lf.m.Params {
		pname := lf.localName(i)
		var origin string
		switch {
		case p.IsTuple():
			for j, ft := range p.Tuple {
				if ft.Array && paramFieldName(pname, j) == name {
					origin = fmt.Sprintf("field#%d", j)
					if i != 0 {
						origin = fmt.Sprintf("param#%d.field#%d", i, j)
					}
				}
			}
		case p.Array && pname == name:
			origin = fmt.Sprintf("param#%d", i)
		}
		if origin == "" {
			continue
		}
		af := lf.facts.Array(origin)
		if af == nil {
			return 0, false
		}
		c, ok := af.Len.ConstInt()
		if !ok || c <= 0 {
			return 0, false
		}
		return int(c), true
	}
	return 0, false
}

// foldStoredConst replaces a stored integer expression with a literal
// when the abstract interpreter proved that this store only ever writes
// a single value. Expressions in this IR are pure, so dropping the
// computation is semantics-preserving; the payoff is that loop bounds
// and subscripts derived from such locals become compile-time constants
// (proven constant trip counts, paper §3.3).
func (lf *lifter) foldStoredConst(pc int, t bytecode.TypeDesc, v cir.Expr) cir.Expr {
	if lf.facts == nil || t.Array || t.IsTuple() || t.Kind.IsFloat() {
		return v
	}
	if _, isLit := v.(*cir.IntLit); isLit {
		return v
	}
	iv, ok := lf.facts.Stored[pc]
	if !ok {
		return v
	}
	c, ok := iv.ConstInt()
	if !ok {
		return v
	}
	return &cir.IntLit{K: t.Kind, Val: c}
}

func (lf *lifter) setAlias(name, src string) {
	if lf.aliases == nil {
		lf.aliases = map[string]string{}
	}
	// Resolve transitively at set time.
	if root, ok := lf.aliases[src]; ok {
		src = root
	}
	lf.aliases[name] = src
}

func (lf *lifter) aliasOf(name string) (string, bool) {
	s, ok := lf.aliases[name]
	return s, ok
}

// arrayName resolves an abstract-stack array handle to its buffer name,
// following aliases.
func (lf *lifter) arrayName(e cir.Expr) (string, error) {
	vr, ok := e.(*cir.VarRef)
	if !ok {
		return "", fmt.Errorf("b2c: %s: array reference is not a named buffer", lf.m.Name)
	}
	if root, ok := lf.aliases[vr.Name]; ok {
		return root, nil
	}
	return vr.Name, nil
}
