package b2c

import (
	"math/rand"
	"strings"
	"testing"

	"s2fa/internal/cir"
	"s2fa/internal/jvmsim"
	"s2fa/internal/kdsl"
)

// diffTest compiles a kernel, runs n random scalar-int tasks through both
// the JVM simulator and the generated C kernel, and compares outputs.
// The kernel must be Accelerator[Int, Int].
func diffTestIntToInt(t *testing.T, src string, inputs []int64) {
	t.Helper()
	cls, err := kdsl.CompileSource(src)
	if err != nil {
		t.Fatalf("kdsl: %v", err)
	}
	k, err := Compile(cls)
	if err != nil {
		t.Fatalf("b2c: %v", err)
	}
	n := len(inputs)
	in := make([]cir.Value, n)
	out := make([]cir.Value, n)
	for i, v := range inputs {
		in[i] = cir.IntVal(cir.Int, v)
		out[i].K = cir.Int
	}
	ev := cir.NewEvaluator(k)
	if err := ev.Execute(n, map[string][]cir.Value{"in": in, "out": out}); err != nil {
		t.Fatalf("eval: %v\n%s", err, cir.Print(k))
	}
	vm := jvmsim.New(cls)
	for i, v := range inputs {
		res, err := vm.Call(jvmsim.Scalar(cir.IntVal(cir.Int, v)))
		if err != nil {
			t.Fatalf("jvm(%d): %v", v, err)
		}
		if res.S.I != out[i].I {
			t.Fatalf("input %d: jvm=%d kernel=%d\n%s", v, res.S.I, out[i].I, cir.Print(k))
		}
	}
}

func TestStructureElseIfChain(t *testing.T) {
	diffTestIntToInt(t, `
class C extends Accelerator[Int, Int] {
  val id: String = "c"
  def call(in: Int): Int = {
    var r: Int = 0
    if (in < 0) {
      r = -1
    } else if (in == 0) {
      r = 0
    } else if (in < 10) {
      r = 1
    } else {
      r = 2
    }
    r
  }
}`, []int64{-5, 0, 3, 50})
}

func TestStructureNestedConditionals(t *testing.T) {
	diffTestIntToInt(t, `
class C extends Accelerator[Int, Int] {
  val id: String = "c"
  def call(in: Int): Int = {
    var r: Int = 0
    if (in > 0) {
      if (in % 2 == 0) {
        r = 10
      } else {
        r = 11
      }
      r = r + 100
    } else {
      r = 7
    }
    r
  }
}`, []int64{-1, 2, 3})
}

func TestStructureWhileWithShortCircuit(t *testing.T) {
	// Multi-block loop condition (&&): exercises the generic
	// While(true)+Break structuring path.
	diffTestIntToInt(t, `
class C extends Accelerator[Int, Int] {
  val id: String = "c"
  def call(in: Int): Int = {
    var i: Int = 0
    var s: Int = 0
    while (i < in && s < 50) {
      s = s + i
      i = i + 1
    }
    s
  }
}`, []int64{0, 5, 100})
}

func TestStructureLogicalOrCondition(t *testing.T) {
	diffTestIntToInt(t, `
class C extends Accelerator[Int, Int] {
  val id: String = "c"
  def call(in: Int): Int = {
    var r: Int = 0
    if (in < 2 || in > 8) {
      r = 1
    }
    if (in > 3 && (in % 2 == 0 || in == 7)) {
      r = r + 10
    }
    r
  }
}`, []int64{0, 1, 4, 5, 6, 7, 9, 10})
}

func TestCountedLoopRecovery(t *testing.T) {
	cls, err := kdsl.CompileSource(`
class C extends Accelerator[Int, Int] {
  val id: String = "c"
  def call(in: Int): Int = {
    var s: Int = 0
    for (i <- 0 until 10) {
      s = s + i
    }
    for (j <- 1 to 5) {
      s = s + j * 100
    }
    s
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Compile(cls)
	if err != nil {
		t.Fatal(err)
	}
	loops := k.Loops()
	if len(loops) != 3 { // task + two recovered counted loops
		t.Fatalf("loops = %d, want 3:\n%s", len(loops), cir.Print(k))
	}
	if loops[1].TripCount() != 10 {
		t.Errorf("first loop trip = %d", loops[1].TripCount())
	}
	if loops[2].TripCount() != 5 { // `1 to 5` => hi folds to 6
		t.Errorf("second loop trip = %d", loops[2].TripCount())
	}
	src := cir.Print(k)
	if strings.Contains(src, "while") {
		t.Errorf("counted loops not recovered:\n%s", src)
	}
}

func TestOutputPassthroughCopies(t *testing.T) {
	// Returning an input buffer as an output field forces an explicit
	// copy loop (the kernel cannot alias its AXI buffers).
	src := `
class P extends Accelerator[(Array[Int], Array[Int]), (Array[Int], Array[Int])] {
  val id: String = "p"
  val inSizes: Array[Int] = Array(4, 4)
  def call(in: (Array[Int], Array[Int])): (Array[Int], Array[Int]) = {
    val a: Array[Int] = in._1
    var o: Array[Int] = new Array[Int](4)
    for (i <- 0 until 4) {
      o(i) = a(i) * 2
    }
    (o, in._2)
  }
}`
	cls, err := kdsl.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Compile(cls)
	if err != nil {
		t.Fatal(err)
	}
	n := 3
	bufs := map[string][]cir.Value{
		"in_1": make([]cir.Value, n*4), "in_2": make([]cir.Value, n*4),
		"out_1": make([]cir.Value, n*4), "out_2": make([]cir.Value, n*4),
	}
	rng := rand.New(rand.NewSource(3))
	for _, name := range []string{"in_1", "in_2"} {
		for i := range bufs[name] {
			bufs[name][i] = cir.IntVal(cir.Int, int64(rng.Intn(100)))
		}
	}
	for _, name := range []string{"out_1", "out_2"} {
		for i := range bufs[name] {
			bufs[name][i].K = cir.Int
		}
	}
	ev := cir.NewEvaluator(k)
	if err := ev.Execute(n, bufs); err != nil {
		t.Fatalf("eval: %v\n%s", err, cir.Print(k))
	}
	for i := range bufs["in_2"] {
		if bufs["out_2"][i].I != bufs["in_2"][i].I {
			t.Fatalf("passthrough elem %d: %d != %d", i, bufs["out_2"][i].I, bufs["in_2"][i].I)
		}
		if bufs["out_1"][i].I != bufs["in_1"][i].I*2 {
			t.Fatalf("computed elem %d wrong", i)
		}
	}
}

func TestTuple3Support(t *testing.T) {
	src := `
class T3 extends Accelerator[(Int, Int, Int), (Int, Int)] {
  val id: String = "t3"
  def call(in: (Int, Int, Int)): (Int, Int) = {
    (in._1 + in._2, in._2 * in._3)
  }
}`
	cls, err := kdsl.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Compile(cls)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Params) != 5 {
		t.Fatalf("params = %d, want 5", len(k.Params))
	}
	bufs := map[string][]cir.Value{
		"in_1": intVals(2), "in_2": intVals(3), "in_3": intVals(4),
		"out_1": make([]cir.Value, 1), "out_2": make([]cir.Value, 1),
	}
	ev := cir.NewEvaluator(k)
	if err := ev.Execute(1, bufs); err != nil {
		t.Fatal(err)
	}
	if bufs["out_1"][0].I != 5 || bufs["out_2"][0].I != 12 {
		t.Errorf("results = %v %v", bufs["out_1"][0], bufs["out_2"][0])
	}
}

func intVals(vals ...int64) []cir.Value {
	out := make([]cir.Value, len(vals))
	for i, v := range vals {
		out[i] = cir.IntVal(cir.Int, v)
	}
	return out
}

func TestReduceMustReturnFirstParam(t *testing.T) {
	src := `
class R extends Accelerator[Int, Array[Double]] {
  val id: String = "r"
  def call(in: Int): Array[Double] = {
    var g: Array[Double] = new Array[Double](4)
    g(0) = in.toDouble
    g
  }
  def reduce(a: Array[Double], b: Array[Double]): Array[Double] = {
    for (i <- 0 until 4) {
      b(i) = b(i) + a(i)
    }
    b
  }
}`
	cls, err := kdsl.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(cls); err == nil || !strings.Contains(err.Error(), "first parameter") {
		t.Errorf("reduce returning its second parameter accepted: %v", err)
	}
}

func TestLoopIDsArePreorderUnique(t *testing.T) {
	cls, err := kdsl.CompileSource(`
class L extends Accelerator[Int, Int] {
  val id: String = "l"
  def call(in: Int): Int = {
    var s: Int = 0
    for (i <- 0 until 4) {
      for (j <- 0 until 4) {
        s = s + i * j
      }
    }
    for (k <- 0 until 2) {
      s = s + k
    }
    s
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Compile(cls)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"L0", "L1", "L2", "L3"}
	loops := k.Loops()
	if len(loops) != len(want) {
		t.Fatalf("loops = %d", len(loops))
	}
	for i, l := range loops {
		if l.ID != want[i] {
			t.Errorf("loop %d id = %s, want %s", i, l.ID, want[i])
		}
	}
}

func TestGlobalsSurviveToKernel(t *testing.T) {
	cls, err := kdsl.CompileSource(`
class G extends Accelerator[Int, Int] {
  val id: String = "g"
  val tab: Array[Int] = Array(10, 20, 30, 40)
  def call(in: Int): Int = {
    tab(in % 4)
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Compile(cls)
	if err != nil {
		t.Fatal(err)
	}
	g := k.Global("tab")
	if g == nil || len(g.Data) != 4 || g.Data[2].I != 30 {
		t.Fatalf("global = %+v", g)
	}
	diffTestIntToInt(t, `
class G extends Accelerator[Int, Int] {
  val id: String = "g"
  val tab: Array[Int] = Array(10, 20, 30, 40)
  def call(in: Int): Int = {
    tab(in % 4)
  }
}`, []int64{0, 1, 2, 3, 7})
}
