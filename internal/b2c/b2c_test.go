package b2c

import (
	"math"
	"testing"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/jvmsim"
	"s2fa/internal/kdsl"
)

const vaddSrc = `
class VAdd extends Accelerator[(Array[Float], Array[Float]), Array[Float]] {
  val id: String = "vadd"
  val inSizes: Array[Int] = Array(16, 16)
  def call(in: (Array[Float], Array[Float])): Array[Float] = {
    val a: Array[Float] = in._1
    val b: Array[Float] = in._2
    var c: Array[Float] = new Array[Float](16)
    for (i <- 0 until 16) {
      c(i) = a(i) + b(i)
    }
    c
  }
}
`

func compileSrc(t *testing.T, src string) *bytecode.Class {
	t.Helper()
	cls, err := kdsl.CompileSource(src)
	if err != nil {
		t.Fatalf("kdsl compile: %v", err)
	}
	return cls
}

func TestCompileVAddStructure(t *testing.T) {
	cls := compileSrc(t, vaddSrc)
	k, err := Compile(cls)
	if err != nil {
		t.Fatalf("b2c compile: %v", err)
	}
	if k.Pattern != cir.PatternMap {
		t.Errorf("pattern = %v, want map", k.Pattern)
	}
	if len(k.Params) != 3 {
		t.Fatalf("params = %d, want 3 (in_1, in_2, out)", len(k.Params))
	}
	if k.Params[0].Name != "in_1" || k.Params[1].Name != "in_2" || k.Params[2].Name != "out" {
		t.Errorf("param names = %s,%s,%s", k.Params[0].Name, k.Params[1].Name, k.Params[2].Name)
	}
	if !k.Params[2].IsOutput || k.Params[2].Length != 16 {
		t.Errorf("out param = %+v, want output length 16", k.Params[2])
	}
	loops := k.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2 (task + element)", len(loops))
	}
	if loops[0].ID != "L0" || loops[0].Var != "_task" {
		t.Errorf("task loop = %q var %q", loops[0].ID, loops[0].Var)
	}
	if loops[1].TripCount() != 16 {
		t.Errorf("inner trip = %d, want 16", loops[1].TripCount())
	}
	src := cir.Print(k)
	if len(src) == 0 {
		t.Error("empty printed kernel")
	}
}

// TestVAddDifferential checks jvmsim(bytecode) == evaluator(generated C).
func TestVAddDifferential(t *testing.T) {
	cls := compileSrc(t, vaddSrc)
	k, err := Compile(cls)
	if err != nil {
		t.Fatalf("b2c compile: %v", err)
	}

	const n = 5
	in1 := make([]cir.Value, n*16)
	in2 := make([]cir.Value, n*16)
	for i := range in1 {
		in1[i] = cir.FloatVal(cir.Float, float64(i)*0.5)
		in2[i] = cir.FloatVal(cir.Float, float64(i)*0.25+1)
	}
	out := make([]cir.Value, n*16)
	for i := range out {
		out[i] = cir.Value{K: cir.Float}
	}

	ev := cir.NewEvaluator(k)
	err = ev.Execute(n, map[string][]cir.Value{
		"in_1": in1, "in_2": in2, "out": out,
	})
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}

	vm := jvmsim.New(cls)
	for task := 0; task < n; task++ {
		a := append([]cir.Value(nil), in1[task*16:(task+1)*16]...)
		b := append([]cir.Value(nil), in2[task*16:(task+1)*16]...)
		res, err := vm.Call(jvmsim.Tuple(jvmsim.Array(a), jvmsim.Array(b)))
		if err != nil {
			t.Fatalf("jvm call: %v", err)
		}
		if !res.IsArr || len(res.Arr) != 16 {
			t.Fatalf("jvm result shape: %v", res)
		}
		for e := 0; e < 16; e++ {
			want := res.Arr[e].AsFloat()
			got := out[task*16+e].AsFloat()
			if math.Abs(want-got) > 1e-6 {
				t.Fatalf("task %d elem %d: jvm=%g kernel=%g", task, e, want, got)
			}
		}
	}
}
