package b2c

import (
	"testing"

	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// loopMethod builds the canonical condition-top loop bytecode:
//
//	0: const 0        ; i = 0
//	1: store 0
//	2: load 0         ; header: i < 5 ?
//	3: const 5
//	4: bin lt
//	5: brfalse 12
//	6: load 0         ; body: i = i + 1
//	7: const 1
//	8: bin add
//	9: store 0
//	10: goto 2
//	12: const 0, return
func loopMethod() *bytecode.Method {
	ci := func(v int64) bytecode.Instr {
		return bytecode.Instr{Op: bytecode.OpConst, Kind: cir.Int, Val: cir.IntVal(cir.Int, v)}
	}
	return &bytecode.Method{
		Name:       "loop",
		Ret:        bytecode.Prim(cir.Int),
		LocalTypes: []bytecode.TypeDesc{bytecode.Prim(cir.Int)},
		LocalNames: []string{"i"},
		Code: []bytecode.Instr{
			ci(0),
			{Op: bytecode.OpStore, A: 0, Kind: cir.Int},
			{Op: bytecode.OpLoad, A: 0, Kind: cir.Int},
			ci(5),
			{Op: bytecode.OpBin, Bin: cir.Lt, Kind: cir.Int},
			{Op: bytecode.OpBrFalse, Target: 11},
			{Op: bytecode.OpLoad, A: 0, Kind: cir.Int},
			ci(1),
			{Op: bytecode.OpBin, Bin: cir.Add, Kind: cir.Int},
			{Op: bytecode.OpStore, A: 0, Kind: cir.Int},
			{Op: bytecode.OpGoto, Target: 2},
			ci(0),
			{Op: bytecode.OpReturn},
		},
	}
}

func TestBuildCFGLoop(t *testing.T) {
	m := loopMethod()
	if err := bytecode.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	g, err := buildCFG(m)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: [0..2) init, [2..6) header, [6..11) body, [11..13) exit.
	if len(g.blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.blocks))
	}
	header := g.blockAt[2]
	body := g.blockAt[6]
	exit := g.blockAt[11]

	// Natural loop: header dominates body; back edge body->header.
	loop, ok := g.loopHeaders[header]
	if !ok {
		t.Fatal("loop header not detected")
	}
	if !loop[body] || !loop[header] {
		t.Errorf("loop body set = %v", loop)
	}
	if loop[exit] {
		t.Error("exit block inside the natural loop")
	}

	// Dominators: entry dominates everything; header dominates body and exit.
	if !g.dominates(0, body) || !g.dominates(header, body) || !g.dominates(header, exit) {
		t.Error("dominator relation broken")
	}
	if g.dominates(body, header) {
		t.Error("body cannot dominate header")
	}
	// idom of body is header.
	if g.idom[body] != header {
		t.Errorf("idom(body) = %d, want %d", g.idom[body], header)
	}
	// Postdominators: exit postdominates the header.
	if g.ipdom[header] != exit && g.ipdom[g.ipdom[header]] != exit {
		t.Errorf("ipdom chain from header does not reach exit: %v", g.ipdom)
	}
}

func TestBuildCFGDiamond(t *testing.T) {
	ci := func(v int64) bytecode.Instr {
		return bytecode.Instr{Op: bytecode.OpConst, Kind: cir.Int, Val: cir.IntVal(cir.Int, v)}
	}
	m := &bytecode.Method{
		Name:       "diamond",
		Ret:        bytecode.Prim(cir.Int),
		LocalTypes: []bytecode.TypeDesc{bytecode.Prim(cir.Int)},
		LocalNames: []string{"x"},
		Code: []bytecode.Instr{
			ci(1),
			{Op: bytecode.OpBrFalse, Target: 5}, // 1
			ci(10),                              // 2 then
			{Op: bytecode.OpStore, A: 0, Kind: cir.Int},
			{Op: bytecode.OpGoto, Target: 7}, // 4
			ci(20),                           // 5 else
			{Op: bytecode.OpStore, A: 0, Kind: cir.Int},
			{Op: bytecode.OpLoad, A: 0, Kind: cir.Int}, // 7 join
			{Op: bytecode.OpReturn},
		},
	}
	if err := bytecode.Verify(m); err != nil {
		t.Fatal(err)
	}
	g, err := buildCFG(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.loopHeaders) != 0 {
		t.Error("diamond has no loops")
	}
	entry := 0
	join := g.blockAt[7]
	if g.ipdom[entry] != join {
		t.Errorf("ipdom(entry) = %d, want join %d", g.ipdom[entry], join)
	}
	// Lift + structure the whole method and check an If is produced.
	lf := newLifter(&bytecode.Class{Name: "d"}, m, g)
	if err := lf.liftAll(); err != nil {
		t.Fatal(err)
	}
	body, err := structureMethod(g, lf.blocks)
	if err != nil {
		t.Fatal(err)
	}
	foundIf := false
	for _, s := range body {
		if _, ok := s.(*cir.If); ok {
			foundIf = true
		}
	}
	if !foundIf {
		t.Errorf("structured body has no If: %#v", body)
	}
}

func TestNotExprSimplification(t *testing.T) {
	lt := &cir.Binary{K: cir.Bool, Op: cir.Lt,
		L: &cir.VarRef{K: cir.Int, Name: "i"}, R: &cir.IntLit{K: cir.Int, Val: 5}}
	inv := notExpr(lt).(*cir.Binary)
	if inv.Op != cir.Ge {
		t.Errorf("!(i<5) = %v", inv.Op)
	}
	double := notExpr(&cir.Unary{Op: cir.Not, X: lt})
	if double != lt {
		t.Error("double negation not folded")
	}
	other := notExpr(&cir.VarRef{K: cir.Bool, Name: "b"})
	if u, ok := other.(*cir.Unary); !ok || u.Op != cir.Not {
		t.Error("plain negation wrapper missing")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"SW_kernel": "SW_kernel",
		"a-b.c d":   "a_b_c_d",
		"":          "kernel",
		"日本":        "__",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
