// Package ccache is the content-addressed compile cache of the S2FA
// pipeline. The unit of caching is one verified kernel class: the
// fingerprint is the SHA-256 of the canonical bytecode encoding plus the
// abstract-interpretation fact digest (see FingerprintOf), and a hit
// returns the cached verified CIR kernel together with the lint
// verdicts and the dependence/access analyses computed from it — the
// whole back half of the pipeline (b2c decompilation, structuring,
// flattening, lint, depend, access) is skipped.
//
// Two layers address different costs:
//
//   - the source memo maps SHA-256(source) to the compiled class and
//     its fingerprint, so a repeated source string skips the frontend
//     (lex/parse/bytecode/verify/absint) entirely;
//   - the semantic layer maps Fingerprint to the cached Entry, so two
//     different source texts compiling to identical bytecode (renamed
//     files, reformatted kernels) still share one b2c run.
//
// Every hit re-derives SHA-256(cir.Print(kernel)) and compares it to
// the checksum stored when the entry was built. A mismatch means the
// cached kernel was mutated or corrupted after insertion ("poisoned"):
// the entry is evicted, the incident is counted (ccache.poisoned) and
// flagged to the flight recorder as a ccache/poisoned instant, and the
// caller falls back to a fresh compile. Concurrent misses on one
// fingerprint are single-flighted: the first caller compiles, the rest
// block on its result.
//
// The cache is safe for concurrent use. The compile.Scratch passed by a
// caller is not — concurrent callers must pass distinct scratches (or
// nil).
package ccache

import (
	"crypto/sha256"
	"sync"

	"s2fa/internal/absint"
	"s2fa/internal/access"
	"s2fa/internal/b2c"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
	"s2fa/internal/compile"
	"s2fa/internal/depend"
	"s2fa/internal/kdsl"
	"s2fa/internal/lint"
	"s2fa/internal/obs"
)

// Entry is one cached compilation: everything the pipeline derives from
// a verified class. The kernel and analyses are shared across hits —
// callers must treat them as immutable (mutation is detected as
// poisoning on the next hit, not tolerated).
type Entry struct {
	Fingerprint Fingerprint
	// Kernel is the verified HLS-C IR produced by b2c.
	Kernel *cir.Kernel
	// Facts are the abstract-interpretation facts the kernel was
	// compiled under (also an input to the fingerprint).
	Facts *absint.ClassFacts
	// Lint holds the full lint verdicts for the pristine kernel.
	Lint lint.Findings
	// Depend and Access are the loop-dependence and access-pattern
	// analyses the DSE collapse guards consume.
	Depend *depend.Analysis
	Access *access.Analysis

	// checksum is SHA-256 of cir.Print(Kernel) at insertion time; bytes
	// is the length of that rendering (the size proxy behind the
	// ccache.bytes counter).
	checksum [32]byte
	bytes    int
}

// Checksum returns the integrity checksum stored at insertion.
func (e *Entry) Checksum() [32]byte { return e.checksum }

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// SourceHits served both frontend and backend from the memo layer.
	SourceHits int64
	// SemanticHits ran the frontend but served b2c + analyses from an
	// entry with the same fingerprint.
	SemanticHits int64
	// Misses ran the full pipeline.
	Misses int64
	// Poisoned counts checksum mismatches (each also evicts the entry).
	Poisoned int64
	// Bytes sums the rendered-kernel size of every stored entry.
	Bytes int64
}

// Hits is the total over both hit layers.
func (s Stats) Hits() int64 { return s.SourceHits + s.SemanticHits }

type sourceMemo struct {
	cls *bytecode.Class
	fp  Fingerprint
}

// flight is one in-progress compilation other callers can wait on.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// Cache is the content-addressed compile cache. The zero value is not
// usable; create with New.
type Cache struct {
	mu       sync.Mutex
	source   map[[32]byte]sourceMemo
	entries  map[Fingerprint]*Entry
	byKernel map[*cir.Kernel]*Entry
	inflight map[Fingerprint]*flight
	stats    Stats
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		source:   map[[32]byte]sourceMemo{},
		entries:  map[Fingerprint]*Entry{},
		byKernel: map[*cir.Kernel]*Entry{},
		inflight: map[Fingerprint]*flight{},
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// EntryFor returns the live entry whose kernel is exactly k (pointer
// identity), or nil. This is how downstream stages (DSE guard assembly,
// blaze purity seeding) recover the cached analyses for a kernel that
// came out of CompileSource.
func (c *Cache) EntryFor(k *cir.Kernel) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKernel[k]
}

// CompileSource compiles kernel source through the cache. On a source
// memo hit the frontend and backend are both skipped; on a semantic hit
// the frontend runs (the fingerprint needs bytecode + facts) but b2c
// and the analyses are served from the cache; on a miss the full
// pipeline runs and the result is stored. tr receives ccache.* counters
// and, on poisoning, a recorder-visible instant; both may be nil.
func (c *Cache) CompileSource(src string, tr *obs.Trace, sc *compile.Scratch) (*bytecode.Class, *Entry, error) {
	key := sha256.Sum256([]byte(src))
	c.mu.Lock()
	memo, ok := c.source[key]
	var e *Entry
	if ok {
		e = c.entries[memo.fp]
	}
	c.mu.Unlock()
	if e != nil && c.verify(e, tr) {
		c.mu.Lock()
		c.stats.SourceHits++
		c.mu.Unlock()
		tr.Count("ccache.hits", 1)
		return memo.cls, e, nil
	}

	cls, err := kdsl.CompileSourceScratch(src, sc)
	if err != nil {
		return nil, nil, err
	}
	e, err = c.CompileClass(cls, tr, sc)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.source[key] = sourceMemo{cls: cls, fp: e.Fingerprint}
	c.mu.Unlock()
	return cls, e, nil
}

// CompileClass compiles an already-assembled class through the semantic
// layer of the cache (no source memo involved).
func (c *Cache) CompileClass(cls *bytecode.Class, tr *obs.Trace, sc *compile.Scratch) (*Entry, error) {
	facts, err := absint.AnalyzeClassScratch(cls, sc)
	if err != nil {
		return nil, err
	}
	fp := FingerprintOf(cls, facts)
	for {
		c.mu.Lock()
		if e := c.entries[fp]; e != nil {
			c.mu.Unlock()
			if !c.verify(e, tr) {
				continue // poisoned entry evicted; retry as a miss
			}
			c.mu.Lock()
			c.stats.SemanticHits++
			c.mu.Unlock()
			tr.Count("ccache.hits", 1)
			return e, nil
		}
		if fl := c.inflight[fp]; fl != nil {
			c.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, fl.err
			}
			// The flight's result was stored (and checksummed) moments
			// ago; serve it as a semantic hit without re-verification.
			c.mu.Lock()
			c.stats.SemanticHits++
			c.mu.Unlock()
			tr.Count("ccache.hits", 1)
			return fl.e, nil
		}
		fl := &flight{done: make(chan struct{})}
		c.inflight[fp] = fl
		c.mu.Unlock()

		e, err := compileMiss(cls, facts, fp, tr)
		c.mu.Lock()
		delete(c.inflight, fp)
		if err == nil {
			c.entries[fp] = e
			c.byKernel[e.Kernel] = e
			c.stats.Misses++
			c.stats.Bytes += int64(e.bytes)
		}
		c.mu.Unlock()
		fl.e, fl.err = e, err
		close(fl.done)
		if err != nil {
			return nil, err
		}
		tr.Count("ccache.misses", 1)
		tr.Count("ccache.bytes", int64(e.bytes))
		return e, nil
	}
}

// compileMiss runs the back half of the pipeline: b2c on the verified
// class (reusing the already-computed facts), then the derived analyses
// the cache serves alongside the kernel.
func compileMiss(cls *bytecode.Class, facts *absint.ClassFacts, fp Fingerprint, tr *obs.Trace) (*Entry, error) {
	k, err := b2c.CompileVerified(cls, facts, tr)
	if err != nil {
		return nil, err
	}
	printed := cir.Print(k)
	e := &Entry{
		Fingerprint: fp,
		Kernel:      k,
		Facts:       facts,
		Lint:        lint.Lint(k),
		Depend:      depend.Analyze(k),
		Access:      access.Analyze(k),
		checksum:    sha256.Sum256([]byte(printed)),
		bytes:       len(printed),
	}
	return e, nil
}

// verify re-derives the entry's checksum and compares it to the stored
// one. On mismatch the entry is evicted, the poisoning is counted and
// surfaced to the flight recorder, and false is returned so the caller
// recompiles from scratch.
func (c *Cache) verify(e *Entry, tr *obs.Trace) bool {
	sum := sha256.Sum256([]byte(cir.Print(e.Kernel)))
	if sum == e.checksum {
		return true
	}
	c.mu.Lock()
	if c.entries[e.Fingerprint] == e {
		delete(c.entries, e.Fingerprint)
		delete(c.byKernel, e.Kernel)
	}
	c.stats.Poisoned++
	c.mu.Unlock()
	tr.Count("ccache.poisoned", 1)
	tr.Event("ccache", "poisoned",
		obs.Str("kernel", e.Kernel.Name),
		obs.Str("fingerprint", e.Fingerprint.Short()))
	return false
}
