package ccache

import (
	"reflect"
	"sync"
	"testing"

	"s2fa/internal/access"
	"s2fa/internal/apps"
	"s2fa/internal/b2c"
	"s2fa/internal/cir"
	"s2fa/internal/compile"
	"s2fa/internal/depend"
	"s2fa/internal/kdsl"
	"s2fa/internal/lint"
	"s2fa/internal/obs"
)

// TestCachedMatchesFresh is the core soundness claim: for every
// workload, the entry served by the cache — on the miss, on the source
// hit, and on a semantic hit — renders byte-identical HLS C to a fresh
// uncached compile, and carries the same lint verdicts and analysis
// conclusions.
func TestCachedMatchesFresh(t *testing.T) {
	c := New()
	sc := compile.NewScratch()
	for _, app := range apps.All() {
		cls, err := kdsl.CompileSource(app.Source)
		if err != nil {
			t.Fatalf("%s: frontend: %v", app.Name, err)
		}
		fresh, err := b2c.Compile(cls)
		if err != nil {
			t.Fatalf("%s: fresh b2c: %v", app.Name, err)
		}
		freshC := cir.Print(fresh)
		freshLint := lint.Lint(fresh)

		_, miss, err := c.CompileSource(app.Source, nil, sc)
		if err != nil {
			t.Fatalf("%s: cached compile: %v", app.Name, err)
		}
		_, hit, err := c.CompileSource(app.Source, nil, sc)
		if err != nil {
			t.Fatalf("%s: cache hit: %v", app.Name, err)
		}
		if hit != miss {
			t.Fatalf("%s: source hit returned a different entry", app.Name)
		}
		if got := cir.Print(hit.Kernel); got != freshC {
			t.Errorf("%s: cached kernel differs from fresh compile", app.Name)
		}
		if !reflect.DeepEqual(hit.Lint, freshLint) {
			t.Errorf("%s: cached lint verdicts differ from fresh", app.Name)
		}
		// Cached analysis conclusions must agree with a fresh analysis
		// of the fresh kernel (loop IDs are positional, shared across
		// compiles of the same source).
		freshDep := depend.Analyze(fresh)
		if !reflect.DeepEqual(hit.Depend.Order, freshDep.Order) {
			t.Errorf("%s: cached depend loop order differs from fresh", app.Name)
		}
		for _, id := range hit.Depend.Order {
			if got, want := hit.Depend.Serializing(id), freshDep.Serializing(id); got != want {
				t.Errorf("%s: loop %s: cached Serializing=%v want %v", app.Name, id, got, want)
			}
		}
		freshAcc := access.Analyze(fresh)
		for _, id := range freshAcc.LoopOrder {
			if got, want := hit.Access.PortCap(id), freshAcc.PortCap(id); got != want {
				t.Errorf("%s: loop %s: cached PortCap=%d want %d", app.Name, id, got, want)
			}
		}
	}
	st := c.Stats()
	n := int64(len(apps.All()))
	if st.Misses != n || st.SourceHits != n {
		t.Fatalf("stats: misses=%d sourceHits=%d, want %d each", st.Misses, st.SourceHits, n)
	}
	if st.Poisoned != 0 {
		t.Fatalf("stats: unexpected poisonings: %d", st.Poisoned)
	}
}

// TestSemanticHit: two source texts that differ only in a trailing
// comment compile to identical bytecode and facts, so the second skips
// b2c via the semantic layer even though its source hash is new.
func TestSemanticHit(t *testing.T) {
	src := apps.All()[0].Source
	c := New()
	_, e1, err := c.CompileSource(src, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := c.CompileSource(src+"\n// trailing comment\n", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("semantically identical sources got distinct entries")
	}
	st := c.Stats()
	if st.Misses != 1 || st.SemanticHits != 1 {
		t.Fatalf("stats: misses=%d semanticHits=%d, want 1 and 1", st.Misses, st.SemanticHits)
	}
}

// TestPoisoningFallback corrupts a cached entry and checks the full
// recovery path: the checksum mismatch is detected on the next hit, the
// entry is evicted, the incident is counted and dumped by the flight
// recorder, and the caller gets a fresh, valid compile.
func TestPoisoningFallback(t *testing.T) {
	src := apps.All()[0].Source
	rec := obs.NewRecorder(obs.RecorderConfig{})
	tr := obs.New(rec)
	c := New()
	_, e, err := c.CompileSource(src, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := cir.Print(e.Kernel)
	// Corrupt the cached kernel in place — the render no longer matches
	// the checksum taken at insertion.
	e.Kernel.Name += "_corrupted"

	_, e2, err := c.CompileSource(src, tr, nil)
	if err != nil {
		t.Fatalf("poisoned hit did not fall back to a fresh compile: %v", err)
	}
	if e2 == e {
		t.Fatalf("poisoned entry was served again")
	}
	if got := cir.Print(e2.Kernel); got != want {
		t.Errorf("fresh fallback kernel differs from the original compile")
	}
	st := c.Stats()
	if st.Poisoned != 1 {
		t.Fatalf("stats: poisoned=%d, want 1", st.Poisoned)
	}
	if st.Misses != 2 {
		t.Fatalf("stats: misses=%d, want 2 (original + fallback)", st.Misses)
	}
	if got := tr.Counters()["ccache.poisoned"]; got != 1 {
		t.Fatalf("obs counter ccache.poisoned=%d, want 1", got)
	}
	tr.Close()
	dumps := rec.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != obs.ReasonCachePoisoned {
		t.Fatalf("recorder dumps=%v, want one %s dump", dumps, obs.ReasonCachePoisoned)
	}
}

// TestSingleFlight: concurrent misses on one class run b2c once.
func TestSingleFlight(t *testing.T) {
	app := apps.All()[0]
	cls, err := kdsl.CompileSource(app.Source)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	const n = 8
	entries := make([]*Entry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := c.CompileClass(cls, nil, nil)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("goroutine %d got a distinct entry", i)
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats: misses=%d, want 1 (single flight)", st.Misses)
	}
}

// TestFingerprint checks determinism and sensitivity of the content
// address.
func TestFingerprint(t *testing.T) {
	var fps []Fingerprint
	for _, app := range apps.All() {
		cls, err := apps.Get(app.Name).Class()
		if err != nil {
			t.Fatal(err)
		}
		c := New()
		e, err := c.CompileClass(cls, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := New().CompileClass(cls, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.Fingerprint != e2.Fingerprint {
			t.Fatalf("%s: fingerprint not deterministic", app.Name)
		}
		fps = append(fps, e.Fingerprint)
	}
	seen := map[Fingerprint]string{}
	for i, app := range apps.All() {
		if prev, dup := seen[fps[i]]; dup {
			t.Fatalf("fingerprint collision between %s and %s", prev, app.Name)
		}
		seen[fps[i]] = app.Name
	}
}
