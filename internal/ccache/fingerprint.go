package ccache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"s2fa/internal/absint"
	"s2fa/internal/bytecode"
	"s2fa/internal/cir"
)

// Fingerprint is the content address of one verified kernel class: the
// SHA-256 of the canonical bytecode encoding concatenated with the
// abstract-interpretation fact digest. Two classes with the same
// fingerprint produce byte-identical b2c output, lint verdicts, and
// dependence/access analyses, so the cache can serve one compilation to
// the other.
type Fingerprint [32]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex digits, for telemetry labels.
func (f Fingerprint) Short() string { return f.String()[:12] }

// FingerprintOf computes the content address of a verified class and its
// analysis facts. The encoding is canonical — a fixed field order with
// length-prefixed variable parts — so the hash is a pure deterministic
// function of the semantic content, independent of map iteration order
// or pointer identity. The facts' FixpointStats are excluded: they
// describe solver effort, not kernel semantics.
func FingerprintOf(cls *bytecode.Class, facts *absint.ClassFacts) Fingerprint {
	d := digest{h: sha256.New()}
	d.class(cls)
	d.classFacts(facts)
	var fp Fingerprint
	d.h.Sum(fp[:0])
	return fp
}

// digest streams the canonical encoding into a hash.
type digest struct {
	h   hash.Hash
	buf [8]byte
}

func (d *digest) u64(v uint64) {
	binary.LittleEndian.PutUint64(d.buf[:], v)
	d.h.Write(d.buf[:])
}

func (d *digest) i64(v int)     { d.u64(uint64(int64(v))) }
func (d *digest) f64(v float64) { d.u64(math.Float64bits(v)) }

func (d *digest) boolean(b bool) {
	if b {
		d.u64(1)
		return
	}
	d.u64(0)
}

func (d *digest) str(s string) {
	d.u64(uint64(len(s)))
	d.h.Write([]byte(s))
}

func (d *digest) val(v cir.Value) {
	d.u64(uint64(v.K))
	d.u64(uint64(v.I))
	d.f64(v.F)
}

func (d *digest) td(t bytecode.TypeDesc) {
	d.u64(uint64(t.Kind))
	d.boolean(t.Array)
	d.u64(uint64(len(t.Tuple)))
	for _, f := range t.Tuple {
		d.td(f)
	}
}

func (d *digest) pos(p bytecode.Pos) {
	d.i64(p.Line)
	d.i64(p.Col)
}

func (d *digest) method(m *bytecode.Method) {
	if m == nil {
		d.u64(0)
		return
	}
	d.u64(1)
	d.str(m.Name)
	d.u64(uint64(len(m.Params)))
	for _, t := range m.Params {
		d.td(t)
	}
	d.td(m.Ret)
	d.u64(uint64(len(m.LocalTypes)))
	for _, t := range m.LocalTypes {
		d.td(t)
	}
	d.u64(uint64(len(m.LocalNames)))
	for _, n := range m.LocalNames {
		d.str(n)
	}
	d.u64(uint64(len(m.Code)))
	for _, in := range m.Code {
		d.u64(uint64(in.Op))
		d.u64(uint64(in.Kind))
		d.i64(in.A)
		d.i64(in.Target)
		d.val(in.Val)
		d.u64(uint64(in.Bin))
		d.u64(uint64(in.Un))
		d.str(in.Sym)
	}
	d.u64(uint64(len(m.Pos)))
	for _, p := range m.Pos {
		d.pos(p)
	}
}

func (d *digest) class(c *bytecode.Class) {
	d.str(c.Name)
	d.str(c.ID)
	d.u64(uint64(len(c.Statics)))
	for _, s := range c.Statics {
		d.str(s.Name)
		d.td(s.Type)
		d.u64(uint64(len(s.Data)))
		for _, v := range s.Data {
			d.val(v)
		}
	}
	d.method(c.Call)
	d.method(c.Reduce)
	d.u64(uint64(len(c.InSizes)))
	for _, n := range c.InSizes {
		d.i64(n)
	}
}

func (d *digest) iv(iv absint.Interval) {
	d.f64(iv.Lo)
	d.f64(iv.Hi)
}

func (d *digest) abstract(a absint.Abstract) {
	d.iv(a.Iv)
	d.boolean(a.IsArray)
	d.iv(a.Elems)
	d.iv(a.Len)
	d.u64(uint64(len(a.Fields)))
	for _, f := range a.Fields {
		d.abstract(f)
	}
}

func (d *digest) effects(es []absint.Effect) {
	d.u64(uint64(len(es)))
	for _, e := range es {
		d.i64(e.PC)
		d.pos(e.Pos)
		d.str(e.Detail)
	}
}

// pcMap hashes an int->Interval map in ascending key order, the only
// canonical order a map has.
func (d *digest) pcMap(m map[int]absint.Interval) {
	keys := make([]int, 0, len(m))
	for pc := range m { //determinism:allow keys sorted before hashing
		keys = append(keys, pc)
	}
	sort.Ints(keys)
	d.u64(uint64(len(keys)))
	for _, pc := range keys {
		d.i64(pc)
		d.iv(m[pc])
	}
}

func (d *digest) methodFacts(f *absint.MethodFacts) {
	if f == nil {
		d.u64(0)
		return
	}
	d.u64(1)
	d.u64(uint64(len(f.Local)))
	for _, iv := range f.Local {
		d.iv(iv)
	}
	d.pcMap(f.Stored)
	d.pcMap(f.Loaded)
	d.u64(uint64(len(f.Arrays)))
	for _, a := range f.Arrays {
		d.str(a.Origin)
		d.u64(uint64(a.Kind))
		d.iv(a.Elems)
		d.iv(a.Len)
		d.pos(a.Pos)
		d.boolean(a.Input)
		d.boolean(a.Static)
	}
	d.abstract(f.Ret)
	d.effects(f.Purity.HeapWrites)
	d.effects(f.Purity.ArgEscapes)
	d.u64(uint64(len(f.Violations)))
	for _, v := range f.Violations {
		d.u64(uint64(v.Kind))
		d.str(v.Method)
		d.i64(v.PC)
		d.pos(v.Pos)
		d.str(v.Detail)
	}
}

func (d *digest) classFacts(cf *absint.ClassFacts) {
	d.methodFacts(cf.Call)
	d.methodFacts(cf.Reduce)
}
