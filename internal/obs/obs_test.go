package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock returns a deterministic clock ticking 1000ns per call.
func fakeClock() func() int64 {
	var n int64
	return func() int64 {
		n += 1000
		return n
	}
}

// TestNilTraceIsSafe: the disabled trace must no-op on every method —
// pipeline call sites thread a nil *Trace with no guards.
func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	sp := tr.Begin("cat", "name", Str("k", "v"))
	sp.End(Vmin(3))
	tr.BeginT(4, "cat", "name").End()
	tr.Event("cat", "name", Int("n", 1))
	tr.EventT(2, "cat", "name")
	tr.Count("c", 1)
	tr.Gauge("g", 0.5)
	if tr.Counters() != nil {
		t.Fatal("nil trace returned counters")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanHierarchyAndClocks: begin/end pairs carry ids, parents nest
// per track, and the Vmin attribute lands in the dedicated dual-clock
// field rather than args.
func TestSpanHierarchyAndClocks(t *testing.T) {
	mem := NewMemory()
	tr := New(mem, WithClock(fakeClock()))
	outer := tr.Begin("b2c", "compile", Str("class", "SW"))
	inner := tr.Begin("bytecode", "verify")
	tr.Event("absint", "fixpoint", Int("iterations", 7))
	inner.End(Bool("ok", true))
	outer.End()
	w := tr.BeginT(3, "dse", "partition", Vmin(0))
	w.End(Vmin(12.5))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	ev := mem.Events()
	if len(ev) != 7 {
		t.Fatalf("got %d events, want 7", len(ev))
	}
	if ev[0].Ph != PhaseBegin || ev[0].ID == 0 || ev[0].Parent != 0 {
		t.Errorf("outer begin = %+v", ev[0])
	}
	if ev[1].Parent != ev[0].ID {
		t.Errorf("inner parent = %d, want %d", ev[1].Parent, ev[0].ID)
	}
	if ev[2].Parent != ev[1].ID {
		t.Errorf("instant parent = %d, want %d", ev[2].Parent, ev[1].ID)
	}
	if ev[3].Ph != PhaseEnd || ev[3].ID != ev[1].ID {
		t.Errorf("inner end = %+v", ev[3])
	}
	if ev[5].TID != 3 || ev[5].VM == nil || *ev[5].VM != 0 {
		t.Errorf("worker begin = %+v", ev[5])
	}
	if ev[6].VM == nil || *ev[6].VM != 12.5 {
		t.Errorf("worker end lost virtual clock: %+v", ev[6])
	}
	if _, inArgs := ev[6].Args["vmin"]; inArgs {
		t.Error("vmin leaked into args")
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].NS <= ev[i-1].NS {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
}

// TestCounters: Count accumulates monotonically and each emission
// carries the running total.
func TestCounters(t *testing.T) {
	mem := NewMemory()
	tr := New(mem, WithClock(fakeClock()))
	tr.Count("dse.evals", 1)
	tr.Count("dse.evals", 2)
	tr.Count("hls.cache_hits", 1)
	got := tr.Counters()
	if got["dse.evals"] != 3 || got["hls.cache_hits"] != 1 {
		t.Fatalf("counters = %v", got)
	}
	last := mem.Events()[1]
	if v, _ := last.Args["value"].(int64); v != 3 {
		t.Fatalf("second sample value = %v, want 3", last.Args["value"])
	}
}

// TestJSONLRoundTrip: the JSONL sink's output must decode back into the
// emitted events.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf), WithClock(fakeClock()))
	sp := tr.Begin("kdsl", "compile", Str("class", "K"))
	sp.End()
	tr.Event("dse", "entropy", F64("h", 1.25), Vmin(40))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Cat != "kdsl" || events[0].Args["class"] != "K" {
		t.Errorf("begin = %+v", events[0])
	}
	if events[2].VM == nil || *events[2].VM != 40 {
		t.Errorf("instant lost vmin: %+v", events[2])
	}
}

// TestChromeExport: the converter must produce a chrome://tracing
// document whose span ends recover name/cat from their begins.
func TestChromeExport(t *testing.T) {
	var jsonl bytes.Buffer
	tr := New(NewJSONL(&jsonl), WithClock(fakeClock()))
	sp := tr.BeginT(1, "dse", "partition", Vmin(0))
	tr.EventT(1, "dse", "eval", F64("objective", 2))
	sp.End(Vmin(9))
	tr.Count("dse.evals", 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var chrome bytes.Buffer
	if err := ConvertJSONLToChrome(bytes.NewReader(jsonl.Bytes()), &chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not JSON: %v", err)
	}
	var phases []string
	for _, e := range doc.TraceEvents {
		phases = append(phases, e["ph"].(string))
	}
	// thread_name metadata first: tid 0 (counter) and tid 1 (worker).
	want := []string{"M", "M", "B", "i", "E", "C"}
	if strings.Join(phases, "") != strings.Join(want, "") {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	end := doc.TraceEvents[4]
	if end["name"] != "partition" || end["cat"] != "dse" {
		t.Errorf("span end did not inherit begin identity: %v", end)
	}
	if vm, _ := end["args"].(map[string]any); vm["vmin"] != 9.0 {
		t.Errorf("end args = %v", end["args"])
	}
}

// TestChromeSinkDirect: -trace-format chrome writes the document
// straight from the sink.
func TestChromeSinkDirect(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewChrome(&buf), WithClock(fakeClock()))
	tr.Begin("hls", "estimate").End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 { // metadata + B + E
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
}

// TestCollectorSummary: the collector must aggregate stage times, HLS
// rankings, bandit arms, the entropy curve, and counters into a report.
func TestCollectorSummary(t *testing.T) {
	col := NewCollector()
	tr := New(Multi(NewMemory(), col), WithClock(fakeClock()))

	k := tr.Begin("kdsl", "compile")
	k.End()
	h := tr.Begin("hls", "estimate", Str("point", "L0.parallel=4"), Str("cache", "fresh"))
	h.End(F64("synth_min", 7.5), Bool("feasible", true))
	h2 := tr.Begin("hls", "estimate", Str("point", "L0.parallel=8"), Str("cache", "hit"))
	h2.End()
	tr.Event("tuner", "select", Str("arm", "greedy-mutation"), F64("auc", 0.4))
	tr.Event("tuner", "reward", Str("arm", "greedy-mutation"), Bool("new_best", true))
	tr.Event("dse", "entropy", F64("h", 2.0), Vmin(5))
	tr.Event("dse", "entropy", F64("h", 1.5), Vmin(9))
	tr.Event("dse", "incumbent", F64("objective", 0.004), Vmin(9))
	tr.Count("dse.evals", 12)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	out := col.Render()
	for _, want := range []string{
		"kdsl/compile",
		"hls/estimate",
		"synth=  7.5min",
		"greedy-mutation",
		"entropy window (2 samples",
		"incumbent updates: 1",
		"dse.evals",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "L0.parallel=8") {
		t.Error("cache hit ranked among fresh estimations")
	}
}

// TestSparkline quantizes into the block glyphs with min/max pinning.
func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3}, 8)
	if got != "▁▃▅█" {
		t.Errorf("sparkline = %q", got)
	}
	if Sparkline(nil, 8) != "" {
		t.Error("empty input should render empty")
	}
	if got := Sparkline([]float64{5, 5, 5}, 8); got != "▁▁▁" {
		t.Errorf("flat curve = %q", got)
	}
	if n := len([]rune(Sparkline(make([]float64, 1000), 64))); n != 64 {
		t.Errorf("downsampled width = %d, want 64", n)
	}
}
