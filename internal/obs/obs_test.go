package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// fakeClock returns a deterministic clock ticking 1000ns per call.
func fakeClock() func() int64 {
	var n int64
	return func() int64 {
		n += 1000
		return n
	}
}

// TestNilTraceIsSafe: the disabled trace must no-op on every method —
// pipeline call sites thread a nil *Trace with no guards.
func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	sp := tr.Begin("cat", "name", Str("k", "v"))
	sp.End(Vmin(3))
	tr.BeginT(4, "cat", "name").End()
	tr.Event("cat", "name", Int("n", 1))
	tr.EventT(2, "cat", "name")
	tr.Count("c", 1)
	tr.Gauge("g", 0.5)
	if tr.Counters() != nil {
		t.Fatal("nil trace returned counters")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanHierarchyAndClocks: begin/end pairs carry ids, parents nest
// per track, and the Vmin attribute lands in the dedicated dual-clock
// field rather than args.
func TestSpanHierarchyAndClocks(t *testing.T) {
	mem := NewMemory()
	tr := New(mem, WithClock(fakeClock()))
	outer := tr.Begin("b2c", "compile", Str("class", "SW"))
	inner := tr.Begin("bytecode", "verify")
	tr.Event("absint", "fixpoint", Int("iterations", 7))
	inner.End(Bool("ok", true))
	outer.End()
	w := tr.BeginT(3, "dse", "partition", Vmin(0))
	w.End(Vmin(12.5))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	ev := mem.Events()
	if len(ev) != 7 {
		t.Fatalf("got %d events, want 7", len(ev))
	}
	if ev[0].Ph != PhaseBegin || ev[0].ID == 0 || ev[0].Parent != 0 {
		t.Errorf("outer begin = %+v", ev[0])
	}
	if ev[1].Parent != ev[0].ID {
		t.Errorf("inner parent = %d, want %d", ev[1].Parent, ev[0].ID)
	}
	if ev[2].Parent != ev[1].ID {
		t.Errorf("instant parent = %d, want %d", ev[2].Parent, ev[1].ID)
	}
	if ev[3].Ph != PhaseEnd || ev[3].ID != ev[1].ID {
		t.Errorf("inner end = %+v", ev[3])
	}
	if ev[5].TID != 3 || ev[5].VM == nil || *ev[5].VM != 0 {
		t.Errorf("worker begin = %+v", ev[5])
	}
	if ev[6].VM == nil || *ev[6].VM != 12.5 {
		t.Errorf("worker end lost virtual clock: %+v", ev[6])
	}
	if _, inArgs := ev[6].Args["vmin"]; inArgs {
		t.Error("vmin leaked into args")
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].NS <= ev[i-1].NS {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
}

// TestCounters: Count accumulates monotonically and each emission
// carries the running total.
func TestCounters(t *testing.T) {
	mem := NewMemory()
	tr := New(mem, WithClock(fakeClock()))
	tr.Count("dse.evals", 1)
	tr.Count("dse.evals", 2)
	tr.Count("hls.cache_hits", 1)
	got := tr.Counters()
	if got["dse.evals"] != 3 || got["hls.cache_hits"] != 1 {
		t.Fatalf("counters = %v", got)
	}
	last := mem.Events()[1]
	if v, _ := last.Args["value"].(int64); v != 3 {
		t.Fatalf("second sample value = %v, want 3", last.Args["value"])
	}
}

// TestJSONLRoundTrip: the JSONL sink's output must decode back into the
// emitted events.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf), WithClock(fakeClock()))
	sp := tr.Begin("kdsl", "compile", Str("class", "K"))
	sp.End()
	tr.Event("dse", "entropy", F64("h", 1.25), Vmin(40))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Cat != "kdsl" || events[0].Args["class"] != "K" {
		t.Errorf("begin = %+v", events[0])
	}
	if events[2].VM == nil || *events[2].VM != 40 {
		t.Errorf("instant lost vmin: %+v", events[2])
	}
}

// TestChromeExport: the converter must produce a chrome://tracing
// document whose span ends recover name/cat from their begins.
func TestChromeExport(t *testing.T) {
	var jsonl bytes.Buffer
	tr := New(NewJSONL(&jsonl), WithClock(fakeClock()))
	sp := tr.BeginT(1, "dse", "partition", Vmin(0))
	tr.EventT(1, "dse", "eval", F64("objective", 2))
	sp.End(Vmin(9))
	tr.Count("dse.evals", 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var chrome bytes.Buffer
	if err := ConvertJSONLToChrome(bytes.NewReader(jsonl.Bytes()), &chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not JSON: %v", err)
	}
	var phases []string
	for _, e := range doc.TraceEvents {
		phases = append(phases, e["ph"].(string))
	}
	// thread_name metadata first: tid 0 (counter) and tid 1 (worker).
	want := []string{"M", "M", "B", "i", "E", "C"}
	if strings.Join(phases, "") != strings.Join(want, "") {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	end := doc.TraceEvents[4]
	if end["name"] != "partition" || end["cat"] != "dse" {
		t.Errorf("span end did not inherit begin identity: %v", end)
	}
	if vm, _ := end["args"].(map[string]any); vm["vmin"] != 9.0 {
		t.Errorf("end args = %v", end["args"])
	}
}

// TestChromeSinkDirect: -trace-format chrome writes the document
// straight from the sink.
func TestChromeSinkDirect(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewChrome(&buf), WithClock(fakeClock()))
	tr.Begin("hls", "estimate").End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 { // metadata + B + E
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
}

// TestCollectorSummary: the collector must aggregate stage times, HLS
// rankings, bandit arms, the entropy curve, and counters into a report.
func TestCollectorSummary(t *testing.T) {
	col := NewCollector()
	tr := New(Multi(NewMemory(), col), WithClock(fakeClock()))

	k := tr.Begin("kdsl", "compile")
	k.End()
	h := tr.Begin("hls", "estimate", Str("point", "L0.parallel=4"), Str("cache", "fresh"))
	h.End(F64("synth_min", 7.5), Bool("feasible", true))
	h2 := tr.Begin("hls", "estimate", Str("point", "L0.parallel=8"), Str("cache", "hit"))
	h2.End()
	tr.Event("tuner", "select", Str("arm", "greedy-mutation"), F64("auc", 0.4))
	tr.Event("tuner", "reward", Str("arm", "greedy-mutation"), Bool("new_best", true))
	tr.Event("dse", "entropy", F64("h", 2.0), Vmin(5))
	tr.Event("dse", "entropy", F64("h", 1.5), Vmin(9))
	tr.Event("dse", "incumbent", F64("objective", 0.004), Vmin(9))
	tr.Count("dse.evals", 12)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	out := col.Render()
	for _, want := range []string{
		"kdsl/compile",
		"hls/estimate",
		"synth=  7.5min",
		"greedy-mutation",
		"entropy window (2 samples",
		"incumbent updates: 1",
		"dse.evals",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "L0.parallel=8") {
		t.Error("cache hit ranked among fresh estimations")
	}
}

// TestSpanMisnestOutOfOrder: closing a span while younger spans are
// still open must repair the stack (abandoning the younger opens), emit
// a span-misnest diagnostic, and keep later parenting correct.
func TestSpanMisnestOutOfOrder(t *testing.T) {
	mem := NewMemory()
	tr := New(mem, WithClock(fakeClock()))
	outer := tr.Begin("dse", "partition")
	_ = tr.Begin("hls", "estimate") // never closed
	_ = tr.Begin("hls", "model")    // never closed
	outer.End()                     // non-LIFO: two younger spans still open
	next := tr.Begin("dse", "partition")
	next.End()
	tr.Close()

	ev := mem.Events()
	var diag *Event
	for i := range ev {
		if ev[i].Name == "span-misnest" {
			diag = &ev[i]
		}
	}
	if diag == nil {
		t.Fatalf("no diagnostic emitted: %+v", ev)
	}
	if diag.Cat != "obs" || diag.Args["reason"] != "out-of-order" {
		t.Fatalf("diagnostic = %+v", diag)
	}
	if n, _ := diag.Args["abandoned"].(int64); n != 2 {
		t.Fatalf("abandoned = %v, want 2", diag.Args["abandoned"])
	}
	if diag.Args["op"] != "partition" {
		t.Fatalf("diagnostic names wrong span: %+v", diag.Args)
	}
	// The repaired stack must leave the next top-level span unparented.
	for _, e := range ev {
		if e.Ph == PhaseBegin && e.Name == "partition" && e.NS > diag.NS {
			if e.Parent != 0 {
				t.Fatalf("later span parented under abandoned span: %+v", e)
			}
		}
	}
}

// TestSpanMisnestDoubleClose: ending a span twice reports not-open and
// leaves the open stack untouched.
func TestSpanMisnestDoubleClose(t *testing.T) {
	mem := NewMemory()
	tr := New(mem, WithClock(fakeClock()))
	outer := tr.Begin("b2c", "compile")
	inner := tr.Begin("bytecode", "verify")
	inner.End()
	inner.End() // double close
	child := tr.Begin("lint", "check")
	child.End()
	outer.End()
	tr.Close()

	ev := mem.Events()
	var diags, misEnds int
	for _, e := range ev {
		if e.Name == "span-misnest" {
			diags++
			if e.Args["reason"] != "not-open" {
				t.Fatalf("reason = %v", e.Args["reason"])
			}
		}
	}
	if diags != 1 {
		t.Fatalf("got %d diagnostics, want 1", diags)
	}
	// The outer span must still be the parent of the later child: the
	// double close must not pop it.
	var outerID, childParent int64
	for _, e := range ev {
		if e.Ph == PhaseBegin && e.Name == "compile" {
			outerID = e.ID
		}
		if e.Ph == PhaseBegin && e.Name == "check" {
			childParent = e.Parent
		}
	}
	if childParent != outerID {
		t.Fatalf("child parent = %d, want %d (stack corrupted)", childParent, outerID)
	}
	_ = misEnds
}

// TestChromeNonFiniteAndEscaping: non-finite float args (stored as the
// strings "+Inf"/"NaN" by F64) and args needing JSON escaping must
// survive JSONL → Chrome conversion as valid JSON.
func TestChromeNonFiniteAndEscaping(t *testing.T) {
	var jsonl bytes.Buffer
	tr := New(NewJSONL(&jsonl), WithClock(fakeClock()))
	sp := tr.Begin("tuner", "select",
		F64("ucb", math.Inf(1)),
		F64("mean", math.Inf(-1)),
		F64("auc", math.NaN()),
		Str("arm", "quoted \"arm\"\nnewline\tand\\slash"),
		Str("html", "<script>&amp;</script>"))
	sp.End(F64("reward", 0.5))
	tr.Close()

	events, err := ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Args["ucb"] != "+Inf" || events[0].Args["mean"] != "-Inf" || events[0].Args["auc"] != "NaN" {
		t.Fatalf("non-finite args lost: %+v", events[0].Args)
	}
	if events[0].Args["arm"] != "quoted \"arm\"\nnewline\tand\\slash" {
		t.Fatalf("escaped arg lost: %q", events[0].Args["arm"])
	}

	var chrome bytes.Buffer
	if err := ConvertJSONLToChrome(bytes.NewReader(jsonl.Bytes()), &chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output with non-finite args is not JSON: %v", err)
	}
	var begin map[string]any
	for _, e := range doc.TraceEvents {
		if e["ph"] == "B" {
			begin = e
		}
	}
	args := begin["args"].(map[string]any)
	if args["ucb"] != "+Inf" || args["auc"] != "NaN" {
		t.Fatalf("chrome args lost non-finite encoding: %v", args)
	}
	if args["arm"] != "quoted \"arm\"\nnewline\tand\\slash" {
		t.Fatalf("chrome args lost escaping: %q", args["arm"])
	}
}

// TestJSONLCloseWrapsEncodeError: the first Encode failure must surface
// from Close with the failing event's index and identity.
func TestJSONLCloseWrapsEncodeError(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Emit(Event{Ph: PhaseBegin, Name: "ok"})
	// Channels are not JSON-serializable, so this Emit fails to encode.
	s.Emit(Event{Ph: PhaseInstant, Name: "poison", Args: map[string]any{"ch": make(chan int)}})
	s.Emit(Event{Ph: PhaseEnd, Name: "after"})
	err := s.Close()
	if err == nil {
		t.Fatal("Close swallowed the encode error")
	}
	msg := err.Error()
	for _, want := range []string{"event 1", "poison", PhaseInstant} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// TestSparkline quantizes into the block glyphs with min/max pinning.
func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3}, 8)
	if got != "▁▃▅█" {
		t.Errorf("sparkline = %q", got)
	}
	if Sparkline(nil, 8) != "" {
		t.Error("empty input should render empty")
	}
	if got := Sparkline([]float64{5, 5, 5}, 8); got != "▁▁▁" {
		t.Errorf("flat curve = %q", got)
	}
	if n := len([]rune(Sparkline(make([]float64, 1000), 64))); n != 64 {
		t.Errorf("downsampled width = %d, want 64", n)
	}
}
