package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is the Chrome trace_event wire format (the JSON the
// chrome://tracing and Perfetto loaders accept). Timestamps are
// microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders events as one Chrome trace_event document. Span
// end events inherit the name/category of their begin so the converter
// round-trips a bare JSONL stream (whose E records carry only the span
// id). Each track gets a thread_name metadata record: tid 0 is the
// compile/DSE pipeline, higher tids are DSE workers.
func WriteChrome(events []Event, w io.Writer) error {
	type spanInfo struct{ cat, name string }
	begins := map[int64]spanInfo{}
	tids := map[int]bool{}
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, e := range events {
		tids[e.TID] = true
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: e.Ph,
			TS: float64(e.NS) / 1e3, PID: 1, TID: e.TID,
			Args: e.Args,
		}
		switch e.Ph {
		case PhaseBegin:
			begins[e.ID] = spanInfo{cat: e.Cat, name: e.Name}
		case PhaseEnd:
			if si, ok := begins[e.ID]; ok && ce.Name == "" {
				ce.Name, ce.Cat = si.name, si.cat
			}
		case PhaseInstant:
			ce.S = "t"
		case PhaseCounter:
			// Counter samples keep their args {value: N}.
		default:
			return fmt.Errorf("obs: unknown phase %q", e.Ph)
		}
		if e.VM != nil {
			args := make(map[string]any, len(ce.Args)+1)
			for k, v := range ce.Args {
				args[k] = v
			}
			args["vmin"] = *e.VM
			ce.Args = args
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}

	var order []int
	for tid := range tids { //determinism:allow — keys are collected then sorted below

		order = append(order, tid)
	}
	sort.Ints(order)
	meta := make([]chromeEvent, 0, len(order))
	for _, tid := range order {
		name := "pipeline"
		if tid > 0 {
			name = fmt.Sprintf("dse-worker-%d", tid-1)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	doc.TraceEvents = append(meta, doc.TraceEvents...)

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ConvertJSONLToChrome re-renders a native JSONL trace stream as a
// Chrome trace_event document, so `-trace out.jsonl` runs open in
// chrome://tracing/Perfetto after the fact.
func ConvertJSONLToChrome(r io.Reader, w io.Writer) error {
	events, err := ReadJSONL(r)
	if err != nil {
		return err
	}
	return WriteChrome(events, w)
}
