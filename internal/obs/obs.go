// Package obs is the framework's zero-dependency observability layer:
// hierarchical tracing spans, instant events, and monotonic counters,
// emitted to pluggable sinks (JSONL stream, Chrome trace_event file,
// in-memory summary collector).
//
// Every event carries a dual clock. The real clock is monotonic
// nanoseconds since the trace started and measures where the *tool*
// spends time (compile passes, HLS estimations). The virtual clock is
// the DSE scheduler's simulated wall-clock in minutes — the x-axis of
// the paper's Fig. 3 — attached to events via the Vmin key-value so a
// search trajectory can be replayed against either timeline.
//
// The non-negotiable invariant is that observation never perturbs the
// observed run: a nil *Trace is fully usable (every method no-ops), and
// an enabled trace only reads pipeline state — it draws no randomness
// and owns no search decisions. The determinism test in internal/core
// runs the S-W DSE with and without tracing and asserts byte-identical
// trajectories.
package obs

import (
	"math"
	"sync"
	"time"
)

// KV is one event attribute. Keys are snake_case by convention; the
// reserved key "vmin" (see Vmin) routes to the event's virtual-clock
// field instead of the args map.
type KV struct {
	K string
	V any
}

// Str, Int, I64, F64, and Bool build typed attributes.
func Str(k, v string) KV       { return KV{K: k, V: v} }
func Int(k string, v int) KV   { return KV{K: k, V: int64(v)} }
func I64(k string, v int64) KV { return KV{K: k, V: v} }

// F64 builds a float attribute. JSON has no encoding for non-finite
// floats (the UCB exploration bonus of a never-used bandit arm is +Inf),
// so those are stored as the strings "+Inf", "-Inf", and "NaN".
func F64(k string, v float64) KV {
	switch {
	case math.IsInf(v, 1):
		return KV{K: k, V: "+Inf"}
	case math.IsInf(v, -1):
		return KV{K: k, V: "-Inf"}
	case math.IsNaN(v):
		return KV{K: k, V: "NaN"}
	}
	return KV{K: k, V: v}
}
func Bool(k string, v bool) KV { return KV{K: k, V: v} }

// vminKey is the reserved attribute key carrying the DSE virtual clock.
const vminKey = "vmin"

// Vmin stamps an event with the DSE virtual clock (simulated minutes).
func Vmin(minutes float64) KV { return KV{K: vminKey, V: minutes} }

// Event phases, mirroring the Chrome trace_event phase letters so the
// JSONL stream converts 1:1.
const (
	PhaseBegin   = "B" // span start
	PhaseEnd     = "E" // span end
	PhaseInstant = "i" // instant event
	PhaseCounter = "C" // counter sample
)

// Event is one trace record. The native on-disk form is JSONL: one JSON
// object per line, in emission order.
type Event struct {
	Ph   string `json:"ph"`
	Cat  string `json:"cat,omitempty"`
	Name string `json:"name"`
	// NS is the real clock: nanoseconds since the trace started.
	NS int64 `json:"ns"`
	// TID is the logical track: 0 is the pipeline, DSE workers use
	// worker-index+1 so their partition spans nest per track.
	TID int `json:"tid"`
	// ID and Parent link span begin/end pairs into a hierarchy.
	ID     int64 `json:"id,omitempty"`
	Parent int64 `json:"par,omitempty"`
	// VM is the DSE virtual clock in minutes, when stamped (Vmin).
	VM   *float64       `json:"vmin,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Sink receives events in emission order. Implementations must be safe
// for use from a single Trace (the Trace serializes Emit calls).
type Sink interface {
	Emit(e Event)
	Close() error
}

// Trace is a handle threaded through the pipeline. The zero value of
// *Trace (nil) is a disabled trace: every method is a cheap no-op, so
// call sites need no guards (hot loops may still check Enabled to skip
// argument construction).
type Trace struct {
	mu    sync.Mutex
	sink  Sink
	start time.Time
	now   func() int64 // ns since start; injectable for tests
	reg   *Registry    // optional metrics registry; nil is free

	nextID   int64
	open     map[int][]int64 // per-tid stack of open span ids
	counters map[string]int64
}

// Option configures a Trace.
type Option func(*Trace)

// WithClock replaces the real clock (nanoseconds since trace start).
// Tests use a deterministic counter so emitted bytes are reproducible.
func WithClock(now func() int64) Option {
	return func(t *Trace) { t.now = now }
}

// WithRegistry attaches a metrics registry: every span close feeds the
// dual-clock stage histograms (stage_us from the real clock; stage_vmin
// when both endpoints carry a Vmin stamp), and call sites may record
// further series via Trace.Observe. Like the trace itself, the registry
// only aggregates values the run already computed — attaching one never
// perturbs a run.
func WithRegistry(r *Registry) Option {
	return func(t *Trace) { t.reg = r }
}

// New creates an enabled trace writing to sink.
func New(sink Sink, opts ...Option) *Trace {
	t := &Trace{
		sink: sink,
		//determinism:allow injectable wall clock (WithClock); timestamps are telemetry only
		start:    time.Now(),
		open:     map[int][]int64{},
		counters: map[string]int64{},
	}
	t.now = func() int64 { return time.Since(t.start).Nanoseconds() }
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether events will be recorded. Hot paths check this
// before building attribute lists.
func (t *Trace) Enabled() bool { return t != nil }

// Close flushes and closes the sink.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sink.Close()
}

// Span is an open interval on one track. A nil *Span (from a nil trace)
// no-ops on End.
type Span struct {
	t       *Trace
	id      int64
	tid     int
	cat     string
	name    string
	beginNS int64
	beginVM *float64
}

// Begin opens a span on the pipeline track (tid 0).
func (t *Trace) Begin(cat, name string, kvs ...KV) *Span {
	return t.BeginT(0, cat, name, kvs...)
}

// BeginT opens a span on an explicit track. Spans on one track must
// close LIFO (the Chrome B/E contract).
func (t *Trace) BeginT(tid int, cat, name string, kvs ...KV) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	e := Event{Ph: PhaseBegin, Cat: cat, Name: name, NS: t.now(), TID: tid, ID: id}
	if st := t.open[tid]; len(st) > 0 {
		e.Parent = st[len(st)-1]
	}
	applyKVs(&e, kvs)
	t.open[tid] = append(t.open[tid], id)
	t.sink.Emit(e)
	return &Span{t: t, id: id, tid: tid, cat: cat, name: name, beginNS: e.NS, beginVM: e.VM}
}

// End closes the span, attaching any final attributes (outcomes,
// virtual end time). Spans on a track are expected to close LIFO; a
// non-LIFO close is repaired (the stack is truncated through this span,
// implicitly abandoning the younger opens) and reported via an
// "obs"/"span-misnest" instant event so later parenting stays sane
// instead of silently corrupting.
func (s *Span) End(kvs ...KV) {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Event{Ph: PhaseEnd, NS: t.now(), TID: s.tid, ID: s.id}
	st := t.open[s.tid]
	switch {
	case len(st) > 0 && st[len(st)-1] == s.id:
		t.open[s.tid] = st[:len(st)-1]
	default:
		found := -1
		for i := len(st) - 1; i >= 0; i-- {
			if st[i] == s.id {
				found = i
				break
			}
		}
		diag := Event{
			Ph: PhaseInstant, Cat: "obs", Name: "span-misnest",
			NS: e.NS, TID: s.tid,
			Args: map[string]any{"span": s.id, "cat": s.cat, "op": s.name},
		}
		if found >= 0 {
			// Out-of-order close: abandon the younger opens so the
			// stack matches reality again.
			diag.Args["reason"] = "out-of-order"
			diag.Args["abandoned"] = int64(len(st) - found - 1)
			t.open[s.tid] = st[:found]
		} else {
			// Double close or close on the wrong track; leave the
			// stack untouched.
			diag.Args["reason"] = "not-open"
		}
		t.sink.Emit(diag)
	}
	applyKVs(&e, kvs)
	t.sink.Emit(e)
	if t.reg != nil {
		stage := s.name
		if s.cat != "" {
			stage = s.cat + "/" + s.name
		}
		lbl := L("stage", stage)
		t.reg.Observe("stage_us", float64(e.NS-s.beginNS)/1e3, lbl)
		if s.beginVM != nil && e.VM != nil {
			t.reg.Observe("stage_vmin", *e.VM-*s.beginVM, lbl)
		}
	}
}

// Event emits an instant event on the pipeline track.
func (t *Trace) Event(cat, name string, kvs ...KV) { t.EventT(0, cat, name, kvs...) }

// EventT emits an instant event on an explicit track.
func (t *Trace) EventT(tid int, cat, name string, kvs ...KV) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Event{Ph: PhaseInstant, Cat: cat, Name: name, NS: t.now(), TID: tid}
	if st := t.open[tid]; len(st) > 0 {
		e.Parent = st[len(st)-1]
	}
	applyKVs(&e, kvs)
	t.sink.Emit(e)
}

// Count adds delta to a monotonic counter and emits a sample carrying
// the running total.
func (t *Trace) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters[name] += delta
	t.sink.Emit(Event{
		Ph: PhaseCounter, Name: name, NS: t.now(),
		Args: map[string]any{"value": t.counters[name]},
	})
	if t.reg != nil {
		t.reg.Add(name, delta)
	}
}

// Gauge emits a point-in-time sample of a named quantity.
func (t *Trace) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink.Emit(Event{
		Ph: PhaseCounter, Name: name, NS: t.now(),
		Args: map[string]any{"value": v},
	})
	if t.reg != nil {
		t.reg.Set(name, v)
	}
}

// Observe records v into the attached registry's histogram series,
// emitting no trace event. A trace without a registry (and a nil trace)
// no-ops, so hot paths need no guards.
func (t *Trace) Observe(name string, v float64, labels ...Label) {
	if t == nil || t.reg == nil {
		return
	}
	t.reg.Observe(name, v, labels...)
}

// Metrics returns the attached registry, or nil.
func (t *Trace) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Counters returns a snapshot of the monotonic counter totals.
func (t *Trace) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters { //determinism:allow — map-to-map copy, order-insensitive

		out[k] = v
	}
	return out
}

func applyKVs(e *Event, kvs []KV) {
	for _, kv := range kvs {
		if kv.K == vminKey {
			if m, ok := kv.V.(float64); ok {
				vm := m
				e.VM = &vm
				continue
			}
		}
		if e.Args == nil {
			e.Args = make(map[string]any, len(kvs))
		}
		e.Args[kv.K] = kv.V
	}
}
