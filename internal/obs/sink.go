package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlSink streams events as one JSON object per line — the trace's
// native format. It does not close the underlying writer; the caller
// owns the file handle.
type jsonlSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int   // events seen, so a Close error names the failing index
	err error // first Encode error, wrapped with its event index
}

// NewJSONL returns a sink streaming events to w as JSON lines.
func NewJSONL(w io.Writer) Sink {
	bw := bufio.NewWriter(w)
	return &jsonlSink{bw: bw, enc: json.NewEncoder(bw)}
}

func (s *jsonlSink) Emit(e Event) {
	if s.err != nil {
		s.n++
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.err = fmt.Errorf("obs: encoding event %d (%s %q): %w", s.n, e.Ph, e.Name, err)
	}
	s.n++
}

func (s *jsonlSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// discardSink drops every event. Useful when only the side products of
// an enabled trace are wanted (a metrics registry, pprof labels) without
// retaining the event stream.
type discardSink struct{}

// Discard returns a sink that drops all events.
func Discard() Sink { return discardSink{} }

func (discardSink) Emit(Event) {}

func (discardSink) Close() error { return nil }

// chromeSink buffers events and writes one Chrome trace_event JSON
// document on Close (chrome://tracing and Perfetto load it directly).
type chromeSink struct {
	w      io.Writer
	events []Event
}

// NewChrome returns a sink that renders the whole trace as a Chrome
// trace_event file when closed.
func NewChrome(w io.Writer) Sink {
	return &chromeSink{w: w}
}

func (s *chromeSink) Emit(e Event) { s.events = append(s.events, e) }

func (s *chromeSink) Close() error { return WriteChrome(s.events, s.w) }

// multiSink fans every event out to several sinks (e.g. a JSONL file
// plus the in-memory summary collector).
type multiSink struct{ sinks []Sink }

// Multi combines sinks; Close closes each and returns the first error.
func Multi(sinks ...Sink) Sink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return &multiSink{sinks: sinks}
}

func (m *multiSink) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

func (m *multiSink) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MemorySink buffers every emitted event in order, for tests and
// post-hoc conversion.
type MemorySink struct{ events []Event }

// NewMemory returns an in-memory sink; Events reads it back.
func NewMemory() *MemorySink { return &MemorySink{} }

func (s *MemorySink) Emit(e Event) { s.events = append(s.events, e) }

func (s *MemorySink) Close() error { return nil }

// Events returns the emitted events in order.
func (s *MemorySink) Events() []Event { return s.events }

// ReadJSONL decodes a JSONL trace stream back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
