package obs

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries: samples exactly on a bucket's lower
// bound belong to that bucket, values below/above the span land in the
// under/overflow buckets, and no sample is ever dropped.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram()
	h.Observe(histBounds[3]) // exact lower bound of bucket 3
	if h.counts[3] != 1 {
		t.Fatalf("exact bound landed in wrong bucket: %v", h.Buckets())
	}
	h.Observe(math.Nextafter(histBounds[4], 0)) // just under bucket 4's lower bound
	if h.counts[3] != 2 {
		t.Fatalf("value below next bound not in bucket 3: %v", h.Buckets())
	}
	h.Observe(0)
	h.Observe(-5)
	h.Observe(histMinBound / 2)
	if h.under != 3 {
		t.Fatalf("under = %d, want 3", h.under)
	}
	h.Observe(histMaxBound)
	h.Observe(math.Inf(1))
	if h.over != 2 {
		t.Fatalf("over = %d, want 2", h.over)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	var bucketed uint64
	for _, b := range h.Buckets() {
		bucketed += b.N
	}
	if bucketed != h.Count() {
		t.Fatalf("buckets hold %d of %d samples", bucketed, h.Count())
	}
}

// TestHistogramMergeEqualsConcatenation: merging shard histograms must
// be exactly equivalent to observing the concatenated sample stream —
// the property that makes sharded collection safe.
func TestHistogramMergeEqualsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		shards := make([]*Histogram, 4)
		whole := NewHistogram()
		for i := range shards {
			shards[i] = NewHistogram()
		}
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			// Log-uniform over the whole span plus out-of-range extremes.
			v := math.Exp(rng.Float64()*40 - 16)
			if rng.Intn(20) == 0 {
				v = -v
			}
			shards[rng.Intn(len(shards))].Observe(v)
			whole.Observe(v)
		}
		merged := NewHistogram()
		for _, s := range shards {
			merged.Merge(s)
		}
		if merged.Count() != whole.Count() ||
			merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("trial %d: merged summary != concatenated (count %d/%d)",
				trial, merged.Count(), whole.Count())
		}
		// Sums associate differently across shards, so compare within a
		// relative ulp-scale tolerance rather than bit-exactly.
		if diff := math.Abs(merged.Sum() - whole.Sum()); diff > 1e-9*math.Abs(whole.Sum()) {
			t.Fatalf("trial %d: sum diverged: %v vs %v", trial, merged.Sum(), whole.Sum())
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if m, w := merged.Quantile(p), whole.Quantile(p); m != w {
				t.Fatalf("trial %d: q(%v) merged %v != whole %v", trial, p, m, w)
			}
		}
		if merged.under != whole.under || merged.over != whole.over {
			t.Fatalf("trial %d: out-of-range buckets diverge", trial)
		}
	}
}

// TestHistogramQuantilesMonotone: q(p) must be non-decreasing in p and
// always within [min, max].
func TestHistogramQuantilesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	for i := 0; i < 500; i++ {
		h.Observe(math.Exp(rng.Float64()*30 - 10))
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("q(%v)=%v < q(prev)=%v", p, q, prev)
		}
		if q < h.Min() || q > h.Max() {
			t.Fatalf("q(%v)=%v outside [%v, %v]", p, q, h.Min(), h.Max())
		}
		prev = q
	}
}

// TestHistogramEdgeCases: zero- and one-sample histograms.
func TestHistogramEdgeCases(t *testing.T) {
	empty := NewHistogram()
	if empty.Count() != 0 || empty.P50() != 0 || empty.Mean() != 0 || empty.Buckets() != nil {
		t.Fatal("empty histogram must read as zeros")
	}
	one := NewHistogram()
	one.Observe(3.25)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := one.Quantile(p); q != 3.25 {
			t.Fatalf("single-sample q(%v) = %v, want exact 3.25", p, q)
		}
	}
	if one.Min() != 3.25 || one.Max() != 3.25 || one.Mean() != 3.25 {
		t.Fatal("single-sample summary not exact")
	}
	// Merging into an empty histogram copies the source exactly.
	dst := NewHistogram()
	dst.Merge(one)
	if dst.Min() != 3.25 || dst.Max() != 3.25 || dst.Count() != 1 {
		t.Fatalf("merge into empty: %+v", dst)
	}
	// Nil receivers no-op.
	var nilH *Histogram
	nilH.Observe(1)
	nilH.Merge(one)
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must no-op")
	}
}

// TestSeriesNaming: labels sort by key and render Prometheus-style, so
// the same label set always addresses the same series.
func TestSeriesNaming(t *testing.T) {
	a := seriesName("stage_us", []Label{L("stage", "hls/estimate"), L("app", "sw")})
	b := seriesName("stage_us", []Label{L("app", "sw"), L("stage", "hls/estimate")})
	if a != b {
		t.Fatalf("label order changed series identity: %q vs %q", a, b)
	}
	want := `stage_us{app="sw",stage="hls/estimate"}`
	if a != want {
		t.Fatalf("series = %q, want %q", a, want)
	}
	if got := seriesName("plain", nil); got != "plain" {
		t.Fatalf("unlabeled series = %q", got)
	}
}

// TestRegistryNilAndBasics: nil registry no-ops; observations, counters,
// and gauges land under their (name, labels) series.
func TestRegistryNilAndBasics(t *testing.T) {
	var nilR *Registry
	nilR.Observe("x", 1)
	nilR.Add("x", 1)
	nilR.Set("x", 1)
	if nilR.Hist("x") != nil || nilR.Snapshot() != nil {
		t.Fatal("nil registry must read as empty")
	}

	r := NewRegistry()
	r.Observe("lat", 10, L("stage", "b2c"))
	r.Observe("lat", 20, L("stage", "b2c"))
	r.Observe("lat", 99, L("stage", "hls"))
	r.Add("evals", 3)
	r.Add("evals", 2)
	r.Set("heap", 123)
	r.Set("nan", math.NaN())
	r.Set("inf", math.Inf(1))

	if h := r.Hist("lat", L("stage", "b2c")); h.Count() != 2 || h.Max() != 20 {
		t.Fatalf("b2c series = %+v", h)
	}
	s := r.Snapshot()
	if s.Counters["evals"] != 5 {
		t.Fatalf("counter = %d", s.Counters["evals"])
	}
	if s.Gauges["nan"] != 0 || s.Gauges["inf"] != math.MaxFloat64 {
		t.Fatalf("non-finite gauges not clamped: %v", s.Gauges)
	}
	if hs := s.Histograms[`lat{stage="hls"}`]; hs.Count != 1 || hs.P99 != 99 {
		t.Fatalf("hls series snapshot = %+v", hs)
	}
}

// TestMetricsJSONRoundTrip: WriteJSON output decodes back into an equal
// snapshot (the contract between `s2fa -metrics` and `s2fa-report`).
func TestMetricsJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Observe("stage_us", 1500, L("stage", "kdsl/compile"))
	r.Add("dse.evals", 42)
	r.Set("go.goroutines", 8)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMetricsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["dse.evals"] != 42 || got.Gauges["go.goroutines"] != 8 {
		t.Fatalf("round trip lost scalars: %+v", got)
	}
	hs := got.Histograms[`stage_us{stage="kdsl/compile"}`]
	if hs.Count != 1 || hs.P50 != 1500 {
		t.Fatalf("round trip lost histogram: %+v", hs)
	}
}

// TestPrometheusExport: sorted, typed text exposition with cumulative
// histogram buckets.
func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Observe("stage_us", 10, L("stage", "b2c"))
	r.Observe("stage_us", 20, L("stage", "b2c"))
	r.Add("dse.evals", 7)
	r.Set("go.heap_objects_bytes", 4096)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dse_evals counter",
		"dse_evals 7",
		"# TYPE go_heap_objects_bytes gauge",
		"go_heap_objects_bytes 4096",
		"# TYPE stage_us histogram",
		`stage_us_count{stage="b2c"} 2`,
		`stage_us_sum{stage="b2c"} 30`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Bucket counts must be cumulative and end at the total.
	lines := strings.Split(out, "\n")
	var cum []string
	for _, l := range lines {
		if strings.HasPrefix(l, "stage_us_bucket") {
			cum = append(cum, l[strings.LastIndexByte(l, ' ')+1:])
		}
	}
	if len(cum) < 2 || !sort.StringsAreSorted(cum[:len(cum)-1]) || cum[len(cum)-1] != "2" {
		t.Fatalf("bucket series not cumulative: %v", cum)
	}
	// Deterministic: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("prometheus export not deterministic")
	}
}

// TestTraceRegistryIntegration: WithRegistry makes every span close feed
// the dual-clock stage histograms, mirrors counters and gauges, and
// routes Trace.Observe — all without changing the emitted event stream.
func TestTraceRegistryIntegration(t *testing.T) {
	run := func(reg *Registry) []Event {
		mem := NewMemory()
		opts := []Option{WithClock(fakeClock())}
		if reg != nil {
			opts = append(opts, WithRegistry(reg))
		}
		tr := New(mem, opts...)
		sp := tr.Begin("hls", "estimate", Str("cache", "fresh"), Vmin(0))
		tr.Observe("hls_synth_minutes", 7.5)
		sp.End(Vmin(7.5))
		tr.Count("dse.evals", 3)
		tr.Gauge("pool.depth", 2)
		tr.Close()
		return mem.Events()
	}

	reg := NewRegistry()
	withReg := run(reg)
	without := run(nil)
	if len(withReg) != len(without) {
		t.Fatalf("registry changed event count: %d vs %d", len(withReg), len(without))
	}
	for i := range withReg {
		if withReg[i].Name != without[i].Name || withReg[i].Ph != without[i].Ph {
			t.Fatalf("registry changed event %d: %+v vs %+v", i, withReg[i], without[i])
		}
	}

	us := reg.Hist("stage_us", L("stage", "hls/estimate"))
	if us.Count() != 1 {
		t.Fatalf("stage_us missing: %+v", reg.Snapshot())
	}
	if us.Min() != 1 { // fakeClock ticks 1000ns per now() call: begin→end is one tick = 1µs
		t.Fatalf("stage_us sample = %vµs, want 1µs", us.Min())
	}
	vm := reg.Hist("stage_vmin", L("stage", "hls/estimate"))
	if vm.Count() != 1 || vm.Min() != 7.5 {
		t.Fatalf("stage_vmin = %+v", vm)
	}
	if h := reg.Hist("hls_synth_minutes"); h.Count() != 1 || h.Min() != 7.5 {
		t.Fatalf("Trace.Observe did not land: %+v", h)
	}
	s := reg.Snapshot()
	if s.Counters["dse.evals"] != 3 || s.Gauges["pool.depth"] != 2 {
		t.Fatalf("counter/gauge mirror missing: %+v", s)
	}

	// Trace.Observe on a registry-less or nil trace no-ops.
	New(NewMemory()).Observe("x", 1)
	var nilT *Trace
	nilT.Observe("x", 1)
	if nilT.Metrics() != nil {
		t.Fatal("nil trace returned a registry")
	}
}
