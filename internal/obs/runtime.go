package obs

// Periodic runtime/metrics sampling: GC pauses, heap footprint, alloc
// volume, and goroutine count, recorded as registry gauges so a metrics
// snapshot explains not just where the pipeline spent time but what the
// Go runtime was doing underneath it. Sampling is read-only (the
// runtime/metrics API has no side effects) and entirely outside the
// deterministic pipeline: gauges never feed back into a run.

import (
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSamples maps runtime/metrics names to the gauge names they are
// exported under.
var runtimeSamples = []struct {
	src, gauge string
}{
	{"/sched/goroutines:goroutines", "go.goroutines"},
	{"/memory/classes/heap/objects:bytes", "go.heap_objects_bytes"},
	{"/memory/classes/total:bytes", "go.total_bytes"},
	{"/gc/heap/allocs:bytes", "go.allocs_bytes_total"},
	{"/gc/cycles/total:gc-cycles", "go.gc_cycles_total"},
}

// gcPauses is sampled separately: it is a Float64Histogram, exported as
// p50/p99 gauges in seconds.
const gcPauses = "/sched/pauses/total/gc:seconds"

// SampleRuntime takes one runtime/metrics sample into reg's gauges.
// Safe to call at any time; a nil registry no-ops.
func SampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	samples := make([]metrics.Sample, 0, len(runtimeSamples)+1)
	for _, rs := range runtimeSamples {
		samples = append(samples, metrics.Sample{Name: rs.src})
	}
	samples = append(samples, metrics.Sample{Name: gcPauses})
	metrics.Read(samples)
	for i, rs := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			reg.Set(rs.gauge, float64(samples[i].Value.Uint64()))
		case metrics.KindFloat64:
			reg.Set(rs.gauge, samples[i].Value.Float64())
		}
	}
	if p := samples[len(samples)-1]; p.Value.Kind() == metrics.KindFloat64Histogram {
		h := p.Value.Float64Histogram()
		reg.Set("go.gc_pause_p50_seconds", histQuantile(h, 0.50))
		reg.Set("go.gc_pause_p99_seconds", histQuantile(h, 0.99))
	}
}

// histQuantile reads an approximate quantile off a runtime
// Float64Histogram (bucket upper bound at the target rank).
func histQuantile(h *metrics.Float64Histogram, p float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Buckets[i+1] is bucket i's upper bound; the first and last
			// boundaries may be ±Inf, so fall back to the finite side.
			hi := h.Buckets[i+1]
			if hi > 1e18 || hi < -1e18 { // treat ±Inf-ish as open
				hi = h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// StartRuntimeSampler samples runtime metrics into reg every interval
// until the returned stop function is called. Stop is idempotent and
// waits for the sampling goroutine to exit; it always takes one final
// sample so short runs still record their footprint.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				SampleRuntime(reg)
			case <-done:
				SampleRuntime(reg)
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
