package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Collector is a Sink that aggregates a run into the `-summary` report:
// per-stage real-time breakdown, the slowest fresh HLS estimations, the
// bandit arm table, and the entropy-window curve feeding the
// EntropyStopper.
type Collector struct {
	begins   map[int64]Event // open span id -> begin event
	stages   map[string]*stageAgg
	stageOrd []string

	hls []hlsSpan

	arms    map[string]*armAgg
	armOrd  []string
	entropy []float64

	incumbents int
	finalBest  float64
	counters   map[string]int64
	ctrOrd     []string
}

type stageAgg struct {
	count   int
	totalNS int64
}

type hlsSpan struct {
	durNS    int64
	point    string
	synthMin float64
	feasible bool
}

type armAgg struct {
	selections int
	wins       int
	lastAUC    float64
}

// NewCollector returns an empty summary collector.
func NewCollector() *Collector {
	return &Collector{
		begins:    map[int64]Event{},
		stages:    map[string]*stageAgg{},
		arms:      map[string]*armAgg{},
		counters:  map[string]int64{},
		finalBest: math.NaN(),
	}
}

// Emit implements Sink.
func (c *Collector) Emit(e Event) {
	switch e.Ph {
	case PhaseBegin:
		c.begins[e.ID] = e
	case PhaseEnd:
		b, ok := c.begins[e.ID]
		if !ok {
			return
		}
		delete(c.begins, e.ID)
		dur := e.NS - b.NS
		key := b.Cat + "/" + b.Name
		agg := c.stages[key]
		if agg == nil {
			agg = &stageAgg{}
			c.stages[key] = agg
			c.stageOrd = append(c.stageOrd, key)
		}
		agg.count++
		agg.totalNS += dur
		if b.Cat == "hls" && b.Name == "estimate" {
			c.recordHLS(b, e, dur)
		}
	case PhaseInstant:
		c.instant(e)
	case PhaseCounter:
		if _, ok := c.counters[e.Name]; !ok {
			c.ctrOrd = append(c.ctrOrd, e.Name)
		}
		c.counters[e.Name] = asInt(e.Args["value"])
	}
}

func (c *Collector) recordHLS(b, e Event, dur int64) {
	// Cache hits cost no synthesis; only fresh estimations rank. The
	// cache disposition is known at span open, so it rides the begin.
	if s, _ := b.Args["cache"].(string); s != "fresh" {
		return
	}
	point, _ := b.Args["point"].(string)
	feasible, _ := e.Args["feasible"].(bool)
	c.hls = append(c.hls, hlsSpan{
		durNS:    dur,
		point:    point,
		synthMin: asFloat(e.Args["synth_min"]),
		feasible: feasible,
	})
}

func (c *Collector) instant(e Event) {
	switch {
	case e.Cat == "tuner" && e.Name == "select":
		arm, _ := e.Args["arm"].(string)
		a := c.arm(arm)
		a.selections++
		a.lastAUC = asFloat(e.Args["auc"])
	case e.Cat == "tuner" && e.Name == "reward":
		arm, _ := e.Args["arm"].(string)
		if nb, _ := e.Args["new_best"].(bool); nb {
			c.arm(arm).wins++
		}
	case e.Cat == "dse" && e.Name == "entropy":
		c.entropy = append(c.entropy, asFloat(e.Args["h"]))
	case e.Cat == "dse" && e.Name == "incumbent":
		c.incumbents++
		c.finalBest = asFloat(e.Args["objective"])
	}
}

func (c *Collector) arm(name string) *armAgg {
	a := c.arms[name]
	if a == nil {
		a = &armAgg{}
		c.arms[name] = a
		c.armOrd = append(c.armOrd, name)
	}
	return a
}

// Close implements Sink.
func (c *Collector) Close() error { return nil }

// topK is how many slow HLS estimations the report lists.
const topK = 5

// Render formats the collected run as the `-summary` text report.
func (c *Collector) Render() string {
	var b strings.Builder
	b.WriteString("trace summary\n")

	if len(c.stageOrd) > 0 {
		b.WriteString("\nper-stage real time (spans aggregated by stage; nested stages overlap):\n")
		ord := append([]string(nil), c.stageOrd...)
		sort.SliceStable(ord, func(i, j int) bool {
			return c.stages[ord[i]].totalNS > c.stages[ord[j]].totalNS
		})
		for _, key := range ord {
			agg := c.stages[key]
			fmt.Fprintf(&b, "  %-22s %10.3fms  x%d\n", key, float64(agg.totalNS)/1e6, agg.count)
		}
	}

	if len(c.hls) > 0 {
		b.WriteString("\nslowest fresh HLS estimations (real time):\n")
		ranked := append([]hlsSpan(nil), c.hls...)
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].durNS > ranked[j].durNS })
		if len(ranked) > topK {
			ranked = ranked[:topK]
		}
		for _, h := range ranked {
			fmt.Fprintf(&b, "  %8.3fms  synth=%5.1fmin feasible=%-5v %s\n",
				float64(h.durNS)/1e6, h.synthMin, h.feasible, h.point)
		}
	}

	if len(c.armOrd) > 0 {
		b.WriteString("\nbandit arms (selections / new-best rewards / last AUC):\n")
		for _, name := range c.armOrd {
			a := c.arms[name]
			fmt.Fprintf(&b, "  %-24s %6d %6d %8.3f\n", name, a.selections, a.wins, a.lastAUC)
		}
	}

	if len(c.entropy) > 0 {
		fmt.Fprintf(&b, "\nentropy window (%d samples feeding the stopper): %s\n",
			len(c.entropy), Sparkline(c.entropy, 64))
	}
	if c.incumbents > 0 {
		fmt.Fprintf(&b, "incumbent updates: %d (final objective %.6g)\n", c.incumbents, c.finalBest)
	}

	if len(c.ctrOrd) > 0 {
		b.WriteString("\ncounters:\n")
		ord := append([]string(nil), c.ctrOrd...)
		sort.Strings(ord)
		for _, name := range ord {
			fmt.Fprintf(&b, "  %-24s %d\n", name, c.counters[name])
		}
	}
	return b.String()
}

// sparkChars are the eight block glyphs a sparkline quantizes into.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width unicode curve (bucketed by
// mean when len(values) > width).
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width <= 0 {
		width = 64
	}
	buckets := values
	if len(values) > width {
		buckets = make([]float64, width)
		for i := range buckets {
			lo := i * len(values) / width
			hi := (i + 1) * len(values) / width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range values[lo:hi] {
				sum += v
			}
			buckets[i] = sum / float64(hi-lo)
		}
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range buckets {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkChars)-1))
		}
		b.WriteRune(sparkChars[idx])
	}
	return b.String()
}

// asFloat coerces JSON-decoded or native numeric args.
func asFloat(v any) float64 {
	switch v := v.(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case int:
		return float64(v)
	}
	return math.NaN()
}

func asInt(v any) int64 {
	switch v := v.(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	case int:
		return int64(v)
	}
	return 0
}
