package obs

// The flight recorder: a bounded ring sink that retains only the last N
// events per track and dumps the retained context automatically when an
// anomaly fires. It answers "what was the run doing just before this
// went wrong" without the cost of a full trace — the rings hold a fixed
// window, so overhead is O(1) per event regardless of run length.
//
// Anomalies watched:
//   - a *fresh* HLS estimation whose real duration exceeds the
//     configured latency threshold ("hls-latency");
//   - a DSE run span that stops with reason "budget-exhausted"
//     ("dse-budget-exhausted") — the search ran out of virtual budget
//     before the entropy stop, so the window shows where time went;
//   - a blaze fallback instant ("blaze-fallback") — an accelerator
//     request bounced back to the JVM;
//   - a compile-cache poisoning instant ("ccache-poisoned") — a cached
//     kernel failed its integrity checksum on a hit, was evicted, and
//     the caller fell back to a fresh compile.
//
// Like every sink, the recorder is passive: it only reads the event
// stream and never feeds anything back into the run.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Recorder trigger reasons.
const (
	ReasonHLSLatency      = "hls-latency"
	ReasonBudgetExhausted = "dse-budget-exhausted"
	ReasonBlazeFallback   = "blaze-fallback"
	ReasonCachePoisoned   = "ccache-poisoned"
)

// RecorderConfig bounds the recorder's memory and tunes its triggers.
// The zero value picks usable defaults.
type RecorderConfig struct {
	// PerTrack is the ring capacity per TID (default 64).
	PerTrack int
	// HLSLatencyNS triggers a dump when a fresh hls/estimate span's
	// real duration exceeds it (default 250ms; <0 disables the trigger).
	HLSLatencyNS int64
	// MaxDumps caps retained dumps; later anomalies still count but
	// keep no window (default 16).
	MaxDumps int
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.PerTrack <= 0 {
		c.PerTrack = 64
	}
	if c.HLSLatencyNS == 0 {
		c.HLSLatencyNS = 250e6
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 16
	}
	return c
}

// Dump is one captured anomaly: the trigger event plus the retained
// window, flattened across tracks in emission order.
type Dump struct {
	Reason  string  `json:"reason"`
	Trigger Event   `json:"trigger"`
	Events  []Event `json:"events"`
}

// seqEvent pairs an event with its global emission index so a flattened
// dump can be ordered deterministically even across per-track rings.
type seqEvent struct {
	seq int64
	ev  Event
}

// ring is a fixed-capacity circular buffer of recent events.
type ring struct {
	buf  []seqEvent
	next int
	full bool
}

func (r *ring) push(e seqEvent) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.full = true
}

// inOrder returns the ring contents oldest-first.
func (r *ring) inOrder() []seqEvent {
	if !r.full {
		return append([]seqEvent(nil), r.buf...)
	}
	out := make([]seqEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Recorder is the flight-recorder sink. Create with NewRecorder and
// attach via Multi alongside other sinks (or alone). Safe for use from
// a single Trace (the Trace serializes Emit).
type Recorder struct {
	cfg    RecorderConfig
	rings  map[int]*ring
	begins map[int64]Event // open span id -> begin event
	seq    int64
	dumps  []Dump
	missed int // anomalies past MaxDumps
}

// NewRecorder returns a flight recorder with the given bounds.
func NewRecorder(cfg RecorderConfig) *Recorder {
	return &Recorder{
		cfg:    cfg.withDefaults(),
		rings:  map[int]*ring{},
		begins: map[int64]Event{},
	}
}

// Emit implements Sink.
func (r *Recorder) Emit(e Event) {
	r.seq++
	rg := r.rings[e.TID]
	if rg == nil {
		rg = &ring{buf: make([]seqEvent, 0, r.cfg.PerTrack)}
		r.rings[e.TID] = rg
	}
	rg.push(seqEvent{seq: r.seq, ev: e})

	switch e.Ph {
	case PhaseBegin:
		r.begins[e.ID] = e
	case PhaseEnd:
		b, ok := r.begins[e.ID]
		if !ok {
			return
		}
		delete(r.begins, e.ID)
		if b.Cat == "hls" && b.Name == "estimate" && r.cfg.HLSLatencyNS >= 0 {
			if s, _ := b.Args["cache"].(string); s == "fresh" && e.NS-b.NS > r.cfg.HLSLatencyNS {
				r.dump(ReasonHLSLatency, e)
			}
		}
		if b.Cat == "dse" && b.Name == "run" {
			if stop, _ := e.Args["stop"].(string); stop == string(stopBudgetExhausted) {
				r.dump(ReasonBudgetExhausted, e)
			}
		}
	case PhaseInstant:
		if e.Cat == "blaze" && e.Name == "fallback" {
			r.dump(ReasonBlazeFallback, e)
		}
		if e.Cat == "ccache" && e.Name == "poisoned" {
			r.dump(ReasonCachePoisoned, e)
		}
	}
}

// stopBudgetExhausted mirrors dse.StopBudgetExhausted without importing
// the package (obs sits below everything).
const stopBudgetExhausted = "budget-exhausted"

func (r *Recorder) dump(reason string, trigger Event) {
	if len(r.dumps) >= r.cfg.MaxDumps {
		r.missed++
		return
	}
	var all []seqEvent
	for _, rg := range r.rings { //determinism:allow flattened slice sorted by seq below
		all = append(all, rg.inOrder()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	evs := make([]Event, len(all))
	for i, se := range all {
		evs[i] = se.ev
	}
	r.dumps = append(r.dumps, Dump{Reason: reason, Trigger: trigger, Events: evs})
}

// Close implements Sink.
func (r *Recorder) Close() error { return nil }

// Dumps returns the captured anomaly windows in trigger order.
func (r *Recorder) Dumps() []Dump { return r.dumps }

// Missed reports anomalies that fired after MaxDumps was reached.
func (r *Recorder) Missed() int { return r.missed }

// WriteJSON writes the captured dumps as an indented JSON array. A
// quiet run writes [] rather than null, so consumers can iterate the
// result without a nil check.
func (r *Recorder) WriteJSON(w io.Writer) error {
	dumps := r.dumps
	if dumps == nil {
		dumps = []Dump{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dumps); err != nil {
		return fmt.Errorf("obs: encoding recorder dumps: %w", err)
	}
	return nil
}
