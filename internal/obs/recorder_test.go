package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRecorderRingBounds: each track retains only the last PerTrack
// events, oldest evicted first.
func TestRecorderRingBounds(t *testing.T) {
	rec := NewRecorder(RecorderConfig{PerTrack: 4})
	tr := New(rec, WithClock(fakeClock()))
	for i := 0; i < 10; i++ {
		tr.Event("dse", "eval", Int("i", i))
	}
	// Trigger a dump to inspect the window.
	tr.Event("blaze", "fallback", Str("cause", "test"))
	tr.Close()

	dumps := rec.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Reason != ReasonBlazeFallback {
		t.Fatalf("reason = %q", d.Reason)
	}
	if len(d.Events) != 4 {
		t.Fatalf("window holds %d events, want 4", len(d.Events))
	}
	// The window must be the *most recent* events, ending at the trigger.
	last := d.Events[len(d.Events)-1]
	if last.Name != "fallback" {
		t.Fatalf("window does not end at trigger: %+v", last)
	}
	// 11 events total (10 evals + trigger); the 4-slot ring retains the
	// trigger plus the three newest evals, so the oldest survivor is i=7.
	if v, _ := d.Events[0].Args["i"].(int64); v != 7 {
		t.Fatalf("oldest retained event = %+v, want i=7", d.Events[0])
	}
}

// TestRecorderHLSLatencyTrigger: a fresh estimation beyond the threshold
// dumps; cache hits and fast estimations do not.
func TestRecorderHLSLatencyTrigger(t *testing.T) {
	rec := NewRecorder(RecorderConfig{HLSLatencyNS: 1500})
	tr := New(rec, WithClock(fakeClock())) // 1000ns per clock read

	fast := tr.Begin("hls", "estimate", Str("cache", "fresh"))
	fast.End() // 1 tick = 1000ns, under threshold
	if len(rec.Dumps()) != 0 {
		t.Fatal("fast estimation dumped")
	}

	hit := tr.Begin("hls", "estimate", Str("cache", "hit"))
	tr.Event("x", "y")
	hit.End() // 2 ticks, over threshold, but a cache hit
	if len(rec.Dumps()) != 0 {
		t.Fatal("cache hit dumped")
	}

	slow := tr.Begin("hls", "estimate", Str("cache", "fresh"), Str("point", "L0.parallel=16"))
	tr.Event("x", "y")
	slow.End() // 2 ticks = 2000ns > 1500ns
	tr.Close()
	dumps := rec.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != ReasonHLSLatency {
		t.Fatalf("dumps = %+v", dumps)
	}
}

// TestRecorderBudgetExhaustedTrigger: a dse/run span ending with
// stop=budget-exhausted dumps; other stop reasons do not.
func TestRecorderBudgetExhaustedTrigger(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := New(rec, WithClock(fakeClock()))
	ok := tr.Begin("dse", "run")
	ok.End(Str("stop", "entropy-converged"))
	if len(rec.Dumps()) != 0 {
		t.Fatal("entropy stop dumped")
	}
	bad := tr.Begin("dse", "run")
	bad.End(Str("stop", "budget-exhausted"))
	tr.Close()
	if len(rec.Dumps()) != 1 || rec.Dumps()[0].Reason != ReasonBudgetExhausted {
		t.Fatalf("dumps = %+v", rec.Dumps())
	}
}

// TestRecorderMaxDumps: anomalies past the cap are counted, not stored,
// and WriteJSON emits a well-formed document.
func TestRecorderMaxDumps(t *testing.T) {
	rec := NewRecorder(RecorderConfig{MaxDumps: 2})
	tr := New(rec, WithClock(fakeClock()))
	for i := 0; i < 5; i++ {
		tr.Event("blaze", "fallback", Int("i", i))
	}
	tr.Close()
	if len(rec.Dumps()) != 2 || rec.Missed() != 3 {
		t.Fatalf("dumps=%d missed=%d, want 2/3", len(rec.Dumps()), rec.Missed())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []Dump
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("serialized %d dumps", len(out))
	}
}

// TestRecorderMultiTrack: the dump window flattens per-track rings in
// global emission order.
func TestRecorderMultiTrack(t *testing.T) {
	rec := NewRecorder(RecorderConfig{PerTrack: 8})
	tr := New(rec, WithClock(fakeClock()))
	tr.EventT(1, "dse", "eval", Int("seq", 0))
	tr.EventT(2, "dse", "eval", Int("seq", 1))
	tr.EventT(1, "dse", "eval", Int("seq", 2))
	tr.Event("blaze", "fallback")
	tr.Close()
	d := rec.Dumps()[0]
	for i, e := range d.Events[:3] {
		if v, _ := e.Args["seq"].(int64); v != int64(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}
