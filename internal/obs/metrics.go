package obs

// The typed metrics registry: deterministic log-scale-bucket histograms
// with quantile readout, gauges, and labeled counters, exportable as
// Prometheus text or JSON. It complements the event stream: the trace
// answers "what happened, in order", the registry answers "what is the
// distribution" — per-stage latency percentiles, synthesis-minute
// spread, offload ratios — without retaining every event.
//
// The registry obeys the package invariant: a nil *Registry no-ops on
// every method, and an attached registry only aggregates values the
// pipeline already computed — it draws no randomness and feeds nothing
// back into the run. Bucket boundaries are built by repeated IEEE-754
// multiplication (never math.Pow/Log), so bucket assignment — and
// therefore every exported quantile — is bit-reproducible.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram bucket geometry: log-scale buckets growing by histGrowth per
// step, spanning [histMinBound, histMaxBound). Values below the span
// land in a dedicated underflow bucket, values at or above it in an
// overflow bucket, so Observe never drops a sample. With growth 1.25 the
// resolution is ~10 buckets per decade — a p99 read off a bucket upper
// bound is within 25% of the true sample, which is enough to rank
// stages and spot multi-modal latency.
const (
	histMinBound = 1e-6
	histMaxBound = 1e9
	histGrowth   = 1.25
)

// histBounds[i] is the lower bound of bucket i; bucket i covers
// [histBounds[i], histBounds[i+1]). Built once, deterministically.
var histBounds = func() []float64 {
	var b []float64
	for v := histMinBound; v < histMaxBound; v *= histGrowth {
		b = append(b, v)
	}
	return append(b, histMaxBound)
}()

// Histogram is a fixed-geometry log-bucket histogram. It additionally
// tracks the exact count, sum, min, and max, so means and extreme
// values are not subject to bucket resolution. Not safe for concurrent
// use on its own; the Registry serializes access to registered
// histograms.
type Histogram struct {
	counts   []uint64 // len(histBounds)-1 buckets
	under    uint64   // samples < histMinBound (incl. <= 0)
	over     uint64   // samples >= histMaxBound (incl. +Inf)
	count    uint64
	sum      float64
	min, max float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, len(histBounds)-1)}
}

// Observe records one sample. NaN is ignored; +Inf counts into the
// overflow bucket and -Inf into the underflow bucket (their sum
// contribution is clamped to the span so Sum stays finite).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	switch {
	case v < histMinBound:
		h.under++
		if v > 0 {
			h.sum += v
		}
	case v >= histMaxBound:
		h.over++
		h.sum += histMaxBound
	default:
		// The first bound >= v is the bucket's upper edge; v's bucket is
		// the one before it. sort.Search over the shared bounds table is
		// what makes assignment deterministic.
		i := sort.SearchFloat64s(histBounds, v)
		if histBounds[i] > v {
			i--
		}
		h.counts[i]++
		h.sum += v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the (clamped, see Observe) sum of samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the exact sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact extreme samples (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

func (h *Histogram) Max() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the deterministic bucket-based p-quantile (p in
// [0,1]): the upper bound of the bucket holding the ceil(p*count)-th
// smallest sample, clamped to the exact observed [min, max]. The clamp
// makes single-sample histograms exact at every p and keeps q(1) equal
// to the true maximum; monotonicity in p holds by construction. Returns
// 0 when empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	v := histMaxBound
	switch {
	case h.under >= rank:
		v = histMinBound
	default:
		cum = h.under
		found := false
		for i, c := range h.counts {
			cum += c
			if cum >= rank {
				v = histBounds[i+1]
				found = true
				break
			}
		}
		if !found {
			v = histMaxBound // rank lands in the overflow bucket
		}
	}
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return v
}

// P50, P90, and P99 are the quantiles every report reads.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P90() float64 { return h.Quantile(0.90) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge folds o into h. Because both share the fixed bucket geometry,
// merging shard histograms is exactly equivalent to observing the
// concatenation of their samples (the property test in metrics_test.go).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	h.under += o.under
	h.over += o.over
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// clone returns a deep copy (for race-free snapshots).
func (h *Histogram) clone() *Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// BucketCount is one non-empty bucket of a histogram snapshot.
type BucketCount struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	N  uint64  `json:"n"`
}

// Buckets returns the non-empty buckets in ascending order, with the
// underflow and overflow buckets rendered as [0, min-bound) and
// [max-bound, +max-bound].
func (h *Histogram) Buckets() []BucketCount {
	if h == nil || h.count == 0 {
		return nil
	}
	var out []BucketCount
	if h.under > 0 {
		out = append(out, BucketCount{Lo: 0, Hi: histMinBound, N: h.under})
	}
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, BucketCount{Lo: histBounds[i], Hi: histBounds[i+1], N: c})
		}
	}
	if h.over > 0 {
		out = append(out, BucketCount{Lo: histMaxBound, Hi: histMaxBound, N: h.over})
	}
	return out
}

// Label is one metric dimension (e.g. stage="hls/estimate").
type Label struct {
	K, V string
}

// L builds a label.
func L(k, v string) Label { return Label{K: k, V: v} }

// labelKey renders labels in sorted-key Prometheus form:
// `k1="v1",k2="v2"`. Empty for no labels.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.K, l.V)
	}
	return b.String()
}

// seriesName renders a full series identity: name alone, or
// name{k="v",...} with sorted labels.
func seriesName(name string, labels []Label) string {
	lk := labelKey(labels)
	if lk == "" {
		return name
	}
	return name + "{" + lk + "}"
}

// Registry is the typed metrics store: histograms, gauges, and
// monotonic counters, each addressed by (name, labels). All methods are
// safe for concurrent use and no-op on a nil receiver, mirroring the
// nil-Trace contract.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Histogram
	gauges   map[string]float64
	counters map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    map[string]*Histogram{},
		gauges:   map[string]float64{},
		counters: map[string]int64{},
	}
}

// Observe records v into the named histogram, creating it on first use.
func (r *Registry) Observe(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	key := seriesName(name, labels)
	r.mu.Lock()
	h := r.hists[key]
	if h == nil {
		h = NewHistogram()
		r.hists[key] = h
	}
	h.Observe(v)
	r.mu.Unlock()
}

// Add increments the named monotonic counter by delta.
func (r *Registry) Add(name string, delta int64, labels ...Label) {
	if r == nil {
		return
	}
	key := seriesName(name, labels)
	r.mu.Lock()
	r.counters[key] += delta
	r.mu.Unlock()
}

// Set records the current value of the named gauge. Non-finite values
// are clamped (NaN to 0, ±Inf to ±MaxFloat64) so every exporter output
// stays valid JSON.
func (r *Registry) Set(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	switch {
	case math.IsNaN(v):
		v = 0
	case math.IsInf(v, 1):
		v = math.MaxFloat64
	case math.IsInf(v, -1):
		v = -math.MaxFloat64
	}
	key := seriesName(name, labels)
	r.mu.Lock()
	r.gauges[key] = v
	r.mu.Unlock()
}

// Hist returns a snapshot copy of the named histogram (nil when the
// series does not exist).
func (r *Registry) Hist(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[key]
	if h == nil {
		return nil
	}
	return h.clone()
}

// HistSnapshot is the exported form of one histogram series.
type HistSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// MetricsSnapshot is a point-in-time copy of the whole registry, the
// form `s2fa -metrics` writes and `s2fa-report -metrics` reads. Keys
// are full series names (name{labels}); encoding/json sorts map keys,
// so the serialized form is deterministic.
type MetricsSnapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Safe to call while observation
// continues; the copy is consistent under the registry lock.
func (r *Registry) Snapshot() *MetricsSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for k, v := range r.counters { //determinism:allow copy into a map, order-free
		s.Counters[k] = v
	}
	for k, v := range r.gauges { //determinism:allow copy into a map, order-free
		s.Gauges[k] = v
	}
	for k, h := range r.hists { //determinism:allow copy into a map, order-free
		s.Histograms[k] = HistSnapshot{
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			P50: h.P50(), P90: h.P90(), P99: h.P99(),
			Buckets: h.Buckets(),
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	if s == nil {
		s = &MetricsSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadMetricsJSON decodes a snapshot previously written by WriteJSON.
func ReadMetricsJSON(rd io.Reader) (*MetricsSnapshot, error) {
	var s MetricsSnapshot
	if err := json.NewDecoder(rd).Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: decoding metrics snapshot: %w", err)
	}
	return &s, nil
}

// promName sanitizes a series name for the Prometheus text exposition
// format: every rune outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitSeries splits a full series key back into (name, labelBody).
func splitSeries(key string) (string, string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// promSeries renders a sanitized series reference with optional extra
// labels appended.
func promSeries(key string, extra string) string {
	name, lbls := splitSeries(key)
	name = promName(name)
	switch {
	case lbls == "" && extra == "":
		return name
	case lbls == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + lbls + "}"
	}
	return name + "{" + lbls + "," + extra + "}"
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as
// cumulative `_bucket{le=...}` series plus `_sum`/`_count`. Output is
// sorted by series name, so it is byte-deterministic for a
// deterministic run.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	if s == nil {
		s = &MetricsSnapshot{}
	}
	var b strings.Builder

	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters { //determinism:allow keys sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := map[string]bool{}
	for _, k := range keys {
		if name, _ := splitSeries(k); !seen[name] {
			seen[name] = true
			fmt.Fprintf(&b, "# TYPE %s counter\n", promName(name))
		}
		fmt.Fprintf(&b, "%s %d\n", promSeries(k, ""), s.Counters[k])
	}

	keys = keys[:0]
	for k := range s.Gauges { //determinism:allow keys sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen = map[string]bool{}
	for _, k := range keys {
		if name, _ := splitSeries(k); !seen[name] {
			seen[name] = true
			fmt.Fprintf(&b, "# TYPE %s gauge\n", promName(name))
		}
		fmt.Fprintf(&b, "%s %g\n", promSeries(k, ""), s.Gauges[k])
	}

	keys = keys[:0]
	for k := range s.Histograms { //determinism:allow keys sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen = map[string]bool{}
	for _, k := range keys {
		h := s.Histograms[k]
		name, lbls := splitSeries(k)
		if !seen[name] {
			seen[name] = true
			fmt.Fprintf(&b, "# TYPE %s histogram\n", promName(name))
		}
		var cum uint64
		for _, bk := range h.Buckets {
			cum += bk.N
			le := fmt.Sprintf("le=%q", fmt.Sprintf("%g", bk.Hi))
			fmt.Fprintf(&b, "%s %d\n", promSeries(name+"_bucket"+wrapLabels(lbls), le), cum)
		}
		fmt.Fprintf(&b, "%s %d\n", promSeries(name+"_bucket"+wrapLabels(lbls), `le="+Inf"`), h.Count)
		fmt.Fprintf(&b, "%s %g\n", promSeries(name+"_sum"+wrapLabels(lbls), ""), h.Sum)
		fmt.Fprintf(&b, "%s %d\n", promSeries(name+"_count"+wrapLabels(lbls), ""), h.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// wrapLabels re-wraps a bare label body in braces ("" stays "").
func wrapLabels(lbls string) string {
	if lbls == "" {
		return ""
	}
	return "{" + lbls + "}"
}
