package kdsl_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/bytecode"
	"s2fa/internal/kdsl"
)

// corpusSources loads the shared seed corpus at testdata/corpus: the
// eight generator families, the parse-stage negatives, and hand-written
// boundary cases. The gen_*/neg_* files are pinned to kdslgen output by
// that package's TestCorpusFilesMatchGenerator (refresh with -update
// there), so the fuzzer's seeds track the generator automatically.
func corpusSources(tb testing.TB) map[string]string {
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".kdsl") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			tb.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	if len(out) == 0 {
		tb.Fatalf("empty corpus at %s", dir)
	}
	return out
}

// TestCorpusRoundTrip keeps the corpus honest outside fuzzing runs:
// every gen_* seed must compile, verify, and disassemble, and every
// neg_*/hand_* seed must fail somewhere without panicking — the two
// sides of the accept frontier the fuzzer mutates from.
func TestCorpusRoundTrip(t *testing.T) {
	for name, src := range corpusSources(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			cls, err := kdsl.CompileSource(src)
			if strings.HasPrefix(name, "gen_") {
				if err != nil {
					t.Fatalf("generator corpus seed rejected: %v", err)
				}
				if err := bytecode.VerifyClass(cls); err != nil {
					t.Fatalf("verify: %v", err)
				}
				_ = bytecode.DisassembleClass(cls)
				return
			}
			if strings.HasPrefix(name, "neg_") && err == nil {
				t.Fatal("negative corpus seed accepted")
			}
		})
	}
}

// FuzzKdslParse throws arbitrary source text at the kernel-DSL frontend.
// The contract under fuzzing:
//
//   - Parse and Compile report malformed input as errors, never panics.
//   - Anything the frontend accepts is well-formed enough for the rest
//     of the pipeline: the compiled class passes the bytecode verifier,
//     and its methods disassemble without panicking.
//
// The corpus is seeded with the twelve registered workloads plus the
// shared testdata/corpus seeds (generator families, negatives, and
// minimal/broken kernels), so mutation starts from both sides of the
// accept boundary.
func FuzzKdslParse(f *testing.F) {
	for _, a := range apps.All() {
		f.Add(a.Source)
	}
	f.Add("")
	for _, src := range corpusSources(f) {
		f.Add(src)
	}

	f.Fuzz(func(t *testing.T, src string) {
		def, err := kdsl.Parse(src)
		if err != nil {
			return
		}
		cls, err := kdsl.Compile(def)
		if err != nil {
			return
		}
		// Accepted input: the frontend's output must satisfy the verifier
		// it feeds — a frontend bug that emits malformed bytecode would
		// otherwise only surface deep inside the C generator.
		if err := bytecode.VerifyClassStructural(cls); err != nil {
			t.Fatalf("frontend accepted source but emitted unverifiable bytecode: %v\nsource:\n%s", err, src)
		}
		_ = bytecode.DisassembleClass(cls)
		// CompileSource is the public entry the CLI uses; it must agree
		// with the two-step path on acceptance.
		if _, err := kdsl.CompileSource(src); err != nil {
			t.Fatalf("Parse+Compile accepted but CompileSource rejected: %v", err)
		}
	})
}
