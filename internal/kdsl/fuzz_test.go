package kdsl_test

import (
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/bytecode"
	"s2fa/internal/kdsl"
)

// FuzzKdslParse throws arbitrary source text at the kernel-DSL frontend.
// The contract under fuzzing:
//
//   - Parse and Compile report malformed input as errors, never panics.
//   - Anything the frontend accepts is well-formed enough for the rest
//     of the pipeline: the compiled class passes the bytecode verifier,
//     and its methods disassemble without panicking.
//
// The corpus is seeded with all eight paper workloads plus a handful of
// minimal and deliberately broken kernels, so mutation starts from both
// sides of the accept boundary.
func FuzzKdslParse(f *testing.F) {
	for _, a := range apps.All() {
		f.Add(a.Source)
	}
	f.Add("")
	f.Add("class K { val id = \"k\" }")
	f.Add(`class Min {
  val id: String = "min"
  def call(x: Int): Int = {
    x + 1
  }
}`)
	f.Add(`class Bad {
  val id: String = "bad"
  def call(x: Int): Int = {
    while (true) { }
    x
  }
}`)
	f.Add("class Unterminated { def call(x: Int): Int = { x ")
	f.Add("def call() = }{")

	f.Fuzz(func(t *testing.T, src string) {
		def, err := kdsl.Parse(src)
		if err != nil {
			return
		}
		cls, err := kdsl.Compile(def)
		if err != nil {
			return
		}
		// Accepted input: the frontend's output must satisfy the verifier
		// it feeds — a frontend bug that emits malformed bytecode would
		// otherwise only surface deep inside the C generator.
		if err := bytecode.VerifyClassStructural(cls); err != nil {
			t.Fatalf("frontend accepted source but emitted unverifiable bytecode: %v\nsource:\n%s", err, src)
		}
		_ = bytecode.DisassembleClass(cls)
		// CompileSource is the public entry the CLI uses; it must agree
		// with the two-step path on acceptance.
		if _, err := kdsl.CompileSource(src); err != nil {
			t.Fatalf("Parse+Compile accepted but CompileSource rejected: %v", err)
		}
	})
}
