package kdsl

import (
	"strconv"
	"strings"

	"s2fa/internal/cir"
)

// Parse parses one kernel class definition from source text.
func Parse(src string) (*ClassDef, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	cls, err := p.classDef()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errf(p.cur().Pos, "unexpected %q after class definition", p.cur().Text)
	}
	return cls, nil
}

type parser struct {
	toks []Token
	pos  int
	// sc, when set, backs the hottest AST node types with slab arenas
	// (see scratch.go); nil means plain heap allocation.
	sc *kdslScratch
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) isPunct(text string) bool {
	return p.cur().Kind == TokPunct && p.cur().Text == text
}

func (p *parser) isKeyword(text string) bool {
	return p.cur().Kind == TokKeyword && p.cur().Text == text
}

func (p *parser) acceptPunct(text string) bool {
	if p.isPunct(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	if !p.acceptPunct(text) {
		return errf(p.cur().Pos, "expected %q, found %q", text, p.cur().Text)
	}
	return nil
}

func (p *parser) expectKeyword(text string) error {
	if !p.isKeyword(text) {
		return errf(p.cur().Pos, "expected %q, found %q", text, p.cur().Text)
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	if p.cur().Kind != TokIdent {
		return Token{}, errf(p.cur().Pos, "expected identifier, found %q", p.cur().Text)
	}
	return p.advance(), nil
}

// classDef := "class" ID "extends" "Accelerator" "[" type "," type "]" "{" member* "}"
func (p *parser) classDef() (*ClassDef, error) {
	pos := p.cur().Pos
	if err := p.expectKeyword("class"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("extends"); err != nil {
		return nil, err
	}
	base, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if base.Text != "Accelerator" {
		return nil, errf(base.Pos, "kernel classes must extend Accelerator[I, O], found %q", base.Text)
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	inT, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	outT, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	cls := &ClassDef{Name: name.Text, InType: inT, OutType: outT, Pos: pos}
	for !p.isPunct("}") {
		switch {
		case p.isKeyword("val"):
			f, err := p.fieldDef()
			if err != nil {
				return nil, err
			}
			cls.Fields = append(cls.Fields, *f)
		case p.isKeyword("def"):
			m, err := p.methodDef()
			if err != nil {
				return nil, err
			}
			cls.Methods = append(cls.Methods, *m)
		default:
			return nil, errf(p.cur().Pos, "expected val or def, found %q", p.cur().Text)
		}
	}
	return cls, p.expectPunct("}")
}

// fieldDef := "val" ID ":" type "=" (literal | string | "Array" "(" literal,* ")")
func (p *parser) fieldDef() (*FieldDef, error) {
	pos := p.cur().Pos
	p.advance() // val
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	var t Type
	if p.cur().Kind == TokIdent && p.cur().Text == "String" {
		p.advance()
		t = Type{String: true}
	} else {
		t, err = p.parseType()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	f := &FieldDef{Name: name.Text, T: t, Pos: pos}
	switch {
	case p.cur().Kind == TokString:
		f.Str = p.advance().Text
	case p.cur().Kind == TokIdent && p.cur().Text == "Array":
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			e, err := p.literalExpr()
			if err != nil {
				return nil, err
			}
			f.Elems = append(f.Elems, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	default:
		e, err := p.literalExpr()
		if err != nil {
			return nil, err
		}
		f.Elems = []Expr{e}
	}
	return f, nil
}

// literalExpr parses a (possibly negated) scalar literal.
func (p *parser) literalExpr() (Expr, error) {
	pos := p.cur().Pos
	neg := false
	if p.isPunct("-") {
		p.advance()
		neg = true
	}
	switch p.cur().Kind {
	case TokInt:
		t := p.advance()
		text := strings.TrimSuffix(t.Text, "L")
		long := text != t.Text
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		if neg {
			v = -v
		}
		e := p.newIntLit()
		e.Val, e.Long = v, long
		e.pos = pos
		return e, nil
	case TokFloat:
		t := p.advance()
		text := t.Text
		single := false
		if strings.HasSuffix(text, "f") || strings.HasSuffix(text, "F") {
			single = true
			text = text[:len(text)-1]
		}
		text = strings.TrimSuffix(strings.TrimSuffix(text, "d"), "D")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		if neg {
			v = -v
		}
		e := p.newFloatLit()
		e.Val, e.Single = v, single
		e.pos = pos
		return e, nil
	case TokChar:
		if neg {
			return nil, errf(pos, "cannot negate a character literal")
		}
		t := p.advance()
		e := &CharLit{Val: []rune(t.Text)[0]}
		e.pos = pos
		return e, nil
	case TokKeyword:
		if neg {
			return nil, errf(pos, "cannot negate %q", p.cur().Text)
		}
		if p.cur().Text == "true" || p.cur().Text == "false" {
			t := p.advance()
			e := &BoolLit{Val: t.Text == "true"}
			e.pos = pos
			return e, nil
		}
	}
	return nil, errf(p.cur().Pos, "expected literal, found %q", p.cur().Text)
}

// methodDef := "def" ID "(" params ")" ":" type "=" block
func (p *parser) methodDef() (*MethodDef, error) {
	pos := p.cur().Pos
	p.advance() // def
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	m := &MethodDef{Name: name.Text, Pos: pos}
	if !p.isPunct(")") {
		for {
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, Param{Name: pn.Text, T: pt, Pos: pn.Pos})
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	m.Ret, err = p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	m.Body, err = p.block()
	return m, err
}

// parseType := prim | "Array" "[" prim "]" | "(" type ("," type)+ ")"
func (p *parser) parseType() (Type, error) {
	if p.acceptPunct("(") {
		var fields []Type
		for {
			t, err := p.parseType()
			if err != nil {
				return Type{}, err
			}
			fields = append(fields, t)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return Type{}, err
		}
		if len(fields) < 2 || len(fields) > 4 {
			return Type{}, errf(p.cur().Pos, "tuple arity %d unsupported (2..4)", len(fields))
		}
		for _, f := range fields {
			if f.IsTuple() {
				return Type{}, errf(p.cur().Pos, "nested tuples are unsupported (implement an S2FA class template instead)")
			}
		}
		return Type{Tuple: fields}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return Type{}, err
	}
	if name.Text == "Array" {
		if err := p.expectPunct("["); err != nil {
			return Type{}, err
		}
		elem, err := p.parseType()
		if err != nil {
			return Type{}, err
		}
		if err := p.expectPunct("]"); err != nil {
			return Type{}, err
		}
		if elem.Array || elem.IsTuple() {
			return Type{}, errf(name.Pos, "only arrays of primitives are supported")
		}
		return Type{Kind: elem.Kind, Array: true}, nil
	}
	k, ok := primKind(name.Text)
	if !ok {
		return Type{}, errf(name.Pos, "unknown type %q (supported: primitives, Array[T], tuples)", name.Text)
	}
	return Type{Kind: k}, nil
}

func primKind(name string) (cir.Kind, bool) {
	switch name {
	case "Boolean":
		return cir.Bool, true
	case "Char":
		return cir.Char, true
	case "Short":
		return cir.Short, true
	case "Int":
		return cir.Int, true
	case "Long":
		return cir.Long, true
	case "Float":
		return cir.Float, true
	case "Double":
		return cir.Double, true
	}
	return cir.Void, false
}

// block := "{" stmt* "}"
func (p *parser) block() ([]Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.isPunct("}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		p.acceptPunct(";")
	}
	return stmts, p.expectPunct("}")
}

func (p *parser) stmt() (Stmt, error) {
	pos := p.cur().Pos
	switch {
	case p.isKeyword("val") || p.isKeyword("var"):
		mutable := p.cur().Text == "var"
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		s := &DeclStmt{Mutable: mutable, Name: name.Text, T: t, Init: init}
		s.pos = pos
		return s, nil
	case p.isKeyword("while"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &WhileStmt{Cond: cond, Body: body}
		s.pos = pos
		return s, nil
	case p.isKeyword("for"):
		return p.forStmt(pos)
	case p.isKeyword("if"):
		return p.ifStmt(pos)
	case p.isKeyword("return"):
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s := &ReturnStmt{E: e}
		s.pos = pos
		return s, nil
	}
	// Expression or assignment.
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.isPunct("=") {
		p.advance()
		switch e.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, errf(pos, "invalid assignment target")
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		s := &AssignStmt{Target: e, Value: v}
		s.pos = pos
		return s, nil
	}
	s := &ExprStmt{E: e}
	s.pos = pos
	return s, nil
}

// forStmt := "for" "(" ID "<-" expr ("until"|"to") expr ")" block
func (p *parser) forStmt(pos Pos) (Stmt, error) {
	p.advance() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("<-"); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	var incl bool
	switch {
	case p.isKeyword("until"):
		p.advance()
	case p.isKeyword("to"):
		p.advance()
		incl = true
	default:
		return nil, errf(p.cur().Pos, "expected until/to in for generator")
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &ForStmt{Var: v.Text, Lo: lo, Hi: hi, Incl: incl, Body: body}
	s.pos = pos
	return s, nil
}

func (p *parser) ifStmt(pos Pos) (Stmt, error) {
	p.advance() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	s.pos = pos
	if p.isKeyword("else") {
		p.advance()
		if p.isKeyword("if") {
			nested, err := p.ifStmt(p.cur().Pos)
			if err != nil {
				return nil, err
			}
			s.Else = []Stmt{nested}
		} else {
			s.Else, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Operator precedence, low to high.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

var binOps = map[string]cir.BinOp{
	"||": cir.LOr, "&&": cir.LAnd, "|": cir.Or, "^": cir.Xor, "&": cir.And,
	"==": cir.Eq, "!=": cir.Ne, "<": cir.Lt, "<=": cir.Le, ">": cir.Gt, ">=": cir.Ge,
	"<<": cir.Shl, ">>": cir.Shr, "+": cir.Add, "-": cir.Sub, "*": cir.Mul, "/": cir.Div, "%": cir.Rem,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *parser) binExpr(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.unaryExpr()
	}
	left, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, opText := range precLevels[level] {
			if p.isPunct(opText) {
				pos := p.cur().Pos
				p.advance()
				right, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				e := p.newBinExpr()
				e.Op, e.L, e.R = binOps[opText], left, right
				e.pos = pos
				left = e
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	pos := p.cur().Pos
	switch {
	case p.isPunct("-"):
		p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		e := &UnExpr{Op: cir.Neg, X: x}
		e.pos = pos
		return e, nil
	case p.isPunct("!"):
		p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		e := &UnExpr{Op: cir.Not, X: x}
		e.pos = pos
		return e, nil
	case p.isPunct("~"):
		p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		e := &UnExpr{Op: cir.BitNot, X: x}
		e.pos = pos
		return e, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("."):
			p.advance()
			sel, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e, err = p.selector(e, sel)
			if err != nil {
				return nil, err
			}
		case p.isPunct("(") && p.pos > 0 && p.cur().Pos.Line == p.toks[p.pos-1].Pos.Line:
			// Array indexing: a(i). Like Scala, an opening parenthesis
			// on a NEW line starts a new statement (tuple/parenthesized
			// expression) rather than continuing this one as an index.
			pos := p.cur().Pos
			p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			ix := p.newIndexExpr()
			ix.X, ix.Idx = e, idx
			ix.pos = pos
			e = ix
		default:
			return e, nil
		}
	}
}

var castSelectors = map[string]cir.Kind{
	"toInt": cir.Int, "toLong": cir.Long, "toFloat": cir.Float,
	"toDouble": cir.Double, "toChar": cir.Char, "toShort": cir.Short,
}

func (p *parser) selector(x Expr, sel Token) (Expr, error) {
	if k, ok := castSelectors[sel.Text]; ok {
		e := &CastExpr{X: x, To: k}
		e.pos = sel.Pos
		return e, nil
	}
	if sel.Text == "length" {
		e := &LenExpr{X: x}
		e.pos = sel.Pos
		return e, nil
	}
	if len(sel.Text) == 2 && sel.Text[0] == '_' && sel.Text[1] >= '1' && sel.Text[1] <= '4' {
		e := &TupleField{X: x, Field: int(sel.Text[1] - '1')}
		e.pos = sel.Pos
		return e, nil
	}
	return nil, errf(sel.Pos, "unsupported selector %q", sel.Text)
}

func (p *parser) primaryExpr() (Expr, error) {
	pos := p.cur().Pos
	switch {
	case p.cur().Kind == TokInt, p.cur().Kind == TokFloat, p.cur().Kind == TokChar,
		p.isKeyword("true"), p.isKeyword("false"):
		return p.literalExpr()
	case p.isKeyword("new"):
		p.advance()
		arr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if arr.Text != "Array" {
			return nil, errf(arr.Pos, "only `new Array[T](n)` allocations are supported (paper §3.3)")
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if elem.Array || elem.IsTuple() {
			return nil, errf(arr.Pos, "only arrays of primitives are supported")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		ln, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		e := &NewArrayExpr{Elem: elem.Kind, Len: ln}
		e.pos = pos
		return e, nil
	case p.cur().Kind == TokIdent && p.cur().Text == "Math":
		p.advance()
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var args []Expr
		if !p.isPunct(")") {
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		e := &MathCall{Name: name.Text, Args: args}
		e.pos = pos
		return e, nil
	case p.cur().Kind == TokIdent:
		t := p.advance()
		e := p.newIdent()
		e.Name = t.Text
		e.pos = pos
		return e, nil
	case p.isPunct("("):
		p.advance()
		first, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.isPunct(",") {
			elems := []Expr{first}
			for p.acceptPunct(",") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			e := &TupleExpr{Elems: elems}
			e.pos = pos
			return e, nil
		}
		return first, p.expectPunct(")")
	}
	return nil, errf(pos, "unexpected %q in expression", p.cur().Text)
}
