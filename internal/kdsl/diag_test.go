package kdsl_test

import (
	"testing"

	"s2fa/internal/kdsl"
)

// TestDiagnosticsExact pins frontend error messages byte-for-byte:
// the `kdsl: line:col: text` shape, the exact position (1-based, the
// offending token, not the end of the statement), and the error class.
// The stage column additionally asserts which phase rejects — parse
// errors must come from Parse, checker errors only after a clean parse —
// so a refactor can't silently move a diagnostic across the boundary.
// These strings reach users verbatim through the CLI, and kdslgen's
// negative corpus is tagged by the same classes; drift here is an
// interface change, not a cosmetic one.
func TestDiagnosticsExact(t *testing.T) {
	cases := []struct {
		name  string
		stage string // "parse" or "check"
		src   string
		want  string
	}{
		{
			name:  "unbalanced paren",
			stage: "parse",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def call(in: Int): Int = { (in + 1 }\n}",
			want:  `kdsl: 3:38: expected ")", found "}"`,
		},
		{
			name:  "not a class",
			stage: "parse",
			src:   "klass K {}",
			want:  `kdsl: 1:1: expected "class", found "klass"`,
		},
		{
			name:  "illegal character",
			stage: "parse",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def call(in: Int): Int = { in $ 2 }\n}",
			want:  `kdsl: 3:33: unexpected character '$'`,
		},
		{
			name:  "narrowing initializer",
			stage: "check",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def call(in: Int): Int = {\n    val x: Int = 1.5\n    x\n  }\n}",
			want:  `kdsl: 4:5: cannot initialize x (Int) with Double`,
		},
		{
			name:  "assign to val",
			stage: "check",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def call(in: Int): Int = {\n    val x: Int = 3\n    x = 4\n    x\n  }\n}",
			want:  `kdsl: 5:5: cannot assign to val x`,
		},
		{
			name:  "assign to parameter",
			stage: "check",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def call(in: Int): Int = {\n    in = 2\n    in\n  }\n}",
			want:  `kdsl: 4:5: cannot assign to parameter in`,
		},
		{
			name:  "undefined name",
			stage: "check",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def call(in: Int): Int = {\n    y + 1\n  }\n}",
			want:  `kdsl: 4:5: undefined: y`,
		},
		{
			name:  "non-boolean while",
			stage: "check",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def call(in: Int): Int = {\n    while (in) { val q: Int = 0 }\n    in\n  }\n}",
			want:  `kdsl: 4:12: while condition must be Boolean`,
		},
		{
			name:  "array input without inSizes",
			stage: "check",
			src:   "class K extends Accelerator[Array[Int], Int] {\n  val id: String = \"k\"\n  def call(in: Array[Int]): Int = {\n    in(0)\n  }\n}",
			want:  "kdsl: 1:1: class K has array inputs: declare the data layout template `val inSizes: Array[Int] = Array(...)` (S2FA class template, paper §3.3)",
		},
		{
			name:  "float shift operand",
			stage: "check",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def call(in: Int): Int = {\n    val f: Double = 2.0\n    val s: Int = (1 << f)\n    s\n  }\n}",
			want:  `kdsl: 5:21: << needs integer operands`,
		},
		{
			name:  "call result type mismatch",
			stage: "check",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def call(in: Int): Double = {\n    in.toDouble\n  }\n}",
			want:  `kdsl: 3:3: call must return the Accelerator output type Int`,
		},
		{
			name:  "extra method",
			stage: "check",
			src:   "class K extends Accelerator[Int, Int] {\n  val id: String = \"k\"\n  def helper(x: Int): Int = { x }\n  def call(in: Int): Int = { in }\n}",
			want:  `kdsl: 3:3: unsupported method "helper": S2FA kernels define call and optionally reduce`,
		},
		{
			name:  "missing id",
			stage: "check",
			src:   "class K extends Accelerator[Int, Int] {\n  def call(in: Int): Int = { in }\n}",
			want:  "kdsl: 1:1: class K must declare `val id: String = \"...\"`-style accelerator identifier",
		},
		{
			name:  "assign to reduce parameter",
			stage: "check",
			src:   "class K extends Accelerator[Int, Double] {\n  val id: String = \"k\"\n  def call(in: Int): Double = { in.toDouble }\n  def reduce(a: Double, b: Double): Double = {\n    a = a + b\n    a\n  }\n}",
			want:  `kdsl: 5:5: cannot assign to parameter a`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			def, perr := kdsl.Parse(tc.src)
			if tc.stage == "parse" {
				if perr == nil {
					t.Fatal("parse accepted, want rejection")
				}
				if perr.Error() != tc.want {
					t.Errorf("parse error\n got %s\nwant %s", perr, tc.want)
				}
				return
			}
			if perr != nil {
				t.Fatalf("checker case failed at parse: %v", perr)
			}
			_, cerr := kdsl.Compile(def)
			if cerr == nil {
				t.Fatal("checker accepted, want rejection")
			}
			if cerr.Error() != tc.want {
				t.Errorf("checker error\n got %s\nwant %s", cerr, tc.want)
			}
			// CompileSource is the public one-shot entry; it must surface
			// the identical diagnostic.
			if _, err := kdsl.CompileSource(tc.src); err == nil || err.Error() != tc.want {
				t.Errorf("CompileSource error\n got %v\nwant %s", err, tc.want)
			}
		})
	}
}
