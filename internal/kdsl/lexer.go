package kdsl

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"s2fa/internal/compile"
)

// lexer tokenizes kdsl source text. It scans the source string directly
// (byte cursor, ASCII fast paths) and hands out tokens whose Text is a
// substring of the source, so a steady-state lex allocates only the
// token slice. Line/column positions count runes, exactly as the
// rune-slice lexer it replaced did, so diagnostics are byte-identical.
type lexer struct {
	src  string
	pos  int // byte offset
	line int
	col  int // rune column
	// intern, when set, canonicalizes identifier spellings so ASTs from
	// repeated compilations share one copy of each name.
	intern *compile.Interner
}

// Lex tokenizes the whole input, returning the token stream or the first
// lexical error.
func Lex(src string) ([]Token, error) { return lexTokens(src, nil, nil) }

// lexTokens is Lex with a reusable token buffer (appended from length 0)
// and an optional identifier interner.
func lexTokens(src string, toks []Token, intern *compile.Interner) ([]Token, error) {
	lx := lexer{src: src, line: 1, col: 1, intern: intern}
	toks = toks[:0]
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// peekByte returns the byte at the cursor (0 at EOF).
func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

// peekRune returns the rune at the cursor (0 at EOF).
func (lx *lexer) peekRune() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	if b := lx.src[lx.pos]; b < utf8.RuneSelf {
		return rune(b)
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
	return r
}

// advance consumes one rune, maintaining the rune-counted line/column.
func (lx *lexer) advance() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	r := lx.peekRune()
	if r < utf8.RuneSelf {
		lx.pos++
	} else {
		_, n := utf8.DecodeRuneInString(lx.src[lx.pos:])
		lx.pos += n
	}
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

// advanceASCII consumes one byte known to be ASCII and not a newline.
func (lx *lexer) advanceASCII() {
	lx.pos++
	lx.col++
}

func (lx *lexer) here() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		b := lx.src[lx.pos]
		switch {
		case b == ' ' || b == '\t' || b == '\r':
			lx.advanceASCII()
		case b == '\n':
			lx.pos++
			lx.line++
			lx.col = 1
		case b == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance()
			}
		case b == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			pos := lx.here()
			lx.advanceASCII()
			lx.advanceASCII()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.src[lx.pos] == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
					lx.advanceASCII()
					lx.advanceASCII()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(pos, "unterminated block comment")
			}
		case b >= utf8.RuneSelf && unicode.IsSpace(lx.peekRune()):
			lx.advance()
		default:
			return nil
		}
	}
	return nil
}

// multi-char punctuation, longest first.
var puncts = []string{
	"<-", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"(", ")", "{", "}", "[", "]", ",", ":", ";", ".", "=",
	"<", ">", "+", "-", "*", "/", "%", "!", "&", "|", "^", "~",
}

func isIdentByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.here()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := lx.peekRune()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := lx.pos
		for lx.pos < len(lx.src) {
			if b := lx.src[lx.pos]; b < utf8.RuneSelf {
				if !isIdentByte(b) {
					break
				}
				lx.advanceASCII()
				continue
			}
			c := lx.peekRune()
			if !unicode.IsLetter(c) && !unicode.IsDigit(c) {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if keywords[text] {
			return Token{Kind: TokKeyword, Text: text, Pos: pos}, nil
		}
		if lx.intern != nil {
			text = lx.intern.InternString(text)
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case r >= '0' && r <= '9':
		return lx.number(pos), nil
	case unicode.IsDigit(r):
		return lx.number(pos), nil
	case r == '\'':
		return lx.charLit(pos)
	case r == '"':
		return lx.stringLit(pos)
	}
	for _, p := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.pos += len(p)
			lx.col += len(p)
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	return Token{}, errf(pos, "unexpected character %q", r)
}

// number scans an integer or float literal. The common case is all
// ASCII (byte-wise scan, token text is a source substring); non-ASCII
// Unicode digits are accepted exactly as the rune-based lexer did.
func (lx *lexer) number(pos Pos) Token {
	start := lx.pos
	isFloat := false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c >= '0' && c <= '9':
			lx.advanceASCII()
		case c >= utf8.RuneSelf && unicode.IsDigit(lx.peekRune()):
			lx.advance()
		case c == '.' && !isFloat && lx.digitAt(1):
			isFloat = true
			lx.advanceASCII()
		case (c == 'e' || c == 'E') && lx.pos+1 < len(lx.src) &&
			(lx.digitAt(1) || lx.src[lx.pos+1] == '-' || lx.src[lx.pos+1] == '+'):
			isFloat = true
			lx.advanceASCII()
			if b := lx.peekByte(); b == '-' || b == '+' {
				lx.advanceASCII()
			}
		case c == 'f' || c == 'F' || c == 'L' || c == 'd' || c == 'D':
			lx.advanceASCII()
			if c != 'L' {
				isFloat = true
			}
			goto done
		default:
			goto done
		}
	}
done:
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Token{Kind: kind, Text: lx.src[start:lx.pos], Pos: pos}
}

// digitAt reports whether the rune starting off bytes past the cursor is
// a Unicode digit.
func (lx *lexer) digitAt(off int) bool {
	if lx.pos+off >= len(lx.src) {
		return false
	}
	b := lx.src[lx.pos+off]
	if b < utf8.RuneSelf {
		return b >= '0' && b <= '9'
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos+off:])
	return unicode.IsDigit(r)
}

func (lx *lexer) charLit(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.pos >= len(lx.src) {
		return Token{}, errf(pos, "unterminated character literal")
	}
	r := lx.advance()
	if r == '\\' {
		if lx.pos >= len(lx.src) {
			return Token{}, errf(pos, "unterminated escape")
		}
		esc := lx.advance()
		switch esc {
		case 'n':
			r = '\n'
		case 't':
			r = '\t'
		case '0':
			r = 0
		case '\\', '\'':
			r = esc
		default:
			return Token{}, errf(pos, "unsupported escape \\%c", esc)
		}
	}
	if lx.pos >= len(lx.src) || lx.src[lx.pos] != '\'' {
		return Token{}, errf(pos, "unterminated character literal")
	}
	lx.advanceASCII()
	return Token{Kind: TokChar, Text: string(r), Pos: pos}, nil
}

func (lx *lexer) stringLit(pos Pos) (Token, error) {
	lx.advance() // opening quote
	start := lx.pos
	for lx.pos < len(lx.src) {
		if b := lx.src[lx.pos]; b == '"' {
			text := lx.src[start:lx.pos]
			lx.advanceASCII()
			return Token{Kind: TokString, Text: text, Pos: pos}, nil
		} else if b == '\n' {
			return Token{}, errf(pos, "newline in string literal")
		}
		lx.advance()
	}
	return Token{}, errf(pos, "unterminated string literal")
}
