package kdsl

import (
	"strings"
	"unicode"
)

// lexer tokenizes kdsl source text.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the token stream or the first
// lexical error.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() rune {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) here() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peek2() == '*':
			pos := lx.here()
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(pos, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-char punctuation, longest first.
var puncts = []string{
	"<-", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"(", ")", "{", "}", "[", "]", ",", ":", ";", ".", "=",
	"<", ">", "+", "-", "*", "/", "%", "!", "&", "|", "^", "~",
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.here()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := lx.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for lx.pos < len(lx.src) {
			c := lx.peek()
			if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
				b.WriteRune(lx.advance())
			} else {
				break
			}
		}
		text := b.String()
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	case unicode.IsDigit(r):
		return lx.number(pos)
	case r == '\'':
		return lx.charLit(pos)
	case r == '"':
		return lx.stringLit(pos)
	}
	for _, p := range puncts {
		if lx.match(p) {
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	return Token{}, errf(pos, "unexpected character %q", r)
}

func (lx *lexer) match(p string) bool {
	rs := []rune(p)
	if lx.pos+len(rs) > len(lx.src) {
		return false
	}
	for i, r := range rs {
		if lx.src[lx.pos+i] != r {
			return false
		}
	}
	for range rs {
		lx.advance()
	}
	return true
}

func (lx *lexer) number(pos Pos) (Token, error) {
	var b strings.Builder
	isFloat := false
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case unicode.IsDigit(c):
			b.WriteRune(lx.advance())
		case c == '.' && !isFloat && lx.pos+1 < len(lx.src) && unicode.IsDigit(lx.src[lx.pos+1]):
			isFloat = true
			b.WriteRune(lx.advance())
		case (c == 'e' || c == 'E') && lx.pos+1 < len(lx.src) &&
			(unicode.IsDigit(lx.src[lx.pos+1]) || lx.src[lx.pos+1] == '-' || lx.src[lx.pos+1] == '+'):
			isFloat = true
			b.WriteRune(lx.advance())
			if lx.peek() == '-' || lx.peek() == '+' {
				b.WriteRune(lx.advance())
			}
		case c == 'f' || c == 'F' || c == 'L' || c == 'd' || c == 'D':
			b.WriteRune(lx.advance())
			if c == 'f' || c == 'F' || c == 'd' || c == 'D' {
				isFloat = true
			}
			goto done
		default:
			goto done
		}
	}
done:
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Token{Kind: kind, Text: b.String(), Pos: pos}, nil
}

func (lx *lexer) charLit(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.pos >= len(lx.src) {
		return Token{}, errf(pos, "unterminated character literal")
	}
	r := lx.advance()
	if r == '\\' {
		if lx.pos >= len(lx.src) {
			return Token{}, errf(pos, "unterminated escape")
		}
		esc := lx.advance()
		switch esc {
		case 'n':
			r = '\n'
		case 't':
			r = '\t'
		case '0':
			r = 0
		case '\\', '\'':
			r = esc
		default:
			return Token{}, errf(pos, "unsupported escape \\%c", esc)
		}
	}
	if lx.pos >= len(lx.src) || lx.peek() != '\'' {
		return Token{}, errf(pos, "unterminated character literal")
	}
	lx.advance()
	return Token{Kind: TokChar, Text: string(r), Pos: pos}, nil
}

func (lx *lexer) stringLit(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		r := lx.advance()
		if r == '"' {
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		}
		if r == '\n' {
			return Token{}, errf(pos, "newline in string literal")
		}
		b.WriteRune(r)
	}
	return Token{}, errf(pos, "unterminated string literal")
}
