// Package kdsl implements the Scala-subset kernel language that stands in
// for user-written Spark/Blaze kernels (paper Code 1/Code 2). A kernel is
// a class extending Accelerator[I, O] with a `val id: String` accelerator
// identifier, optional constant fields, a `call` method (the RDD
// transformation lambda) and an optional `reduce` combiner. The language
// enforces exactly the S2FA restrictions of paper §3.3: primitive and
// registered composite types only (tuples, arrays), no library calls
// beyond java.lang.Math, and `new` only with compile-time-constant sizes.
//
// The package compiles source text to internal/bytecode class files, the
// input format of the bytecode-to-C compiler.
package kdsl

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokChar
	TokString
	TokPunct   // single/multi char operators and delimiters
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a front-end diagnostic with position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("kdsl: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

var keywords = map[string]bool{
	"class": true, "extends": true, "val": true, "var": true, "def": true,
	"new": true, "if": true, "else": true, "while": true, "for": true,
	"until": true, "to": true, "true": true, "false": true, "return": true,
	"object": true,
}
