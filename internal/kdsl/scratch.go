package kdsl

import (
	"s2fa/internal/compile"
)

// kdslScratch is the frontend's slot in a compile.Scratch: the reusable
// token buffer plus slab arenas for the hottest AST node types (integer
// literals dominate — every static table element is one — followed by
// identifier references and binary/index expressions).
//
// The arenas are recycled at the start of each parse, so an AST produced
// by ParseScratch is only valid until the next ParseScratch call on the
// same Scratch. CompileSourceScratch consumes the AST before returning,
// which is the intended pattern; callers that need a longer-lived AST
// use Parse.
type kdslScratch struct {
	toks []Token

	ints    compile.Slab[IntLit]
	floats  compile.Slab[FloatLit]
	idents  compile.Slab[Ident]
	bins    compile.Slab[BinExpr]
	indexes compile.Slab[IndexExpr]
}

// kdslScratchOf returns (allocating on first use) the frontend scratch
// stored in sc, or nil when sc is nil.
func kdslScratchOf(sc *compile.Scratch) *kdslScratch {
	if sc == nil {
		return nil
	}
	if ks, ok := sc.Kdsl.(*kdslScratch); ok {
		return ks
	}
	ks := &kdslScratch{}
	sc.Kdsl = ks
	return ks
}

// reset recycles the AST arenas for the next parse.
func (ks *kdslScratch) reset() {
	ks.ints.Reset()
	ks.floats.Reset()
	ks.idents.Reset()
	ks.bins.Reset()
	ks.indexes.Reset()
}

// ParseScratch is Parse with reusable buffers: the token slice, the
// identifier interner, and the AST node arenas all come from sc and are
// recycled on the next ParseScratch call with the same Scratch. A nil sc
// behaves exactly like Parse.
func ParseScratch(src string, sc *compile.Scratch) (*ClassDef, error) {
	ks := kdslScratchOf(sc)
	if ks == nil {
		return Parse(src)
	}
	ks.reset()
	var intern *compile.Interner
	if sc != nil {
		intern = sc.Strings
	}
	toks, err := lexTokens(src, ks.toks, intern)
	if err != nil {
		return nil, err
	}
	ks.toks = toks
	p := &parser{toks: toks, sc: ks}
	cls, err := p.classDef()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errf(p.cur().Pos, "unexpected %q after class definition", p.cur().Text)
	}
	return cls, nil
}

// Parser-side allocation helpers: slab-backed with a scratch, plain heap
// without.

func (p *parser) newIntLit() *IntLit {
	if p.sc != nil {
		return p.sc.ints.New()
	}
	return &IntLit{}
}

func (p *parser) newFloatLit() *FloatLit {
	if p.sc != nil {
		return p.sc.floats.New()
	}
	return &FloatLit{}
}

func (p *parser) newIdent() *Ident {
	if p.sc != nil {
		return p.sc.idents.New()
	}
	return &Ident{}
}

func (p *parser) newBinExpr() *BinExpr {
	if p.sc != nil {
		return p.sc.bins.New()
	}
	return &BinExpr{}
}

func (p *parser) newIndexExpr() *IndexExpr {
	if p.sc != nil {
		return p.sc.indexes.New()
	}
	return &IndexExpr{}
}
