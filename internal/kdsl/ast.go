package kdsl

import (
	"fmt"
	"strings"

	"s2fa/internal/cir"
)

// Type is a kdsl type: a primitive scalar, an array of a primitive, a
// tuple of those, or String (allowed only for the `id` field, matching
// the Blaze programming model).
type Type struct {
	Kind   cir.Kind
	Array  bool
	Tuple  []Type
	String bool
}

// IsTuple reports whether the type is a tuple.
func (t Type) IsTuple() bool { return len(t.Tuple) > 0 }

// IsScalar reports whether the type is a primitive scalar.
func (t Type) IsScalar() bool { return !t.Array && !t.IsTuple() && !t.String }

// IsNumeric reports whether arithmetic applies.
func (t Type) IsNumeric() bool {
	return t.IsScalar() && t.Kind != cir.Bool && t.Kind != cir.Void
}

// Equal reports structural type equality.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind || t.Array != o.Array || t.String != o.String || len(t.Tuple) != len(o.Tuple) {
		return false
	}
	for i := range t.Tuple {
		if !t.Tuple[i].Equal(o.Tuple[i]) {
			return false
		}
	}
	return true
}

func (t Type) String2() string { return t.str() }

func (t Type) str() string {
	switch {
	case t.String:
		return "String"
	case t.IsTuple():
		parts := make([]string, len(t.Tuple))
		for i, f := range t.Tuple {
			parts[i] = f.str()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case t.Array:
		return fmt.Sprintf("Array[%s]", scalaName(t.Kind))
	default:
		return scalaName(t.Kind)
	}
}

func scalaName(k cir.Kind) string {
	switch k {
	case cir.Bool:
		return "Boolean"
	case cir.Char:
		return "Char"
	case cir.Short:
		return "Short"
	case cir.Int:
		return "Int"
	case cir.Long:
		return "Long"
	case cir.Float:
		return "Float"
	case cir.Double:
		return "Double"
	}
	return k.String()
}

// Expr is a kdsl expression node. T is filled by the type checker.
type Expr interface {
	Pos() Pos
	Type() Type
	setType(Type)
}

type exprBase struct {
	pos Pos
	typ Type
}

func (e *exprBase) Pos() Pos       { return e.pos }
func (e *exprBase) Type() Type     { return e.typ }
func (e *exprBase) setType(t Type) { e.typ = t }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val  int64
	Long bool
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Val    float64
	Single bool // 1.5f
}

// CharLit is a character literal.
type CharLit struct {
	exprBase
	Val rune
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Val bool
}

// Ident references a local, parameter, or class field.
type Ident struct {
	exprBase
	Name string
}

// TupleField is the `x._k` accessor (k is 1-based in source, 0-based
// here).
type TupleField struct {
	exprBase
	X     Expr
	Field int
}

// IndexExpr is array indexing `a(i)`.
type IndexExpr struct {
	exprBase
	X   Expr
	Idx Expr
}

// LenExpr is `a.length`.
type LenExpr struct {
	exprBase
	X Expr
}

// BinExpr is a binary operation.
type BinExpr struct {
	exprBase
	Op   cir.BinOp
	L, R Expr
}

// UnExpr is a unary operation.
type UnExpr struct {
	exprBase
	Op cir.UnOp
	X  Expr
}

// CastExpr is `.toInt`, `.toDouble`, etc. The checker also inserts these
// for implicit numeric widening.
type CastExpr struct {
	exprBase
	X  Expr
	To cir.Kind
}

// MathCall is a java.lang.Math intrinsic call — the only library calls
// S2FA accepts (paper §3.3).
type MathCall struct {
	exprBase
	Name string
	Args []Expr
}

// NewArrayExpr is `new Array[T](n)` with compile-time-constant n.
type NewArrayExpr struct {
	exprBase
	Elem cir.Kind
	Len  Expr
	// ConstLen is resolved by the checker.
	ConstLen int
}

// TupleExpr constructs a tuple `(a, b)`.
type TupleExpr struct {
	exprBase
	Elems []Expr
}

// Stmt is a kdsl statement node.
type Stmt interface{ Pos() Pos }

type stmtBase struct{ pos Pos }

func (s *stmtBase) Pos() Pos { return s.pos }

// DeclStmt is `val x: T = e` / `var x: T = e`.
type DeclStmt struct {
	stmtBase
	Mutable bool
	Name    string
	T       Type
	Init    Expr
}

// AssignStmt is `x = e` or `a(i) = e`.
type AssignStmt struct {
	stmtBase
	Target Expr // Ident or IndexExpr
	Value  Expr
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body []Stmt
}

// ForStmt is `for (i <- lo until hi)` (Incl for `to`).
type ForStmt struct {
	stmtBase
	Var  string
	Lo   Expr
	Hi   Expr
	Incl bool
	Body []Stmt
}

// IfStmt is a conditional.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ExprStmt is a bare expression; only legal as the final statement of a
// method body, where it is the return value.
type ExprStmt struct {
	stmtBase
	E Expr
}

// ReturnStmt is an explicit `return e` (equivalent to a final ExprStmt).
type ReturnStmt struct {
	stmtBase
	E Expr
}

// Param is a method parameter.
type Param struct {
	Name string
	T    Type
	Pos  Pos
}

// MethodDef is a method of the kernel class.
type MethodDef struct {
	Name   string
	Params []Param
	Ret    Type
	Body   []Stmt
	Pos    Pos
}

// FieldDef is a class-level `val` definition.
type FieldDef struct {
	Name string
	T    Type
	// Str holds a String field's value (only `id`).
	Str string
	// Elems holds literal elements for scalar (len 1) or Array(...)
	// initializers.
	Elems []Expr
	Pos   Pos
}

// ClassDef is a parsed kernel class.
type ClassDef struct {
	Name    string
	InType  Type
	OutType Type
	Fields  []FieldDef
	Methods []MethodDef
	Pos     Pos
}

// Method returns the named method, or nil.
func (c *ClassDef) Method(name string) *MethodDef {
	for i := range c.Methods {
		if c.Methods[i].Name == name {
			return &c.Methods[i]
		}
	}
	return nil
}

// Field returns the named field, or nil.
func (c *ClassDef) Field(name string) *FieldDef {
	for i := range c.Fields {
		if c.Fields[i].Name == name {
			return &c.Fields[i]
		}
	}
	return nil
}
