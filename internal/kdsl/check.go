package kdsl

import (
	"s2fa/internal/cir"
)

// Check type-checks a parsed class in place: it resolves identifiers,
// infers and records expression types, inserts implicit numeric widening
// casts, folds constant array sizes, and enforces the S2FA programming
// restrictions of paper §3.3. On success the AST is ready for bytecode
// generation.
func Check(cls *ClassDef) error {
	c := &checker{cls: cls}
	return c.checkClass()
}

type symKind uint8

const (
	symLocal symKind = iota
	symParam
	symFieldScalar
	symFieldArray
)

type symbol struct {
	kind    symKind
	typ     Type
	mutable bool
}

type checker struct {
	cls    *ClassDef
	scopes []map[string]symbol
}

func (c *checker) push()                        { c.scopes = append(c.scopes, map[string]symbol{}) }
func (c *checker) pop()                         { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *checker) define(name string, s symbol) { c.scopes[len(c.scopes)-1][name] = s }

func (c *checker) lookup(name string) (symbol, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	return symbol{}, false
}

func (c *checker) checkClass() error {
	cls := c.cls
	idField := cls.Field("id")
	if idField == nil || !idField.T.String || idField.Str == "" {
		return errf(cls.Pos, "class %s must declare `val id: String = %q`-style accelerator identifier", cls.Name, "...")
	}
	for i := range cls.Fields {
		if err := c.checkField(&cls.Fields[i]); err != nil {
			return err
		}
	}
	call := cls.Method("call")
	if call == nil {
		return errf(cls.Pos, "class %s must define a call method", cls.Name)
	}
	if len(call.Params) != 1 || !call.Params[0].T.Equal(cls.InType) {
		return errf(call.Pos, "call must take one parameter of the Accelerator input type %s", cls.InType.str())
	}
	if !call.Ret.Equal(cls.OutType) {
		return errf(call.Pos, "call must return the Accelerator output type %s", cls.OutType.str())
	}
	if err := c.checkMethod(call); err != nil {
		return err
	}
	if red := cls.Method("reduce"); red != nil {
		if len(red.Params) != 2 || !red.Params[0].T.Equal(cls.OutType) || !red.Params[1].T.Equal(cls.OutType) {
			return errf(red.Pos, "reduce must take two parameters of the output type %s", cls.OutType.str())
		}
		if !red.Ret.Equal(cls.OutType) {
			return errf(red.Pos, "reduce must return the output type %s", cls.OutType.str())
		}
		if err := c.checkMethod(red); err != nil {
			return err
		}
	}
	for i := range cls.Methods {
		m := &cls.Methods[i]
		if m.Name != "call" && m.Name != "reduce" {
			return errf(m.Pos, "unsupported method %q: S2FA kernels define call and optionally reduce", m.Name)
		}
	}
	return c.checkInSizes()
}

func (c *checker) checkField(f *FieldDef) error {
	if f.T.String {
		if f.Name != "id" {
			return errf(f.Pos, "String fields other than `id` are unsupported")
		}
		return nil
	}
	if f.T.IsTuple() {
		return errf(f.Pos, "tuple-typed constant fields are unsupported")
	}
	if len(f.Elems) == 0 {
		return errf(f.Pos, "field %s needs a literal initializer", f.Name)
	}
	if !f.T.Array && len(f.Elems) != 1 {
		return errf(f.Pos, "scalar field %s initialized with %d values", f.Name, len(f.Elems))
	}
	for _, e := range f.Elems {
		lt, err := c.literalType(e)
		if err != nil {
			return err
		}
		if !widens(lt.Kind, f.T.Kind) && lt.Kind != f.T.Kind {
			return errf(e.Pos(), "field %s: literal of type %s does not fit declared %s", f.Name, lt.str(), f.T.str())
		}
		e.setType(Type{Kind: f.T.Kind})
	}
	return nil
}

func (c *checker) checkInSizes() error {
	f := c.cls.Field("inSizes")
	arity := 1
	inT := c.cls.InType
	if inT.IsTuple() {
		arity = len(inT.Tuple)
	}
	needsSizes := false
	fields := []Type{inT}
	if inT.IsTuple() {
		fields = inT.Tuple
	}
	for _, ft := range fields {
		if ft.Array {
			needsSizes = true
		}
	}
	if !needsSizes {
		return nil
	}
	if f == nil {
		return errf(c.cls.Pos, "class %s has array inputs: declare the data layout template `val inSizes: Array[Int] = Array(...)` (S2FA class template, paper §3.3)", c.cls.Name)
	}
	if !f.T.Array || f.T.Kind != cir.Int {
		return errf(f.Pos, "inSizes must be Array[Int]")
	}
	if len(f.Elems) != arity {
		return errf(f.Pos, "inSizes has %d entries for %d input fields", len(f.Elems), arity)
	}
	return nil
}

func (c *checker) literalType(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		if e.Long {
			return Type{Kind: cir.Long}, nil
		}
		return Type{Kind: cir.Int}, nil
	case *FloatLit:
		if e.Single {
			return Type{Kind: cir.Float}, nil
		}
		return Type{Kind: cir.Double}, nil
	case *CharLit:
		return Type{Kind: cir.Char}, nil
	case *BoolLit:
		return Type{Kind: cir.Bool}, nil
	}
	return Type{}, errf(e.Pos(), "expected literal")
}

func (c *checker) checkMethod(m *MethodDef) error {
	c.scopes = nil
	c.push()
	// Class fields are visible inside methods.
	for i := range c.cls.Fields {
		f := &c.cls.Fields[i]
		if f.T.String || f.Name == "inSizes" {
			continue
		}
		k := symFieldScalar
		if f.T.Array {
			k = symFieldArray
		}
		c.define(f.Name, symbol{kind: k, typ: f.T})
	}
	c.push()
	for _, p := range m.Params {
		c.define(p.Name, symbol{kind: symParam, typ: p.T})
	}
	if len(m.Body) == 0 {
		return errf(m.Pos, "method %s has an empty body", m.Name)
	}
	for i, s := range m.Body {
		last := i == len(m.Body)-1
		if err := c.checkStmt(s, m, last); err != nil {
			return err
		}
	}
	// The final statement must produce the return value.
	switch last := m.Body[len(m.Body)-1].(type) {
	case *ExprStmt:
		if !assignable(last.E.Type(), m.Ret) {
			return errf(last.Pos(), "method %s returns %s, body yields %s", m.Name, m.Ret.str(), last.E.Type().str())
		}
	case *ReturnStmt:
		if !assignable(last.E.Type(), m.Ret) {
			return errf(last.Pos(), "method %s returns %s, return yields %s", m.Name, m.Ret.str(), last.E.Type().str())
		}
	default:
		return errf(last.Pos(), "method %s must end with its result expression", m.Name)
	}
	c.pop()
	c.pop()
	return nil
}

func (c *checker) checkStmt(s Stmt, m *MethodDef, last bool) error {
	switch s := s.(type) {
	case *DeclStmt:
		if _, exists := c.scopes[len(c.scopes)-1][s.Name]; exists {
			return errf(s.Pos(), "%s redeclared in this scope", s.Name)
		}
		if s.T.IsTuple() {
			return errf(s.Pos(), "tuple-typed locals are unsupported; destructure with ._1/._2")
		}
		if err := c.checkExpr(s.Init); err != nil {
			return err
		}
		if !assignable(s.Init.Type(), s.T) {
			return errf(s.Pos(), "cannot initialize %s (%s) with %s", s.Name, s.T.str(), s.Init.Type().str())
		}
		s.Init = implicitCast(s.Init, s.T)
		c.define(s.Name, symbol{kind: symLocal, typ: s.T, mutable: s.Mutable})
		return nil
	case *AssignStmt:
		if err := c.checkExpr(s.Target); err != nil {
			return err
		}
		if err := c.checkExpr(s.Value); err != nil {
			return err
		}
		switch t := s.Target.(type) {
		case *Ident:
			sym, ok := c.lookup(t.Name)
			if !ok {
				return errf(t.Pos(), "undefined: %s", t.Name)
			}
			if sym.kind == symFieldScalar || sym.kind == symFieldArray {
				return errf(t.Pos(), "class constant %s is immutable", t.Name)
			}
			if sym.kind == symLocal && !sym.mutable {
				return errf(t.Pos(), "cannot assign to val %s", t.Name)
			}
			if sym.kind == symParam && !t.Type().Array {
				return errf(t.Pos(), "cannot assign to parameter %s", t.Name)
			}
		case *IndexExpr:
			if ix, ok := t.X.(*Ident); ok {
				if sym, found := c.lookup(ix.Name); found && sym.kind == symFieldArray {
					return errf(t.Pos(), "class constant %s is immutable", ix.Name)
				}
			}
		default:
			return errf(s.Pos(), "invalid assignment target")
		}
		if !assignable(s.Value.Type(), s.Target.Type()) {
			return errf(s.Pos(), "cannot assign %s to %s", s.Value.Type().str(), s.Target.Type().str())
		}
		s.Value = implicitCast(s.Value, s.Target.Type())
		return nil
	case *WhileStmt:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if s.Cond.Type().Kind != cir.Bool || !s.Cond.Type().IsScalar() {
			return errf(s.Cond.Pos(), "while condition must be Boolean")
		}
		c.push()
		defer c.pop()
		return c.checkStmts(s.Body, m)
	case *ForStmt:
		if err := c.checkExpr(s.Lo); err != nil {
			return err
		}
		if err := c.checkExpr(s.Hi); err != nil {
			return err
		}
		if !intLike(s.Lo.Type()) || !intLike(s.Hi.Type()) {
			return errf(s.Pos(), "for bounds must be integers")
		}
		c.push()
		defer c.pop()
		c.define(s.Var, symbol{kind: symLocal, typ: Type{Kind: cir.Int}})
		return c.checkStmts(s.Body, m)
	case *IfStmt:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if s.Cond.Type().Kind != cir.Bool || !s.Cond.Type().IsScalar() {
			return errf(s.Cond.Pos(), "if condition must be Boolean")
		}
		c.push()
		if err := c.checkStmts(s.Then, m); err != nil {
			c.pop()
			return err
		}
		c.pop()
		c.push()
		defer c.pop()
		return c.checkStmts(s.Else, m)
	case *ExprStmt:
		if !last {
			return errf(s.Pos(), "expression statements are only allowed as the method result")
		}
		return c.checkExpr(s.E)
	case *ReturnStmt:
		if !last {
			return errf(s.Pos(), "early return is unsupported; structure the kernel with if/else")
		}
		return c.checkExpr(s.E)
	}
	return errf(s.Pos(), "unsupported statement")
}

func (c *checker) checkStmts(stmts []Stmt, m *MethodDef) error {
	for _, s := range stmts {
		if err := c.checkStmt(s, m, false); err != nil {
			return err
		}
	}
	return nil
}

func intLike(t Type) bool {
	return t.IsScalar() && (t.Kind == cir.Char || t.Kind == cir.Short || t.Kind == cir.Int || t.Kind == cir.Long)
}

// widens reports whether kind a implicitly widens to b (Scala numeric
// conversion order).
func widens(a, b cir.Kind) bool {
	rank := func(k cir.Kind) int {
		switch k {
		case cir.Char, cir.Short:
			return 1
		case cir.Int:
			return 2
		case cir.Long:
			return 3
		case cir.Float:
			return 4
		case cir.Double:
			return 5
		}
		return 0
	}
	ra, rb := rank(a), rank(b)
	return ra > 0 && rb > 0 && ra < rb
}

func assignable(from, to Type) bool {
	if from.Equal(to) {
		return true
	}
	if from.IsScalar() && to.IsScalar() {
		return widens(from.Kind, to.Kind)
	}
	if from.IsTuple() && to.IsTuple() && len(from.Tuple) == len(to.Tuple) {
		for i := range from.Tuple {
			if !assignable(from.Tuple[i], to.Tuple[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func implicitCast(e Expr, to Type) Expr {
	if !to.IsScalar() || e.Type().Kind == to.Kind {
		return e
	}
	cast := &CastExpr{X: e, To: to.Kind}
	cast.pos = e.Pos()
	cast.setType(Type{Kind: to.Kind})
	return cast
}

func (c *checker) checkExpr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		if e.Long {
			e.setType(Type{Kind: cir.Long})
		} else {
			e.setType(Type{Kind: cir.Int})
		}
	case *FloatLit:
		if e.Single {
			e.setType(Type{Kind: cir.Float})
		} else {
			e.setType(Type{Kind: cir.Double})
		}
	case *CharLit:
		e.setType(Type{Kind: cir.Char})
	case *BoolLit:
		e.setType(Type{Kind: cir.Bool})
	case *Ident:
		sym, ok := c.lookup(e.Name)
		if !ok {
			return errf(e.Pos(), "undefined: %s", e.Name)
		}
		e.setType(sym.typ)
	case *TupleField:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		xt := e.X.Type()
		if !xt.IsTuple() {
			return errf(e.Pos(), "._%d on non-tuple %s", e.Field+1, xt.str())
		}
		if e.Field >= len(xt.Tuple) {
			return errf(e.Pos(), "tuple %s has no field _%d", xt.str(), e.Field+1)
		}
		e.setType(xt.Tuple[e.Field])
	case *IndexExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if err := c.checkExpr(e.Idx); err != nil {
			return err
		}
		if !e.X.Type().Array {
			return errf(e.Pos(), "indexing non-array %s", e.X.Type().str())
		}
		if !intLike(e.Idx.Type()) {
			return errf(e.Idx.Pos(), "array index must be an integer")
		}
		e.Idx = implicitCast(e.Idx, Type{Kind: cir.Int})
		e.setType(Type{Kind: e.X.Type().Kind})
	case *LenExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if !e.X.Type().Array {
			return errf(e.Pos(), ".length on non-array %s", e.X.Type().str())
		}
		e.setType(Type{Kind: cir.Int})
	case *BinExpr:
		return c.checkBin(e)
	case *UnExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		xt := e.X.Type()
		switch e.Op {
		case cir.Not:
			if xt.Kind != cir.Bool || !xt.IsScalar() {
				return errf(e.Pos(), "! needs a Boolean operand")
			}
			e.setType(Type{Kind: cir.Bool})
		case cir.Neg:
			if !xt.IsNumeric() {
				return errf(e.Pos(), "- needs a numeric operand")
			}
			k := xt.Kind
			if k == cir.Char || k == cir.Short {
				k = cir.Int
				e.X = implicitCast(e.X, Type{Kind: k})
			}
			e.setType(Type{Kind: k})
		case cir.BitNot:
			if !intLike(xt) {
				return errf(e.Pos(), "~ needs an integer operand")
			}
			k := xt.Kind
			if k == cir.Char || k == cir.Short {
				k = cir.Int
				e.X = implicitCast(e.X, Type{Kind: k})
			}
			e.setType(Type{Kind: k})
		}
	case *CastExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if !e.X.Type().IsScalar() {
			return errf(e.Pos(), "cast of non-scalar %s", e.X.Type().str())
		}
		e.setType(Type{Kind: e.To})
	case *MathCall:
		return c.checkMath(e)
	case *NewArrayExpr:
		if err := c.checkExpr(e.Len); err != nil {
			return err
		}
		n, ok := constInt(e.Len)
		if !ok {
			return errf(e.Pos(), "new Array size must be a compile-time constant (no dynamic allocation on the FPGA, paper §3.3)")
		}
		if n <= 0 || n > 1<<22 {
			return errf(e.Pos(), "array size %d out of range", n)
		}
		e.ConstLen = int(n)
		e.setType(Type{Kind: e.Elem, Array: true})
	case *TupleExpr:
		var fields []Type
		for _, el := range e.Elems {
			if err := c.checkExpr(el); err != nil {
				return err
			}
			if el.Type().IsTuple() {
				return errf(el.Pos(), "nested tuples are unsupported")
			}
			fields = append(fields, el.Type())
		}
		e.setType(Type{Tuple: fields})
	default:
		return errf(e.Pos(), "unsupported expression")
	}
	return nil
}

func (c *checker) checkBin(e *BinExpr) error {
	if err := c.checkExpr(e.L); err != nil {
		return err
	}
	if err := c.checkExpr(e.R); err != nil {
		return err
	}
	lt, rt := e.L.Type(), e.R.Type()
	if e.Op.IsLogical() {
		if lt.Kind != cir.Bool || rt.Kind != cir.Bool || !lt.IsScalar() || !rt.IsScalar() {
			return errf(e.Pos(), "%s needs Boolean operands", e.Op)
		}
		e.setType(Type{Kind: cir.Bool})
		return nil
	}
	if !lt.IsNumeric() || !rt.IsNumeric() {
		if e.Op == cir.Eq || e.Op == cir.Ne {
			if lt.Kind == cir.Bool && rt.Kind == cir.Bool && lt.IsScalar() && rt.IsScalar() {
				e.setType(Type{Kind: cir.Bool})
				return nil
			}
		}
		return errf(e.Pos(), "%s needs numeric operands, got %s and %s", e.Op, lt.str(), rt.str())
	}
	k := promote(lt.Kind, rt.Kind)
	switch e.Op {
	case cir.And, cir.Or, cir.Xor, cir.Shl, cir.Shr, cir.Rem:
		if k.IsFloat() && e.Op != cir.Rem {
			return errf(e.Pos(), "%s needs integer operands", e.Op)
		}
	}
	if e.Op == cir.Shl || e.Op == cir.Shr {
		// Shift amount keeps its own type; only promote the left side.
		e.L = implicitCast(e.L, Type{Kind: k})
		e.R = implicitCast(e.R, Type{Kind: cir.Int})
	} else {
		e.L = implicitCast(e.L, Type{Kind: k})
		e.R = implicitCast(e.R, Type{Kind: k})
	}
	if e.Op.IsCompare() {
		e.setType(Type{Kind: cir.Bool})
	} else {
		e.setType(Type{Kind: k})
	}
	return nil
}

// promote applies JVM binary numeric promotion (minimum Int).
func promote(a, b cir.Kind) cir.Kind {
	rank := map[cir.Kind]int{cir.Char: 1, cir.Short: 1, cir.Int: 2, cir.Long: 3, cir.Float: 4, cir.Double: 5}
	order := []cir.Kind{cir.Int, cir.Long, cir.Float, cir.Double}
	r := rank[a]
	if rank[b] > r {
		r = rank[b]
	}
	if r < 2 {
		r = 2
	}
	return order[r-2]
}

var mathArity = map[string]int{
	"exp": 1, "log": 1, "sqrt": 1, "abs": 1, "floor": 1,
	"pow": 2, "min": 2, "max": 2,
}

func (c *checker) checkMath(e *MathCall) error {
	arity, ok := mathArity[e.Name]
	if !ok {
		return errf(e.Pos(), "Math.%s is unsupported (S2FA does not support library calls, paper §3.3)", e.Name)
	}
	if len(e.Args) != arity {
		return errf(e.Pos(), "Math.%s takes %d argument(s)", e.Name, arity)
	}
	for _, a := range e.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
		if !a.Type().IsNumeric() {
			return errf(a.Pos(), "Math.%s argument must be numeric", e.Name)
		}
	}
	switch e.Name {
	case "exp", "log", "sqrt", "pow", "floor":
		for i := range e.Args {
			e.Args[i] = implicitCast(e.Args[i], Type{Kind: cir.Double})
		}
		e.setType(Type{Kind: cir.Double})
	case "abs":
		k := e.Args[0].Type().Kind
		if k == cir.Char || k == cir.Short {
			k = cir.Int
			e.Args[0] = implicitCast(e.Args[0], Type{Kind: k})
		}
		e.setType(Type{Kind: k})
	case "min", "max":
		k := promote(e.Args[0].Type().Kind, e.Args[1].Type().Kind)
		e.Args[0] = implicitCast(e.Args[0], Type{Kind: k})
		e.Args[1] = implicitCast(e.Args[1], Type{Kind: k})
		e.setType(Type{Kind: k})
	}
	return nil
}

// constInt folds a compile-time-constant integer expression.
func constInt(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Val, true
	case *CharLit:
		return int64(e.Val), true
	case *UnExpr:
		if e.Op == cir.Neg {
			if v, ok := constInt(e.X); ok {
				return -v, true
			}
		}
	case *CastExpr:
		return constInt(e.X)
	case *BinExpr:
		l, okL := constInt(e.L)
		r, okR := constInt(e.R)
		if !okL || !okR {
			return 0, false
		}
		switch e.Op {
		case cir.Add:
			return l + r, true
		case cir.Sub:
			return l - r, true
		case cir.Mul:
			return l * r, true
		case cir.Div:
			if r != 0 {
				return l / r, true
			}
		case cir.Shl:
			return l << uint(r&63), true
		case cir.Shr:
			return l >> uint(r&63), true
		}
	}
	return 0, false
}
