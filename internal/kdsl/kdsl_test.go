package kdsl

import (
	"strings"
	"testing"

	"s2fa/internal/cir"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`class X { val id: String = "k" /* block */ // line
	def call(in: Int): Int = { in + 1 } }`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	if kinds[0] != TokKeyword || texts[0] != "class" {
		t.Errorf("first token = %v %q", kinds[0], texts[0])
	}
	joined := strings.Join(texts, " ")
	if strings.Contains(joined, "block") || strings.Contains(joined, "line") {
		t.Error("comments leaked into the token stream")
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexLiterals(t *testing.T) {
	toks, err := Lex(`1 42L 3.5 1.5f 2e10 1.0e-3 'a' '\n' '\\' "str"`)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokKind{TokInt, TokInt, TokFloat, TokFloat, TokFloat, TokFloat, TokChar, TokChar, TokChar, TokString, TokEOF}
	if len(toks) != len(wantKinds) {
		t.Fatalf("token count = %d, want %d", len(toks), len(wantKinds))
	}
	for i, w := range wantKinds {
		if toks[i].Kind != w {
			t.Errorf("token %d (%q) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`'a`,
		`/* open comment`,
		`@`,
	} {
		if _, err := Lex(src); err == nil {
			t.Errorf("lexer accepted %q", src)
		}
	}
}

const minimal = `
class M extends Accelerator[Int, Int] {
  val id: String = "m"
  def call(in: Int): Int = {
    in + 1
  }
}
`

func TestParseMinimal(t *testing.T) {
	cls, err := Parse(minimal)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Name != "M" || cls.Field("id").Str != "m" {
		t.Errorf("class = %q id = %q", cls.Name, cls.Field("id").Str)
	}
	if cls.Method("call") == nil {
		t.Fatal("no call method")
	}
}

func TestParsePrecedence(t *testing.T) {
	// 1 + 2 * 3 must parse as 1 + (2*3); verify through execution below,
	// here just check the AST nests multiplication deeper.
	cls, err := Parse(`
class P extends Accelerator[Int, Int] {
  val id: String = "p"
  def call(in: Int): Int = {
    in + 2 * 3
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	e := cls.Method("call").Body[0].(*ExprStmt).E.(*BinExpr)
	if e.Op != cir.Add {
		t.Fatalf("top op = %v", e.Op)
	}
	if r, ok := e.R.(*BinExpr); !ok || r.Op != cir.Mul {
		t.Errorf("rhs is not a multiplication")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not accelerator": `class X extends Foo[Int, Int] { val id: String = "x" def call(in: Int): Int = { in } }`,
		"tuple arity":     `class X extends Accelerator[(Int, Int, Int, Int, Int), Int] { val id: String = "x" def call(in: (Int, Int, Int, Int, Int)): Int = { 1 } }`,
		"nested tuple":    `class X extends Accelerator[((Int, Int), Int), Int] { val id: String = "x" def call(in: ((Int, Int), Int)): Int = { 1 } }`,
		"unknown type":    `class X extends Accelerator[Banana, Int] { val id: String = "x" def call(in: Banana): Int = { 1 } }`,
		"bad assignment":  `class X extends Accelerator[Int, Int] { val id: String = "x" def call(in: Int): Int = { 1 + 2 = 3 1 } }`,
		"bad selector":    `class X extends Accelerator[Int, Int] { val id: String = "x" def call(in: Int): Int = { in.foo } }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parser accepted invalid source", name)
		}
	}
}

// checkErr asserts CompileSource fails with a message containing want.
func checkErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := CompileSource(src)
	if err == nil {
		t.Fatalf("accepted invalid kernel (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err.Error(), want)
	}
}

func TestCheckRestrictions(t *testing.T) {
	t.Run("missing id", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Int, Int] {
  def call(in: Int): Int = { in }
}`, "id")
	})
	t.Run("dynamic allocation", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Int, Int] {
  val id: String = "x"
  def call(in: Int): Int = {
    var a: Array[Int] = new Array[Int](in)
    a(0)
  }
}`, "compile-time constant")
	})
	t.Run("library call", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Double, Double] {
  val id: String = "x"
  def call(in: Double): Double = {
    Math.sin(in)
  }
}`, "unsupported")
	})
	t.Run("missing inSizes template", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Array[Int], Int] {
  val id: String = "x"
  def call(in: Array[Int]): Int = { in(0) }
}`, "inSizes")
	})
	t.Run("val immutability", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Int, Int] {
  val id: String = "x"
  def call(in: Int): Int = {
    val y: Int = 1
    y = 2
    y
  }
}`, "val")
	})
	t.Run("class constant immutability", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Int, Int] {
  val id: String = "x"
  val tab: Array[Int] = Array(1, 2)
  def call(in: Int): Int = {
    tab(0) = 5
    in
  }
}`, "immutable")
	})
	t.Run("return type mismatch", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Int, Int] {
  val id: String = "x"
  def call(in: Int): Int = {
    1.5
  }
}`, "returns")
	})
	t.Run("narrowing needs cast", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Double, Int] {
  val id: String = "x"
  def call(in: Double): Int = {
    var y: Int = in
    y
  }
}`, "cannot initialize")
	})
	t.Run("condition must be boolean", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Int, Int] {
  val id: String = "x"
  def call(in: Int): Int = {
    if (in) { }
    in
  }
}`, "Boolean")
	})
	t.Run("bad reduce signature", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Int, Int] {
  val id: String = "x"
  def call(in: Int): Int = { in }
  def reduce(a: Int, b: Double): Int = { a }
}`, "reduce")
	})
	t.Run("unknown method", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Int, Int] {
  val id: String = "x"
  def call(in: Int): Int = { in }
  def helper(a: Int): Int = { a }
}`, "unsupported method")
	})
	t.Run("early return rejected", func(t *testing.T) {
		checkErr(t, `
class X extends Accelerator[Int, Int] {
  val id: String = "x"
  def call(in: Int): Int = {
    return 1
    in
  }
}`, "early return")
	})
}

func TestImplicitWidening(t *testing.T) {
	// Int literal widens to Double in arithmetic and initialization.
	src := `
class W extends Accelerator[Double, Double] {
  val id: String = "w"
  def call(in: Double): Double = {
    var y: Double = 2
    y * in + 1
  }
}`
	if _, err := CompileSource(src); err != nil {
		t.Fatalf("widening rejected: %v", err)
	}
}

func TestConstFoldArraySizes(t *testing.T) {
	src := `
class C extends Accelerator[Int, Int] {
  val id: String = "c"
  def call(in: Int): Int = {
    var a: Array[Int] = new Array[Int](4 * 8 + 1)
    a(32) = in
    a(32)
  }
}`
	cls, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Call == nil {
		t.Fatal("no call method")
	}
}
