package tuner

import (
	"math/rand"

	"s2fa/internal/obs"
	"s2fa/internal/space"
)

// Evaluator scores one design point. For S2FA this wraps Merlin
// annotation plus the HLS estimator; for tests it can be any function.
type Evaluator func(space.Point) Result

// Driver runs the search loop: the bandit picks a technique, the
// technique proposes a point, the evaluator scores it, and credit flows
// back. Step evaluates a batch of k distinct candidates, which models
// running k HLS evaluations on k CPU cores concurrently (the vanilla
// OpenTuner baseline in the paper evaluates the top-8 candidates per
// iteration on its 8 cores).
type Driver struct {
	Space      *space.Space
	DB         *DB
	Eval       Evaluator
	Techniques []Technique
	Bandit     *AUCBandit
	Rng        *rand.Rand

	// Trace, when set, receives per-iteration bandit telemetry (arm
	// selections with AUC scores, credit rewards) on track TID. Tracing
	// is read-only: it never draws from Rng or reorders proposals.
	Trace *obs.Trace
	TID   int

	ctx *Context
}

// NewDriver assembles a driver with the default technique ensemble and
// bandit configuration.
func NewDriver(s *space.Space, eval Evaluator, seed int64) *Driver {
	rng := rand.New(rand.NewSource(seed))
	techs := DefaultTechniques(rng)
	d := &Driver{
		Space:      s,
		DB:         NewDB(),
		Eval:       eval,
		Techniques: techs,
		Bandit:     NewAUCBandit(len(techs), 50, 0.05),
		Rng:        rng,
	}
	d.ctx = &Context{Space: s, DB: d.DB, Rng: rng}
	return d
}

// InjectSeed evaluates a caller-provided starting point (paper §4.3.2
// seed generation) and records it without crediting any technique.
func (d *Driver) InjectSeed(pt space.Point) Result {
	r := d.Eval(pt)
	r.Technique = "seed"
	d.DB.Add(r)
	for _, t := range d.Techniques {
		if s, ok := t.(Seedable); ok {
			s.Seed(d.ctx, r)
		}
	}
	return r
}

// Proposal is one not-yet-evaluated design point selected by Propose,
// remembering which technique it must be credited to on Commit (tech is
// -1 for the uniform random fallback).
type Proposal struct {
	Tech  int
	Point space.Point
}

// Propose selects up to k distinct new design points without evaluating
// them: the bandit picks techniques, duplicate proposals are penalized,
// and the uniform fallback fills the remainder. The caller evaluates
// the points (possibly concurrently, on other goroutines) and feeds the
// results back through Commit in proposal order. Propose/Commit is the
// decomposition the concurrent DSE engine relies on: each scheduler
// worker owns its Driver exclusively, so proposal (which draws from
// this driver's Rng and mutates its bandit) stays isolated per worker
// while only the pure evaluation work is shared across goroutines.
func (d *Driver) Propose(k int) []Proposal {
	var batch []Proposal
	inBatch := map[string]bool{}
	for len(batch) < k {
		found := false
		for attempt := 0; attempt < 16; attempt++ {
			ti := d.Bandit.Select()
			if d.Trace != nil {
				st := d.Bandit.Stats()[ti]
				d.Trace.EventT(d.TID, "tuner", "select",
					obs.Str("arm", d.Techniques[ti].Name()),
					obs.F64("auc", st.AUC),
					obs.F64("score", st.Score),
					obs.Int("uses", st.Uses))
			}
			pt := d.Techniques[ti].Propose(d.ctx)
			key := pt.Key()
			if d.DB.Seen(pt) || inBatch[key] {
				// Re-proposing an explored point wastes the slot; tell
				// the bandit so the technique loses credit.
				d.Bandit.Reward(ti, false)
				if d.Trace != nil {
					d.Trace.EventT(d.TID, "tuner", "reward",
						obs.Str("arm", d.Techniques[ti].Name()),
						obs.Bool("new_best", false),
						obs.Bool("duplicate", true))
				}
				continue
			}
			inBatch[key] = true
			batch = append(batch, Proposal{Tech: ti, Point: pt})
			found = true
			break
		}
		if !found {
			// Fall back to uniform sampling to keep the batch filled.
			pt := d.Space.RandomPoint(d.Rng)
			if d.DB.Seen(pt) || inBatch[pt.Key()] {
				break // space exhausted (tiny test spaces)
			}
			inBatch[pt.Key()] = true
			batch = append(batch, Proposal{Tech: -1, Point: pt})
		}
	}
	return batch
}

// Commit records the evaluation result of one proposal: technique
// attribution, result database, feedback, and bandit credit. It returns
// the annotated result (Technique filled in) and whether it set a new
// driver-local best.
func (d *Driver) Commit(p Proposal, r Result) (Result, bool) {
	if p.Tech >= 0 {
		r.Technique = d.Techniques[p.Tech].Name()
	} else {
		r.Technique = "random-fill"
	}
	newBest := d.DB.Add(r)
	if p.Tech >= 0 {
		d.Techniques[p.Tech].Feedback(d.ctx, r)
		d.Bandit.Reward(p.Tech, newBest)
		if d.Trace != nil {
			d.Trace.EventT(d.TID, "tuner", "reward",
				obs.Str("arm", r.Technique),
				obs.Bool("new_best", newBest))
		}
	}
	return r, newBest
}

// Step proposes and evaluates up to k distinct new design points,
// returning their results in proposal order.
func (d *Driver) Step(k int) []Result {
	batch := d.Propose(k)
	out := make([]Result, 0, len(batch))
	for _, p := range batch {
		r, _ := d.Commit(p, d.Eval(p.Point))
		out = append(out, r)
	}
	return out
}
