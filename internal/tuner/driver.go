package tuner

import (
	"math/rand"

	"s2fa/internal/obs"
	"s2fa/internal/space"
)

// Evaluator scores one design point. For S2FA this wraps Merlin
// annotation plus the HLS estimator; for tests it can be any function.
type Evaluator func(space.Point) Result

// Driver runs the search loop: the bandit picks a technique, the
// technique proposes a point, the evaluator scores it, and credit flows
// back. Step evaluates a batch of k distinct candidates, which models
// running k HLS evaluations on k CPU cores concurrently (the vanilla
// OpenTuner baseline in the paper evaluates the top-8 candidates per
// iteration on its 8 cores).
type Driver struct {
	Space      *space.Space
	DB         *DB
	Eval       Evaluator
	Techniques []Technique
	Bandit     *AUCBandit
	Rng        *rand.Rand

	// Trace, when set, receives per-iteration bandit telemetry (arm
	// selections with AUC scores, credit rewards) on track TID. Tracing
	// is read-only: it never draws from Rng or reorders proposals.
	Trace *obs.Trace
	TID   int

	ctx *Context
}

// NewDriver assembles a driver with the default technique ensemble and
// bandit configuration.
func NewDriver(s *space.Space, eval Evaluator, seed int64) *Driver {
	rng := rand.New(rand.NewSource(seed))
	techs := DefaultTechniques(rng)
	d := &Driver{
		Space:      s,
		DB:         NewDB(),
		Eval:       eval,
		Techniques: techs,
		Bandit:     NewAUCBandit(len(techs), 50, 0.05),
		Rng:        rng,
	}
	d.ctx = &Context{Space: s, DB: d.DB, Rng: rng}
	return d
}

// InjectSeed evaluates a caller-provided starting point (paper §4.3.2
// seed generation) and records it without crediting any technique.
func (d *Driver) InjectSeed(pt space.Point) Result {
	r := d.Eval(pt)
	r.Technique = "seed"
	d.DB.Add(r)
	for _, t := range d.Techniques {
		if s, ok := t.(Seedable); ok {
			s.Seed(d.ctx, r)
		}
	}
	return r
}

// Step proposes and evaluates up to k distinct new design points,
// returning their results in proposal order.
func (d *Driver) Step(k int) []Result {
	type slot struct {
		tech int
		pt   space.Point
	}
	var batch []slot
	inBatch := map[string]bool{}
	for len(batch) < k {
		found := false
		for attempt := 0; attempt < 16; attempt++ {
			ti := d.Bandit.Select()
			if d.Trace != nil {
				st := d.Bandit.Stats()[ti]
				d.Trace.EventT(d.TID, "tuner", "select",
					obs.Str("arm", d.Techniques[ti].Name()),
					obs.F64("auc", st.AUC),
					obs.F64("score", st.Score),
					obs.Int("uses", st.Uses))
			}
			pt := d.Techniques[ti].Propose(d.ctx)
			key := pt.Key()
			if d.DB.Seen(pt) || inBatch[key] {
				// Re-proposing an explored point wastes the slot; tell
				// the bandit so the technique loses credit.
				d.Bandit.Reward(ti, false)
				if d.Trace != nil {
					d.Trace.EventT(d.TID, "tuner", "reward",
						obs.Str("arm", d.Techniques[ti].Name()),
						obs.Bool("new_best", false),
						obs.Bool("duplicate", true))
				}
				continue
			}
			inBatch[key] = true
			batch = append(batch, slot{tech: ti, pt: pt})
			found = true
			break
		}
		if !found {
			// Fall back to uniform sampling to keep the batch filled.
			pt := d.Space.RandomPoint(d.Rng)
			if d.DB.Seen(pt) || inBatch[pt.Key()] {
				break // space exhausted (tiny test spaces)
			}
			inBatch[pt.Key()] = true
			batch = append(batch, slot{tech: -1, pt: pt})
		}
	}

	out := make([]Result, 0, len(batch))
	for _, sl := range batch {
		r := d.Eval(sl.pt)
		if sl.tech >= 0 {
			r.Technique = d.Techniques[sl.tech].Name()
		} else {
			r.Technique = "random-fill"
		}
		newBest := d.DB.Add(r)
		if sl.tech >= 0 {
			d.Techniques[sl.tech].Feedback(d.ctx, r)
			d.Bandit.Reward(sl.tech, newBest)
			if d.Trace != nil {
				d.Trace.EventT(d.TID, "tuner", "reward",
					obs.Str("arm", r.Technique),
					obs.Bool("new_best", newBest))
			}
		}
		out = append(out, r)
	}
	return out
}
