package tuner

import (
	"math"
	"testing"
)

// TestBanditWindowOne: with a one-slot window, only the latest reward
// survives eviction — the AUC must flip between 0 and 1 on every reward.
func TestBanditWindowOne(t *testing.T) {
	b := NewAUCBandit(2, 1, 0.05)
	b.Reward(0, true)
	if got := b.AUC(0); got != 1 {
		t.Errorf("AUC after win = %v, want 1", got)
	}
	b.Reward(0, false)
	if got := b.AUC(0); got != 0 {
		t.Errorf("AUC after loss evicted the win = %v, want 0", got)
	}
	b.Reward(0, true)
	if got := b.AUC(0); got != 1 {
		t.Errorf("AUC after win evicted the loss = %v, want 1", got)
	}
	if st := b.Stats()[0]; st.Window != 1 {
		t.Errorf("window-1 arm holds %d rewards, want 1", st.Window)
	}
}

// TestBanditNeverSelectedArm: an arm that has never been rewarded keeps
// an infinite exploration bonus so Select cannot starve it, and its AUC
// contribution stays defined (0, not NaN from the 0/0 window).
func TestBanditNeverSelectedArm(t *testing.T) {
	b := NewAUCBandit(3, 50, 0.05)
	// Arms 0 and 1 accumulate history; arm 2 is never touched.
	for i := 0; i < 20; i++ {
		b.Reward(0, true)
		b.Reward(1, false)
	}
	if got := b.AUC(2); got != 0 {
		t.Errorf("untouched arm AUC = %v, want 0", got)
	}
	st := b.Stats()[2]
	if !math.IsInf(st.Exploration, 1) || !math.IsInf(st.Score, 1) {
		t.Errorf("untouched arm must keep +Inf exploration, got %+v", st)
	}
	if got := b.Select(); got != 2 {
		t.Errorf("Select() = %d, want the starved arm 2", got)
	}
}

// TestBanditRewardOnUnselectedArm: Reward can legally credit an arm
// Select never returned (the driver rewards duplicate proposals without
// a fresh selection); the window and use counts must track it alone.
func TestBanditRewardOnUnselectedArm(t *testing.T) {
	b := NewAUCBandit(2, 3, 0.05)
	b.Reward(1, true)
	b.Reward(1, true)
	st := b.Stats()
	if st[0].Uses != 0 || st[1].Uses != 2 {
		t.Errorf("uses = %d,%d, want 0,2", st[0].Uses, st[1].Uses)
	}
	if st[1].Window != 2 {
		t.Errorf("arm 1 window = %d, want 2", st[1].Window)
	}
	if got := b.AUC(1); got != 1 {
		t.Errorf("all-wins AUC = %v, want 1", got)
	}
}

// TestBanditEvictionKeepsRecencyWeight: the AUC rank-weights recent
// slots, so a window holding [loss, win] outscores [win, loss].
func TestBanditEvictionKeepsRecencyWeight(t *testing.T) {
	b := NewAUCBandit(2, 2, 0.05)
	b.Reward(0, false)
	b.Reward(0, true) // arm 0 window: [loss, win]
	b.Reward(1, true)
	b.Reward(1, false) // arm 1 window: [win, loss]
	w0, w1 := b.AUC(0), b.AUC(1)
	if !(w0 > w1) {
		t.Errorf("recent win should outweigh old win: AUC0=%v AUC1=%v", w0, w1)
	}
	// Overflow the window: three more losses on arm 0 must fully evict
	// its win (window 2 holds only the last two rewards).
	for i := 0; i < 3; i++ {
		b.Reward(0, false)
	}
	if got := b.AUC(0); got != 0 {
		t.Errorf("win should have been evicted, AUC = %v", got)
	}
	if st := b.Stats()[0]; st.Window != 2 || st.Uses != 5 {
		t.Errorf("after overflow: window=%d uses=%d, want window=2 uses=5", st.Window, st.Uses)
	}
}
