package tuner

import "math"

// AUCBandit is the multi-armed bandit meta-technique OpenTuner uses to
// arbitrate among search techniques (paper §4.2, citing Fialho et al.'s
// bandit-based adaptive operator selection): each technique keeps a
// sliding window recording whether its recent proposals produced a new
// global best; techniques are scored by the area under that credit curve
// plus an upper-confidence exploration bonus, and the next design point is
// allocated to the best-scoring technique.
type AUCBandit struct {
	window int
	c      float64 // exploration constant

	history [][]bool // per-technique sliding windows
	uses    []int
	total   int
}

// NewAUCBandit creates a bandit over n techniques with the given sliding
// window size and exploration constant.
func NewAUCBandit(n, window int, c float64) *AUCBandit {
	return &AUCBandit{
		window:  window,
		c:       c,
		history: make([][]bool, n),
		uses:    make([]int, n),
	}
}

// Select returns the index of the technique to use next.
func (b *AUCBandit) Select() int {
	best, bestScore := 0, math.Inf(-1)
	for i := range b.history {
		score := b.auc(i) + b.exploration(i)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Reward records the outcome of one proposal by technique i.
func (b *AUCBandit) Reward(i int, newBest bool) {
	b.uses[i]++
	b.total++
	h := append(b.history[i], newBest)
	if len(h) > b.window {
		h = h[len(h)-b.window:]
	}
	b.history[i] = h
}

// auc computes the area-under-curve credit: recent successes weigh more
// (rank-weighted sum over the window).
func (b *AUCBandit) auc(i int) float64 {
	h := b.history[i]
	if len(h) == 0 {
		return 0
	}
	var num, den float64
	for r, ok := range h {
		w := float64(r + 1)
		den += w
		if ok {
			num += w
		}
	}
	return num / den
}

// exploration is the UCB1 bonus ensuring starved techniques are retried.
func (b *AUCBandit) exploration(i int) float64 {
	if b.uses[i] == 0 {
		return math.Inf(1)
	}
	return b.c * math.Sqrt(2*math.Log(float64(b.total+1))/float64(b.uses[i]))
}

// ArmStat is one technique's introspection snapshot: how often it was
// credited, its current AUC score, and the exploration bonus Select
// would add — the numbers behind a trace's bandit arm table.
type ArmStat struct {
	Uses        int
	Window      int // rewards currently inside the sliding window
	AUC         float64
	Exploration float64
	Score       float64 // AUC + Exploration, the Select objective
}

// Stats snapshots every arm (indexed like the technique slice).
func (b *AUCBandit) Stats() []ArmStat {
	out := make([]ArmStat, len(b.history))
	for i := range b.history {
		a, e := b.auc(i), b.exploration(i)
		out[i] = ArmStat{
			Uses:        b.uses[i],
			Window:      len(b.history[i]),
			AUC:         a,
			Exploration: e,
			Score:       a + e,
		}
	}
	return out
}

// AUC exposes one arm's current area-under-curve credit.
func (b *AUCBandit) AUC(i int) float64 { return b.auc(i) }
