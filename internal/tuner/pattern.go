package tuner

import "s2fa/internal/space"

// PatternSearch is a deterministic hill climber in the style of
// OpenTuner's pattern-search technique: starting from the incumbent best
// configuration, it cycles through the parameters proposing structured
// moves — halving/doubling for numeric factors (the natural ladder for
// HLS parallel/tile factors) and adjacent values for enumerations — and
// repeats the last successful move first (classic pattern search keeps
// walking a profitable direction). The multi-armed bandit decides how
// much of the budget it deserves, like every other technique.
type PatternSearch struct {
	cursor int
	// Stickiness: when the previous proposal improved on the incumbent
	// it was derived from, retry the same (param, move) slot first.
	stickySlot  int
	sticky      bool
	pendingKey  string
	pendingSlot int
	pendingObj  float64
}

// NewPatternSearch returns the technique.
func NewPatternSearch() *PatternSearch { return &PatternSearch{stickySlot: -1} }

// Name implements Technique.
func (p *PatternSearch) Name() string { return "pattern-search" }

// Propose implements Technique.
func (p *PatternSearch) Propose(ctx *Context) space.Point {
	best := ctx.DB.Best()
	if best == nil {
		return ctx.Space.RandomPoint(ctx.Rng)
	}
	nSlots := 4 * len(ctx.Space.Params)
	if p.sticky {
		if cand, ok := p.candidate(ctx, best.Point, p.stickySlot); ok {
			p.remember(cand, p.stickySlot, best.Objective)
			return cand
		}
		p.sticky = false
	}
	for tries := 0; tries < nSlots; tries++ {
		slot := (p.cursor + tries) % nSlots
		cand, ok := p.candidate(ctx, best.Point, slot)
		if !ok {
			continue
		}
		p.cursor = (slot + 1) % nSlots
		p.remember(cand, slot, best.Objective)
		return cand
	}
	// Neighborhood exhausted: jump.
	return mutate(ctx, best.Point, 2)
}

// candidate builds the point for one (param, move) slot; ok=false when
// the move is a no-op or already explored.
func (p *PatternSearch) candidate(ctx *Context, base space.Point, slot int) (space.Point, bool) {
	if slot < 0 || slot >= 4*len(ctx.Space.Params) {
		return nil, false
	}
	prm := &ctx.Space.Params[slot/4]
	move := slot % 4
	cur := base[prm.Name]
	var next int
	switch move {
	case 0:
		next = prm.Clamp(cur * 2)
	case 1:
		next = prm.Clamp(cur / 2)
	case 2:
		next = prm.ValueAt(minI(prm.Size()-1, maxI(0, prm.Ordinal(cur)+1)))
	default:
		next = prm.ValueAt(minI(prm.Size()-1, maxI(0, prm.Ordinal(cur)-1)))
	}
	if next == cur {
		return nil, false
	}
	cand := base.Clone()
	cand[prm.Name] = next
	if ctx.DB.Seen(cand) {
		return nil, false
	}
	return cand, true
}

func (p *PatternSearch) remember(cand space.Point, slot int, baseObj float64) {
	p.pendingKey = cand.Key()
	p.pendingSlot = slot
	p.pendingObj = baseObj
}

// Feedback implements Technique: a move that beat the incumbent it was
// derived from becomes sticky.
func (p *PatternSearch) Feedback(ctx *Context, r Result) {
	if r.Point.Key() != p.pendingKey {
		return
	}
	p.pendingKey = ""
	if r.Feasible && r.Objective < p.pendingObj {
		p.sticky = true
		p.stickySlot = p.pendingSlot
	} else if p.sticky && p.pendingSlot == p.stickySlot {
		p.sticky = false
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
