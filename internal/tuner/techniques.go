package tuner

import (
	"math"

	"s2fa/internal/space"
)

// GreedyMutation implements uniform greedy mutation: mutate the incumbent
// best configuration in one uniformly chosen parameter. With no incumbent
// it samples uniformly.
type GreedyMutation struct{}

// NewGreedyMutation returns the technique.
func NewGreedyMutation() *GreedyMutation { return &GreedyMutation{} }

// Name implements Technique.
func (g *GreedyMutation) Name() string { return "uniform-greedy-mutation" }

// Propose implements Technique.
func (g *GreedyMutation) Propose(ctx *Context) space.Point {
	best := ctx.DB.Best()
	if best == nil {
		return ctx.Space.RandomPoint(ctx.Rng)
	}
	if ctx.Rng.Float64() < 0.5 {
		// Local move: step one parameter within its neighborhood.
		return neighbor(ctx, best.Point, 1)
	}
	return mutate(ctx, best.Point, 1)
}

// Feedback implements Technique. Greedy mutation is stateless: the DB's
// incumbent is its state.
func (g *GreedyMutation) Feedback(ctx *Context, r Result) {}

// DifferentialEvolution is a DE/rand/1/bin genetic algorithm over the
// ordinal encoding of the design space.
type DifferentialEvolution struct {
	popSize int
	f       float64 // differential weight
	cr      float64 // crossover rate

	pop     []space.Point
	fitness []float64
	next    int // round-robin target index
	pending map[string]int
}

// NewDifferentialEvolution returns a DE technique with the given
// population size, differential weight F, and crossover rate CR.
func NewDifferentialEvolution(popSize int, f, cr float64) *DifferentialEvolution {
	return &DifferentialEvolution{popSize: popSize, f: f, cr: cr, pending: map[string]int{}}
}

// Name implements Technique.
func (d *DifferentialEvolution) Name() string { return "differential-evolution-ga" }

// Propose implements Technique.
func (d *DifferentialEvolution) Propose(ctx *Context) space.Point {
	if len(d.pop) < d.popSize {
		pt := ctx.Space.RandomPoint(ctx.Rng)
		d.pop = append(d.pop, pt)
		d.fitness = append(d.fitness, math.Inf(1))
		d.pending[pt.Key()] = len(d.pop) - 1
		return pt
	}
	t := d.next % d.popSize
	d.next++
	a, b, c := ctx.Rng.Intn(d.popSize), ctx.Rng.Intn(d.popSize), ctx.Rng.Intn(d.popSize)
	oa := ordinalPoint(ctx.Space, d.pop[a])
	ob := ordinalPoint(ctx.Space, d.pop[b])
	oc := ordinalPoint(ctx.Space, d.pop[c])
	ot := ordinalPoint(ctx.Space, d.pop[t])
	trial := make([]float64, len(ot))
	forced := ctx.Rng.Intn(len(ot))
	for i := range trial {
		if i == forced || ctx.Rng.Float64() < d.cr {
			trial[i] = oa[i] + d.f*(ob[i]-oc[i])
		} else {
			trial[i] = ot[i]
		}
	}
	pt := pointFromOrdinals(ctx.Space, trial)
	d.pending[pt.Key()] = t
	return pt
}

// Seed implements Seedable: seeds join the population.
func (d *DifferentialEvolution) Seed(ctx *Context, r Result) {
	if len(d.pop) < d.popSize {
		d.pop = append(d.pop, r.Point.Clone())
		d.fitness = append(d.fitness, r.Objective)
		return
	}
	// Replace the worst member when the seed is better.
	worst, worstObj := -1, r.Objective
	for i, f := range d.fitness {
		if f > worstObj {
			worst, worstObj = i, f
		}
	}
	if worst >= 0 {
		d.pop[worst] = r.Point.Clone()
		d.fitness[worst] = r.Objective
	}
}

// Feedback implements Technique: a trial replaces its target when it
// improves on the target's fitness.
func (d *DifferentialEvolution) Feedback(ctx *Context, r Result) {
	key := r.Point.Key()
	idx, ok := d.pending[key]
	if !ok {
		return
	}
	delete(d.pending, key)
	if idx >= len(d.pop) {
		return
	}
	if r.Objective < d.fitness[idx] || math.IsInf(d.fitness[idx], 1) && r.Feasible {
		d.pop[idx] = r.Point.Clone()
		d.fitness[idx] = r.Objective
	}
}

// PSO is particle swarm optimization over the ordinal encoding.
type PSO struct {
	n         int
	particles []psoParticle
	next      int
	gbest     space.Point
	gbestObj  float64
	pending   map[string]int
}

type psoParticle struct {
	pos, vel []float64
	best     space.Point
	bestObj  float64
}

// NewPSO returns a PSO technique with n particles.
func NewPSO(n int) *PSO {
	return &PSO{n: n, gbestObj: math.Inf(1), pending: map[string]int{}}
}

// Name implements Technique.
func (p *PSO) Name() string { return "particle-swarm" }

// PSO hyperparameters (standard constriction values).
const (
	psoInertia = 0.72
	psoC1      = 1.49
	psoC2      = 1.49
)

// Propose implements Technique.
func (p *PSO) Propose(ctx *Context) space.Point {
	if len(p.particles) < p.n {
		pt := ctx.Space.RandomPoint(ctx.Rng)
		pos := ordinalPoint(ctx.Space, pt)
		vel := make([]float64, len(pos))
		for i := range vel {
			vel[i] = (ctx.Rng.Float64() - 0.5) * float64(ctx.Space.Params[i].Size()) / 4
		}
		p.particles = append(p.particles, psoParticle{pos: pos, vel: vel, best: pt.Clone(), bestObj: math.Inf(1)})
		p.pending[pt.Key()] = len(p.particles) - 1
		return pt
	}
	i := p.next % len(p.particles)
	p.next++
	part := &p.particles[i]
	pbest := ordinalPoint(ctx.Space, part.best)
	var gbest []float64
	if p.gbest != nil {
		gbest = ordinalPoint(ctx.Space, p.gbest)
	} else {
		gbest = pbest
	}
	for d := range part.pos {
		r1, r2 := ctx.Rng.Float64(), ctx.Rng.Float64()
		part.vel[d] = psoInertia*part.vel[d] +
			psoC1*r1*(pbest[d]-part.pos[d]) +
			psoC2*r2*(gbest[d]-part.pos[d])
		limit := float64(ctx.Space.Params[d].Size())
		if part.vel[d] > limit/2 {
			part.vel[d] = limit / 2
		}
		if part.vel[d] < -limit/2 {
			part.vel[d] = -limit / 2
		}
		part.pos[d] += part.vel[d]
	}
	pt := pointFromOrdinals(ctx.Space, part.pos)
	p.pending[pt.Key()] = i
	return pt
}

// Seed implements Seedable: the seed becomes a particle (and the global
// best when feasible).
func (p *PSO) Seed(ctx *Context, r Result) {
	pos := ordinalPoint(ctx.Space, r.Point)
	vel := make([]float64, len(pos))
	for i := range vel {
		vel[i] = (ctx.Rng.Float64() - 0.5) * float64(ctx.Space.Params[i].Size()) / 8
	}
	part := psoParticle{pos: pos, vel: vel, best: r.Point.Clone(), bestObj: r.Objective}
	if len(p.particles) < p.n {
		p.particles = append(p.particles, part)
	} else {
		p.particles[ctx.Rng.Intn(len(p.particles))] = part
	}
	if r.Feasible && r.Objective < p.gbestObj {
		p.gbest = r.Point.Clone()
		p.gbestObj = r.Objective
	}
}

// Feedback implements Technique.
func (p *PSO) Feedback(ctx *Context, r Result) {
	key := r.Point.Key()
	i, ok := p.pending[key]
	if !ok {
		return
	}
	delete(p.pending, key)
	if i >= len(p.particles) {
		return
	}
	part := &p.particles[i]
	if r.Feasible && r.Objective < part.bestObj {
		part.best = r.Point.Clone()
		part.bestObj = r.Objective
	}
	if r.Feasible && r.Objective < p.gbestObj {
		p.gbest = r.Point.Clone()
		p.gbestObj = r.Objective
	}
}

// Annealer is simulated annealing: a random walk that always accepts
// improvements and accepts regressions with probability exp(-d/T) under a
// geometric cooling schedule.
type Annealer struct {
	temp    float64
	cooling float64
	cur     space.Point
	curObj  float64
	pending space.Point
}

// NewAnnealer returns a simulated-annealing technique with initial
// temperature t0 (relative objective units) and cooling factor per step.
func NewAnnealer(t0, cooling float64) *Annealer {
	return &Annealer{temp: t0, cooling: cooling, curObj: math.Inf(1)}
}

// Name implements Technique.
func (a *Annealer) Name() string { return "simulated-annealing" }

// Seed implements Seedable: the annealer walks from the best seed.
func (a *Annealer) Seed(ctx *Context, r Result) {
	if a.cur == nil || r.Objective < a.curObj {
		a.cur = r.Point.Clone()
		a.curObj = r.Objective
	}
}

// Propose implements Technique.
func (a *Annealer) Propose(ctx *Context) space.Point {
	if a.cur == nil {
		pt := ctx.Space.RandomPoint(ctx.Rng)
		a.pending = pt
		return pt
	}
	steps := 1
	if ctx.Rng.Float64() < 0.3 {
		steps = 2
	}
	pt := neighbor(ctx, a.cur, steps)
	a.pending = pt
	return pt
}

// Feedback implements Technique.
func (a *Annealer) Feedback(ctx *Context, r Result) {
	if a.pending == nil || r.Point.Key() != a.pending.Key() {
		return
	}
	a.pending = nil
	accept := false
	switch {
	case a.cur == nil || r.Objective < a.curObj:
		// Improvements (including reduced infeasibility penalty) are
		// always taken; the DB tracks true feasible incumbents
		// separately.
		accept = true
	default:
		rel := (r.Objective - a.curObj) / math.Max(a.curObj, 1e-12)
		accept = ctx.Rng.Float64() < math.Exp(-rel/math.Max(a.temp, 1e-6))
	}
	if accept {
		a.cur = r.Point.Clone()
		a.curObj = r.Objective
	}
	a.temp *= a.cooling
}

// neighbor perturbs pt by moving n parameters a small step in ordinal
// space (local move, unlike mutate's uniform jump).
func neighbor(ctx *Context, pt space.Point, n int) space.Point {
	out := pt.Clone()
	for i := 0; i < n; i++ {
		p := &ctx.Space.Params[ctx.Rng.Intn(len(ctx.Space.Params))]
		ord := p.Ordinal(out[p.Name])
		if ord < 0 {
			ord = 0
		}
		span := p.Size()/8 + 1
		ord += ctx.Rng.Intn(2*span+1) - span
		if ord < 0 {
			ord = 0
		}
		if ord >= p.Size() {
			ord = p.Size() - 1
		}
		out[p.Name] = p.ValueAt(ord)
	}
	return out
}
