// Package tuner is an OpenTuner-style program autotuning framework (paper
// §4.2): an ensemble of reinforcement-learning search techniques — uniform
// greedy mutation, a differential-evolution genetic algorithm, particle
// swarm optimization, and simulated annealing — assembled under a
// multi-armed bandit meta-technique that allocates design points to
// whichever technique has recently been effective, rewarding techniques
// that find high-quality points and starving those that do not.
package tuner

import (
	"math"
	"math/rand"

	"s2fa/internal/space"
)

// Result is the outcome of evaluating one design point.
type Result struct {
	Point space.Point
	// Objective is the quantity minimized (S2FA: estimated kernel
	// seconds). Infeasible points carry +Inf.
	Objective float64
	Feasible  bool
	// Minutes is the evaluation cost (HLS synthesis wall-clock) charged
	// to the DSE virtual clock.
	Minutes float64
	// Technique records which search technique proposed the point.
	Technique string
	// Meta carries evaluator-specific detail (e.g. the HLS report).
	Meta any
}

// DB stores every evaluated result and tracks the best feasible point.
type DB struct {
	Results []Result
	seen    map[string]bool
	best    *Result
}

// NewDB returns an empty result database.
func NewDB() *DB {
	return &DB{seen: map[string]bool{}}
}

// Add records a result, updating the incumbent. It returns true when the
// result is a new global best.
func (db *DB) Add(r Result) bool {
	db.Results = append(db.Results, r)
	db.seen[r.Point.Key()] = true
	if r.Feasible && (db.best == nil || r.Objective < db.best.Objective) {
		cp := r
		db.best = &cp
		return true
	}
	return false
}

// Best returns the incumbent feasible result, or nil.
func (db *DB) Best() *Result {
	return db.best
}

// Seen reports whether the point was already evaluated.
func (db *DB) Seen(pt space.Point) bool { return db.seen[pt.Key()] }

// Len returns the number of evaluated results.
func (db *DB) Len() int { return len(db.Results) }

// Context is what techniques see when proposing points.
type Context struct {
	Space *space.Space
	DB    *DB
	Rng   *rand.Rand
}

// Seedable is implemented by techniques whose internal state (population,
// swarm, current point) can be primed with an externally evaluated seed
// configuration, the way OpenTuner seeds its techniques with
// user-provided configurations.
type Seedable interface {
	Seed(ctx *Context, r Result)
}

// Technique is one search algorithm in the ensemble.
type Technique interface {
	Name() string
	// Propose returns the next design point to evaluate (never nil; fall
	// back to a random point when the technique has no better idea).
	Propose(ctx *Context) space.Point
	// Feedback delivers the evaluation result of a point this technique
	// proposed.
	Feedback(ctx *Context, r Result)
}

// mutate returns a copy of pt with n randomly chosen parameters replaced
// by uniform random domain values.
func mutate(ctx *Context, pt space.Point, n int) space.Point {
	out := pt.Clone()
	for i := 0; i < n; i++ {
		p := &ctx.Space.Params[ctx.Rng.Intn(len(ctx.Space.Params))]
		out[p.Name] = p.Random(ctx.Rng)
	}
	return out
}

// DefaultTechniques returns the ensemble named in the paper (§4.2) plus
// OpenTuner's pattern-search hill climber, which the bandit arbitrates
// like the rest.
func DefaultTechniques(rng *rand.Rand) []Technique {
	return []Technique{
		NewGreedyMutation(),
		NewDifferentialEvolution(12, 0.7, 0.9),
		NewPSO(10),
		NewAnnealer(2.0, 0.97),
		NewPatternSearch(),
	}
}

func ordinalPoint(s *space.Space, pt space.Point) []float64 {
	out := make([]float64, len(s.Params))
	for i := range s.Params {
		p := &s.Params[i]
		out[i] = float64(p.Ordinal(pt[p.Name]))
	}
	return out
}

func pointFromOrdinals(s *space.Space, ords []float64) space.Point {
	pt := make(space.Point, len(s.Params))
	for i := range s.Params {
		p := &s.Params[i]
		o := int(math.Round(ords[i]))
		if o < 0 {
			o = 0
		}
		if o >= p.Size() {
			o = p.Size() - 1
		}
		pt[p.Name] = p.ValueAt(o)
	}
	return pt
}
