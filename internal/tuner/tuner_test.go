package tuner

import (
	"math"
	"math/rand"
	"testing"

	"s2fa/internal/cir"
	"s2fa/internal/space"
)

// quadSpace builds a synthetic 4-parameter space whose objective is a
// convex bowl with minimum at known coordinates — a sanity harness for
// every technique.
func quadSpace() *space.Space {
	k := &cir.Kernel{
		Name: "syn", TaskLoopID: "L0",
		Body: cir.Block{
			&cir.Loop{ID: "L0", Var: "t",
				Lo: &cir.IntLit{K: cir.Int, Val: 0}, Hi: &cir.VarRef{K: cir.Int, Name: "N"}, Step: 1,
				Body: cir.Block{
					&cir.Loop{ID: "L1", Var: "i",
						Lo: &cir.IntLit{K: cir.Int, Val: 0}, Hi: &cir.IntLit{K: cir.Int, Val: 65}, Step: 1,
						Body: cir.Block{}},
				}},
		},
	}
	return space.Identify(k)
}

// bowl returns an evaluator minimizing the squared ordinal distance to a
// target point.
func bowl(s *space.Space, target space.Point) Evaluator {
	return func(pt space.Point) Result {
		var d float64
		for i := range s.Params {
			p := &s.Params[i]
			diff := float64(p.Ordinal(pt[p.Name]) - p.Ordinal(target[p.Name]))
			d += diff * diff
		}
		return Result{Point: pt, Objective: d, Feasible: true, Minutes: 1}
	}
}

func targetOf(s *space.Space) space.Point {
	rng := rand.New(rand.NewSource(99))
	return s.RandomPoint(rng)
}

func TestDriverConvergesOnBowl(t *testing.T) {
	s := quadSpace()
	target := targetOf(s)
	d := NewDriver(s, bowl(s, target), 1)
	for i := 0; i < 150; i++ {
		d.Step(1)
	}
	best := d.DB.Best()
	if best == nil {
		t.Fatal("no best found")
	}
	if best.Objective > 25 {
		t.Errorf("driver did not approach the optimum: best=%v", best.Objective)
	}
}

func TestDriverDedupesProposals(t *testing.T) {
	s := quadSpace()
	target := targetOf(s)
	d := NewDriver(s, bowl(s, target), 2)
	seen := map[string]bool{}
	for i := 0; i < 60; i++ {
		for _, r := range d.Step(1) {
			key := r.Point.Key()
			if seen[key] {
				t.Fatalf("duplicate evaluation of %s", key)
			}
			seen[key] = true
		}
	}
}

func TestInjectSeedBecomesIncumbent(t *testing.T) {
	s := quadSpace()
	target := targetOf(s)
	d := NewDriver(s, bowl(s, target), 3)
	r := d.InjectSeed(target.Clone())
	if r.Objective != 0 {
		t.Fatalf("seed objective = %v", r.Objective)
	}
	if best := d.DB.Best(); best == nil || best.Objective != 0 {
		t.Error("seed did not become the incumbent")
	}
	if r.Technique != "seed" {
		t.Errorf("seed technique label = %q", r.Technique)
	}
}

func TestInfeasibleNeverBest(t *testing.T) {
	s := quadSpace()
	eval := func(pt space.Point) Result {
		return Result{Point: pt, Objective: 1, Feasible: false, Minutes: 1}
	}
	d := NewDriver(s, eval, 4)
	for i := 0; i < 20; i++ {
		d.Step(1)
	}
	if d.DB.Best() != nil {
		t.Error("infeasible result became the incumbent")
	}
}

func TestDBBestTracking(t *testing.T) {
	db := NewDB()
	pt := space.Point{"a": 1}
	if db.Add(Result{Point: pt, Objective: 5, Feasible: true}) != true {
		t.Error("first feasible not newBest")
	}
	if db.Add(Result{Point: space.Point{"a": 2}, Objective: 9, Feasible: true}) {
		t.Error("worse result reported as newBest")
	}
	if !db.Add(Result{Point: space.Point{"a": 3}, Objective: 1, Feasible: true}) {
		t.Error("better result not reported as newBest")
	}
	if db.Best().Objective != 1 || db.Len() != 3 {
		t.Errorf("best=%v len=%d", db.Best().Objective, db.Len())
	}
	if !db.Seen(pt) || db.Seen(space.Point{"a": 42}) {
		t.Error("Seen bookkeeping broken")
	}
}

func TestAUCBanditRewardsWinners(t *testing.T) {
	b := NewAUCBandit(3, 20, 0.05)
	// Exercise each arm once (infinite exploration bonus when unused).
	used := map[int]bool{}
	for i := 0; i < 3; i++ {
		arm := b.Select()
		used[arm] = true
		b.Reward(arm, false)
	}
	if len(used) != 3 {
		t.Fatalf("initial exploration covered %d arms", len(used))
	}
	// Arm 1 produces new bests; it should dominate selection.
	for i := 0; i < 30; i++ {
		b.Reward(1, true)
		b.Reward(0, false)
		b.Reward(2, false)
	}
	wins := 0
	for i := 0; i < 20; i++ {
		if b.Select() == 1 {
			wins++
		}
	}
	if wins < 15 {
		t.Errorf("winning arm selected only %d/20 times", wins)
	}
}

func TestAUCBanditWindowSlides(t *testing.T) {
	b := NewAUCBandit(1, 4, 0)
	for i := 0; i < 10; i++ {
		b.Reward(0, true)
	}
	for i := 0; i < 4; i++ {
		b.Reward(0, false)
	}
	// After the window fills with failures, credit decays to zero.
	if got := b.auc(0); got != 0 {
		t.Errorf("auc after failure window = %v", got)
	}
}

func TestPatternSearchClimbsLadder(t *testing.T) {
	s := quadSpace()
	// Objective: monotone decreasing in L0.parallel — a pure ladder.
	eval := func(pt space.Point) Result {
		v := float64(pt["L0.parallel"])
		return Result{Point: pt, Objective: 1000 - v, Feasible: true, Minutes: 1}
	}
	d := NewDriver(s, eval, 5)
	d.Techniques = []Technique{NewPatternSearch()}
	d.Bandit = NewAUCBandit(1, 50, 0.05)
	d.ctx = &Context{Space: s, DB: d.DB, Rng: d.Rng}
	d.InjectSeed(s.AreaSeed())
	for i := 0; i < 40; i++ {
		d.Step(1)
	}
	best := d.DB.Best()
	if best.Point["L0.parallel"] < 128 {
		t.Errorf("pattern search stalled at parallel=%d", best.Point["L0.parallel"])
	}
}

func TestTechniquesProposeValidPoints(t *testing.T) {
	s := quadSpace()
	rng := rand.New(rand.NewSource(11))
	db := NewDB()
	ctx := &Context{Space: s, DB: db, Rng: rng}
	target := targetOf(s)
	eval := bowl(s, target)
	for _, tech := range DefaultTechniques(rng) {
		for i := 0; i < 30; i++ {
			pt := tech.Propose(ctx)
			if err := s.Validate(pt); err != nil {
				t.Fatalf("%s proposed invalid point: %v", tech.Name(), err)
			}
			r := eval(pt)
			db.Add(r)
			tech.Feedback(ctx, r)
		}
	}
}

func TestSeedableTechniques(t *testing.T) {
	s := quadSpace()
	rng := rand.New(rand.NewSource(12))
	db := NewDB()
	ctx := &Context{Space: s, DB: db, Rng: rng}
	target := targetOf(s)
	seed := Result{Point: target.Clone(), Objective: 0, Feasible: true}
	n := 0
	for _, tech := range DefaultTechniques(rng) {
		if sd, ok := tech.(Seedable); ok {
			sd.Seed(ctx, seed)
			n++
		}
	}
	if n < 3 {
		t.Errorf("only %d techniques are seedable", n)
	}
}

func TestOrdinalEncodingRoundTrip(t *testing.T) {
	s := quadSpace()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		pt := s.RandomPoint(rng)
		back := pointFromOrdinals(s, ordinalPoint(s, pt))
		for k, v := range pt {
			if back[k] != v {
				t.Fatalf("roundtrip changed %s: %d -> %d", k, v, back[k])
			}
		}
	}
	// Out-of-range ordinals clamp.
	ords := make([]float64, len(s.Params))
	for i := range ords {
		ords[i] = math.Inf(1)
	}
	pt := pointFromOrdinals(s, ords)
	if err := s.Validate(pt); err != nil {
		t.Errorf("clamped point invalid: %v", err)
	}
}
