package space

import (
	"s2fa/internal/cir"
	"s2fa/internal/lint"
)

// PruneStatic returns a copy of s with statically-illegal parameter
// values removed, plus the number of domain values pruned. A value is
// removed only when the static verifier (internal/lint) reports an
// *error* for every point carrying it — i.e. the downstream pipeline
// (merlin validation or the HLS flatten-infeasibility rule) would reject
// those points anyway. This is the AutoDSE-style observation that a
// compiler can reject in microseconds what the tuner would otherwise pay
// virtual synthesis minutes to discover:
//
//   - pipeline=flatten is dropped for loops whose subtree contains a
//     variable-trip sub-loop (counted with symbolic bounds, or a general
//     while — e.g. the Smith-Waterman traceback), since flatten requires
//     fully unrolling all sub-loops (paper §4.1);
//   - tile/parallel factors above a loop's constant trip count are
//     dropped (Identify already sizes domains to [1, TC), so this only
//     fires for spaces built or restricted by hand).
//
// Per-value legality is checked in isolation, which is sound because the
// lint error rules are single-parameter predicates: they never depend on
// the values of other parameters.
func PruneStatic(s *Space, k *cir.Kernel) (*Space, int) {
	chk := lint.NewChecker(k)
	var cons []Constraint
	removed := 0
	for i := range s.Params {
		p := &s.Params[i]
		switch p.Kind {
		case FactorPipeline:
			ord := p.Ordinal(PipeFlattenVal)
			if ord < 0 || ord != p.Size()-1 {
				continue // flatten not in the domain (or not last: keep)
			}
			fs := chk.Directives(map[string]cir.LoopOpt{p.LoopID: {Pipeline: cir.PipeFlatten}}, nil)
			if fs.HasErrors() {
				cons = append(cons, Constraint{Param: p.Name, LoOrd: 0, HiOrd: ord - 1})
				removed++
			}
		case FactorTile, FactorParallel:
			li := chk.Info().ByID[p.LoopID]
			if li == nil || li.Trip <= 0 || p.Enum != nil {
				continue
			}
			if int64(p.Max) > li.Trip {
				hi := p.Ordinal(int(li.Trip))
				if hi < 0 {
					continue
				}
				removed += p.Size() - 1 - hi
				cons = append(cons, Constraint{Param: p.Name, LoOrd: 0, HiOrd: hi})
			}
		}
	}
	if removed == 0 {
		return s, 0
	}
	out, err := Restrict(s, cons)
	if err != nil {
		// A constraint emptied a domain (cannot happen for the rules
		// above: flatten is never the only pipeline mode, and factor 1 is
		// always legal). Fall back to the unpruned space.
		return s, 0
	}
	return out, removed
}
