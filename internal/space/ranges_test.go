package space_test

import (
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/fpga"
	"s2fa/internal/space"
)

func identify(t *testing.T, name string) *space.Space {
	t.Helper()
	a := apps.Get(name)
	if a == nil {
		t.Fatalf("no app %q", name)
	}
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return space.Identify(k)
}

// TestRestrictFromRangesSW checks the dominance rule on S-W: all four
// Char buffers carry proven [-128,127] ranges, the aggregate payload is
// 768 bytes against a 32 B/cycle channel (24-cycle floor), and 256 bits
// is the smallest domain width that both saturates the channel alongside
// the other buffers' narrowest widths and streams each buffer under the
// floor — so exactly the four 512-bit values are dominated.
func TestRestrictFromRangesSW(t *testing.T) {
	s := identify(t, "S-W")
	out, removed := space.RestrictFromRanges(s, fpga.VU9P())
	if removed != 4 {
		t.Fatalf("removed = %d, want 4 (one 512-bit value per buffer)", removed)
	}
	for i := range out.Params {
		p := &out.Params[i]
		if p.Kind != space.FactorBitWidth {
			continue
		}
		if top := p.ValueAt(p.Size() - 1); top != 256 {
			t.Errorf("%s widest width = %d, want 256", p.Name, top)
		}
	}
	// The original space is untouched.
	for i := range s.Params {
		p := &s.Params[i]
		if p.Kind == space.FactorBitWidth && p.ValueAt(p.Size()-1) != 512 {
			t.Errorf("input space mutated: %s widest = %d", p.Name, p.ValueAt(p.Size()-1))
		}
	}
}

// LR streams Double feature vectors; floating-point buffers never get a
// ValKnown range (width carries precision, not magnitude), so the rule
// must not fire.
func TestRestrictFromRangesFloatBuffersUntouched(t *testing.T) {
	s := identify(t, "LR")
	_, removed := space.RestrictFromRanges(s, fpga.VU9P())
	if removed != 0 {
		t.Fatalf("removed = %d, want 0 for float buffers", removed)
	}
}

func TestRestrictFromRangesNilDevice(t *testing.T) {
	s := identify(t, "S-W")
	out, removed := space.RestrictFromRanges(s, nil)
	if removed != 0 || out != s {
		t.Fatalf("nil device must be a no-op, got removed=%d", removed)
	}
}
