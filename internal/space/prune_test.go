// External test package: the test drives PruneStatic with real compiled
// workloads, and importing apps from package space would cycle through
// b2c -> lint -> space.
package space_test

import (
	"math"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
	"s2fa/internal/space"
)

// TestPruneStaticSW: Smith-Waterman is the workload with a provably
// illegal domain value — pipeline=flatten on the nest containing the
// variable-trip while traceback. PruneStatic must drop exactly that value
// and nothing else.
func TestPruneStaticSW(t *testing.T) {
	a := apps.Get("S-W")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	sp := space.Identify(k)
	pruned, n := space.PruneStatic(sp, k)
	if n != 1 {
		t.Fatalf("pruned %d domain values, want exactly 1 (flatten over the while traceback)", n)
	}
	if pruned == sp {
		t.Fatal("PruneStatic returned the original space despite pruning")
	}

	info := cir.Analyze(k)
	var shrunk []string
	for i := range sp.Params {
		orig := &sp.Params[i]
		got := pruned.Param(orig.Name)
		if got == nil {
			t.Fatalf("pruned space lost parameter %q", orig.Name)
		}
		if got.Size() == orig.Size() {
			continue
		}
		shrunk = append(shrunk, orig.Name)
		if orig.Kind != space.FactorPipeline {
			t.Errorf("non-pipeline parameter %q shrunk (%d -> %d)", orig.Name, orig.Size(), got.Size())
			continue
		}
		if got.Contains(space.PipeFlattenVal) {
			t.Errorf("%q still contains the flatten mode after pruning", orig.Name)
		}
		if got.Size() != orig.Size()-1 {
			t.Errorf("%q lost %d values, want 1", orig.Name, orig.Size()-got.Size())
		}
		li := info.ByID[orig.LoopID]
		if li == nil || !li.HasWhile {
			t.Errorf("flatten pruned from loop %s, which has no while in its subtree", orig.LoopID)
		}
	}
	if len(shrunk) != 1 {
		t.Fatalf("parameters shrunk = %v, want exactly one", shrunk)
	}

	wantCard := sp.Cardinality() * 2.0 / 3.0 // one pipeline enum 3 -> 2
	if got := pruned.Cardinality(); math.Abs(got-wantCard) > 1e-9*wantCard {
		t.Errorf("pruned cardinality %.6g, want %.6g", got, wantCard)
	}
}

// TestPruneStaticNoOp: a workload with no statically illegal values must
// come back untouched — same space pointer, zero count — so callers can
// detect the no-op cheaply.
func TestPruneStaticNoOp(t *testing.T) {
	for _, name := range []string{"KMeans", "AES", "LR"} {
		a := apps.Get(name)
		k, err := a.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		sp := space.Identify(k)
		pruned, n := space.PruneStatic(sp, k)
		if n != 0 || pruned != sp {
			t.Errorf("%s: PruneStatic pruned %d values (same pointer: %v), want a no-op", name, n, pruned == sp)
		}
	}
}

// TestPruneStaticPreservesLegalPoints: every point of the pruned space is
// a valid point of the original (pruning only removes, never remaps).
func TestPruneStaticPreservesLegalPoints(t *testing.T) {
	a := apps.Get("S-W")
	k, _ := a.Kernel()
	sp := space.Identify(k)
	pruned, _ := space.PruneStatic(sp, k)
	for i := range pruned.Params {
		p := &pruned.Params[i]
		parent := sp.Param(p.Name)
		for ord := 0; ord < p.Size(); ord++ {
			if !parent.Contains(p.ValueAt(ord)) {
				t.Errorf("pruned %s value %d is not in the original domain", p.Name, p.ValueAt(ord))
			}
		}
	}
}
