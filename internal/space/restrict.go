package space

import "fmt"

// Constraint narrows one parameter's domain to the ordinal range
// [LoOrd, HiOrd] (inclusive). Ordinals index Param.ValueAt, so constraints
// compose uniformly across range-valued and enum-valued parameters.
type Constraint struct {
	Param string
	LoOrd int
	HiOrd int
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s in ord[%d..%d]", c.Param, c.LoOrd, c.HiOrd)
}

// Restrict returns a new Space whose parameter domains are narrowed by the
// given constraints. Unconstrained parameters keep their full domains. The
// partitions the DSE builds this way are disjoint sub-boxes of the
// original space; their union over a decision tree's leaves is the whole
// space, which is how the paper argues partitioning preserves optimality
// (§4.3.1).
func Restrict(s *Space, cons []Constraint) (*Space, error) {
	out := &Space{Kernel: s.Kernel, byName: map[string]int{}}
	byParam := map[string]Constraint{}
	for _, c := range cons {
		if prev, ok := byParam[c.Param]; ok {
			// Intersect stacked constraints on the same parameter.
			if c.LoOrd < prev.LoOrd {
				c.LoOrd = prev.LoOrd
			}
			if c.HiOrd > prev.HiOrd {
				c.HiOrd = prev.HiOrd
			}
		}
		byParam[c.Param] = c
	}
	for i := range s.Params {
		p := s.Params[i] // copy
		c, ok := byParam[p.Name]
		if ok {
			lo, hi := c.LoOrd, c.HiOrd
			if lo < 0 {
				lo = 0
			}
			if hi > p.Size()-1 {
				hi = p.Size() - 1
			}
			if lo > hi {
				return nil, fmt.Errorf("space: constraint on %q empties the domain", p.Name)
			}
			if p.Enum != nil {
				p.Enum = append([]int(nil), p.Enum[lo:hi+1]...)
			} else {
				p.Min, p.Max = p.Min+lo, p.Min+hi
			}
		}
		out.add(p)
	}
	return out, nil
}
