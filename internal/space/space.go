// Package space implements S2FA's design-space identification (paper
// §4.1, Table 1). It analyzes a kernel's loop nest and buffer interface
// and produces the tunable parameters:
//
//	buffer bit-width  b = 2^n, 8 < b <= 512          (per array buffer)
//	loop tiling       1 <= t < TC(L)                 (per counted loop)
//	loop parallel     1 <= u < TC(L)                 (per counted loop)
//	loop pipeline     {off, on, flatten}             (per counted loop)
//
// The resulting spaces are enormous (the Smith-Waterman kernel exceeds
// 10^15 points, as the paper notes), which motivates the learning-based
// exploration in internal/dse.
package space

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"s2fa/internal/cir"
	"s2fa/internal/merlin"
)

// FactorKind identifies which design-space factor a parameter controls.
type FactorKind uint8

// Factor kinds (Table 1 rows).
const (
	FactorBitWidth FactorKind = iota
	FactorTile
	FactorParallel
	FactorPipeline
)

func (f FactorKind) String() string {
	switch f {
	case FactorBitWidth:
		return "bitwidth"
	case FactorTile:
		return "tile"
	case FactorParallel:
		return "parallel"
	case FactorPipeline:
		return "pipeline"
	}
	return "?"
}

// Pipeline enum encoding inside a Point.
const (
	PipeOffVal     = 0
	PipeOnVal      = 1
	PipeFlattenVal = 2
)

// Param is one tunable parameter with its domain: either a dense integer
// range [Min, Max] or an explicit enumeration.
type Param struct {
	Name   string
	Kind   FactorKind
	LoopID string // for loop factors
	Buffer string // for bit-width factors
	// Domain: if Enum is non-nil it lists the values; otherwise the
	// domain is the dense range [Min, Max].
	Min, Max int
	Enum     []int
	// Depth is the loop depth for loop factors (0 = outermost). Partition
	// rules use it.
	Depth int
}

// Size returns the number of values in the domain.
func (p *Param) Size() int {
	if p.Enum != nil {
		return len(p.Enum)
	}
	return p.Max - p.Min + 1
}

// ValueAt maps a domain ordinal in [0, Size()) to a concrete value.
func (p *Param) ValueAt(i int) int {
	if p.Enum != nil {
		return p.Enum[i]
	}
	return p.Min + i
}

// Ordinal maps a concrete value back to its domain ordinal, or -1.
func (p *Param) Ordinal(v int) int {
	if p.Enum != nil {
		for i, e := range p.Enum {
			if e == v {
				return i
			}
		}
		return -1
	}
	if v < p.Min || v > p.Max {
		return -1
	}
	return v - p.Min
}

// Contains reports whether v is in the domain.
func (p *Param) Contains(v int) bool { return p.Ordinal(v) >= 0 }

// Random draws a uniform value from the domain (Table 1's spaces are
// dense integer ranges; OpenTuner samples them uniformly).
func (p *Param) Random(rng *rand.Rand) int {
	return p.ValueAt(rng.Intn(p.Size()))
}

// Clamp returns the in-domain value nearest to v.
func (p *Param) Clamp(v int) int {
	if p.Enum != nil {
		best, bd := p.Enum[0], abs(p.Enum[0]-v)
		for _, e := range p.Enum[1:] {
			if d := abs(e - v); d < bd {
				best, bd = e, d
			}
		}
		return best
	}
	if v < p.Min {
		return p.Min
	}
	if v > p.Max {
		return p.Max
	}
	return v
}

// Point is a complete design-point assignment: parameter name to value.
type Point map[string]int

// Clone copies the point.
func (pt Point) Clone() Point {
	out := make(Point, len(pt))
	for k, v := range pt {
		out[k] = v
	}
	return out
}

// Key returns a canonical string identity for deduplication.
func (pt Point) Key() string {
	keys := make([]string, 0, len(pt))
	for k := range pt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, pt[k])
	}
	return b.String()
}

// Space is the identified design space of one kernel.
type Space struct {
	Kernel *cir.Kernel
	Params []Param
	byName map[string]int
}

// MaxTaskParallel caps the parallel/tiling factors considered for the
// runtime-sized task loop (its trip count is the batch size, unknown at
// compile time).
const MaxTaskParallel = 256

// Identify builds the design space for kernel k, reproducing the analysis
// S2FA performs with ROSE + polyhedral frameworks to realize loop trip
// counts and buffer widths (paper §4.1).
func Identify(k *cir.Kernel) *Space {
	info := cir.Analyze(k)
	s := &Space{Kernel: k, byName: map[string]int{}}

	bwEnum := []int{16, 32, 64, 128, 256, 512} // 8 < 2^n <= 512
	for _, p := range k.Params {
		if !p.IsArray {
			continue
		}
		s.add(Param{
			Name:   p.Name + ".bitwidth",
			Kind:   FactorBitWidth,
			Buffer: p.Name,
			Enum:   bwEnum,
		})
	}
	for _, li := range info.All {
		l := li.Loop
		maxF := int(li.Trip) - 1
		if l.ID == k.TaskLoopID {
			maxF = MaxTaskParallel
		}
		if maxF < 1 {
			maxF = 1
		}
		s.add(Param{
			Name: l.ID + ".tile", Kind: FactorTile, LoopID: l.ID,
			Min: 1, Max: maxInt(1, maxF), Depth: li.Depth,
		})
		s.add(Param{
			Name: l.ID + ".parallel", Kind: FactorParallel, LoopID: l.ID,
			Min: 1, Max: maxInt(1, maxF), Depth: li.Depth,
		})
		s.add(Param{
			Name: l.ID + ".pipeline", Kind: FactorPipeline, LoopID: l.ID,
			Enum: []int{PipeOffVal, PipeOnVal, PipeFlattenVal}, Depth: li.Depth,
		})
	}
	return s
}

func (s *Space) add(p Param) {
	s.byName[p.Name] = len(s.Params)
	s.Params = append(s.Params, p)
}

// Param returns the named parameter, or nil.
func (s *Space) Param(name string) *Param {
	if i, ok := s.byName[name]; ok {
		return &s.Params[i]
	}
	return nil
}

// Cardinality returns the total number of design points as a float (the
// spaces overflow int64; S-W exceeds 10^15).
func (s *Space) Cardinality() float64 {
	total := 1.0
	for i := range s.Params {
		total *= float64(s.Params[i].Size())
	}
	return total
}

// RandomPoint draws a uniform random point.
func (s *Space) RandomPoint(rng *rand.Rand) Point {
	pt := make(Point, len(s.Params))
	for i := range s.Params {
		p := &s.Params[i]
		pt[p.Name] = p.Random(rng)
	}
	return pt
}

// Validate checks that pt assigns an in-domain value to every parameter.
func (s *Space) Validate(pt Point) error {
	if len(pt) != len(s.Params) {
		return fmt.Errorf("space: point has %d assignments, space has %d parameters", len(pt), len(s.Params))
	}
	for i := range s.Params {
		p := &s.Params[i]
		v, ok := pt[p.Name]
		if !ok {
			return fmt.Errorf("space: point missing parameter %q", p.Name)
		}
		if !p.Contains(v) {
			return fmt.Errorf("space: parameter %q value %d outside domain", p.Name, v)
		}
	}
	return nil
}

// Directives converts a design point into Merlin transformation
// directives.
func (s *Space) Directives(pt Point) merlin.Directives {
	d := merlin.Directives{Loops: map[string]cir.LoopOpt{}, BitWidths: map[string]int{}}
	for i := range s.Params {
		p := &s.Params[i]
		v, ok := pt[p.Name]
		if !ok {
			continue
		}
		switch p.Kind {
		case FactorBitWidth:
			d.BitWidths[p.Buffer] = v
		case FactorTile:
			opt := d.Loops[p.LoopID]
			opt.Tile = v
			d.Loops[p.LoopID] = opt
		case FactorParallel:
			opt := d.Loops[p.LoopID]
			opt.Parallel = v
			d.Loops[p.LoopID] = opt
		case FactorPipeline:
			opt := d.Loops[p.LoopID]
			switch v {
			case PipeOnVal:
				opt.Pipeline = cir.PipeOn
			case PipeFlattenVal:
				opt.Pipeline = cir.PipeFlatten
			default:
				opt.Pipeline = cir.PipeOff
			}
			d.Loops[p.LoopID] = opt
		}
	}
	return d
}

// PerformanceSeed returns the performance-driven seed of paper §4.3.2:
// pipelining enabled for all loops, every parallel factor at 32, buffer
// bit-widths at 512. Aggressive — may be infeasible for complex kernels,
// but slashes DSE iterations when it synthesizes.
func (s *Space) PerformanceSeed() Point {
	pt := make(Point, len(s.Params))
	for i := range s.Params {
		p := &s.Params[i]
		switch p.Kind {
		case FactorBitWidth:
			pt[p.Name] = p.Clamp(512)
		case FactorTile:
			pt[p.Name] = p.Clamp(1)
		case FactorParallel:
			pt[p.Name] = p.Clamp(32)
		case FactorPipeline:
			pt[p.Name] = p.Clamp(PipeOnVal)
		}
	}
	return pt
}

// AreaSeed returns the area-driven seed of paper §4.3.2: all
// optimizations disabled, minimum bit-widths — the most conservative
// configuration, guaranteed (modulo device size) to start the search in
// the feasible region.
func (s *Space) AreaSeed() Point {
	pt := make(Point, len(s.Params))
	for i := range s.Params {
		p := &s.Params[i]
		switch p.Kind {
		case FactorBitWidth:
			pt[p.Name] = p.Clamp(16)
		case FactorPipeline:
			pt[p.Name] = p.Clamp(PipeOffVal)
		default:
			pt[p.Name] = p.Clamp(1)
		}
	}
	return pt
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
